package repro

// The wire surface's pins: PlanSpec options fidelity (a spec builds the
// same plan the equivalent hand-written options build), and golden
// report JSON — the serving layer's byte-identity guarantee rests on
// Report's wire encoding being stable across releases AND across
// execution knobs, so the goldens are compared against runs at several
// worker counts and lane widths. Regenerate with:
//
//	go test -run TestReportGolden -update-golden
//
// and review the diff like any contract change.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/synth"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files with current output")

func goldenWorkload(t testing.TB, seed int64) *Stream {
	t.Helper()
	s, err := synth.TimeUniform(synth.TimeUniformConfig{
		Nodes: 14, LinksPerPair: 6, T: 30_000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func specForGolden(seed int64, directed bool) *PlanSpec {
	return &PlanSpec{
		Metrics:       []string{"occupancy", "classic", "distance", "loss", "elongation"},
		Directed:      directed,
		GridPoints:    8,
		Refine:        2,
		HistogramBins: 24,
	}
}

// TestReportGolden pins the wire bytes of Report across 3 seeds ×
// directed/undirected, and — the determinism half of the contract —
// checks every (workers, lane width) combination reproduces the golden
// bytes exactly.
func TestReportGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix is not -short")
	}
	type knobs struct {
		workers, laneWidth int
	}
	matrix := []knobs{{1, 4}, {1, 8}, {3, 4}, {3, 8}}

	for _, seed := range []int64{101, 202, 303} {
		for _, directed := range []bool{false, true} {
			name := fmt.Sprintf("seed%d_%s", seed, map[bool]string{false: "undirected", true: "directed"}[directed])
			t.Run(name, func(t *testing.T) {
				spec := specForGolden(seed, directed)
				var reference []byte
				for _, k := range matrix {
					s := goldenWorkload(t, seed)
					opts, err := spec.Options()
					if err != nil {
						t.Fatal(err)
					}
					opts = append(opts, WithWorkers(k.workers), WithLaneWidth(k.laneWidth))
					plan, err := NewAnalysis(s, opts...)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := plan.Run(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					data, err := json.Marshal(rep)
					if err != nil {
						t.Fatal(err)
					}
					if reference == nil {
						reference = data
					} else if !bytes.Equal(data, reference) {
						t.Fatalf("report bytes at workers=%d lane=%d differ from workers=%d lane=%d",
							k.workers, k.laneWidth, matrix[0].workers, matrix[0].laneWidth)
					}
				}

				golden := filepath.Join("testdata", "report_"+name+".golden.json")
				if *updateGolden {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					var pretty bytes.Buffer
					if err := json.Indent(&pretty, reference, "", "  "); err != nil {
						t.Fatal(err)
					}
					pretty.WriteByte('\n')
					if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("%v (regenerate with -update-golden)", err)
				}
				var compact bytes.Buffer
				if err := json.Compact(&compact, want); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(reference, compact.Bytes()) {
					t.Fatalf("report wire bytes drifted from %s (regenerate with -update-golden and review)\n got %s\nwant %s",
						golden, reference, compact.Bytes())
				}
			})
		}
	}
}

// TestReportJSONRoundTrip: decode(encode(report)) carries the same
// results (and zero engine stats — instrumentation does not travel).
func TestReportJSONRoundTrip(t *testing.T) {
	s := goldenWorkload(t, 7)
	plan, err := NewAnalysis(s, WithGridPoints(6), WithMetrics(MetricOccupancy, MetricTransitionLoss), WithWindows(Window{Start: 0, End: 15_000}, Window{Start: 15_000, End: 30_000}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.EngineStats() != (EngineStats{}) {
		t.Fatal("engine stats travelled over the wire")
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatalf("report did not survive a round trip:\n first %s\nsecond %s", data, again)
	}
	gotScale, gotOK := back.Scale()
	wantScale, wantOK := rep.Scale()
	if gotOK != wantOK || gotScale.Gamma != wantScale.Gamma {
		t.Fatalf("scale drifted over the wire: got (%v,%v) want (%v,%v)", gotScale.Gamma, gotOK, wantScale.Gamma, wantOK)
	}
	if back.NumWindows() != rep.NumWindows() {
		t.Fatalf("windows drifted: got %d want %d", back.NumWindows(), rep.NumWindows())
	}
}

// TestPlanSpecOptionsFidelity: a spec's Options build a plan that runs
// to the same wire bytes as the equivalent hand-written options.
func TestPlanSpecOptionsFidelity(t *testing.T) {
	s1 := goldenWorkload(t, 17)
	s2 := goldenWorkload(t, 17)

	spec := &PlanSpec{
		Metrics:    []string{"occupancy", "loss"},
		Selectors:  []string{"shannon-entropy", "mk-proximity"},
		Directed:   true,
		GridPoints: 7,
		MinDelta:   2,
		Refine:     3,
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	fromSpec, err := NewAnalysis(s1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sels, err := ParseSelectors([]string{"shannon-entropy", "mk-proximity"})
	if err != nil {
		t.Fatal(err)
	}
	byHand, err := NewAnalysis(s2,
		WithMetrics(MetricOccupancy, MetricTransitionLoss),
		WithSelectors(sels...),
		WithDirected(true),
		WithGridPoints(7),
		WithMinDelta(2),
		WithRefine(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	repSpec, err := fromSpec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	repHand, err := byHand.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(repSpec)
	b, _ := json.Marshal(repHand)
	if !bytes.Equal(a, b) {
		t.Fatalf("spec-built plan diverged from hand-built options:\nspec %s\nhand %s", a, b)
	}
}

// TestParseSelectors: names resolve, order preserved, unknown names
// error listing every known selector.
func TestParseSelectors(t *testing.T) {
	sels, err := ParseSelectors([]string{"shannon-entropy", "mk-proximity"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 2 || sels[0].Name() != "shannon-entropy" || sels[1].Name() != "mk-proximity" {
		t.Fatalf("selectors = %v", sels)
	}
	_, err = ParseSelectors([]string{"coin-flip"})
	if err == nil {
		t.Fatal("unknown selector accepted")
	}
	for _, known := range []string{"mk-proximity", "standard-deviation", "variation-coefficient", "shannon-entropy", "cre"} {
		if !contains(err.Error(), known) {
			t.Fatalf("error %q does not list %q", err, known)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// TestPlanSpecStreamValidation: exactly one of Stream and Inline.
func TestPlanSpecStreamValidation(t *testing.T) {
	if _, err := (&PlanSpec{}).NewPlan(); err == nil {
		t.Fatal("no-stream spec accepted")
	}
	both := &PlanSpec{
		Stream: &StreamRef{Path: "x"},
		Inline: []InlineEvent{{U: "a", V: "b", T: 1}},
	}
	if _, err := both.NewPlan(); err == nil {
		t.Fatal("both-streams spec accepted")
	}
}

// TestPlanStreamRef: a plan over a columnar path exposes its reference
// — path, fingerprint and span — and in-memory plans expose none.
func TestPlanStreamRef(t *testing.T) {
	s := goldenWorkload(t, 23)
	dir := t.TempDir()
	lsc := filepath.Join(dir, "w.lsc")
	f, err := os.Create(lsc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteColumnar(f, linkstream.ColumnarOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	plan, err := NewAnalysis(nil, WithStreamPath(lsc), WithGridPoints(5))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	ref, ok := plan.StreamRef()
	if !ok {
		t.Fatal("columnar plan has no stream ref")
	}
	if ref.Path != lsc || ref.Hash == "" || ref.Events != s.NumEvents() {
		t.Fatalf("ref = %+v", ref)
	}

	memPlan, err := NewAnalysis(goldenWorkload(t, 23), WithGridPoints(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := memPlan.StreamRef(); ok {
		t.Fatal("in-memory plan claims a stream ref")
	}

	// The ref round-trips into a spec that builds an equivalent plan.
	spec := &PlanSpec{Stream: &ref, GridPoints: 5}
	var specJSON bytes.Buffer
	if err := json.NewEncoder(&specJSON).Encode(spec); err != nil {
		t.Fatal(err)
	}
	plan2, err := spec.NewPlan()
	if err != nil {
		t.Fatal(err)
	}
	defer plan2.Close()
	ref2, ok := plan2.StreamRef()
	if !ok || ref2.Hash != ref.Hash {
		t.Fatalf("re-opened ref = %+v, want hash %s", ref2, ref.Hash)
	}

	if !reflect.DeepEqual(ref, ref2) {
		t.Fatalf("stream ref drifted on reopen: %+v vs %+v", ref, ref2)
	}
}
