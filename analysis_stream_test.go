package repro

// Out-of-core ingest equivalence (the acceptance pin of the columnar
// linkstream work): a Plan.Run over a tsconvert-style mapped columnar
// file must be bit-identical — every scale result, every curve point,
// every window — to the same plan over the text-parsed in-memory
// stream, while the engine's sort pass is skipped on every pass of the
// mapped run and on none of the in-memory run.

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/synth"
)

// columnarPathOf writes the stream's sorted columnar encoding (small
// skip stride, so windowed slicing exercises the skip index) to a temp
// file and returns its path.
func columnarPathOf(t *testing.T, s *Stream) string {
	t.Helper()
	sc := s.Clone()
	sc.Sort()
	path := filepath.Join(t.TempDir(), "stream.lsc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.WriteColumnar(f, linkstream.ColumnarOptions{SkipEvery: 64}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPlanStreamPathMatchesInMemory(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			s, err := synth.TimeUniform(synth.TimeUniformConfig{
				Nodes: 9, LinksPerPair: 3, T: 20_000, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			path := columnarPathOf(t, s)

			t0, t1, _ := s.Span()
			mid := (t0 + t1) / 2
			opts := func() []Option {
				return []Option{
					WithDirected(directed),
					WithMetrics(MetricOccupancy, MetricClassic, MetricDistance,
						MetricTransitionLoss, MetricElongation),
					WithGridPoints(8),
					WithRefine(2),
					WithWorkers(3),
					WithMaxInFlight(2),
					WithWindows(Window{Start: t0, End: mid}, Window{Start: mid, End: t1 + 1}),
					WithElongationSpill(1), // spill-forced, still bit-exact
				}
			}

			memPlan, err := NewAnalysis(s, opts()...)
			if err != nil {
				t.Fatal(err)
			}
			memRep, err := memPlan.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			mapPlan, err := NewAnalysis(nil, append(opts(), WithStreamPath(path))...)
			if err != nil {
				t.Fatal(err)
			}
			defer mapPlan.Close()
			mapRep, err := mapPlan.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			memRes, memOK := memRep.Scale()
			mapRes, mapOK := mapRep.Scale()
			if memOK != mapOK || !reflect.DeepEqual(memRes, mapRes) {
				t.Fatalf("directed=%v seed=%d: scale diverged:\n mem %+v\n map %+v", directed, seed, memRes, mapRes)
			}
			if !reflect.DeepEqual(memRep.Global(), mapRep.Global()) {
				t.Fatalf("directed=%v seed=%d: global curves diverged", directed, seed)
			}
			if !reflect.DeepEqual(memRep.Windows(), mapRep.Windows()) {
				t.Fatalf("directed=%v seed=%d: window reports diverged", directed, seed)
			}

			memSt, mapSt := memRep.EngineStats(), mapRep.EngineStats()
			if memSt.SortSkips != 0 {
				t.Fatalf("directed=%v seed=%d: in-memory run skipped %d sorts", directed, seed, memSt.SortSkips)
			}
			if mapSt.SortSkips == 0 || mapSt.SortSkips != mapSt.Passes {
				t.Fatalf("directed=%v seed=%d: mapped run skipped %d sorts over %d passes, want every pass",
					directed, seed, mapSt.SortSkips, mapSt.Passes)
			}
			if memSt.Passes != mapSt.Passes || memSt.Builds != mapSt.Builds {
				t.Fatalf("directed=%v seed=%d: pass/build counts diverged: mem %d/%d, map %d/%d",
					directed, seed, memSt.Passes, memSt.Builds, mapSt.Passes, mapSt.Builds)
			}
		}
	}
}

// TestPlanStreamPathTextAndBinary pins the non-columnar WithStreamPath
// paths: text and LSB files are parsed into memory behind the same
// option, and produce the same report (with no sort skips).
func TestPlanStreamPathTextAndBinary(t *testing.T) {
	s, err := synth.TimeUniform(synth.TimeUniformConfig{
		Nodes: 7, LinksPerPair: 2, T: 5_000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	textPath := filepath.Join(dir, "stream.txt")
	tf, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteTo(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	lsbPath := filepath.Join(dir, "stream.lsb")
	bf, err := os.Create(lsbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBinary(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	want, err := NewAnalysis(s, WithGridPoints(6))
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := want.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{textPath, lsbPath} {
		plan, err := NewAnalysis(nil, WithGridPoints(6), WithStreamPath(path))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := plan.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Global(), wantRep.Global()) {
			t.Fatalf("%s: report diverged from in-memory", path)
		}
		if rep.EngineStats().SortSkips != 0 {
			t.Fatalf("%s: parsed plan reported sort skips", path)
		}
		plan.Close()
	}

	// Error surface: missing file, and both inputs at once.
	if _, err := NewAnalysis(nil, WithStreamPath(filepath.Join(dir, "missing.lsc"))); err == nil {
		t.Fatal("missing stream file must fail plan construction")
	}
	if _, err := NewAnalysis(s, WithStreamPath(textPath)); err == nil {
		t.Fatal("WithStreamPath plus a non-nil stream must fail")
	}
}
