GO ?= go

# Benchmarks the PGO corpus profiles and the gate measures. Keep in
# sync with the bench job in .github/workflows/ci.yml.
PGO_BENCH ?= .
BENCHTIME ?= 3x

.PHONY: build test race bench pgo clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) run ./cmd/tsbench -benchtime $(BENCHTIME)

# pgo builds the profile-guided-optimisation corpus and rebuilds with
# it: run the benchmark suite under per-benchmark CPU profiling, merge
# the profiles into default.pgo (the file go build -pgo=auto picks up
# from the module root), then rebuild everything against it and re-run
# the flagship benchmarks so the win is visible next to the plain
# numbers. default.pgo is a generated artifact — regenerate it here,
# do not commit it.
pgo:
	$(GO) run ./cmd/tsbench -bench '$(PGO_BENCH)' -benchtime $(BENCHTIME) -cpuprofile default.pgo
	$(GO) build -pgo=default.pgo ./...
	$(GO) test -run '^$$' -bench 'BenchmarkMultiSweepAllMetrics|BenchmarkAdaptiveAnalyze' -benchmem -benchtime $(BENCHTIME) .

clean:
	rm -f default.pgo
