package repro

// Cancellation regressions at the plan level: an already-cancelled
// context must surface before the stream is sorted or any engine pass
// starts, and a cancel mid-plan must abort cleanly across passes.

import (
	"context"
	"testing"

	"repro/internal/sweep"
)

func TestPlanRunPreCancelled(t *testing.T) {
	s := NewStream()
	// Out-of-order events: reaching the engine's sort would reorder
	// them in place.
	for _, e := range []struct {
		u, v string
		t    int64
	}{{"a", "b", 30}, {"b", "c", 10}, {"a", "c", 20}} {
		if err := s.Add(e.u, e.v, e.t); err != nil {
			t.Fatal(err)
		}
	}
	// An explicit grid keeps NewAnalysis from deriving one (which would
	// sort the stream while measuring its resolution).
	plan, err := NewAnalysis(s, WithGrid(1, 5, 25))
	if err != nil {
		t.Fatal(err)
	}
	if s.Sorted() {
		t.Fatal("building the plan must not sort the stream")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sweep.ResetBuildStats()
	if _, err := plan.Run(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Sorted() {
		t.Fatal("pre-cancelled Run must return before sorting the stream")
	}
	if got := sweep.RunCount(); got != 0 {
		t.Fatalf("RunCount = %d after pre-cancelled Run, want 0", got)
	}

	// Same contract for the deprecated-path internals reached through a
	// plan: the adaptive run.
	adPlan, err := NewAnalysis(uniformWorkload(t), WithAdaptive(AdaptiveConfig{GridPoints: 6}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adPlan.Run(ctx); err != context.Canceled {
		t.Fatalf("adaptive err = %v, want context.Canceled", err)
	}
}

// TestPlanRunCancelMidPlan cancels from a progress callback partway
// through the first pass of a refining plan and checks the abort is
// clean and the error is the context's.
func TestPlanRunCancelMidPlan(t *testing.T) {
	s := uniformWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := false
	plan, err := NewAnalysis(s,
		WithGrid(LogGrid(1, 50_000, 12)...),
		WithRefine(4),
		WithMaxInFlight(1),
		WithProgress(func(ev ProgressEvent) {
			if ev.Stage == ProgressPeriod && ev.PeriodsDone >= 3 && !fired {
				fired = true
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("cancelled Run must not return a report")
	}
	if !fired {
		t.Fatal("progress hook never fired")
	}
}
