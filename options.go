package repro

// This file defines the functional options of the plan/run lifecycle:
// repro.NewAnalysis(stream, ...Option) freezes them into an immutable
// Plan, Plan.Run(ctx) executes the plan as fused sweep-engine passes.
// Every knob the deprecated entry points spread over per-package option
// structs (core.Options, classic.Options, validate.Options,
// adaptive.Config, sweep.Options) maps onto exactly one Option here, so
// any combination of metrics, windows and policies composes in a single
// request.

import (
	"fmt"
	"strings"

	"repro/internal/sweep"
)

// Metric identifies one of the built-in per-∆ curves an analysis can
// compute. All requested metrics of a plan are computed in one fused
// engine pass — each period's layer arena is built and swept once, no
// matter how many metrics consume it.
type Metric uint8

const (
	// MetricOccupancy is the paper's occupancy method: per-∆ occupancy
	// distributions scored by the plan's selectors. It is the only
	// metric that determines a saturation scale (Report.Scale) and the
	// only one the refinement bisection re-sweeps.
	MetricOccupancy Metric = iota
	// MetricClassic is the Figure 2 classical graph-series properties
	// (density, degree, connectedness).
	MetricClassic
	// MetricDistance is the Figure 2 mean temporal distance curves.
	MetricDistance
	// MetricTransitionLoss is the Section 8 proportion of shortest
	// transitions lost per period.
	MetricTransitionLoss
	// MetricElongation is the Section 8 mean trip elongation factor per
	// period.
	MetricElongation
	// MetricDegree is the snapshot degree-distribution curve: per-∆
	// mean degree, max degree and degree entropy, averaged over the
	// windows (see docs/METRICS.md).
	MetricDegree
	// MetricClustering is the snapshot clustering curve: per-∆
	// transitivity (global clustering) and mean local clustering
	// coefficient of the underlying undirected simple graph.
	MetricClustering
	// MetricComponents is the snapshot connected-component curve: per-∆
	// mean component count (among non-isolated nodes) and mean
	// giant-component fraction.
	MetricComponents
	// MetricCoreness is the snapshot k-core curve: per-∆ mean degeneracy
	// (max coreness) and mean coreness over all nodes.
	MetricCoreness
	// MetricWeighted is the weighted-aggregation curve
	// (GraphTempo/pyTempNet AggregateNet semantics — edge weight =
	// contact count per window): per-∆ mean and max edge weight,
	// normalised weight entropy, and the total contact count.
	MetricWeighted

	numMetrics
)

var metricNames = [numMetrics]string{
	"occupancy", "classic", "distance", "loss", "elongation",
	"degree", "clustering", "components", "coreness", "weighted",
}

// String returns the metric's canonical name, the one ParseMetrics
// accepts.
func (m Metric) String() string {
	if int(m) < len(metricNames) {
		return metricNames[m]
	}
	return fmt.Sprintf("Metric(%d)", uint8(m))
}

// ParseMetrics parses a comma-separated metric list — e.g.
// "occupancy,loss,elongation" — into the Metric values WithMetrics
// accepts. Empty names are skipped; unknown names error.
func ParseMetrics(spec string) ([]Metric, error) {
	var out []Metric
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for m, canonical := range metricNames {
			if name == canonical {
				out = append(out, Metric(m))
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("repro: unknown metric %q (have %s)",
				name, strings.Join(metricNames[:], ", "))
		}
	}
	return out, nil
}

// Window scopes part of an analysis to one time window of the stream:
// the plan's metrics are computed over the window's events alone, with
// results reported per window (Report.Window). Windows ride the same
// fused engine pass as the global analysis — coinciding (window, ∆)
// aggregations are built once and shared.
type Window struct {
	// Start, End bound the window's events to [Start, End) in raw
	// stream time.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Grid is the window's candidate aggregation periods; empty derives
	// a logarithmic grid from the window's own resolution and span,
	// like the adaptive per-segment analysis does.
	Grid []int64 `json:"grid,omitempty"`
}

// planConfig is the frozen state of a Plan. Options mutate it during
// NewAnalysis; afterwards it never changes.
type planConfig struct {
	directed      bool
	workers       int
	maxInFlight   int
	histogramBins int
	selectors     []Selector
	grid          []int64
	gridSet       bool
	gridPoints    int
	minDelta      int64
	refine        int
	laneWidth     int
	speculate     bool
	metrics       [numMetrics]bool
	metricsSet    bool
	noGlobal      bool
	windows       []Window
	segments      []SegmentObserver
	observers     []SweepObserver
	adaptive      *AdaptiveConfig
	progress      func(ProgressEvent)
	streamPath    string
	elongSpill    int64
}

func (c *planConfig) metricOn(m Metric) bool { return c.metrics[m] }

func (c *planConfig) anyMetric() bool {
	for _, on := range c.metrics {
		if on {
			return true
		}
	}
	return false
}

// Option configures an analysis plan; see NewAnalysis.
type Option func(*planConfig) error

// WithDirected preserves link orientation in snapshots and temporal
// paths (default: undirected, as the paper analyses its datasets).
func WithDirected(directed bool) Option {
	return func(c *planConfig) error {
		c.directed = directed
		return nil
	}
}

// WithWorkers bounds the engine parallelism; <= 0 (the default) uses
// all CPUs.
func WithWorkers(n int) Option {
	return func(c *planConfig) error {
		c.workers = n
		return nil
	}
}

// WithMaxInFlight bounds how many aggregation periods the engine keeps
// resident at once (layer arena plus product sinks) across everything
// the plan computes; <= 0 (the default) selects the engine default.
// Peak sweep memory is O(MaxInFlight × period footprint), not O(grid).
func WithMaxInFlight(n int) Option {
	return func(c *planConfig) error {
		c.maxInFlight = n
		return nil
	}
}

// WithHistogramBins scores occupancy distributions through fixed-bin
// streaming histograms instead of exact value multisets. Only the M-K
// proximity selector supports this backend; it is intended for very
// large trip populations.
func WithHistogramBins(bins int) Option {
	return func(c *planConfig) error {
		c.histogramBins = bins
		return nil
	}
}

// WithSelectors sets the uniformity measures scoring each candidate
// period of the occupancy metric; the first selector decides the
// saturation scale. Default: M-K proximity only, the paper's choice.
func WithSelectors(sels ...Selector) Option {
	return func(c *planConfig) error {
		c.selectors = append([]Selector(nil), sels...)
		return nil
	}
}

// WithGrid sets the candidate aggregation periods explicitly. Without
// it the plan derives a logarithmic grid from the stream's resolution
// and span (see WithGridPoints and WithMinDelta).
func WithGrid(grid ...int64) Option {
	return func(c *planConfig) error {
		for _, delta := range grid {
			if delta <= 0 {
				return fmt.Errorf("repro: non-positive aggregation period %d", delta)
			}
		}
		c.grid = append([]int64(nil), grid...)
		c.gridSet = true
		return nil
	}
}

// WithGridPoints sets the resolution of derived candidate grids (the
// default logarithmic grid, window grids, adaptive segment grids);
// <= 0 selects the entry point's default.
func WithGridPoints(points int) Option {
	return func(c *planConfig) error {
		c.gridPoints = points
		return nil
	}
}

// WithMinDelta sets the smallest candidate period of derived grids;
// <= 0 (the default) uses the stream's timestamp resolution.
func WithMinDelta(lo int64) Option {
	return func(c *planConfig) error {
		c.minDelta = lo
		return nil
	}
}

// WithRefine adds extra grid points between the neighbours of the best
// period found by the occupancy sweep and re-sweeps once, sharpening
// the saturation scale beyond grid resolution. Each refinement round
// is one more engine pass; every distinct ∆ is swept at most once.
func WithRefine(extra int) Option {
	return func(c *planConfig) error {
		c.refine = extra
		return nil
	}
}

// WithLaneWidth pins the engine's destination-lane width: how many
// destinations each blocked temporal-path sweep relaxes per edge pass.
// 0 (the default) picks the architecture default (8 on 64-bit
// amd64/arm64, 4 elsewhere); 4 and 8 force that width. Every width
// produces bit-identical results — the knob trades per-edge
// amortisation against per-lane state footprint, nothing else.
func WithLaneWidth(width int) Option {
	return func(c *planConfig) error {
		if !sweep.ValidLaneWidth(width) {
			return fmt.Errorf("repro: unsupported lane width %d (want 0, 4 or 8)", width)
		}
		c.laneWidth = width
		return nil
	}
}

// WithSpeculate switches the occupancy refinement to speculative
// bracket bisection: each refinement round stages both candidate
// half-midpoints of the bracket around the running maximum in a single
// engine pass, instead of sweeping one midpoint and waiting for its
// score before staging the next. WithRefine then bounds bisection
// rounds rather than extra grid points. The ∆ sequence swept — and
// therefore the reported scale and curve — is identical to serial
// bisection's; only the pass batching differs.
func WithSpeculate(speculate bool) Option {
	return func(c *planConfig) error {
		c.speculate = speculate
		return nil
	}
}

// WithMetrics selects the built-in curves the analysis computes, for
// the global scope and every window. The default is MetricOccupancy
// alone; WithMetrics with no arguments selects no built-in metric at
// all (useful for plans that only run custom observers or segments).
func WithMetrics(metrics ...Metric) Option {
	return func(c *planConfig) error {
		c.metrics = [numMetrics]bool{}
		c.metricsSet = true
		for _, m := range metrics {
			if int(m) >= int(numMetrics) {
				return fmt.Errorf("repro: unknown metric %v", m)
			}
			c.metrics[m] = true
		}
		return nil
	}
}

// WithWindows adds time windows the plan analyses alongside the whole
// stream, each with the plan's metric set and its own candidate grid.
// Windows are incompatible with WithAdaptive (whose segmentation picks
// its own windows).
func WithWindows(windows ...Window) Option {
	return func(c *planConfig) error {
		for _, w := range windows {
			if w.Start >= w.End {
				return fmt.Errorf("repro: window [%d, %d) is empty", w.Start, w.End)
			}
			for _, delta := range w.Grid {
				if delta <= 0 {
					return fmt.Errorf("repro: non-positive aggregation period %d in window grid", delta)
				}
			}
			w.Grid = append([]int64(nil), w.Grid...)
			c.windows = append(c.windows, w)
		}
		return nil
	}
}

// WithWindowsOnly drops the global scope from the plan: only the
// WithWindows windows are analysed, each with the plan's metric set
// over its own grid. It exists for shard execution — a coordinator
// splitting a plan's (window, ∆) job space dispatches window chunks
// without paying for a redundant whole-stream pass on every worker —
// but composes like any other option. The plan must have windows, and
// custom observers (which attach to the global scope) are rejected.
func WithWindowsOnly() Option {
	return func(c *planConfig) error {
		c.noGlobal = true
		return nil
	}
}

// WithObservers attaches custom sweep observers to the plan's global
// scope: they receive the whole stream's view and every period of the
// plan's base candidate grid from the same engine pass that computes
// the built-in metrics.
func WithObservers(observers ...SweepObserver) Option {
	return func(c *planConfig) error {
		c.observers = append(c.observers, observers...)
		return nil
	}
}

// WithSegments registers raw windowed observer sets (the
// MultiSweepWindowed unit of registration) to run in the plan's engine
// pass, for callers that need full control over per-window grids and
// observers. Most callers want WithWindows instead.
func WithSegments(segments ...SegmentObserver) Option {
	return func(c *planConfig) error {
		c.segments = append(c.segments, segments...)
		return nil
	}
}

// WithAdaptive runs the activity-segmented analysis of the paper's
// conclusion: the stream is split into high- and low-activity segments
// and a saturation scale is determined for the whole stream and every
// sufficiently populated segment, all through fused engine passes
// (Report.Adaptive holds the outcome). Only the segmentation fields of
// cfg (Bins, MinRunBins, SeparationFactor) are read; the execution
// knobs — orientation, workers, selectors, refinement, grids, budgets
// — come from the plan's own options (WithDirected, WithWorkers,
// WithSelectors, WithRefine, WithGridPoints, WithMinDelta,
// WithMaxInFlight), exactly like every other metric, so option order
// never matters.
func WithAdaptive(cfg AdaptiveConfig) Option {
	return func(c *planConfig) error {
		frozen := AdaptiveConfig{
			Bins:             cfg.Bins,
			MinRunBins:       cfg.MinRunBins,
			SeparationFactor: cfg.SeparationFactor,
		}
		c.adaptive = &frozen
		return nil
	}
}

// WithStreamPath builds the plan over a stream file instead of an
// in-memory Stream; the stream argument of NewAnalysis must be nil.
// The format is detected from the file's magic: columnar streams
// (written by cmd/tsconvert) are memory-mapped where the platform
// supports it and handed to the engine without any parse — pre-sorted
// files skip the engine's sort pass (EngineStats.SortSkips) and
// windowed passes read only their span's pages via the file's skip
// index; binary (LSB) and text streams are parsed into memory as
// usual. Call Plan.Close when done with a plan built this way to
// release the mapping.
func WithStreamPath(path string) Option {
	return func(c *planConfig) error {
		if path == "" {
			return fmt.Errorf("repro: empty stream path")
		}
		c.streamPath = path
		return nil
	}
}

// WithElongationSpill caps the resident bytes of the elongation
// metric's delta-encoded pair-span arena; past the cap, finished span
// regions spill to an unlinked temp file that scoring re-reads
// sequentially, so MetricElongation runs on streams whose span
// population exceeds RAM. <= 0 (the default) keeps the arena in RAM.
// The curve is bit-identical for any cap.
func WithElongationSpill(bytes int64) Option {
	return func(c *planConfig) error {
		c.elongSpill = bytes
		return nil
	}
}

// WithProgress registers a progress hook: fn receives one ProgressEvent
// per engine milestone (run planned, raw-stream trips enumerated, each
// period scored), with Pass set to the bisection round for multi-pass
// plans. Calls are serialised but run on engine goroutines — fn must
// return quickly and must not call back into the plan.
func WithProgress(fn func(ProgressEvent)) Option {
	return func(c *planConfig) error {
		c.progress = fn
		return nil
	}
}

// ProgressEvent is one engine milestone of a running plan; see
// WithProgress and the sweep-engine documentation for field semantics.
type ProgressEvent = sweep.ProgressEvent

// ProgressStage identifies what a ProgressEvent reports.
type ProgressStage = sweep.Stage

// Progress stages, re-exported from the engine.
const (
	// ProgressPlanned: a pass sorted the stream and planned its period
	// jobs; PeriodsTotal is known from here on.
	ProgressPlanned = sweep.StagePlanned
	// ProgressStreamTrips: one raw-stream trip enumeration completed.
	ProgressStreamTrips = sweep.StageStreamTrips
	// ProgressPeriod: one (segment, ∆) period was delivered to its
	// observers.
	ProgressPeriod = sweep.StagePeriod
)

// EngineStats aggregates the engine instrumentation of a plan's run:
// passes (and how many of them skipped the sort because the source was
// a pre-sorted columnar stream — SortSkips), period CSR builds,
// (window, ∆) dedup hits, raw-stream trip enumerations, periods
// delivered, and the peak number of periods simultaneously resident.
type EngineStats = sweep.RunStats
