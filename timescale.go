// Package repro is a Go implementation of the occupancy method from
// "Non-Altering Time Scales for Aggregation of Dynamic Networks into
// Series of Graphs" (Léo, Crespelle, Fleury — CoNEXT 2015).
//
// A dynamic network given as a link stream — triplets (u, v, t) — is
// usually studied after aggregation into a series of graphs over
// disjoint windows of length ∆. This package determines the saturation
// scale γ of a stream: the largest ∆ for which the aggregated series
// still faithfully describes the propagation properties (temporal
// paths) of the original stream. Aggregating beyond γ alters them.
//
// # The plan/run lifecycle
//
// Every analysis goes through one composable lifecycle: NewAnalysis
// freezes a request into an immutable Plan via functional options, and
// Plan.Run(ctx) executes it as fused engine passes:
//
//	s := repro.NewStream()
//	s.Add("alice", "bob", 1630000000)
//	// ... add events ...
//	plan, err := repro.NewAnalysis(s, repro.WithRefine(4))
//	report, err := plan.Run(ctx)
//	fmt.Println("gamma:", report.Gamma(), "seconds")
//
// Options select metrics (WithMetrics: the sweep metrics — occupancy,
// classical properties, distances, transition loss, elongation — and
// the per-∆ snapshot metrics — degree, clustering, components,
// coreness, weighted aggregation — each a MetricCurve in the Report;
// see docs/METRICS.md), candidate grids
// (WithGrid, WithGridPoints, WithMinDelta), extra analysis windows
// (WithWindows), the refinement policy (WithRefine), activity-adaptive
// segmentation (WithAdaptive), worker and memory budgets (WithWorkers,
// WithMaxInFlight, WithHistogramBins) and custom observers
// (WithObservers, WithSegments). However much one plan requests, it is
// executed as one fused engine pass per bisection round — the stream
// sorted once, every distinct (window, ∆) aggregation built and swept
// exactly once — and the typed Report carries per-metric and
// per-window accessors plus the run's EngineStats.
//
// Run honours ctx end to end: an already-cancelled context returns
// before the stream is sorted, and a mid-run cancellation drains the
// in-flight pipeline, recycles every pooled buffer and joins every
// worker before returning ctx.Err(). WithProgress streams engine
// milestones (periods scored, trip enumerations, per-pass counters)
// while the plan runs.
//
// The former entry points — SaturationScale, Sweep, MultiSweep,
// MultiSweepWindowed, ClassicProperties, TransitionLoss, Elongation,
// AnalyzeAdaptive — remain as deprecated thin wrappers over a Plan,
// pinned bit-exact by equivalence tests.
//
// # The sweep engine and observers
//
// Every per-∆ analysis in the paper shares one shape: aggregate the
// stream at each candidate period, run the temporal-path engine over
// the layered graph, and feed what falls out to a metric. The unified
// sweep engine (internal/sweep) runs that loop once: the stream is
// sorted and canonicalised a single time, each period's layer arena is
// built and swept exactly once, and the products of that single
// backward sweep — minimal trips, occupancy rates, distance segments,
// per-window snapshot statistics, the raw stream's minimal trips — fan
// out to registered observers. The occupancy method
// (NewOccupancyObserver), the classical Figure 2 properties
// (NewClassicObserver), the Section 8 validation curves
// (NewTransitionLossObserver, NewElongationObserver) and the distance
// curves (NewDistanceObserver) are all such observers; MultiSweep runs
// any combination of them — or custom ones — in one fused pass, so a
// new metric is a ~50-line observer rather than a new sweep loop. The
// snapshot metrics (internal/metrics: degree, clustering, components,
// coreness, weighted aggregation) ride two further lanes of the same
// build — SweepNeeds.Snapshots hands ObservePeriod the period's layer
// arena itself, and SweepNeeds.EdgeWeights its per-edge contact
// counts — so scoring the structure of G∆ adds no pass and no build
// either; docs/ARCHITECTURE.md walks through writing one.
//
// Period scheduling is a bounded in-flight pipeline. At most
// Options.MaxInFlight periods are resident at once (layer arena plus
// product sinks): each period is built, swept by the shared worker
// pool, scored by every observer and freed before the pipeline admits
// another, so a sweep's peak memory is O(MaxInFlight × period
// footprint) instead of O(grid × period footprint) — wide logarithmic
// ∆ grids run over large streams in bounded space, at the cost of a
// little scheduling slack (MaxInFlight ≥ 2 overlaps arena construction
// with sweeping; 1 fully serialises).
//
// # The streaming trip pipeline
//
// Observers that consume the raw stream's minimal trips have two
// registration modes. The eager mode (SweepNeeds.StreamTrips) hands
// Begin one flat slice of every trip — simple, but its residency is
// O(total trips), and for long streams the trip population, not the
// sweep, bounds memory. The streaming mode (SweepNeeds.StreamTripRuns,
// observers implementing SweepTripRunObserver) instead delivers the
// enumeration as per-destination runs in strictly increasing
// destination order: each run is scored and recycled before the next
// block of destinations is swept, so at most MaxInFlight destination
// blocks of trips ever exist at once. The Section 8 validation
// observers are built on it — the transition-loss observer keeps only
// the two-hop spans, and the elongation observer merges each run into
// an incremental pair index — with the eager implementations retained
// as bit-exact references.
//
// Per-period trip scans shard the same way: a SweepShardedTripObserver
// (SweepNeeds.TripShards) receives one SweepTripShard per period, fed
// one destination block at a time on the worker that swept it, with
// per-lane partial sums folded in lane order — bit-for-bit identical
// results for any worker count, without the period ever holding its
// trips whole. Coinciding work across windowed segments is
// deduplicated automatically: segments requesting the same (window, ∆)
// share one layer arena and one backward sweep, and segments sharing an
// event window share one raw-stream trip enumeration.
//
// # Stream formats and out-of-core ingest
//
// A stream can reach the engine three ways. Text ("<u> <v> <t>" per
// line) and the row-oriented LSB binary codec (WriteBinary/ReadBinary,
// versioned header — unknown future versions are refused, never
// misdecoded) both parse into an in-memory Stream; Stream.ReadAny
// detects the format from the leading bytes. The LSC columnar format
// (cmd/tsconvert, linkstream.WriteColumnar) is the out-of-core path:
// parallel time/source/destination column arrays behind an index
// header (node table, event count, time span, sorted/canonical flags,
// sparse time→offset skip index), opened memory-mapped where the
// platform supports it and handed to the engine with zero parse.
//
// WithStreamPath builds a plan over such a file (the stream argument
// of NewAnalysis must be nil):
//
//	plan, err := repro.NewAnalysis(nil, repro.WithStreamPath("trace.lsc"))
//	defer plan.Close() // releases the mapping
//	report, err := plan.Run(ctx)
//
// Because tsconvert writes the columns time-sorted, the engine skips
// its sort/canonicalise pass entirely (EngineStats.SortSkips counts
// the passes that took the fast path), and every windowed pass
// binary-searches the skip index so a [Start, End) window materialises
// only its own span — the rest of the file's pages are never touched.
// The report is bit-identical to the same analysis over the parsed
// text stream; the equivalence suite pins this across seeds ×
// orientations. Non-columnar paths given to WithStreamPath are simply
// parsed into memory, so one flag serves every format.
//
// The elongation metric is out-of-core on the other axis: its pair
// index over the raw stream's minimal-trip spans is a delta-encoded
// destination-major arena, and WithElongationSpill caps its resident
// bytes — beyond the cap, finished regions spill to an unlinked temp
// file re-read sequentially during scoring. The curve is bit-identical
// for any cap, so Section 8 validation runs on streams whose span
// population exceeds RAM.
//
// # Serving analyses
//
// The wire surface (wire.go) expresses an analysis request as data:
// PlanSpec is the serialisable form of NewAnalysis's functional
// options, every field mapping onto exactly one option
// (PlanSpec.Options), with the stream referenced either by columnar
// file — path plus Columnar header hash, so a receiver can refuse a
// ref whose file changed — or by events inlined in the spec. Report
// gains a deterministic JSON form whose bytes are identical whenever
// the results are: per-run engine instrumentation (EngineStats) stays
// out of it by design, since results are pinned bit-identical across
// worker counts, lane widths and in-flight budgets while the
// instrumentation of a particular run is not.
//
//	spec := &repro.PlanSpec{
//		Stream:  &repro.StreamRef{Path: "trace.lsc"},
//		Metrics: []string{"occupancy", "loss"},
//		Refine:  4,
//	}
//	plan, err := spec.NewPlan()        // same plan as hand-written options
//	defer plan.Close()
//	report, err := plan.Run(ctx)
//
// On top of it, internal/serve and cmd/tsserve provide
// analysis-as-a-service: a versioned envelope codec (unknown versions
// and fields rejected by name, fuzz-pinned), a bounded job queue with
// per-tenant concurrency budgets, and a result cache keyed by the
// spec's result identity — stream fingerprint plus every
// result-affecting knob, never the execution hints — so coinciding
// submissions cost one engine run. Attached clients hold leases on
// their run; when the last one disconnects the run's context is
// cancelled and the engine unwinds through the same abort paths as a
// local Run. An HTTP-fetched report is byte-identical to the same
// plan run in-process (tsscale -json prints the same envelope for
// offline comparison). See the README's "Serving analyses" section
// for the endpoint walkthrough.
//
// # Performance tuning
//
// Every speed knob is bit-exact: any setting produces identical
// results, only wall-clock and allocation profiles move.
//
// WithLaneWidth selects the sweep kernel width. The backward sweep
// relaxes destinations in hand-unrolled blocks of 4 or 8 lanes; width
// 0 (the default) resolves to 8 on amd64 and arm64 — a node's packed
// int64 lanes span exactly one cache line, and the wider block halves
// the layer passes per destination set — and 4 elsewhere. The lane
// equivalence suites pin every width to the reference sweep bit for
// bit.
//
// WithSpeculate turns on speculative bracket bisection for scale
// searches. Serial bisection sweeps one bracket midpoint per engine
// pass; speculation stages both half-midpoints of the current bracket
// into a single fused pass, halving refinement passes while sweeping
// the identical ∆ sequence (one of the two sweeps is discarded).
// WithRefine bounds bisection rounds either way. Adaptive plans fuse
// the speculative grids of the global and every per-segment search
// into one windowed pass per round.
//
// Per-period layer arenas are pooled automatically, size-classed by
// (nodes, events) powers of two, shelf-capped and idle-evicted so a
// one-off huge period cannot pin memory under later tiny-period
// churn. Report.EngineStats exposes the arena counters (handed,
// reused, recycled); handed always equals recycled once a run
// returns — on success, cancellation and observer failure alike.
//
// For binary-level tuning, `make pgo` profiles the fused hot-path
// benchmarks per-benchmark, merges the CPU profiles into default.pgo
// and rebuilds with -pgo; CI exercises the pipeline on every push.
//
// The subpackages under internal/ expose the full machinery:
// aggregation (internal/series), the temporal-path engine
// (internal/temporal), the sweep engine (internal/sweep), the
// uniformity metrics (internal/dist), synthetic workloads
// (internal/synth) and the figure harness (internal/figures). This
// root package re-exports the surface most applications need.
package repro

import (
	"context"

	"repro/internal/adaptive"
	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/sweep"
	"repro/internal/temporal"
	"repro/internal/validate"
)

// optionsFromCore maps the legacy Options struct onto plan options
// (minus the grid, which each wrapper handles explicitly).
func optionsFromCore(opt Options) []Option {
	return []Option{
		WithDirected(opt.Directed),
		WithWorkers(opt.Workers),
		WithSelectors(opt.Selectors...),
		WithRefine(opt.Refine),
		WithHistogramBins(opt.HistogramBins),
		WithMaxInFlight(opt.MaxInFlight),
	}
}

// Stream is a link stream: a finite collection of (u, v, t) events over
// an interned node set. See NewStream.
type Stream = linkstream.Stream

// Event is a single link occurrence.
type Event = linkstream.Event

// Options configures the occupancy method (see core.Options).
type Options = core.Options

// Result is the outcome of the occupancy method: the saturation scale
// Gamma and the full score curve.
type Result = core.Result

// SweepPoint is one scored aggregation period of a sweep.
type SweepPoint = core.SweepPoint

// Sample is an empirical occupancy-rate distribution on [0,1].
type Sample = dist.Sample

// Selector scores how uniformly a distribution spreads over [0,1].
type Selector = dist.Selector

// Series is a link stream aggregated into a series of graphs.
type Series = series.Series

// Trip is a minimal trip (u, v, departure, arrival, hops).
type Trip = temporal.Trip

// NewStream returns an empty link stream.
func NewStream() *Stream { return linkstream.New() }

// SaturationScale runs the occupancy method on the stream and returns
// its saturation scale γ together with the score curve.
//
// Deprecated: build a Plan instead — NewAnalysis(s, ...) followed by
// Plan.Run(ctx) — which adds cancellation, progress streaming and
// fused extra metrics. This wrapper is a Plan with the options of opt
// and remains bit-exact with it.
func SaturationScale(s *Stream, opt Options) (Result, error) {
	opts := optionsFromCore(opt)
	if len(opt.Grid) > 0 {
		opts = append(opts, WithGrid(opt.Grid...))
	}
	plan, err := NewAnalysis(s, opts...)
	if err != nil {
		return Result{}, err
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		return Result{}, err
	}
	res, _ := rep.Scale()
	return res, nil
}

// OccupancyDistribution aggregates the stream at period delta and
// returns the distribution of occupancy rates of the minimal trips of
// the aggregated series.
func OccupancyDistribution(s *Stream, delta int64, opt Options) (*Sample, error) {
	return core.OccupancySample(s, delta, opt)
}

// Sweep scores every candidate period with the selectors in opt.
//
// Deprecated: use NewAnalysis(s, WithGrid(grid...), ...) and read
// Report.Occupancy from Plan.Run. This wrapper is that plan (without
// refinement, like Sweep always was) and remains bit-exact with it.
func Sweep(s *Stream, grid []int64, opt Options) ([]SweepPoint, error) {
	opt.Refine = 0
	plan, err := NewAnalysis(s, append(optionsFromCore(opt), WithGrid(grid...))...)
	if err != nil {
		return nil, err
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return rep.Occupancy(), nil
}

// Aggregate builds the graph series G∆ from the stream (Definition 1 of
// the paper).
func Aggregate(s *Stream, delta int64, directed bool) (*Series, error) {
	return series.Aggregate(s, delta, directed)
}

// MinimalTrips enumerates all minimal trips of the aggregated series.
func MinimalTrips(g *Series) []Trip {
	cfg := temporal.Config{N: g.N, Directed: g.Directed}
	return temporal.CollectTripsCSR(cfg, temporal.SeriesCSR(g))
}

// StreamMinimalTrips enumerates all minimal trips of the raw stream
// (layer per distinct timestamp).
func StreamMinimalTrips(s *Stream, directed bool) []Trip {
	cfg := temporal.Config{N: s.NumNodes(), Directed: directed}
	return temporal.CollectTripsCSR(cfg, temporal.StreamCSR(s, directed))
}

// LayeredCSR is the flat arena representation the temporal engine runs
// on: one contiguous endpoint array plus per-layer offsets. Build one
// with SeriesCSR or StreamCSR to amortise conversion across repeated
// queries on the same layered graph.
type LayeredCSR = temporal.CSR

// SeriesCSR builds the engine arena of an aggregated series.
func SeriesCSR(g *Series) *LayeredCSR { return temporal.SeriesCSR(g) }

// StreamCSR builds the engine arena of the raw stream (one layer per
// distinct timestamp, canonicalised unless directed).
func StreamCSR(s *Stream, directed bool) *LayeredCSR { return temporal.StreamCSR(s, directed) }

// CSRMinimalTrips enumerates all minimal trips of a prebuilt arena.
func CSRMinimalTrips(c *LayeredCSR, n int, directed bool) []Trip {
	return temporal.CollectTripsCSR(temporal.Config{N: n, Directed: directed}, c)
}

// CSROccupancies returns the occupancy rates of all minimal trips of a
// prebuilt arena.
func CSROccupancies(c *LayeredCSR, n int, directed bool) []float64 {
	return temporal.OccupanciesCSR(temporal.Config{N: n, Directed: directed}, c)
}

// DefaultGridPoints is the number of candidate periods a derived
// logarithmic grid contains by default.
const DefaultGridPoints = core.DefaultGridPoints

// BestPoint returns the index of the sweep point maximising selector
// selIdx (ties break towards the smaller ∆).
func BestPoint(points []SweepPoint, selIdx int) int { return core.Best(points, selIdx) }

// LogGrid returns a geometrically spaced candidate-period grid.
func LogGrid(lo, hi int64, points int) []int64 { return core.LogGrid(lo, hi, points) }

// LinearGrid returns an evenly spaced candidate-period grid.
func LinearGrid(lo, hi int64, points int) []int64 { return core.LinearGrid(lo, hi, points) }

// AllSelectors returns the five uniformity measures compared in the
// paper's Section 7.
func AllSelectors() []Selector { return dist.AllSelectors() }

// ClassicPoint holds the classical graph-series properties (Figure 2)
// at one aggregation period.
type ClassicPoint = classic.Point

// ClassicProperties computes density, connectedness and distance
// properties of the aggregated series across the candidate grid.
//
// Deprecated: use NewAnalysis(s, WithMetrics(MetricClassic),
// WithGrid(grid...), ...) and read Report.Classic from Plan.Run. This
// wrapper is that plan and remains bit-exact with it.
func ClassicProperties(s *Stream, grid []int64, directed bool, workers int) ([]ClassicPoint, error) {
	plan, err := NewAnalysis(s, WithMetrics(MetricClassic), WithGrid(grid...),
		WithDirected(directed), WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return rep.Classic(), nil
}

// LossPoint is the proportion of shortest transitions lost at one
// period (Section 8).
type LossPoint = validate.LossPoint

// TransitionLoss computes the proportion of the stream's shortest
// transitions that collapse inside one aggregation window, per period.
//
// Deprecated: use NewAnalysis(s, WithMetrics(MetricTransitionLoss),
// WithGrid(grid...), ...) and read Report.TransitionLoss from
// Plan.Run. This wrapper is that plan and remains bit-exact with it.
func TransitionLoss(s *Stream, grid []int64, directed bool, workers int) ([]LossPoint, error) {
	plan, err := NewAnalysis(s, WithMetrics(MetricTransitionLoss), WithGrid(grid...),
		WithDirected(directed), WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return rep.TransitionLoss(), nil
}

// ElongationPoint is the mean elongation factor at one period
// (Section 8, Definition 8).
type ElongationPoint = validate.ElongationPoint

// Elongation computes the mean elongation factor of the minimal trips
// of the aggregated series versus the raw stream, per period.
//
// Deprecated: use NewAnalysis(s, WithMetrics(MetricElongation),
// WithGrid(grid...), ...) and read Report.Elongation from Plan.Run.
// This wrapper is that plan and remains bit-exact with it.
func Elongation(s *Stream, grid []int64, directed bool, workers int) ([]ElongationPoint, error) {
	plan, err := NewAnalysis(s, WithMetrics(MetricElongation), WithGrid(grid...),
		WithDirected(directed), WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return rep.Elongation(), nil
}

// AdaptiveConfig configures the activity-segmented analysis (the
// extension proposed in the paper's conclusion).
type AdaptiveConfig = adaptive.Config

// AdaptiveAnalysis is the outcome of AnalyzeAdaptive.
type AdaptiveAnalysis = adaptive.Analysis

// AdaptiveSegment is one activity segment of an AdaptiveAnalysis.
type AdaptiveSegment = adaptive.Segment

// AnalyzeAdaptive separates high- and low-activity periods of the
// stream and determines a saturation scale for each part independently,
// as the paper's conclusion proposes for strongly heterogeneous
// streams. The global sweep and every per-segment sweep run as one
// fused engine pass per analysis round — the stream is sorted once and
// each (segment, ∆) arena is built exactly once, no matter how many
// segments the stream splits into.
//
// Deprecated: use NewAnalysis(s, WithAdaptive(cfg)) and read
// Report.Adaptive from Plan.Run. This wrapper is that plan and remains
// bit-exact with it.
func AnalyzeAdaptive(s *Stream, cfg AdaptiveConfig) (*AdaptiveAnalysis, error) {
	return AnalyzeAdaptiveWith(s, cfg)
}

// AnalyzeAdaptiveWith is AnalyzeAdaptive with extra observers attached
// to the global scope's initial engine pass: they receive the whole
// stream's view and every period of the global candidate grid from the
// same pass that prices the global scale.
//
// Deprecated: use NewAnalysis(s, WithAdaptive(cfg),
// WithObservers(global...)) and read Report.Adaptive from Plan.Run.
// This wrapper is that plan — cfg's execution fields mapped onto the
// matching plan options, since WithAdaptive reads only the
// segmentation knobs — and remains bit-exact with it.
func AnalyzeAdaptiveWith(s *Stream, cfg AdaptiveConfig, global ...SweepObserver) (*AdaptiveAnalysis, error) {
	plan, err := NewAnalysis(s,
		WithAdaptive(cfg),
		WithDirected(cfg.Directed),
		WithWorkers(cfg.Workers),
		WithMaxInFlight(cfg.MaxInFlight),
		WithSelectors(cfg.Selectors...),
		WithRefine(cfg.Refine),
		WithGridPoints(cfg.GridPoints),
		WithMinDelta(cfg.MinDelta),
		WithObservers(global...),
	)
	if err != nil {
		return nil, err
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return rep.Adaptive(), nil
}

// SweepObserver consumes the products of a unified sweep-engine run;
// see MultiSweep.
type SweepObserver = sweep.Observer

// SweepNeeds declares which engine products an observer consumes.
type SweepNeeds = sweep.Needs

// SweepStreamView is the stream-level context handed to a
// SweepObserver's Begin.
type SweepStreamView = sweep.StreamView

// SweepPeriod is the per-period view handed to a SweepObserver's
// ObservePeriod.
type SweepPeriod = sweep.Period

// SweepTripRunObserver is the streaming consumer of the raw stream's
// minimal trips: per-destination runs in strictly increasing
// destination order, recycled as soon as the call returns. Declare
// SweepNeeds.StreamTripRuns to receive them.
type SweepTripRunObserver = sweep.TripRunObserver

// SweepTripShard is the per-period state of a sharded trip scan; the
// engine feeds it one destination block of minimal trips at a time on
// the worker that swept the block.
type SweepTripShard = sweep.TripShard

// SweepShardedTripObserver is an observer whose per-period trip scan is
// sharded across the engine's worker pool (SweepNeeds.TripShards).
type SweepShardedTripObserver = sweep.ShardedTripObserver

// SweepEngineOptions configures a MultiSweep run, including the
// MaxInFlight bound on resident periods.
type SweepEngineOptions = sweep.Options

// MultiSweep runs the unified sweep engine over the candidate grid,
// fanning every period's products to the registered observers in one
// pass: the stream is sorted once, each period's layer arena is built
// and swept exactly once, and at most opt.MaxInFlight periods are
// resident at any moment. Use the New*Observer constructors for the
// built-in metrics, or implement SweepObserver for custom ones.
//
// Deprecated: use NewAnalysis(s, WithGrid(grid...), WithMetrics(),
// WithObservers(observers...)) and Plan.Run, which adds cancellation
// and a typed Report. This wrapper is that plan and remains bit-exact
// with it.
func MultiSweep(s *Stream, grid []int64, opt SweepEngineOptions, observers ...SweepObserver) error {
	plan, err := NewAnalysis(s,
		WithMetrics(),
		WithGrid(grid...),
		WithDirected(opt.Directed),
		WithWorkers(opt.Workers),
		WithMaxInFlight(opt.MaxInFlight),
		WithHistogramBins(opt.HistogramBins),
		WithProgress(opt.Progress),
		WithObservers(observers...),
	)
	if err != nil {
		return err
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		return err
	}
	if opt.Stats != nil {
		opt.Stats.Add(rep.EngineStats())
	}
	return nil
}

// SegmentObserver scopes a set of observers to one time window of the
// stream with its own candidate grid — the unit of windowed observer
// registration for MultiSweepWindowed. A Start >= End window (the zero
// value) selects the whole stream.
type SegmentObserver = sweep.SegmentObserver

// MultiSweepWindowed runs one engine pass serving several time windows
// at once: each SegmentObserver's observers see exactly what a
// MultiSweep over the window's sub-stream would hand them, while the
// sort/canonicalise work, the worker pool and the MaxInFlight bound are
// shared by every window.
//
// Deprecated: use NewAnalysis(s, WithMetrics(),
// WithSegments(segments...)) and Plan.Run — or WithWindows for the
// common per-window metric case. This wrapper is that plan and remains
// bit-exact with it.
func MultiSweepWindowed(s *Stream, opt SweepEngineOptions, segments ...SegmentObserver) error {
	plan, err := NewAnalysis(s,
		WithMetrics(),
		WithDirected(opt.Directed),
		WithWorkers(opt.Workers),
		WithMaxInFlight(opt.MaxInFlight),
		WithHistogramBins(opt.HistogramBins),
		WithProgress(opt.Progress),
		WithSegments(segments...),
	)
	if err != nil {
		return err
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		return err
	}
	if opt.Stats != nil {
		opt.Stats.Add(rep.EngineStats())
	}
	return nil
}

// SweepRunner executes one engine pass for SaturationScaleWith: score
// every period of grid with obs.
type SweepRunner = core.SweepRunner

// ScaleSearch is the occupancy method as a resumable bisection,
// letting a caller batch the engine passes of many concurrent searches
// (see core.ScaleSearch for the protocol).
type ScaleSearch = core.ScaleSearch

// NewScaleSearch stages a scale search over opt.Grid.
func NewScaleSearch(opt Options) (*ScaleSearch, error) { return core.NewScaleSearch(opt) }

// SaturationScaleWith runs the occupancy method's sweep-then-refine
// bisection through a caller-supplied engine pass. Callers that do not
// need a custom runner should build a Plan instead (NewAnalysis).
func SaturationScaleWith(opt Options, run SweepRunner) (Result, error) {
	return core.SaturationScaleWith(context.Background(), opt, run)
}

// OccupancyObserver scores per-period occupancy distributions (the
// occupancy method) inside a MultiSweep.
type OccupancyObserver = core.OccupancyObserver

// NewOccupancyObserver returns an occupancy-method observer scoring
// with the given selectors (nil = M-K proximity only).
func NewOccupancyObserver(sels []Selector) *OccupancyObserver {
	return core.NewOccupancyObserver(sels)
}

// ClassicObserver collects the Figure 2 classical properties inside a
// MultiSweep.
type ClassicObserver = classic.Observer

// NewClassicObserver returns a classical-properties observer.
func NewClassicObserver() *ClassicObserver { return classic.NewObserver() }

// TransitionLossObserver collects the Section 8 transition-loss curve
// inside a MultiSweep.
type TransitionLossObserver = validate.TransitionLossObserver

// NewTransitionLossObserver returns a transition-loss observer.
func NewTransitionLossObserver() *TransitionLossObserver {
	return validate.NewTransitionLossObserver()
}

// ElongationObserver collects the Section 8 elongation curve inside a
// MultiSweep.
type ElongationObserver = validate.ElongationObserver

// NewElongationObserver returns an elongation observer.
func NewElongationObserver() *ElongationObserver { return validate.NewElongationObserver() }

// DistancePoint is one period's mean temporal distances (Figure 2
// bottom panels).
type DistancePoint = sweep.DistancePoint

// DistanceObserver collects the distance curves inside a MultiSweep,
// from the same backward sweeps every other observer shares.
type DistanceObserver = sweep.DistanceObserver

// NewDistanceObserver returns a distance observer.
func NewDistanceObserver() *DistanceObserver { return sweep.NewDistanceObserver() }

// EarliestArrivals answers the forward query on an aggregated series:
// departing from src at window startWindow or later, the earliest
// arrival window at every node (temporal.Unreachable if none) and the
// minimum hops among paths realising it.
func EarliestArrivals(g *Series, src int32, startWindow int64) (arr []int64, hops []int32) {
	cfg := temporal.Config{N: g.N, Directed: g.Directed}
	return temporal.EarliestArrivalsCSR(cfg, temporal.SeriesCSR(g), src, startWindow)
}

// StreamEarliestArrivals answers the forward query on the raw stream,
// with raw timestamps.
func StreamEarliestArrivals(s *Stream, src int32, startTime int64, directed bool) (arr []int64, hops []int32) {
	cfg := temporal.Config{N: s.NumNodes(), Directed: directed}
	return temporal.EarliestArrivalsCSR(cfg, temporal.StreamCSR(s, directed), src, startTime)
}

// ReachablePairs counts the ordered pairs (u, v) connected by at least
// one temporal path in the aggregated series.
func ReachablePairs(g *Series) int64 {
	cfg := temporal.Config{N: g.N, Directed: g.Directed}
	return temporal.CountReachablePairsCSR(cfg, temporal.SeriesCSR(g))
}

// Unreachable is the earliest-arrival value of unreachable nodes.
const Unreachable = temporal.Unreachable
