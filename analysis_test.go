package repro

// Behavioural tests of the plan/run lifecycle: option validation, the
// typed Report, windows, progress streaming, engine statistics and
// plan immutability.

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/synth"
)

func twoModeWorkload(t testing.TB) *Stream {
	t.Helper()
	s, err := synth.TwoMode(synth.TwoModeConfig{
		Nodes: 16, N1: 20, N2: 1,
		T1: 20_000, T2: 40_000, Alternations: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewAnalysisValidation(t *testing.T) {
	s := uniformWorkload(t)
	cases := []struct {
		name string
		s    *Stream
		opts []Option
	}{
		{"nil stream", nil, nil},
		{"empty stream", NewStream(), nil},
		{"empty grid", s, []Option{WithGrid()}},
		{"non-positive grid entry", s, []Option{WithGrid(10, 0)}},
		{"adaptive with windows", s, []Option{WithAdaptive(AdaptiveConfig{}), WithWindows(Window{Start: 0, End: 10})}},
		{"adaptive with explicit grid", s, []Option{WithAdaptive(AdaptiveConfig{}), WithGrid(1, 2)}},
		{"adaptive with segments", s, []Option{WithAdaptive(AdaptiveConfig{}), WithSegments(SegmentObserver{Grid: []int64{1}})}},
		{"adaptive with histogram", s, []Option{WithAdaptive(AdaptiveConfig{}), WithHistogramBins(64)}},
		{"histogram with non-MK selector", s, []Option{WithHistogramBins(64), WithSelectors(AllSelectors()...)}},
		{"nothing to compute", s, []Option{WithMetrics()}},
		{"window without metric", s, []Option{WithMetrics(), WithObservers(NewOccupancyObserver(nil)), WithWindows(Window{Start: 0, End: 10_000})}},
		{"empty window", s, []Option{WithWindows(Window{Start: 5, End: 5})}},
		{"bad window grid", s, []Option{WithWindows(Window{Start: 0, End: 10, Grid: []int64{-1}})}},
		{"unknown metric", s, []Option{WithMetrics(Metric(250))}},
	}
	for _, tc := range cases {
		if _, err := NewAnalysis(tc.s, tc.opts...); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := NewAnalysis(NewStream()); err != ErrNoEvents {
		t.Errorf("empty stream error = %v, want ErrNoEvents", err)
	}
}

func TestParseMetrics(t *testing.T) {
	ms, err := ParseMetrics(" occupancy, loss,elongation ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Metric{MetricOccupancy, MetricTransitionLoss, MetricElongation}
	if !reflect.DeepEqual(ms, want) {
		t.Fatalf("ParseMetrics = %v, want %v", ms, want)
	}
	if _, err := ParseMetrics("occupancy,warp"); err == nil {
		t.Fatal("unknown metric should error")
	}
	for m := Metric(0); m < 5; m++ {
		round, err := ParseMetrics(m.String())
		if err != nil || len(round) != 1 || round[0] != m {
			t.Fatalf("metric %v does not round-trip: %v %v", m, round, err)
		}
	}
}

func TestPlanRunAllMetricsReport(t *testing.T) {
	s := uniformWorkload(t)
	grid := LogGrid(1, 50_000, 10)
	plan, err := NewAnalysis(s,
		WithMetrics(MetricOccupancy, MetricClassic, MetricDistance, MetricTransitionLoss, MetricElongation),
		WithGrid(grid...),
		WithRefine(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, ok := rep.Scale()
	if !ok || res.Gamma <= 0 {
		t.Fatalf("Scale = %+v ok=%v", res, ok)
	}
	if rep.Gamma() != res.Gamma {
		t.Fatalf("Gamma accessor mismatch")
	}
	if len(rep.Occupancy()) < len(grid) {
		t.Fatalf("occupancy curve %d points, want >= %d (refined)", len(rep.Occupancy()), len(grid))
	}
	// The non-occupancy curves see the unrefined grid.
	for name, n := range map[string]int{
		"classic":    len(rep.Classic()),
		"distance":   len(rep.Distances()),
		"loss":       len(rep.TransitionLoss()),
		"elongation": len(rep.Elongation()),
	} {
		if n != len(grid) {
			t.Fatalf("%s curve has %d points, want %d", name, n, len(grid))
		}
	}
	st := rep.EngineStats()
	if st.Passes != 2 {
		t.Fatalf("Passes = %d, want 2 (base + refine)", st.Passes)
	}
	if st.Builds == 0 || st.Periods == 0 {
		t.Fatalf("engine stats not populated: %+v", st)
	}
	if st.StreamBuilds != 1 {
		t.Fatalf("StreamBuilds = %d, want 1 (loss and elongation share the enumeration)", st.StreamBuilds)
	}
}

func TestPlanRunWindows(t *testing.T) {
	s := twoModeWorkload(t)
	t0, t1, _ := s.Span()
	mid := (t0 + t1) / 2
	plan, err := NewAnalysis(s,
		WithMetrics(MetricOccupancy, MetricTransitionLoss),
		WithGridPoints(8),
		WithWindows(
			Window{Start: t0, End: mid},
			Window{Start: mid, End: t1 + 1, Grid: LogGrid(1, 1000, 6)},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumWindows() != 2 {
		t.Fatalf("NumWindows = %d, want 2", rep.NumWindows())
	}
	for i, w := range rep.Windows() {
		if w.Scale.Gamma <= 0 {
			t.Fatalf("window %d: no scale: %+v", i, w.Scale)
		}
		if len(w.Curves.Occupancy) == 0 || len(w.Curves.TransitionLoss) == 0 {
			t.Fatalf("window %d: missing curves", i)
		}
	}
	if got := rep.Window(1); len(got.Curves.TransitionLoss) != 6 {
		t.Fatalf("window 1 loss curve %d points, want 6 (explicit grid)", len(got.Curves.TransitionLoss))
	}

	// A window's analysis must be exactly the whole-stream analysis of
	// the window's sub-stream.
	sub := s.SliceTime(rep.Window(0).Start, rep.Window(0).End)
	subPlan, err := NewAnalysis(sub, WithMetrics(MetricOccupancy, MetricTransitionLoss), WithGridPoints(8))
	if err != nil {
		t.Fatal(err)
	}
	subRep, err := subPlan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Window(0).Scale, func() Result { r, _ := subRep.Scale(); return r }()) {
		t.Fatalf("window scale diverges from sub-stream scale:\n%+v\nvs\n%+v", rep.Window(0).Scale, subRep)
	}
	if !reflect.DeepEqual(rep.Window(0).Curves.TransitionLoss, subRep.TransitionLoss()) {
		t.Fatal("window loss curve diverges from sub-stream loss curve")
	}
}

func TestPlanRunAdaptiveReport(t *testing.T) {
	s := twoModeWorkload(t)
	plan, err := NewAnalysis(s,
		WithAdaptive(AdaptiveConfig{Bins: 60}),
		WithGridPoints(10),
		WithMetrics(MetricOccupancy, MetricClassic),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Adaptive()
	if a == nil {
		t.Fatal("no adaptive analysis")
	}
	if rep.Gamma() != a.GlobalGamma {
		t.Fatalf("Gamma = %d, want the adaptive global gamma %d", rep.Gamma(), a.GlobalGamma)
	}
	if len(rep.Classic()) == 0 {
		t.Fatal("classic curve missing from the adaptive global pass")
	}
	if len(rep.Occupancy()) == 0 {
		t.Fatal("occupancy curve missing")
	}
	if st := rep.EngineStats(); st.Passes == 0 || st.Builds == 0 {
		t.Fatalf("engine stats not populated: %+v", st)
	}
}

func TestPlanProgressAcrossPasses(t *testing.T) {
	s := uniformWorkload(t)
	var mu sync.Mutex
	var events []ProgressEvent
	plan, err := NewAnalysis(s,
		WithGrid(LogGrid(1, 50_000, 8)...),
		WithRefine(4),
		WithProgress(func(ev ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	maxPass := 0
	done := map[int]int{}
	total := map[int]int{}
	for _, ev := range events {
		if ev.Pass > maxPass {
			maxPass = ev.Pass
		}
		if ev.Stage == ProgressPeriod {
			done[ev.Pass] = ev.PeriodsDone
		}
		total[ev.Pass] = ev.PeriodsTotal
	}
	if maxPass != 1 {
		t.Fatalf("max pass = %d, want 1 (refinement round)", maxPass)
	}
	for pass, tot := range total {
		if done[pass] != tot {
			t.Fatalf("pass %d: PeriodsDone %d never reached PeriodsTotal %d", pass, done[pass], tot)
		}
	}
}

// TestPlanImmutable: mutating the slices handed to the options after
// NewAnalysis must not change what the plan computes.
func TestPlanImmutable(t *testing.T) {
	s := uniformWorkload(t)
	grid := LogGrid(1, 50_000, 8)
	win := Window{Start: 0, End: 25_000, Grid: []int64{5, 50, 500}}
	plan, err := NewAnalysis(s, WithMetrics(MetricOccupancy), WithGrid(grid...), WithWindows(win))
	if err != nil {
		t.Fatal(err)
	}
	refPlan, err := NewAnalysis(s, WithMetrics(MetricOccupancy),
		WithGrid(LogGrid(1, 50_000, 8)...), WithWindows(Window{Start: 0, End: 25_000, Grid: []int64{5, 50, 500}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range grid {
		grid[i] = 1 // stomp the caller-owned slices
	}
	win.Grid[0] = 999

	got, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := refPlan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Occupancy(), want.Occupancy()) {
		t.Fatal("plan results changed after mutating the caller's grid slice")
	}
	if !reflect.DeepEqual(got.Window(0), want.Window(0)) {
		t.Fatal("window results changed after mutating the caller's window grid")
	}
}

// TestPlanRerun: a Plan can be run repeatedly, each run independent and
// identical on an unchanged stream.
func TestPlanRerun(t *testing.T) {
	s := uniformWorkload(t)
	plan, err := NewAnalysis(s, WithGrid(LogGrid(1, 50_000, 8)...), WithRefine(2))
	if err != nil {
		t.Fatal(err)
	}
	first, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Occupancy(), second.Occupancy()) {
		t.Fatal("re-running an identical plan changed the results")
	}
}

// TestPlanLaneWidthAndSpeculate pins the new performance knobs at the
// plan level: every lane width returns the identical report, the
// speculative bisection returns the serial bisection's scale and curve,
// and the run's arena accounting balances.
func TestPlanLaneWidthAndSpeculate(t *testing.T) {
	s := twoModeWorkload(t)
	if _, err := NewAnalysis(s, WithLaneWidth(3)); err == nil {
		t.Fatal("lane width 3 must be rejected")
	}
	run := func(opts ...Option) *Report {
		t.Helper()
		plan, err := NewAnalysis(s, append([]Option{WithGridPoints(10), WithRefine(3)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := plan.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ref := run()
	for _, width := range []int{4, 8} {
		rep := run(WithLaneWidth(width))
		if !reflect.DeepEqual(rep.Occupancy(), ref.Occupancy()) || rep.Gamma() != ref.Gamma() {
			t.Fatalf("width %d: report diverged from default width", width)
		}
		st := rep.EngineStats()
		if st.ArenaHanded == 0 || st.ArenaHanded != st.ArenaRecycled {
			t.Fatalf("width %d: arena accounting off: %+v", width, st)
		}
	}
	spec := run(WithSpeculate(true))
	serial := run(WithSpeculate(true), WithLaneWidth(4))
	if !reflect.DeepEqual(spec.Occupancy(), serial.Occupancy()) || spec.Gamma() != serial.Gamma() {
		t.Fatal("speculative reports diverged across widths")
	}
	if spec.Gamma() == 0 || len(spec.Occupancy()) <= len(ref.Occupancy())-2*3 {
		t.Fatalf("speculative run looks degenerate: γ=%d, %d points", spec.Gamma(), len(spec.Occupancy()))
	}
	// Each speculative round is one engine pass, so Refine bounds the
	// refinement passes (serial bisection of the same rounds would need
	// up to two passes per round).
	if got := spec.EngineStats().Passes; got > 1+3 {
		t.Fatalf("speculative run took %d passes, bound is %d", got, 1+3)
	}
}
