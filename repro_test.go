package repro

import (
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/synth"
)

// End-to-end integration: generate a workload, run the full pipeline
// through the public facade, and check the paper's qualitative story.

func uniformWorkload(t testing.TB) *Stream {
	t.Helper()
	s, err := synth.TimeUniform(synth.TimeUniformConfig{
		Nodes: 20, LinksPerPair: 8, T: 50_000, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPipelineEndToEnd(t *testing.T) {
	s := uniformWorkload(t)

	res, err := SaturationScale(s, Options{Grid: LogGrid(1, 50_000, 20), Refine: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gamma <= 1 || res.Gamma >= 50_000 {
		t.Fatalf("gamma = %d not interior", res.Gamma)
	}

	// Occupancy distribution: spread at gamma, degenerate at T.
	atGamma, err := OccupancyDistribution(s, res.Gamma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	atT, err := OccupancyDistribution(s, 50_000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if atGamma.MKProximity() <= atT.MKProximity() {
		t.Fatalf("proximity at gamma (%v) should beat proximity at T (%v)",
			atGamma.MKProximity(), atT.MKProximity())
	}
	if atT.Mean() != 1 {
		t.Fatalf("fully aggregated mean occupancy = %v, want 1", atT.Mean())
	}

	// Aggregation and trips through the facade.
	g, err := Aggregate(s, res.Gamma, false)
	if err != nil {
		t.Fatal(err)
	}
	trips := MinimalTrips(g)
	if len(trips) == 0 {
		t.Fatal("no minimal trips at gamma")
	}
	for _, tr := range trips[:min(100, len(trips))] {
		if o := tr.Occupancy(); o <= 0 || o > 1 {
			t.Fatalf("occupancy %v out of range", o)
		}
	}

	// Classical properties drift monotonically (Figure 2 story).
	classic, err := ClassicProperties(s, []int64{10, 50_000}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if classic[0].MeanDensity >= classic[1].MeanDensity {
		t.Fatal("density should grow with delta")
	}

	// Validation measures (Figure 8 story).
	loss, err := TransitionLoss(s, []int64{10, res.Gamma, 50_000}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(loss[0].Lost < loss[1].Lost && loss[1].Lost < loss[2].Lost) {
		t.Fatalf("loss not increasing: %+v", loss)
	}
	elong, err := Elongation(s, []int64{10, res.Gamma}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if elong[0].MeanElongation > elong[1].MeanElongation {
		t.Fatalf("elongation should rise towards gamma: %+v", elong)
	}
}

func TestStreamMinimalTripsFacade(t *testing.T) {
	s := NewStream()
	for _, e := range []struct {
		u, v string
		t    int64
	}{{"a", "b", 1}, {"b", "c", 2}} {
		if err := s.Add(e.u, e.v, e.t); err != nil {
			t.Fatal(err)
		}
	}
	trips := StreamMinimalTrips(s, false)
	// a->b, b->a, b->c, c->b single links plus the a->c relay (c->a is
	// impossible: b->a would have to happen after t = 2).
	if len(trips) != 5 {
		t.Fatalf("trips = %d (%v), want 5", len(trips), trips)
	}
	directed := StreamMinimalTrips(s, true)
	if len(directed) != 3 { // a->b, b->c, a->c
		t.Fatalf("directed trips = %d (%v), want 3", len(directed), directed)
	}
}

func TestSelectorsFacade(t *testing.T) {
	if n := len(AllSelectors()); n != 5 {
		t.Fatalf("AllSelectors = %d, want 5", n)
	}
	if g := LinearGrid(0, 10, 3); len(g) != 3 {
		t.Fatalf("LinearGrid = %v", g)
	}
}

// The figure harness runs end to end under the quick profile — this is
// the repository's smoke test for deliverable (d).
func TestFigureHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness in -short mode")
	}
	var sb strings.Builder
	if err := figures.Run("fig6a", figures.QuickProfile(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "saturation scale") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestForwardQueriesFacade(t *testing.T) {
	s := NewStream()
	for _, e := range []struct {
		u, v string
		t    int64
	}{{"a", "b", 0}, {"b", "c", 10}, {"c", "d", 20}} {
		if err := s.Add(e.u, e.v, e.t); err != nil {
			t.Fatal(err)
		}
	}
	g, err := Aggregate(s, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.NodeID("a")
	d, _ := s.NodeID("d")
	arr, hops := EarliestArrivals(g, a, 0)
	if arr[d] != 2 || hops[d] != 3 {
		t.Fatalf("series arr[d]=%d hops=%d, want 2,3", arr[d], hops[d])
	}
	sArr, sHops := StreamEarliestArrivals(s, a, 0, false)
	if sArr[d] != 20 || sHops[d] != 3 {
		t.Fatalf("stream arr[d]=%d hops=%d, want 20,3", sArr[d], sHops[d])
	}
	// All ordered pairs except those requiring travel against time.
	if got := ReachablePairs(g); got <= 0 {
		t.Fatalf("ReachablePairs = %d", got)
	}
	if Unreachable <= 0 {
		t.Fatal("Unreachable constant must be positive sentinel")
	}
}
