package repro

// This file is the deterministic half of distributed execution: a
// Plan's (window, ∆) job space partitioned into per-shard PlanSpecs
// (PartitionSpec), partial reports checked for shape (ValidatePartial)
// and folded back — in lane order — into the Report a single-process
// run of the same spec produces, byte for byte (DistributedRun).
//
// The fold is exact, not approximate, because every per-∆ observer in
// the engine scores each candidate period independently: observers
// size their curve to the grid and write points[p.Index], so the curve
// a chunk shard computes is literally a contiguous subslice of the
// curve the whole grid would have produced. Concatenating chunk curves
// in lane order therefore reproduces the grid-order slice exactly —
// for any chunking, including one chunk per ∆. The only whole-series
// quantities are the refinement bisection (the coordinator drives the
// identical core.ScaleSearch state machine through NextGrid and
// AbsorbPoints, dispatching each round's fresh ∆s as occupancy-only
// shards) and the snapshot-series stability scores (recomputed over
// the merged values with the same metrics.Stability a local run uses).
//
// Fault handling — retries, timeouts, re-dispatch to surviving workers
// — lives in internal/distrib; everything here is pure partition and
// fold, so the bit-exactness argument never depends on scheduling.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// GlobalScope is the ShardPlan.Scope value of whole-stream shards.
const GlobalScope = -1

// ShardPlan is one dispatchable shard of a distributed run: a
// contiguous chunk of one scope's candidate grid, expressed as a
// self-contained PlanSpec a worker can execute with the ordinary
// plan/run lifecycle.
type ShardPlan struct {
	// Lane is the shard's position in the deterministic fold order.
	// Round-0 lanes enumerate scopes (global first, then windows in
	// spec order) and chunks within each scope in grid order;
	// refinement shards take fresh lanes as the searches stage them.
	Lane int
	// Scope is GlobalScope or the index of the spec window the shard
	// belongs to.
	Scope int
	// Start, End are the window bounds of window-scope shards.
	Start, End int64
	// Deltas is the chunk of candidate periods the shard scores, in
	// grid order — the contract ValidatePartial checks partials against.
	Deltas []int64
	// Spec is the shard's executable plan spec: the parent spec with
	// the chunk as its explicit grid, refinement and speculation off
	// (the coordinator owns the bisection), and — for window shards —
	// exactly one window with WindowsOnly set. The stream reference
	// carries the coordinator-observed header hash, so a worker whose
	// file diverged refuses the shard instead of corrupting the fold.
	Spec *PlanSpec
}

// ShardRunner executes one shard and returns its partial report — the
// pluggable transport of DistributedRun. The in-process runner is
// shard.Spec.NewPlan followed by Plan.Run; internal/distrib's runner
// POSTs the shard to a tsserve worker and decodes the partial
// envelope, retrying and re-dispatching on faults. A runner must
// return a partial that passes ValidatePartial; transient failures are
// its own to absorb.
type ShardRunner func(ctx context.Context, shard ShardPlan) (*Report, error)

// specMetrics resolves a spec's metric set (nil means occupancy, like
// WithMetrics' default).
func specMetrics(spec *PlanSpec) ([]Metric, error) {
	if len(spec.Metrics) == 0 {
		return []Metric{MetricOccupancy}, nil
	}
	return ParseMetrics(strings.Join(spec.Metrics, ","))
}

func hasMetric(ms []Metric, want Metric) bool {
	for _, m := range ms {
		if m == want {
			return true
		}
	}
	return false
}

// PartitionSpec splits the spec's (window, ∆) job space into round-0
// shards: every scope's candidate grid — the global grid and each
// window's, resolved exactly as a local run resolves them — cut into
// at most shards contiguous chunks (sweep.PartitionGrid). The spec's
// stream must be reachable from this process: the partitioner opens
// the plan once to resolve derived grids and to pin the columnar
// header hash into every shard's stream ref. Adaptive specs cannot be
// sharded (the segmentation chooses its own windows at run time).
func PartitionSpec(spec *PlanSpec, shards int) ([]ShardPlan, error) {
	if spec == nil {
		return nil, errors.New("repro: nil plan spec")
	}
	if spec.Adaptive != nil {
		return nil, errors.New("repro: adaptive plans cannot be sharded: the segmentation chooses its own windows at run time")
	}
	plan, err := spec.NewPlan()
	if err != nil {
		return nil, err
	}
	defer plan.Close()

	base := *spec
	if ref, ok := plan.StreamRef(); ok {
		// Keep the submitter's path — workers resolve it under their own
		// stream root — but pin the hash and span this partitioner saw.
		r := *spec.Stream
		r.Hash = ref.Hash
		r.TimeMin, r.TimeMax, r.Events = ref.TimeMin, ref.TimeMax, ref.Events
		base.Stream = &r
	}

	var out []ShardPlan
	lane := 0
	if !spec.WindowsOnly {
		for _, chunk := range sweep.PartitionGrid(plan.cfg.grid, shards) {
			sh := base
			sh.Grid = chunk
			sh.GridPoints, sh.MinDelta = 0, 0
			sh.Refine, sh.Speculate = 0, false
			sh.Windows, sh.WindowsOnly = nil, false
			out = append(out, ShardPlan{Lane: lane, Scope: GlobalScope, Deltas: chunk, Spec: &sh})
			lane++
		}
	}
	if len(spec.Windows) > 0 {
		grids, err := plan.windowGrids()
		if err != nil {
			return nil, err
		}
		for wi := range spec.Windows {
			w := spec.Windows[wi]
			for _, chunk := range sweep.PartitionGrid(grids[wi], shards) {
				sh := base
				sh.Grid = nil
				sh.GridPoints, sh.MinDelta = 0, 0
				sh.Refine, sh.Speculate = 0, false
				sh.Windows = []Window{{Start: w.Start, End: w.End, Grid: chunk}}
				sh.WindowsOnly = true
				out = append(out, ShardPlan{Lane: lane, Scope: wi, Start: w.Start, End: w.End, Deltas: chunk, Spec: &sh})
				lane++
			}
		}
	}
	return out, nil
}

// partialCurves extracts the shard's scope curves from its partial.
func partialCurves(shard ShardPlan, rep *Report) Curves {
	if shard.Scope == GlobalScope {
		return rep.Global()
	}
	return rep.Window(0).Curves
}

// ValidatePartial checks a partial report against its shard's
// contract: the right scope shape (no windows for a global shard,
// exactly the shard's window otherwise), every requested curve
// present, and every curve's periods aligned one-to-one with the
// shard's Deltas. It is the coordinator's corruption detector — a
// partial that passes folds cleanly; one that fails is re-dispatched
// by the fault layer, never folded.
func ValidatePartial(shard ShardPlan, rep *Report) error {
	if rep == nil {
		return errors.New("repro: nil partial report")
	}
	ms, err := specMetrics(shard.Spec)
	if err != nil {
		return err
	}
	var cv Curves
	if shard.Scope == GlobalScope {
		if n := rep.NumWindows(); n != 0 {
			return fmt.Errorf("repro: partial for the global scope carries %d windows", n)
		}
		cv = rep.Global()
	} else {
		if n := rep.NumWindows(); n != 1 {
			return fmt.Errorf("repro: window partial carries %d windows, want exactly 1", n)
		}
		w := rep.Window(0)
		if w.Start != shard.Start || w.End != shard.End {
			return fmt.Errorf("repro: window partial covers [%d, %d), shard wants [%d, %d)", w.Start, w.End, shard.Start, shard.End)
		}
		if len(rep.Occupancy()) > 0 {
			return errors.New("repro: window partial carries global curves")
		}
		cv = w.Curves
	}

	check := func(metric string, n int, delta func(int) int64) error {
		if n != len(shard.Deltas) {
			return fmt.Errorf("repro: partial %s curve has %d points, shard wants %d", metric, n, len(shard.Deltas))
		}
		for i := range shard.Deltas {
			if d := delta(i); d != shard.Deltas[i] {
				return fmt.Errorf("repro: partial %s curve point %d scores ∆=%d, shard wants ∆=%d", metric, i, d, shard.Deltas[i])
			}
		}
		return nil
	}
	var snapshotWant []string
	for _, m := range ms {
		var err error
		switch m {
		case MetricOccupancy:
			err = check("occupancy", len(cv.Occupancy), func(i int) int64 { return cv.Occupancy[i].Delta })
		case MetricClassic:
			err = check("classic", len(cv.Classic), func(i int) int64 { return cv.Classic[i].Delta })
		case MetricDistance:
			err = check("distance", len(cv.Distance), func(i int) int64 { return cv.Distance[i].Delta })
		case MetricTransitionLoss:
			err = check("loss", len(cv.TransitionLoss), func(i int) int64 { return cv.TransitionLoss[i].Delta })
		case MetricElongation:
			err = check("elongation", len(cv.Elongation), func(i int) int64 { return cv.Elongation[i].Delta })
		default:
			snapshotWant = append(snapshotWant, m.String())
		}
		if err != nil {
			return err
		}
	}
	if len(cv.Snapshots) != len(snapshotWant) {
		return fmt.Errorf("repro: partial carries %d snapshot curves, shard wants %d", len(cv.Snapshots), len(snapshotWant))
	}
	for i, c := range cv.Snapshots {
		// Snapshot curves come back in enum order; the parsed metric list
		// preserves request order, which spec.Options normalises to enum
		// order through the metric bool set — so compare as sets.
		found := false
		for _, name := range snapshotWant {
			if c.Metric == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("repro: partial carries unrequested snapshot curve %q", c.Metric)
		}
		if err := check("snapshot "+c.Metric, len(c.Deltas), func(j int) int64 { return c.Deltas[j] }); err != nil {
			return err
		}
		for _, ser := range c.Series {
			if len(ser.Values) != len(shard.Deltas) {
				return fmt.Errorf("repro: partial snapshot %s series %q has %d values, shard wants %d", c.Metric, ser.Name, len(ser.Values), len(shard.Deltas))
			}
		}
		_ = i
	}
	return nil
}

// foldCurves concatenates per-chunk scope curves in lane order —
// exactly the grid-order slice one pass over the whole scope grid
// produces — and recomputes the snapshot stability scores, the one
// whole-series quantity, over the merged values.
func foldCurves(parts []Curves) Curves {
	var out Curves
	for _, cv := range parts {
		out.Occupancy = append(out.Occupancy, cv.Occupancy...)
		out.Classic = append(out.Classic, cv.Classic...)
		out.Distance = append(out.Distance, cv.Distance...)
		out.TransitionLoss = append(out.TransitionLoss, cv.TransitionLoss...)
		out.Elongation = append(out.Elongation, cv.Elongation...)
	}
	if len(parts) == 0 || len(parts[0].Snapshots) == 0 {
		return out
	}
	for mi := range parts[0].Snapshots {
		merged := MetricCurve{Metric: parts[0].Snapshots[mi].Metric}
		for _, ser := range parts[0].Snapshots[mi].Series {
			merged.Series = append(merged.Series, MetricSeries{Name: ser.Name})
		}
		for _, cv := range parts {
			c := cv.Snapshots[mi]
			merged.Deltas = append(merged.Deltas, c.Deltas...)
			for si := range c.Series {
				merged.Series[si].Values = append(merged.Series[si].Values, c.Series[si].Values...)
			}
		}
		for si := range merged.Series {
			merged.Series[si].Stability = metrics.Stability(merged.Series[si].Values)
		}
		out.Snapshots = append(out.Snapshots, merged)
	}
	return out
}

// scopeState is one scope's fold state inside DistributedRun.
type scopeState struct {
	scope      int
	start, end int64
	grid       []int64 // whole scope grid, chunk order
	shards     []ShardPlan
	cv         Curves
	res        Result
	hasRes     bool
	err        error
}

// DistributedRun executes the spec's job space through a ShardRunner
// and folds the partials into the Report a local Plan.Run of the same
// spec returns — byte-identical under the wire encoding, for any shard
// count and any runner scheduling. Round 0 dispatches every scope's
// chunks concurrently; scopes whose occupancy search refines then
// drive the identical core.ScaleSearch protocol a local run drives,
// dispatching each round's fresh ∆s as occupancy-only shards. The
// returned report carries zero EngineStats (instrumentation never
// travels with results).
func DistributedRun(ctx context.Context, spec *PlanSpec, shards int, run ShardRunner) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if run == nil {
		return nil, errors.New("repro: DistributedRun needs a shard runner")
	}
	ms, err := specMetrics(spec)
	if err != nil {
		return nil, err
	}
	sels, err := ParseSelectors(spec.Selectors)
	if err != nil {
		return nil, err
	}
	occOn := hasMetric(ms, MetricOccupancy)

	round0, err := PartitionSpec(spec, shards)
	if err != nil {
		return nil, err
	}

	// Group the round-0 shards into report-order scopes.
	var states []*scopeState
	byScope := make(map[int]*scopeState)
	for _, sh := range round0 {
		st := byScope[sh.Scope]
		if st == nil {
			st = &scopeState{scope: sh.Scope, start: sh.Start, end: sh.End}
			byScope[sh.Scope] = st
			states = append(states, st)
		}
		st.shards = append(st.shards, sh)
		st.grid = append(st.grid, sh.Deltas...)
	}

	var laneSeq atomic.Int64
	laneSeq.Store(int64(len(round0)))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for _, st := range states {
		wg.Add(1)
		go func(st *scopeState) {
			defer wg.Done()
			if err := runScope(runCtx, spec, st, occOn, sels, &laneSeq, run); err != nil {
				st.err = err
				cancel() // abort sibling scopes
			}
		}(st)
	}
	wg.Wait()

	for _, st := range states {
		if st.err != nil && !errors.Is(st.err, context.Canceled) {
			return nil, st.err
		}
	}
	for _, st := range states {
		if st.err != nil {
			return nil, st.err
		}
	}

	rep := &Report{}
	for _, st := range states {
		if st.scope == GlobalScope {
			rep.global = st.cv
			rep.scale, rep.hasScale = st.res, st.hasRes
		} else {
			rep.windows = append(rep.windows, WindowReport{
				Start: st.start, End: st.end,
				Scale: st.res, Curves: st.cv,
			})
		}
	}
	return rep, nil
}

// runScope folds one scope: concurrent round-0 chunks, then the
// refinement protocol.
func runScope(ctx context.Context, spec *PlanSpec, st *scopeState, occOn bool, sels []Selector, laneSeq *atomic.Int64, run ShardRunner) error {
	parts := make([]Curves, len(st.shards))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := range st.shards {
		wg.Add(1)
		go func(i int, sh ShardPlan) {
			defer wg.Done()
			rep, err := run(ctx, sh)
			if err == nil {
				err = ValidatePartial(sh, rep)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("shard lane %d: %w", sh.Lane, err)
				}
				mu.Unlock()
				return
			}
			parts[i] = partialCurves(sh, rep)
		}(i, st.shards[i])
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	st.cv = foldCurves(parts)
	if !occOn {
		return nil
	}

	search, err := core.NewScaleSearch(core.Options{
		Directed:      spec.Directed,
		Selectors:     sels,
		Refine:        spec.Refine,
		HistogramBins: spec.HistogramBins,
		Speculate:     spec.Speculate,
		Grid:          st.grid,
	})
	if err != nil {
		return err
	}
	if _, ok := search.NextGrid(); !ok {
		return errors.New("repro: scale search staged no initial request")
	}
	if err := search.AbsorbPoints(st.cv.Occupancy); err != nil {
		return err
	}
	for {
		grid, ok := search.NextGrid()
		if !ok {
			break
		}
		sh := refinementShard(st, grid, int(laneSeq.Add(1))-1)
		rep, err := run(ctx, sh)
		if err == nil {
			err = ValidatePartial(sh, rep)
		}
		if err != nil {
			return fmt.Errorf("refinement shard lane %d: %w", sh.Lane, err)
		}
		if err := search.AbsorbPoints(partialCurves(sh, rep).Occupancy); err != nil {
			return err
		}
	}
	res, err := search.Result()
	if err != nil {
		return err
	}
	st.res, st.hasRes = res, true
	st.cv.Occupancy = res.Points
	return nil
}

// refinementShard builds an occupancy-only shard over one refinement
// round's fresh ∆s, reusing the scope's enriched round-0 spec.
func refinementShard(st *scopeState, grid []int64, lane int) ShardPlan {
	sh := *st.shards[0].Spec
	sh.Metrics = []string{MetricOccupancy.String()}
	if st.scope == GlobalScope {
		sh.Grid = grid
		sh.Windows, sh.WindowsOnly = nil, false
	} else {
		sh.Grid = nil
		sh.Windows = []Window{{Start: st.start, End: st.end, Grid: grid}}
		sh.WindowsOnly = true
	}
	return ShardPlan{Lane: lane, Scope: st.scope, Start: st.start, End: st.end, Deltas: grid, Spec: &sh}
}

// RunShardLocal executes one shard in-process — the single-process
// fallback of the coordinator (no workers registered, or a shard out
// of retries) and the reference runner of the parity tests.
func RunShardLocal(ctx context.Context, shard ShardPlan) (*Report, error) {
	plan, err := shard.Spec.NewPlan()
	if err != nil {
		return nil, err
	}
	defer plan.Close()
	return plan.Run(ctx)
}
