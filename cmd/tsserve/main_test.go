package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, os.Stderr); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-stream-root", "/nonexistent/streams"}, os.Stderr); err == nil ||
		!strings.Contains(err.Error(), "-stream-root") {
		t.Fatalf("missing stream root: %v", err)
	}
	// A file is not a root.
	dir := t.TempDir()
	f := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-stream-root", f}, os.Stderr); err == nil ||
		!strings.Contains(err.Error(), "not a directory") {
		t.Fatalf("file as stream root: %v", err)
	}
	// An unbindable address surfaces as the listen error.
	if err := run([]string{"-addr", "256.0.0.1:bad"}, os.Stderr); err == nil {
		t.Fatal("unbindable address accepted")
	}
}

func TestRootLabel(t *testing.T) {
	if got := rootLabel(""); !strings.Contains(got, "inline") {
		t.Fatalf("empty root label %q", got)
	}
	if got := rootLabel("/srv/streams"); got != "/srv/streams" {
		t.Fatalf("root label %q", got)
	}
}
