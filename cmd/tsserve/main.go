// Command tsserve serves the plan/run lifecycle over HTTP:
// analysis-as-a-service for the saturation-scale method. Clients POST
// versioned plan-spec envelopes (the internal/serve codec); the server
// validates the spec, resolves its stream reference under -stream-root
// (or materialises inline events), dedups it against completed and
// in-flight work, and runs it through the same engine tsscale uses —
// results are byte-identical to a local run of the same plan.
//
// Usage:
//
//	tsserve -stream-root /var/lib/streams [-addr localhost:7487]
//
// Endpoints (see internal/serve):
//
//	POST   /v1/jobs[?wait=1]    submit a plan spec (202 detached, 200 report attached)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result the report envelope
//	GET    /v1/jobs/{id}/events SSE progress stream
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/stats            queue counters
//
// Coinciding submits — same stream fingerprint, same result-affecting
// knobs — cost one engine run: later ones coalesce onto the in-flight
// run or hit the result cache. Execution hints (workers, lane width,
// in-flight budget) never split the cache, because the engine pins
// results bit-identical across them.
//
// Distributed execution builds on the same process in two roles:
//
//	tsserve -coordinator -stream-root /streams            # coordinator
//	tsserve -stream-root /streams -join http://coord:7487 # worker
//
// A coordinator partitions each POSTed job's (window, ∆) space into
// shard specs, dispatches them to registered workers over POST
// /v1/shards, and folds the partials in lane order — the report is
// byte-identical to a local run, with per-shard timeouts, retry across
// workers and local fallback absorbing worker faults. A worker is an
// ordinary tsserve plus a registration heartbeat (-join); shards ride
// its normal queue, cache included.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
	"repro/internal/distrib"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tsserve:", err)
		os.Exit(1)
	}
}

func run(args []string, logw *os.File) error {
	fs := flag.NewFlagSet("tsserve", flag.ContinueOnError)
	f := cli.BindServe(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if f.StreamRoot != "" {
		if st, err := os.Stat(f.StreamRoot); err != nil {
			return fmt.Errorf("-stream-root: %w", err)
		} else if !st.IsDir() {
			return fmt.Errorf("-stream-root: %s is not a directory", f.StreamRoot)
		}
	}

	if f.Coordinator && f.Join != "" {
		return errors.New("-coordinator and -join are mutually exclusive: a process is either the coordinator or a worker")
	}

	var handler http.Handler
	if f.Coordinator {
		handler = distrib.NewCoordinator(distrib.Config{
			StreamRoot:   f.StreamRoot,
			Shards:       f.Shards,
			ShardTimeout: f.ShardTimeout,
			Retries:      f.ShardRetries,
			Workers:      f.Workers,
			MaxInFlight:  f.MaxInFlight,
			LaneWidth:    f.LaneWidth,
		}).Handler()
	} else {
		queue := serve.NewQueue(serve.QueueConfig{
			MaxJobs:            f.MaxJobs,
			TenantBudget:       f.TenantBudget,
			CacheEntries:       f.CacheEntries,
			StreamRoot:         f.StreamRoot,
			DefaultWorkers:     f.Workers,
			DefaultMaxInFlight: f.MaxInFlight,
			DefaultLaneWidth:   f.LaneWidth,
		})
		defer queue.Close()
		handler = serve.NewServer(queue)
	}

	ln, err := net.Listen("tcp", f.Addr)
	if err != nil {
		return err
	}
	role := "tsserve"
	if f.Coordinator {
		role = "tsserve coordinator"
	}
	fmt.Fprintf(logw, "%s: listening on http://%s (stream root: %s)\n", role, ln.Addr(), rootLabel(f.StreamRoot))

	srv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if f.Join != "" {
		advertise := f.Advertise
		if advertise == "" {
			advertise = "http://" + ln.Addr().String()
		}
		name := f.Name
		if name == "" {
			name = advertise
		}
		fmt.Fprintf(logw, "tsserve: joining coordinator %s as %q (advertising %s)\n", f.Join, name, advertise)
		go distrib.JoinLoop(ctx, nil, f.Join, name, advertise, 0)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(logw, "tsserve: shutting down")
		// In-flight attached requests get their context cancelled by
		// Shutdown's deadline-less drain plus the queue Close above.
		if err := srv.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func rootLabel(root string) string {
	if root == "" {
		return "none — inline specs only"
	}
	return root
}
