package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineMinimalTrips 	      43	  51292655 ns/op	14786294 B/op	      52 allocs/op
BenchmarkAblationSweepParallel-8 	       7	 299027043 ns/op	55968578 B/op	     336 allocs/op
BenchmarkMKDistance 	 2503592	       916.1 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	10.494s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkEngineMinimalTrips" || b.Iterations != 43 ||
		b.NsPerOp != 51292655 || b.BytesPerOp != 14786294 || b.AllocsPerOp != 52 {
		t.Fatalf("first result = %+v", b)
	}
	// The -GOMAXPROCS suffix is stripped.
	if rep.Benchmarks[1].Name != "BenchmarkAblationSweepParallel" {
		t.Fatalf("second result name = %q", rep.Benchmarks[1].Name)
	}
	// Fractional ns/op parses.
	if rep.Benchmarks[2].NsPerOp != 916.1 || rep.Benchmarks[2].AllocsPerOp != 0 {
		t.Fatalf("third result = %+v", rep.Benchmarks[2])
	}
}

func TestDiffReportsGate(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}}
	cur := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 110},  // +10%: inside the gate
		{Name: "BenchmarkB", NsPerOp: 1400}, // +40%: regression
		{Name: "BenchmarkNew", NsPerOp: 5},  // only in current: reported, not gated
	}}
	var out strings.Builder
	err := diffReports(&out, base, cur, 25)
	if err == nil {
		t.Fatal("a +40% regression must trip the ±25% gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkB") {
		t.Fatalf("gate error %v should name BenchmarkB", err)
	}
	s := out.String()
	for _, want := range []string{"BenchmarkA", "REGRESSED", "(new)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("diff output missing %q:\n%s", want, s)
		}
	}

	// Inside the gate: no error, summary line printed.
	out.Reset()
	cur.Benchmarks[1].NsPerOp = 1100
	if err := diffReports(&out, base, cur, 25); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "within the ±25% gate") {
		t.Fatalf("missing gate summary:\n%s", out.String())
	}

	// Improvements never trip the gate.
	out.Reset()
	cur.Benchmarks[1].NsPerOp = 200
	if err := diffReports(&out, base, cur, 25); err != nil {
		t.Fatal(err)
	}

	// Disjoint reports are an error, not a silent pass.
	if err := diffReports(&out, &Report{}, cur, 25); err == nil {
		t.Fatal("no shared benchmarks should error")
	}
}

func TestDiffReportsAllocGate(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 40},
		{Name: "BenchmarkZeroBase", NsPerOp: 100, AllocsPerOp: 0},
	}}
	cur := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 80},       // allocs +100%: regression
		{Name: "BenchmarkZeroBase", NsPerOp: 100, AllocsPerOp: 7}, // 0 -> 7: reported, not gated
	}}
	var out strings.Builder
	err := diffReports(&out, base, cur, 25)
	if err == nil {
		t.Fatal("a +100% allocs/op regression must trip the ±25% gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkA") || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("gate error %v should name BenchmarkA's allocs/op", err)
	}
	if strings.Contains(err.Error(), "BenchmarkZeroBase") {
		t.Fatalf("zero-alloc baselines must not be alloc-gated: %v", err)
	}
	if !strings.Contains(out.String(), "allocs 40 -> 80") {
		t.Fatalf("diff output missing the alloc delta:\n%s", out.String())
	}

	// Alloc improvements never trip the gate.
	out.Reset()
	cur.Benchmarks[0].AllocsPerOp = 10
	if err := diffReports(&out, base, cur, 25); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(ns/op and allocs/op)") {
		t.Fatalf("missing gate summary:\n%s", out.String())
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",
		"BenchmarkFoo abc 12 ns/op",
		"BenchmarkFoo 12 abc ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parseLine accepted %q", line)
		}
	}
}

func TestGatePairs(t *testing.T) {
	rep := &Report{Benchmarks: []Result{
		{Name: "BenchmarkPlan", NsPerOp: 110, AllocsPerOp: 50},
		{Name: "BenchmarkEngine", NsPerOp: 100, AllocsPerOp: 48},
		{Name: "BenchmarkSlow", NsPerOp: 200, AllocsPerOp: 100},
	}}
	var out strings.Builder
	// +10% ns/op and +4% allocs/op: inside a ±25% gate.
	if err := gatePairs(&out, rep, []string{"BenchmarkPlan=BenchmarkEngine"}, 25); err != nil {
		t.Fatalf("pair inside gate failed: %v", err)
	}
	// +100% ns/op: regression.
	if err := gatePairs(&out, rep, []string{"BenchmarkSlow=BenchmarkEngine"}, 25); err == nil {
		t.Fatal("a 2x pair must trip the gate")
	}
	// Alloc regression alone trips too.
	rep.Benchmarks[0].AllocsPerOp = 100
	if err := gatePairs(&out, rep, []string{"BenchmarkPlan=BenchmarkEngine"}, 25); err == nil {
		t.Fatal("an alloc-only pair regression must trip the gate")
	}
	// Unknown names error.
	if err := gatePairs(&out, rep, []string{"BenchmarkNope=BenchmarkEngine"}, 25); err == nil {
		t.Fatal("unknown pair member must error")
	}
}

func TestPairFlagParsing(t *testing.T) {
	var p pairList
	if err := p.Set("A=B"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("noequals"); err == nil {
		t.Fatal("malformed pair must error")
	}
	if len(p) != 1 || p[0] != "A=B" {
		t.Fatalf("pairs = %v", p)
	}
}
