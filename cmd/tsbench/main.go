// Command tsbench runs the repository's Benchmark* suite and writes the
// results as JSON (ns/op, B/op, allocs/op per benchmark), so the
// performance trajectory of the hot paths is tracked across PRs in
// files like BENCH_1.json.
//
// Usage:
//
//	tsbench [-bench regex] [-benchtime 2s] [-o BENCH_1.json]
//	tsbench -input bench.txt -o BENCH_1.json   # parse existing output
//	tsbench -o BENCH_2.json -against BENCH_1.json -gate 25
//	tsbench -isolate -benchtime 3x -o BENCH_6.json  # one process per benchmark
//	tsbench -benchtime 3x -cpuprofile default.pgo   # PGO corpus
//
// Without -input it shells out to `go test -run ^$ -bench ... -benchmem`
// in the module root, which therefore requires the go toolchain on
// PATH. With -against, the run is diffed against a baseline report:
// every benchmark present in both is printed with its ns/op and
// allocs/op deltas, and with -gate N the command fails if any shared
// benchmark regressed by more than N percent on either axis — the
// regression gate CI runs on every push.
//
// With -isolate each matching benchmark runs as its own `go test`
// invocation, so one benchmark's heap and GC state never skews the
// next one's measurement — results become independent of declaration
// order, which is what a committed baseline needs.
//
// With -cpuprofile (or -memprofile) the suite is profiled the same
// way — one isolated run per benchmark writing its own profile, so no
// benchmark's samples drown another's — and the per-benchmark profiles
// are merged with `go tool pprof -proto` into the single named file. A
// merged CPU profile is exactly what `go build -pgo` consumes;
// `make pgo` wires the two together.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the JSON document tsbench writes.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsbench", flag.ContinueOnError)
	bench := fs.String("bench", ".", "benchmark name regex passed to go test -bench")
	benchtime := fs.String("benchtime", "1s", "go test -benchtime value (e.g. 2s, 10x)")
	pkg := fs.String("pkg", ".", "package to benchmark")
	out := fs.String("o", "", "output JSON file (default: stdout)")
	input := fs.String("input", "", "parse an existing `go test -bench` output file instead of running")
	against := fs.String("against", "", "baseline JSON report to diff the results against")
	gate := fs.Float64("gate", 0, "with -against: fail if any shared benchmark's ns/op or allocs/op regressed by more than this percentage")
	cpuprofile := fs.String("cpuprofile", "", "write a merged CPU profile: one `go test -cpuprofile` run per matching benchmark, merged with `go tool pprof -proto` (feeds go build -pgo)")
	memprofile := fs.String("memprofile", "", "write a merged allocation profile, one run per matching benchmark (see -cpuprofile)")
	isolate := fs.Bool("isolate", false, "run each matching benchmark in its own `go test` process, so no benchmark's heap state skews the next one's numbers")
	var pairs pairList
	fs.Var(&pairs, "pair",
		"intra-report gate NEW=BASE (repeatable): fail if benchmark NEW exceeds BASE by more than -gate percent on ns/op or allocs/op within this run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var raw io.Reader
	switch {
	case *input != "":
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		raw = f
	case *isolate || *cpuprofile != "" || *memprofile != "":
		text, err := runIsolated(*bench, *benchtime, *pkg, *cpuprofile, *memprofile, stdout)
		if err != nil {
			return err
		}
		raw = strings.NewReader(text)
	default:
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
			"-benchmem", "-benchtime", *benchtime, *pkg)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test -bench: %w", err)
		}
		raw = strings.NewReader(string(outBytes))
	}

	report, err := Parse(raw)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found")
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		// Default stdout output happens with or without -against, so a
		// measurement run is never discarded.
		if _, err := stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d benchmark results to %s\n", len(report.Benchmarks), *out)
	}
	if len(pairs) > 0 {
		if err := gatePairs(stdout, report, pairs, *gate); err != nil {
			return err
		}
	}
	if *against == "" {
		return nil
	}
	base, err := loadReport(*against)
	if err != nil {
		return err
	}
	return diffReports(stdout, base, report, *gate)
}

// listBenchmarks resolves the -bench regex to concrete benchmark names
// via `go test -list`.
func listBenchmarks(bench, pkg string) ([]string, error) {
	out, err := exec.Command("go", "test", "-run", "^$", "-list", bench, pkg).Output()
	if err != nil {
		return nil, fmt.Errorf("go test -list: %w", err)
	}
	var names []string
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Benchmark") {
			names = append(names, line)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no benchmark matches %q in %s", bench, pkg)
	}
	return names, nil
}

// runIsolated runs each matching benchmark as its own `go test`
// invocation — optionally writing per-benchmark CPU/alloc profiles,
// merged into the named files — and returns the concatenated benchmark
// output for parsing. The per-process isolation is the point even
// without profiles: a benchmark never inherits the previous one's
// heap, so declaration order cannot move the numbers.
func runIsolated(bench, benchtime, pkg, cpuprofile, memprofile string, stdout io.Writer) (string, error) {
	names, err := listBenchmarks(bench, pkg)
	if err != nil {
		return "", err
	}
	tmp, err := os.MkdirTemp("", "tsbench-prof-")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp)

	var text strings.Builder
	var cpuProfs, memProfs []string
	for i, name := range names {
		args := []string{"test", "-run", "^$", "-bench", "^" + name + "$",
			"-benchmem", "-benchtime", benchtime,
			"-o", filepath.Join(tmp, "bench.test")}
		if cpuprofile != "" {
			p := filepath.Join(tmp, fmt.Sprintf("cpu.%d", i))
			args = append(args, "-cpuprofile", p)
			cpuProfs = append(cpuProfs, p)
		}
		if memprofile != "" {
			p := filepath.Join(tmp, fmt.Sprintf("mem.%d", i))
			args = append(args, "-memprofile", p)
			memProfs = append(memProfs, p)
		}
		args = append(args, pkg)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return "", fmt.Errorf("go test -bench %s: %w", name, err)
		}
		text.Write(out)
	}
	if cpuprofile != "" {
		if err := mergeProfiles(cpuProfs, cpuprofile); err != nil {
			return "", err
		}
		fmt.Fprintf(stdout, "merged %d CPU profiles into %s\n", len(cpuProfs), cpuprofile)
	}
	if memprofile != "" {
		if err := mergeProfiles(memProfs, memprofile); err != nil {
			return "", err
		}
		fmt.Fprintf(stdout, "merged %d allocation profiles into %s\n", len(memProfs), memprofile)
	}
	return text.String(), nil
}

// mergeProfiles merges pprof profiles into one proto-format file —
// the input format of go build -pgo.
func mergeProfiles(profiles []string, out string) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	cmd := exec.Command("go", append([]string{"tool", "pprof", "-proto"}, profiles...)...)
	cmd.Stdout = f
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go tool pprof -proto: %w", err)
	}
	return f.Close()
}

// loadReport reads a JSON report previously written by tsbench.
// pairList collects repeated -pair NEW=BASE flags.
type pairList []string

func (p *pairList) String() string { return strings.Join(*p, ",") }
func (p *pairList) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("pair %q must have the form NEW=BASE", v)
	}
	*p = append(*p, v)
	return nil
}

// gatePairs compares benchmark pairs within one report: for each
// NEW=BASE pair, NEW's ns/op and allocs/op may not exceed BASE's by
// more than gatePct percent. This is how CI pins a wrapper path (e.g.
// the plan lifecycle) to the raw entry point it wraps, inside one run —
// immune to machine-to-machine noise, unlike a cross-report diff.
func gatePairs(stdout io.Writer, rep *Report, pairs []string, gatePct float64) error {
	byName := make(map[string]Result, len(rep.Benchmarks))
	for _, r := range rep.Benchmarks {
		byName[r.Name] = r
	}
	var regressed []string
	for _, p := range pairs {
		eq := strings.Index(p, "=")
		newName, baseName := p[:eq], p[eq+1:]
		nr, ok := byName[newName]
		if !ok {
			return fmt.Errorf("pair %s: benchmark %s not in this run", p, newName)
		}
		br, ok := byName[baseName]
		if !ok {
			return fmt.Errorf("pair %s: benchmark %s not in this run", p, baseName)
		}
		status := ""
		delta := 0.0
		if br.NsPerOp > 0 {
			delta = 100 * (nr.NsPerOp - br.NsPerOp) / br.NsPerOp
			if gatePct > 0 && delta > gatePct {
				status = "  REGRESSED"
				regressed = append(regressed, fmt.Sprintf("%s vs %s (ns/op %+.1f%%)", newName, baseName, delta))
			}
		}
		allocs := fmt.Sprintf("allocs %d vs %d", nr.AllocsPerOp, br.AllocsPerOp)
		if br.AllocsPerOp > 0 {
			adelta := 100 * float64(nr.AllocsPerOp-br.AllocsPerOp) / float64(br.AllocsPerOp)
			allocs += fmt.Sprintf(" (%+.1f%%)", adelta)
			if gatePct > 0 && adelta > gatePct {
				status = "  REGRESSED"
				regressed = append(regressed, fmt.Sprintf("%s vs %s (allocs/op %+.1f%%)", newName, baseName, adelta))
			}
		}
		fmt.Fprintf(stdout, "pair %-40s %12.0f vs %12.0f ns/op  %+7.1f%%  %s%s\n",
			newName+"="+baseName, nr.NsPerOp, br.NsPerOp, delta, allocs, status)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d pair regression(s) beyond the ±%.0f%% gate: %s",
			len(regressed), gatePct, strings.Join(regressed, ", "))
	}
	return nil
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

// diffReports prints the ns/op and allocs/op deltas of every benchmark
// present in both reports and, when gatePct > 0, fails if any regressed
// by more than gatePct percent on either axis. Allocation counts are
// only gated when the baseline recorded a non-zero count (a 0 -> N
// change is reported, not gated: the percentage is undefined and such
// jumps come from new instrumentation, which the ns/op gate already
// covers). Benchmarks present on only one side are listed but never
// gated.
func diffReports(stdout io.Writer, base, cur *Report, gatePct float64) error {
	baseByName := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseByName[r.Name] = r
	}
	var regressed []string
	shared := 0
	for _, r := range cur.Benchmarks {
		b, ok := baseByName[r.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-44s %12.0f ns/op %10d allocs/op  (new)\n", r.Name, r.NsPerOp, r.AllocsPerOp)
			continue
		}
		shared++
		delta := 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := ""
		if gatePct > 0 && delta > gatePct {
			status = "  REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s (ns/op %+.1f%%)", r.Name, delta))
		}
		allocs := fmt.Sprintf("allocs %d -> %d", b.AllocsPerOp, r.AllocsPerOp)
		if b.AllocsPerOp > 0 {
			adelta := 100 * float64(r.AllocsPerOp-b.AllocsPerOp) / float64(b.AllocsPerOp)
			allocs += fmt.Sprintf(" (%+.1f%%)", adelta)
			if gatePct > 0 && adelta > gatePct {
				status = "  REGRESSED"
				regressed = append(regressed, fmt.Sprintf("%s (allocs/op %+.1f%%)", r.Name, adelta))
			}
		}
		fmt.Fprintf(stdout, "%-44s %12.0f -> %12.0f ns/op  %+7.1f%%  %s%s\n",
			r.Name, b.NsPerOp, r.NsPerOp, delta, allocs, status)
	}
	if shared == 0 {
		return fmt.Errorf("no shared benchmarks between the reports")
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d regression(s) beyond the ±%.0f%% gate: %s",
			len(regressed), gatePct, strings.Join(regressed, ", "))
	}
	if gatePct > 0 {
		fmt.Fprintf(stdout, "all %d shared benchmarks within the ±%.0f%% gate (ns/op and allocs/op)\n", shared, gatePct)
	}
	return nil
}

// Parse extracts benchmark results from `go test -bench -benchmem`
// output.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  42  123456 ns/op  789 B/op  12 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names stay comparable across
	// machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "B/op":
			res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		default:
			continue
		}
		if err != nil {
			return Result{}, false
		}
	}
	if res.NsPerOp == 0 {
		return Result{}, false
	}
	return res, true
}
