package main

import (
	"strings"
	"testing"
)

const sample = `# chain
a b 10
b c 20
c d 30
a b 4000
`

func TestAggregateStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-delta", "100"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"windows (total)", "mean density", "mean largest component"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestAggregateDump(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-delta", "100", "-dump"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# window 0") {
		t.Fatalf("missing window header:\n%s", s)
	}
	if !strings.Contains(s, "a b") || !strings.Contains(s, "c d") {
		t.Fatalf("missing edges:\n%s", s)
	}
	// The event at t=4000 lands in window 39 with origin 10.
	if !strings.Contains(s, "# window 39") {
		t.Fatalf("missing late window:\n%s", s)
	}
}

func TestAggregateTrips(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-delta", "15", "-trips"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "minimal trips:") {
		t.Fatalf("missing trip stats:\n%s", out.String())
	}
}

func TestAggregateErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-delta", "0"}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("delta 0 should error")
	}
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Fatal("empty stream should error")
	}
	if err := run([]string{"-in", "/nonexistent"}, nil, &out); err == nil {
		t.Fatal("missing file should error")
	}
}
