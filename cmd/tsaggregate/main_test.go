package main

import (
	"strings"
	"testing"
)

const sample = `# chain
a b 10
b c 20
c d 30
a b 4000
`

func TestAggregateStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-delta", "100"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"windows (total)", "mean density", "mean largest component"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestAggregateDump(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-delta", "100", "-dump"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# window 0") {
		t.Fatalf("missing window header:\n%s", s)
	}
	if !strings.Contains(s, "a b") || !strings.Contains(s, "c d") {
		t.Fatalf("missing edges:\n%s", s)
	}
	// The event at t=4000 lands in window 39 with origin 10.
	if !strings.Contains(s, "# window 39") {
		t.Fatalf("missing late window:\n%s", s)
	}
}

func TestAggregateTrips(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-delta", "15", "-trips"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "minimal trips:") {
		t.Fatalf("missing trip stats:\n%s", out.String())
	}
}

func TestAggregateErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-delta", "0"}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("delta 0 should error")
	}
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Fatal("empty stream should error")
	}
	if err := run([]string{"-in", "/nonexistent"}, nil, &out); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestAggregateMetrics(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-delta", "100", "-metrics", "degree,weighted",
		"-workers", "2", "-max-inflight", "1", "-lane-width", "4", "-engine-stats"},
		strings.NewReader(sample), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"snapshot metric degree", "mean_degree", "degree_entropy",
		"snapshot metric weighted", "mean_weight", "stability",
		"engine:",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "snapshot metric clustering") {
		t.Fatalf("unrequested metric appeared:\n%s", s)
	}
}

func TestAggregateMetricsRejectsSweepMetrics(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-delta", "100", "-metrics", "occupancy"}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("sweep metric accepted")
	} else if !strings.Contains(err.Error(), "tsscale") {
		t.Fatalf("error %q does not point at the sweeping commands", err)
	}
	if err := run([]string{"-delta", "100", "-metrics", "vibes"}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestAggregateBadLaneWidth(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-delta", "100", "-metrics", "degree", "-lane-width", "5"}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("lane width 5 accepted")
	}
}
