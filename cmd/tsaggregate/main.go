// Command tsaggregate aggregates a link stream into a series of graphs
// at a chosen period ∆ (Definition 1 of the paper) and reports
// per-snapshot statistics, or dumps the snapshots as edge lists.
//
// Usage:
//
//	tsaggregate -delta 3600 < stream.txt
//	tsaggregate -delta 3600 -dump < stream.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/temporal"
	"repro/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsaggregate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsaggregate", flag.ContinueOnError)
	in := fs.String("in", "", "input stream file (default: stdin)")
	delta := fs.Int64("delta", 3600, "aggregation period in seconds")
	directed := fs.Bool("directed", false, "respect link orientation")
	dump := fs.Bool("dump", false, "dump snapshot edge lists instead of statistics")
	trips := fs.Bool("trips", false, "also report minimal-trip statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	s := linkstream.New()
	if _, err := s.ReadEvents(r); err != nil {
		return err
	}
	if s.NumEvents() == 0 {
		return fmt.Errorf("no events read")
	}
	g, err := series.Aggregate(s, *delta, *directed)
	if err != nil {
		return err
	}

	if *dump {
		w := bufio.NewWriter(stdout)
		defer w.Flush()
		for _, win := range g.Windows {
			fmt.Fprintf(w, "# window %d [%d, %d)\n", win.K, g.WindowStart(win.K), g.WindowEnd(win.K))
			for _, e := range win.Edges {
				fmt.Fprintf(w, "%s %s\n", s.NodeName(e.U), s.NodeName(e.V))
			}
		}
		return nil
	}

	st, err := g.ComputeStats()
	if err != nil {
		return err
	}
	rows := [][]string{
		{"windows (total)", fmt.Sprintf("%d", st.NumWindows)},
		{"windows (non-empty)", fmt.Sprintf("%d", st.NonEmptyWindows)},
		{"edges (deduplicated)", fmt.Sprintf("%d", st.TotalEdges)},
		{"mean density", fmt.Sprintf("%.6g", st.MeanDensity)},
		{"mean degree", fmt.Sprintf("%.4g", st.MeanDegree)},
		{"mean non-isolated vertices", fmt.Sprintf("%.4g", st.MeanNonIsolated)},
		{"mean largest component", fmt.Sprintf("%.4g", st.MeanLargestComp)},
	}
	fmt.Fprint(stdout, textplot.Table([]string{"statistic", "value"}, rows))

	if *trips {
		cfg := temporal.Config{N: g.N, Directed: *directed}
		occ := temporal.Occupancies(cfg, temporal.SeriesLayers(g))
		var sum float64
		ones := 0
		for _, o := range occ {
			sum += o
			if o == 1 {
				ones++
			}
		}
		fmt.Fprintf(stdout, "\nminimal trips: %d  mean occupancy: %.4f  occupancy=1: %.1f%%\n",
			len(occ), sum/float64(max(1, len(occ))), 100*float64(ones)/float64(max(1, len(occ))))
	}
	return nil
}
