// Command tsaggregate aggregates a link stream into a series of graphs
// at a chosen period ∆ (Definition 1 of the paper) and reports
// per-snapshot statistics, dumps the snapshots as edge lists, or — with
// -metrics — computes snapshot metrics (degree, clustering, components,
// coreness, weighted aggregation) at that ∆ through the sweep engine.
//
// Usage:
//
//	tsaggregate -delta 3600 < stream.txt
//	tsaggregate -delta 3600 -dump < stream.txt
//	tsaggregate -delta 3600 -metrics degree,weighted < stream.txt
//
// The engine flags -workers, -max-inflight and -lane-width are the
// shared internal/cli bindings — they mean exactly what they mean on
// tsscale and tsvalidate, shape only the -metrics engine pass, and
// never change results.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/cli"
	"repro/internal/series"
	"repro/internal/temporal"
	"repro/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsaggregate:", err)
		os.Exit(1)
	}
}

// snapshotMetrics is the metric set tsaggregate accepts: the per-∆
// snapshot metrics, which are meaningful at a single aggregation
// period. Sweep metrics (occupancy, loss, ...) need a candidate grid —
// that is tsscale's and tsvalidate's job.
var snapshotMetrics = []repro.Metric{
	repro.MetricDegree, repro.MetricClustering, repro.MetricComponents,
	repro.MetricCoreness, repro.MetricWeighted,
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsaggregate", flag.ContinueOnError)
	in := fs.String("in", "", "input stream file, any format — text, LSB binary, LSC columnar (default: stdin)")
	delta := fs.Int64("delta", 3600, "aggregation period in seconds")
	directed := fs.Bool("directed", false, "respect link orientation")
	dump := fs.Bool("dump", false, "dump snapshot edge lists instead of statistics")
	trips := fs.Bool("trips", false, "also report minimal-trip statistics")
	metricsFlag := fs.String("metrics", "",
		"comma-separated snapshot metrics computed at -delta in one engine pass: "+
			"degree,clustering,components,coreness,weighted (see docs/METRICS.md)")
	var workers, maxInFlight, laneWidth int
	cli.BindEngine(fs, &workers, &maxInFlight)
	cli.BindLaneWidth(fs, &laneWidth)
	engineStats := fs.Bool("engine-stats", false,
		"print the engine's instrumentation after the -metrics pass (no engine runs without -metrics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	metrics, err := parseSnapshotMetrics(*metricsFlag)
	if err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	s := repro.NewStream()
	if err := s.ReadAny(r); err != nil {
		return err
	}
	if s.NumEvents() == 0 {
		return fmt.Errorf("no events read")
	}
	g, err := series.Aggregate(s, *delta, *directed)
	if err != nil {
		return err
	}

	if *dump {
		w := bufio.NewWriter(stdout)
		defer w.Flush()
		for _, win := range g.Windows {
			fmt.Fprintf(w, "# window %d [%d, %d)\n", win.K, g.WindowStart(win.K), g.WindowEnd(win.K))
			for _, e := range win.Edges {
				fmt.Fprintf(w, "%s %s\n", s.NodeName(e.U), s.NodeName(e.V))
			}
		}
		return nil
	}

	st, err := g.ComputeStats()
	if err != nil {
		return err
	}
	rows := [][]string{
		{"windows (total)", fmt.Sprintf("%d", st.NumWindows)},
		{"windows (non-empty)", fmt.Sprintf("%d", st.NonEmptyWindows)},
		{"edges (deduplicated)", fmt.Sprintf("%d", st.TotalEdges)},
		{"mean density", fmt.Sprintf("%.6g", st.MeanDensity)},
		{"mean degree", fmt.Sprintf("%.4g", st.MeanDegree)},
		{"mean non-isolated vertices", fmt.Sprintf("%.4g", st.MeanNonIsolated)},
		{"mean largest component", fmt.Sprintf("%.4g", st.MeanLargestComp)},
	}
	fmt.Fprint(stdout, textplot.Table([]string{"statistic", "value"}, rows))

	if len(metrics) > 0 {
		// A single-∆ plan: the candidate grid is {-delta}, so every
		// curve has exactly one point — the metric's value on this
		// aggregation.
		plan, err := repro.NewAnalysis(s,
			repro.WithDirected(*directed),
			repro.WithWorkers(workers),
			repro.WithMaxInFlight(maxInFlight),
			repro.WithLaneWidth(laneWidth),
			repro.WithGrid(*delta),
			repro.WithMetrics(metrics...),
		)
		if err != nil {
			return err
		}
		rep, err := plan.Run(context.Background())
		if err != nil {
			return err
		}
		cli.SnapshotTables(stdout, rep.Snapshots())
		if *engineStats {
			fmt.Fprintf(stdout, "\n%s\n", cli.EngineStatsLine(rep.EngineStats()))
		}
	}

	if *trips {
		cfg := temporal.Config{N: g.N, Directed: *directed}
		occ := temporal.Occupancies(cfg, temporal.SeriesLayers(g))
		var sum float64
		ones := 0
		for _, o := range occ {
			sum += o
			if o == 1 {
				ones++
			}
		}
		fmt.Fprintf(stdout, "\nminimal trips: %d  mean occupancy: %.4f  occupancy=1: %.1f%%\n",
			len(occ), sum/float64(max(1, len(occ))), 100*float64(ones)/float64(max(1, len(occ))))
	}
	return nil
}

// parseSnapshotMetrics parses -metrics, rejecting non-snapshot metrics
// with a pointer at the sweeping commands.
func parseSnapshotMetrics(spec string) ([]repro.Metric, error) {
	if spec == "" {
		return nil, nil
	}
	ms, err := repro.ParseMetrics(spec)
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		ok := false
		for _, a := range snapshotMetrics {
			if m == a {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("metric %q is not a snapshot metric; tsaggregate evaluates one ∆ — sweep metrics like %q belong to tsscale/tsvalidate", m, m)
		}
	}
	return ms, nil
}
