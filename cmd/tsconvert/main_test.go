package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/linkstream"
)

func streamText() string {
	rng := rand.New(rand.NewSource(11))
	var sb strings.Builder
	sb.WriteString("# tsconvert test stream\n")
	nodes := []string{"a", "b", "c", "d", "e"}
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			for k := 0; k < 6; k++ {
				sb.WriteString(u + " " + v + " " + strconv.Itoa(rng.Intn(4000)) + "\n")
			}
		}
	}
	return sb.String()
}

func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "stream.lsc")
	var buf strings.Builder
	err := run([]string{"-o", out, "-skip-every", "8", "-verify"},
		strings.NewReader(streamText()), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "verify: mapped read-back matches input") {
		t.Fatalf("output:\n%s", buf.String())
	}

	// The file must be a sorted columnar stream equal to the text parse.
	col, err := linkstream.OpenMapped(out)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if !col.Sorted() {
		t.Fatal("tsconvert must write sorted files")
	}
	if col.SkipEntries() == 0 {
		t.Fatal("skip index missing")
	}
	want := linkstream.New()
	if _, err := want.ReadEvents(strings.NewReader(streamText())); err != nil {
		t.Fatal(err)
	}
	want.Sort()
	got, pre, err := col.EngineEvents(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !pre {
		t.Fatal("sorted columnar file should report pre-sorted events")
	}
	if len(got) != want.NumEvents() {
		t.Fatalf("events: got %d want %d", len(got), want.NumEvents())
	}
	for i, e := range want.Events() {
		if got[i] != e {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], e)
		}
	}
}

func TestConvertDedupAndReconvert(t *testing.T) {
	dir := t.TempDir()
	text := "a b 5\na b 5\nb c 7\n"
	first := filepath.Join(dir, "first.lsc")
	var buf strings.Builder
	if err := run([]string{"-o", first, "-dedup", "-verify"}, strings.NewReader(text), &buf); err != nil {
		t.Fatal(err)
	}
	col, err := linkstream.OpenMapped(first)
	if err != nil {
		t.Fatal(err)
	}
	if col.NumEvents() != 2 {
		t.Fatalf("dedup kept %d events, want 2", col.NumEvents())
	}
	col.Close()

	// An LSC file is itself valid tsconvert input (ReadAny dispatch).
	second := filepath.Join(dir, "second.lsc")
	buf.Reset()
	if err := run([]string{"-in", first, "-o", second, "-verify"}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(first)
	b, _ := os.ReadFile(second)
	if !bytes.Equal(a, b) {
		t.Fatal("re-converting an LSC file must be byte-identical")
	}
}

func TestConvertErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		in   string
	}{
		{"missing -o", nil, "a b 1\n"},
		{"empty stream", []string{"-o", filepath.Join(dir, "x.lsc")}, "# nothing\n"},
		{"malformed stream", []string{"-o", filepath.Join(dir, "y.lsc")}, "a b notatime\n"},
		{"bad flag", []string{"-skip-every", "zebra"}, ""},
		{"missing input", []string{"-in", filepath.Join(dir, "nope.txt"), "-o", filepath.Join(dir, "z.lsc")}, ""},
	}
	for _, tc := range cases {
		var buf strings.Builder
		if err := run(tc.args, strings.NewReader(tc.in), &buf); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
