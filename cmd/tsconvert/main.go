// Command tsconvert converts a link stream into the LSC columnar
// format: column-separated time/source/destination arrays behind a
// fixed header that carries the node table, the event count, the time
// span and a sparse time→offset skip index. Columnar files open
// memory-mapped (repro.WithStreamPath, tsscale/tsvalidate -stream), so
// an analysis touches only the pages its windows cover and the engine
// skips its sort pass entirely — the file is written time-sorted.
//
// The input may be text ("<u> <v> <t>" lines), LSB binary or an
// existing LSC file (re-converted, e.g. to change -skip-every).
//
// Usage:
//
//	tsconvert -in stream.txt -o stream.lsc
//	tsconvert -in stream.txt -o stream.lsc -dedup -verify
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/linkstream"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsconvert:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsconvert", flag.ContinueOnError)
	in := fs.String("in", "", "input stream file, any format — text, LSB binary, LSC columnar (default: stdin)")
	out := fs.String("o", "", "output columnar file (required)")
	skipEvery := fs.Int("skip-every", linkstream.DefaultSkipEvery,
		"events per skip-index entry; smaller = finer windowed slicing, larger header")
	dedup := fs.Bool("dedup", false, "drop exact duplicate events before writing")
	verify := fs.Bool("verify", false, "re-open the written file memory-mapped and compare it event-for-event against the input")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o is required")
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	s := linkstream.New()
	if err := s.ReadAny(r); err != nil {
		return err
	}
	if s.NumEvents() == 0 {
		return fmt.Errorf("no events read")
	}
	s.Sort()
	if *dedup {
		s.Dedup()
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := s.WriteColumnar(f, linkstream.ColumnarOptions{SkipEvery: *skipEvery})
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(*out)
		return werr
	}

	col, err := linkstream.OpenMapped(*out)
	if err != nil {
		return fmt.Errorf("re-opening %s: %w", *out, err)
	}
	defer col.Close()
	if *verify {
		if err := verifyAgainst(s, col); err != nil {
			return fmt.Errorf("verify %s: %w", *out, err)
		}
	}

	flags := "sorted"
	if col.Canonical() {
		flags += ",canonical"
	}
	fmt.Fprintf(stdout, "%s: %d events, %d nodes, span [%d, %d], %s, %d bytes, %d skip entries\n",
		*out, col.NumEvents(), col.NumNodes(), col.TimeMin(), col.TimeMax(),
		flags, col.Size(), col.SkipEntries())
	if *verify {
		fmt.Fprintln(stdout, "verify: mapped read-back matches input")
	}
	return nil
}

// verifyAgainst compares the mapped file event-for-event and
// name-for-name against the stream that produced it.
func verifyAgainst(s *linkstream.Stream, col *linkstream.Columnar) error {
	if col.NumNodes() != s.NumNodes() {
		return fmt.Errorf("node count mismatch: wrote %d, read %d", s.NumNodes(), col.NumNodes())
	}
	for i := 0; i < s.NumNodes(); i++ {
		if s.NodeName(int32(i)) != col.NodeName(int32(i)) {
			return fmt.Errorf("node %d name mismatch: wrote %q, read %q",
				i, s.NodeName(int32(i)), col.NodeName(int32(i)))
		}
	}
	got, _, err := col.EngineEvents(0, 0, false)
	if err != nil {
		return err
	}
	want := s.Events()
	if len(got) != len(want) {
		return fmt.Errorf("event count mismatch: wrote %d, read %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("event %d mismatch: wrote %+v, read %+v", i, want[i], got[i])
		}
	}
	return nil
}
