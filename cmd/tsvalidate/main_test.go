package main

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func sampleStream(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	var sb strings.Builder
	nodes := []string{"a", "b", "c", "d", "e"}
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			for k := 0; k < 5; k++ {
				sb.WriteString(u + " " + v + " " + strconv.Itoa(rng.Intn(4000)) + "\n")
			}
		}
	}
	return sb.String()
}

func TestValidateRun(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "8"}, strings.NewReader(sampleStream(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"saturation scale gamma", "transitions lost", "mean elongation", "<- gamma", "shortest transitions in the stream:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Fatal("empty stream should error")
	}
	if err := run([]string{"-in", "/nonexistent"}, nil, &out); err == nil {
		t.Fatal("missing file should error")
	}
	if err := run([]string{"-points", "x"}, nil, &out); err == nil {
		t.Fatal("bad flag should error")
	}
	if err := run(nil, strings.NewReader("a a 4\n"), &out); err == nil {
		t.Fatal("self loop should error")
	}
}

func TestValidateMinOverride(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "6", "-min", "100"}, strings.NewReader(sampleStream(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "100") {
		t.Fatalf("output:\n%s", out.String())
	}
}
