// Command tsvalidate quantifies the information an aggregation period
// loses (the paper's Section 8): the proportion of shortest transitions
// collapsed into one window and the mean elongation factor of minimal
// trips, across a sweep of periods, annotated with the saturation scale.
//
// tsvalidate is a thin caller of the plan/run lifecycle: the shared
// flags (internal/cli) map onto repro.Option values and one
// repro.NewAnalysis plan computes the saturation scale and every
// requested validation curve in a single fused engine pass — the
// stream is sorted once, each period's layer arena is built and swept
// once, and the occupancy, loss and elongation observers all score
// that single sweep.
//
// Usage:
//
//	tsvalidate -in stream.txt
//	tsvalidate -points 16 -metrics loss < stream.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/cli"
	"repro/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsvalidate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsvalidate", flag.ContinueOnError)
	f := cli.Bind(fs, cli.Defaults{
		Points:  20,
		Metrics: "loss,elongation",
		MetricsHelp: "comma-separated validation metrics to compute: loss,elongation, " +
			"plus any snapshot metric (degree,clustering,components,coreness,weighted) to judge " +
			"the scale against its stability (see docs/METRICS.md)",
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Gamma is always computed; with neither loss nor elongation
	// selected the run still prints the saturation scale.
	metrics, err := f.ParseMetrics(
		[]repro.Metric{repro.MetricOccupancy},
		[]repro.Metric{repro.MetricOccupancy, repro.MetricTransitionLoss, repro.MetricElongation,
			repro.MetricDegree, repro.MetricClustering, repro.MetricComponents,
			repro.MetricCoreness, repro.MetricWeighted})
	if err != nil {
		return err
	}

	s, inputOpts, err := f.Input(stdin)
	if err != nil {
		return err
	}

	plan, err := repro.NewAnalysis(s, append(f.PlanOptions(metrics...), inputOpts...)...)
	if err != nil {
		return err
	}
	defer plan.Close()
	rep, err := plan.Run(context.Background())
	if err != nil {
		return err
	}

	gamma := rep.Gamma()
	occ := rep.Occupancy()
	loss, elong := rep.TransitionLoss(), rep.Elongation()

	fmt.Fprintf(stdout, "saturation scale gamma = %d s (%.2f h)\n\n", gamma, float64(gamma)/3600)
	header := []string{"period (s)", "period (h)"}
	if loss != nil {
		header = append(header, "transitions lost")
	}
	if elong != nil {
		header = append(header, "mean elongation")
	}
	header = append(header, "")
	rows := make([][]string, 0, len(occ))
	for i, pt := range occ {
		delta := pt.Delta
		marker := ""
		if delta >= gamma && (i == 0 || occ[i-1].Delta < gamma) {
			marker = "<- gamma"
		}
		row := []string{
			fmt.Sprintf("%d", delta),
			fmt.Sprintf("%.3f", float64(delta)/3600),
		}
		if loss != nil {
			row = append(row, fmt.Sprintf("%.1f%%", 100*loss[i].Lost))
		}
		if elong != nil {
			el := "-"
			if p := elong[i]; p.Trips > 0 {
				el = fmt.Sprintf("%.2f", p.MeanElongation)
			}
			row = append(row, el)
		}
		rows = append(rows, append(row, marker))
	}
	fmt.Fprint(stdout, textplot.Table(header, rows))
	if loss != nil {
		fmt.Fprintf(stdout, "\nshortest transitions in the stream: %d\n", loss[0].Total)
	}
	// Snapshot metrics judge the scale from the other side: how stable
	// each structural series is across the same candidate periods.
	if snaps := rep.Snapshots(); len(snaps) > 0 {
		srows := make([][]string, 0, len(snaps)*2)
		for _, c := range snaps {
			for _, ser := range c.Series {
				srows = append(srows, []string{c.Metric, ser.Name, fmt.Sprintf("%.3f", ser.Stability)})
			}
		}
		fmt.Fprintln(stdout, "\nsnapshot-metric stability (1 = plateau across periods):")
		fmt.Fprint(stdout, textplot.Table([]string{"metric", "series", "stability"}, srows))
	}
	if f.EngineStats {
		fmt.Fprintf(stdout, "\n%s\n", cli.EngineStatsLine(rep.EngineStats()))
	}
	return nil
}
