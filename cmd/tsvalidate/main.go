// Command tsvalidate quantifies the information an aggregation period
// loses (the paper's Section 8): the proportion of shortest transitions
// collapsed into one window and the mean elongation factor of minimal
// trips, across a sweep of periods, annotated with the saturation scale.
//
// Usage:
//
//	tsvalidate -in stream.txt
//	tsvalidate -points 16 < stream.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/linkstream"
	"repro/internal/textplot"
	"repro/internal/validate"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsvalidate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsvalidate", flag.ContinueOnError)
	in := fs.String("in", "", "input stream file (default: stdin)")
	directed := fs.Bool("directed", false, "respect link orientation")
	points := fs.Int("points", 20, "number of periods to sweep")
	minDelta := fs.Int64("min", 0, "smallest period (default: stream resolution)")
	workers := fs.Int("workers", 0, "engine parallelism (0 = all CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	s := linkstream.New()
	if _, err := s.ReadEvents(r); err != nil {
		return err
	}
	if s.NumEvents() == 0 {
		return fmt.Errorf("no events read")
	}

	lo := *minDelta
	if lo <= 0 {
		lo = s.Resolution()
	}
	grid := core.LogGrid(lo, s.Duration(), *points)
	opt := validate.Options{Directed: *directed, Workers: *workers}

	sc, err := core.SaturationScale(s, core.Options{
		Directed: *directed, Workers: *workers, Grid: grid,
	})
	if err != nil {
		return err
	}
	loss, err := validate.TransitionLossCurve(s, grid, opt)
	if err != nil {
		return err
	}
	elong, err := validate.ElongationCurve(s, grid, opt)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "saturation scale gamma = %d s (%.2f h)\n\n", sc.Gamma, float64(sc.Gamma)/3600)
	rows := make([][]string, 0, len(grid))
	for i, delta := range grid {
		marker := ""
		if delta >= sc.Gamma && (i == 0 || grid[i-1] < sc.Gamma) {
			marker = "<- gamma"
		}
		el := "-"
		if elong[i].Trips > 0 {
			el = fmt.Sprintf("%.2f", elong[i].MeanElongation)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", delta),
			fmt.Sprintf("%.3f", float64(delta)/3600),
			fmt.Sprintf("%.1f%%", 100*loss[i].Lost),
			el,
			marker,
		})
	}
	fmt.Fprint(stdout, textplot.Table(
		[]string{"period (s)", "period (h)", "transitions lost", "mean elongation", ""},
		rows))
	if len(loss) > 0 {
		fmt.Fprintf(stdout, "\nshortest transitions in the stream: %d\n", loss[0].Total)
	}
	return nil
}
