// Command tsvalidate quantifies the information an aggregation period
// loses (the paper's Section 8): the proportion of shortest transitions
// collapsed into one window and the mean elongation factor of minimal
// trips, across a sweep of periods, annotated with the saturation scale.
//
// The saturation scale and every requested validation curve come out of
// one pass of the unified sweep engine: the stream is sorted once, each
// period's layer arena is built and swept once, and the occupancy, loss
// and elongation observers all score that single sweep.
//
// Usage:
//
//	tsvalidate -in stream.txt
//	tsvalidate -points 16 -metrics loss < stream.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/linkstream"
	"repro/internal/sweep"
	"repro/internal/textplot"
	"repro/internal/validate"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsvalidate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsvalidate", flag.ContinueOnError)
	in := fs.String("in", "", "input stream file (default: stdin)")
	directed := fs.Bool("directed", false, "respect link orientation")
	points := fs.Int("points", 20, "number of periods to sweep")
	minDelta := fs.Int64("min", 0, "smallest period (default: stream resolution)")
	workers := fs.Int("workers", 0, "engine parallelism (0 = all CPUs)")
	metricsSpec := fs.String("metrics", "loss,elongation",
		"comma-separated validation metrics to compute: loss,elongation")
	maxInFlight := fs.Int("max-inflight", 0, "max aggregation periods resident in the sweep engine (0 = engine default)")
	engineStats := fs.Bool("engine-stats", false,
		"print the engine's build instrumentation after the run (period CSR builds, dedup hits, stream enumerations, peak resident periods)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	wantLoss, wantElong := false, false
	for _, name := range strings.Split(*metricsSpec, ",") {
		switch strings.TrimSpace(name) {
		case "", "occupancy": // gamma is always computed
		case "loss":
			wantLoss = true
		case "elongation":
			wantElong = true
		default:
			return fmt.Errorf("unknown metric %q (have loss, elongation)", name)
		}
	}
	// With neither loss nor elongation selected the run still computes
	// and prints the saturation scale (gamma-only mode).

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	s := linkstream.New()
	if _, err := s.ReadEvents(r); err != nil {
		return err
	}
	if s.NumEvents() == 0 {
		return fmt.Errorf("no events read")
	}

	lo := *minDelta
	if lo <= 0 {
		lo = s.Resolution()
	}
	grid := core.LogGrid(lo, s.Duration(), *points)

	occObs := core.NewOccupancyObserver(nil)
	observers := []sweep.Observer{occObs}
	var lossObs *validate.TransitionLossObserver
	var elongObs *validate.ElongationObserver
	if wantLoss {
		lossObs = validate.NewTransitionLossObserver()
		observers = append(observers, lossObs)
	}
	if wantElong {
		elongObs = validate.NewElongationObserver()
		observers = append(observers, elongObs)
	}
	if *engineStats {
		sweep.ResetBuildStats()
	}
	err := sweep.Run(s, grid, sweep.Options{
		Directed:    *directed,
		Workers:     *workers,
		MaxInFlight: *maxInFlight,
	}, observers...)
	if err != nil {
		return err
	}
	occ := occObs.Points()
	gamma := occ[core.Best(occ, 0)].Delta

	fmt.Fprintf(stdout, "saturation scale gamma = %d s (%.2f h)\n\n", gamma, float64(gamma)/3600)
	header := []string{"period (s)", "period (h)"}
	if wantLoss {
		header = append(header, "transitions lost")
	}
	if wantElong {
		header = append(header, "mean elongation")
	}
	header = append(header, "")
	rows := make([][]string, 0, len(grid))
	for i, delta := range grid {
		marker := ""
		if delta >= gamma && (i == 0 || grid[i-1] < gamma) {
			marker = "<- gamma"
		}
		row := []string{
			fmt.Sprintf("%d", delta),
			fmt.Sprintf("%.3f", float64(delta)/3600),
		}
		if wantLoss {
			row = append(row, fmt.Sprintf("%.1f%%", 100*lossObs.Points()[i].Lost))
		}
		if wantElong {
			el := "-"
			if p := elongObs.Points()[i]; p.Trips > 0 {
				el = fmt.Sprintf("%.2f", p.MeanElongation)
			}
			row = append(row, el)
		}
		rows = append(rows, append(row, marker))
	}
	fmt.Fprint(stdout, textplot.Table(header, rows))
	if wantLoss {
		fmt.Fprintf(stdout, "\nshortest transitions in the stream: %d\n", lossObs.Points()[0].Total)
	}
	if *engineStats {
		printEngineStats(stdout)
	}
	return nil
}

// printEngineStats reports the engine's build instrumentation for the
// run: how many period CSR arenas were built, how many coinciding
// (window, ∆) jobs were served by an existing build, how many
// raw-stream trip enumerations ran, and the in-flight high-water mark.
func printEngineStats(stdout io.Writer) {
	builds, maxResident := sweep.BuildStats()
	fmt.Fprintf(stdout, "\nengine: %d period CSR builds (+%d deduplicated), %d stream trip enumerations, peak %d periods resident\n",
		builds, sweep.DedupCount(), sweep.StreamBuildCount(), maxResident)
}
