package main

import (
	"strings"
	"testing"

	"repro/internal/linkstream"
)

func generate(t *testing.T, args ...string) *linkstream.Stream {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := linkstream.New()
	if _, err := s.ReadEvents(strings.NewReader(out.String())); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenUniform(t *testing.T) {
	s := generate(t, "-kind", "uniform", "-nodes", "8", "-per-pair", "3", "-t", "1000", "-seed", "2")
	if s.NumEvents() != 28*3 {
		t.Fatalf("events = %d, want %d", s.NumEvents(), 28*3)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenTwoMode(t *testing.T) {
	s := generate(t, "-kind", "twomode", "-nodes", "6", "-n1", "2", "-n2", "1",
		"-rho", "0.5", "-t", "1000", "-alternations", "5")
	if s.NumEvents() != 5*15*3 {
		t.Fatalf("events = %d, want %d", s.NumEvents(), 5*15*3)
	}
}

func TestGenTwoModeBadRho(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "twomode", "-rho", "1.5"}, &out); err == nil {
		t.Fatal("rho > 1 should error")
	}
}

func TestGenMessage(t *testing.T) {
	s := generate(t, "-kind", "message", "-nodes", "20", "-days", "5", "-rate", "2")
	if s.NumEvents() != 200 {
		t.Fatalf("events = %d, want 200", s.NumEvents())
	}
}

func TestGenDataset(t *testing.T) {
	s := generate(t, "-kind", "dataset", "-name", "enron")
	if s.NumNodes() != 150 {
		t.Fatalf("enron nodes = %d, want 150", s.NumNodes())
	}
}

func TestGenDatasetUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "dataset", "-name", "nope"}, &out); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestGenUnknownKind(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "nope"}, &out); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestGenDeterministicBySeed(t *testing.T) {
	a := generate(t, "-kind", "uniform", "-nodes", "5", "-per-pair", "2", "-t", "500", "-seed", "9")
	b := generate(t, "-kind", "uniform", "-nodes", "5", "-per-pair", "2", "-t", "500", "-seed", "9")
	if a.NumEvents() != b.NumEvents() {
		t.Fatal("same seed, different event counts")
	}
	for i, e := range a.Events() {
		if e != b.Events()[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}
