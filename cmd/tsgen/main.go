// Command tsgen generates synthetic link streams: the paper's
// time-uniform and two-mode networks (Section 6), message networks with
// circadian rhythm, and the four calibrated dataset stand-ins.
//
// Usage:
//
//	tsgen -kind uniform -nodes 100 -per-pair 10 -t 100000 > stream.txt
//	tsgen -kind twomode -nodes 50 -n1 9 -n2 1 -rho 0.5 -t 100000 > stream.txt
//	tsgen -kind message -nodes 200 -days 30 -rate 0.6 > stream.txt
//	tsgen -kind dataset -name irvine > stream.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/datasets"
	"repro/internal/linkstream"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsgen", flag.ContinueOnError)
	kind := fs.String("kind", "uniform", "generator: uniform | twomode | message | dataset")
	nodes := fs.Int("nodes", 100, "number of nodes")
	seed := fs.Int64("seed", 1, "random seed")
	// uniform / twomode
	perPair := fs.Int("per-pair", 10, "links per pair (uniform)")
	t := fs.Int64("t", 100_000, "period of study in seconds (uniform, twomode)")
	n1 := fs.Int("n1", 9, "links per pair per high period (twomode)")
	n2 := fs.Int("n2", 1, "links per pair per low period (twomode)")
	rho := fs.Float64("rho", 0.5, "fraction of low-activity time (twomode)")
	alt := fs.Int("alternations", 10, "high/low alternations (twomode)")
	// message
	days := fs.Int("days", 30, "study duration in days (message)")
	rate := fs.Float64("rate", 1.0, "messages per person per day (message)")
	// dataset
	name := fs.String("name", "irvine", "dataset stand-in: irvine | facebook | enron | manufacturing")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		s   *linkstream.Stream
		err error
	)
	switch *kind {
	case "uniform":
		s, err = synth.TimeUniform(synth.TimeUniformConfig{
			Nodes: *nodes, LinksPerPair: *perPair, T: *t, Seed: *seed,
		})
	case "twomode":
		if *rho < 0 || *rho > 1 {
			return fmt.Errorf("rho = %v outside [0,1]", *rho)
		}
		period := *t / int64(*alt)
		t2 := int64(*rho * float64(period))
		s, err = synth.TwoMode(synth.TwoModeConfig{
			Nodes: *nodes, N1: *n1, N2: *n2,
			T1: period - t2, T2: t2, Alternations: *alt, Seed: *seed,
		})
	case "message":
		s, err = synth.MessageNetwork(synth.MessageConfig{
			Nodes: *nodes, Days: *days, MsgsPerPersonDay: *rate, Seed: *seed,
			ActivityExponent: 0.8, Reciprocity: 0.35, PartnerAffinity: 0.65,
		})
	case "dataset":
		var d *datasets.Dataset
		d, err = datasets.ByName(*name)
		if err == nil {
			s, err = d.Stream()
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	_, err = s.WriteTo(stdout)
	return err
}
