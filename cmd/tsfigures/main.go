// Command tsfigures regenerates every figure and table of the paper's
// evaluation (see DESIGN.md for the experiment index) on the calibrated
// dataset stand-ins and synthetic workloads.
//
// Usage:
//
//	tsfigures                 # run everything, full profile
//	tsfigures -profile quick  # seconds-scale run
//	tsfigures -fig fig3       # one experiment
//	tsfigures -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/figures"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsfigures:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsfigures", flag.ContinueOnError)
	fig := fs.String("fig", "", "experiment to run (table1, fig2..fig8b); empty = all")
	metrics := fs.String("metrics", "", "comma-separated list of experiments to run (e.g. fig2,fig8a); empty = all")
	profile := fs.String("profile", "full", "profile: full | quick")
	out := fs.String("out", "", "write output to this file instead of stdout")
	var workers, maxInFlight int
	cli.BindEngine(fs, &workers, &maxInFlight)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p figures.Profile
	switch *profile {
	case "full":
		p = figures.FullProfile()
	case "quick":
		p = figures.QuickProfile()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	p.Workers = workers
	p.MaxInFlight = maxInFlight

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch {
	case *fig != "" && *metrics != "":
		return fmt.Errorf("-fig and -metrics are mutually exclusive")
	case *fig != "":
		return figures.Run(*fig, p, w)
	case *metrics != "":
		for _, name := range strings.Split(*metrics, ",") {
			if err := figures.Run(strings.TrimSpace(name), p, w); err != nil {
				return err
			}
		}
		return nil
	default:
		return figures.RunAll(p, w)
	}
}
