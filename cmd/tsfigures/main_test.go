package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "fig6a", "-profile", "quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 6 left") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := run([]string{"-fig", "fig6a", "-profile", "quick", "-out", path}, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "saturation scale") {
		t.Fatalf("file content:\n%s", data)
	}
}

func TestRunBadProfile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-profile", "nope"}, &out); err == nil {
		t.Fatal("bad profile should error")
	}
}

func TestRunBadFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "fig99", "-profile", "quick"}, &out); err == nil {
		t.Fatal("bad figure should error")
	}
}

func TestRunBadOutPath(t *testing.T) {
	if err := run([]string{"-fig", "fig6a", "-profile", "quick", "-out", "/nonexistent/dir/out.txt"}, nil); err == nil {
		t.Fatal("unwritable output path should error")
	}
}
