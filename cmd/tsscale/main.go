// Command tsscale computes the saturation scale γ of a link stream: the
// largest aggregation period that does not alter the propagation
// properties of the dynamic network (the occupancy method of Léo,
// Crespelle, Fleury — CoNEXT 2015).
//
// Usage:
//
//	tsscale [flags] < stream.txt
//	tsscale [flags] -in stream.txt
//
// The stream format is one "<u> <v> <t>" event per line ('#'/'%'
// comments allowed). The tool prints γ and, with -curve, the full M-K
// proximity curve.
//
// tsscale is a thin caller of the plan/run lifecycle: the shared flags
// (internal/cli) map onto repro.Option values, one repro.NewAnalysis
// plan fuses the occupancy method with every requested -metrics curve
// (and, with -adaptive, the per-segment scale searches), and the whole
// run is a Plan.Run whose Report feeds the output tables.
//
// With -coordinator the same flags become a PlanSpec submitted to a
// tsserve coordinator (see cmd/tsserve), whose distributed fold is
// byte-identical to running the plan locally.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro"
	"repro/internal/cli"
	"repro/internal/serve"
	"repro/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsscale:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsscale", flag.ContinueOnError)
	f := cli.Bind(fs, cli.Defaults{
		Points:  repro.DefaultGridPoints,
		Metrics: "occupancy",
		MetricsHelp: "comma-separated metrics computed in one fused engine pass: " +
			"occupancy,classic,distance,loss,elongation,degree,clustering,components,coreness,weighted " +
			"(occupancy always included; extra metrics see the unrefined grid; see docs/METRICS.md)",
	})
	refine := fs.Int("refine", 4, "extra refinement points around the best period (0 = off)")
	curve := fs.Bool("curve", false, "print the full proximity curve")
	allSel := fs.Bool("all-selectors", false, "score with all five Section 7 metrics")
	adaptiveMode := fs.Bool("adaptive", false,
		"segment activity modes and determine per-segment scales; the global sweep, every segment sweep and any -metrics extras share one fused engine pass")
	progress := fs.Bool("progress", false, "stream per-period progress to stderr while the analysis runs")
	jsonOut := fs.Bool("json", false,
		"print the report as the versioned JSON wire envelope (the exact bytes tsserve's result endpoint returns for the same plan) instead of the human tables")
	coordinator := fs.String("coordinator", "",
		"submit the analysis to a tsserve coordinator at this URL instead of running locally; -stream paths resolve under the coordinator's stream root, and the folded report is byte-identical to a local run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	metrics, err := f.ParseMetrics([]repro.Metric{repro.MetricOccupancy}, nil)
	if err != nil {
		return err
	}

	var sels []repro.Selector
	if *allSel {
		sels = repro.AllSelectors()
	}
	if *coordinator != "" {
		return runCoordinator(*coordinator, f, metrics, sels, *refine, *adaptiveMode, *jsonOut, *curve, *allSel, stdin, stdout)
	}

	s, inputOpts, err := f.Input(stdin)
	if err != nil {
		return err
	}
	opts := f.PlanOptions(metrics...)
	opts = append(opts, inputOpts...)
	opts = append(opts, repro.WithRefine(*refine), repro.WithSelectors(sels...))
	if *adaptiveMode {
		// Execution knobs (orientation, workers, grid shape, refinement,
		// budgets) are already plan options above; WithAdaptive only
		// turns the segmentation on.
		opts = append(opts, repro.WithAdaptive(repro.AdaptiveConfig{}))
	}
	if *progress {
		opts = append(opts, repro.WithProgress(func(ev repro.ProgressEvent) {
			if ev.Stage == repro.ProgressPeriod {
				fmt.Fprintf(os.Stderr, "\rpass %d: %d/%d periods", ev.Pass, ev.PeriodsDone, ev.PeriodsTotal)
			}
		}))
	}

	plan, err := repro.NewAnalysis(s, opts...)
	if err != nil {
		return err
	}
	defer plan.Close()
	rep, err := plan.Run(context.Background())
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		// The same bytes tsserve serves for this plan: the CI serve-e2e
		// leg diffs them against an HTTP-fetched report.
		data, err := serve.EncodeReport(rep)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(stdout, "%s\n", data); err != nil {
			return err
		}
		if f.EngineStats {
			fmt.Fprintf(os.Stderr, "%s\n", cli.EngineStatsLine(rep.EngineStats()))
		}
		return nil
	}
	// Stats come from the plan's view of the stream so -in and -stream
	// print byte-identical headers (a mapped columnar input has no
	// *Stream until asked for one).
	ms, err := plan.Stream()
	if err != nil {
		return err
	}
	st := ms.ComputeStats()
	fmt.Fprintf(stdout, "events: %d  nodes: %d  span: %ds  activity: %.3f msgs/person/day\n",
		st.Events, st.Nodes, st.Span, st.EventsPerNodePerDay)
	return renderReport(stdout, f, rep, sels, *curve, *allSel)
}

// renderReport prints the human tables of a report — shared by the
// local run and the coordinator-submitted run, whose folded report
// renders identically (minus the stream-stats header, which needs the
// stream itself).
func renderReport(stdout io.Writer, f *cli.Flags, rep *repro.Report, sels []repro.Selector, curve, allSel bool) error {
	res, _ := rep.Scale()
	fmt.Fprintf(stdout, "saturation scale gamma = %d s (%.2f h) [selector %s, score %.4f]\n",
		res.Gamma, float64(res.Gamma)/3600, res.Selector, res.Score)

	if allSel {
		rows := make([][]string, 0, len(sels))
		for i, sel := range sels {
			best := repro.BestPoint(res.Points, i)
			rows = append(rows, []string{
				sel.Name(),
				fmt.Sprintf("%d", res.Points[best].Delta),
				fmt.Sprintf("%.2f", float64(res.Points[best].Delta)/3600),
			})
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, textplot.Table([]string{"selector", "period (s)", "period (h)"}, rows))
	}
	if a := rep.Adaptive(); a != nil {
		fmt.Fprintf(stdout, "\nadaptive analysis: two-mode = %v, min per-segment gamma = %d s\n",
			a.TwoMode, a.MinGamma)
		rows := make([][]string, 0, len(a.Segments))
		for _, seg := range a.Segments {
			mode := "low"
			if seg.HighActivity {
				mode = "high"
			}
			gamma := "-"
			if seg.Gamma > 0 {
				gamma = fmt.Sprintf("%.2fh", float64(seg.Gamma)/3600)
			}
			rows = append(rows, []string{
				fmt.Sprintf("[%d, %d)", seg.Start, seg.End),
				mode,
				fmt.Sprintf("%d", seg.Events),
				gamma,
			})
		}
		fmt.Fprint(stdout, textplot.Table([]string{"segment", "mode", "events", "gamma"}, rows))
	}
	if pts := rep.Classic(); pts != nil {
		rows := make([][]string, 0, len(pts))
		for _, p := range pts {
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.Delta),
				fmt.Sprintf("%.5f", p.MeanDensity),
				fmt.Sprintf("%.3f", p.MeanDegree),
				fmt.Sprintf("%.2f", p.MeanNonIsolated),
				fmt.Sprintf("%.2f", p.MeanLargestComp),
			})
		}
		fmt.Fprintln(stdout, "\nclassical properties (Figure 2):")
		fmt.Fprint(stdout, textplot.Table(
			[]string{"period (s)", "density", "degree", "non-isolated", "largest comp"}, rows))
	}
	if pts := rep.Distances(); pts != nil {
		rows := make([][]string, 0, len(pts))
		for _, p := range pts {
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.Delta),
				fmt.Sprintf("%.3f", p.MeanTime),
				fmt.Sprintf("%.3f", p.MeanHops),
				fmt.Sprintf("%.3f", p.MeanAbsTime/3600),
				fmt.Sprintf("%d", p.FinitePairs),
			})
		}
		fmt.Fprintln(stdout, "\nmean temporal distances:")
		fmt.Fprint(stdout, textplot.Table(
			[]string{"period (s)", "dtime (windows)", "dhops", "dabstime (h)", "finite triples"}, rows))
	}
	loss, elong := rep.TransitionLoss(), rep.Elongation()
	if loss != nil || elong != nil {
		// Both observers scored the same (unrefined) grid; label rows
		// with their own deltas — res.Points may hold refined extras.
		deltas := make([]int64, 0)
		header := []string{"period (s)"}
		if loss != nil {
			header = append(header, "transitions lost")
			for _, p := range loss {
				deltas = append(deltas, p.Delta)
			}
		}
		if elong != nil {
			header = append(header, "mean elongation")
			if loss == nil {
				for _, p := range elong {
					deltas = append(deltas, p.Delta)
				}
			}
		}
		rows := make([][]string, 0, len(deltas))
		for i, delta := range deltas {
			row := []string{fmt.Sprintf("%d", delta)}
			if loss != nil {
				row = append(row, fmt.Sprintf("%.1f%%", 100*loss[i].Lost))
			}
			if elong != nil {
				el := "-"
				if p := elong[i]; p.Trips > 0 {
					el = fmt.Sprintf("%.2f", p.MeanElongation)
				}
				row = append(row, el)
			}
			rows = append(rows, row)
		}
		fmt.Fprintln(stdout, "\nvalidation (Section 8):")
		fmt.Fprint(stdout, textplot.Table(header, rows))
	}
	cli.SnapshotTables(stdout, rep.Snapshots())
	if curve {
		pts := make([]textplot.XY, 0, len(res.Points))
		for _, p := range res.Points {
			pts = append(pts, textplot.XY{X: float64(p.Delta) / 3600, Y: p.Scores[0]})
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, textplot.Plot(textplot.PlotConfig{
			Title:  "M-K proximity vs aggregation period",
			XLabel: "period (h)", YLabel: "proximity", LogX: true, Height: 14,
		}, textplot.Series{Name: "proximity", Marker: '+', Points: pts}))
	}
	if f.EngineStats {
		// With -adaptive, the dedup count exposes the homogeneous-stream
		// case: a single activity segment coincides with the global
		// scope, so every period is built once and fanned to both.
		fmt.Fprintf(stdout, "\n%s\n", cli.EngineStatsLine(rep.EngineStats()))
	}
	return nil
}

// runCoordinator maps the flags onto a PlanSpec and submits it to a
// tsserve coordinator. A -stream path travels as-is in the spec — it
// resolves under the coordinator's stream root, not locally — while
// -in/stdin input is inlined into the spec. The folded report comes
// back over the same wire envelope tsserve uses, so -json prints
// coordinator bytes that diff clean against a local `tsscale -json`
// run of the same plan.
func runCoordinator(coordURL string, f *cli.Flags, metrics []repro.Metric, sels []repro.Selector,
	refine int, adaptiveMode, jsonOut, curve, allSel bool, stdin io.Reader, stdout io.Writer) error {
	spec := &repro.PlanSpec{
		Directed:   f.Directed,
		GridPoints: f.Points,
		MinDelta:   f.MinDelta,
		Refine:     refine,
		Speculate:  f.Speculate,
	}
	for _, m := range metrics {
		spec.Metrics = append(spec.Metrics, m.String())
	}
	for _, sel := range sels {
		spec.Selectors = append(spec.Selectors, sel.Name())
	}
	if adaptiveMode {
		spec.Adaptive = &repro.AdaptiveSpec{}
	}
	if f.Stream != "" {
		if f.In != "" {
			return fmt.Errorf("-in and -stream are mutually exclusive")
		}
		spec.Stream = &repro.StreamRef{Path: f.Stream}
	} else {
		s, err := f.ReadStream(stdin)
		if err != nil {
			return err
		}
		spec.Inline = repro.InlineEventsOf(s)
	}

	body, err := serve.EncodePlan(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(coordURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator: status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if jsonOut {
		_, err := fmt.Fprintf(stdout, "%s\n", data)
		return err
	}
	rep, err := serve.DecodeReport(data)
	if err != nil {
		return err
	}
	return renderReport(stdout, f, rep, sels, curve, allSel)
}
