// Command tsscale computes the saturation scale γ of a link stream: the
// largest aggregation period that does not alter the propagation
// properties of the dynamic network (the occupancy method of Léo,
// Crespelle, Fleury — CoNEXT 2015).
//
// Usage:
//
//	tsscale [flags] < stream.txt
//	tsscale [flags] -in stream.txt
//
// The stream format is one "<u> <v> <t>" event per line ('#'/'%'
// comments allowed). The tool prints γ and, with -curve, the full M-K
// proximity curve.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/linkstream"
	"repro/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsscale:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsscale", flag.ContinueOnError)
	in := fs.String("in", "", "input stream file (default: stdin)")
	directed := fs.Bool("directed", false, "respect link orientation")
	points := fs.Int("points", core.DefaultGridPoints, "number of candidate periods to sweep")
	minDelta := fs.Int64("min", 0, "smallest candidate period (default: stream resolution)")
	refine := fs.Int("refine", 4, "extra refinement points around the best period (0 = off)")
	curve := fs.Bool("curve", false, "print the full proximity curve")
	allSel := fs.Bool("all-selectors", false, "score with all five Section 7 metrics")
	adaptiveMode := fs.Bool("adaptive", false, "also segment activity modes and report per-segment scales")
	workers := fs.Int("workers", 0, "engine parallelism (0 = all CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	s := linkstream.New()
	n, err := s.ReadEvents(r)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("no events read")
	}

	opt := core.Options{Directed: *directed, Workers: *workers, Refine: *refine}
	if *allSel {
		opt.Selectors = dist.AllSelectors()
	}
	lo := *minDelta
	if lo <= 0 {
		lo = s.Resolution()
	}
	opt.Grid = core.LogGrid(lo, s.Duration(), *points)

	res, err := core.SaturationScale(s, opt)
	if err != nil {
		return err
	}
	st := s.ComputeStats()
	fmt.Fprintf(stdout, "events: %d  nodes: %d  span: %ds  activity: %.3f msgs/person/day\n",
		st.Events, st.Nodes, st.Span, st.EventsPerNodePerDay)
	fmt.Fprintf(stdout, "saturation scale gamma = %d s (%.2f h) [selector %s, score %.4f]\n",
		res.Gamma, float64(res.Gamma)/3600, res.Selector, res.Score)

	if *allSel {
		sels := dist.AllSelectors()
		rows := make([][]string, 0, len(sels))
		for i, sel := range sels {
			best := core.Best(res.Points, i)
			rows = append(rows, []string{
				sel.Name(),
				fmt.Sprintf("%d", res.Points[best].Delta),
				fmt.Sprintf("%.2f", float64(res.Points[best].Delta)/3600),
			})
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, textplot.Table([]string{"selector", "period (s)", "period (h)"}, rows))
	}
	if *adaptiveMode {
		a, err := adaptive.Analyze(s, adaptive.Config{
			Directed: *directed, Workers: *workers, GridPoints: *points,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nadaptive analysis: two-mode = %v, min per-segment gamma = %d s\n",
			a.TwoMode, a.MinGamma)
		rows := make([][]string, 0, len(a.Segments))
		for _, seg := range a.Segments {
			mode := "low"
			if seg.HighActivity {
				mode = "high"
			}
			gamma := "-"
			if seg.Gamma > 0 {
				gamma = fmt.Sprintf("%.2fh", float64(seg.Gamma)/3600)
			}
			rows = append(rows, []string{
				fmt.Sprintf("[%d, %d)", seg.Start, seg.End),
				mode,
				fmt.Sprintf("%d", seg.Events),
				gamma,
			})
		}
		fmt.Fprint(stdout, textplot.Table([]string{"segment", "mode", "events", "gamma"}, rows))
	}
	if *curve {
		pts := make([]textplot.XY, 0, len(res.Points))
		for _, p := range res.Points {
			pts = append(pts, textplot.XY{X: float64(p.Delta) / 3600, Y: p.Scores[0]})
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, textplot.Plot(textplot.PlotConfig{
			Title:  "M-K proximity vs aggregation period",
			XLabel: "period (h)", YLabel: "proximity", LogX: true, Height: 14,
		}, textplot.Series{Name: "proximity", Marker: '+', Points: pts}))
	}
	return nil
}
