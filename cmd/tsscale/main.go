// Command tsscale computes the saturation scale γ of a link stream: the
// largest aggregation period that does not alter the propagation
// properties of the dynamic network (the occupancy method of Léo,
// Crespelle, Fleury — CoNEXT 2015).
//
// Usage:
//
//	tsscale [flags] < stream.txt
//	tsscale [flags] -in stream.txt
//
// The stream format is one "<u> <v> <t>" event per line ('#'/'%'
// comments allowed). The tool prints γ and, with -curve, the full M-K
// proximity curve.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/linkstream"
	"repro/internal/sweep"
	"repro/internal/textplot"
	"repro/internal/validate"
)

// metricSet is the parsed -metrics flag: which curves the fused engine
// pass computes alongside the occupancy method.
type metricSet struct {
	classic, distance, loss, elongation bool
}

func parseMetrics(spec string) (metricSet, error) {
	var m metricSet
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "", "occupancy": // always on: it decides gamma
		case "classic":
			m.classic = true
		case "distance":
			m.distance = true
		case "loss":
			m.loss = true
		case "elongation":
			m.elongation = true
		default:
			return m, fmt.Errorf("unknown metric %q (have occupancy, classic, distance, loss, elongation)", name)
		}
	}
	return m, nil
}

func (m metricSet) extras() bool { return m.classic || m.distance || m.loss || m.elongation }

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsscale:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tsscale", flag.ContinueOnError)
	in := fs.String("in", "", "input stream file (default: stdin)")
	directed := fs.Bool("directed", false, "respect link orientation")
	points := fs.Int("points", core.DefaultGridPoints, "number of candidate periods to sweep")
	minDelta := fs.Int64("min", 0, "smallest candidate period (default: stream resolution)")
	refine := fs.Int("refine", 4, "extra refinement points around the best period (0 = off)")
	curve := fs.Bool("curve", false, "print the full proximity curve")
	allSel := fs.Bool("all-selectors", false, "score with all five Section 7 metrics")
	adaptiveMode := fs.Bool("adaptive", false,
		"segment activity modes and determine per-segment scales; the global sweep, every segment sweep and any -metrics extras share one fused engine pass")
	workers := fs.Int("workers", 0, "engine parallelism (0 = all CPUs)")
	metricsSpec := fs.String("metrics", "occupancy",
		"comma-separated metrics computed in one fused engine pass: occupancy,classic,distance,loss,elongation (occupancy always included; extra metrics see the unrefined grid)")
	maxInFlight := fs.Int("max-inflight", 0, "max aggregation periods resident in the sweep engine (0 = engine default)")
	engineStats := fs.Bool("engine-stats", false,
		"print the engine's build instrumentation after the run (period CSR builds, dedup hits, stream enumerations, peak resident periods)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	metrics, err := parseMetrics(*metricsSpec)
	if err != nil {
		return err
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	s := linkstream.New()
	n, err := s.ReadEvents(r)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("no events read")
	}

	opt := core.Options{Directed: *directed, Workers: *workers, Refine: *refine, MaxInFlight: *maxInFlight}
	if *allSel {
		opt.Selectors = dist.AllSelectors()
	}
	lo := *minDelta
	if lo <= 0 {
		lo = s.Resolution()
	}
	opt.Grid = core.LogGrid(lo, s.Duration(), *points)

	if *engineStats {
		sweep.ResetBuildStats()
	}
	var res core.Result
	var analysis *adaptive.Analysis
	var classicObs *classic.Observer
	var distObs *sweep.DistanceObserver
	var lossObs *validate.TransitionLossObserver
	var elongObs *validate.ElongationObserver
	var extraObs []sweep.Observer
	if metrics.classic {
		classicObs = classic.NewObserver()
		extraObs = append(extraObs, classicObs)
	}
	if metrics.distance {
		distObs = sweep.NewDistanceObserver()
		extraObs = append(extraObs, distObs)
	}
	if metrics.loss {
		lossObs = validate.NewTransitionLossObserver()
		extraObs = append(extraObs, lossObs)
	}
	if metrics.elongation {
		elongObs = validate.NewElongationObserver()
		extraObs = append(extraObs, elongObs)
	}
	if *adaptiveMode {
		// Fully fused: the global occupancy sweep, every per-segment
		// sweep and all requested extra metrics fall out of one windowed
		// engine pass per bisection round.
		a, err := adaptive.AnalyzeWith(s, adaptive.Config{
			Directed:    *directed,
			Workers:     *workers,
			GridPoints:  *points,
			MinDelta:    lo,
			Refine:      *refine,
			Selectors:   opt.Selectors,
			MaxInFlight: *maxInFlight,
		}, extraObs...)
		if err != nil {
			return err
		}
		analysis = a
		res = a.Global
	} else if metrics.extras() {
		// Fused mode: every requested curve falls out of one engine
		// pass over the stream (one CSR build and one backward sweep
		// per candidate period, shared by all observers).
		occObs := core.NewOccupancyObserver(opt.Selectors)
		observers := append([]sweep.Observer{occObs}, extraObs...)
		err := sweep.Run(s, opt.Grid, sweep.Options{
			Directed:    *directed,
			Workers:     *workers,
			MaxInFlight: *maxInFlight,
		}, observers...)
		if err != nil {
			return err
		}
		pts := occObs.Points()
		best := core.Best(pts, 0)
		sel := dist.Selector(dist.MKProximitySelector{})
		if len(opt.Selectors) > 0 {
			sel = opt.Selectors[0]
		}
		res = core.Result{
			Gamma:    pts[best].Delta,
			Score:    pts[best].Scores[0],
			Selector: sel.Name(),
			Points:   pts,
		}
	} else {
		r, err := core.SaturationScale(s, opt)
		if err != nil {
			return err
		}
		res = r
	}
	st := s.ComputeStats()
	fmt.Fprintf(stdout, "events: %d  nodes: %d  span: %ds  activity: %.3f msgs/person/day\n",
		st.Events, st.Nodes, st.Span, st.EventsPerNodePerDay)
	fmt.Fprintf(stdout, "saturation scale gamma = %d s (%.2f h) [selector %s, score %.4f]\n",
		res.Gamma, float64(res.Gamma)/3600, res.Selector, res.Score)

	if *allSel {
		sels := dist.AllSelectors()
		rows := make([][]string, 0, len(sels))
		for i, sel := range sels {
			best := core.Best(res.Points, i)
			rows = append(rows, []string{
				sel.Name(),
				fmt.Sprintf("%d", res.Points[best].Delta),
				fmt.Sprintf("%.2f", float64(res.Points[best].Delta)/3600),
			})
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, textplot.Table([]string{"selector", "period (s)", "period (h)"}, rows))
	}
	if analysis != nil {
		a := analysis
		fmt.Fprintf(stdout, "\nadaptive analysis: two-mode = %v, min per-segment gamma = %d s\n",
			a.TwoMode, a.MinGamma)
		rows := make([][]string, 0, len(a.Segments))
		for _, seg := range a.Segments {
			mode := "low"
			if seg.HighActivity {
				mode = "high"
			}
			gamma := "-"
			if seg.Gamma > 0 {
				gamma = fmt.Sprintf("%.2fh", float64(seg.Gamma)/3600)
			}
			rows = append(rows, []string{
				fmt.Sprintf("[%d, %d)", seg.Start, seg.End),
				mode,
				fmt.Sprintf("%d", seg.Events),
				gamma,
			})
		}
		fmt.Fprint(stdout, textplot.Table([]string{"segment", "mode", "events", "gamma"}, rows))
	}
	if classicObs != nil {
		rows := make([][]string, 0, len(classicObs.Points()))
		for _, p := range classicObs.Points() {
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.Delta),
				fmt.Sprintf("%.5f", p.MeanDensity),
				fmt.Sprintf("%.3f", p.MeanDegree),
				fmt.Sprintf("%.2f", p.MeanNonIsolated),
				fmt.Sprintf("%.2f", p.MeanLargestComp),
			})
		}
		fmt.Fprintln(stdout, "\nclassical properties (Figure 2):")
		fmt.Fprint(stdout, textplot.Table(
			[]string{"period (s)", "density", "degree", "non-isolated", "largest comp"}, rows))
	}
	if distObs != nil {
		rows := make([][]string, 0, len(distObs.Points()))
		for _, p := range distObs.Points() {
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.Delta),
				fmt.Sprintf("%.3f", p.MeanTime),
				fmt.Sprintf("%.3f", p.MeanHops),
				fmt.Sprintf("%.3f", p.MeanAbsTime/3600),
				fmt.Sprintf("%d", p.FinitePairs),
			})
		}
		fmt.Fprintln(stdout, "\nmean temporal distances:")
		fmt.Fprint(stdout, textplot.Table(
			[]string{"period (s)", "dtime (windows)", "dhops", "dabstime (h)", "finite triples"}, rows))
	}
	if lossObs != nil || elongObs != nil {
		// Both observers scored the same (unrefined) grid; label rows
		// with their own deltas — res.Points may hold refined extras.
		deltas := make([]int64, 0)
		header := []string{"period (s)"}
		if lossObs != nil {
			header = append(header, "transitions lost")
			for _, p := range lossObs.Points() {
				deltas = append(deltas, p.Delta)
			}
		}
		if elongObs != nil {
			header = append(header, "mean elongation")
			if lossObs == nil {
				for _, p := range elongObs.Points() {
					deltas = append(deltas, p.Delta)
				}
			}
		}
		rows := make([][]string, 0, len(deltas))
		for i, delta := range deltas {
			row := []string{fmt.Sprintf("%d", delta)}
			if lossObs != nil {
				row = append(row, fmt.Sprintf("%.1f%%", 100*lossObs.Points()[i].Lost))
			}
			if elongObs != nil {
				el := "-"
				if p := elongObs.Points()[i]; p.Trips > 0 {
					el = fmt.Sprintf("%.2f", p.MeanElongation)
				}
				row = append(row, el)
			}
			rows = append(rows, row)
		}
		fmt.Fprintln(stdout, "\nvalidation (Section 8):")
		fmt.Fprint(stdout, textplot.Table(header, rows))
	}
	if *curve {
		pts := make([]textplot.XY, 0, len(res.Points))
		for _, p := range res.Points {
			pts = append(pts, textplot.XY{X: float64(p.Delta) / 3600, Y: p.Scores[0]})
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, textplot.Plot(textplot.PlotConfig{
			Title:  "M-K proximity vs aggregation period",
			XLabel: "period (h)", YLabel: "proximity", LogX: true, Height: 14,
		}, textplot.Series{Name: "proximity", Marker: '+', Points: pts}))
	}
	if *engineStats {
		// With -adaptive, the dedup count exposes the homogeneous-stream
		// case: a single activity segment coincides with the global
		// scope, so every period is built once and fanned to both.
		builds, maxResident := sweep.BuildStats()
		fmt.Fprintf(stdout, "\nengine: %d period CSR builds (+%d deduplicated), %d stream trip enumerations, peak %d periods resident\n",
			builds, sweep.DedupCount(), sweep.StreamBuildCount(), maxResident)
	}
	return nil
}
