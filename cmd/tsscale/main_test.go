package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

func streamText(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var sb strings.Builder
	sb.WriteString("# test stream\n")
	nodes := []string{"a", "b", "c", "d", "e", "f"}
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			for k := 0; k < 4; k++ {
				sb.WriteString(u + " " + v + " ")
				sb.WriteString(itoa(rng.Intn(5000)))
				sb.WriteString("\n")
			}
		}
	}
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestRunStdin(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "10", "-refine", "0"}, strings.NewReader(streamText(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saturation scale gamma =") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunFileCurveAllSelectors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.txt")
	if err := os.WriteFile(path, []byte(streamText(t)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-in", path, "-points", "10", "-curve", "-all-selectors"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"saturation scale", "mk-proximity", "cre", "M-K proximity vs aggregation period"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in output:\n%s", want, s)
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("# only comments\n"), &out); err == nil {
		t.Fatal("empty stream should error")
	}
}

func TestRunBadFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-in", "/nonexistent/stream.txt"}, nil, &out); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-points", "zebra"}, nil, &out); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunMalformedStream(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("a b notatime\n"), &out); err == nil {
		t.Fatal("malformed stream should error")
	}
}

func TestRunMinDeltaOverride(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "8", "-min", "50", "-refine", "0"},
		strings.NewReader(streamText(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gamma") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunAdaptive(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "8", "-refine", "0", "-adaptive"},
		strings.NewReader(streamText(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "adaptive analysis:") || !strings.Contains(s, "segment") {
		t.Fatalf("missing adaptive output:\n%s", s)
	}
}

// TestRunAdaptiveFusedMetrics covers -adaptive combined with -metrics
// and the engine flags: the per-segment scales, the gamma line and
// every extra curve come out of the fused windowed pass.
func TestRunAdaptiveFusedMetrics(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "8", "-adaptive", "-max-inflight", "2",
		"-metrics", "classic,distance,loss,elongation", "-all-selectors", "-curve"},
		strings.NewReader(streamText(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"saturation scale gamma =",
		"adaptive analysis:",
		"classical properties (Figure 2):",
		"mean temporal distances:",
		"validation (Section 8):",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in output:\n%s", want, s)
		}
	}
}

// TestRunJSON: -json prints exactly one versioned report envelope —
// the bytes tsserve would serve for the same plan.
func TestRunJSON(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "10", "-refine", "0", "-json"}, strings.NewReader(streamText(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := serve.DecodeReport([]byte(strings.TrimSpace(out.String())))
	if err != nil {
		t.Fatalf("output is not a report envelope: %v\n%s", err, out.String())
	}
	if _, ok := rep.Scale(); !ok {
		t.Fatal("decoded report carries no saturation scale")
	}
	// Deterministic: a second run prints the same bytes.
	var again strings.Builder
	if err := run([]string{"-points", "10", "-refine", "0", "-json"}, strings.NewReader(streamText(t)), &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out.String() {
		t.Fatal("two identical runs printed different JSON")
	}
}
