package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/distrib"
	"repro/internal/serve"
)

func streamText(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var sb strings.Builder
	sb.WriteString("# test stream\n")
	nodes := []string{"a", "b", "c", "d", "e", "f"}
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			for k := 0; k < 4; k++ {
				sb.WriteString(u + " " + v + " ")
				sb.WriteString(itoa(rng.Intn(5000)))
				sb.WriteString("\n")
			}
		}
	}
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestRunStdin(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "10", "-refine", "0"}, strings.NewReader(streamText(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saturation scale gamma =") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunFileCurveAllSelectors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.txt")
	if err := os.WriteFile(path, []byte(streamText(t)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-in", path, "-points", "10", "-curve", "-all-selectors"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"saturation scale", "mk-proximity", "cre", "M-K proximity vs aggregation period"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in output:\n%s", want, s)
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("# only comments\n"), &out); err == nil {
		t.Fatal("empty stream should error")
	}
}

func TestRunBadFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-in", "/nonexistent/stream.txt"}, nil, &out); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-points", "zebra"}, nil, &out); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunMalformedStream(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("a b notatime\n"), &out); err == nil {
		t.Fatal("malformed stream should error")
	}
}

func TestRunMinDeltaOverride(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "8", "-min", "50", "-refine", "0"},
		strings.NewReader(streamText(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gamma") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunAdaptive(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "8", "-refine", "0", "-adaptive"},
		strings.NewReader(streamText(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "adaptive analysis:") || !strings.Contains(s, "segment") {
		t.Fatalf("missing adaptive output:\n%s", s)
	}
}

// TestRunAdaptiveFusedMetrics covers -adaptive combined with -metrics
// and the engine flags: the per-segment scales, the gamma line and
// every extra curve come out of the fused windowed pass.
func TestRunAdaptiveFusedMetrics(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "8", "-adaptive", "-max-inflight", "2",
		"-metrics", "classic,distance,loss,elongation", "-all-selectors", "-curve"},
		strings.NewReader(streamText(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"saturation scale gamma =",
		"adaptive analysis:",
		"classical properties (Figure 2):",
		"mean temporal distances:",
		"validation (Section 8):",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in output:\n%s", want, s)
		}
	}
}

// TestRunJSON: -json prints exactly one versioned report envelope —
// the bytes tsserve would serve for the same plan.
func TestRunJSON(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-points", "10", "-refine", "0", "-json"}, strings.NewReader(streamText(t)), &out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := serve.DecodeReport([]byte(strings.TrimSpace(out.String())))
	if err != nil {
		t.Fatalf("output is not a report envelope: %v\n%s", err, out.String())
	}
	if _, ok := rep.Scale(); !ok {
		t.Fatal("decoded report carries no saturation scale")
	}
	// Deterministic: a second run prints the same bytes.
	var again strings.Builder
	if err := run([]string{"-points", "10", "-refine", "0", "-json"}, strings.NewReader(streamText(t)), &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out.String() {
		t.Fatal("two identical runs printed different JSON")
	}
}

// TestRunCoordinator: -coordinator submits the flags as a PlanSpec to
// a coordinator with one registered worker; the folded -json bytes are
// identical to a local run, and the human tables render without a
// stream-stats header (the coordinator never ships the stream back).
func TestRunCoordinator(t *testing.T) {
	worker := httptest.NewServer(serve.NewServer(serve.NewQueue(serve.QueueConfig{})))
	defer worker.Close()
	coord := httptest.NewServer(distrib.NewCoordinator(distrib.Config{}).Handler())
	defer coord.Close()
	resp, err := http.Post(coord.URL+"/v1/workers", "application/json",
		strings.NewReader(`{"name":"w1","url":"`+worker.URL+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}

	flags := []string{"-points", "8", "-refine", "2", "-metrics", "occupancy,classic", "-json"}
	var local strings.Builder
	if err := run(flags, strings.NewReader(streamText(t)), &local); err != nil {
		t.Fatal(err)
	}
	var remote strings.Builder
	if err := run(append([]string{"-coordinator", coord.URL}, flags...),
		strings.NewReader(streamText(t)), &remote); err != nil {
		t.Fatal(err)
	}
	if remote.String() != local.String() {
		t.Fatalf("coordinator JSON differs from local run:\nlocal:  %s\nremote: %s", local.String(), remote.String())
	}

	var human strings.Builder
	if err := run([]string{"-coordinator", coord.URL, "-points", "8", "-refine", "0", "-curve"},
		strings.NewReader(streamText(t)), &human); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(human.String(), "saturation scale gamma =") {
		t.Fatalf("output:\n%s", human.String())
	}
	if strings.Contains(human.String(), "events:") {
		t.Fatalf("coordinator run printed a stream-stats header:\n%s", human.String())
	}
}

// TestRunCoordinatorErrors: a coordinator error surfaces its HTTP body,
// and the -in/-stream exclusivity check still guards the remote path.
func TestRunCoordinatorErrors(t *testing.T) {
	coord := httptest.NewServer(distrib.NewCoordinator(distrib.Config{}).Handler())
	defer coord.Close()
	// No stream root on the coordinator: a -stream ref must be rejected.
	err := run([]string{"-coordinator", coord.URL, "-stream", "x.lsc"}, strings.NewReader(""), new(strings.Builder))
	if err == nil || !strings.Contains(err.Error(), "stream root") {
		t.Fatalf("want stream-root rejection, got %v", err)
	}
	err = run([]string{"-coordinator", coord.URL, "-stream", "x.lsc", "-in", "y.txt"},
		strings.NewReader(""), new(strings.Builder))
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want exclusivity error, got %v", err)
	}
}
