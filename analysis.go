package repro

// This file implements the plan/run lifecycle, the package's single
// execution path: NewAnalysis freezes a request — metrics, candidate
// grids, windows, refinement policy, engine budgets — into an immutable
// Plan, and Plan.Run(ctx) executes it as fused sweep-engine passes with
// context cancellation, progress streaming and per-run engine
// statistics. Every deprecated entry point (SaturationScale, Sweep,
// MultiSweep, MultiSweepWindowed, ClassicProperties, TransitionLoss,
// Elongation, AnalyzeAdaptive) is a thin wrapper over a Plan, pinned
// bit-exact by the equivalence tests in analysis_equiv_test.go.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/adaptive"
	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/linkstream"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/validate"
)

// ErrNoEvents is returned when an analysis is requested over a stream
// with no events.
var ErrNoEvents = errors.New("repro: stream has no events")

// Plan is an immutable, validated analysis request: which metrics to
// compute, over which candidate grids and windows, under which
// refinement policy and engine budgets. Build one with NewAnalysis and
// execute it with Run; a Plan can be Run any number of times (each Run
// is an independent execution reading the stream's current contents).
type Plan struct {
	s   *Stream
	col *linkstream.Columnar // non-nil for WithStreamPath columnar plans
	cfg planConfig

	// Lazy whole-file materialisation of a columnar plan's stream, for
	// consumers that need an in-memory Stream (adaptive analysis,
	// ComputeStats); the engine itself never goes through it.
	matOnce sync.Once
	mat     *Stream
	matErr  error

	// Close is idempotent: the mapping is released exactly once however
	// many times (or from however many goroutines) Close is called.
	closeOnce sync.Once
	closeErr  error
}

// NewAnalysis builds an analysis plan over the stream. The zero-option
// plan is the paper's default analysis: the occupancy method over a
// logarithmic candidate grid spanning the stream's resolution to its
// whole period of study, undirected, M-K proximity selection, no
// refinement. Options compose freely — e.g.
//
//	plan, err := repro.NewAnalysis(s,
//	    repro.WithMetrics(repro.MetricOccupancy, repro.MetricTransitionLoss),
//	    repro.WithRefine(4),
//	    repro.WithMaxInFlight(4),
//	    repro.WithProgress(func(ev repro.ProgressEvent) { ... }),
//	)
//	report, err := plan.Run(ctx)
//
// Every metric, window and custom observer of one plan shares a single
// fused engine pass per bisection round: the stream is sorted once,
// each distinct (window, ∆) aggregation is built and swept exactly
// once, and at most the configured MaxInFlight periods are resident at
// any moment.
func NewAnalysis(s *Stream, opts ...Option) (*Plan, error) {
	cfg := planConfig{}
	cfg.metrics[MetricOccupancy] = true // default metric set
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	var col *linkstream.Columnar
	if cfg.streamPath != "" {
		if s != nil {
			return nil, errors.New("repro: WithStreamPath and a non-nil stream are mutually exclusive")
		}
		var err error
		s, col, err = openStreamPath(cfg.streamPath)
		if err != nil {
			return nil, err
		}
	}
	if s == nil && col == nil {
		return nil, errors.New("repro: nil stream")
	}
	numEvents := 0
	if col != nil {
		numEvents = col.NumEvents()
	} else {
		numEvents = s.NumEvents()
	}
	if numEvents == 0 {
		if col != nil {
			col.Close()
		}
		return nil, ErrNoEvents
	}
	if cfg.gridSet && len(cfg.grid) == 0 {
		return nil, errors.New("repro: empty candidate grid")
	}
	if cfg.adaptive != nil {
		switch {
		case len(cfg.windows) > 0:
			return nil, errors.New("repro: WithAdaptive and WithWindows cannot be combined: the adaptive segmentation chooses its own windows")
		case len(cfg.segments) > 0:
			return nil, errors.New("repro: WithAdaptive and WithSegments cannot be combined")
		case cfg.gridSet:
			return nil, errors.New("repro: WithAdaptive derives its own candidate grids; shape them with WithGridPoints and WithMinDelta instead of WithGrid")
		case cfg.histogramBins > 0:
			return nil, errors.New("repro: WithAdaptive does not support the histogram backend")
		}
	}
	if !cfg.gridSet {
		// Resolution/Duration sort an in-memory stream as a side effect,
		// so they are only consulted when a grid must be derived — an
		// explicit WithGrid leaves the stream untouched until Run. The
		// columnar header answers both without touching the columns.
		lo := cfg.minDelta
		if lo <= 0 {
			if col != nil {
				lo = col.Resolution()
			} else {
				lo = s.Resolution()
			}
		}
		points := cfg.gridPoints
		if points <= 0 {
			points = core.DefaultGridPoints
		}
		dur := int64(0)
		if col != nil {
			dur = col.Duration()
		} else {
			dur = s.Duration()
		}
		cfg.grid = core.LogGrid(lo, dur, points)
	}
	if cfg.histogramBins > 0 && cfg.metricOn(MetricOccupancy) {
		for _, sel := range cfg.selectors {
			if _, ok := sel.(dist.MKProximitySelector); !ok {
				return nil, fmt.Errorf("repro: selector %s does not support the histogram backend", sel.Name())
			}
		}
	}
	if cfg.adaptive == nil && !cfg.anyMetric() && len(cfg.observers) == 0 && len(cfg.segments) == 0 {
		return nil, errors.New("repro: analysis plan computes nothing: select metrics, observers or segments")
	}
	if len(cfg.windows) > 0 && !cfg.anyMetric() {
		return nil, errors.New("repro: plan windows need at least one metric")
	}
	if cfg.noGlobal {
		switch {
		case cfg.adaptive != nil:
			return nil, errors.New("repro: WithWindowsOnly and WithAdaptive cannot be combined")
		case len(cfg.windows) == 0:
			return nil, errors.New("repro: WithWindowsOnly needs WithWindows windows to analyse")
		case len(cfg.observers) > 0:
			return nil, errors.New("repro: WithWindowsOnly drops the global scope custom observers attach to")
		}
	}
	return &Plan{s: s, col: col, cfg: cfg}, nil
}

// openStreamPath opens a stream file by its leading magic: columnar
// (LSC) files become a memory-mapped view handed to the engine as-is,
// binary (LSB) and text files are parsed into memory.
func openStreamPath(path string) (*Stream, *linkstream.Columnar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var magic [4]byte
	n, _ := io.ReadFull(f, magic[:])
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	if n == 4 && linkstream.IsColumnarMagic(magic[:]) {
		f.Close()
		col, err := linkstream.OpenMapped(path)
		if err != nil {
			return nil, nil, err
		}
		return nil, col, nil
	}
	defer f.Close()
	s := NewStream()
	if err := s.ReadAny(f); err != nil {
		return nil, nil, err
	}
	return s, nil, nil
}

// engineSource returns what the engine passes consume: the mapped
// columnar view for WithStreamPath columnar plans (pre-sorted, sliced
// through the file's skip index), the in-memory stream otherwise.
func (p *Plan) engineSource() sweep.StreamSource {
	if p.col != nil {
		return p.col
	}
	return p.s
}

// Stream returns the plan's stream: the one NewAnalysis received, or —
// for a WithStreamPath columnar plan — the file's contents materialised
// into memory (decoded once and cached). The engine does not use this
// path; it exists for consumers that need the whole stream in memory,
// like the adaptive segmentation and ComputeStats.
func (p *Plan) Stream() (*Stream, error) {
	if p.s != nil {
		return p.s, nil
	}
	p.matOnce.Do(func() { p.mat, p.matErr = p.col.Stream() })
	return p.mat, p.matErr
}

// Close releases resources a WithStreamPath plan holds on behalf of
// the caller — the columnar file mapping. Plans over in-memory streams
// hold nothing. Close is idempotent and safe for concurrent use: the
// first call unmaps, every later call returns the same result without
// touching the mapping again.
func (p *Plan) Close() error {
	if p.col == nil {
		return nil
	}
	p.closeOnce.Do(func() { p.closeErr = p.col.Close() })
	return p.closeErr
}

// Run executes the plan and returns its Report. An already-cancelled
// ctx returns ctx.Err() immediately, before the stream is even sorted;
// a ctx cancelled mid-run aborts the engine at its next scheduling
// point — in-flight periods drain, pooled buffers are recycled, the
// worker pools exit before Run returns, and results of periods whose
// observers already ran are simply discarded with the Report.
func (p *Plan) Run(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.cfg.adaptive != nil {
		return p.runAdaptive(ctx)
	}
	return p.runStandard(ctx)
}

// metricObservers is the per-scope set of built-in curve observers a
// plan registers (the occupancy metric is driven separately, through
// core.ScaleSearch, because only it refines).
type metricObservers struct {
	cls   *ClassicObserver
	dst   *DistanceObserver
	loss  *TransitionLossObserver
	elong *ElongationObserver
	deg   *metrics.DegreeObserver
	clu   *metrics.ClusteringObserver
	comp  *metrics.ComponentsObserver
	core  *metrics.CorenessObserver
	wgt   *metrics.WeightedObserver
}

// newMetricObservers returns fresh observers for the plan's non-occupancy
// metrics, plus the registration list in a fixed order.
func (p *Plan) newMetricObservers() (metricObservers, []sweep.Observer) {
	var mo metricObservers
	var obs []sweep.Observer
	if p.cfg.metricOn(MetricClassic) {
		mo.cls = classic.NewObserver()
		obs = append(obs, mo.cls)
	}
	if p.cfg.metricOn(MetricDistance) {
		mo.dst = sweep.NewDistanceObserver()
		obs = append(obs, mo.dst)
	}
	if p.cfg.metricOn(MetricTransitionLoss) {
		mo.loss = validate.NewTransitionLossObserver()
		obs = append(obs, mo.loss)
	}
	if p.cfg.metricOn(MetricElongation) {
		mo.elong = validate.NewElongationObserver()
		mo.elong.SpillBytes = p.cfg.elongSpill
		obs = append(obs, mo.elong)
	}
	if p.cfg.metricOn(MetricDegree) {
		mo.deg = metrics.NewDegreeObserver()
		obs = append(obs, mo.deg)
	}
	if p.cfg.metricOn(MetricClustering) {
		mo.clu = metrics.NewClusteringObserver()
		obs = append(obs, mo.clu)
	}
	if p.cfg.metricOn(MetricComponents) {
		mo.comp = metrics.NewComponentsObserver()
		obs = append(obs, mo.comp)
	}
	if p.cfg.metricOn(MetricCoreness) {
		mo.core = metrics.NewCorenessObserver()
		obs = append(obs, mo.core)
	}
	if p.cfg.metricOn(MetricWeighted) {
		mo.wgt = metrics.NewWeightedObserver()
		obs = append(obs, mo.wgt)
	}
	return mo, obs
}

// curves collects the observers' results after a successful run.
func (mo metricObservers) curves() Curves {
	var cv Curves
	if mo.cls != nil {
		cv.Classic = mo.cls.Points()
	}
	if mo.dst != nil {
		cv.Distance = mo.dst.Points()
	}
	if mo.loss != nil {
		cv.TransitionLoss = mo.loss.Points()
	}
	if mo.elong != nil {
		cv.Elongation = mo.elong.Points()
	}
	// Snapshot-metric curves, in enum order.
	if mo.deg != nil {
		cv.Snapshots = append(cv.Snapshots, mo.deg.Curve())
	}
	if mo.clu != nil {
		cv.Snapshots = append(cv.Snapshots, mo.clu.Curve())
	}
	if mo.comp != nil {
		cv.Snapshots = append(cv.Snapshots, mo.comp.Curve())
	}
	if mo.core != nil {
		cv.Snapshots = append(cv.Snapshots, mo.core.Curve())
	}
	if mo.wgt != nil {
		cv.Snapshots = append(cv.Snapshots, mo.wgt.Curve())
	}
	return cv
}

// coreOptions maps the plan's configuration onto the occupancy-method
// options of one scale search over grid.
func (p *Plan) coreOptions(grid []int64) core.Options {
	return core.Options{
		Directed:      p.cfg.directed,
		Workers:       p.cfg.workers,
		Selectors:     p.cfg.selectors,
		Refine:        p.cfg.refine,
		HistogramBins: p.cfg.histogramBins,
		MaxInFlight:   p.cfg.maxInFlight,
		LaneWidth:     p.cfg.laneWidth,
		Speculate:     p.cfg.speculate,
		Grid:          grid,
	}
}

// windowGrids resolves the candidate grid of every plan window, in
// WithWindows order: an explicit Window.Grid is used as-is, an empty
// one derives a logarithmic grid from the window's own resolution and
// span, exactly like the adaptive per-segment grids. A columnar source
// materialises just each window's span here, through the skip index —
// not the whole file. The shard partitioner (PartitionSpec) calls this
// too, so coordinator-side chunking and a local run resolve identical
// grids.
func (p *Plan) windowGrids() ([][]int64, error) {
	c := &p.cfg
	src := p.engineSource()
	grids := make([][]int64, len(c.windows))
	for i := range c.windows {
		w := &c.windows[i]
		grid := w.Grid
		if len(grid) == 0 {
			sub, _, err := src.EngineEvents(w.Start, w.End, false)
			if err != nil {
				return nil, err
			}
			if len(sub) == 0 {
				return nil, fmt.Errorf("repro: window [%d, %d) has no events", w.Start, w.End)
			}
			points := c.gridPoints
			if points <= 0 {
				points = core.DefaultGridPoints
			}
			grid = core.LogGrid(linkstream.EventsResolution(sub), linkstream.EventsDuration(sub), points)
		}
		grids[i] = grid
	}
	return grids, nil
}

// scopeRun is the per-scope execution state of a standard (non-adaptive)
// run: the global scope or one plan window.
type scopeRun struct {
	window   *Window // nil for the global scope
	start    int64   // engine window bounds; 0,0 selects the whole stream
	end      int64
	grid     []int64 // round-0 grid for scopes without a search
	search   *core.ScaleSearch
	mo       metricObservers
	extraObs []sweep.Observer // round-0 co-observers (metrics + custom)
	res      core.Result
	hasRes   bool
	done     bool
}

// runStandard executes the plan's scopes — the global analysis, every
// window, every raw segment — as one fused engine pass per bisection
// round: round 0 carries every scope's grid plus all curve observers
// and raw segments, later rounds only the still-refining occupancy
// searches.
func (p *Plan) runStandard(ctx context.Context) (*Report, error) {
	c := &p.cfg
	var stats EngineStats
	engOpt := sweep.Options{
		Directed:      c.directed,
		Workers:       c.workers,
		MaxInFlight:   c.maxInFlight,
		HistogramBins: c.histogramBins,
		LaneWidth:     c.laneWidth,
		Stats:         &stats,
	}

	var runs []*scopeRun
	if (c.anyMetric() || len(c.observers) > 0) && !c.noGlobal {
		sr := &scopeRun{grid: c.grid}
		if c.metricOn(MetricOccupancy) {
			search, err := core.NewScaleSearch(p.coreOptions(c.grid))
			if err != nil {
				return nil, err
			}
			sr.search = search
		}
		mo, mobs := p.newMetricObservers()
		sr.mo = mo
		sr.extraObs = append(mobs, c.observers...)
		runs = append(runs, sr)
	}
	if len(c.windows) > 0 {
		grids, err := p.windowGrids()
		if err != nil {
			return nil, err
		}
		for i := range c.windows {
			w := &c.windows[i]
			sr := &scopeRun{window: w, start: w.Start, end: w.End, grid: grids[i]}
			if c.metricOn(MetricOccupancy) {
				search, err := core.NewScaleSearch(p.coreOptions(grids[i]))
				if err != nil {
					return nil, fmt.Errorf("repro: window [%d, %d): %w", w.Start, w.End, err)
				}
				sr.search = search
			}
			mo, mobs := p.newMetricObservers()
			sr.mo = mo
			sr.extraObs = mobs
			runs = append(runs, sr)
		}
	}

	for pass := 0; ; pass++ {
		batch := make([]sweep.SegmentObserver, 0, len(runs)+len(c.segments))
		waiting := make([]*scopeRun, 0, len(runs))
		for _, sr := range runs {
			if sr.done {
				continue
			}
			var observers []sweep.Observer
			grid := sr.grid
			if sr.search != nil {
				g, obs, ok := sr.search.Next()
				if !ok {
					res, err := sr.search.Result()
					if err != nil {
						return nil, err
					}
					sr.res, sr.hasRes, sr.done = res, true, true
					continue
				}
				grid = g
				observers = append(observers, obs)
			}
			if pass == 0 {
				observers = append(observers, sr.extraObs...)
			}
			if len(observers) == 0 {
				sr.done = true
				continue
			}
			batch = append(batch, sweep.SegmentObserver{Start: sr.start, End: sr.end, Grid: grid, Observers: observers})
			waiting = append(waiting, sr)
		}
		if pass == 0 {
			batch = append(batch, c.segments...)
		}
		if len(batch) == 0 {
			break
		}
		if c.progress != nil {
			round := pass
			engOpt.Progress = func(ev ProgressEvent) {
				ev.Pass = round
				c.progress(ev)
			}
		}
		if err := sweep.RunSource(ctx, p.engineSource(), engOpt, batch...); err != nil {
			return nil, err
		}
		for _, sr := range waiting {
			if sr.search != nil {
				if err := sr.search.Absorb(); err != nil {
					return nil, err
				}
			} else {
				sr.done = true
			}
		}
	}

	rep := &Report{stats: stats}
	for _, sr := range runs {
		cv := sr.mo.curves()
		if sr.hasRes {
			cv.Occupancy = sr.res.Points
		}
		if sr.window == nil {
			rep.global = cv
			rep.scale, rep.hasScale = sr.res, sr.hasRes
		} else {
			rep.windows = append(rep.windows, WindowReport{
				Start: sr.window.Start, End: sr.window.End,
				Scale: sr.res, Curves: cv,
			})
		}
	}
	return rep, nil
}

// runAdaptive executes the plan through the activity-segmented
// analysis: segmentation, the global scale search, one search per
// sufficiently populated segment, and the plan's other metrics and
// custom observers attached to the global scope — all fused per round.
func (p *Plan) runAdaptive(ctx context.Context) (*Report, error) {
	c := &p.cfg
	var stats EngineStats
	acfg := *c.adaptive
	acfg.Directed = c.directed
	acfg.Workers = c.workers
	acfg.MaxInFlight = c.maxInFlight
	acfg.Selectors = c.selectors
	acfg.Refine = c.refine
	acfg.GridPoints = c.gridPoints
	acfg.MinDelta = c.minDelta
	acfg.LaneWidth = c.laneWidth
	acfg.Speculate = c.speculate
	acfg.Stats = &stats
	acfg.Progress = c.progress
	mo, mobs := p.newMetricObservers()
	// The adaptive segmentation needs the whole stream in memory;
	// columnar plans materialise it once here.
	s, err := p.Stream()
	if err != nil {
		return nil, err
	}
	a, err := adaptive.AnalyzeWith(ctx, s, acfg, append(mobs, c.observers...)...)
	if err != nil {
		return nil, err
	}
	cv := mo.curves()
	cv.Occupancy = a.Global.Points
	return &Report{
		scale:    a.Global,
		hasScale: true,
		global:   cv,
		adaptive: a,
		stats:    stats,
	}, nil
}
