package series

import (
	"fmt"
	"sort"

	"repro/internal/linkstream"
	"repro/internal/snapshot"
)

// This file implements the two windowing variants the paper's
// introduction cites from related work, alongside the disjoint windows
// of Definition 1: sliding (overlapping) windows [20, 1, 29, 40, 5, 37]
// and cumulative windows that all start at the beginning of the period
// of study [21, 31, 14, 37]. The occupancy method itself is defined on
// disjoint windows, but downstream users aggregating with these
// variants can reuse the same snapshot machinery.

// SlidingWindow is one overlapping snapshot: the window [Start, Start +
// Delta) in raw time.
type SlidingWindow struct {
	Start int64
	Edges []snapshot.Edge
}

// AggregateSliding builds overlapping windows of length delta whose
// starts advance by stride (stride < delta means overlap; stride ==
// delta reproduces the disjoint aggregation grid). Only windows
// containing at least one event are returned.
func AggregateSliding(s *linkstream.Stream, delta, stride int64, directed bool) ([]SlidingWindow, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("series: non-positive window length %d", delta)
	}
	if stride <= 0 {
		return nil, fmt.Errorf("series: non-positive stride %d", stride)
	}
	t0, t1, ok := s.Span()
	if !ok {
		return nil, nil
	}
	s.Sort()
	events := s.Events()
	var out []SlidingWindow
	for start := t0; start <= t1; start += stride {
		end := start + delta
		lo := sort.Search(len(events), func(i int) bool { return events[i].T >= start })
		hi := sort.Search(len(events), func(i int) bool { return events[i].T >= end })
		if lo == hi {
			continue
		}
		edges := dedupEdges(events[lo:hi], directed)
		out = append(out, SlidingWindow{Start: start, Edges: edges})
	}
	return out, nil
}

// AggregateCumulative builds the growing-window series used by studies
// that aggregate from the beginning of the period of study: window k
// covers [t0, t0 + (k+1)*delta). The k-th snapshot's edge set therefore
// contains the (k-1)-th's. Snapshots are returned for every k up to the
// end of the stream.
func AggregateCumulative(s *linkstream.Stream, delta int64, directed bool) ([]SlidingWindow, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("series: non-positive window length %d", delta)
	}
	t0, t1, ok := s.Span()
	if !ok {
		return nil, nil
	}
	s.Sort()
	events := s.Events()
	k := (t1-t0)/delta + 1
	out := make([]SlidingWindow, 0, k)
	seen := make(map[snapshot.Edge]bool)
	var acc []snapshot.Edge
	idx := 0
	for w := int64(0); w < k; w++ {
		end := t0 + (w+1)*delta
		for idx < len(events) && events[idx].T < end {
			e := snapshot.Edge{U: events[idx].U, V: events[idx].V}
			if !directed {
				e = e.Canon()
			}
			if !seen[e] {
				seen[e] = true
				acc = append(acc, e)
			}
			idx++
		}
		out = append(out, SlidingWindow{Start: t0, Edges: append([]snapshot.Edge(nil), acc...)})
	}
	return out, nil
}

// dedupEdges canonicalises (if undirected) and deduplicates the edges
// of a batch of events.
func dedupEdges(events []linkstream.Event, directed bool) []snapshot.Edge {
	edges := make([]snapshot.Edge, 0, len(events))
	for _, e := range events {
		ed := snapshot.Edge{U: e.U, V: e.V}
		if !directed {
			ed = ed.Canon()
		}
		edges = append(edges, ed)
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
	w := 0
	for i, ed := range edges {
		if i > 0 && ed == edges[i-1] {
			continue
		}
		edges[w] = ed
		w++
	}
	return edges[:w]
}
