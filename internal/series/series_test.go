package series

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linkstream"
)

// figure1 is the paper's Figure 1 stream: events on nodes a..e over
// [1, 11], aggregated with ∆ = 4 into three windows.
func figure1(t *testing.T) *linkstream.Stream {
	t.Helper()
	s := linkstream.New()
	adds := []struct {
		u, v string
		t    int64
	}{
		{"a", "b", 2}, {"e", "d", 1}, {"d", "c", 4},
		{"c", "b", 5}, {"e", "a", 6}, {"a", "b", 8},
		{"d", "e", 9}, {"c", "b", 10}, {"b", "a", 11},
	}
	for _, a := range adds {
		if err := s.Add(a.u, a.v, a.t); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAggregateFigure1(t *testing.T) {
	s := figure1(t)
	g, err := Aggregate(s, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumWindows != 3 {
		t.Fatalf("NumWindows = %d, want 3", g.NumWindows)
	}
	if len(g.Windows) != 3 {
		t.Fatalf("non-empty windows = %d, want 3", len(g.Windows))
	}
	// Window 0 covers t in [1,5): events (a,b,2),(e,d,1),(d,c,4) -> 3 edges.
	// Window 1 covers t in [5,9): (c,b,5),(e,a,6),(a,b,8) -> 3 edges.
	// Window 2 covers t in [9,13): (d,e,9),(c,b,10),(b,a,11) -> 3 edges
	// with (b,a) canonicalised to (a,b).
	for i, want := range []int{3, 3, 3} {
		if got := len(g.Windows[i].Edges); got != want {
			t.Fatalf("window %d edges = %d, want %d", i, got, want)
		}
	}
	if g.TotalEdges != 9 {
		t.Fatalf("TotalEdges = %d, want 9", g.TotalEdges)
	}
}

func TestAggregateDedupInsideWindow(t *testing.T) {
	s := linkstream.New()
	for _, tt := range []int64{0, 1, 2, 3} {
		if err := s.Add("a", "b", tt); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Add("b", "a", 4); err != nil {
		t.Fatal(err)
	}
	g, err := Aggregate(s, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalEdges != 1 {
		t.Fatalf("TotalEdges = %d, want 1 (all events collapse to one edge)", g.TotalEdges)
	}
	dir, err := Aggregate(s, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if dir.TotalEdges != 2 {
		t.Fatalf("directed TotalEdges = %d, want 2", dir.TotalEdges)
	}
}

func TestAggregateEmptyWindowsSkipped(t *testing.T) {
	s := linkstream.New()
	if err := s.Add("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("a", "b", 1000); err != nil {
		t.Fatal(err)
	}
	g, err := Aggregate(s, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumWindows != 101 {
		t.Fatalf("NumWindows = %d, want 101", g.NumWindows)
	}
	if len(g.Windows) != 2 {
		t.Fatalf("materialised windows = %d, want 2", len(g.Windows))
	}
	if g.Windows[0].K != 0 || g.Windows[1].K != 100 {
		t.Fatalf("window indices = %d,%d want 0,100", g.Windows[0].K, g.Windows[1].K)
	}
}

func TestAggregateErrors(t *testing.T) {
	s := figure1(t)
	if _, err := Aggregate(s, 0, false); err == nil {
		t.Fatal("delta 0 should be rejected")
	}
	if _, err := Aggregate(s, -5, false); err == nil {
		t.Fatal("negative delta should be rejected")
	}
}

func TestAggregateEmptyStream(t *testing.T) {
	s := linkstream.New()
	g, err := Aggregate(s, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumWindows != 0 || len(g.Windows) != 0 {
		t.Fatalf("empty stream series = %+v", g)
	}
	st, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanDensity != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestWindowArithmetic(t *testing.T) {
	s := figure1(t)
	g, err := Aggregate(s, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Origin != 1 {
		t.Fatalf("Origin = %d, want 1", g.Origin)
	}
	if k := g.WindowOf(5); k != 1 {
		t.Fatalf("WindowOf(5) = %d, want 1", k)
	}
	if st := g.WindowStart(1); st != 5 {
		t.Fatalf("WindowStart(1) = %d, want 5", st)
	}
	if en := g.WindowEnd(1); en != 9 {
		t.Fatalf("WindowEnd(1) = %d, want 9", en)
	}
}

func TestDeltaLargerThanSpan(t *testing.T) {
	s := figure1(t)
	g, err := Aggregate(s, 1_000_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumWindows != 1 {
		t.Fatalf("NumWindows = %d, want 1", g.NumWindows)
	}
	// Totally aggregated graph: 5 distinct undirected edges in Figure 1.
	if g.TotalEdges != 5 {
		t.Fatalf("TotalEdges = %d, want 5", g.TotalEdges)
	}
}

func TestComputeStatsFigure1(t *testing.T) {
	s := figure1(t)
	g, err := Aggregate(s, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	// Each window has 3 edges on 5 nodes: density 2*3/(5*4) = 0.3.
	if st.MeanDensity < 0.299 || st.MeanDensity > 0.301 {
		t.Fatalf("MeanDensity = %v, want 0.3", st.MeanDensity)
	}
	if st.MeanSnapshotEdges != 3 {
		t.Fatalf("MeanSnapshotEdges = %v, want 3", st.MeanSnapshotEdges)
	}
	if st.MaxSnapshotEdges != 3 {
		t.Fatalf("MaxSnapshotEdges = %v, want 3", st.MaxSnapshotEdges)
	}
	if st.MeanDegree != 2*3.0/5.0 {
		t.Fatalf("MeanDegree = %v, want 1.2", st.MeanDegree)
	}
}

func TestStatsCountEmptyWindows(t *testing.T) {
	s := linkstream.New()
	if err := s.Add("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("a", "b", 99); err != nil {
		t.Fatal(err)
	}
	g, err := Aggregate(s, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	// 10 windows, 2 non-empty with density 2*1/(2*1) = 1 each.
	if st.NumWindows != 10 {
		t.Fatalf("NumWindows = %d, want 10", st.NumWindows)
	}
	if st.MeanDensity != 0.2 {
		t.Fatalf("MeanDensity = %v, want 0.2", st.MeanDensity)
	}
	// LCC: 2 windows of size 2, 8 empty windows of size 1 -> (2*2+8)/10.
	if st.MeanLargestComp != 1.2 {
		t.Fatalf("MeanLargestComp = %v, want 1.2", st.MeanLargestComp)
	}
}

// Property: aggregation partitions events — the sum over windows of
// per-window event counts equals the stream's event count, every event's
// timestamp falls inside its window, and window indices are strictly
// increasing. Also TotalEdges <= events and TotalEdges monotonically
// non-increasing as delta grows (coarser windows merge more duplicates).
func TestQuickAggregationInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8, d1Raw, d2Raw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 2
		m := int(mRaw%60) + 1
		s := linkstream.New()
		s.EnsureNodes(n)
		for i := 0; i < m; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			if err := s.AddID(u, v, int64(rng.Intn(500))); err != nil {
				return false
			}
		}
		if s.NumEvents() == 0 {
			return true
		}
		d1 := int64(d1Raw%100) + 1
		d2 := d1 + int64(d2Raw%100)
		g1, err := Aggregate(s, d1, false)
		if err != nil {
			return false
		}
		prevK := int64(-1)
		for _, w := range g1.Windows {
			if w.K <= prevK || w.K < 0 || w.K >= g1.NumWindows {
				return false
			}
			prevK = w.K
			if len(w.Edges) == 0 {
				return false // non-empty windows only
			}
		}
		// Every event lands in a materialised window that contains an
		// edge with its endpoints.
		for _, e := range s.Events() {
			k := g1.WindowOf(e.T)
			if e.T < g1.WindowStart(k) || e.T >= g1.WindowEnd(k) {
				return false
			}
		}
		g2, err := Aggregate(s, d2, false)
		if err != nil {
			return false
		}
		if g1.TotalEdges > s.NumEvents() || g2.TotalEdges > g1.TotalEdges && d2 > d1 && d2%d1 == 0 {
			// TotalEdges can only shrink when windows merge exactly.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
