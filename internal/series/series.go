// Package series implements the aggregation of a link stream into a
// series of graphs (Definition 1 of the paper): given a period ∆, the
// stream's study period [t0, t1] is cut into K disjoint windows of length
// ∆ and the k-th snapshot contains edge uv iff some event (u, v, t) has
// (k)∆ <= t - t0 < (k+1)∆ (windows are 0-indexed here).
//
// Only non-empty windows are materialised: the number of windows K can be
// in the millions for second-scale ∆, but the number of non-empty windows
// is bounded by the number of events, and the temporal-path engine only
// needs those.
package series

import (
	"fmt"

	"repro/internal/linkstream"
	"repro/internal/snapshot"
)

// Window is one non-empty snapshot: its index K in 0..NumWindows-1 and
// its deduplicated edge set.
type Window struct {
	K     int64
	Edges []snapshot.Edge
}

// Series is a link stream aggregated at period Delta. The zero value is
// not useful; build one with Aggregate.
type Series struct {
	N          int      // number of nodes (shared by all snapshots)
	Delta      int64    // aggregation period
	Origin     int64    // t0: start of the period of study
	NumWindows int64    // K: total number of windows, including empty ones
	Windows    []Window // non-empty windows in increasing K
	Directed   bool
	TotalEdges int // M: sum over windows of the deduplicated edge counts
}

// Aggregate builds the series G∆ for the given stream. The stream is
// sorted as a side effect. Delta must be positive; directed selects
// whether edge orientation is preserved inside the snapshots.
func Aggregate(s *linkstream.Stream, delta int64, directed bool) (*Series, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("series: non-positive aggregation period %d", delta)
	}
	t0, t1, ok := s.Span()
	if !ok {
		return &Series{N: s.NumNodes(), Delta: delta, NumWindows: 0, Directed: directed}, nil
	}
	g := &Series{
		N:          s.NumNodes(),
		Delta:      delta,
		Origin:     t0,
		NumWindows: (t1-t0)/delta + 1,
		Directed:   directed,
	}
	events := s.Events()
	// Per-window dedup by sort-and-compact on packed (U, V) keys, with
	// one sort buffer reused across all windows.
	var scratch []uint64
	i := 0
	for i < len(events) {
		k := (events[i].T - t0) / delta
		end := i
		for end < len(events) && (events[end].T-t0)/delta == k {
			end++
		}
		keys := scratch[:0]
		for _, e := range events[i:end] {
			u, v := e.U, e.V
			if !directed && u > v {
				u, v = v, u
			}
			keys = append(keys, snapshot.PackEdge(u, v))
		}
		scratch = keys
		keys = snapshot.SortCompactEdgeKeys(keys)
		edges := make([]snapshot.Edge, 0, len(keys))
		for _, key := range keys {
			edges = append(edges, snapshot.UnpackEdge(key))
		}
		g.Windows = append(g.Windows, Window{K: k, Edges: edges})
		g.TotalEdges += len(edges)
		i = end
	}
	return g, nil
}

// WindowOf returns the window index of raw timestamp t.
func (g *Series) WindowOf(t int64) int64 { return (t - g.Origin) / g.Delta }

// WindowStart returns the raw start time of window k (inclusive).
func (g *Series) WindowStart(k int64) int64 { return g.Origin + k*g.Delta }

// WindowEnd returns the raw end time of window k (exclusive).
func (g *Series) WindowEnd(k int64) int64 { return g.Origin + (k+1)*g.Delta }

// Snapshot materialises window k (by index into Windows, not by K) as a
// snapshot.Graph. Empty windows are not materialised by Aggregate, so
// this accepts an index into the Windows slice.
func (g *Series) Snapshot(i int) (*snapshot.Graph, error) {
	return snapshot.NewGraph(g.N, g.Windows[i].Edges, g.Directed)
}

// Stats summarises the per-snapshot quantities tracked by Figure 2 of the
// paper. Means are taken over all K windows, empty ones included (an
// empty snapshot has density 0, no non-isolated vertex and a largest
// connected component of size 1 when N > 0, matching the convention that
// the node set is fixed across the series).
type Stats struct {
	Delta             int64
	NumWindows        int64
	NonEmptyWindows   int
	TotalEdges        int
	MeanDensity       float64
	MeanDegree        float64 // mean over windows of 2M_k/N (out-degree M_k/N if directed)
	MeanNonIsolated   float64
	MeanLargestComp   float64
	MaxSnapshotEdges  int
	MeanSnapshotEdges float64
}

// ComputeStats materialises every non-empty window once and aggregates
// the classical properties.
func (g *Series) ComputeStats() (Stats, error) {
	return ComputeStatsFromLayers(g.N, g.Delta, g.NumWindows, g.Directed, len(g.Windows),
		func(i int) []snapshot.Edge { return g.Windows[i].Edges })
}

// ComputeStatsFromLayers aggregates the classical per-snapshot
// properties over any layered representation of an aggregated series —
// layer(i) returns the deduplicated edge set of the i-th non-empty
// window, in increasing window order. (*Series).ComputeStats is a thin
// wrapper over it. The sweep engine keeps an optimised union-find
// variant of this accumulation (it never materialises snapshot.Graph);
// the two are pinned together by classic's bit-exact equivalence tests
// — change the per-window quantities or their accumulation order here
// and there together.
func ComputeStatsFromLayers(n int, delta, numWindows int64, directed bool, layers int, layer func(i int) []snapshot.Edge) (Stats, error) {
	st := Stats{Delta: delta, NumWindows: numWindows, NonEmptyWindows: layers}
	if numWindows == 0 {
		return st, nil
	}
	var sumDensity, sumDegree, sumNonIso, sumLCC float64
	for i := 0; i < layers; i++ {
		edges := layer(i)
		st.TotalEdges += len(edges)
		gr, err := snapshot.NewGraph(n, edges, directed)
		if err != nil {
			return st, err
		}
		sumDensity += gr.Density()
		if n > 0 {
			if directed {
				sumDegree += float64(gr.M()) / float64(n)
			} else {
				sumDegree += 2 * float64(gr.M()) / float64(n)
			}
		}
		sumNonIso += float64(gr.NonIsolated())
		sumLCC += float64(gr.LargestComponent())
		if len(edges) > st.MaxSnapshotEdges {
			st.MaxSnapshotEdges = len(edges)
		}
	}
	// Empty windows contribute 0 to everything except the largest
	// component, which is 1 (a single isolated node) when N > 0.
	empty := float64(numWindows) - float64(layers)
	if n > 0 {
		sumLCC += empty
	}
	k := float64(numWindows)
	st.MeanDensity = sumDensity / k
	st.MeanDegree = sumDegree / k
	st.MeanNonIsolated = sumNonIso / k
	st.MeanLargestComp = sumLCC / k
	st.MeanSnapshotEdges = float64(st.TotalEdges) / k
	return st, nil
}
