package series

import (
	"testing"

	"repro/internal/linkstream"
	"repro/internal/snapshot"
)

func variantStream(t *testing.T) *linkstream.Stream {
	t.Helper()
	s := linkstream.New()
	for _, e := range []struct {
		u, v string
		t    int64
	}{
		{"a", "b", 0}, {"b", "c", 5}, {"c", "d", 10}, {"a", "b", 15}, {"d", "e", 25},
	} {
		if err := s.Add(e.u, e.v, e.t); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAggregateSlidingOverlap(t *testing.T) {
	s := variantStream(t)
	wins, err := AggregateSliding(s, 10, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	// Window starts: 0,5,10,15,20,25 — all contain at least one event.
	if len(wins) != 6 {
		t.Fatalf("windows = %d, want 6", len(wins))
	}
	// [0,10) holds {a,b},{b,c}; [5,15) holds {b,c},{c,d} — overlap.
	if len(wins[0].Edges) != 2 || len(wins[1].Edges) != 2 {
		t.Fatalf("windows: %+v", wins[:2])
	}
	shared := false
	for _, e0 := range wins[0].Edges {
		for _, e1 := range wins[1].Edges {
			if e0 == e1 {
				shared = true
			}
		}
	}
	if !shared {
		t.Fatal("overlapping windows should share the t=5 edge")
	}
}

func TestAggregateSlidingEqualsDisjointWhenStrideDelta(t *testing.T) {
	s := variantStream(t)
	wins, err := AggregateSliding(s, 10, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Aggregate(s, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != len(g.Windows) {
		t.Fatalf("sliding %d vs disjoint %d windows", len(wins), len(g.Windows))
	}
	for i := range wins {
		if wins[i].Start != g.WindowStart(g.Windows[i].K) {
			t.Fatalf("window %d start %d vs %d", i, wins[i].Start, g.WindowStart(g.Windows[i].K))
		}
		if len(wins[i].Edges) != len(g.Windows[i].Edges) {
			t.Fatalf("window %d edges differ", i)
		}
	}
}

func TestAggregateSlidingErrors(t *testing.T) {
	s := variantStream(t)
	if _, err := AggregateSliding(s, 0, 1, false); err == nil {
		t.Fatal("delta 0 should error")
	}
	if _, err := AggregateSliding(s, 10, 0, false); err == nil {
		t.Fatal("stride 0 should error")
	}
	empty := linkstream.New()
	wins, err := AggregateSliding(empty, 10, 5, false)
	if err != nil || wins != nil {
		t.Fatalf("empty stream: %v, %v", wins, err)
	}
}

func TestAggregateCumulative(t *testing.T) {
	s := variantStream(t)
	wins, err := AggregateCumulative(s, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	// Span [0,25]: 3 growing windows ending at 10, 20, 30.
	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 3", len(wins))
	}
	// Monotone growth and every window starting at t0.
	prev := 0
	for i, w := range wins {
		if w.Start != 0 {
			t.Fatalf("window %d start = %d, want 0", i, w.Start)
		}
		if len(w.Edges) < prev {
			t.Fatalf("cumulative windows must grow: %d then %d", prev, len(w.Edges))
		}
		prev = len(w.Edges)
	}
	// Final window holds all 4 distinct undirected edges.
	if len(wins[2].Edges) != 4 {
		t.Fatalf("final window edges = %d, want 4", len(wins[2].Edges))
	}
	// Mutating an earlier window must not leak into later ones
	// (defensive copies).
	wins[0].Edges[0] = snapshot.Edge{U: 99, V: 100}
	if wins[2].Edges[0] == (snapshot.Edge{U: 99, V: 100}) {
		t.Fatal("cumulative windows share backing arrays")
	}
}

func TestAggregateCumulativeErrors(t *testing.T) {
	s := variantStream(t)
	if _, err := AggregateCumulative(s, 0, false); err == nil {
		t.Fatal("delta 0 should error")
	}
	empty := linkstream.New()
	wins, err := AggregateCumulative(empty, 10, false)
	if err != nil || wins != nil {
		t.Fatalf("empty stream: %v, %v", wins, err)
	}
}

func TestAggregateCumulativeDirected(t *testing.T) {
	s := linkstream.New()
	if err := s.Add("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("b", "a", 1); err != nil {
		t.Fatal(err)
	}
	und, err := AggregateCumulative(s, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(und[0].Edges) != 1 {
		t.Fatalf("undirected edges = %d, want 1", len(und[0].Edges))
	}
	dir, err := AggregateCumulative(s, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir[0].Edges) != 2 {
		t.Fatalf("directed edges = %d, want 2", len(dir[0].Edges))
	}
}
