// Package docs pins the documentation to the code it documents: every
// ```go fence in README.md and docs/*.md must be a complete, compiling
// file (fragments use plain fences), and every intra-repo markdown
// link must resolve. CI runs this as its doc-freshness leg, so a
// renamed identifier or a moved file breaks the build, not the reader.
package docs

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory (internal/docs during
// go test) to the directory holding go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// docFiles is the checked documentation set: the README plus
// everything under docs/.
func docFiles(t *testing.T, root string) []string {
	t.Helper()
	files := []string{filepath.Join(root, "README.md")}
	matches, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, matches...)
}

// snippet is one fenced code block of a markdown file.
type snippet struct {
	file string // repo-relative path
	line int    // 1-based line of the opening fence
	lang string
	body string
}

// fences extracts every fenced block of a markdown file.
func fences(t *testing.T, root, path string) []snippet {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		t.Fatal(err)
	}
	var out []snippet
	var cur *snippet
	var body []string
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "```") {
			if cur != nil {
				body = append(body, line)
			}
			continue
		}
		if cur == nil {
			cur = &snippet{file: rel, line: i + 1, lang: strings.TrimPrefix(trimmed, "```")}
			body = body[:0]
			continue
		}
		cur.body = strings.Join(body, "\n")
		out = append(out, *cur)
		cur = nil
	}
	if cur != nil {
		t.Errorf("%s:%d: unclosed code fence", rel, cur.line)
	}
	return out
}

// TestGoSnippetsCompile requires every ```go fence to be a complete
// file (starting with a package clause, imports included) and compiles
// them all as one throwaway module that replaces repro with this
// checkout — so documentation examples break when the API they show
// does.
func TestGoSnippetsCompile(t *testing.T) {
	root := repoRoot(t)
	var gos []snippet
	for _, path := range docFiles(t, root) {
		for _, s := range fences(t, root, path) {
			if s.lang == "go" {
				gos = append(gos, s)
			}
		}
	}
	if len(gos) == 0 {
		t.Fatal("no ```go snippets found — the README quickstart should be one")
	}
	dir := t.TempDir()
	mod := fmt.Sprintf("module docsnippets\n\ngo 1.23\n\nrequire repro v0.0.0\n\nreplace repro => %s\n", root)
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(mod), 0o644); err != nil {
		t.Fatal(err)
	}
	for i, s := range gos {
		if !strings.HasPrefix(strings.TrimSpace(s.body), "package ") {
			t.Errorf("%s:%d: ```go block is not a complete file (no package clause); make it compile or use a plain ``` fence for fragments", s.file, s.line)
			continue
		}
		sub := filepath.Join(dir, fmt.Sprintf("snippet_%02d", i))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "snippet.go"), []byte(s.body+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("compiling %s:%d as snippet_%02d", s.file, s.line, i)
	}
	if t.Failed() {
		return
	}
	if testing.Short() {
		t.Skip("snippet fence shapes validated; skipping compile in -short mode")
	}
	cmd := exec.Command("go", "build", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("doc snippets do not compile: %v\n%s", err, out)
	}
}

var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestIntraRepoLinks resolves every relative markdown link of the
// documentation set against the working tree.
func TestIntraRepoLinks(t *testing.T) {
	root := repoRoot(t)
	for _, path := range docFiles(t, root) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken intra-repo link %q (%s)", rel, m[1], resolved)
			}
		}
	}
}
