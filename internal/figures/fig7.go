package figures

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/textplot"
)

// Fig7Selection is the aggregation period chosen by one selection
// method.
type Fig7Selection struct {
	Selector   string
	Delta      int64
	GammaHours float64
}

// Fig7Result compares the five Section 7 selection methods on the
// Irvine stand-in: the paper finds that all of them except the variation
// coefficient select nearly the same period, while the variation
// coefficient collapses to the timestamp resolution.
type Fig7Result struct {
	Selections []Fig7Selection
	// Curves[i] is the score of selector i at every period, normalised
	// to maximum 1 as in the paper's right panel.
	Curves []textplot.Series
	Points []core.SweepPoint
}

// Fig7 runs the multi-selector sweep.
func Fig7(p Profile) (*Fig7Result, error) {
	s, err := datasets.Irvine().Stream()
	if err != nil {
		return nil, err
	}
	s = p.prepare(s)
	sels := dist.AllSelectors()
	grid := core.LogGrid(MinDelta, s.Duration(), p.GridPoints)
	points, err := core.Sweep(context.Background(), s, grid, core.Options{Workers: p.Workers, MaxInFlight: p.MaxInFlight, Selectors: sels})
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Points: points}
	markers := []rune{'m', 's', 'v', 'e', 'c'}
	for i, sel := range sels {
		best := core.Best(points, i)
		res.Selections = append(res.Selections, Fig7Selection{
			Selector:   sel.Name(),
			Delta:      points[best].Delta,
			GammaHours: Hours(points[best].Delta),
		})
		maxScore := points[best].Scores[i]
		serie := textplot.Series{Name: sel.Name(), Marker: markers[i%len(markers)]}
		for _, pt := range points {
			y := pt.Scores[i]
			if maxScore > 0 {
				y /= maxScore
			}
			serie.Points = append(serie.Points, textplot.XY{X: Hours(pt.Delta), Y: y})
		}
		res.Curves = append(res.Curves, serie)
	}
	return res, nil
}

// Agreement returns the ratio between the largest and smallest period
// selected by the four non-degenerate methods (everything except the
// variation coefficient). The paper reports periods within ~30 % of
// each other (14.5 h to 18.7 h).
func (r *Fig7Result) Agreement() float64 {
	var lo, hi float64
	for _, s := range r.Selections {
		if s.Selector == "variation-coefficient" {
			continue
		}
		if lo == 0 || s.GammaHours < lo {
			lo = s.GammaHours
		}
		if s.GammaHours > hi {
			hi = s.GammaHours
		}
	}
	if lo == 0 {
		return 0
	}
	return hi / lo
}

// VariationCoefficientDegenerates reports whether the variation
// coefficient picked (close to) the smallest swept period, the paper's
// negative result for that metric.
func (r *Fig7Result) VariationCoefficientDegenerates() bool {
	if len(r.Points) == 0 {
		return false
	}
	smallest := r.Points[0].Delta
	for _, s := range r.Selections {
		if s.Selector == "variation-coefficient" {
			return s.Delta <= smallest*4
		}
	}
	return false
}

// Render draws the Figure 7 comparison.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7 — selection methods compared (Irvine stand-in)\n")
	rows := make([][]string, 0, len(r.Selections))
	for _, s := range r.Selections {
		rows = append(rows, []string{s.Selector, fmt.Sprintf("%.1f", s.GammaHours)})
	}
	b.WriteString(textplot.Table([]string{"method", "selected period (h)"}, rows))
	fmt.Fprintf(&b, "agreement ratio of non-degenerate methods: %.2f\n", r.Agreement())
	fmt.Fprintf(&b, "variation coefficient degenerates to the resolution: %v\n\n",
		r.VariationCoefficientDegenerates())
	b.WriteString(textplot.Plot(textplot.PlotConfig{
		Title:  "normalised metric curves",
		XLabel: "aggregation period (h)", YLabel: "score / max", Height: 14, LogX: true,
	}, r.Curves...))
	return b.String()
}
