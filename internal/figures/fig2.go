package figures

import (
	"context"

	"strings"

	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/textplot"
)

// Fig2Result holds the Figure 2 curves for the Irvine stand-in: the
// classical graph-series properties as functions of ∆, which all drift
// smoothly (Section 3's point).
type Fig2Result struct {
	Points []classic.Point
}

// Fig2 computes the classical-property curves.
func Fig2(p Profile) (*Fig2Result, error) {
	s, err := datasets.Irvine().Stream()
	if err != nil {
		return nil, err
	}
	s = p.prepare(s)
	grid := core.LogGrid(MinDelta, s.Duration(), p.GridPoints)
	pts, err := classic.Curve(context.Background(), s, grid, classic.Options{Workers: p.Workers, MaxInFlight: p.MaxInFlight})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Points: pts}, nil
}

// MonotoneDrift reports whether the curves exhibit the paper's smooth
// monotone drift: density and connectedness grow, hops shrink and
// absolute time grows from one end of the scale range to the other.
func (r *Fig2Result) MonotoneDrift() bool {
	if len(r.Points) < 2 {
		return false
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	return first.MeanDensity < last.MeanDensity &&
		first.MeanNonIsolated < last.MeanNonIsolated &&
		first.MeanDistHops > last.MeanDistHops &&
		first.MeanDistAbsTime < last.MeanDistAbsTime
}

// Render draws the four panels of Figure 2.
func (r *Fig2Result) Render() string {
	toXY := func(f func(classic.Point) float64) []textplot.XY {
		out := make([]textplot.XY, 0, len(r.Points))
		for _, p := range r.Points {
			out = append(out, textplot.XY{X: Hours(p.Delta), Y: f(p)})
		}
		return out
	}
	var b strings.Builder
	b.WriteString("Figure 2 — classical properties vs aggregation period (Irvine stand-in)\n\n")
	b.WriteString(textplot.Plot(textplot.PlotConfig{
		Title: "top-left: mean density", XLabel: "delta (h)", YLabel: "density", Height: 12, LogX: true,
	}, textplot.Series{Name: "density", Marker: 'd', Points: toXY(func(p classic.Point) float64 { return p.MeanDensity })}))
	b.WriteString("\n")
	b.WriteString(textplot.Plot(textplot.PlotConfig{
		Title: "top-right: connectedness", XLabel: "delta (h)", YLabel: "vertices", Height: 12, LogX: true,
	},
		textplot.Series{Name: "non-isolated", Marker: 'n', Points: toXY(func(p classic.Point) float64 { return p.MeanNonIsolated })},
		textplot.Series{Name: "largest component", Marker: 'c', Points: toXY(func(p classic.Point) float64 { return p.MeanLargestComp })},
	))
	b.WriteString("\n")
	b.WriteString(textplot.Plot(textplot.PlotConfig{
		Title: "bottom-left: mean distance in time (log-log)", XLabel: "delta (h)", YLabel: "dtime (windows)",
		Height: 12, LogX: true, LogY: true,
	}, textplot.Series{Name: "distance in time", Marker: 't', Points: toXY(func(p classic.Point) float64 { return p.MeanDistTime })}))
	b.WriteString("\n")
	b.WriteString(textplot.Plot(textplot.PlotConfig{
		Title: "bottom-right: distance in hops and in absolute time", XLabel: "delta (h)", YLabel: "(mixed)",
		Height: 12, LogX: true,
	},
		textplot.Series{Name: "hops", Marker: 'h', Points: toXY(func(p classic.Point) float64 { return p.MeanDistHops })},
		textplot.Series{Name: "abs time (h, /100)", Marker: 'a', Points: toXY(func(p classic.Point) float64 { return Hours(int64(p.MeanDistAbsTime)) / 100 })},
	))
	return b.String()
}
