package figures

import (
	"fmt"
	"io"
	"time"
)

// Experiment names accepted by Run.
var Names = []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6a", "fig6b", "fig7", "fig8a", "fig8b"}

// Run executes one named experiment and writes its rendering to w.
func Run(name string, p Profile, w io.Writer) error {
	start := time.Now()
	var text string
	switch name {
	case "table1":
		r, err := Table1(p)
		if err != nil {
			return err
		}
		text = r.Render()
	case "fig2":
		r, err := Fig2(p)
		if err != nil {
			return err
		}
		text = r.Render()
	case "fig3":
		r, err := Fig3(p)
		if err != nil {
			return err
		}
		text = "Figure 3 — occupancy method on the Irvine stand-in\n\n" +
			r.RenderICDs() + "\n" + r.RenderProximity()
	case "fig4":
		r, err := Fig45(p)
		if err != nil {
			return err
		}
		text = r.RenderICDs()
	case "fig5":
		r, err := Fig45(p)
		if err != nil {
			return err
		}
		text = r.RenderProximity()
	case "fig6a":
		r, err := Fig6Left(p)
		if err != nil {
			return err
		}
		text = r.Render()
	case "fig6b":
		r, err := Fig6Right(p)
		if err != nil {
			return err
		}
		text = r.Render()
	case "fig7":
		r, err := Fig7(p)
		if err != nil {
			return err
		}
		text = r.Render()
	case "fig8a", "fig8b":
		r, err := Fig8(p)
		if err != nil {
			return err
		}
		text = r.Render()
	default:
		return fmt.Errorf("figures: unknown experiment %q (have %v)", name, Names)
	}
	if _, err := fmt.Fprintf(w, "=== %s (profile %s, %.1fs) ===\n%s\n", name, p.Name, time.Since(start).Seconds(), text); err != nil {
		return err
	}
	return nil
}

// RunAll executes every experiment, deduplicating fig4/fig5 and
// fig8a/fig8b pairs would be wasteful — Run recomputes them, so RunAll
// calls the underlying computations once each instead.
func RunAll(p Profile, w io.Writer) error {
	type step struct {
		name string
		fn   func() (string, error)
	}
	steps := []step{
		{"table1", func() (string, error) {
			r, err := Table1(p)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig2", func() (string, error) {
			r, err := Fig2(p)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig3", func() (string, error) {
			r, err := Fig3(p)
			if err != nil {
				return "", err
			}
			return "Figure 3 — occupancy method on the Irvine stand-in\n\n" +
				r.RenderICDs() + "\n" + r.RenderProximity(), nil
		}},
		{"fig4+fig5", func() (string, error) {
			r, err := Fig45(p)
			if err != nil {
				return "", err
			}
			return r.RenderICDs() + "\n" + r.RenderProximity(), nil
		}},
		{"fig6a", func() (string, error) {
			r, err := Fig6Left(p)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig6b", func() (string, error) {
			r, err := Fig6Right(p)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig7", func() (string, error) {
			r, err := Fig7(p)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig8", func() (string, error) {
			r, err := Fig8(p)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
	for _, st := range steps {
		start := time.Now()
		text, err := st.fn()
		if err != nil {
			return fmt.Errorf("figures: %s: %w", st.name, err)
		}
		if _, err := fmt.Fprintf(w, "=== %s (profile %s, %.1fs) ===\n%s\n", st.name, p.Name, time.Since(start).Seconds(), text); err != nil {
			return err
		}
	}
	return nil
}
