package figures

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/sweep"
	"repro/internal/textplot"
	"repro/internal/validate"
)

// Fig8Result holds the Section 8 validation curves for the Irvine
// stand-in, plus the saturation scale they are checked against.
type Fig8Result struct {
	Gamma      int64
	Loss       []validate.LossPoint
	Elongation []validate.ElongationPoint
	// LossAtGamma and ElongationAtGamma interpolate the curves at γ.
	LossAtGamma       float64
	ElongationAtGamma float64
}

// Fig8 computes the transition-loss (left) and elongation (right)
// curves and evaluates them at γ. The paper reports ~48 % of shortest
// transitions lost and a mean elongation below 1.5 at γ = 18 h.
//
// All three quantities — the occupancy curve deciding γ, the loss curve
// and the elongation curve — come out of one engine pass: each
// period's CSR is built once and its single backward sweep feeds the
// occupancy, trip and stream-transition observers simultaneously.
func Fig8(p Profile) (*Fig8Result, error) {
	s, err := datasets.Irvine().Stream()
	if err != nil {
		return nil, err
	}
	s = p.prepare(s)
	grid := core.LogGrid(MinDelta, s.Duration(), p.GridPoints)
	occObs := core.NewOccupancyObserver(nil)
	lossObs := validate.NewTransitionLossObserver()
	elongObs := validate.NewElongationObserver()
	err = sweep.Run(context.Background(), s, grid, sweep.Options{Workers: p.Workers, MaxInFlight: p.MaxInFlight},
		occObs, lossObs, elongObs)
	if err != nil {
		return nil, err
	}
	points := occObs.Points()
	gamma := points[core.Best(points, 0)].Delta
	loss := lossObs.Points()
	elong := elongObs.Points()
	res := &Fig8Result{Gamma: gamma, Loss: loss, Elongation: elong}
	res.LossAtGamma = interpAt(gamma, loss, func(p validate.LossPoint) (int64, float64) { return p.Delta, p.Lost })
	res.ElongationAtGamma = interpAt(gamma, elong, func(p validate.ElongationPoint) (int64, float64) { return p.Delta, p.MeanElongation })
	return res, nil
}

// interpAt linearly interpolates a curve at delta.
func interpAt[T any](delta int64, pts []T, get func(T) (int64, float64)) float64 {
	var prevX int64
	var prevY float64
	for i, p := range pts {
		x, y := get(p)
		if x >= delta {
			if i == 0 || x == delta {
				return y
			}
			f := float64(delta-prevX) / float64(x-prevX)
			return prevY + f*(y-prevY)
		}
		prevX, prevY = x, y
	}
	return prevY
}

// GammaInsideLossRamp reports whether γ falls inside the range where
// transitions are being lost — after the low-loss plateau and before
// total loss — the paper's qualitative validation.
func (r *Fig8Result) GammaInsideLossRamp() bool {
	if r.LossAtGamma <= 0.02 || r.LossAtGamma >= 0.98 {
		return false
	}
	first := r.Loss[0]
	last := r.Loss[len(r.Loss)-1]
	return first.Lost < r.LossAtGamma && last.Lost > r.LossAtGamma
}

// Render draws both Figure 8 panels.
func (r *Fig8Result) Render() string {
	lossPts := make([]textplot.XY, 0, len(r.Loss))
	for _, p := range r.Loss {
		lossPts = append(lossPts, textplot.XY{X: Hours(p.Delta), Y: p.Lost})
	}
	elongPts := make([]textplot.XY, 0, len(r.Elongation))
	for _, p := range r.Elongation {
		if p.Trips == 0 {
			continue // at ∆ = T no trip spans two windows
		}
		elongPts = append(elongPts, textplot.XY{X: Hours(p.Delta), Y: p.MeanElongation})
	}
	var b strings.Builder
	b.WriteString("Figure 8 — validation (Irvine stand-in)\n\n")
	b.WriteString(textplot.Plot(textplot.PlotConfig{
		Title:  "left: proportion of shortest transitions lost",
		XLabel: "aggregation period (h, log)", YLabel: "proportion lost", Height: 14, LogX: true,
	}, textplot.Series{Name: "lost", Marker: 'x', Points: lossPts}))
	b.WriteString("\n")
	b.WriteString(textplot.Plot(textplot.PlotConfig{
		Title:  "right: mean elongation factor of minimal trips",
		XLabel: "aggregation period (h, log)", YLabel: "elongation", Height: 14, LogX: true,
	}, textplot.Series{Name: "elongation", Marker: 'x', Points: elongPts}))
	fmt.Fprintf(&b, "gamma = %s; loss at gamma = %.0f%%; elongation at gamma = %.2f; gamma inside loss ramp: %v\n",
		formatGamma(r.Gamma), 100*r.LossAtGamma, r.ElongationAtGamma, r.GammaInsideLossRamp())
	return b.String()
}
