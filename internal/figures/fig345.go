package figures

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dist"
	"repro/internal/textplot"
)

// ICDCurve is the inverse cumulative distribution of occupancy rates at
// one aggregation period, sampled on a uniform λ grid for plotting.
type ICDCurve struct {
	Delta  int64
	Points []textplot.XY // (occupancy rate λ, P(X > λ))
	Trips  int
}

// icdOf samples the ICD of a sample at 101 grid points.
func icdOf(delta int64, s *dist.Sample) ICDCurve {
	c := ICDCurve{Delta: delta, Trips: s.N()}
	for i := 0; i <= 100; i++ {
		l := float64(i) / 100
		c.Points = append(c.Points, textplot.XY{X: l, Y: s.ICD(l)})
	}
	return c
}

// OccupancyResult holds, for one dataset, the ICDs at several periods
// (Figure 3 left / Figure 4) and the full M-K proximity curve with the
// selected γ (Figure 3 right / Figure 5).
type OccupancyResult struct {
	Dataset string
	ICDs    []ICDCurve
	Curve   []core.SweepPoint // Scores[0] = M-K proximity
	Gamma   int64
	Score   float64
}

// occupancyFor runs the occupancy method on one dataset stand-in and
// retains the ICDs of icdCount log-spaced periods.
func occupancyFor(d *datasets.Dataset, p Profile, icdCount int) (*OccupancyResult, error) {
	s, err := d.Stream()
	if err != nil {
		return nil, err
	}
	s = p.prepare(s)
	opt := core.Options{Workers: p.Workers, MaxInFlight: p.MaxInFlight, Grid: core.LogGrid(MinDelta, s.Duration(), p.GridPoints)}
	sc, err := core.SaturationScale(context.Background(), s, opt)
	if err != nil {
		return nil, err
	}
	res := &OccupancyResult{Dataset: d.Meta.Name, Curve: sc.Points, Gamma: sc.Gamma, Score: sc.Score}
	for _, delta := range core.LogGrid(MinDelta, s.Duration(), icdCount) {
		sample, err := core.OccupancySample(s, delta, opt)
		if err != nil {
			return nil, err
		}
		res.ICDs = append(res.ICDs, icdOf(delta, sample))
	}
	return res, nil
}

// StretchThenContract reports whether the ICD family shows the paper's
// signature evolution: the mean occupancy increases monotonically in ∆
// from near 0 to 1 (stretch towards 1, then contraction onto 1).
func (r *OccupancyResult) StretchThenContract() bool {
	if len(r.ICDs) < 3 {
		return false
	}
	// Mean occupancy = ∫ ICD; approximate from the sampled curve.
	mean := func(c ICDCurve) float64 {
		sum := 0.0
		for _, p := range c.Points {
			sum += p.Y
		}
		return sum / float64(len(c.Points))
	}
	first := mean(r.ICDs[0])
	last := mean(r.ICDs[len(r.ICDs)-1])
	return first < 0.35 && last > 0.9
}

// ProximityPeaked reports whether the M-K proximity curve rises to an
// interior maximum and falls after it (Figures 3 right and 5).
func (r *OccupancyResult) ProximityPeaked() bool {
	if len(r.Curve) < 3 {
		return false
	}
	best := core.Best(r.Curve, 0)
	return r.Curve[0].Scores[0] < r.Score && r.Curve[len(r.Curve)-1].Scores[0] < r.Score &&
		best > 0 && best < len(r.Curve)-1
}

// RenderICDs draws the Figure 3 (left) / Figure 4 panel.
func (r *OccupancyResult) RenderICDs() string {
	markers := []rune{'1', '2', '3', '4', '5', '6', '7', '8', '9'}
	series := make([]textplot.Series, 0, len(r.ICDs))
	for i, c := range r.ICDs {
		m := markers[i%len(markers)]
		series = append(series, textplot.Series{
			Name:   fmt.Sprintf("∆=%.2gh", Hours(c.Delta)),
			Marker: m,
			Points: c.Points,
		})
	}
	return textplot.Plot(textplot.PlotConfig{
		Title:  fmt.Sprintf("ICDs of occupancy rates — %s (∆ increasing 1..%d)", r.Dataset, len(r.ICDs)),
		XLabel: "occupancy rate", YLabel: "proportion of minimal trips", Height: 16,
	}, series...)
}

// RenderProximity draws the Figure 3 (right) / Figure 5 panel.
func (r *OccupancyResult) RenderProximity() string {
	pts := make([]textplot.XY, 0, len(r.Curve))
	for _, p := range r.Curve {
		pts = append(pts, textplot.XY{X: Hours(p.Delta), Y: p.Scores[0]})
	}
	var b strings.Builder
	b.WriteString(textplot.Plot(textplot.PlotConfig{
		Title:  fmt.Sprintf("M-K proximity — %s (gamma = %s)", r.Dataset, formatGamma(r.Gamma)),
		XLabel: "aggregation period (h)", YLabel: "M-K proximity", Height: 14, LogX: true,
	}, textplot.Series{Name: "proximity", Marker: '+', Points: pts}))
	return b.String()
}

// Fig3 reproduces Figure 3: ICDs and M-K proximity for Irvine.
func Fig3(p Profile) (*OccupancyResult, error) {
	return occupancyFor(datasets.Irvine(), p, 7)
}

// Fig45Result bundles the three non-Irvine datasets for Figures 4 and 5.
type Fig45Result struct {
	Results []*OccupancyResult
}

// Fig45 reproduces Figures 4 (ICDs) and 5 (M-K proximity curves) for
// Facebook, Enron and Manufacturing.
func Fig45(p Profile) (*Fig45Result, error) {
	var out Fig45Result
	for _, d := range []*datasets.Dataset{datasets.Facebook(), datasets.Enron(), datasets.Manufacturing()} {
		r, err := occupancyFor(d, p, 7)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, r)
	}
	return &out, nil
}

// RenderICDs renders the Figure 4 panels.
func (r *Fig45Result) RenderICDs() string {
	var b strings.Builder
	b.WriteString("Figure 4 — occupancy-rate ICDs (Facebook, Enron, Manufacturing stand-ins)\n\n")
	for _, res := range r.Results {
		b.WriteString(res.RenderICDs())
		b.WriteString("\n")
	}
	return b.String()
}

// RenderProximity renders the Figure 5 panels.
func (r *Fig45Result) RenderProximity() string {
	var b strings.Builder
	b.WriteString("Figure 5 — M-K proximity vs aggregation period\n\n")
	for _, res := range r.Results {
		b.WriteString(res.RenderProximity())
		b.WriteString("\n")
	}
	return b.String()
}
