package figures

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/textplot"
)

// Table1Row is the outcome of the occupancy method on one dataset
// stand-in, next to the paper's reported value.
type Table1Row struct {
	Name            string
	Nodes           int
	Events          int
	Activity        float64 // events per person per day (measured)
	GammaHours      float64 // measured on the stand-in
	PaperGammaHours float64 // reported in Section 5 for the real trace
}

// Table1Result reproduces the Section 5 summary: the saturation scale of
// each dataset and its relation to the activity level.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the occupancy method on every dataset stand-in.
func Table1(p Profile) (*Table1Result, error) {
	res := &Table1Result{}
	for _, d := range datasets.All() {
		s, err := d.Stream()
		if err != nil {
			return nil, err
		}
		s = p.prepare(s)
		st := s.ComputeStats()
		sc, err := core.SaturationScale(context.Background(), s, core.Options{
			Workers:     p.Workers,
			MaxInFlight: p.MaxInFlight,
			Grid:        core.LogGrid(MinDelta, s.Duration(), p.GridPoints),
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Name:            d.Meta.Name,
			Nodes:           s.NumNodes(),
			Events:          s.NumEvents(),
			Activity:        st.EventsPerNodePerDay,
			GammaHours:      Hours(sc.Gamma),
			PaperGammaHours: d.Meta.PaperGammaHours,
		})
	}
	return res, nil
}

// ActivityOrderingHolds reports whether less active networks received
// larger saturation scales, the paper's qualitative finding ("the two
// greater values are obtained for the two networks that have the lower
// activity").
func (r *Table1Result) ActivityOrderingHolds() bool {
	for _, a := range r.Rows {
		for _, b := range r.Rows {
			// Networks whose activity differs by at least 2x must have
			// gammas ordered the other way around.
			if a.Activity > 2*b.Activity && a.GammaHours >= b.GammaHours {
				return false
			}
		}
	}
	return true
}

// Render formats the table.
func (r *Table1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.Events),
			fmt.Sprintf("%.2f", row.Activity),
			fmt.Sprintf("%.1f", row.GammaHours),
			fmt.Sprintf("%.0f", row.PaperGammaHours),
		})
	}
	var b strings.Builder
	b.WriteString("Table 1 — saturation scales (occupancy method, M-K proximity)\n")
	b.WriteString(textplot.Table(
		[]string{"dataset", "nodes", "events", "msgs/person/day", "gamma (h)", "paper gamma (h)"},
		rows))
	fmt.Fprintf(&b, "activity ordering holds: %v\n", r.ActivityOrderingHolds())
	return b.String()
}
