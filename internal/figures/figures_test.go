package figures

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/sweep"
	"repro/internal/validate"
)

// TestFigureSweepsBuildEachPeriodOnce pins the engine guarantee the
// refactor exists for: one figure computation builds each candidate
// period's CSR arena exactly once, however many metrics it feeds —
// Figure 8's occupancy, transition-loss and elongation curves share a
// single pass, as do Figure 2's window statistics and distances.
func TestFigureSweepsBuildEachPeriodOnce(t *testing.T) {
	p := QuickProfile()
	s, err := datasets.Irvine().Stream()
	if err != nil {
		t.Fatal(err)
	}
	s = p.prepare(s)
	gridLen := len(core.LogGrid(MinDelta, s.Duration(), p.GridPoints))

	sweep.ResetBuildStats()
	if _, err := Fig8(p); err != nil {
		t.Fatal(err)
	}
	if builds, _ := sweep.BuildStats(); builds != int64(gridLen) {
		t.Fatalf("Fig8 built %d period CSRs for %d grid entries", builds, gridLen)
	}

	sweep.ResetBuildStats()
	if _, err := Fig2(p); err != nil {
		t.Fatal(err)
	}
	if builds, _ := sweep.BuildStats(); builds != int64(gridLen) {
		t.Fatalf("Fig2 built %d period CSRs for %d grid entries", builds, gridLen)
	}
}

// The quick profile must still reproduce every qualitative finding of
// the paper; these tests are the executable form of EXPERIMENTS.md.

func TestTable1Quick(t *testing.T) {
	r, err := Table1(QuickProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		// All γ in the paper's half-day-to-three-days band, generously
		// widened for the quick subsampled stand-ins.
		if row.GammaHours < 2 || row.GammaHours > 200 {
			t.Errorf("%s: gamma = %.1f h outside plausible band", row.Name, row.GammaHours)
		}
	}
	if !r.ActivityOrderingHolds() {
		t.Errorf("activity ordering violated: %+v", r.Rows)
	}
	out := r.Render()
	if !strings.Contains(out, "irvine") || !strings.Contains(out, "manufacturing") {
		t.Fatalf("render missing datasets:\n%s", out)
	}
}

func TestFig2Quick(t *testing.T) {
	r, err := Fig2(QuickProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !r.MonotoneDrift() {
		t.Fatalf("figure 2 drift violated: first=%+v last=%+v", r.Points[0], r.Points[len(r.Points)-1])
	}
	if out := r.Render(); !strings.Contains(out, "density") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig3Quick(t *testing.T) {
	r, err := Fig3(QuickProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !r.StretchThenContract() {
		means := make([]float64, 0, len(r.ICDs))
		for _, c := range r.ICDs {
			sum := 0.0
			for _, p := range c.Points {
				sum += p.Y
			}
			means = append(means, sum/float64(len(c.Points)))
		}
		t.Fatalf("ICDs do not stretch then contract; mean occupancies: %v", means)
	}
	if !r.ProximityPeaked() {
		t.Fatalf("proximity curve not peaked: gamma=%d score=%v", r.Gamma, r.Score)
	}
	out := r.RenderICDs() + r.RenderProximity()
	if !strings.Contains(out, "irvine") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig45Quick(t *testing.T) {
	r, err := Fig45(QuickProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(r.Results))
	}
	for _, res := range r.Results {
		if !res.ProximityPeaked() {
			t.Errorf("%s: proximity curve not peaked", res.Dataset)
		}
		if !res.StretchThenContract() {
			t.Errorf("%s: ICDs do not stretch then contract", res.Dataset)
		}
	}
}

func TestFig6LeftQuick(t *testing.T) {
	r, err := Fig6Left(QuickProfile())
	if err != nil {
		t.Fatal(err)
	}
	slope, dev := r.ProportionalityFit()
	if slope <= 0 {
		t.Fatalf("slope = %v", slope)
	}
	// The paper reports perfect proportionality; grids and seeds leave
	// some wiggle in the quick profile.
	if dev > 0.5 {
		t.Fatalf("max relative deviation = %.0f%%, points: %+v", 100*dev, r.Points)
	}
	// Points are ordered by increasing links-per-pair, i.e. decreasing
	// inter-contact time, so gamma must shrink along the sequence.
	if r.Points[0].Gamma <= r.Points[len(r.Points)-1].Gamma {
		t.Fatalf("gamma should grow with inter-contact time: %+v", r.Points)
	}
}

func TestFig6RightQuick(t *testing.T) {
	r, err := Fig6Right(QuickProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !r.PlateauHolds() {
		t.Fatalf("two-mode plateau violated: %+v", r.Points)
	}
}

func TestFig7Quick(t *testing.T) {
	r, err := Fig7(QuickProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Selections) != 5 {
		t.Fatalf("selections = %d, want 5", len(r.Selections))
	}
	// Paper: the four sane methods agree within a small factor.
	if a := r.Agreement(); a > 4 {
		t.Fatalf("non-degenerate methods disagree by %.1fx: %+v", a, r.Selections)
	}
	if !r.VariationCoefficientDegenerates() {
		t.Errorf("variation coefficient did not degenerate: %+v", r.Selections)
	}
}

func TestFig8Quick(t *testing.T) {
	r, err := Fig8(QuickProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !r.GammaInsideLossRamp() {
		t.Fatalf("gamma not inside the loss ramp: loss@gamma=%.2f curve=%+v", r.LossAtGamma, r.Loss)
	}
	// Paper's Figure 8 right shape: elongation sits near 1 at fine
	// scales and has risen by gamma. (The paper's absolute value < 1.5
	// is specific to the real Irvine trace; the circadian stand-in has
	// faster within-window stream trips, so its ratio at gamma is
	// larger — recorded in EXPERIMENTS.md.)
	first := r.Elongation[0]
	if first.Trips > 0 && first.MeanElongation > 1.5 {
		t.Fatalf("elongation at finest scale = %v, want ~1", first.MeanElongation)
	}
	if r.ElongationAtGamma <= first.MeanElongation {
		t.Fatalf("elongation should have risen by gamma: %v vs %v",
			r.ElongationAtGamma, first.MeanElongation)
	}
	for i := range r.Elongation {
		if r.Elongation[i].Unmatched != 0 {
			t.Fatalf("unmatched trips at delta %d", r.Elongation[i].Delta)
		}
	}
	_ = validate.Options{}
}

func TestRunUnknownName(t *testing.T) {
	var sb strings.Builder
	if err := Run("nope", QuickProfile(), &sb); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	if err := Run("table1", QuickProfile(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

// TestRunAllQuick executes the entire harness once; it is the
// repository-level golden path for cmd/tsfigures.
func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var sb strings.Builder
	if err := RunAll(QuickProfile(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"=== table1", "=== fig2", "=== fig3", "=== fig4+fig5",
		"=== fig6a", "=== fig6b", "=== fig7", "=== fig8",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in RunAll output", want)
		}
	}
}
