package figures

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/textplot"
)

// Fig6LeftPoint is one time-uniform network in Figure 6 (left).
type Fig6LeftPoint struct {
	LinksPerPair     int
	MeanInterContact float64 // T/(N(n-1)), seconds
	Gamma            int64   // seconds
}

// Fig6LeftResult holds the γ-vs-inter-contact-time relation, which the
// paper shows to be perfectly proportional.
type Fig6LeftResult struct {
	Nodes  int
	T      int64
	Points []Fig6LeftPoint
}

// Fig6Left sweeps the links-per-pair parameter of time-uniform networks
// and measures γ for each. The paper uses n = 100, T = 100 000 s and
// N = 10..100; the quick profile shrinks n and T, which preserves the
// proportionality (the relation is scale-free).
func Fig6Left(p Profile) (*Fig6LeftResult, error) {
	res := &Fig6LeftResult{Nodes: 100, T: 100_000}
	ns := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p.Quick {
		res.Nodes, res.T = 24, 20_000
		ns = []int{6, 12, 18, 24, 30}
	}
	for i, N := range ns {
		cfg := synth.TimeUniformConfig{Nodes: res.Nodes, LinksPerPair: N, T: res.T, Seed: int64(1000 + i)}
		s, err := synth.TimeUniform(cfg)
		if err != nil {
			return nil, err
		}
		sc, err := core.SaturationScale(context.Background(), s, core.Options{
			Workers:     p.Workers,
			MaxInFlight: p.MaxInFlight,
			Grid:        core.LogGrid(1, res.T, p.GridPoints),
			Refine:      4,
		})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig6LeftPoint{
			LinksPerPair:     N,
			MeanInterContact: cfg.MeanInterContact(),
			Gamma:            sc.Gamma,
		})
	}
	return res, nil
}

// ProportionalityFit returns the least-squares slope of γ against the
// mean inter-contact time and the maximum relative deviation of any
// point from that line. The paper reports a perfectly proportional
// relation, so the deviation should be small.
func (r *Fig6LeftResult) ProportionalityFit() (slope, maxRelDev float64) {
	var sxx, sxy float64
	for _, p := range r.Points {
		sxx += p.MeanInterContact * p.MeanInterContact
		sxy += p.MeanInterContact * float64(p.Gamma)
	}
	if sxx == 0 {
		return 0, 0
	}
	slope = sxy / sxx
	for _, p := range r.Points {
		pred := slope * p.MeanInterContact
		if pred == 0 {
			continue
		}
		dev := (float64(p.Gamma) - pred) / pred
		if dev < 0 {
			dev = -dev
		}
		if dev > maxRelDev {
			maxRelDev = dev
		}
	}
	return slope, maxRelDev
}

// Render draws Figure 6 (left).
func (r *Fig6LeftResult) Render() string {
	pts := make([]textplot.XY, 0, len(r.Points))
	for _, p := range r.Points {
		pts = append(pts, textplot.XY{X: p.MeanInterContact, Y: float64(p.Gamma)})
	}
	slope, dev := r.ProportionalityFit()
	var b strings.Builder
	b.WriteString(textplot.Plot(textplot.PlotConfig{
		Title:  fmt.Sprintf("Figure 6 left — time-uniform networks (n=%d, T=%ds)", r.Nodes, r.T),
		XLabel: "mean inter-contact time (s)", YLabel: "saturation scale (s)", Height: 14,
	}, textplot.Series{Name: "gamma", Marker: 'o', Points: pts}))
	fmt.Fprintf(&b, "least-squares slope gamma/inter-contact = %.3f, max relative deviation = %.1f%%\n",
		slope, 100*dev)
	return b.String()
}

// Fig6RightPoint is one two-mode network in Figure 6 (right).
type Fig6RightPoint struct {
	LowFraction float64 // ρ = T2/(T1+T2)
	Gamma       int64
}

// Fig6RightResult holds γ as a function of the proportion of
// low-activity time.
type Fig6RightResult struct {
	Nodes        int
	T            int64 // whole length = Alternations*(T1+T2)
	N1, N2       int
	Alternations int
	Points       []Fig6RightPoint
}

// Fig6Right sweeps the low-activity fraction ρ of two-mode networks.
// The paper's finding: γ stays near the high-activity value until
// ρ ≈ 70-80 %, then rises towards the low-activity value.
func Fig6Right(p Profile) (*Fig6RightResult, error) {
	res := &Fig6RightResult{Nodes: 40, T: 100_000, N1: 9, N2: 1, Alternations: 10}
	rhos := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	if p.Quick {
		res.Nodes, res.T = 16, 30_000
		rhos = []float64{0, 0.25, 0.5, 0.75, 0.9, 1}
	}
	period := res.T / int64(res.Alternations)
	for i, rho := range rhos {
		t2 := int64(rho * float64(period))
		t1 := period - t2
		s, err := synth.TwoMode(synth.TwoModeConfig{
			Nodes: res.Nodes, N1: res.N1, N2: res.N2,
			T1: t1, T2: t2, Alternations: res.Alternations,
			Seed: int64(2000 + i),
		})
		if err != nil {
			return nil, err
		}
		sc, err := core.SaturationScale(context.Background(), s, core.Options{
			Workers:     p.Workers,
			MaxInFlight: p.MaxInFlight,
			Grid:        core.LogGrid(1, res.T, p.GridPoints),
			Refine:      4,
		})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig6RightPoint{LowFraction: rho, Gamma: sc.Gamma})
	}
	return res, nil
}

// PlateauHolds reports the paper's qualitative finding: up to 70 % of
// low-activity time, γ stays within a small factor of the pure
// high-activity value, while the pure low-activity value is much larger.
func (r *Fig6RightResult) PlateauHolds() bool {
	if len(r.Points) < 3 {
		return false
	}
	gammaHigh := float64(r.Points[0].Gamma)
	gammaLow := float64(r.Points[len(r.Points)-1].Gamma)
	if gammaLow < 3*gammaHigh {
		return false // modes not separated enough to observe anything
	}
	for _, p := range r.Points {
		if p.LowFraction <= 0.7 && float64(p.Gamma) > gammaHigh*2.5 {
			return false
		}
	}
	return true
}

// Render draws Figure 6 (right).
func (r *Fig6RightResult) Render() string {
	pts := make([]textplot.XY, 0, len(r.Points))
	for _, p := range r.Points {
		pts = append(pts, textplot.XY{X: 100 * p.LowFraction, Y: float64(p.Gamma)})
	}
	var b strings.Builder
	b.WriteString(textplot.Plot(textplot.PlotConfig{
		Title: fmt.Sprintf("Figure 6 right — two-mode networks (n=%d, N1=%d, N2=%d, T=%ds)",
			r.Nodes, r.N1, r.N2, r.T),
		XLabel: "percentage of low-activity time", YLabel: "saturation scale (s)", Height: 14,
	}, textplot.Series{Name: "gamma", Marker: 'o', Points: pts}))
	fmt.Fprintf(&b, "plateau holds (gamma tracks high-activity mode until ~70%%): %v\n", r.PlateauHolds())
	return b.String()
}
