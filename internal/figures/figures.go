// Package figures regenerates every figure and table of the paper's
// evaluation as structured data plus an ASCII rendering. Each experiment
// is a pure function of a Profile so the same code serves the tsfigures
// CLI, the integration tests and the benchmark harness.
//
// Experiment inventory (see DESIGN.md for the full index):
//
//	Table 1  — saturation scales of the four datasets (Section 5)
//	Figure 2 — classical properties vs ∆ (Section 3)
//	Figure 3 — occupancy ICDs + M-K proximity, Irvine (Section 4)
//	Figure 4 — occupancy ICDs, other datasets (Section 5)
//	Figure 5 — M-K proximity curves, other datasets (Section 5)
//	Figure 6 — synthetic networks: time-uniform and two-mode (Section 6)
//	Figure 7 — selection-method comparison (Section 7)
//	Figure 8 — transition loss and elongation validation (Section 8)
package figures

import (
	"fmt"

	"repro/internal/linkstream"
)

// Profile scales the experiments. Full reproduces the paper's setup (on
// the calibrated stand-ins); Quick shrinks workloads and grids so every
// experiment finishes in at most a few seconds, for tests and benches.
type Profile struct {
	Name        string
	GridPoints  int // ∆-sweep resolution
	Workers     int // engine parallelism; 0 = GOMAXPROCS
	MaxInFlight int // sweep-engine resident periods; 0 = engine default
	Quick       bool
}

// FullProfile is the paper-scale configuration.
func FullProfile() Profile { return Profile{Name: "full", GridPoints: 32} }

// QuickProfile is the seconds-scale configuration used by tests and
// benchmarks.
func QuickProfile() Profile { return Profile{Name: "quick", GridPoints: 10, Quick: true} }

// MinDelta is the smallest aggregation period swept for the dataset
// experiments: 60 s rather than the 1 s resolution, because periods
// below a minute produce astronomically many near-empty windows without
// moving any curve (the paper's plots likewise start around minutes).
const MinDelta int64 = 60

// Hours converts a period in seconds to hours.
func Hours(delta int64) float64 { return float64(delta) / 3600 }

// datasetGamma formats one γ for reports.
func formatGamma(delta int64) string {
	return fmt.Sprintf("%.1f h", Hours(delta))
}

// subsampleStream keeps one in k events, preserving activity shape
// while shrinking quick-profile workloads.
func subsampleStream(s *linkstream.Stream, k int) *linkstream.Stream {
	if k <= 1 {
		return s
	}
	s.Sort()
	return s.Filter(func(i int, _ linkstream.Event) bool { return i%k == 0 })
}

// prepare shrinks a dataset stream under the quick profile. Only
// clearly oversized streams are halved: subsampling a sparse stream
// (like the Facebook stand-in) degrades reachability enough to distort
// gamma, and comparing subsampled with whole streams breaks the
// activity ordering of Table 1.
func (p Profile) prepare(s *linkstream.Stream) *linkstream.Stream {
	if p.Quick && s.NumEvents() > 15000 {
		return subsampleStream(s, 2)
	}
	return s
}
