package sweep

import (
	"context"

	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/temporal"
)

// tripLess orders trips by every field, so two trip sets sorted with it
// compare field by field deterministically.
func tripLess(a, b temporal.Trip) bool {
	if a.V != b.V {
		return a.V < b.V
	}
	if a.U != b.U {
		return a.U < b.U
	}
	if a.Dep != b.Dep {
		return a.Dep < b.Dep
	}
	if a.Arr != b.Arr {
		return a.Arr < b.Arr
	}
	return a.Hops < b.Hops
}

func sortTrips(trips []temporal.Trip) {
	sort.Slice(trips, func(i, j int) bool { return tripLess(trips[i], trips[j]) })
}

// tinyStream builds a random workload on at most 12 nodes.
func tinyStream(t testing.TB, rng *rand.Rand) *linkstream.Stream {
	t.Helper()
	n := 3 + rng.Intn(10) // 3..12
	span := int64(50 + rng.Intn(2000))
	events := 20 + rng.Intn(150)
	s := linkstream.New()
	s.EnsureNodes(n)
	for k := 0; k < events; k++ {
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		if err := s.AddID(int32(u), int32(v), rng.Int63n(span)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestWindowedMatchesNaiveSliceSweep is the brute-force cross-check of
// the windowed observer routing: for tiny random streams and random
// windows, every per-segment product of one fused RunWindowed pass is
// recomputed by the naive slice path — materialise the segment's
// sub-stream, aggregate it into a series, run the layered reference
// sweep — and compared field by field.
func TestWindowedMatchesNaiveSliceSweep(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := tinyStream(t, rng)
		directed := rng.Intn(2) == 0
		t0, t1, _ := s.Span()

		// Random window set: the whole stream plus two random sub-windows
		// (possibly overlapping, never empty).
		type window struct{ start, end int64 }
		windows := []window{{0, 0}} // sentinel: whole stream
		for len(windows) < 3 {
			a := t0 + rng.Int63n(t1-t0+1)
			b := t0 + rng.Int63n(t1-t0+1)
			if a > b {
				a, b = b, a
			}
			b++ // half-open, non-empty window
			if len(s.SliceTime(a, b).Events()) == 0 {
				continue
			}
			windows = append(windows, window{a, b})
		}

		segments := make([]SegmentObserver, len(windows))
		probes := make([]*probe, len(windows))
		for i, w := range windows {
			// Grids differ per window to exercise per-segment routing.
			grid := []int64{1 + int64(i), 10 + int64(10*i), (t1 - t0 + 1)}
			probes[i] = newProbe(Needs{Trips: true, Occupancies: true, Distances: true, WindowStats: true})
			segments[i] = SegmentObserver{Start: w.start, End: w.end, Grid: grid, Observers: []Observer{probes[i]}}
		}
		workers := 1 + rng.Intn(4)
		inFlight := rng.Intn(3)
		if err := RunWindowed(context.Background(), s, Options{Directed: directed, Workers: workers, MaxInFlight: inFlight}, segments...); err != nil {
			t.Fatal(err)
		}

		for i, w := range windows {
			sub := s
			if w.start < w.end {
				sub = s.SliceTime(w.start, w.end)
			}
			cfg := temporal.Config{N: s.NumNodes(), Directed: directed, Workers: 1}
			for pi, delta := range segments[i].Grid {
				rp := probes[i].periods[pi]
				if rp == nil {
					t.Fatalf("seed %d window %d: period %d not observed", seed, i, pi)
				}
				g, err := series.Aggregate(sub, delta, directed)
				if err != nil {
					t.Fatal(err)
				}
				layers := temporal.SeriesLayers(g)
				if rp.numWindows != g.NumWindows {
					t.Fatalf("seed %d window %d delta %d: %d windows, naive has %d",
						seed, i, delta, rp.numWindows, g.NumWindows)
				}
				wantTrips := temporal.CollectTrips(cfg, layers)
				gotTrips := append([]temporal.Trip(nil), rp.trips...)
				sortTrips(wantTrips)
				sortTrips(gotTrips)
				if len(gotTrips) != len(wantTrips) {
					t.Fatalf("seed %d window %d delta %d: %d trips, naive finds %d",
						seed, i, delta, len(gotTrips), len(wantTrips))
				}
				for k := range wantTrips {
					if gotTrips[k] != wantTrips[k] {
						t.Fatalf("seed %d window %d delta %d trip %d: %+v != naive %+v",
							seed, i, delta, k, gotTrips[k], wantTrips[k])
					}
				}
				if wantOcc := temporal.Occupancies(cfg, layers); !sameFloatMultiset(rp.occ, wantOcc) {
					t.Fatalf("seed %d window %d delta %d: occupancy multiset mismatch", seed, i, delta)
				}
				if wantDist := temporal.Distances(cfg, layers, 0, 1); rp.distances != wantDist {
					t.Fatalf("seed %d window %d delta %d: distances %+v != naive %+v",
						seed, i, delta, rp.distances, wantDist)
				}
				wantStats, err := g.ComputeStats()
				if err != nil {
					t.Fatal(err)
				}
				if rp.windows != wantStats.MeanDensity {
					t.Fatalf("seed %d window %d delta %d: mean density %v != naive %v",
						seed, i, delta, rp.windows, wantStats.MeanDensity)
				}
			}
		}
	}
}

// TestWindowedViewsAndRouting pins the per-segment stream views: each
// segment's observer sees exactly its own grid and its own slice of the
// shared event buffer, anchored at the segment's first event.
func TestWindowedViewsAndRouting(t *testing.T) {
	s := seededStream(t, 8, 3, 4000, 11)
	segments := []SegmentObserver{
		{Grid: []int64{5, 50}},
		{Start: 0, End: 2000, Grid: []int64{7, 70, 700}},
		{Start: 2000, End: 4000, Grid: []int64{9}},
	}
	probes := make([]*probe, len(segments))
	for i := range segments {
		probes[i] = newProbe(Needs{Trips: true, StreamTrips: true})
		segments[i].Observers = []Observer{probes[i]}
	}
	ResetBuildStats()
	if err := RunWindowed(context.Background(), s, Options{Workers: 2}, segments...); err != nil {
		t.Fatal(err)
	}
	if runs := RunCount(); runs != 1 {
		t.Fatalf("RunCount = %d, want 1", runs)
	}
	wantBuilds := int64(0)
	for i, seg := range segments {
		wantBuilds += int64(len(seg.Grid))
		v := probes[i].view
		if len(v.Grid) != len(seg.Grid) {
			t.Fatalf("segment %d: view grid %v, want %v", i, v.Grid, seg.Grid)
		}
		for j := range seg.Grid {
			if v.Grid[j] != seg.Grid[j] {
				t.Fatalf("segment %d: view grid %v, want %v", i, v.Grid, seg.Grid)
			}
		}
		for pi, delta := range seg.Grid {
			if probes[i].periods[pi] == nil {
				t.Fatalf("segment %d: period %d not routed", i, pi)
			}
			if probes[i].periods[pi].delta != delta {
				t.Fatalf("segment %d period %d: delta %d, want %d", i, pi, probes[i].periods[pi].delta, delta)
			}
		}
		lo, hi := seg.Start, seg.End
		if !(seg.Start < seg.End) {
			lo, hi = 0, 4000
		}
		for _, e := range v.Events {
			if e.T < lo || e.T >= hi {
				t.Fatalf("segment %d: event at t=%d outside [%d, %d)", i, e.T, lo, hi)
			}
		}
		if v.T0 != v.Events[0].T || v.T1 != v.Events[len(v.Events)-1].T {
			t.Fatalf("segment %d: view T0/T1 %d/%d not anchored to its slice", i, v.T0, v.T1)
		}
		// Per-segment stream trips come from the segment's slice alone.
		subCSR := temporal.StreamCSR(s.SliceTime(lo, hi), false)
		wantStream := temporal.CollectTripsCSR(temporal.Config{N: s.NumNodes(), Workers: 1}, subCSR)
		if !sameTripMultiset(v.StreamTrips(), wantStream) {
			t.Fatalf("segment %d: stream trips not restricted to the window", i)
		}
	}
	if builds, _ := BuildStats(); builds != wantBuilds {
		t.Fatalf("built %d CSRs, want %d (each (segment, delta) exactly once)", builds, wantBuilds)
	}
}

// TestWindowedErrors covers the windowed validation paths.
func TestWindowedErrors(t *testing.T) {
	s := seededStream(t, 4, 2, 100, 12)
	if err := RunWindowed(context.Background(), s, Options{}); err == nil {
		t.Fatal("no segments should error")
	}
	err := RunWindowed(context.Background(), s, Options{}, SegmentObserver{
		Start: 5000, End: 6000, Grid: []int64{10}, Observers: []Observer{newProbe(Needs{Trips: true})},
	})
	if err == nil || !strings.Contains(err.Error(), "no events") {
		t.Fatalf("empty window: err = %v", err)
	}
	err = RunWindowed(context.Background(), s, Options{}, SegmentObserver{Grid: []int64{10}})
	if err == nil || !strings.Contains(err.Error(), "no observers") {
		t.Fatalf("segment without observers: err = %v", err)
	}
	err = RunWindowed(context.Background(), s, Options{}, SegmentObserver{Grid: []int64{0}, Observers: []Observer{newProbe(Needs{})}})
	if err == nil {
		t.Fatal("non-positive delta should error")
	}
}
