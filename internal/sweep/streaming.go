package sweep

// This file implements the bounded streaming enumeration behind
// Needs.StreamTripRuns: the raw stream's minimal trips are produced by
// the blocked lane sweep, parallel over destination blocks, and
// delivered to consumers as per-destination runs in strictly increasing
// destination order — the same order the eager collection concatenates —
// without ever materialising the flat trip slice. Blocks that complete
// ahead of the delivery cursor wait in a reorder window bounded by
// Options.MaxInFlight, so peak trip residency scales with the in-flight
// runs, not with the stream's total trip population.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/temporal"
)

// streamTripRuns sweeps every destination block of the raw-stream CSR
// and hands each destination's run to deliver, in increasing
// destination order (empty runs are skipped). Delivery is serialised;
// run memory is recycled as soon as deliver returns. The first deliver
// error — or ctx.Err() once ctx is cancelled — stops the enumeration
// and is returned; cancelled enumerations still recycle every lane and
// join every worker before returning.
func streamTripRuns(ctx context.Context, c *temporal.CSR, n int, opt Options, deliver func(dest int32, run []temporal.Trip) error) error {
	blocks := temporal.DestBlocks(n)
	inFlight := opt.MaxInFlight
	if inFlight <= 0 {
		inFlight = DefaultMaxInFlight
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}
	// Workers beyond the reorder window would only queue on it.
	if workers > inFlight {
		workers = inFlight
	}
	if workers < 1 {
		workers = 1
	}

	deliverBlock := func(b int, lanes [][]temporal.Trip) error {
		for l, run := range lanes {
			d := b*temporal.LanesPerBlock + l
			if d >= n {
				break
			}
			if len(run) == 0 {
				continue
			}
			if err := deliver(int32(d), run); err != nil {
				return err
			}
		}
		temporal.RecycleTrips(lanes...)
		return nil
	}

	if workers == 1 {
		// Sequential: sweep, deliver, recycle — one block resident.
		wk := temporal.NewWorker(n)
		defer wk.Release()
		for b := 0; b < blocks; b++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lanes := wk.SweepFullBlock(c, opt.Directed, b, true, false, nil)
			if err := deliverBlock(b, lanes[:]); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu      sync.Mutex
		ready   = make([][temporal.LanesPerBlock][]temporal.Trip, blocks)
		has     = make([]bool, blocks)
		cursor  int
		sem     = make(chan struct{}, inFlight)
		next    atomic.Int64
		aborted atomic.Bool
		errMu   sync.Mutex
		first   error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
		aborted.Store(true)
	}
	// drain advances the delivery cursor over the completed contiguous
	// prefix; called under mu. After an abort it keeps advancing —
	// recycling, not delivering — so blocked producers always regain
	// their semaphore slots.
	drain := func() {
		for cursor < blocks && has[cursor] {
			lanes := ready[cursor]
			ready[cursor] = [temporal.LanesPerBlock][]temporal.Trip{}
			if aborted.Load() {
				temporal.RecycleTrips(lanes[:]...)
			} else if err := deliverBlock(cursor, lanes[:]); err != nil {
				fail(err)
			}
			cursor++
			<-sem
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := temporal.NewWorker(n)
			defer wk.Release()
			for {
				if aborted.Load() {
					// Stop claiming; blocks already claimed have been
					// (or will be) stored, so drain never stalls.
					return
				}
				// Acquire the reorder slot before claiming a block, so
				// every claimed block's producer already owns a slot and
				// the delivery cursor can never starve behind a claimant
				// waiting on the window. A cancelled ctx aborts instead
				// of waiting: blocks this producer never claimed need no
				// slot, and drain keeps advancing over claimed ones.
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
				b := int(next.Add(1) - 1)
				if b >= blocks {
					<-sem
					return
				}
				var lanes [temporal.LanesPerBlock][]temporal.Trip
				if !aborted.Load() {
					lanes = wk.SweepFullBlock(c, opt.Directed, b, true, false, nil)
				}
				mu.Lock()
				ready[b] = lanes
				has[b] = true
				drain()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return first
}
