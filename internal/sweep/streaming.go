package sweep

// This file implements the bounded streaming enumeration behind
// Needs.StreamTripRuns: the raw stream's minimal trips are produced by
// the blocked lane sweep, parallel over destination blocks, and
// delivered to consumers as per-destination runs in strictly increasing
// destination order — the same order the eager collection concatenates —
// without ever materialising the flat trip slice. Blocks that complete
// ahead of the delivery cursor wait in a reorder window bounded by
// Options.MaxInFlight, so peak trip residency scales with the in-flight
// runs, not with the stream's total trip population.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/temporal"
)

// streamTripRuns sweeps every destination block of the raw-stream CSR
// and hands each destination's run to deliver, in increasing
// destination order (empty runs are skipped). Delivery is serialised;
// run memory is recycled as soon as deliver returns. The first deliver
// error — or ctx.Err() once ctx is cancelled — stops the enumeration
// and is returned; cancelled enumerations still recycle every lane and
// join every worker before returning.
func streamTripRuns(ctx context.Context, c *temporal.CSR, n int, opt Options, deliver func(dest int32, run []temporal.Trip) error) error {
	width := temporal.ResolveLaneWidth(opt.LaneWidth)
	blocks := temporal.DestBlocksFor(n, width)
	inFlight := opt.MaxInFlight
	if inFlight <= 0 {
		inFlight = DefaultMaxInFlight
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}
	// Workers beyond the reorder window would only queue on it.
	if workers > inFlight {
		workers = inFlight
	}
	if workers < 1 {
		workers = 1
	}

	deliverBlock := func(b int, lanes [][]temporal.Trip) error {
		for l, run := range lanes {
			d := b*width + l
			if d >= n {
				break
			}
			if len(run) == 0 {
				continue
			}
			if err := deliver(int32(d), run); err != nil {
				return err
			}
		}
		temporal.RecycleTrips(lanes...)
		return nil
	}

	if workers == 1 {
		// Sequential: sweep, deliver, recycle — one block resident.
		wk := temporal.NewWorkerWidth(n, width)
		defer wk.Release()
		lanes := make([][]temporal.Trip, width)
		for b := 0; b < blocks; b++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			wk.SweepFullBlock(c, opt.Directed, b, true, false, nil, lanes)
			if err := deliverBlock(b, lanes); err != nil {
				return err
			}
			clear(lanes)
		}
		return nil
	}

	var (
		mu      sync.Mutex
		ready   = make([][][]temporal.Trip, blocks)
		cursor  int
		sem     = make(chan struct{}, inFlight)
		next    atomic.Int64
		aborted atomic.Bool
		errMu   sync.Mutex
		first   error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
		aborted.Store(true)
	}
	// drain advances the delivery cursor over the completed contiguous
	// prefix; called under mu. After an abort it keeps advancing —
	// recycling, not delivering — so blocked producers always regain
	// their semaphore slots.
	drain := func() {
		for cursor < blocks && ready[cursor] != nil {
			lanes := ready[cursor]
			ready[cursor] = nil
			if aborted.Load() {
				temporal.RecycleTrips(lanes...)
			} else if err := deliverBlock(cursor, lanes); err != nil {
				fail(err)
			}
			cursor++
			<-sem
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := temporal.NewWorkerWidth(n, width)
			defer wk.Release()
			for {
				if aborted.Load() {
					// Stop claiming; blocks already claimed have been
					// (or will be) stored, so drain never stalls.
					return
				}
				// Acquire the reorder slot before claiming a block, so
				// every claimed block's producer already owns a slot and
				// the delivery cursor can never starve behind a claimant
				// waiting on the window. A cancelled ctx aborts instead
				// of waiting: blocks this producer never claimed need no
				// slot, and drain keeps advancing over claimed ones.
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
				b := int(next.Add(1) - 1)
				if b >= blocks {
					<-sem
					return
				}
				// Each claimed block gets its own lane table: the sweep's
				// out slices park in the reorder window until the cursor
				// reaches them, so worker scratch cannot be shared.
				lanes := make([][]temporal.Trip, width)
				if !aborted.Load() {
					wk.SweepFullBlock(c, opt.Directed, b, true, false, nil, lanes)
				}
				mu.Lock()
				ready[b] = lanes
				drain()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return first
}
