// Package sweep implements the unified observer-based sweep engine:
// the one loop every per-∆ analysis of the paper shares. A sweep sorts
// and canonicalises the link stream exactly once, builds each candidate
// period's CSR layer arena exactly once, runs the backward temporal-path
// sweep over it exactly once, and fans the products of that single pass
// — minimal trips, occupancy rates, distance segments, per-window
// snapshot statistics and the raw stream's minimal trips — out to
// registered Observers. The occupancy method (core), the classical
// Figure 2 properties (classic), the Section 8 validation curves
// (validate) and the Figure 2 distance curves (DistanceObserver) are
// all observers of the same engine run, so computing every metric costs
// one pass over the stream instead of one pass per metric.
//
// Period scheduling is a bounded in-flight pipeline: at most
// Options.MaxInFlight periods have their CSR arena and product sinks
// resident at any moment. A period's arena is built, swept by the
// shared worker pool, scored by every observer and freed before the
// (MaxInFlight+1)-th following period starts, so peak memory is
// O(MaxInFlight × period footprint) instead of O(grid × period
// footprint) — the property that lets wide ∆ grids run over very large
// streams.
//
// Observer registration is windowed (see SegmentObserver and
// RunWindowed): one engine pass can serve several time windows of the
// stream at once, each with its own candidate grid and observer set,
// all sharing the sorted canonical event buffer, the worker pool and
// the in-flight bound. Run is the single-window special case.
package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/temporal"
)

// ErrNoEvents is returned when the stream has no event to analyse.
var ErrNoEvents = errors.New("sweep: stream has no events")

// DefaultMaxInFlight is the number of periods kept resident when
// Options.MaxInFlight is unset: enough to overlap one period's arena
// construction with the sweeps of the previous ones without ever
// holding a whole grid in memory.
const DefaultMaxInFlight = 4

// Options configures an engine run.
type Options struct {
	// Directed preserves link orientation in layers and paths.
	Directed bool
	// Workers bounds engine parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// MaxInFlight bounds how many periods may be resident (CSR arena
	// plus product sinks) at once; <= 0 selects DefaultMaxInFlight.
	// 1 fully serialises periods with minimal memory; values >= 2
	// overlap one period's construction and scoring with the sweeps of
	// the others.
	MaxInFlight int
	// HistogramBins, when positive, streams occupancies into fixed-bin
	// per-period histograms instead of exact value multisets: observers
	// receive Period.Histogram instead of Period.Occupancies, and the
	// engine never holds a period's full occupancy population.
	HistogramBins int
	// LaneWidth selects the blocked sweep's lane width — how many
	// destinations each pass over a period's layers relaxes at once: 0
	// (the default) picks the architecture's width heuristic
	// (temporal.DefaultLaneWidth), 4 and 8 force a compiled kernel.
	// Every width produces bit-identical per-destination results; wider
	// lanes amortise the edge stream over more destinations at the cost
	// of a larger per-worker state footprint. The width is resolved once
	// per run and shared by every worker — block indices are
	// width-relative.
	LaneWidth int
	// Progress, when non-nil, receives one ProgressEvent per engine
	// milestone: the run preparing its job plan, each raw-stream trip
	// enumeration, and every (segment, ∆) period delivered to its
	// observers. Calls are serialised — the callback never runs
	// concurrently with itself — but it executes on engine goroutines,
	// so it must be fast and must not call back into the engine.
	Progress func(ProgressEvent)
	// Stats, when non-nil, accumulates this run's engine counters: each
	// pass adds its builds, dedup hits, stream enumerations and observed
	// periods, and raises MaxResident to its own high-water mark.
	// Unlike the package-level BuildStats counters it is per-run, so
	// concurrent runs do not bleed into each other's numbers.
	Stats *RunStats
}

// ValidLaneWidth reports whether w is an acceptable Options.LaneWidth
// value: 0 (auto), 4 or 8.
func ValidLaneWidth(w int) bool { return temporal.ValidLaneWidth(w) }

// DefaultLaneWidth returns the lane width a zero Options.LaneWidth
// resolves to on this architecture.
func DefaultLaneWidth() int { return temporal.DefaultLaneWidth() }

// Stage identifies what a ProgressEvent reports.
type Stage uint8

const (
	// StagePlanned: the stream is sorted and canonicalised and the run's
	// period jobs are planned; PeriodsTotal is known from here on.
	StagePlanned Stage = iota
	// StageStreamTrips: one raw-stream trip enumeration completed.
	StageStreamTrips
	// StagePeriod: one (segment, ∆) period was scored by every observer
	// that requested it; Delta identifies the period.
	StagePeriod
)

// stageNames are the Stage wire names, the ones the serving codec and
// SSE progress streams carry; UnmarshalJSON accepts exactly these.
var stageNames = [...]string{"planned", "stream-trips", "period"}

// String returns the stage's wire name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// MarshalJSON encodes the stage as its wire name, so serialised
// progress events read "period" rather than an enum ordinal and the
// ordinals can be reordered without breaking consumers.
func (s Stage) MarshalJSON() ([]byte, error) {
	if int(s) >= len(stageNames) {
		return nil, fmt.Errorf("sweep: stage: unknown stage %d", uint8(s))
	}
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a stage wire name.
func (s *Stage) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return fmt.Errorf("sweep: stage: %w", err)
	}
	for i, n := range stageNames {
		if n == name {
			*s = Stage(i)
			return nil
		}
	}
	return fmt.Errorf("sweep: stage: unknown stage %q (want %s)", name, strings.Join(stageNames[:], ", "))
}

// ProgressEvent is one milestone of an engine run, delivered through
// Options.Progress. Counter fields are this run's running totals (not
// the package-level counters), so a consumer can render completion
// without any engine query. The json tags are the wire contract of the
// serving layer's SSE progress stream (internal/serve).
type ProgressEvent struct {
	// Pass is filled by multi-pass drivers (a bisection runs one engine
	// pass per refinement round); a single Run leaves it 0.
	Pass int `json:"pass"`
	// Stage identifies the milestone; Delta is set for StagePeriod.
	Stage Stage `json:"stage"`
	Delta int64 `json:"delta,omitempty"`
	// PeriodsDone / PeriodsTotal count (segment, ∆) periods delivered to
	// their observers, out of all the run will deliver.
	PeriodsDone  int `json:"periods_done"`
	PeriodsTotal int `json:"periods_total"`
	// Builds, Dedups and StreamBuilds mirror RunStats for this run so
	// far.
	Builds       int64 `json:"builds"`
	Dedups       int64 `json:"dedups"`
	StreamBuilds int64 `json:"stream_builds"`
}

// RunStats aggregates the engine instrumentation of one or more runs
// (see Options.Stats): how many period CSR arenas were built, how many
// coinciding (window, ∆) jobs were deduplicated onto an existing build,
// how many raw-stream trip enumerations ran, how many (segment, ∆)
// periods were delivered to observers, the peak number of simultaneously
// resident periods, and how many engine passes contributed.
type RunStats struct {
	Passes       int64 `json:"passes"`
	Builds       int64 `json:"builds"`
	Dedups       int64 `json:"dedups"`
	StreamBuilds int64 `json:"stream_builds"`
	Periods      int64 `json:"periods"`
	MaxResident  int64 `json:"max_resident"`
	// SortSkips counts the passes whose event source was already in
	// engine order (a sorted columnar stream handed to RunSource), so
	// the sort/canonicalise pass was skipped. SortSkips == Passes means
	// every pass of the run took the pre-sorted fast path.
	SortSkips int64 `json:"sort_skips"`
	// Arena accounting of the size-classed CSR arena pool: how many of
	// this run's CSR builds were handed an arena, how many of those
	// reused a shelved arena of the same size class (the rest allocated
	// fresh), and how many arenas the run recycled back. Handed and
	// recycled must balance once a run completes — finished, failed or
	// cancelled; the engine's teardown paths guarantee it and the
	// cancellation tests assert it.
	ArenaHanded   int64 `json:"arena_handed"`
	ArenaReused   int64 `json:"arena_reused"`
	ArenaRecycled int64 `json:"arena_recycled"`
}

// Add folds another accumulator into s: counters sum, MaxResident
// takes the maximum.
func (s *RunStats) Add(o RunStats) {
	s.Passes += o.Passes
	s.SortSkips += o.SortSkips
	s.Builds += o.Builds
	s.Dedups += o.Dedups
	s.StreamBuilds += o.StreamBuilds
	s.Periods += o.Periods
	if o.MaxResident > s.MaxResident {
		s.MaxResident = o.MaxResident
	}
	s.ArenaHanded += o.ArenaHanded
	s.ArenaReused += o.ArenaReused
	s.ArenaRecycled += o.ArenaRecycled
}

// Needs declares which engine products an observer consumes. The
// engine computes the union of all observers' needs in a single sweep
// pass, so registering one more observer never adds another pass.
type Needs struct {
	// Trips requests Period.Trips, the minimal trips of G∆.
	Trips bool
	// Occupancies requests Period.Occupancies (or Period.Histogram in
	// histogram mode), the occupancy rates of the minimal trips.
	Occupancies bool
	// Distances requests Period.Distances, the Figure 2 mean distance
	// statistics.
	Distances bool
	// WindowStats requests Period.Windows, the per-snapshot classical
	// properties.
	WindowStats bool
	// StreamTrips requests StreamView.StreamTrips, the minimal trips of
	// the raw stream, collected eagerly into one flat slice before any
	// Begin. This is the retained eager path; observers that can score
	// trips incrementally should declare StreamTripRuns instead, which
	// never materialises the full trip population.
	StreamTrips bool
	// StreamTripRuns requests the streaming raw-stream trip pipeline:
	// the observer (which must implement TripRunObserver) receives the
	// stream's minimal trips as per-destination runs in strictly
	// increasing destination order, after Begin and before any period.
	// Runs are recycled as soon as every consumer has seen them, so at
	// most Options.MaxInFlight destination blocks of trips are resident
	// at once — O(in-flight runs), not O(total trips).
	StreamTripRuns bool
	// TripShards requests sharded per-period trip scoring: the observer
	// (which must implement ShardedTripObserver) gets a fresh TripShard
	// per period, fed one destination block of minimal trips at a time
	// on whichever worker swept the block. Unless some observer also
	// declares Trips, the period's trips are recycled block by block and
	// never held whole.
	TripShards bool
	// Snapshots requests Period.Graph, the period's layer arena itself:
	// each layer is one non-empty window's deduplicated edge set, in
	// window order. This is the lane the snapshot-metric observers
	// (internal/metrics) build on — the engine hands out the one CSR it
	// already built for the period, so requesting it adds no build and
	// no sweep. The arena is recycled when ObservePeriod returns;
	// observers must extract what they keep inside the call.
	Snapshots bool
	// EdgeWeights requests Period.EdgeWeights, the weighted-aggregation
	// lane: the contact count of every edge of the period's layer arena
	// (edge weight = number of stream events falling in the window, the
	// GraphTempo / pyTempNet AggregateNet semantics), aligned
	// index-for-index with the arena's edge order. Observers normally
	// declare Snapshots alongside it to receive the arena the weights
	// index into. Computed as one more task of the period's shared
	// build — never a second CSR construction.
	EdgeWeights bool
}

func (n Needs) union(o Needs) Needs {
	return Needs{
		Trips:          n.Trips || o.Trips,
		Occupancies:    n.Occupancies || o.Occupancies,
		Distances:      n.Distances || o.Distances,
		WindowStats:    n.WindowStats || o.WindowStats,
		StreamTrips:    n.StreamTrips || o.StreamTrips,
		StreamTripRuns: n.StreamTripRuns || o.StreamTripRuns,
		TripShards:     n.TripShards || o.TripShards,
		Snapshots:      n.Snapshots || o.Snapshots,
		EdgeWeights:    n.EdgeWeights || o.EdgeWeights,
	}
}

// perPeriod reports whether any per-period product requires building
// the period's CSR at all.
func (n Needs) perPeriod() bool {
	return n.Trips || n.Occupancies || n.Distances || n.WindowStats ||
		n.TripShards || n.Snapshots || n.EdgeWeights
}

// sweeps reports whether the backward temporal-path sweep must run.
func (n Needs) sweeps() bool {
	return n.Trips || n.Occupancies || n.Distances || n.TripShards
}

// StreamView is the stream-level context handed to Observer.Begin: the
// sorted (and, for undirected runs, canonicalised) event buffer shared
// by every period, the candidate grid, and — when requested — the
// minimal trips of the raw stream.
type StreamView struct {
	N        int
	Directed bool
	T0, T1   int64
	Grid     []int64
	// Events is sorted by time and canonicalised (U < V) for
	// undirected runs. Observers must not modify it.
	Events []linkstream.Event

	streamTrips []temporal.Trip
}

// StreamTrips returns the minimal trips of the raw stream (layer per
// distinct timestamp, raw timestamps as keys). It is non-nil only for
// runs whose observers declared Needs.StreamTrips.
func (v *StreamView) StreamTrips() []temporal.Trip { return v.streamTrips }

// Period is the per-period view handed to Observer.ObservePeriod. Only
// the products requested through Needs are populated; everything the
// period owns is released once every observer has seen it.
type Period struct {
	Index      int   // position in StreamView.Grid
	Delta      int64 // aggregation period
	T0         int64 // origin of the window partition
	NumWindows int64 // total number of windows, empty ones included

	// TripBlocks holds the minimal trips of G∆ (Dep and Arr are window
	// indices) as per-destination slices in destination order:
	// iterating the blocks in order and each block front to back visits
	// every trip in exactly the order consecutive single-destination
	// backward sweeps would emit them. The blocked layout is exposed
	// as-is so no trip is ever copied between the sweep and the
	// observers; use Trips to materialise one flat slice. Populated for
	// Needs.Trips.
	TripBlocks [][]temporal.Trip
	// OccupancyChunks holds the occupancy-rate multiset of the minimal
	// trips as a list of engine-owned value chunks (OccupancyCount
	// values overall), in unspecified order. Populated for
	// Needs.Occupancies in exact mode (Options.HistogramBins == 0).
	// The chunks are recycled when ObservePeriod returns — observers
	// must consume them inside the call (dist.NewSampleFromChunks does
	// exactly that).
	OccupancyChunks [][]float64
	// OccupancyCount is the total number of values in OccupancyChunks.
	OccupancyCount int
	// Histogram is the streamed occupancy histogram. Populated for
	// Needs.Occupancies in histogram mode.
	Histogram *dist.Histogram
	// Distances holds the mean temporal distances (dtime in window
	// counts, durPlus = 1). Populated for Needs.Distances.
	Distances temporal.DistanceStats
	// Windows holds the classical per-snapshot statistics. Populated
	// for Needs.WindowStats.
	Windows series.Stats
	// Graph is the period's layer arena: layer li is window key
	// Graph.Keys[li]'s deduplicated edge set (edge e of the layer is
	// Graph.Ends[2e], Graph.Ends[2e+1]), ascending by packed (U, V) key
	// within the layer; empty windows have no layer. Populated for
	// Needs.Snapshots. The arena is recycled when ObservePeriod
	// returns — observers must not retain it or anything it backs.
	Graph *temporal.CSR
	// EdgeWeights is the weighted aggregation of the period: entry e is
	// the number of stream events that window's edge e aggregates (its
	// contact count), indexed exactly like Graph's edge list — the
	// weight of Graph.Ends[2e], Graph.Ends[2e+1] is EdgeWeights[e], and
	// the weights of layer li are EdgeWeights[Graph.Off[li]:
	// Graph.Off[li+1]]. Populated for Needs.EdgeWeights; valid only
	// during the call, like Graph.
	EdgeWeights []int32
	// Shard is the receiving observer's own per-period TripShard, set
	// only while a ShardedTripObserver's ObservePeriod runs. Every
	// block has been observed by the time it is handed back.
	Shard TripShard
}

// Trips concatenates TripBlocks into one flat destination-ordered
// slice. It allocates; observers that only iterate should range over
// TripBlocks directly.
func (p *Period) Trips() []temporal.Trip {
	total := 0
	for _, blk := range p.TripBlocks {
		total += len(blk)
	}
	out := make([]temporal.Trip, 0, total)
	for _, blk := range p.TripBlocks {
		out = append(out, blk...)
	}
	return out
}

// Observer consumes the products of an engine run. Begin is called
// once, before any period; ObservePeriod is called exactly once per
// grid entry, possibly concurrently for different periods (an observer
// must only touch per-period state, e.g. write results[p.Index], or
// read state frozen in Begin).
type Observer interface {
	// Needs declares which products the observer consumes.
	Needs() Needs
	// Begin receives the stream-level view before any period runs.
	Begin(v *StreamView) error
	// ObservePeriod receives one period's products. The Period and
	// everything it references become invalid when the call returns;
	// observers must copy what they keep.
	ObservePeriod(p *Period) error
}

// TripRunObserver is the streaming consumer of the raw stream's minimal
// trips; observers declaring Needs.StreamTripRuns must implement it.
// The engine calls, in order: Begin, then ObserveTripRun once per
// destination with at least one trip (destinations strictly increasing,
// each run in the departure-descending order of the backward sweep —
// per (source, destination) pair, trips arrive in strictly decreasing
// departure order), then FinishTripRuns, and only then any
// ObservePeriod. A run's memory is recycled when the call returns;
// consumers keep what they score, never the slice.
type TripRunObserver interface {
	Observer
	ObserveTripRun(dest int32, run []temporal.Trip) error
	FinishTripRuns() error
}

// TripShard is the per-period state of a sharded trip observer: the
// engine feeds it one destination block of the period's minimal trips
// at a time, on whichever worker swept the block, so a huge trip
// population is scored in parallel without ever being held whole.
// ObserveTripBlock is called exactly once per block, concurrently for
// different blocks; lanes has one entry per lane of the run's blocked
// sweep (the lanesPerBlock passed to NewTripShard) and lane l holds
// destination block*lanesPerBlock+l's trips in the same
// departure-descending order a single-destination sweep would emit.
// Shards that accumulate floating-point sums should keep one partial
// per lane and fold them in lane order inside ObservePeriod — that
// makes the result bit-for-bit independent of worker count, scheduling
// and lane width.
type TripShard interface {
	ObserveTripBlock(block int, lanes [][]temporal.Trip) error
}

// ShardedTripObserver is an Observer whose per-period trip scan is
// sharded across the worker pool; observers declaring Needs.TripShards
// must implement it. NewTripShard is called once per period, before any
// of its blocks sweep, with the run's block count and resolved lane
// width (destinations per block); the shard then receives every block
// and is finally handed back through Period.Shard in ObservePeriod.
type ShardedTripObserver interface {
	Observer
	NewTripShard(delta int64, blocks, lanesPerBlock int) TripShard
}

// Engine instrumentation: periodBuilds counts period CSR constructions
// since the last ResetBuildStats; periodsAlive tracks the currently
// resident periods and maxAlive their high-water mark; engineRuns
// counts engine passes (Run / RunWindowed invocations that reach the
// sweep stage); periodDedups counts (window, ∆) jobs that joined an
// already-scheduled coinciding job instead of building their own CSR;
// streamBuilds counts raw-stream trip enumerations (one per distinct
// event window that requested stream trips); sortSkips counts engine
// passes whose source was already in engine order so the
// sort/canonicalise pass was skipped (pre-sorted columnar streams).
// Tests use these to assert the build-each-CSR-once,
// bounded-in-flight, one-pass-per-analysis, dedup and sort-skip
// guarantees.
var (
	periodBuilds atomic.Int64
	periodsAlive atomic.Int64
	maxAlive     atomic.Int64
	engineRuns   atomic.Int64
	periodDedups atomic.Int64
	streamBuilds atomic.Int64
	sortSkips    atomic.Int64
)

// ResetBuildStats zeroes the engine's build instrumentation.
func ResetBuildStats() {
	periodBuilds.Store(0)
	periodsAlive.Store(0)
	maxAlive.Store(0)
	engineRuns.Store(0)
	periodDedups.Store(0)
	streamBuilds.Store(0)
	sortSkips.Store(0)
}

// BuildStats returns how many period CSR arenas were built since the
// last ResetBuildStats and the maximum number simultaneously resident.
func BuildStats() (builds, maxInFlight int64) {
	return periodBuilds.Load(), maxAlive.Load()
}

// RunCount returns how many engine passes started since the last
// ResetBuildStats. A fused multi-segment analysis performs one pass no
// matter how many windows it serves; per-segment reference paths
// perform one per window.
func RunCount() int64 { return engineRuns.Load() }

// DedupCount returns how many (window, ∆) period jobs were served by a
// coinciding job's single CSR build instead of building their own,
// since the last ResetBuildStats. BuildStats().builds + DedupCount() is
// the total number of (segment, ∆) periods observed.
func DedupCount() int64 { return periodDedups.Load() }

// StreamBuildCount returns how many raw-stream trip enumerations ran
// since the last ResetBuildStats: one per distinct event window whose
// observers requested stream trips (eagerly or as runs), however many
// segments share that window.
func StreamBuildCount() int64 { return streamBuilds.Load() }

// SortSkipCount returns how many engine passes since the last
// ResetBuildStats consumed a pre-sorted source (RunSource over a
// sorted columnar stream) and therefore skipped the engine's
// sort/canonicalise pass entirely.
func SortSkipCount() int64 { return sortSkips.Load() }

// Run executes one engine pass over the whole stream: it validates the
// inputs, prepares the shared stream view (plus the raw-stream trips if
// any observer needs them), calls every observer's Begin, then
// pipelines the grid's periods through the bounded in-flight scheduler,
// fanning each period's products to every observer. The first error —
// from an observer, the engine itself, or ctx being cancelled — aborts
// the run and is returned. Run is the single-window special case of
// RunWindowed; see RunWindowed for the cancellation contract.
func Run(ctx context.Context, s *linkstream.Stream, grid []int64, opt Options, observers ...Observer) error {
	return RunWindowed(ctx, s, opt, SegmentObserver{Grid: grid, Observers: observers})
}

// statsBlock is the pseudo block index of a period's window-statistics
// task.
const statsBlock = -1

// weightsBlock is the pseudo block index of a period's edge-weight
// (weighted aggregation) task.
const weightsBlock = -2

// scope is the engine-internal state of one registered SegmentObserver:
// its window's slice of the shared event buffer wrapped in a
// StreamView, the union of its observers' needs, the slice bounds in
// the shared buffer (the dedup key of its periods), and whether its
// occupancy products stream into histograms.
type scope struct {
	seg      SegmentObserver
	needs    Needs
	v        *StreamView
	lo, hi   int // bounds of v.Events in the shared sorted buffer
	histMode bool
}

// jobTarget is one (scope, grid index) a period job serves.
type jobTarget struct {
	sc  *scope
	idx int
}

// specKey identifies coinciding period jobs: same event window of the
// shared buffer, same aggregation period.
type specKey struct {
	lo, hi int
	delta  int64
}

// jobSpec is one deduplicated period job: the targets whose (window, ∆)
// coincide, with the union of their needs. One CSR is built and swept
// for the spec; finalize fans its products to every target.
type jobSpec struct {
	delta    int64
	targets  []jobTarget
	needs    Needs
	histMode bool
}

// view returns the representative stream view of the spec (all targets
// share the same event slice, T0 and T1).
func (sp *jobSpec) view() *StreamView { return sp.targets[0].sc.v }

// job is one in-flight period: the spec that owns it, its arena, its
// product sinks and the completion accounting that decides when it can
// be finalised.
type job struct {
	spec       *jobSpec
	numWindows int64
	csr        *temporal.CSR

	// pending counts unfinished tasks; contrib counts workers holding
	// unflushed occupancy products for this job. The job finalises when
	// both reach zero; finalized arbitrates the single finaliser.
	pending   atomic.Int32
	contrib   atomic.Int32
	finalized atomic.Bool

	mu       sync.Mutex // guards chunks, occTotal, hist
	chunks   [][]float64
	occTotal int
	hist     *dist.Histogram

	blockTrips [][]temporal.Trip  // one slot per (block, lane), written lock-free
	sink       *temporal.DistSink // per-destination slots, written lock-free
	stats      series.Stats       // written by the stats task
	weights    []int32            // written by the weights task

	// shards flattens every target observer's TripShard for the block
	// fan-out; targetShards maps them back per (target, observer) for
	// finalize (nil rows/entries for non-sharded observers).
	shards       []TripShard
	targetShards [][]TripShard
}

type task struct {
	j     *job
	block int // destination block, or statsBlock
}

type engine struct {
	ctx     context.Context
	opt     Options
	scopes  []*scope
	specs   []*jobSpec
	n       int // node count, shared by every scope
	workers int
	width   int // resolved lane width of the blocked sweep
	blocks  int

	sem   chan struct{}
	tasks chan task
	wg    sync.WaitGroup

	aborted  atomic.Bool
	errMu    sync.Mutex
	firstErr error

	// Per-run instrumentation mirrored into Options.Stats and the
	// Progress events (the package-level counters aggregate across
	// concurrent runs and cannot serve either).
	runBuilds        atomic.Int64
	runAlive         atomic.Int64
	runMaxAlive      atomic.Int64
	runArenaHanded   atomic.Int64
	runArenaReused   atomic.Int64
	runArenaRecycled atomic.Int64
	periodsDone      atomic.Int64
	periodsTotal     int
	dedups           int64 // fixed before run starts
	streamBuilds     int64 // fixed before run starts

	progMu sync.Mutex
}

// buildCSRArena builds one period CSR through the size-classed arena
// pool, folding the hand into the run's arena accounting.
func (e *engine) buildCSRArena(events []linkstream.Event, t0, delta int64, scratch *temporal.CSRScratch) *temporal.CSR {
	c := temporal.BuildCSRArena(events, t0, delta, e.n, scratch)
	if c.ArenaBacked() {
		e.runArenaHanded.Add(1)
		if c.ArenaReused() {
			e.runArenaReused.Add(1)
		}
	}
	return c
}

// recycleCSR hands an arena-backed CSR back to the pool, counting it in
// the run's arena accounting; plain-built CSRs and nil are no-ops.
func (e *engine) recycleCSR(c *temporal.CSR) {
	if c != nil && c.ArenaBacked() {
		e.runArenaRecycled.Add(1)
	}
	temporal.RecycleCSR(c)
}

func (e *engine) fail(err error) {
	if err == nil {
		return
	}
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
	e.aborted.Store(true)
}

// emitStage delivers one serialised progress event for a non-period
// milestone (StagePlanned, StageStreamTrips).
func (e *engine) emitStage(stage Stage, delta int64) {
	if e.opt.Progress == nil {
		return
	}
	e.progMu.Lock()
	defer e.progMu.Unlock()
	e.opt.Progress(ProgressEvent{
		Stage:        stage,
		Delta:        delta,
		PeriodsDone:  int(e.periodsDone.Load()),
		PeriodsTotal: e.periodsTotal,
		Builds:       e.runBuilds.Load(),
		Dedups:       e.dedups,
		StreamBuilds: e.streamBuilds,
	})
}

// emitPeriods advances the per-run period counter by n and, when a
// progress hook is registered, delivers one serialised StagePeriod
// event for the batch.
func (e *engine) emitPeriods(n int, delta int64) {
	done := e.periodsDone.Add(int64(n))
	if e.opt.Progress == nil {
		return
	}
	e.progMu.Lock()
	defer e.progMu.Unlock()
	e.opt.Progress(ProgressEvent{
		Stage:        StagePeriod,
		Delta:        delta,
		PeriodsDone:  int(done),
		PeriodsTotal: e.periodsTotal,
		Builds:       e.runBuilds.Load(),
		Dedups:       e.dedups,
		StreamBuilds: e.streamBuilds,
	})
}

func (e *engine) run() error {
	// A cancellation watcher aborts the pipeline the moment ctx is
	// done, without any worker having to poll: workers and the producer
	// observe e.aborted on their next task or spec. The watcher is torn
	// down before run returns, so no goroutine outlives the pass.
	if e.ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-e.ctx.Done():
				e.fail(e.ctx.Err())
			case <-stop:
			}
		}()
	}
	for i := 0; i < e.workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	e.produce()
	e.wg.Wait()
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// produce observes the inline (stream-level only) scopes, then builds
// one CSR per deduplicated (window, ∆) spec — each exactly once, fanned
// to every target — and enqueues its tasks, blocking on the in-flight
// semaphore so no more than MaxInFlight periods are ever resident
// across all scopes.
func (e *engine) produce() {
	defer close(e.tasks)
	for _, sc := range e.scopes {
		if sc.needs.perPeriod() {
			continue
		}
		// Stream-level observers only: no CSR, no sweep — one cheap
		// sequential pass over the scope's grid.
		for i, delta := range sc.v.Grid {
			if e.aborted.Load() {
				return
			}
			p := &Period{Index: i, Delta: delta, T0: sc.v.T0, NumWindows: (sc.v.T1-sc.v.T0)/delta + 1}
			for _, o := range sc.seg.Observers {
				if err := o.ObservePeriod(p); err != nil {
					e.fail(err)
					return
				}
			}
			e.emitPeriods(1, delta)
		}
	}
	var scratch temporal.CSRScratch
	for _, sp := range e.specs {
		if e.aborted.Load() {
			return
		}
		// Acquire the in-flight slot or bail on cancellation: the slots
		// are released by finalize, which keeps running for already
		// admitted periods even after an abort, so this select never
		// deadlocks.
		select {
		case e.sem <- struct{}{}:
		case <-e.ctx.Done():
			e.fail(e.ctx.Err())
			return
		}
		if e.aborted.Load() {
			<-e.sem
			return
		}
		v := sp.view()
		j := &job{spec: sp, numWindows: (v.T1-v.T0)/sp.delta + 1}
		j.csr = e.buildCSRArena(v.Events, v.T0, sp.delta, &scratch)
		periodBuilds.Add(1)
		e.runBuilds.Add(1)
		runAlive := e.runAlive.Add(1)
		for {
			m := e.runMaxAlive.Load()
			if runAlive <= m || e.runMaxAlive.CompareAndSwap(m, runAlive) {
				break
			}
		}
		alive := periodsAlive.Add(1)
		for {
			m := maxAlive.Load()
			if alive <= m || maxAlive.CompareAndSwap(m, alive) {
				break
			}
		}
		ntasks := 0
		if sp.needs.sweeps() {
			ntasks += e.blocks
			if sp.needs.Trips {
				j.blockTrips = make([][]temporal.Trip, e.width*e.blocks)
			}
			if sp.needs.Distances {
				j.sink = temporal.NewDistSink(e.n, 0, 1)
			}
			if sp.histMode {
				j.hist = dist.NewHistogram(e.opt.HistogramBins)
			}
			if sp.needs.TripShards {
				for _, tgt := range sp.targets {
					var row []TripShard
					for _, o := range tgt.sc.seg.Observers {
						var sh TripShard
						if so, ok := o.(ShardedTripObserver); ok && o.Needs().TripShards {
							sh = so.NewTripShard(sp.delta, e.blocks, e.width)
							j.shards = append(j.shards, sh)
						}
						row = append(row, sh)
					}
					j.targetShards = append(j.targetShards, row)
				}
			}
		}
		if sp.needs.WindowStats {
			ntasks++
		}
		if sp.needs.EdgeWeights {
			ntasks++
		}
		if ntasks == 0 {
			// Snapshot-only specs (Needs.Snapshots without any sweep,
			// stats or weights product): the CSR just built is the
			// product, so finalize hands it to the observers right here.
			e.finalize(j)
			continue
		}
		j.pending.Store(int32(ntasks))
		if sp.needs.WindowStats {
			e.tasks <- task{j: j, block: statsBlock}
		}
		if sp.needs.EdgeWeights {
			e.tasks <- task{j: j, block: weightsBlock}
		}
		if sp.needs.sweeps() {
			for b := 0; b < e.blocks; b++ {
				e.tasks <- task{j: j, block: b}
			}
		}
	}
}

// worker drains the task channel with one pooled sweep context. The
// occupancy sink is worker-local and flushed into a job when the worker
// moves to a later period, would otherwise block on an empty channel,
// or exits — so in the steady state each worker flushes each period
// once, and a job never waits on a worker that is busy elsewhere.
func (e *engine) worker() {
	defer e.wg.Done()
	w := temporal.NewWorkerWidth(e.n, e.width)
	defer w.Release()
	// laneBuf receives shard-only trip lanes (recycled block by block);
	// jobs that keep their trips write straight into j.blockTrips.
	laneBuf := make([][]temporal.Trip, e.width)
	// wscratch is the worker's sort buffer for edge-weight tasks.
	var wscratch temporal.CSRScratch
	var localHist *dist.Histogram
	var cur *job // job the worker's occupancy sink holds data for

	flush := func() {
		if cur == nil {
			return
		}
		j := cur
		cur = nil
		chunks, total := w.TakeOccupancies()
		if total > 0 {
			if j.spec.histMode {
				if localHist == nil {
					localHist = dist.NewHistogram(e.opt.HistogramBins)
				}
				for _, ch := range chunks {
					localHist.AddAll(ch)
				}
				temporal.RecycleOccupancies(chunks)
				j.mu.Lock()
				j.hist.Merge(localHist)
				j.mu.Unlock()
				localHist.Reset()
			} else {
				j.mu.Lock()
				j.chunks = append(j.chunks, chunks...)
				j.occTotal += total
				j.mu.Unlock()
			}
		}
		j.contrib.Add(-1)
		e.maybeFinalize(j)
	}

	for {
		var t task
		select {
		case tt, ok := <-e.tasks:
			if !ok {
				flush()
				return
			}
			t = tt
		default:
			// Nothing ready: flush so no job waits on this worker's
			// sink, then block for more work.
			flush()
			tt, ok := <-e.tasks
			if !ok {
				return
			}
			t = tt
		}

		j := t.j
		if e.aborted.Load() {
			j.pending.Add(-1)
			e.maybeFinalize(j)
			continue
		}
		if t.block == statsBlock {
			j.stats = e.windowStats(j)
		} else if t.block == weightsBlock {
			v := j.spec.view()
			j.weights = temporal.EdgeWeightsCSR(v.Events, v.T0, j.spec.delta, j.csr, &wscratch)
		} else {
			needs := j.spec.needs
			if needs.Occupancies && cur != j {
				flush()
				cur = j
				j.contrib.Add(1)
			}
			wantTrips := needs.Trips || needs.TripShards
			if wantTrips || needs.Distances {
				// Jobs that keep their trips sweep straight into their
				// own lane table — no copy between sweep and observers;
				// shard-only jobs borrow the worker's lane buffer.
				lanes := laneBuf
				if needs.Trips {
					lanes = j.blockTrips[e.width*t.block : e.width*(t.block+1)]
				}
				w.SweepFullBlock(j.csr, e.opt.Directed, t.block,
					wantTrips, needs.Occupancies, j.sink, lanes)
				if len(j.shards) > 0 {
					// Sharded scoring runs right here, on the sweeping
					// worker, so a period's trip scans parallelise
					// across blocks like the sweeps themselves do.
					for _, sh := range j.shards {
						if err := sh.ObserveTripBlock(t.block, lanes); err != nil {
							e.fail(err)
							break
						}
					}
				}
				if wantTrips && !needs.Trips {
					// Shard-only trips: scored above, released block by
					// block — the period never holds its trips whole.
					temporal.RecycleTrips(laneBuf...)
					clear(laneBuf)
				}
			} else {
				// Pure occupancy: the blocked lane sweep.
				w.SweepOccupancyBlock(j.csr, e.opt.Directed, t.block)
			}
		}
		j.pending.Add(-1)
		e.maybeFinalize(j)
	}
}

func (e *engine) maybeFinalize(j *job) {
	if j.pending.Load() != 0 || j.contrib.Load() != 0 {
		return
	}
	if !j.finalized.CompareAndSwap(false, true) {
		return
	}
	e.finalize(j)
}

// finalize assembles the period view and hands it to every target
// scope's observers in registration order — the windowed routing: a
// period's products only ever reach the segments that requested it,
// and coinciding (window, ∆) targets share the one set of products —
// then releases everything the period held (arena, chunks, trips)
// before freeing the in-flight slot. It runs on whichever worker
// completed the period, so observer scoring overlaps other periods'
// sweeps.
func (e *engine) finalize(j *job) {
	defer func() {
		// Recycling lives here, on every exit path — a cancelled or
		// observer-failed period must hand its arena, pooled lane
		// buffers and occupancy chunks back exactly like a completed
		// one, or a mid-sweep abort leaks them from the pools for good.
		if j.chunks != nil && !j.spec.histMode {
			temporal.RecycleOccupancies(j.chunks)
		}
		if j.blockTrips != nil {
			temporal.RecycleTrips(j.blockTrips...)
		}
		e.recycleCSR(j.csr)
		j.csr = nil
		j.chunks = nil
		j.blockTrips = nil
		j.sink = nil
		j.hist = nil
		j.weights = nil
		j.shards = nil
		j.targetShards = nil
		periodsAlive.Add(-1)
		e.runAlive.Add(-1)
		<-e.sem
	}()
	if e.aborted.Load() {
		return
	}
	sp := j.spec
	var distStats temporal.DistanceStats
	if sp.needs.Distances {
		distStats = j.sink.Stats()
	}
	for ti, tgt := range sp.targets {
		sc := tgt.sc
		p := &Period{Index: tgt.idx, Delta: sp.delta, T0: sc.v.T0, NumWindows: j.numWindows}
		if sc.needs.Trips {
			p.TripBlocks = j.blockTrips
		}
		if sc.needs.Occupancies {
			if sc.histMode {
				p.Histogram = j.hist
			} else {
				p.OccupancyChunks = j.chunks
				p.OccupancyCount = j.occTotal
			}
		}
		if sc.needs.Distances {
			p.Distances = distStats
		}
		if sc.needs.WindowStats {
			p.Windows = j.stats
		}
		if sc.needs.Snapshots {
			p.Graph = j.csr
		}
		if sc.needs.EdgeWeights {
			p.EdgeWeights = j.weights
		}
		for oi, o := range sc.seg.Observers {
			p.Shard = nil
			if j.targetShards != nil {
				p.Shard = j.targetShards[ti][oi]
			}
			if err := o.ObservePeriod(p); err != nil {
				e.fail(err)
				return
			}
		}
	}
	e.emitPeriods(len(sp.targets), sp.delta)
}

// windowStats scores the classical per-snapshot properties straight off
// the period's CSR arena: each layer is exactly one non-empty window's
// already-deduplicated edge set, so neither a Series nor a
// snapshot.Graph is ever materialised — non-isolated counts and the
// largest component come from one stamped union-find over the layer's
// edges, with per-window values and accumulation order identical to
// series.ComputeStatsFromLayers. The bit-exact equivalence tests in
// classic (Curve vs CurveReference) pin the two implementations
// together; a change to either must keep them in lockstep.
func (e *engine) windowStats(j *job) series.Stats {
	c, n := j.csr, e.n
	st := series.Stats{Delta: j.spec.delta, NumWindows: j.numWindows, NonEmptyWindows: c.NumLayers()}
	if j.numWindows == 0 {
		return st
	}
	// Stamped union-find scratch: nodes are initialised lazily per
	// layer, so a layer costs O(its edges), not O(n).
	parent := make([]int32, n)
	size := make([]int32, n)
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	var sumDensity, sumDegree, sumNonIso, sumLCC float64
	for li := 0; li < c.NumLayers(); li++ {
		lo, hi := c.Off[li], c.Off[li+1]
		m := hi - lo
		st.TotalEdges += m
		if m > st.MaxSnapshotEdges {
			st.MaxSnapshotEdges = m
		}
		epoch := int32(li)
		nonIso := 0
		largest := int32(1)
		touch := func(x int32) int32 {
			if stamp[x] != epoch {
				stamp[x] = epoch
				parent[x] = x
				size[x] = 1
				nonIso++
			}
			return find(x)
		}
		for t := lo; t < hi; t++ {
			ru, rv := touch(c.Ends[2*t]), touch(c.Ends[2*t+1])
			if ru == rv {
				continue
			}
			if size[ru] < size[rv] {
				ru, rv = rv, ru
			}
			parent[rv] = ru
			size[ru] += size[rv]
			if size[ru] > largest {
				largest = size[ru]
			}
		}
		// Same per-window quantities, in the same accumulation order,
		// as snapshot.Graph's Density/NonIsolated/LargestComponent fed
		// through series.ComputeStatsFromLayers.
		if n >= 2 {
			pairs := float64(n) * float64(n-1)
			if e.opt.Directed {
				sumDensity += float64(m) / pairs
			} else {
				sumDensity += 2 * float64(m) / pairs
			}
		}
		if n > 0 {
			if e.opt.Directed {
				sumDegree += float64(m) / float64(n)
			} else {
				sumDegree += 2 * float64(m) / float64(n)
			}
		}
		sumNonIso += float64(nonIso)
		sumLCC += float64(largest)
	}
	// Empty windows contribute 0 to everything except the largest
	// component, which is 1 (a single isolated node) when N > 0.
	empty := float64(j.numWindows) - float64(c.NumLayers())
	if n > 0 {
		sumLCC += empty
	}
	k := float64(j.numWindows)
	st.MeanDensity = sumDensity / k
	st.MeanDegree = sumDegree / k
	st.MeanNonIsolated = sumNonIso / k
	st.MeanLargestComp = sumLCC / k
	st.MeanSnapshotEdges = float64(st.TotalEdges) / k
	return st
}
