package sweep

// Cancellation suite: Run/RunWindowed must honour context cancellation
// at every stage — before the stream is sorted, during the streaming
// trip enumeration, mid-sweep — exiting cleanly: ctx.Err() returned,
// no goroutine outliving the call, every pooled buffer recycled, and
// the results of periods whose observers already ran left untouched.

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/linkstream"
	"repro/internal/temporal"
)

// waitGoroutines waits for the goroutine count to fall back to the
// baseline captured before the engine ran; a stuck count is a leaked
// worker or watcher.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine count stuck above baseline %d:\n%s", baseline, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// assertLaneBalance asserts every pooled trip lane handed out since the
// last ResetTripLaneStats went back to the pool — the regression check
// for the mid-sweep-cancel buffer leak.
func assertLaneBalance(t *testing.T, stage string) {
	t.Helper()
	handed, recycled := temporal.TripLaneStats()
	if handed != recycled {
		t.Fatalf("%s: %d trip lanes handed out but %d recycled — pool leak", stage, handed, recycled)
	}
}

func TestRunPreCancelledReturnsBeforeSort(t *testing.T) {
	s := linkstream.New()
	s.EnsureNodes(3)
	// Deliberately out of order: a run that reaches s.Sort() would sort
	// the buffer in place.
	for _, e := range []struct{ u, v, t int64 }{{0, 1, 9}, {1, 2, 3}, {0, 2, 6}} {
		if err := s.AddID(int32(e.u), int32(e.v), e.t); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ResetBuildStats()
	err := Run(ctx, s, []int64{1, 2}, Options{}, newProbe(Needs{Occupancies: true}))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Sorted() {
		t.Fatal("pre-cancelled run must return before sorting the stream")
	}
	if got := RunCount(); got != 0 {
		t.Fatalf("RunCount = %d after pre-cancelled run, want 0 (no engine pass)", got)
	}
	if builds, _ := BuildStats(); builds != 0 {
		t.Fatalf("builds = %d after pre-cancelled run, want 0", builds)
	}
}

// cancellingObserver scores occupancies into its own grid slots and
// cancels the run after observing cancelAt periods.
type cancellingObserver struct {
	cancelAt int64
	cancel   context.CancelFunc
	seen     atomic.Int64

	mu     sync.Mutex
	sums   []float64 // occupancy sums, one per grid slot
	counts []int
	filled []bool
}

func (o *cancellingObserver) Needs() Needs { return Needs{Occupancies: true, Trips: true} }

func (o *cancellingObserver) Begin(v *StreamView) error {
	o.sums = make([]float64, len(v.Grid))
	o.counts = make([]int, len(v.Grid))
	o.filled = make([]bool, len(v.Grid))
	return nil
}

func (o *cancellingObserver) ObservePeriod(p *Period) error {
	// Chunk order is unspecified; sort values so the floating-point sum
	// is a deterministic fingerprint of the multiset.
	var values []float64
	for _, ch := range p.OccupancyChunks {
		values = append(values, ch...)
	}
	sort.Float64s(values)
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	n := len(values)
	o.mu.Lock()
	o.sums[p.Index] = sum
	o.counts[p.Index] = n
	o.filled[p.Index] = true
	o.mu.Unlock()
	if o.seen.Add(1) >= o.cancelAt && o.cancel != nil {
		o.cancel()
	}
	return nil
}

// TestCancelMidSweepWindowed cancels a multi-∆ windowed run at
// randomized points and asserts a clean exit: ctx.Err() surfaced, all
// goroutines joined, all pooled lanes recycled, and every period that
// was delivered before the cancel identical to the uncancelled run.
func TestCancelMidSweepWindowed(t *testing.T) {
	s := seededStream(t, 14, 4, 4_000, 77)
	grid := []int64{1, 3, 9, 27, 81, 243, 729, 2187}
	segments := func(global, win Observer) []SegmentObserver {
		return []SegmentObserver{
			{Grid: grid, Observers: []Observer{global}},
			{Start: 500, End: 3_500, Grid: grid[:6], Observers: []Observer{win}},
		}
	}

	// Reference run, uncancelled.
	refGlobal := &cancellingObserver{cancelAt: math.MaxInt64}
	refWin := &cancellingObserver{cancelAt: math.MaxInt64}
	if err := RunWindowed(context.Background(), s, Options{Workers: 4, MaxInFlight: 2}, segments(refGlobal, refWin)...); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(41))
	baseline := runtime.NumGoroutine()
	temporal.ResetTripLaneStats()
	for iter := 0; iter < 10; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		global := &cancellingObserver{cancelAt: int64(1 + rng.Intn(len(grid))), cancel: cancel}
		win := &cancellingObserver{cancelAt: math.MaxInt64, cancel: cancel}
		err := RunWindowed(ctx, s, Options{Workers: 1 + rng.Intn(4), MaxInFlight: 1 + rng.Intn(3)},
			segments(global, win)...)
		switch err {
		case context.Canceled:
			// The common case: the engine noticed the abort while work
			// remained.
		case nil:
			// A cancel that fires while the last periods are finalising
			// can lose the race with run completion; then every period
			// must have been delivered.
			for i, filled := range global.filled {
				if !filled {
					t.Fatalf("iter %d: nil error but period %d missing", iter, i)
				}
			}
		default:
			t.Fatalf("iter %d: err = %v, want context.Canceled or nil", iter, err)
		}
		// Completed periods must carry exactly the uncancelled results.
		for i, filled := range global.filled {
			if !filled {
				continue
			}
			if global.sums[i] != refGlobal.sums[i] || global.counts[i] != refGlobal.counts[i] {
				t.Fatalf("iter %d: completed period %d diverged after cancel: sum %v (ref %v), count %d (ref %d)",
					iter, i, global.sums[i], refGlobal.sums[i], global.counts[i], refGlobal.counts[i])
			}
		}
		for i, filled := range win.filled {
			if !filled {
				continue
			}
			if win.sums[i] != refWin.sums[i] || win.counts[i] != refWin.counts[i] {
				t.Fatalf("iter %d: completed window period %d diverged after cancel", iter, i)
			}
		}
		cancel()
	}
	waitGoroutines(t, baseline)
	assertLaneBalance(t, "mid-sweep cancel")
}

// cancellingRunObserver consumes the streaming trip pipeline and
// cancels after a few runs, exercising the reorder window's abort path.
type cancellingRunObserver struct {
	cancelAt int
	cancel   context.CancelFunc
	runs     int
	trips    int
}

func (o *cancellingRunObserver) Needs() Needs { return Needs{StreamTripRuns: true} }
func (o *cancellingRunObserver) Begin(v *StreamView) error {
	o.runs, o.trips = 0, 0
	return nil
}
func (o *cancellingRunObserver) ObserveTripRun(dest int32, run []temporal.Trip) error {
	o.runs++
	o.trips += len(run)
	if o.runs >= o.cancelAt && o.cancel != nil {
		o.cancel()
	}
	return nil
}
func (o *cancellingRunObserver) FinishTripRuns() error { return nil }
func (o *cancellingRunObserver) ObservePeriod(p *Period) error {
	return nil
}

func TestCancelDuringStreamingTripRuns(t *testing.T) {
	s := seededStream(t, 40, 3, 10_000, 9)
	grid := []int64{10, 100, 1000}
	baseline := runtime.NumGoroutine()
	temporal.ResetTripLaneStats()
	for _, workers := range []int{1, 4} {
		for _, cancelAt := range []int{1, 3, 7} {
			ctx, cancel := context.WithCancel(context.Background())
			obs := &cancellingRunObserver{cancelAt: cancelAt, cancel: cancel}
			err := Run(ctx, s, grid, Options{Workers: workers, MaxInFlight: 2}, obs)
			if err != context.Canceled {
				t.Fatalf("workers=%d cancelAt=%d: err = %v, want context.Canceled", workers, cancelAt, err)
			}
			if obs.runs < cancelAt {
				t.Fatalf("observer saw %d runs, want at least %d", obs.runs, cancelAt)
			}
			cancel()
		}
	}
	waitGoroutines(t, baseline)
	assertLaneBalance(t, "streaming cancel")
}

// TestObserverErrorRecyclesLanes pins the abort path for plain observer
// errors: a mid-sweep failure must recycle the pooled buffers exactly
// like a cancellation does.
func TestObserverErrorRecyclesLanes(t *testing.T) {
	s := seededStream(t, 14, 4, 4_000, 5)
	grid := []int64{1, 7, 49, 343, 2401}
	baseline := runtime.NumGoroutine()
	temporal.ResetTripLaneStats()
	for iter := 0; iter < 4; iter++ {
		obs := &failingObserver{probe: *newProbe(allNeeds()), failAt: iter}
		err := Run(context.Background(), s, grid, Options{Workers: 3, MaxInFlight: 2}, obs)
		if err == nil {
			t.Fatal("expected observer error")
		}
	}
	waitGoroutines(t, baseline)
	assertLaneBalance(t, "observer error")
}

// TestRunStatsAndProgress checks the per-run counters and the progress
// stream: stats must mirror the package counters for an isolated run,
// and progress events must be monotone and complete.
func TestRunStatsAndProgress(t *testing.T) {
	s := seededStream(t, 12, 4, 3_000, 3)
	grid := []int64{1, 10, 100, 1000}

	var stats RunStats
	var mu sync.Mutex
	var events []ProgressEvent
	opt := Options{
		Workers:     2,
		MaxInFlight: 2,
		Stats:       &stats,
		Progress: func(ev ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	probeObs := newProbe(Needs{Occupancies: true, Trips: true})
	loss := &cancellingRunObserver{cancelAt: math.MaxInt64} // streaming consumer, never cancels
	if err := Run(context.Background(), s, grid, opt, probeObs, loss); err != nil {
		t.Fatal(err)
	}
	if stats.Passes != 1 {
		t.Fatalf("Passes = %d, want 1", stats.Passes)
	}
	if stats.Builds != int64(len(grid)) {
		t.Fatalf("Builds = %d, want %d", stats.Builds, len(grid))
	}
	if stats.Periods != int64(len(grid)) {
		t.Fatalf("Periods = %d, want %d", stats.Periods, len(grid))
	}
	if stats.StreamBuilds != 1 {
		t.Fatalf("StreamBuilds = %d, want 1", stats.StreamBuilds)
	}
	if stats.MaxResident < 1 || stats.MaxResident > 2 {
		t.Fatalf("MaxResident = %d, want within [1, 2]", stats.MaxResident)
	}

	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	if events[0].Stage != StagePlanned {
		t.Fatalf("first event stage = %v, want StagePlanned", events[0].Stage)
	}
	sawStream := false
	periodsDone := 0
	for _, ev := range events {
		if ev.PeriodsTotal != len(grid) {
			t.Fatalf("PeriodsTotal = %d, want %d", ev.PeriodsTotal, len(grid))
		}
		switch ev.Stage {
		case StageStreamTrips:
			sawStream = true
		case StagePeriod:
			if ev.PeriodsDone <= periodsDone {
				t.Fatalf("PeriodsDone not strictly increasing: %d after %d", ev.PeriodsDone, periodsDone)
			}
			periodsDone = ev.PeriodsDone
		}
	}
	if !sawStream {
		t.Fatal("no StageStreamTrips event")
	}
	if periodsDone != len(grid) {
		t.Fatalf("final PeriodsDone = %d, want %d", periodsDone, len(grid))
	}
}

// errAfterCtx reports cancellation from its n-th Err() poll on, without
// a Done channel — it pins cancellation at an exact engine checkpoint.
type errAfterCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *errAfterCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// eagerStreamingObserver declares both trip registration modes, which
// makes the engine stash each group's eager lanes for streaming replay.
type eagerStreamingObserver struct{}

func (eagerStreamingObserver) Needs() Needs                                      { return Needs{StreamTrips: true, StreamTripRuns: true} }
func (eagerStreamingObserver) Begin(v *StreamView) error                         { return nil }
func (eagerStreamingObserver) ObservePeriod(p *Period) error                     { return nil }
func (eagerStreamingObserver) ObserveTripRun(d int32, run []temporal.Trip) error { return nil }
func (eagerStreamingObserver) FinishTripRuns() error                             { return nil }

// TestCancelBetweenStreamGroupsRecyclesReplayLanes pins the leak fixed
// in this PR: lanes kept for streaming replay by an earlier group must
// be recycled when the run is cancelled before a later group collects.
func TestCancelBetweenStreamGroupsRecyclesReplayLanes(t *testing.T) {
	s := seededStream(t, 12, 4, 4_000, 23)
	segs := []SegmentObserver{
		{Start: 0, End: 2_000, Grid: []int64{10}, Observers: []Observer{eagerStreamingObserver{}}},
		{Start: 2_000, End: 4_000, Grid: []int64{10}, Observers: []Observer{eagerStreamingObserver{}}},
	}
	temporal.ResetTripLaneStats()
	// Err() polls: one at entry, one atop each group's collection — the
	// third poll cancels after group 1 has stashed its replay lanes.
	ctx := &errAfterCtx{Context: context.Background(), after: 2}
	if err := RunWindowed(ctx, s, Options{}, segs...); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if handed, _ := temporal.TripLaneStats(); handed == 0 {
		t.Fatal("test did not exercise the replay-lane path: no lanes were handed out")
	}
	assertLaneBalance(t, "cancel between stream groups")
}
