package sweep

// Lane-width and arena-pool suite for the engine layer: every lane
// width drives the same observer results bit for bit, and every arena
// the engine is handed goes back to the pool — on success, failure and
// randomized mid-run cancellation alike.

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/temporal"
)

// assertArenaBalance asserts the package-level arena accounting since
// the last ResetArenaStats: handed and recycled must match, or the
// engine leaked its largest buffers.
func assertArenaBalance(t *testing.T, stage string) {
	t.Helper()
	handed, recycled, _ := temporal.ArenaStats()
	if handed != recycled {
		t.Fatalf("%s: %d arenas handed out but %d recycled — pool leak", stage, handed, recycled)
	}
}

// TestRunLaneWidthEquivalence pins the engine-level bit-exactness of
// the width knob: identical per-period occupancy fingerprints and
// identical destination-major trip streams for widths 0 (auto), 4
// and 8, across worker counts.
func TestRunLaneWidthEquivalence(t *testing.T) {
	s := seededStream(t, 13, 3, 4_000, 61)
	grid := []int64{3, 30, 300, 3000}

	type fingerprint struct {
		sums   []float64
		counts []int
		trips  []temporal.Trip
	}
	collect := func(width, workers int) fingerprint {
		t.Helper()
		occ := &cancellingObserver{cancelAt: math.MaxInt64}
		rec := &runRecorder{}
		err := Run(context.Background(), s, grid,
			Options{Workers: workers, MaxInFlight: 2, LaneWidth: width}, occ, rec)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint{sums: occ.sums, counts: occ.counts, trips: append([]temporal.Trip(nil), rec.flat...)}
	}

	ref := collect(4, 1)
	for _, width := range []int{0, 4, 8} {
		for _, workers := range []int{1, 4} {
			got := collect(width, workers)
			for i := range ref.sums {
				if got.sums[i] != ref.sums[i] || got.counts[i] != ref.counts[i] {
					t.Fatalf("width=%d workers=%d: period %d fingerprint %v/%d, want %v/%d",
						width, workers, i, got.sums[i], got.counts[i], ref.sums[i], ref.counts[i])
				}
			}
			if len(got.trips) != len(ref.trips) {
				t.Fatalf("width=%d workers=%d: %d stream trips, want %d", width, workers, len(got.trips), len(ref.trips))
			}
			for i := range ref.trips {
				if got.trips[i] != ref.trips[i] {
					t.Fatalf("width=%d workers=%d: stream trip %d = %+v, want %+v (destination-major order is width-invariant)",
						width, workers, i, got.trips[i], ref.trips[i])
				}
			}
		}
	}
}

// TestRunLaneWidthValidation rejects unsupported widths up front.
func TestRunLaneWidthValidation(t *testing.T) {
	s := seededStream(t, 5, 2, 200, 62)
	err := Run(context.Background(), s, []int64{10}, Options{LaneWidth: 3}, newProbe(Needs{Occupancies: true}))
	if err == nil || !strings.Contains(err.Error(), "lane width") {
		t.Fatalf("err = %v, want unsupported lane width", err)
	}
}

// TestArenaBalanceAfterRun checks the per-run arena counters of a
// completed run: every period build is arena-backed, hands and
// recycles balance, and repeat runs reuse shelved arenas.
func TestArenaBalanceAfterRun(t *testing.T) {
	s := seededStream(t, 10, 3, 3_000, 63)
	grid := []int64{5, 50, 500}
	temporal.ResetArenaStats()
	var last RunStats
	for iter := 0; iter < 3; iter++ {
		var stats RunStats
		err := Run(context.Background(), s, grid, Options{Workers: 2, MaxInFlight: 2, Stats: &stats},
			newProbe(Needs{Occupancies: true, Trips: true}))
		if err != nil {
			t.Fatal(err)
		}
		if stats.ArenaHanded == 0 {
			t.Fatal("run handed no arenas — period builds are not arena-backed")
		}
		if stats.ArenaHanded != stats.ArenaRecycled {
			t.Fatalf("iter %d: run handed %d arenas, recycled %d", iter, stats.ArenaHanded, stats.ArenaRecycled)
		}
		last = stats
	}
	// By the third identical run every class has shelved arenas from the
	// previous one: every hand must be a reuse.
	if last.ArenaReused != last.ArenaHanded {
		t.Fatalf("steady-state run reused %d of %d arenas", last.ArenaReused, last.ArenaHanded)
	}
	assertArenaBalance(t, "completed runs")
}

// TestArenaBalanceAfterCancel is the arena analogue of the mid-sweep
// cancellation lane check: randomized cancellation points across worker
// and in-flight mixes must never strand an arena.
func TestArenaBalanceAfterCancel(t *testing.T) {
	s := seededStream(t, 14, 4, 4_000, 64)
	grid := []int64{1, 3, 9, 27, 81, 243, 729, 2187}
	rng := rand.New(rand.NewSource(65))
	temporal.ResetArenaStats()
	for iter := 0; iter < 12; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		obs := &cancellingObserver{cancelAt: int64(1 + rng.Intn(len(grid))), cancel: cancel}
		var stats RunStats
		err := Run(ctx, s, grid,
			Options{Workers: 1 + rng.Intn(4), MaxInFlight: 1 + rng.Intn(3), Stats: &stats}, obs)
		if err != nil && err != context.Canceled {
			t.Fatalf("iter %d: err = %v", iter, err)
		}
		if stats.ArenaHanded != stats.ArenaRecycled {
			t.Fatalf("iter %d: cancelled run handed %d arenas, recycled %d", iter, stats.ArenaHanded, stats.ArenaRecycled)
		}
		cancel()
	}
	assertArenaBalance(t, "randomized cancel")
}

// TestArenaBalanceAfterObserverError covers the failure teardown path.
func TestArenaBalanceAfterObserverError(t *testing.T) {
	s := seededStream(t, 12, 3, 3_000, 66)
	grid := []int64{1, 7, 49, 343}
	temporal.ResetArenaStats()
	for iter := 0; iter < 4; iter++ {
		var stats RunStats
		obs := &failingObserver{probe: *newProbe(allNeeds()), failAt: iter}
		err := Run(context.Background(), s, grid, Options{Workers: 3, MaxInFlight: 2, Stats: &stats}, obs)
		if err == nil {
			t.Fatal("expected observer error")
		}
		if stats.ArenaHanded != stats.ArenaRecycled {
			t.Fatalf("iter %d: failed run handed %d arenas, recycled %d", iter, stats.ArenaHanded, stats.ArenaRecycled)
		}
	}
	assertArenaBalance(t, "observer error")
}
