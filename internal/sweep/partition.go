package sweep

// PartitionGrid splits a candidate-period grid into at most parts
// contiguous, order-preserving chunks of near-equal size — the job
// partitioner of the distributed coordinator. Concatenating the chunks
// in order reproduces grid exactly, which is what lets a coordinator
// fold per-chunk observer points back into the grid-order slice a
// single pass would have produced: every observer scores points[p.Index]
// independently per ∆, so a chunk's points are literally a subslice of
// the full pass's.
//
// Chunks alias grid (no copy); they are never empty, so fewer than
// parts chunks come back when the grid is shorter than parts.
func PartitionGrid(grid []int64, parts int) [][]int64 {
	if len(grid) == 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > len(grid) {
		parts = len(grid)
	}
	out := make([][]int64, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * len(grid) / parts
		hi := (i + 1) * len(grid) / parts
		if lo < hi {
			out = append(out, grid[lo:hi:hi])
		}
	}
	return out
}
