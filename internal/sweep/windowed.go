package sweep

// This file implements windowed observer registration: one engine pass
// over the stream can serve several time windows ("segments") at once,
// each with its own candidate grid and observer set. The engine sorts
// and canonicalises the event buffer exactly once, slices it per
// segment by binary search (zero-copy sub-slices of the shared buffer),
// and pipelines every (segment, ∆) period through the one bounded
// in-flight scheduler and worker pool; finalize routes each period's
// products to the owning segment's observers. This is what lets the
// adaptive multi-segment analysis (internal/adaptive) run the global
// sweep and every per-segment sweep in a single engine pass instead of
// one core.SaturationScale pass per segment.

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/linkstream"
	"repro/internal/temporal"
)

// SegmentObserver scopes a set of observers to one time window of the
// stream with its own candidate grid — the unit of windowed observer
// registration. Registered with RunWindowed, its observers see exactly
// the analysis they would see from Run on the window's sub-stream: the
// StreamView handed to Begin holds the window's slice of the shared
// sorted canonical event buffer (T0/T1 are the slice's first and last
// event times, so window partitions anchor at the segment's own first
// event), and every ObservePeriod receives products computed from that
// slice alone. Periods are routed to the owning segment by period
// interval: a (segment, ∆) period's products reach only the segment
// that requested it.
type SegmentObserver struct {
	// Start, End bound the segment's events to the raw-time window
	// [Start, End). Start >= End — e.g. the zero value — selects the
	// whole stream.
	Start, End int64
	// Grid is the segment's candidate aggregation periods.
	Grid []int64
	// Observers receive the segment's stream view and period products.
	Observers []Observer
}

// windowed reports whether the segment restricts the stream at all.
func (seg SegmentObserver) windowed() bool { return seg.Start < seg.End }

// RunWindowed executes one engine pass serving every registered
// segment: the stream is sorted and canonicalised once, each
// (segment, ∆) CSR arena is built and swept exactly once, and at most
// Options.MaxInFlight periods are resident at any moment across all
// segments. Each segment's observers receive exactly what a Run over
// the segment's sub-stream would hand them (bit for bit — the
// engine-products brute-force tests pin this), so fusing N windowed
// sweeps into one pass never changes any result, only the number of
// passes over the stream. The first error aborts the run.
func RunWindowed(s *linkstream.Stream, opt Options, segments ...SegmentObserver) error {
	if s.NumEvents() == 0 {
		return ErrNoEvents
	}
	if len(segments) == 0 {
		return errors.New("sweep: no segments registered")
	}
	for _, seg := range segments {
		if len(seg.Grid) == 0 {
			return errors.New("sweep: empty candidate grid")
		}
		for _, delta := range seg.Grid {
			if delta <= 0 {
				return fmt.Errorf("sweep: non-positive aggregation period %d", delta)
			}
		}
		if len(seg.Observers) == 0 {
			return errors.New("sweep: no observers registered")
		}
	}

	s.Sort()
	events := s.Events()
	if !opt.Directed {
		events = linkstream.Canonical(events)
	}
	engineRuns.Add(1)

	scopes := make([]*scope, 0, len(segments))
	var scratch temporal.CSRScratch
	for _, seg := range segments {
		sub := events
		if seg.windowed() {
			sub = linkstream.WindowEvents(events, seg.Start, seg.End)
		}
		if len(sub) == 0 {
			return fmt.Errorf("sweep: segment [%d, %d) has no events", seg.Start, seg.End)
		}
		var needs Needs
		for _, o := range seg.Observers {
			needs = needs.union(o.Needs())
		}
		v := &StreamView{
			N:        s.NumNodes(),
			Directed: opt.Directed,
			T0:       sub[0].T,
			T1:       sub[len(sub)-1].T,
			Grid:     seg.Grid,
			Events:   sub,
		}
		if needs.StreamTrips {
			segCSR := temporal.BuildCSR(sub, 0, 1, &scratch)
			v.streamTrips = collectStreamTrips(segCSR, v.N, opt)
		}
		scopes = append(scopes, &scope{
			seg:      seg,
			needs:    needs,
			v:        v,
			histMode: opt.HistogramBins > 0 && needs.Occupancies,
		})
	}
	for _, sc := range scopes {
		for _, o := range sc.seg.Observers {
			if err := o.Begin(sc.v); err != nil {
				return err
			}
		}
	}

	anyPerPeriod := false
	for _, sc := range scopes {
		if sc.needs.perPeriod() {
			anyPerPeriod = true
			break
		}
	}
	if !anyPerPeriod {
		// Stream-level observers only: no CSR, no sweep, no workers.
		for _, sc := range scopes {
			for i, delta := range sc.v.Grid {
				p := &Period{Index: i, Delta: delta, T0: sc.v.T0, NumWindows: (sc.v.T1-sc.v.T0)/delta + 1}
				for _, o := range sc.seg.Observers {
					if err := o.ObservePeriod(p); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	e := &engine{opt: opt, scopes: scopes, n: s.NumNodes()}
	e.workers = opt.Workers
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.blocks = temporal.DestBlocks(e.n)
	maxInFlight := opt.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	e.sem = make(chan struct{}, maxInFlight)
	e.tasks = make(chan task, 2*e.workers)
	return e.run()
}
