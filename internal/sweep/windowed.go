package sweep

// This file implements windowed observer registration: one engine pass
// over the stream can serve several time windows ("segments") at once,
// each with its own candidate grid and observer set. The engine sorts
// and canonicalises the event buffer exactly once, slices it per
// segment by binary search (zero-copy sub-slices of the shared buffer),
// and pipelines every (segment, ∆) period through the one bounded
// in-flight scheduler and worker pool; finalize routes each period's
// products to the owning segment's observers. This is what lets the
// adaptive multi-segment analysis (internal/adaptive) run the global
// sweep and every per-segment sweep in a single engine pass instead of
// one core.SaturationScale pass per segment.
//
// Coinciding work is deduplicated at two levels. Segments whose event
// windows coincide share one raw-stream trip enumeration (one stream
// CSR, one blocked sweep, every consumer fed from it), and (window, ∆)
// period jobs that coincide across segments — e.g. a homogeneous
// stream's single activity segment versus the global scope — build one
// CSR and run one backward sweep whose products fan out to every
// requesting segment. DedupCount and StreamBuildCount instrument both.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/linkstream"
	"repro/internal/temporal"
)

// SegmentObserver scopes a set of observers to one time window of the
// stream with its own candidate grid — the unit of windowed observer
// registration. Registered with RunWindowed, its observers see exactly
// the analysis they would see from Run on the window's sub-stream: the
// StreamView handed to Begin holds the window's slice of the shared
// sorted canonical event buffer (T0/T1 are the slice's first and last
// event times, so window partitions anchor at the segment's own first
// event), and every ObservePeriod receives products computed from that
// slice alone. Periods are routed to the owning segment by period
// interval: a (segment, ∆) period's products reach only the segments
// that requested it.
type SegmentObserver struct {
	// Start, End bound the segment's events to the raw-time window
	// [Start, End). Start >= End — e.g. the zero value — selects the
	// whole stream.
	Start, End int64
	// Grid is the segment's candidate aggregation periods.
	Grid []int64
	// Observers receive the segment's stream view and period products.
	Observers []Observer
}

// windowed reports whether the segment restricts the stream at all.
func (seg SegmentObserver) windowed() bool { return seg.Start < seg.End }

// StreamSource abstracts where an engine pass's event buffer comes
// from: an in-memory *linkstream.Stream (sorted and canonicalised on
// demand) or a pre-sorted columnar view (*linkstream.Columnar) whose
// EngineEvents materialises only the requested time span — windowed
// passes over a mapped file touch only their span's pages — and skips
// the engine's sort pass entirely (SortSkipCount instruments this).
type StreamSource interface {
	NumNodes() int
	NumEvents() int
	// EngineEvents returns the events of [start, end) (start >= end
	// selects everything) in the engine's order — sorted by (T, U, V)
	// and, when canonical, with every pair oriented U < V. preSorted
	// reports that no sort work was performed because the source's
	// storage order already is the engine's order.
	EngineEvents(start, end int64, canonical bool) (events []linkstream.Event, preSorted bool, err error)
}

// streamGroup collects the scopes whose event windows coincide: they
// share one raw-stream trip enumeration. lanes caches the eager
// per-destination lanes when a member also needs the flat collection,
// so streaming consumers replay them instead of sweeping twice.
type streamGroup struct {
	lo, hi int
	scopes []*scope
	lanes  [][]temporal.Trip
}

// RunWindowed executes one engine pass serving every registered
// segment: the stream is sorted and canonicalised once, each distinct
// (window, ∆) CSR arena is built and swept exactly once — segments
// requesting the same window and period share the one build, see
// DedupCount — and at most Options.MaxInFlight periods are resident at
// any moment across all segments. Each segment's observers receive
// exactly what a Run over the segment's sub-stream would hand them (bit
// for bit — the engine-products brute-force tests pin this), so fusing
// N windowed sweeps into one pass never changes any result, only the
// number of passes over the stream. The first error aborts the run.
//
// Cancellation: an already-cancelled ctx returns ctx.Err() immediately,
// before the stream is sorted or canonicalised. A ctx cancelled
// mid-run aborts the pipeline at the next scheduling point — admitted
// periods drain, every pooled buffer (trip lanes, occupancy chunks) is
// recycled, the worker pool and the cancellation watcher exit before
// RunWindowed returns (no goroutine outlives the call), and the first
// error returned is ctx.Err(). Periods whose observers already ran
// keep their results; no partially scored period is ever delivered.
func RunWindowed(ctx context.Context, s *linkstream.Stream, opt Options, segments ...SegmentObserver) error {
	return RunSource(ctx, s, opt, segments...)
}

// RunSource is RunWindowed over any StreamSource. With an in-memory
// stream it is exactly RunWindowed; with a sorted columnar view the
// engine's sort/canonicalise pass is skipped (counted by
// SortSkipCount and RunStats.SortSkips) and only the hull of the
// registered segments' windows is ever materialised — the rest of the
// file is never read.
func RunSource(ctx context.Context, src StreamSource, opt Options, segments ...SegmentObserver) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if src.NumEvents() == 0 {
		return ErrNoEvents
	}
	if len(segments) == 0 {
		return errors.New("sweep: no segments registered")
	}
	for _, seg := range segments {
		if len(seg.Grid) == 0 {
			return errors.New("sweep: empty candidate grid")
		}
		for _, delta := range seg.Grid {
			if delta <= 0 {
				return fmt.Errorf("sweep: non-positive aggregation period %d", delta)
			}
		}
		if len(seg.Observers) == 0 {
			return errors.New("sweep: no observers registered")
		}
		for _, o := range seg.Observers {
			n := o.Needs()
			if n.StreamTripRuns {
				if _, ok := o.(TripRunObserver); !ok {
					return fmt.Errorf("sweep: observer %T declares Needs.StreamTripRuns but does not implement TripRunObserver", o)
				}
			}
			if n.TripShards {
				if _, ok := o.(ShardedTripObserver); !ok {
					return fmt.Errorf("sweep: observer %T declares Needs.TripShards but does not implement ShardedTripObserver", o)
				}
			}
		}
	}
	if !temporal.ValidLaneWidth(opt.LaneWidth) {
		return fmt.Errorf("sweep: unsupported lane width %d (want 0, 4 or 8)", opt.LaneWidth)
	}

	// Materialise only the hull of the registered windows: for a mapped
	// columnar source, events outside [min Start, max End) are never
	// read. Any whole-stream segment widens the hull to everything.
	var hullStart, hullEnd int64
	whole := false
	for i, seg := range segments {
		if !seg.windowed() {
			whole = true
			break
		}
		if i == 0 || seg.Start < hullStart {
			hullStart = seg.Start
		}
		if i == 0 || seg.End > hullEnd {
			hullEnd = seg.End
		}
	}
	if whole {
		hullStart, hullEnd = 0, 0
	}
	events, preSorted, err := src.EngineEvents(hullStart, hullEnd, !opt.Directed)
	if err != nil {
		return err
	}
	if preSorted {
		sortSkips.Add(1)
	}
	engineRuns.Add(1)
	n := src.NumNodes()

	e := &engine{ctx: ctx, opt: opt, n: n, width: temporal.ResolveLaneWidth(opt.LaneWidth)}
	if opt.Stats != nil {
		// Flush this run's counters into the caller's accumulator on
		// every exit path, cancelled and failed runs included — a
		// cancelled pass still reports the work it did.
		defer func() {
			st := opt.Stats
			st.Passes++
			if preSorted {
				st.SortSkips++
			}
			st.Builds += e.runBuilds.Load()
			st.Dedups += e.dedups
			st.StreamBuilds += e.streamBuilds
			st.Periods += e.periodsDone.Load()
			if m := e.runMaxAlive.Load(); m > st.MaxResident {
				st.MaxResident = m
			}
			st.ArenaHanded += e.runArenaHanded.Load()
			st.ArenaReused += e.runArenaReused.Load()
			st.ArenaRecycled += e.runArenaRecycled.Load()
		}()
	}

	scopes := make([]*scope, 0, len(segments))
	groups := make([]*streamGroup, 0, 1)
	groupAt := make(map[[2]int]*streamGroup)
	for _, seg := range segments {
		lo, hi := 0, len(events)
		if seg.windowed() {
			lo = sort.Search(len(events), func(i int) bool { return events[i].T >= seg.Start })
			hi = sort.Search(len(events), func(i int) bool { return events[i].T >= seg.End })
		}
		sub := events[lo:hi]
		if len(sub) == 0 {
			return fmt.Errorf("sweep: segment [%d, %d) has no events", seg.Start, seg.End)
		}
		var needs Needs
		for _, o := range seg.Observers {
			needs = needs.union(o.Needs())
		}
		sc := &scope{
			seg:   seg,
			needs: needs,
			lo:    lo,
			hi:    hi,
			v: &StreamView{
				N:        n,
				Directed: opt.Directed,
				T0:       sub[0].T,
				T1:       sub[len(sub)-1].T,
				Grid:     seg.Grid,
				Events:   sub,
			},
			histMode: opt.HistogramBins > 0 && needs.Occupancies,
		}
		scopes = append(scopes, sc)
		if needs.StreamTrips || needs.StreamTripRuns {
			g := groupAt[[2]int{lo, hi}]
			if g == nil {
				g = &streamGroup{lo: lo, hi: hi}
				groupAt[[2]int{lo, hi}] = g
				groups = append(groups, g)
			}
			g.scopes = append(g.scopes, sc)
		}
	}
	e.scopes = scopes
	for _, sc := range scopes {
		e.periodsTotal += len(sc.v.Grid)
	}
	e.emitStage(StagePlanned, 0)

	// Eager raw-stream trips (Needs.StreamTrips) are collected before
	// Begin — observers read StreamView.StreamTrips there — with one
	// enumeration per distinct window, shared by every scope of the
	// group. The lanes are kept when the group also has streaming
	// consumers, so the later run delivery replays them for free.
	cfg := temporal.Config{N: n, Directed: opt.Directed, Workers: opt.Workers, LaneWidth: opt.LaneWidth}
	var scratch temporal.CSRScratch
	// Pooled lanes kept for streaming replay (g.lanes) must go back to
	// the pool on every exit path — including a cancellation between
	// two groups' eager collections — so the recycling defer is
	// registered before the first group can stash lanes.
	defer func() {
		for _, g := range groups {
			if g.lanes != nil {
				temporal.RecycleTrips(g.lanes...)
				g.lanes = nil
			}
		}
	}()
	for _, g := range groups {
		if err := ctx.Err(); err != nil {
			return err
		}
		eager, streaming := false, false
		for _, sc := range g.scopes {
			eager = eager || sc.needs.StreamTrips
			streaming = streaming || sc.needs.StreamTripRuns
		}
		if !eager {
			continue
		}
		c := e.buildCSRArena(events[g.lo:g.hi], 0, 1, &scratch)
		streamBuilds.Add(1)
		e.streamBuilds++
		lanes := temporal.CollectTripLanes(cfg, c)
		e.recycleCSR(c)
		total := 0
		for _, l := range lanes {
			total += len(l)
		}
		flat := make([]temporal.Trip, 0, total)
		for _, l := range lanes {
			flat = append(flat, l...)
		}
		for _, sc := range g.scopes {
			if sc.needs.StreamTrips {
				sc.v.streamTrips = flat
			}
		}
		if streaming {
			g.lanes = lanes
		} else {
			temporal.RecycleTrips(lanes...)
		}
		e.emitStage(StageStreamTrips, 0)
	}

	for _, sc := range scopes {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, o := range sc.seg.Observers {
			if err := o.Begin(sc.v); err != nil {
				return err
			}
		}
	}

	// Streaming raw-stream trip runs (Needs.StreamTripRuns) are
	// delivered after Begin and before any period: per-destination runs
	// in strictly increasing destination order, recycled as soon as
	// every consumer of the group has seen them. Without an eager
	// collection to replay, the enumeration itself is streamed — at most
	// MaxInFlight destination blocks of trips are ever resident.
	for _, g := range groups {
		if err := ctx.Err(); err != nil {
			return err
		}
		var consumers []TripRunObserver
		for _, sc := range g.scopes {
			for _, o := range sc.seg.Observers {
				if o.Needs().StreamTripRuns {
					consumers = append(consumers, o.(TripRunObserver))
				}
			}
		}
		if len(consumers) == 0 {
			continue
		}
		deliver := func(dest int32, run []temporal.Trip) error {
			for _, c := range consumers {
				if err := c.ObserveTripRun(dest, run); err != nil {
					return err
				}
			}
			return nil
		}
		if g.lanes != nil {
			for d, run := range g.lanes {
				if len(run) == 0 {
					continue
				}
				if err := deliver(int32(d), run); err != nil {
					return err
				}
			}
			temporal.RecycleTrips(g.lanes...)
			g.lanes = nil
		} else {
			c := e.buildCSRArena(events[g.lo:g.hi], 0, 1, &scratch)
			streamBuilds.Add(1)
			e.streamBuilds++
			err := streamTripRuns(ctx, c, n, opt, deliver)
			e.recycleCSR(c)
			if err != nil {
				return err
			}
			e.emitStage(StageStreamTrips, 0)
		}
		for _, c := range consumers {
			if err := c.FinishTripRuns(); err != nil {
				return err
			}
		}
	}

	// Deduplicate coinciding (window, ∆) jobs: scopes sharing the same
	// event window and candidate period become targets of one job whose
	// needs are the union of theirs. Scopes without per-period needs are
	// observed inline by produce and never enter the pipeline.
	specs := make([]*jobSpec, 0)
	specAt := make(map[specKey]*jobSpec)
	for _, sc := range scopes {
		if !sc.needs.perPeriod() {
			continue
		}
		for i, delta := range sc.v.Grid {
			k := specKey{lo: sc.lo, hi: sc.hi, delta: delta}
			sp := specAt[k]
			if sp == nil {
				sp = &jobSpec{delta: delta}
				specAt[k] = sp
				specs = append(specs, sp)
			} else {
				periodDedups.Add(1)
				e.dedups++
			}
			sp.targets = append(sp.targets, jobTarget{sc: sc, idx: i})
			sp.needs = sp.needs.union(sc.needs)
		}
	}
	for _, sp := range specs {
		sp.histMode = opt.HistogramBins > 0 && sp.needs.Occupancies
	}

	if len(specs) == 0 {
		// Stream-level observers only: no CSR, no sweep, no workers.
		for _, sc := range scopes {
			for i, delta := range sc.v.Grid {
				if err := ctx.Err(); err != nil {
					return err
				}
				p := &Period{Index: i, Delta: delta, T0: sc.v.T0, NumWindows: (sc.v.T1-sc.v.T0)/delta + 1}
				for _, o := range sc.seg.Observers {
					if err := o.ObservePeriod(p); err != nil {
						return err
					}
				}
				e.emitPeriods(1, delta)
			}
		}
		return nil
	}

	e.specs = specs
	e.workers = opt.Workers
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.blocks = temporal.DestBlocksFor(e.n, e.width)
	maxInFlight := opt.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	e.sem = make(chan struct{}, maxInFlight)
	e.tasks = make(chan task, 2*e.workers)
	return e.run()
}
