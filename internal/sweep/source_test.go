package sweep

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/linkstream"
)

// columnarOf encodes the sorted stream as a columnar view with a small
// skip stride so windowed tests exercise the skip index.
func columnarOf(t testing.TB, s *linkstream.Stream) *linkstream.Columnar {
	t.Helper()
	sc := s.Clone()
	sc.Sort()
	var buf bytes.Buffer
	if err := sc.WriteColumnar(&buf, linkstream.ColumnarOptions{SkipEvery: 8}); err != nil {
		t.Fatal(err)
	}
	c, err := linkstream.OpenColumnar(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRunSourceColumnarMatchesStream pins the StreamSource contract:
// one RunSource pass over a sorted columnar view delivers bit-identical
// observer products to the RunWindowed pass over the in-memory stream
// it was written from — whole-stream and windowed segments, directed
// and undirected — while skipping the engine's sort pass (counted) and
// resolving windowed hulls through the skip index.
func TestRunSourceColumnarMatchesStream(t *testing.T) {
	for _, directed := range []bool{false, true} {
		s := seededStream(t, 7, 3, 4000, 9)
		col := columnarOf(t, s)
		segs := func() ([]SegmentObserver, []*probe) {
			probes := []*probe{newProbe(allNeeds()), newProbe(allNeeds())}
			return []SegmentObserver{
				{Grid: []int64{5, 80, 1200, 4000}, Observers: []Observer{probes[0]}},
				{Start: 500, End: 2600, Grid: []int64{11, 300}, Observers: []Observer{probes[1]}},
			}, probes
		}
		opt := Options{Directed: directed, Workers: 3, MaxInFlight: 2}

		streamSegs, streamProbes := segs()
		if err := RunWindowed(context.Background(), s.Clone(), opt, streamSegs...); err != nil {
			t.Fatal(err)
		}
		ResetBuildStats()
		var st RunStats
		copt := opt
		copt.Stats = &st
		colSegs, colProbes := segs()
		if err := RunSource(context.Background(), col, copt, colSegs...); err != nil {
			t.Fatal(err)
		}

		if SortSkipCount() != 1 || st.SortSkips != 1 || st.Passes != 1 {
			t.Fatalf("directed=%v: SortSkipCount=%d Stats.SortSkips=%d Passes=%d, want 1/1/1",
				directed, SortSkipCount(), st.SortSkips, st.Passes)
		}
		for i := range streamProbes {
			a, b := streamProbes[i], colProbes[i]
			if a.view.T0 != b.view.T0 || a.view.T1 != b.view.T1 || len(a.view.Events) != len(b.view.Events) {
				t.Fatalf("directed=%v segment %d: views differ: [%d,%d]x%d vs [%d,%d]x%d", directed, i,
					a.view.T0, a.view.T1, len(a.view.Events), b.view.T0, b.view.T1, len(b.view.Events))
			}
			for j := range a.view.Events {
				if a.view.Events[j] != b.view.Events[j] {
					t.Fatalf("directed=%v segment %d event %d: %+v vs %+v", directed, i, j,
						a.view.Events[j], b.view.Events[j])
				}
			}
			if !sameTripMultiset(a.view.StreamTrips(), b.view.StreamTrips()) {
				t.Fatalf("directed=%v segment %d: stream trips differ", directed, i)
			}
			for j := range a.periods {
				pa, pb := a.periods[j], b.periods[j]
				if pa == nil || pb == nil {
					t.Fatalf("directed=%v segment %d period %d missing (%v, %v)", directed, i, j, pa == nil, pb == nil)
				}
				if pa.delta != pb.delta || pa.numWindows != pb.numWindows ||
					pa.distances != pb.distances || pa.windows != pb.windows {
					t.Fatalf("directed=%v segment %d period %d: scalar products differ", directed, i, j)
				}
				if !reflect.DeepEqual(pa.occ, pb.occ) {
					t.Fatalf("directed=%v segment %d period %d: occupancies differ", directed, i, j)
				}
				if !sameTripMultiset(pa.trips, pb.trips) {
					t.Fatalf("directed=%v segment %d period %d: trips differ", directed, i, j)
				}
			}
		}
	}
}

// TestRunSourceWindowedHullUsesSkipIndex pins the out-of-core slicing
// promise: when every registered segment is windowed, the engine
// materialises one hull through the columnar skip index (a slice hit)
// and the in-memory stream path never reports a sort skip.
func TestRunSourceWindowedHullUsesSkipIndex(t *testing.T) {
	s := seededStream(t, 6, 3, 3000, 10)
	col := columnarOf(t, s)
	segs := []SegmentObserver{
		{Start: 200, End: 1500, Grid: []int64{50}, Observers: []Observer{newProbe(allNeeds())}},
		{Start: 1000, End: 2400, Grid: []int64{70}, Observers: []Observer{newProbe(allNeeds())}},
	}
	ResetBuildStats()
	if err := RunSource(context.Background(), col, Options{Workers: 2}, segs...); err != nil {
		t.Fatal(err)
	}
	if col.SliceHits() != 1 {
		t.Fatalf("SliceHits = %d, want 1 (one hull materialisation)", col.SliceHits())
	}
	if SortSkipCount() != 1 {
		t.Fatalf("SortSkipCount = %d, want 1", SortSkipCount())
	}

	// The in-memory source sorts; no skip is ever counted.
	ResetBuildStats()
	var st RunStats
	if err := RunWindowed(context.Background(), s.Clone(), Options{Workers: 2, Stats: &st},
		SegmentObserver{Start: 200, End: 1500, Grid: []int64{50}, Observers: []Observer{newProbe(allNeeds())}}); err != nil {
		t.Fatal(err)
	}
	if SortSkipCount() != 0 || st.SortSkips != 0 {
		t.Fatalf("stream path counted sort skips: counter=%d stats=%d", SortSkipCount(), st.SortSkips)
	}
}
