package sweep

import (
	"context"

	"errors"
	"strings"
	"testing"

	"repro/internal/temporal"
)

// runRecorder is a streaming trip consumer that copies every delivered
// run, for asserting the delivery contract.
type runRecorder struct {
	view     *StreamView
	dests    []int32
	flat     []temporal.Trip
	finished bool
	periods  int
}

func (o *runRecorder) Needs() Needs { return Needs{StreamTripRuns: true} }
func (o *runRecorder) Begin(v *StreamView) error {
	o.view = v
	o.dests = o.dests[:0]
	o.flat = o.flat[:0]
	o.finished = false
	return nil
}
func (o *runRecorder) ObserveTripRun(dest int32, run []temporal.Trip) error {
	if o.finished {
		return errors.New("run after FinishTripRuns")
	}
	if len(run) == 0 {
		return errors.New("empty run delivered")
	}
	for _, tr := range run {
		if tr.V != dest {
			return errors.New("run contains a foreign destination")
		}
	}
	o.dests = append(o.dests, dest)
	o.flat = append(o.flat, run...)
	return nil
}
func (o *runRecorder) FinishTripRuns() error {
	o.finished = true
	return nil
}
func (o *runRecorder) ObservePeriod(p *Period) error {
	if !o.finished {
		return errors.New("period observed before FinishTripRuns")
	}
	o.periods++
	return nil
}

// TestStreamTripRunsDelivery checks the streaming enumeration contract
// for several worker counts and in-flight bounds: destinations arrive
// strictly increasing, runs concatenate to exactly the eager
// destination-major enumeration, and Finish precedes every period.
func TestStreamTripRunsDelivery(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			s := seededStream(t, 9, 3, 3000, seed)
			want := temporal.CollectTripsCSR(
				temporal.Config{N: s.NumNodes(), Directed: directed, Workers: 1},
				temporal.StreamCSR(s, directed))
			for _, workers := range []int{1, 4} {
				for _, inFlight := range []int{1, 2, 0} {
					rec := &runRecorder{}
					ResetBuildStats()
					err := Run(context.Background(), s, []int64{10, 100}, Options{Directed: directed, Workers: workers, MaxInFlight: inFlight}, rec)
					if err != nil {
						t.Fatal(err)
					}
					if builds, _ := BuildStats(); builds != 0 {
						t.Fatalf("streaming-only run built %d period CSRs", builds)
					}
					if sb := StreamBuildCount(); sb != 1 {
						t.Fatalf("StreamBuildCount = %d, want 1", sb)
					}
					for i := 1; i < len(rec.dests); i++ {
						if rec.dests[i] <= rec.dests[i-1] {
							t.Fatalf("destinations not strictly increasing: %v", rec.dests)
						}
					}
					if len(rec.flat) != len(want) {
						t.Fatalf("workers=%d inflight=%d: %d trips delivered, want %d",
							workers, inFlight, len(rec.flat), len(want))
					}
					for i := range want {
						if rec.flat[i] != want[i] {
							t.Fatalf("workers=%d inflight=%d trip %d: %+v != %+v (destination-major order required)",
								workers, inFlight, i, rec.flat[i], want[i])
						}
					}
					if rec.periods != 2 {
						t.Fatalf("observed %d periods, want 2", rec.periods)
					}
				}
			}
		}
	}
}

// TestStreamTripRunsReplayFromEager checks that a segment mixing an
// eager (Needs.StreamTrips) and a streaming consumer still enumerates
// the stream once, replaying the eager lanes as runs.
func TestStreamTripRunsReplayFromEager(t *testing.T) {
	s := seededStream(t, 8, 2, 2000, 4)
	rec := &runRecorder{}
	eager := newProbe(Needs{StreamTrips: true})
	ResetBuildStats()
	if err := Run(context.Background(), s, []int64{25}, Options{Workers: 3}, rec, eager); err != nil {
		t.Fatal(err)
	}
	if sb := StreamBuildCount(); sb != 1 {
		t.Fatalf("StreamBuildCount = %d, want 1 (eager collection replayed to the streaming consumer)", sb)
	}
	flat := eager.view.StreamTrips()
	if len(rec.flat) != len(flat) {
		t.Fatalf("streaming consumer saw %d trips, eager slice has %d", len(rec.flat), len(flat))
	}
	for i := range flat {
		if rec.flat[i] != flat[i] {
			t.Fatalf("trip %d: replayed %+v != eager %+v", i, rec.flat[i], flat[i])
		}
	}
}

// countingShard tallies trips per lane; its observer cross-checks the
// sharded totals against the whole-period trip blocks. Per the
// TripShard contract, different blocks arrive concurrently, so both
// tallies are per-block slices written at distinct indices — never a
// shared map.
type countingShard struct {
	lanes   int
	perLane []int
	blocks  []int32
}

type shardProbe struct {
	probe
	shards []*countingShard
}

func (o *shardProbe) Needs() Needs {
	return Needs{Trips: true, TripShards: true}
}

func (o *shardProbe) NewTripShard(delta int64, blocks, lanesPerBlock int) TripShard {
	sh := &countingShard{lanes: lanesPerBlock, perLane: make([]int, blocks*lanesPerBlock), blocks: make([]int32, blocks)}
	o.shards = append(o.shards, sh)
	return sh
}

func (sh *countingShard) ObserveTripBlock(block int, lanes [][]temporal.Trip) error {
	if len(lanes) != sh.lanes {
		return errors.New("wrong lane count")
	}
	sh.blocks[block]++
	for l, lane := range lanes {
		sh.perLane[block*sh.lanes+l] += len(lane)
	}
	return nil
}

func (o *shardProbe) ObservePeriod(p *Period) error {
	sh, ok := p.Shard.(*countingShard)
	if !ok {
		return errors.New("Period.Shard is not this observer's shard")
	}
	total := 0
	for _, c := range sh.perLane {
		total += c
	}
	trips := 0
	for _, blk := range p.TripBlocks {
		trips += len(blk)
	}
	if total != trips {
		return errors.New("sharded trip count diverges from TripBlocks")
	}
	for _, seen := range sh.blocks {
		if seen != 1 {
			return errors.New("a block was observed more than once")
		}
	}
	return o.probe.ObservePeriod(p)
}

// TestShardedTripObserver checks the per-block fan-out: every block of
// every period reaches the observer's shard exactly once, on any
// worker count, and Period.Shard hands the right shard back.
func TestShardedTripObserver(t *testing.T) {
	s := seededStream(t, 10, 3, 3000, 5)
	grid := []int64{4, 50, 600, 3000}
	for _, workers := range []int{1, 4} {
		obs := &shardProbe{probe: *newProbe(Needs{Trips: true})}
		if err := Run(context.Background(), s, grid, Options{Workers: workers, MaxInFlight: 2}, obs); err != nil {
			t.Fatal(err)
		}
		if len(obs.shards) != len(grid) {
			t.Fatalf("workers=%d: %d shards created for %d periods", workers, len(obs.shards), len(grid))
		}
		blocks := temporal.DestBlocksFor(s.NumNodes(), temporal.DefaultLaneWidth())
		for i, sh := range obs.shards {
			if len(sh.blocks) != blocks {
				t.Fatalf("workers=%d period %d: shard sized for %d blocks, want %d", workers, i, len(sh.blocks), blocks)
			}
			for b, seen := range sh.blocks {
				if seen != 1 {
					t.Fatalf("workers=%d period %d: block %d observed %d times, want exactly 1", workers, i, b, seen)
				}
			}
		}
	}
}

// TestStreamTripRunsValidation pins the registration errors of the
// streaming extensions.
func TestStreamTripRunsValidation(t *testing.T) {
	s := seededStream(t, 4, 2, 100, 6)
	err := Run(context.Background(), s, []int64{10}, Options{}, newProbe(Needs{StreamTripRuns: true}))
	if err == nil || !strings.Contains(err.Error(), "TripRunObserver") {
		t.Fatalf("StreamTripRuns without TripRunObserver: err = %v", err)
	}
	err = Run(context.Background(), s, []int64{10}, Options{}, newProbe(Needs{TripShards: true}))
	if err == nil || !strings.Contains(err.Error(), "ShardedTripObserver") {
		t.Fatalf("TripShards without ShardedTripObserver: err = %v", err)
	}
}

// TestStreamTripRunsErrorAborts propagates a consumer error out of the
// bounded streaming enumeration.
func TestStreamTripRunsErrorAborts(t *testing.T) {
	s := seededStream(t, 10, 3, 2000, 7)
	boom := &failingRunObserver{}
	err := Run(context.Background(), s, []int64{10}, Options{Workers: 4, MaxInFlight: 2}, boom)
	if err == nil || err.Error() != "run boom" {
		t.Fatalf("err = %v, want run boom", err)
	}
}

type failingRunObserver struct{ runRecorder }

func (o *failingRunObserver) ObserveTripRun(dest int32, run []temporal.Trip) error {
	if dest >= 4 {
		return errors.New("run boom")
	}
	return o.runRecorder.ObserveTripRun(dest, run)
}
