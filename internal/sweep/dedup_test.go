package sweep

import (
	"context"

	"reflect"
	"testing"
)

// TestWindowedDedupCoincidingJobs pins the (window, ∆) dedup: two
// segments selecting the same event window with the same grid build
// each period's CSR exactly once, and both receive bit-identical
// products.
func TestWindowedDedupCoincidingJobs(t *testing.T) {
	s := seededStream(t, 8, 3, 4000, 21)
	t0, t1, _ := s.Span()
	grid := []int64{3, 40, 700, 4000}
	a := newProbe(allNeeds())
	b := newProbe(allNeeds())
	ResetBuildStats()
	err := RunWindowed(context.Background(), s, Options{Workers: 3, MaxInFlight: 2},
		SegmentObserver{Grid: grid, Observers: []Observer{a}},                         // whole stream, zero window
		SegmentObserver{Start: t0, End: t1 + 1, Grid: grid, Observers: []Observer{b}}, // same events, explicit window
	)
	if err != nil {
		t.Fatal(err)
	}
	builds, _ := BuildStats()
	if builds != int64(len(grid)) {
		t.Fatalf("coinciding segments built %d CSRs, want %d (one per distinct (window, delta))", builds, len(grid))
	}
	if d := DedupCount(); d != int64(len(grid)) {
		t.Fatalf("DedupCount = %d, want %d", d, len(grid))
	}
	if sb := StreamBuildCount(); sb != 1 {
		t.Fatalf("StreamBuildCount = %d, want 1 (shared raw-stream enumeration)", sb)
	}
	for i := range grid {
		pa, pb := a.periods[i], b.periods[i]
		if pa == nil || pb == nil {
			t.Fatalf("period %d not routed to both segments", i)
		}
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("period %d products diverge between coinciding segments:\n%+v\n%+v", i, pa, pb)
		}
	}
	if !sameTripMultiset(a.view.StreamTrips(), b.view.StreamTrips()) {
		t.Fatal("coinciding segments should share the stream trip enumeration")
	}
}

// TestWindowedDedupPartialOverlap checks that only the coinciding grid
// entries are deduplicated and that results still match a plain Run per
// segment.
func TestWindowedDedupPartialOverlap(t *testing.T) {
	s := seededStream(t, 7, 2, 2000, 22)
	gridA := []int64{5, 60}
	gridB := []int64{60, 800}
	a := newProbe(allNeeds())
	b := newProbe(allNeeds())
	ResetBuildStats()
	err := RunWindowed(context.Background(), s, Options{Workers: 2},
		SegmentObserver{Grid: gridA, Observers: []Observer{a}},
		SegmentObserver{Grid: gridB, Observers: []Observer{b}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if builds, _ := BuildStats(); builds != 3 {
		t.Fatalf("built %d CSRs, want 3 (grids {5,60} and {60,800} share delta 60)", builds)
	}
	if d := DedupCount(); d != 1 {
		t.Fatalf("DedupCount = %d, want 1", d)
	}
	for si, got := range []*probe{a, b} {
		grid := gridA
		if si == 1 {
			grid = gridB
		}
		want := newProbe(allNeeds())
		if err := Run(context.Background(), s, grid, Options{Workers: 2}, want); err != nil {
			t.Fatal(err)
		}
		for i := range grid {
			if !reflect.DeepEqual(got.periods[i], want.periods[i]) {
				t.Fatalf("segment %d period %d diverges from its solo Run:\n%+v\n%+v",
					si, i, got.periods[i], want.periods[i])
			}
		}
	}
}

// TestWindowedNoDedupAcrossWindows checks distinct event windows never
// share a period job even with equal grids.
func TestWindowedNoDedupAcrossWindows(t *testing.T) {
	s := seededStream(t, 7, 3, 4000, 23)
	grid := []int64{7, 70}
	a := newProbe(Needs{Trips: true, StreamTrips: true})
	b := newProbe(Needs{Trips: true, StreamTrips: true})
	ResetBuildStats()
	err := RunWindowed(context.Background(), s, Options{Workers: 2},
		SegmentObserver{Start: 0, End: 2000, Grid: grid, Observers: []Observer{a}},
		SegmentObserver{Start: 2000, End: 4000, Grid: grid, Observers: []Observer{b}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if builds, _ := BuildStats(); builds != int64(2*len(grid)) {
		t.Fatalf("built %d CSRs, want %d (distinct windows must not dedup)", builds, 2*len(grid))
	}
	if d := DedupCount(); d != 0 {
		t.Fatalf("DedupCount = %d, want 0", d)
	}
	if sb := StreamBuildCount(); sb != 2 {
		t.Fatalf("StreamBuildCount = %d, want 2 (one enumeration per distinct window)", sb)
	}
}
