package sweep

import (
	"reflect"
	"testing"
)

func TestPartitionGrid(t *testing.T) {
	grid := []int64{1, 2, 4, 8, 16, 32, 64}
	for parts := -1; parts <= 10; parts++ {
		chunks := PartitionGrid(grid, parts)
		var flat []int64
		for _, c := range chunks {
			if len(c) == 0 {
				t.Fatalf("parts=%d: empty chunk", parts)
			}
			flat = append(flat, c...)
		}
		if !reflect.DeepEqual(flat, grid) {
			t.Fatalf("parts=%d: chunks %v do not concatenate to the grid", parts, chunks)
		}
		want := parts
		if want < 1 {
			want = 1
		}
		if want > len(grid) {
			want = len(grid)
		}
		if len(chunks) != want {
			t.Fatalf("parts=%d: %d chunks, want %d", parts, len(chunks), want)
		}
		// Near-equal: sizes differ by at most one.
		for _, c := range chunks {
			if len(c) > len(grid)/want+1 {
				t.Fatalf("parts=%d: chunk of %d is oversize", parts, len(c))
			}
		}
	}
	if PartitionGrid(nil, 3) != nil {
		t.Fatal("empty grid should partition to nil")
	}
}
