package sweep

// DistancePoint is one aggregation period's mean temporal distances —
// the Figure 2 bottom-panel quantities, emitted from the same backward
// sweeps that produce the occupancy distribution instead of a separate
// one-sweep-per-destination distance pass.
type DistancePoint struct {
	Delta int64 `json:"delta"`
	// MeanTime is the mean distance in time, in window counts
	// (dtime = arr - dep + 1).
	MeanTime float64 `json:"mean_time"`
	// MeanHops is the mean distance in hops.
	MeanHops float64 `json:"mean_hops"`
	// MeanAbsTime = Delta * MeanTime is the mean distance in raw time
	// units.
	MeanAbsTime float64 `json:"mean_abs_time"`
	// FinitePairs is the number of (u, v, t) triples with a finite
	// distance.
	FinitePairs int64 `json:"finite_pairs"`
}

// DistanceObserver collects the Figure 2 distance curves across the
// sweep grid.
type DistanceObserver struct {
	points []DistancePoint
}

// NewDistanceObserver returns an empty distance observer.
func NewDistanceObserver() *DistanceObserver { return &DistanceObserver{} }

// Needs implements Observer.
func (o *DistanceObserver) Needs() Needs { return Needs{Distances: true} }

// Begin implements Observer.
func (o *DistanceObserver) Begin(v *StreamView) error {
	o.points = make([]DistancePoint, len(v.Grid))
	return nil
}

// ObservePeriod implements Observer.
func (o *DistanceObserver) ObservePeriod(p *Period) error {
	d := p.Distances
	o.points[p.Index] = DistancePoint{
		Delta:       p.Delta,
		MeanTime:    d.MeanTime,
		MeanHops:    d.MeanHops,
		MeanAbsTime: float64(p.Delta) * d.MeanTime,
		FinitePairs: d.Count,
	}
	return nil
}

// Points returns the distance curve in grid order. Valid after Run
// returns without error.
func (o *DistanceObserver) Points() []DistancePoint { return o.points }
