package sweep

import (
	"context"

	"errors"
	"math/rand"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/temporal"
)

// seededStream builds a deterministic workload: n nodes, perPair events
// per unordered pair at uniform times in [0, T), with random
// orientation so directed analyses are non-trivial.
func seededStream(t testing.TB, n, perPair int, T int64, seed int64) *linkstream.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := linkstream.New()
	s.EnsureNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for k := 0; k < perPair; k++ {
				a, b := int32(u), int32(v)
				if rng.Intn(2) == 0 {
					a, b = b, a
				}
				if err := s.AddID(a, b, rng.Int63n(T)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s
}

// probe records everything the engine hands an observer. Per the
// Observer contract, ObservePeriod writes only its own grid slot, so
// concurrent period callbacks never share state.
type probe struct {
	needs   Needs
	view    *StreamView
	periods []*recordedPeriod
}

type recordedPeriod struct {
	delta      int64
	numWindows int64
	trips      []temporal.Trip
	occ        []float64
	distances  temporal.DistanceStats
	windows    float64 // MeanDensity, as a fingerprint
}

func newProbe(needs Needs) *probe { return &probe{needs: needs} }

func (o *probe) Needs() Needs { return o.needs }
func (o *probe) Begin(v *StreamView) error {
	o.view = v
	o.periods = make([]*recordedPeriod, len(v.Grid))
	return nil
}
func (o *probe) ObservePeriod(p *Period) error {
	rp := &recordedPeriod{delta: p.Delta, numWindows: p.NumWindows, distances: p.Distances, windows: p.Windows.MeanDensity}
	if o.needs.Trips {
		rp.trips = p.Trips()
	}
	if o.needs.Occupancies {
		for _, ch := range p.OccupancyChunks {
			rp.occ = append(rp.occ, ch...)
		}
	}
	o.periods[p.Index] = rp
	return nil
}

func allNeeds() Needs {
	return Needs{Trips: true, Occupancies: true, Distances: true, WindowStats: true, StreamTrips: true}
}

func TestRunBuildsEachPeriodOnce(t *testing.T) {
	s := seededStream(t, 8, 3, 5000, 1)
	grid := []int64{1, 7, 60, 500, 2500, 5000}
	for _, maxInFlight := range []int{0, 1, 2} {
		ResetBuildStats()
		obs := newProbe(allNeeds())
		if err := Run(context.Background(), s, grid, Options{MaxInFlight: maxInFlight, Workers: 4}, obs); err != nil {
			t.Fatal(err)
		}
		builds, alive := BuildStats()
		if builds != int64(len(grid)) {
			t.Fatalf("MaxInFlight=%d: built %d period CSRs for %d grid entries", maxInFlight, builds, len(grid))
		}
		want := int64(maxInFlight)
		if maxInFlight == 0 {
			want = DefaultMaxInFlight
		}
		if alive > want {
			t.Fatalf("MaxInFlight=%d: %d periods resident at once", maxInFlight, alive)
		}
		for i := range grid {
			if obs.periods[i] == nil {
				t.Fatalf("period %d not observed", i)
			}
		}
	}
}

func TestStreamOnlyObserversBuildNothing(t *testing.T) {
	s := seededStream(t, 6, 2, 1000, 2)
	ResetBuildStats()
	obs := newProbe(Needs{StreamTrips: true})
	if err := Run(context.Background(), s, []int64{10, 100}, Options{}, obs); err != nil {
		t.Fatal(err)
	}
	if builds, _ := BuildStats(); builds != 0 {
		t.Fatalf("stream-only run built %d period CSRs", builds)
	}
	if len(obs.view.StreamTrips()) == 0 {
		t.Fatal("no stream trips collected")
	}
	if obs.periods[0] == nil || obs.periods[1] == nil {
		t.Fatal("not every period was observed")
	}
}

// TestProductsMatchDirectComputation checks every per-period product
// against the temporal package's direct entry points, for directed and
// undirected runs and several worker counts.
func TestProductsMatchDirectComputation(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			s := seededStream(t, 7, 2, 2000, seed)
			grid := []int64{3, 40, 700, 2000}
			obs := newProbe(allNeeds())
			if err := Run(context.Background(), s, grid, Options{Directed: directed, Workers: 3, MaxInFlight: 2}, obs); err != nil {
				t.Fatal(err)
			}
			// Stream trips match the reference enumeration as multisets
			// of trip values (the reference's parallel order varies).
			cfg := temporal.Config{N: s.NumNodes(), Directed: directed, Workers: 1}
			wantStream := temporal.CollectTrips(cfg, temporal.StreamLayers(s, directed))
			if got := obs.view.StreamTrips(); !sameTripMultiset(got, wantStream) {
				t.Fatalf("directed=%v seed=%d: stream trips mismatch (%d vs %d)", directed, seed, len(got), len(wantStream))
			}
			events := obs.view.Events
			var scratch temporal.CSRScratch
			for i, delta := range grid {
				rp := obs.periods[i]
				c := temporal.BuildCSR(events, obs.view.T0, delta, &scratch)
				wantTrips := temporal.CollectTripsCSR(temporal.Config{N: s.NumNodes(), Directed: directed, Workers: 1}, c)
				if len(rp.trips) != len(wantTrips) {
					t.Fatalf("delta=%d: %d trips, want %d", delta, len(rp.trips), len(wantTrips))
				}
				for j := range wantTrips {
					if rp.trips[j] != wantTrips[j] {
						t.Fatalf("delta=%d trip %d: %+v != %+v (order must be destination-major)", delta, j, rp.trips[j], wantTrips[j])
					}
				}
				wantOcc := temporal.OccupanciesCSR(temporal.Config{N: s.NumNodes(), Directed: directed, Workers: 1}, c)
				if !sameFloatMultiset(rp.occ, wantOcc) {
					t.Fatalf("delta=%d: occupancy multiset mismatch", delta)
				}
				wantDist := temporal.DistancesCSR(temporal.Config{N: s.NumNodes(), Directed: directed, Workers: 1}, c, 0, 1)
				if rp.distances != wantDist {
					t.Fatalf("delta=%d: distances %+v != %+v", delta, rp.distances, wantDist)
				}
			}
		}
	}
}

func sameTripMultiset(a, b []temporal.Trip) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[temporal.Trip]int, len(a))
	for _, tr := range a {
		count[tr]++
	}
	for _, tr := range b {
		count[tr]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func sameFloatMultiset(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[float64]int, len(a))
	for _, v := range a {
		count[v]++
	}
	for _, v := range b {
		count[v]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestDistanceObserver(t *testing.T) {
	s := seededStream(t, 6, 2, 1000, 4)
	grid := []int64{5, 50, 1000}
	obs := NewDistanceObserver()
	if err := Run(context.Background(), s, grid, Options{Workers: 2}, obs); err != nil {
		t.Fatal(err)
	}
	pts := obs.Points()
	if len(pts) != len(grid) {
		t.Fatalf("got %d points", len(pts))
	}
	s.Sort()
	events := linkstream.Canonical(s.Events())
	var scratch temporal.CSRScratch
	for i, delta := range grid {
		c := temporal.BuildCSR(events, events[0].T, delta, &scratch)
		want := temporal.DistancesCSR(temporal.Config{N: s.NumNodes(), Workers: 1}, c, 0, 1)
		p := pts[i]
		if p.Delta != delta || p.MeanTime != want.MeanTime || p.MeanHops != want.MeanHops || p.FinitePairs != want.Count {
			t.Fatalf("delta=%d: %+v != %+v", delta, p, want)
		}
		if p.MeanAbsTime != float64(delta)*want.MeanTime {
			t.Fatalf("delta=%d: abs time %v", delta, p.MeanAbsTime)
		}
	}
}

func TestRunErrors(t *testing.T) {
	empty := linkstream.New()
	if err := Run(context.Background(), empty, []int64{1}, Options{}, newProbe(Needs{})); !errors.Is(err, ErrNoEvents) {
		t.Fatalf("empty stream: %v", err)
	}
	s := seededStream(t, 4, 1, 100, 5)
	if err := Run(context.Background(), s, nil, Options{}, newProbe(Needs{})); err == nil {
		t.Fatal("empty grid should error")
	}
	if err := Run(context.Background(), s, []int64{0}, Options{}, newProbe(Needs{})); err == nil {
		t.Fatal("non-positive delta should error")
	}
	if err := Run(context.Background(), s, []int64{10}, Options{}); err == nil {
		t.Fatal("no observers should error")
	}
}

// failingObserver errors on a chosen period to exercise abort paths.
type failingObserver struct {
	probe
	failAt int
}

func (o *failingObserver) ObservePeriod(p *Period) error {
	if p.Index == o.failAt {
		return errors.New("boom")
	}
	return o.probe.ObservePeriod(p)
}

func TestObserverErrorAborts(t *testing.T) {
	s := seededStream(t, 6, 2, 1000, 6)
	obs := &failingObserver{probe: *newProbe(allNeeds()), failAt: 1}
	err := Run(context.Background(), s, []int64{2, 20, 200, 1000}, Options{Workers: 2, MaxInFlight: 2}, obs)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestHistogramMode(t *testing.T) {
	s := seededStream(t, 6, 3, 1000, 7)
	grid := []int64{4, 40, 400}
	counts := make([]int64, len(grid))
	obs := observerFunc{
		needs: Needs{Occupancies: true},
		observe: func(p *Period) error {
			if p.Histogram == nil {
				return errors.New("no histogram in histogram mode")
			}
			counts[p.Index] = p.Histogram.N()
			return nil
		},
	}
	if err := Run(context.Background(), s, grid, Options{HistogramBins: 64, Workers: 2}, obs); err != nil {
		t.Fatal(err)
	}
	s.Sort()
	events := linkstream.Canonical(s.Events())
	var scratch temporal.CSRScratch
	for i, delta := range grid {
		c := temporal.BuildCSR(events, events[0].T, delta, &scratch)
		occ := temporal.OccupanciesCSR(temporal.Config{N: s.NumNodes(), Workers: 1}, c)
		if counts[i] != int64(len(occ)) {
			t.Fatalf("delta=%d: histogram counted %d values, want %d", delta, counts[i], len(occ))
		}
	}
}

// observerFunc adapts closures to the Observer interface.
type observerFunc struct {
	needs   Needs
	begin   func(v *StreamView) error
	observe func(p *Period) error
}

func (o observerFunc) Needs() Needs { return o.needs }
func (o observerFunc) Begin(v *StreamView) error {
	if o.begin != nil {
		return o.begin(v)
	}
	return nil
}
func (o observerFunc) ObservePeriod(p *Period) error {
	if o.observe != nil {
		return o.observe(p)
	}
	return nil
}
