package snapshot

// UnionFind is a classic disjoint-set forest with union by rank and path
// halving, used to compute connected components of snapshots.
type UnionFind struct {
	parent []int32
	rank   []int8
	sets   int
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning true if they were distinct.
func (uf *UnionFind) Union(a, b int32) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	uf.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Components labels every node with a component id in 0..k-1 and returns
// the labels plus the number k of components. Edge direction is ignored
// (weak connectivity for directed graphs).
func (g *Graph) Components() (labels []int32, k int) {
	uf := NewUnionFind(g.n)
	for u := int32(0); int(u) < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			uf.Union(u, v)
		}
	}
	labels = make([]int32, g.n)
	next := int32(0)
	remap := make(map[int32]int32, 16)
	for i := int32(0); int(i) < g.n; i++ {
		r := uf.Find(i)
		id, ok := remap[r]
		if !ok {
			id = next
			remap[r] = id
			next++
		}
		labels[i] = id
	}
	return labels, int(next)
}

// LargestComponent returns the node count of the largest (weakly)
// connected component. Isolated nodes count as singleton components, so
// the result is at least 1 for non-empty graphs and 0 for empty ones.
func (g *Graph) LargestComponent() int {
	if g.n == 0 {
		return 0
	}
	labels, k := g.Components()
	size := make([]int, k)
	for _, l := range labels {
		size[l]++
	}
	best := 0
	for _, s := range size {
		if s > best {
			best = s
		}
	}
	return best
}

// BFS runs a breadth-first search from src, ignoring edge direction is
// NOT done here: it follows out-edges only (which equals undirected
// traversal for undirected graphs). It returns hop distances with -1 for
// unreachable nodes.
func (g *Graph) BFS(src int32) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, 16)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
