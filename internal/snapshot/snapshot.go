// Package snapshot implements the static-graph substrate: the graphs that
// an aggregated series is made of. Graphs are stored in a compact
// CSR-style adjacency so that the temporal-path engine can iterate
// neighbourhoods without allocation.
//
// The package also provides the classical graph statistics the paper's
// Figure 2 tracks across aggregation scales: density, non-isolated vertex
// count and largest connected component size.
package snapshot

import (
	"fmt"
	"slices"
	"sort"
)

// Edge is an undirected (or directed, depending on the analysis) pair of
// node ids.
type Edge struct {
	U, V int32
}

// Canon returns the edge with endpoints ordered U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// PackEdge packs an edge into one uint64 key ordered like (U, V); the
// shared currency of the sort-and-compact dedup used by both series
// aggregation and the temporal engine's CSR builder.
func PackEdge(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// UnpackEdge is the inverse of PackEdge.
func UnpackEdge(key uint64) Edge { return Edge{U: int32(key >> 32), V: int32(uint32(key))} }

// SortCompactEdgeKeys sorts packed edge keys and removes duplicates in
// place, returning the compacted prefix.
func SortCompactEdgeKeys(keys []uint64) []uint64 {
	slices.Sort(keys)
	w := 0
	for i, k := range keys {
		if i > 0 && k == keys[i-1] {
			continue
		}
		keys[w] = k
		w++
	}
	return keys[:w]
}

// Graph is a static graph on nodes 0..N-1 in CSR form. Build one with
// NewGraph. For undirected graphs every edge appears in both adjacency
// lists; for directed graphs only in the source's list.
type Graph struct {
	n        int
	offsets  []int32
	adj      []int32
	directed bool
	edges    int
}

// NewGraph builds a graph on n nodes from the given edges. Duplicate
// edges are collapsed; self loops are rejected. If directed is false,
// edges (u,v) and (v,u) are identified.
func NewGraph(n int, edges []Edge, directed bool) (*Graph, error) {
	dedup := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("snapshot: self loop on node %d", e.U)
		}
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("snapshot: edge (%d,%d) out of range for %d nodes", e.U, e.V, n)
		}
		if !directed {
			e = e.Canon()
		}
		dedup = append(dedup, e)
	}
	sort.Slice(dedup, func(i, j int) bool {
		if dedup[i].U != dedup[j].U {
			return dedup[i].U < dedup[j].U
		}
		return dedup[i].V < dedup[j].V
	})
	w := 0
	for i, e := range dedup {
		if i > 0 && e == dedup[i-1] {
			continue
		}
		dedup[w] = e
		w++
	}
	dedup = dedup[:w]

	g := &Graph{n: n, directed: directed, edges: len(dedup)}
	deg := make([]int32, n+1)
	for _, e := range dedup {
		deg[e.U+1]++
		if !directed {
			deg[e.V+1]++
		}
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	g.offsets = deg
	g.adj = make([]int32, g.offsets[n])
	fill := make([]int32, n)
	for _, e := range dedup {
		g.adj[g.offsets[e.U]+fill[e.U]] = e.V
		fill[e.U]++
		if !directed {
			g.adj[g.offsets[e.V]+fill[e.V]] = e.U
			fill[e.V]++
		}
	}
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of (deduplicated) edges.
func (g *Graph) M() int { return g.edges }

// Directed reports whether the graph was built as directed.
func (g *Graph) Directed() bool { return g.directed }

// Neighbors returns the adjacency list of node u (out-neighbours for a
// directed graph). The slice aliases internal storage; do not modify.
func (g *Graph) Neighbors(u int32) []int32 {
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// Degree returns the (out-)degree of node u.
func (g *Graph) Degree(u int32) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// HasEdge reports whether the edge (u,v) is present, by binary search in
// u's sorted adjacency list.
func (g *Graph) HasEdge(u, v int32) bool {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Density returns 2M / (N(N-1)) for undirected graphs and M / (N(N-1))
// for directed ones; 0 for graphs with fewer than two nodes.
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	pairs := float64(g.n) * float64(g.n-1)
	if g.directed {
		return float64(g.edges) / pairs
	}
	return 2 * float64(g.edges) / pairs
}

// NonIsolated returns the number of nodes with at least one incident edge
// (in either direction for directed graphs).
func (g *Graph) NonIsolated() int {
	seen := make([]bool, g.n)
	count := 0
	mark := func(u int32) {
		if !seen[u] {
			seen[u] = true
			count++
		}
	}
	for u := int32(0); int(u) < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			mark(u)
			mark(v)
		}
	}
	return count
}
