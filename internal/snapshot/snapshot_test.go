package snapshot

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges []Edge, directed bool) *Graph {
	t.Helper()
	g, err := NewGraph(n, edges, directed)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	return g
}

func TestNewGraphDedup(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 3}}, false)
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 after dedup", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge should be visible from both endpoints")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("HasEdge(0,2) should be false")
	}
}

func TestNewGraphDirected(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1}, {1, 0}, {1, 2}}, true)
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (directed keeps both orientations)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("both directed edges should exist")
	}
	if g.HasEdge(2, 1) {
		t.Fatal("reverse of (1,2) should not exist in directed graph")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("out-degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestNewGraphErrors(t *testing.T) {
	if _, err := NewGraph(3, []Edge{{1, 1}}, false); err == nil {
		t.Fatal("self loop should be rejected")
	}
	if _, err := NewGraph(2, []Edge{{0, 5}}, false); err == nil {
		t.Fatal("out-of-range edge should be rejected")
	}
}

func TestDensity(t *testing.T) {
	// Complete undirected graph on 4 nodes: density 1.
	edges := []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	g := mustGraph(t, 4, edges, false)
	if d := g.Density(); d != 1 {
		t.Fatalf("K4 density = %v, want 1", d)
	}
	d := mustGraph(t, 4, edges[:3], false)
	if got := d.Density(); got != 0.5 {
		t.Fatalf("density = %v, want 0.5", got)
	}
	dir := mustGraph(t, 3, []Edge{{0, 1}}, true)
	if got := dir.Density(); got != 1.0/6.0 {
		t.Fatalf("directed density = %v, want 1/6", got)
	}
	tiny := mustGraph(t, 1, nil, false)
	if tiny.Density() != 0 {
		t.Fatal("single-node density should be 0")
	}
}

func TestNonIsolated(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{0, 1}, {2, 3}}, false)
	if got := g.NonIsolated(); got != 4 {
		t.Fatalf("NonIsolated = %d, want 4", got)
	}
	dir := mustGraph(t, 5, []Edge{{0, 1}}, true)
	if got := dir.NonIsolated(); got != 2 {
		t.Fatalf("directed NonIsolated = %d, want 2 (target counts too)", got)
	}
}

func TestComponents(t *testing.T) {
	g := mustGraph(t, 6, []Edge{{0, 1}, {1, 2}, {3, 4}}, false)
	labels, k := g.Components()
	if k != 3 { // {0,1,2}, {3,4}, {5}
		t.Fatalf("components = %d, want 3", k)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("3,4 should form their own component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("5 should be isolated")
	}
	if got := g.LargestComponent(); got != 3 {
		t.Fatalf("LargestComponent = %d, want 3", got)
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	g := mustGraph(t, 0, nil, false)
	if got := g.LargestComponent(); got != 0 {
		t.Fatalf("LargestComponent of empty graph = %d, want 0", got)
	}
	one := mustGraph(t, 3, nil, false)
	if got := one.LargestComponent(); got != 1 {
		t.Fatalf("LargestComponent of edgeless graph = %d, want 1", got)
	}
}

func TestBFS(t *testing.T) {
	// Path 0-1-2-3 plus isolated 4.
	g := mustGraph(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}}, false)
	dist := g.BFS(0)
	want := []int32{0, 1, 2, 3, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("BFS dist = %v, want %v", dist, want)
		}
	}
}

func TestBFSDirected(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1}, {1, 2}}, true)
	if d := g.BFS(2); d[0] != -1 || d[1] != -1 || d[2] != 0 {
		t.Fatalf("directed BFS from sink = %v", d)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d, want 5", uf.Sets())
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeated union should not merge")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if uf.Sets() != 2 {
		t.Fatalf("Sets = %d, want 2", uf.Sets())
	}
	if uf.Find(2) != uf.Find(1) {
		t.Fatal("1 and 2 should share a root")
	}
	if uf.Find(4) == uf.Find(0) {
		t.Fatal("4 should be alone")
	}
}

// Property: for random undirected graphs, component labels agree with BFS
// reachability, and degree sums equal 2M.
func TestQuickComponentsMatchBFS(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 2
		m := int(mRaw % 40)
		edges := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			edges = append(edges, Edge{u, v})
		}
		g, err := NewGraph(n, edges, false)
		if err != nil {
			return false
		}
		degSum := 0
		for u := int32(0); int(u) < n; u++ {
			degSum += g.Degree(u)
		}
		if degSum != 2*g.M() {
			return false
		}
		labels, _ := g.Components()
		for trial := 0; trial < 3; trial++ {
			src := int32(rng.Intn(n))
			dist := g.BFS(src)
			for v := 0; v < n; v++ {
				reachable := dist[v] >= 0
				sameComp := labels[v] == labels[src]
				if reachable != sameComp {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
