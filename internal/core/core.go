// Package core implements the paper's primary contribution: the
// occupancy method (Section 4), a fully automatic, parameter-free
// procedure that determines the saturation scale γ of a link stream —
// the largest aggregation period ∆ for which the aggregated graph series
// still faithfully describes the propagation properties of the stream.
//
// For every candidate ∆ the method aggregates the stream, enumerates the
// minimal trips of the series, computes the distribution of their
// occupancy rates and scores how uniformly the distribution spreads over
// [0,1] (by default via the Monge-Kantorovich proximity with the uniform
// density). γ is the ∆ maximising the score: below γ the distribution
// is still stretching (windows fill up without losing link-order
// information); beyond γ it contracts onto occupancy 1 (the loss of
// information dominates).
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/linkstream"
	"repro/internal/temporal"
)

// ErrNoEvents is returned when the stream has no event to analyse.
var ErrNoEvents = errors.New("core: stream has no events")

// Options configures the occupancy method. The zero value selects the
// paper's defaults: undirected analysis, M-K proximity selection, an
// automatically built logarithmic ∆ grid and all available CPUs.
type Options struct {
	// Directed preserves link orientation in snapshots and paths.
	Directed bool
	// Workers bounds engine parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Selectors are the uniformity measures to score each ∆ with. The
	// first selector decides γ. Default: M-K proximity only.
	Selectors []dist.Selector
	// Grid is the list of candidate aggregation periods. Empty means
	// DefaultGrid(stream, DefaultGridPoints).
	Grid []int64
	// Refine, when positive, adds that many extra grid points between
	// the neighbours of the best ∆ of each pass and re-sweeps once,
	// sharpening γ beyond the grid resolution.
	Refine int
	// HistogramBins, when positive, scores with a fixed-bin histogram
	// instead of the exact sample. Only the M-K selectors support this
	// backend; it is intended for very large trip populations and the
	// ablation benchmarks.
	HistogramBins int
}

func (o Options) selectors() []dist.Selector {
	if len(o.Selectors) == 0 {
		return []dist.Selector{dist.MKProximitySelector{}}
	}
	return o.Selectors
}

// DefaultGridPoints is the number of candidate periods DefaultGrid
// produces.
const DefaultGridPoints = 48

// DefaultGrid builds a logarithmically spaced ∆ grid from the stream's
// timestamp resolution to its whole period of study, the range the
// paper sweeps.
func DefaultGrid(s *linkstream.Stream, points int) []int64 {
	lo := s.Resolution()
	hi := s.Duration()
	return LogGrid(lo, hi, points)
}

// LogGrid returns up to points geometrically spaced integers covering
// [lo, hi], deduplicated and always containing both endpoints.
func LogGrid(lo, hi int64, points int) []int64 {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	if lo == hi {
		return []int64{lo}
	}
	if points < 2 {
		return []int64{lo, hi}
	}
	out := make([]int64, 0, points)
	ratio := math.Log(float64(hi) / float64(lo))
	var prev int64
	for i := 0; i < points; i++ {
		v := int64(math.Round(float64(lo) * math.Exp(ratio*float64(i)/float64(points-1))))
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	if out[len(out)-1] != hi {
		out = append(out, hi)
	}
	return out
}

// LinearGrid returns points evenly spaced integers covering [lo, hi].
func LinearGrid(lo, hi int64, points int) []int64 {
	if hi < lo {
		hi = lo
	}
	if lo == hi {
		return []int64{lo}
	}
	if points < 2 {
		return []int64{lo, hi}
	}
	out := make([]int64, 0, points)
	var prev int64 = math.MinInt64
	for i := 0; i < points; i++ {
		v := lo + int64(math.Round(float64(hi-lo)*float64(i)/float64(points-1)))
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// SweepPoint is the outcome of analysing one candidate period.
type SweepPoint struct {
	Delta  int64
	Trips  int       // number of minimal trips in G∆
	Scores []float64 // parallel to Options.Selectors
}

// Result is the outcome of the occupancy method.
type Result struct {
	// Gamma is the saturation scale: the ∆ maximising the primary
	// selector's score.
	Gamma int64
	// Score is the primary selector's score at Gamma.
	Score float64
	// Selector is the name of the primary selector.
	Selector string
	// Points holds the full sweep curve (sorted by Delta), e.g. the
	// M-K proximity curve of Figure 3 (right).
	Points []SweepPoint
}

// OccupancySample aggregates the stream at period delta and returns the
// distribution of occupancy rates of the minimal trips of G∆ (the
// curves of Figure 3 left and Figure 4). The window partition is built
// directly into the engine's CSR arena, without materialising a Series.
func OccupancySample(s *linkstream.Stream, delta int64, opt Options) (*dist.Sample, error) {
	if s.NumEvents() == 0 {
		return nil, ErrNoEvents
	}
	if delta <= 0 {
		return nil, fmt.Errorf("core: non-positive aggregation period %d", delta)
	}
	events := sortedEvents(s, opt.Directed)
	var scratch temporal.CSRScratch
	c := temporal.BuildCSR(events, events[0].T, delta, &scratch)
	cfg := temporal.Config{N: s.NumNodes(), Directed: opt.Directed, Workers: opt.Workers}
	return dist.NewSample(temporal.OccupanciesCSR(cfg, c))
}

// sortedEvents sorts the stream and returns its event buffer, a
// canonicalised copy of it for undirected analyses. Sorting and
// canonicalising happen once per sweep, not once per candidate period.
func sortedEvents(s *linkstream.Stream, directed bool) []linkstream.Event {
	s.Sort()
	events := s.Events()
	if !directed {
		events = linkstream.Canonical(events)
	}
	return events
}

// Sweep scores every candidate period in grid with every selector in
// opt.Selectors. Points are returned in grid order.
//
// This is a single-pass pipeline over the stream: the event buffer is
// sorted and canonicalised once, every period's window partition is an
// O(M) bucketing pass over that same buffer (reused build scratch, CSR
// arenas), and the (period, destination) sweep work items are then
// scheduled on one shared worker pool with per-worker engine state, so
// grid-level and destination-level parallelism compose without per-∆
// allocation spikes. A scoring pass over the periods (sample sort plus
// selector integrals, itself parallel over periods) follows.
func Sweep(s *linkstream.Stream, grid []int64, opt Options) ([]SweepPoint, error) {
	if s.NumEvents() == 0 {
		return nil, ErrNoEvents
	}
	if len(grid) == 0 {
		return nil, errors.New("core: empty candidate grid")
	}
	sels := opt.selectors()
	if opt.HistogramBins > 0 {
		for _, sel := range sels {
			if _, ok := sel.(dist.MKProximitySelector); !ok {
				return nil, fmt.Errorf("core: selector %s does not support the histogram backend", sel.Name())
			}
		}
	}
	for _, delta := range grid {
		if delta <= 0 {
			return nil, fmt.Errorf("core: non-positive aggregation period %d", delta)
		}
	}

	events := sortedEvents(s, opt.Directed)
	t0 := events[0].T
	n := s.NumNodes()

	// Aggregation pass: one CSR arena per period from the shared event
	// buffer, with one reused sort-and-compact scratch.
	csrs := make([]*temporal.CSR, len(grid))
	var scratch temporal.CSRScratch
	for i, delta := range grid {
		csrs[i] = temporal.BuildCSR(events, t0, delta, &scratch)
	}

	// Sweep pass: (period, destination-block) work items, period-major
	// so a worker drains its occupancy sink only on period boundaries.
	type deltaAcc struct {
		mu     sync.Mutex
		chunks [][]float64
		total  int
	}
	accs := make([]deltaAcc, len(grid))
	// In histogram mode chunks are streamed into the per-period
	// histogram as workers flush and recycled immediately, so the
	// sweep never holds a period's full occupancy population — that
	// bounded footprint is the point of the histogram backend.
	var hists []*dist.Histogram
	if opt.HistogramBins > 0 {
		hists = make([]*dist.Histogram, len(grid))
		for i := range hists {
			hists[i] = dist.NewHistogram(opt.HistogramBins)
		}
	}
	blocks := temporal.DestBlocks(n)
	items := len(grid) * blocks
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	flush := func(w *temporal.Worker, di int) {
		chunks, total := w.TakeOccupancies()
		if total == 0 {
			return
		}
		a := &accs[di]
		a.mu.Lock()
		if hists != nil {
			for _, ch := range chunks {
				hists[di].AddAll(ch)
			}
		} else {
			a.chunks = append(a.chunks, chunks...)
			a.total += total
		}
		a.mu.Unlock()
		if hists != nil {
			temporal.RecycleOccupancies(chunks)
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := temporal.NewWorker(n)
			defer w.Release()
			cur := -1
			for {
				item := int(next.Add(1) - 1)
				if item >= items {
					break
				}
				di := item / blocks
				if di != cur {
					if cur >= 0 {
						flush(w, cur)
					}
					cur = di
				}
				w.SweepOccupancyBlock(csrs[di], opt.Directed, item%blocks)
			}
			if cur >= 0 {
				flush(w, cur)
			}
		}()
	}
	wg.Wait()

	// Scoring pass, parallel over periods.
	points := make([]SweepPoint, len(grid))
	errs := make([]error, len(grid))
	next.Store(0)
	for i := 0; i < min(workers, len(grid)); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				di := int(next.Add(1) - 1)
				if di >= len(grid) {
					return
				}
				p := SweepPoint{Delta: grid[di], Scores: make([]float64, len(sels))}
				if hists != nil {
					h := hists[di]
					p.Trips = int(h.N())
					// Validation above restricted histogram mode to M-K
					// selectors, so every slot gets the one histogram score.
					mk := h.MKProximity()
					for si := range sels {
						p.Scores[si] = mk
					}
				} else {
					a := &accs[di]
					occ := temporal.ConcatOccupancies(a.total, a.chunks)
					a.chunks = nil
					sample, err := dist.NewSample(occ)
					if err != nil {
						errs[di] = err
						continue
					}
					p.Trips = sample.N()
					for si, sel := range sels {
						p.Scores[si] = sel.Score(sample)
					}
				}
				points[di] = p
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// Best returns the index of the point maximising selector selIdx.
// Ties are broken towards the smaller ∆ (the paper treats γ as an upper
// bound, so the conservative choice is the finer scale).
func Best(points []SweepPoint, selIdx int) int {
	best := -1
	for i, p := range points {
		if best < 0 || p.Scores[selIdx] > points[best].Scores[selIdx] {
			best = i
		}
	}
	return best
}

// SaturationScale runs the occupancy method end to end: sweep the ∆
// grid, optionally refine around the maximum, and return γ together
// with the full score curve.
func SaturationScale(s *linkstream.Stream, opt Options) (Result, error) {
	grid := opt.Grid
	if len(grid) == 0 {
		grid = DefaultGrid(s, DefaultGridPoints)
	}
	points, err := Sweep(s, grid, opt)
	if err != nil {
		return Result{}, err
	}
	sels := opt.selectors()
	best := Best(points, 0)

	if opt.Refine > 0 && len(points) > 1 {
		lo := points[max(0, best-1)].Delta
		hi := points[min(len(points)-1, best+1)].Delta
		if hi > lo+1 {
			refined := LogGrid(lo, hi, opt.Refine+2)
			extra, err := Sweep(s, refined, opt)
			if err != nil {
				return Result{}, err
			}
			points = mergePoints(points, extra)
			best = Best(points, 0)
		}
	}

	return Result{
		Gamma:    points[best].Delta,
		Score:    points[best].Scores[0],
		Selector: sels[0].Name(),
		Points:   points,
	}, nil
}

// mergePoints merges two sweeps, dropping duplicate deltas and keeping
// the result sorted by Delta.
func mergePoints(a, b []SweepPoint) []SweepPoint {
	out := make([]SweepPoint, 0, len(a)+len(b))
	seen := make(map[int64]bool, len(a)+len(b))
	add := func(ps []SweepPoint) {
		for _, p := range ps {
			if !seen[p.Delta] {
				seen[p.Delta] = true
				out = append(out, p)
			}
		}
	}
	add(a)
	add(b)
	sort.Slice(out, func(i, j int) bool { return out[i].Delta < out[j].Delta })
	return out
}
