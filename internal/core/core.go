// Package core implements the paper's primary contribution: the
// occupancy method (Section 4), a fully automatic, parameter-free
// procedure that determines the saturation scale γ of a link stream —
// the largest aggregation period ∆ for which the aggregated graph series
// still faithfully describes the propagation properties of the stream.
//
// For every candidate ∆ the method aggregates the stream, enumerates the
// minimal trips of the series, computes the distribution of their
// occupancy rates and scores how uniformly the distribution spreads over
// [0,1] (by default via the Monge-Kantorovich proximity with the uniform
// density). γ is the ∆ maximising the score: below γ the distribution
// is still stretching (windows fill up without losing link-order
// information); beyond γ it contracts onto occupancy 1 (the loss of
// information dominates).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/linkstream"
	"repro/internal/sweep"
	"repro/internal/temporal"
)

// ErrNoEvents is returned when the stream has no event to analyse.
var ErrNoEvents = errors.New("core: stream has no events")

// Options configures the occupancy method. The zero value selects the
// paper's defaults: undirected analysis, M-K proximity selection, an
// automatically built logarithmic ∆ grid and all available CPUs.
type Options struct {
	// Directed preserves link orientation in snapshots and paths.
	Directed bool
	// Workers bounds engine parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Selectors are the uniformity measures to score each ∆ with. The
	// first selector decides γ. Default: M-K proximity only.
	Selectors []dist.Selector
	// Grid is the list of candidate aggregation periods. Empty means
	// DefaultGrid(stream, DefaultGridPoints).
	Grid []int64
	// Refine, when positive, adds that many extra grid points between
	// the neighbours of the best ∆ of each pass and re-sweeps once,
	// sharpening γ beyond the grid resolution.
	Refine int
	// HistogramBins, when positive, scores with a fixed-bin histogram
	// instead of the exact sample. Only the M-K selectors support this
	// backend; it is intended for very large trip populations and the
	// ablation benchmarks.
	HistogramBins int
	// MaxInFlight bounds how many aggregation periods the sweep engine
	// keeps resident at once (CSR arena plus occupancy products); <= 0
	// selects the engine default. Peak sweep memory is
	// O(MaxInFlight × period footprint) instead of O(grid).
	MaxInFlight int
	// LaneWidth pins the engine's destination-lane width: 0 picks the
	// architecture default, 4 and 8 force that many destinations per
	// relax pass. Every width produces bit-identical results; see
	// sweep.Options.LaneWidth.
	LaneWidth int
	// Bisect replaces the one-shot refinement pass with a bracket
	// bisection around the running maximum: each round sweeps the
	// geometric half-midpoints of the bracket enclosing the best ∆ and
	// narrows onto the new maximum. Refine bounds the number of
	// bisection rounds instead of the extra-point count. The default
	// (false) keeps the paper's sweep-then-refine shape.
	Bisect bool
	// Speculate (implies Bisect) stages both candidate half-midpoints
	// of the current bracket in a single sweep request, so one engine
	// pass prices the round that serial bisection needs two passes for.
	// The ∆ sequence swept — and therefore the Result — is identical to
	// serial bisection's; only the pass batching differs.
	Speculate bool
}

func (o Options) selectors() []dist.Selector {
	if len(o.Selectors) == 0 {
		return []dist.Selector{dist.MKProximitySelector{}}
	}
	return o.Selectors
}

// validateHistogramSelectors rejects selectors the fixed-bin histogram
// backend cannot score; only the M-K proximity has a streamed form.
func validateHistogramSelectors(sels []dist.Selector) error {
	for _, sel := range sels {
		if _, ok := sel.(dist.MKProximitySelector); !ok {
			return fmt.Errorf("core: selector %s does not support the histogram backend", sel.Name())
		}
	}
	return nil
}

// DefaultGridPoints is the number of candidate periods DefaultGrid
// produces.
const DefaultGridPoints = 48

// DefaultGrid builds a logarithmically spaced ∆ grid from the stream's
// timestamp resolution to its whole period of study, the range the
// paper sweeps.
func DefaultGrid(s *linkstream.Stream, points int) []int64 {
	lo := s.Resolution()
	hi := s.Duration()
	return LogGrid(lo, hi, points)
}

// LogGrid returns up to points geometrically spaced integers covering
// [lo, hi], deduplicated and always containing both endpoints.
func LogGrid(lo, hi int64, points int) []int64 {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	if lo == hi {
		return []int64{lo}
	}
	if points < 2 {
		return []int64{lo, hi}
	}
	out := make([]int64, 0, points)
	ratio := math.Log(float64(hi) / float64(lo))
	var prev int64
	for i := 0; i < points; i++ {
		v := int64(math.Round(float64(lo) * math.Exp(ratio*float64(i)/float64(points-1))))
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	if out[len(out)-1] != hi {
		out = append(out, hi)
	}
	return out
}

// LinearGrid returns points evenly spaced integers covering [lo, hi].
func LinearGrid(lo, hi int64, points int) []int64 {
	if hi < lo {
		hi = lo
	}
	if lo == hi {
		return []int64{lo}
	}
	if points < 2 {
		return []int64{lo, hi}
	}
	out := make([]int64, 0, points)
	var prev int64 = math.MinInt64
	for i := 0; i < points; i++ {
		v := lo + int64(math.Round(float64(hi-lo)*float64(i)/float64(points-1)))
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// SweepPoint is the outcome of analysing one candidate period. The
// json tags are the wire contract of the serving layer (the root
// package's Report marshalling).
type SweepPoint struct {
	Delta  int64     `json:"delta"`
	Trips  int       `json:"trips"`  // number of minimal trips in G∆
	Scores []float64 `json:"scores"` // parallel to Options.Selectors
}

// Result is the outcome of the occupancy method.
type Result struct {
	// Gamma is the saturation scale: the ∆ maximising the primary
	// selector's score.
	Gamma int64 `json:"gamma"`
	// Score is the primary selector's score at Gamma.
	Score float64 `json:"score"`
	// Selector is the name of the primary selector.
	Selector string `json:"selector,omitempty"`
	// Points holds the full sweep curve (sorted by Delta), e.g. the
	// M-K proximity curve of Figure 3 (right).
	Points []SweepPoint `json:"points,omitempty"`
}

// OccupancySample aggregates the stream at period delta and returns the
// distribution of occupancy rates of the minimal trips of G∆ (the
// curves of Figure 3 left and Figure 4). The window partition is built
// directly into the engine's CSR arena, without materialising a Series.
func OccupancySample(s *linkstream.Stream, delta int64, opt Options) (*dist.Sample, error) {
	if s.NumEvents() == 0 {
		return nil, ErrNoEvents
	}
	if delta <= 0 {
		return nil, fmt.Errorf("core: non-positive aggregation period %d", delta)
	}
	events := sortedEvents(s, opt.Directed)
	var scratch temporal.CSRScratch
	c := temporal.BuildCSR(events, events[0].T, delta, &scratch)
	cfg := temporal.Config{N: s.NumNodes(), Directed: opt.Directed, Workers: opt.Workers}
	return dist.NewSample(temporal.OccupanciesCSR(cfg, c))
}

// sortedEvents sorts the stream and returns its event buffer, a
// canonicalised copy of it for undirected analyses. Sorting and
// canonicalising happen once per sweep, not once per candidate period.
func sortedEvents(s *linkstream.Stream, directed bool) []linkstream.Event {
	s.Sort()
	events := s.Events()
	if !directed {
		events = linkstream.Canonical(events)
	}
	return events
}

// OccupancyObserver is the occupancy method as a sweep-engine observer:
// it scores every period's occupancy distribution (exact sample or
// streamed histogram) with the configured selectors. Register it with
// sweep.Run — or repro.MultiSweep — to fuse the occupancy curve with
// other metrics in one pass.
type OccupancyObserver struct {
	sels   []dist.Selector
	points []SweepPoint
}

// NewOccupancyObserver returns an observer scoring with the given
// selectors (nil selects the paper's default, M-K proximity only).
func NewOccupancyObserver(sels []dist.Selector) *OccupancyObserver {
	if len(sels) == 0 {
		sels = []dist.Selector{dist.MKProximitySelector{}}
	}
	return &OccupancyObserver{sels: sels}
}

// Needs implements sweep.Observer.
func (o *OccupancyObserver) Needs() sweep.Needs { return sweep.Needs{Occupancies: true} }

// Begin implements sweep.Observer.
func (o *OccupancyObserver) Begin(v *sweep.StreamView) error {
	o.points = make([]SweepPoint, len(v.Grid))
	return nil
}

// ObservePeriod implements sweep.Observer. It runs concurrently for
// different periods; each call only writes its own grid slot.
func (o *OccupancyObserver) ObservePeriod(p *sweep.Period) error {
	pt := SweepPoint{Delta: p.Delta, Scores: make([]float64, len(o.sels))}
	if p.Histogram != nil {
		// The histogram backend only approximates the M-K score; reject
		// other selectors here too, so the engine-level entry points
		// (sweep.Run, repro.MultiSweep) cannot silently fill their
		// slots with the wrong score.
		for _, sel := range o.sels {
			if _, ok := sel.(dist.MKProximitySelector); !ok {
				return fmt.Errorf("core: selector %s does not support the histogram backend", sel.Name())
			}
		}
		pt.Trips = int(p.Histogram.N())
		mk := p.Histogram.MKProximity()
		for si := range pt.Scores {
			pt.Scores[si] = mk
		}
	} else {
		sample, err := dist.NewSampleFromChunks(p.OccupancyCount, p.OccupancyChunks)
		if err != nil {
			return err
		}
		pt.Trips = sample.N()
		for si, sel := range o.sels {
			pt.Scores[si] = sel.Score(sample)
		}
	}
	o.points[p.Index] = pt
	return nil
}

// Points returns the scored curve in grid order. Valid after sweep.Run
// returns without error.
func (o *OccupancyObserver) Points() []SweepPoint { return o.points }

// Sweep scores every candidate period in grid with every selector in
// opt.Selectors. Points are returned in grid order.
//
// Sweep is a thin wrapper over the unified sweep engine: one
// OccupancyObserver registered with sweep.Run. The engine sorts and
// canonicalises the event buffer once, builds each period's CSR arena
// exactly once, schedules (period, destination-block) work items on one
// shared worker pool, and keeps at most opt.MaxInFlight periods
// resident — each period is built, swept, scored and freed before the
// grid moves on.
func Sweep(ctx context.Context, s *linkstream.Stream, grid []int64, opt Options) ([]SweepPoint, error) {
	if s.NumEvents() == 0 {
		return nil, ErrNoEvents
	}
	if len(grid) == 0 {
		return nil, errors.New("core: empty candidate grid")
	}
	sels := opt.selectors()
	if opt.HistogramBins > 0 {
		if err := validateHistogramSelectors(sels); err != nil {
			return nil, err
		}
	}
	for _, delta := range grid {
		if delta <= 0 {
			return nil, fmt.Errorf("core: non-positive aggregation period %d", delta)
		}
	}
	obs := NewOccupancyObserver(sels)
	if err := sweep.Run(ctx, s, grid, opt.engineOptions(), obs); err != nil {
		return nil, err
	}
	return obs.Points(), nil
}

// engineOptions translates the occupancy-method options into the sweep
// engine's.
func (o Options) engineOptions() sweep.Options {
	return sweep.Options{
		Directed:      o.Directed,
		Workers:       o.Workers,
		MaxInFlight:   o.MaxInFlight,
		HistogramBins: o.HistogramBins,
		LaneWidth:     o.LaneWidth,
	}
}

// Best returns the index of the point maximising selector selIdx.
// Ties are broken towards the smaller ∆ (the paper treats γ as an upper
// bound, so the conservative choice is the finer scale).
func Best(points []SweepPoint, selIdx int) int {
	best := -1
	for i, p := range points {
		if best < 0 || p.Scores[selIdx] > points[best].Scores[selIdx] {
			best = i
		}
	}
	return best
}

// SaturationScale runs the occupancy method end to end: sweep the ∆
// grid, optionally refine around the maximum, and return γ together
// with the full score curve. It is SaturationScaleWith driven by plain
// engine passes over the stream; the staged refinement means every
// distinct ∆ is swept at most once.
func SaturationScale(ctx context.Context, s *linkstream.Stream, opt Options) (Result, error) {
	if s.NumEvents() == 0 {
		return Result{}, ErrNoEvents
	}
	if len(opt.Grid) == 0 {
		opt.Grid = DefaultGrid(s, DefaultGridPoints)
	}
	return SaturationScaleWith(ctx, opt, func(grid []int64, obs sweep.Observer) error {
		return sweep.Run(ctx, s, grid, opt.engineOptions(), obs)
	})
}

// mergePoints merges two sweeps, dropping duplicate deltas and keeping
// the result sorted by Delta.
func mergePoints(a, b []SweepPoint) []SweepPoint {
	out := make([]SweepPoint, 0, len(a)+len(b))
	seen := make(map[int64]bool, len(a)+len(b))
	add := func(ps []SweepPoint) {
		for _, p := range ps {
			if !seen[p.Delta] {
				seen[p.Delta] = true
				out = append(out, p)
			}
		}
	}
	add(a)
	add(b)
	sort.Slice(out, func(i, j int) bool { return out[i].Delta < out[j].Delta })
	return out
}
