package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/sweep"
)

// runSearch drives a SaturationScale search over the stream and returns
// the result plus the number of engine passes it took.
func runSearch(t *testing.T, s *linkstream.Stream, opt Options) (Result, int) {
	t.Helper()
	passes := 0
	res, err := SaturationScaleWith(context.Background(), opt, func(grid []int64, obs sweep.Observer) error {
		passes++
		return sweep.Run(context.Background(), s, grid, sweep.Options{}, obs)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, passes
}

// TestSpeculativeMatchesSerialBisection pins the tentpole guarantee of
// the speculative mode: serial bracket bisection and speculative
// bisection sweep the same ∆ sequence and return bit-identical Results
// — speculation only halves the number of engine passes spent on
// refinement.
func TestSpeculativeMatchesSerialBisection(t *testing.T) {
	for seed := int64(2); seed <= 5; seed++ {
		s := mixedStream(t, 7, 2, 3000, seed)
		for _, refine := range []int{1, 3, 6} {
			base := Options{Grid: LogGrid(1, 3000, 9), Refine: refine}

			serialOpt := base
			serialOpt.Bisect = true
			serial, serialPasses := runSearch(t, s, serialOpt)

			specOpt := base
			specOpt.Speculate = true
			spec, specPasses := runSearch(t, s, specOpt)

			if !reflect.DeepEqual(spec, serial) {
				t.Fatalf("seed=%d refine=%d:\n speculative %+v\n serial      %+v", seed, refine, spec, serial)
			}
			if specPasses > serialPasses {
				t.Fatalf("seed=%d refine=%d: speculative took %d passes, serial %d", seed, refine, specPasses, serialPasses)
			}
			if serialPasses > specPasses && specPasses < 2 {
				t.Fatalf("seed=%d refine=%d: refinement ran (%d serial passes) but speculation stayed at %d",
					seed, refine, serialPasses, specPasses)
			}
		}
	}
}

// TestSpeculativeSweepsEachDeltaOnce extends the builds == points
// invariant to both bisection modes: every distinct ∆ of the final
// curve is built exactly once, losing speculative midpoints included.
func TestSpeculativeSweepsEachDeltaOnce(t *testing.T) {
	s := mixedStream(t, 7, 2, 3000, 3)
	for _, speculate := range []bool{false, true} {
		opt := Options{Grid: LogGrid(1, 3000, 8), Refine: 5, Bisect: true, Speculate: speculate}
		sweep.ResetBuildStats()
		res, err := SaturationScale(context.Background(), s, opt)
		if err != nil {
			t.Fatal(err)
		}
		builds, _ := sweep.BuildStats()
		if builds != int64(len(res.Points)) {
			t.Fatalf("speculate=%v: built %d period CSRs for %d distinct scored deltas", speculate, builds, len(res.Points))
		}
		if len(res.Points) <= len(opt.Grid) {
			t.Fatalf("speculate=%v: bisection added no points (%d <= %d)", speculate, len(res.Points), len(opt.Grid))
		}
	}
}

// TestBisectRoundsBounded pins the Refine semantics of bisection mode:
// each round stages at most two fresh midpoints, so the curve grows by
// at most 2*Refine points over the initial grid, and Refine=0 disables
// refinement entirely.
func TestBisectRoundsBounded(t *testing.T) {
	s := mixedStream(t, 7, 2, 3000, 6)
	grid := LogGrid(1, 3000, 9)
	for _, refine := range []int{0, 2, 4} {
		res, _ := runSearch(t, s, Options{Grid: grid, Refine: refine, Speculate: true})
		if extra := len(res.Points) - len(grid); extra > 2*refine {
			t.Fatalf("refine=%d: bisection added %d points, bound is %d", refine, extra, 2*refine)
		}
		if refine == 0 && len(res.Points) != len(grid) {
			t.Fatalf("refine=0 must not refine: %d points for a %d-point grid", len(res.Points), len(grid))
		}
	}
}

// TestGeoMid pins the midpoint helper's clamping.
func TestGeoMid(t *testing.T) {
	for _, tc := range []struct{ a, b, want int64 }{
		{1, 100, 10},
		{10, 1000, 100},
		{5, 7, 6},
		{5, 6, 5}, // no interior point: endpoint, seen-filtered by caller
		{5, 5, 5}, // degenerate bracket
		{1, 2, 1}, // no interior point
		{2, 9, 4}, // sqrt(18) ≈ 4.24
		{100, 101, 100},
	} {
		if got := geoMid(tc.a, tc.b); got != tc.want {
			t.Fatalf("geoMid(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := geoMid(tc.a, tc.b); got < tc.a || got > tc.b {
			t.Fatalf("geoMid(%d, %d) = %d out of bracket", tc.a, tc.b, got)
		}
	}
}
