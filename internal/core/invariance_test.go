package core

import (
	"context"

	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linkstream"
)

// randomSmallStream builds a random stream on up to 8 nodes.
func randomSmallStream(rng *rand.Rand) *linkstream.Stream {
	n := rng.Intn(6) + 3
	m := rng.Intn(60) + 10
	s := linkstream.New()
	s.EnsureNodes(n)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if err := s.AddID(u, v, int64(rng.Intn(500))); err != nil {
			panic(err)
		}
	}
	return s
}

// Property: the occupancy method is invariant under time shifts —
// shifting every timestamp by a constant changes neither the grid
// (built from duration and resolution, both shift-invariant) nor any
// occupancy distribution, hence neither gamma.
func TestQuickTimeShiftInvariance(t *testing.T) {
	f := func(seed int64, shiftRaw int32) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSmallStream(rng)
		if s.NumEvents() == 0 {
			return true
		}
		shifted := s.Clone()
		shifted.ShiftTime(int64(shiftRaw))
		grid := LogGrid(1, s.Duration(), 10)
		opt := Options{Workers: 1}
		a, err := Sweep(context.Background(), s, grid, opt)
		if err != nil {
			return false
		}
		b, err := Sweep(context.Background(), shifted, grid, opt)
		if err != nil {
			return false
		}
		for i := range a {
			if a[i].Trips != b[i].Trips || a[i].Scores[0] != b[i].Scores[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the occupancy method is invariant under node relabelling —
// permuting node identities permutes trips but leaves the occupancy
// distribution, and therefore every score, unchanged.
func TestQuickRelabelInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSmallStream(rng)
		if s.NumEvents() == 0 {
			return true
		}
		n := s.NumNodes()
		perm := rng.Perm(n)
		relabeled := linkstream.New()
		relabeled.EnsureNodes(n)
		for _, e := range s.Events() {
			if err := relabeled.AddID(int32(perm[e.U]), int32(perm[e.V]), e.T); err != nil {
				return false
			}
		}
		grid := LogGrid(1, s.Duration(), 8)
		opt := Options{Workers: 1}
		a, err := Sweep(context.Background(), s, grid, opt)
		if err != nil {
			return false
		}
		b, err := Sweep(context.Background(), relabeled, grid, opt)
		if err != nil {
			return false
		}
		for i := range a {
			if a[i].Trips != b[i].Trips || a[i].Scores[0] != b[i].Scores[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: reversing edge orientation leaves the undirected analysis
// unchanged. (No such symmetry holds for the directed analysis: time
// still flows forward, so reversing edges without reversing time
// changes reachability.)
func TestQuickReversalInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSmallStream(rng)
		if s.NumEvents() == 0 {
			return true
		}
		reversed := linkstream.New()
		reversed.EnsureNodes(s.NumNodes())
		for _, e := range s.Events() {
			if err := reversed.AddID(e.V, e.U, e.T); err != nil {
				return false
			}
		}
		grid := LogGrid(1, s.Duration(), 8)
		opt := Options{Workers: 1}
		a, err := Sweep(context.Background(), s, grid, opt)
		if err != nil {
			return false
		}
		b, err := Sweep(context.Background(), reversed, grid, opt)
		if err != nil {
			return false
		}
		for i := range a {
			if a[i].Trips != b[i].Trips || a[i].Scores[0] != b[i].Scores[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
