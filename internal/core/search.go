package core

// This file implements the engine-backed bisection entry points of the
// occupancy method: SaturationScale's sweep-then-refine loop factored
// into a resumable state machine (ScaleSearch) whose engine passes are
// supplied by the caller. A single search is SaturationScaleWith; many
// concurrent searches — one per activity segment, as internal/adaptive
// runs them — batch the requests of each round into one fused
// sweep.RunWindowed pass, so every segment's grid flows through one
// engine pipeline under the shared MaxInFlight bound. Batched searches
// whose windows and candidate periods coincide (a homogeneous stream's
// single segment against the global search) are deduplicated by the
// engine itself: one (window, ∆) CSR build serves every search that
// requested it, bit-identically.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/sweep"
)

// SweepRunner executes one engine pass: score every period of grid with
// obs (registering it with sweep.Run, sweep.RunWindowed, or any other
// scheduler). It is the pluggable sweep of SaturationScaleWith.
type SweepRunner func(grid []int64, obs sweep.Observer) error

// ScaleSearch is the occupancy method as a resumable bisection: it
// emits sweep requests (a candidate grid plus an observer to score it
// with) and absorbs the scored points until γ is determined, letting a
// caller interleave or batch the engine passes of many searches.
//
// Protocol: call Next for the pending request; run any engine pass that
// registers the returned observer over the returned grid; call Absorb.
// Repeat until Next reports ok == false, then read Result. Each
// distinct ∆ is swept at most once across all rounds — refinement grids
// are deduplicated against every ∆ already scored, which the plain
// SaturationScale never did (its refine pass rebuilt its grid
// endpoints).
//
// With Options.Bisect the refinement is a bracket bisection: every
// round stages the two geometric half-midpoints of the bracket around
// the running maximum, and Options.Refine bounds the rounds. Serial
// bisection emits the staged midpoints one request at a time;
// Options.Speculate emits both in one request, halving the engine
// passes. Both modes recompute the bracket only once the staged pair is
// fully absorbed, so they sweep identical ∆ sequences and the losing
// half's points simply stay in the dedup set — speculation changes pass
// batching, never the Result.
type ScaleSearch struct {
	opt       Options
	sels      []dist.Selector
	seen      map[int64]bool
	points    []SweepPoint
	cur       *OccupancyObserver
	curGrid   []int64
	requested bool    // a NextGrid/Next request is outstanding
	pending   []int64 // bisection midpoints staged but not yet requested
	rounds    int     // bisection bracket recomputations remaining
	refined   bool
	done      bool
}

// NewScaleSearch validates opt and stages the initial sweep request.
// Unlike SaturationScale, opt.Grid must be set explicitly — a search
// has no stream to derive a default grid from.
func NewScaleSearch(opt Options) (*ScaleSearch, error) {
	if len(opt.Grid) == 0 {
		return nil, errors.New("core: ScaleSearch needs an explicit candidate grid")
	}
	for _, delta := range opt.Grid {
		if delta <= 0 {
			return nil, fmt.Errorf("core: non-positive aggregation period %d", delta)
		}
	}
	sels := opt.selectors()
	if opt.HistogramBins > 0 {
		if err := validateHistogramSelectors(sels); err != nil {
			return nil, err
		}
	}
	sc := &ScaleSearch{opt: opt, sels: sels, seen: make(map[int64]bool, len(opt.Grid)), curGrid: opt.Grid}
	if opt.Bisect || opt.Speculate {
		sc.rounds = opt.Refine
	}
	for _, d := range opt.Grid {
		sc.seen[d] = true
	}
	return sc, nil
}

// Next returns the pending sweep request: the grid to sweep and the
// observer to register for it. ok is false when the search is complete
// (or a previous request has not been absorbed yet).
func (sc *ScaleSearch) Next() (grid []int64, obs sweep.Observer, ok bool) {
	if sc.done || sc.requested || sc.curGrid == nil {
		return nil, nil, false
	}
	sc.cur = NewOccupancyObserver(sc.sels)
	sc.requested = true
	return sc.curGrid, sc.cur, true
}

// NextGrid is the observer-less half of the request protocol, for
// callers whose engine passes run elsewhere (a shard coordinator
// dispatching grids to workers): it returns the pending candidate grid
// without allocating an observer. Fold the scored points back with
// AbsorbPoints. ok is false when the search is complete or a previous
// request has not been absorbed yet.
func (sc *ScaleSearch) NextGrid() (grid []int64, ok bool) {
	if sc.done || sc.requested || sc.curGrid == nil {
		return nil, false
	}
	sc.requested = true
	return sc.curGrid, true
}

// Absorb folds the scored points of the last Next request into the
// search and stages the refinement round when opt.Refine asks for one
// and the maximum is not yet pinned to grid resolution.
func (sc *ScaleSearch) Absorb() error {
	if sc.cur == nil {
		return errors.New("core: Absorb without a pending sweep request")
	}
	pts := sc.cur.Points()
	sc.cur = nil
	return sc.absorb(pts)
}

// AbsorbPoints folds externally scored points into the search — the
// partial-fold entry point matching NextGrid. pts must hold one scored
// point per period of the last NextGrid grid, in grid order (exactly
// what OccupancyObserver.Points returns for that grid), so a
// coordinator folding per-shard partials reproduces Absorb bit for
// bit.
func (sc *ScaleSearch) AbsorbPoints(pts []SweepPoint) error {
	if !sc.requested {
		return errors.New("core: AbsorbPoints without a pending sweep request")
	}
	if sc.cur != nil {
		return errors.New("core: AbsorbPoints on an observer-backed request; call Absorb")
	}
	if len(pts) != len(sc.curGrid) {
		return fmt.Errorf("core: AbsorbPoints: %d points for a %d-period grid", len(pts), len(sc.curGrid))
	}
	for i, p := range pts {
		if p.Delta != sc.curGrid[i] {
			return fmt.Errorf("core: AbsorbPoints: point %d scores ∆=%d, grid wants ∆=%d", i, p.Delta, sc.curGrid[i])
		}
	}
	return sc.absorb(pts)
}

// absorb is the shared fold: merge the scored points and stage the
// next round (refinement or bisection) or finish.
func (sc *ScaleSearch) absorb(pts []SweepPoint) error {
	sc.curGrid, sc.requested = nil, false
	if sc.points == nil {
		sc.points = pts
	} else {
		sc.points = mergePoints(sc.points, pts)
	}
	if sc.opt.Bisect || sc.opt.Speculate {
		sc.stageBisection()
		return nil
	}
	if !sc.refined {
		sc.refined = true
		if sc.opt.Refine > 0 && len(sc.points) > 1 {
			best := Best(sc.points, 0)
			lo := sc.points[max(0, best-1)].Delta
			hi := sc.points[min(len(sc.points)-1, best+1)].Delta
			if hi > lo+1 {
				var fresh []int64
				for _, d := range LogGrid(lo, hi, sc.opt.Refine+2) {
					if !sc.seen[d] {
						sc.seen[d] = true
						fresh = append(fresh, d)
					}
				}
				if len(fresh) > 0 {
					sc.curGrid = fresh
					return nil
				}
			}
		}
	}
	sc.done = true
	return nil
}

// stageBisection advances the bracket-bisection refinement: staged
// midpoints are requested before the bracket is recomputed, so serial
// and speculative searches sweep the same ∆ sequence.
func (sc *ScaleSearch) stageBisection() {
	if len(sc.pending) > 0 {
		sc.curGrid = sc.pending[:1:1]
		sc.pending = sc.pending[1:]
		return
	}
	if sc.rounds > 0 {
		if mids := sc.bracketMids(); len(mids) > 0 {
			sc.rounds--
			for _, d := range mids {
				sc.seen[d] = true
			}
			if sc.opt.Speculate {
				sc.curGrid = mids
			} else {
				sc.curGrid = mids[:1:1]
				sc.pending = mids[1:]
			}
			return
		}
	}
	sc.done = true
}

// bracketMids returns the unseen geometric half-midpoints of the
// bracket enclosing the current maximum: one candidate in
// (points[best-1].∆, best∆) and one in (best∆, points[best+1].∆). An
// empty result means the maximum is pinned to timestamp resolution.
func (sc *ScaleSearch) bracketMids() []int64 {
	if len(sc.points) < 2 {
		return nil
	}
	best := Best(sc.points, 0)
	b := sc.points[best].Delta
	var mids []int64
	if best > 0 {
		if m := geoMid(sc.points[best-1].Delta, b); !sc.seen[m] {
			mids = append(mids, m)
		}
	}
	if best < len(sc.points)-1 {
		if m := geoMid(b, sc.points[best+1].Delta); !sc.seen[m] {
			mids = append(mids, m)
		}
	}
	return mids
}

// geoMid returns the geometric midpoint of (a, b), clamped inside the
// open interval; when b <= a+1 no interior point exists and an endpoint
// (always already swept, hence seen-filtered) is returned.
func geoMid(a, b int64) int64 {
	m := int64(math.Round(math.Sqrt(float64(a) * float64(b))))
	if m <= a {
		m = a + 1
	}
	if m >= b {
		m = b - 1
	}
	if m < a {
		m = a
	}
	return m
}

// Done reports whether the search has converged.
func (sc *ScaleSearch) Done() bool { return sc.done }

// Result returns γ and the full score curve. It errors until the
// search is complete.
func (sc *ScaleSearch) Result() (Result, error) {
	if !sc.done {
		return Result{}, errors.New("core: scale search has pending sweep requests")
	}
	best := Best(sc.points, 0)
	return Result{
		Gamma:    sc.points[best].Delta,
		Score:    sc.points[best].Scores[0],
		Selector: sc.sels[0].Name(),
		Points:   sc.points,
	}, nil
}

// SaturationScaleWith runs the occupancy method's bisection through a
// caller-supplied engine pass: every grid the search stages is handed
// to run together with the observer that scores it. SaturationScale is
// SaturationScaleWith over a plain sweep.Run; callers fusing several
// analyses into shared engine passes (internal/adaptive) drive the
// ScaleSearch protocol directly and batch the requests of concurrent
// searches into single sweep.RunWindowed invocations.
func SaturationScaleWith(ctx context.Context, opt Options, run SweepRunner) (Result, error) {
	sc, err := NewScaleSearch(opt)
	if err != nil {
		return Result{}, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		grid, obs, ok := sc.Next()
		if !ok {
			break
		}
		if err := run(grid, obs); err != nil {
			return Result{}, err
		}
		if err := sc.Absorb(); err != nil {
			return Result{}, err
		}
	}
	return sc.Result()
}
