package core

import (
	"context"

	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/linkstream"
)

// uniformStream builds a small time-uniform network: every pair of n
// nodes gets N events at uniformly random timestamps in [0, T).
func uniformStream(t testing.TB, n, perPair int, T int64, seed int64) *linkstream.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := linkstream.New()
	s.EnsureNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for k := 0; k < perPair; k++ {
				if err := s.AddID(int32(u), int32(v), rng.Int63n(T)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s
}

func TestLogGrid(t *testing.T) {
	g := LogGrid(1, 1000, 10)
	if g[0] != 1 || g[len(g)-1] != 1000 {
		t.Fatalf("grid endpoints = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not strictly increasing: %v", g)
		}
	}
	if got := LogGrid(5, 5, 10); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate grid = %v", got)
	}
	if got := LogGrid(0, 10, 3); got[0] != 1 {
		t.Fatalf("lo < 1 should clamp to 1: %v", got)
	}
	if got := LogGrid(10, 3, 4); got[len(got)-1] != 10 {
		t.Fatalf("hi < lo should clamp: %v", got)
	}
}

func TestLinearGrid(t *testing.T) {
	g := LinearGrid(0, 100, 11)
	if len(g) != 11 || g[0] != 0 || g[10] != 100 || g[5] != 50 {
		t.Fatalf("linear grid = %v", g)
	}
	if got := LinearGrid(7, 7, 5); len(got) != 1 || got[0] != 7 {
		t.Fatalf("degenerate linear grid = %v", got)
	}
}

func TestOccupancySampleLimits(t *testing.T) {
	s := uniformStream(t, 6, 3, 1000, 1)
	// ∆ = T: single window, all occupancies exactly 1.
	full, err := OccupancySample(s, 10_000, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range full.Values() {
		if v != 1 {
			t.Fatalf("occupancy %v != 1 at full aggregation", v)
		}
	}
	// ∆ = resolution: occupancies concentrate near 0 (long waits).
	fine, err := OccupancySample(s, 1, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Mean() >= full.Mean() {
		t.Fatalf("fine mean %v should be below full mean %v", fine.Mean(), full.Mean())
	}
}

func TestSweepErrors(t *testing.T) {
	empty := linkstream.New()
	if _, err := Sweep(context.Background(), empty, []int64{1}, Options{}); !errors.Is(err, ErrNoEvents) {
		t.Fatalf("empty stream sweep err = %v", err)
	}
	s := uniformStream(t, 4, 2, 100, 2)
	if _, err := Sweep(context.Background(), s, nil, Options{}); err == nil {
		t.Fatal("empty grid should error")
	}
	if _, err := OccupancySample(empty, 5, Options{}); !errors.Is(err, ErrNoEvents) {
		t.Fatalf("empty stream sample err = %v", err)
	}
	// Histogram backend with a non-MK selector is rejected.
	_, err := Sweep(context.Background(), s, []int64{10}, Options{
		HistogramBins: 64,
		Selectors:     []dist.Selector{dist.CRESelector{}},
	})
	if err == nil {
		t.Fatal("histogram + CRE should be rejected")
	}
}

func TestSaturationScaleUnimodalCurve(t *testing.T) {
	s := uniformStream(t, 8, 4, 20_000, 3)
	res, err := SaturationScale(context.Background(), s, Options{Workers: 2, Grid: LogGrid(1, 20_000, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gamma <= 1 || res.Gamma >= 20_000 {
		t.Fatalf("gamma = %d should be interior to the sweep range", res.Gamma)
	}
	if res.Selector != "mk-proximity" {
		t.Fatalf("selector = %q", res.Selector)
	}
	// The proximity must be lower at both extremes than at gamma.
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	if first.Scores[0] >= res.Score || last.Scores[0] >= res.Score {
		t.Fatalf("score curve not peaked: first=%v best=%v last=%v",
			first.Scores[0], res.Score, last.Scores[0])
	}
}

func TestSaturationScaleRefine(t *testing.T) {
	s := uniformStream(t, 6, 3, 5000, 4)
	coarse, err := SaturationScale(context.Background(), s, Options{Workers: 2, Grid: LogGrid(1, 5000, 8)})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := SaturationScale(context.Background(), s, Options{Workers: 2, Grid: LogGrid(1, 5000, 8), Refine: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(refined.Points) <= len(coarse.Points) {
		t.Fatalf("refinement should add points: %d vs %d", len(refined.Points), len(coarse.Points))
	}
	if refined.Score < coarse.Score {
		t.Fatalf("refined score %v below coarse %v", refined.Score, coarse.Score)
	}
	for i := 1; i < len(refined.Points); i++ {
		if refined.Points[i].Delta <= refined.Points[i-1].Delta {
			t.Fatalf("merged points not sorted: %v", refined.Points)
		}
	}
}

func TestHistogramBackendMatchesExact(t *testing.T) {
	s := uniformStream(t, 6, 3, 5000, 5)
	grid := LogGrid(1, 5000, 10)
	exact, err := Sweep(context.Background(), s, grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Sweep(context.Background(), s, grid, Options{Workers: 1, HistogramBins: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		d := exact[i].Scores[0] - hist[i].Scores[0]
		if d < 0 {
			d = -d
		}
		if d > 2.0/4096*4 {
			t.Fatalf("delta %d: exact %v vs histogram %v", exact[i].Delta, exact[i].Scores[0], hist[i].Scores[0])
		}
		if exact[i].Trips != hist[i].Trips {
			t.Fatalf("trip counts differ at delta %d: %d vs %d", exact[i].Delta, exact[i].Trips, hist[i].Trips)
		}
	}
}

func TestMultiSelectorSweep(t *testing.T) {
	s := uniformStream(t, 6, 3, 5000, 6)
	sels := dist.AllSelectors()
	points, err := Sweep(context.Background(), s, LogGrid(1, 5000, 8), Options{Workers: 1, Selectors: sels})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if len(p.Scores) != len(sels) {
			t.Fatalf("point has %d scores, want %d", len(p.Scores), len(sels))
		}
	}
	// Section 7: all metrics except the variation coefficient pick
	// periods in the same ballpark; the variation coefficient collapses
	// to the smallest period.
	vcIdx := 2 // variation-coefficient position in AllSelectors
	bestVC := Best(points, vcIdx)
	if points[bestVC].Delta != points[0].Delta {
		t.Logf("note: variation coefficient picked %d (smallest is %d)", points[bestVC].Delta, points[0].Delta)
	}
}

func TestBestTieBreaksSmaller(t *testing.T) {
	points := []SweepPoint{
		{Delta: 1, Scores: []float64{0.3}},
		{Delta: 2, Scores: []float64{0.3}},
		{Delta: 3, Scores: []float64{0.1}},
	}
	if got := Best(points, 0); got != 0 {
		t.Fatalf("Best = %d, want 0 (ties towards smaller delta)", got)
	}
}

// Property: grids are sorted, within bounds and contain the endpoints.
func TestQuickLogGridInvariants(t *testing.T) {
	f := func(loRaw, hiRaw uint16, pRaw uint8) bool {
		lo := int64(loRaw)%1000 + 1
		hi := lo + int64(hiRaw)
		points := int(pRaw%60) + 2
		g := LogGrid(lo, hi, points)
		if len(g) == 0 || g[0] != lo || g[len(g)-1] != hi {
			return false
		}
		for i := 1; i < len(g); i++ {
			if g[i] <= g[i-1] {
				return false
			}
		}
		return len(g) <= points+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
