package core

import (
	"context"

	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/sweep"
)

// TestSaturationScaleWithMatchesSaturationScale pins the factoring:
// driving the bisection through an explicit runner is bit-identical to
// the end-to-end entry point, with and without refinement.
func TestSaturationScaleWithMatchesSaturationScale(t *testing.T) {
	s := mixedStream(t, 7, 2, 3000, 2)
	for _, refine := range []int{0, 4} {
		opt := Options{Grid: LogGrid(1, 3000, 10), Refine: refine, Selectors: dist.AllSelectors()}
		want, err := SaturationScale(context.Background(), s, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SaturationScaleWith(context.Background(), opt, func(grid []int64, obs sweep.Observer) error {
			return sweep.Run(context.Background(), s, grid, sweep.Options{}, obs)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("refine=%d:\n got %+v\nwant %+v", refine, got, want)
		}
	}
}

// TestScaleSearchSweepsEachDeltaOnce asserts the staged refinement
// never rebuilds an already-scored ∆: the total CSR builds of a refined
// SaturationScale equal the number of distinct points in its curve.
func TestScaleSearchSweepsEachDeltaOnce(t *testing.T) {
	s := mixedStream(t, 7, 2, 3000, 3)
	opt := Options{Grid: LogGrid(1, 3000, 8), Refine: 5}
	sweep.ResetBuildStats()
	res, err := SaturationScale(context.Background(), s, opt)
	if err != nil {
		t.Fatal(err)
	}
	builds, _ := sweep.BuildStats()
	if builds != int64(len(res.Points)) {
		t.Fatalf("built %d period CSRs for %d distinct scored deltas", builds, len(res.Points))
	}
	if len(res.Points) <= len(opt.Grid) {
		t.Fatalf("refinement added no points (%d <= %d); workload does not exercise the second round",
			len(res.Points), len(opt.Grid))
	}
}

// TestScaleSearchProtocol covers the state machine's misuse errors and
// the request/absorb cycle.
func TestScaleSearchProtocol(t *testing.T) {
	if _, err := NewScaleSearch(Options{}); err == nil {
		t.Fatal("missing grid must error")
	}
	if _, err := NewScaleSearch(Options{Grid: []int64{0}}); err == nil {
		t.Fatal("non-positive delta must error")
	}
	if _, err := NewScaleSearch(Options{Grid: []int64{5}, HistogramBins: 8, Selectors: dist.AllSelectors()}); err == nil {
		t.Fatal("histogram mode with non-M-K selectors must error")
	}

	sc, err := NewScaleSearch(Options{Grid: []int64{2, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Absorb(); err == nil {
		t.Fatal("Absorb before Next must error")
	}
	if _, err := sc.Result(); err == nil {
		t.Fatal("Result before convergence must error")
	}
	grid, obs, ok := sc.Next()
	if !ok || len(grid) != 2 || obs == nil {
		t.Fatalf("Next: grid=%v ok=%v", grid, ok)
	}
	if _, _, ok := sc.Next(); ok {
		t.Fatal("second Next without Absorb must report ok=false")
	}
	s := mixedStream(t, 5, 2, 500, 4)
	if err := sweep.Run(context.Background(), s, grid, sweep.Options{}, obs); err != nil {
		t.Fatal(err)
	}
	if err := sc.Absorb(); err != nil {
		t.Fatal(err)
	}
	if !sc.Done() {
		t.Fatal("Refine=0 search must converge after one round")
	}
	res, err := sc.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Gamma == 0 {
		t.Fatalf("result = %+v", res)
	}
}
