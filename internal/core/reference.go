package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/linkstream"
	"repro/internal/temporal"
)

// SweepReference is the seed implementation of Sweep: a sequential
// per-∆ loop that aggregates, sweeps and scores one period at a time,
// with none of the engine's fused scheduling. It is retained as the
// behavioural reference — the equivalence tests assert the engine
// reproduces it exactly, and the separate-passes benchmarks measure the
// engine against it.
func SweepReference(s *linkstream.Stream, grid []int64, opt Options) ([]SweepPoint, error) {
	if s.NumEvents() == 0 {
		return nil, ErrNoEvents
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("core: empty candidate grid")
	}
	sels := opt.selectors()
	events := sortedEvents(s, opt.Directed)
	t0 := events[0].T
	cfg := temporal.Config{N: s.NumNodes(), Directed: opt.Directed, Workers: opt.Workers}
	var scratch temporal.CSRScratch
	points := make([]SweepPoint, 0, len(grid))
	for _, delta := range grid {
		if delta <= 0 {
			return nil, fmt.Errorf("core: non-positive aggregation period %d", delta)
		}
		c := temporal.BuildCSR(events, t0, delta, &scratch)
		occ := temporal.OccupanciesCSR(cfg, c)
		p := SweepPoint{Delta: delta, Scores: make([]float64, len(sels))}
		if opt.HistogramBins > 0 {
			h := dist.NewHistogram(opt.HistogramBins)
			h.AddAll(occ)
			p.Trips = int(h.N())
			mk := h.MKProximity()
			for si := range sels {
				p.Scores[si] = mk
			}
		} else {
			sample, err := dist.NewSample(occ)
			if err != nil {
				return nil, err
			}
			p.Trips = sample.N()
			for si, sel := range sels {
				p.Scores[si] = sel.Score(sample)
			}
		}
		points = append(points, p)
	}
	return points, nil
}
