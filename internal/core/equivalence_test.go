package core

import (
	"context"

	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/linkstream"
	"repro/internal/sweep"
)

// mixedStream builds a seeded workload with random orientation so
// directed analyses exercise both edge directions.
func mixedStream(t testing.TB, n, perPair int, T int64, seed int64) *linkstream.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := linkstream.New()
	s.EnsureNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for k := 0; k < perPair; k++ {
				a, b := int32(u), int32(v)
				if rng.Intn(2) == 0 {
					a, b = b, a
				}
				if err := s.AddID(a, b, rng.Int63n(T)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s
}

// TestSweepMatchesReference asserts the engine-backed Sweep reproduces
// the seed per-∆ implementation exactly — same trip counts, bit-equal
// scores for all five selectors — on seeded workloads, directed and
// undirected, across worker counts and in-flight bounds.
func TestSweepMatchesReference(t *testing.T) {
	grids := [][]int64{
		{1, 9, 77, 500, 3000},
		{2, 30, 444, 3000},
		{1, 3000},
	}
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			s := mixedStream(t, 7, 2, 3000, seed)
			grid := grids[seed-1]
			opt := Options{Directed: directed, Selectors: dist.AllSelectors()}
			want, err := SweepReference(s, grid, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				for _, inFlight := range []int{1, 2, 0} {
					opt := opt
					opt.Workers = workers
					opt.MaxInFlight = inFlight
					got, err := Sweep(context.Background(), s, grid, opt)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("got %d points, want %d", len(got), len(want))
					}
					for i := range want {
						if got[i].Delta != want[i].Delta || got[i].Trips != want[i].Trips {
							t.Fatalf("directed=%v seed=%d w=%d f=%d point %d: %+v != %+v",
								directed, seed, workers, inFlight, i, got[i], want[i])
						}
						for si := range want[i].Scores {
							if got[i].Scores[si] != want[i].Scores[si] {
								t.Fatalf("directed=%v seed=%d w=%d f=%d point %d selector %d: %v != %v",
									directed, seed, workers, inFlight, i, si, got[i].Scores[si], want[i].Scores[si])
							}
						}
					}
				}
			}
		}
	}
}

// TestHistogramRejectsNonMKViaEngine pins the observer-level guard:
// driving the engine directly (as repro.MultiSweep does) with the
// histogram backend and a non-M-K selector must fail rather than
// silently fill every slot with the M-K score.
func TestHistogramRejectsNonMKViaEngine(t *testing.T) {
	s := mixedStream(t, 5, 2, 500, 9)
	obs := NewOccupancyObserver(dist.AllSelectors())
	err := sweep.Run(context.Background(), s, []int64{10, 100}, sweep.Options{HistogramBins: 32}, obs)
	if err == nil {
		t.Fatal("histogram mode with non-M-K selectors must error")
	}
}

// TestSweepHistogramMatchesReference covers the streamed-histogram
// backend against the reference's per-∆ histogram.
func TestSweepHistogramMatchesReference(t *testing.T) {
	s := mixedStream(t, 7, 3, 2000, 4)
	grid := []int64{2, 25, 300, 2000}
	opt := Options{HistogramBins: 128}
	want, err := SweepReference(s, grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 3
	opt.MaxInFlight = 2
	got, err := Sweep(context.Background(), s, grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Trips != want[i].Trips || got[i].Scores[0] != want[i].Scores[0] {
			t.Fatalf("point %d: %+v != %+v", i, got[i], want[i])
		}
	}
}
