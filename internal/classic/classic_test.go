package classic

import (
	"context"

	"math/rand"
	"testing"

	"repro/internal/linkstream"
)

func uniformStream(t testing.TB, n, perPair int, T int64, seed int64) *linkstream.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := linkstream.New()
	s.EnsureNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for k := 0; k < perPair; k++ {
				if err := s.AddID(int32(u), int32(v), rng.Int63n(T)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s
}

func TestCurveMonotoneTrends(t *testing.T) {
	// Section 3: when ∆ grows, density and connectedness increase
	// monotonically to their fully aggregated values, the distance in
	// hops decreases to 1 and the distance in absolute time increases.
	// Verify the endpoints and overall drift on a time-uniform stream.
	s := uniformStream(t, 8, 3, 10_000, 1)
	grid := []int64{1, 100, 1000, 10_000}
	points, err := Curve(context.Background(), s, grid, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(grid) {
		t.Fatalf("points = %d, want %d", len(points), len(grid))
	}
	first, last := points[0], points[len(points)-1]
	if first.MeanDensity >= last.MeanDensity {
		t.Fatalf("density should grow with delta: %v -> %v", first.MeanDensity, last.MeanDensity)
	}
	// Fully aggregated: one complete-ish snapshot, density near 1,
	// everyone non-isolated, one big component.
	if last.MeanNonIsolated != 8 {
		t.Fatalf("fully aggregated non-isolated = %v, want 8", last.MeanNonIsolated)
	}
	if last.MeanLargestComp != 8 {
		t.Fatalf("fully aggregated LCC = %v, want 8", last.MeanLargestComp)
	}
	// In a single-window series every trip takes exactly 1 window:
	// mean dtime = 1 and mean hops = 1.
	if last.MeanDistTime != 1 || last.MeanDistHops != 1 {
		t.Fatalf("fully aggregated distances = %+v", last)
	}
	if last.MeanDistAbsTime != float64(last.Delta) {
		t.Fatalf("abs time = %v, want %v", last.MeanDistAbsTime, float64(last.Delta))
	}
	if first.MeanDistHops <= last.MeanDistHops {
		t.Fatalf("hops should shrink with delta: %v -> %v", first.MeanDistHops, last.MeanDistHops)
	}
	if first.MeanDistAbsTime >= last.MeanDistAbsTime {
		t.Fatalf("absolute time should grow with delta: %v -> %v", first.MeanDistAbsTime, last.MeanDistAbsTime)
	}
}

func TestAtConsistency(t *testing.T) {
	s := uniformStream(t, 6, 2, 1000, 2)
	p, err := At(s, 50, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Delta != 50 {
		t.Fatalf("Delta = %d", p.Delta)
	}
	if p.FinitePairs <= 0 {
		t.Fatal("expected finite pairs")
	}
	if p.MeanDistAbsTime != 50*p.MeanDistTime {
		t.Fatalf("abs time %v != 50 * %v", p.MeanDistAbsTime, p.MeanDistTime)
	}
	if p.MeanDegree <= 0 || p.MeanDensity <= 0 {
		t.Fatalf("degenerate stats: %+v", p)
	}
}

func TestCurveErrors(t *testing.T) {
	empty := linkstream.New()
	if _, err := Curve(context.Background(), empty, []int64{1}, Options{}); err == nil {
		t.Fatal("empty stream should error")
	}
	s := uniformStream(t, 4, 1, 100, 3)
	if _, err := Curve(context.Background(), s, nil, Options{}); err == nil {
		t.Fatal("empty grid should error")
	}
	if _, err := At(s, 0, Options{}); err == nil {
		t.Fatal("delta 0 should error")
	}
}
