package classic

import (
	"context"

	"math/rand"
	"testing"

	"repro/internal/linkstream"
)

func mixedStream(t testing.TB, n, perPair int, T int64, seed int64) *linkstream.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := linkstream.New()
	s.EnsureNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for k := 0; k < perPair; k++ {
				a, b := int32(u), int32(v)
				if rng.Intn(2) == 0 {
					a, b = b, a
				}
				if err := s.AddID(a, b, rng.Int63n(T)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s
}

// TestCurveMatchesReference asserts the engine-backed Curve reproduces
// the seed per-∆ implementation (Series aggregation + snapshot stats +
// dedicated distance pass) exactly, field by field, on seeded
// workloads, directed and undirected.
func TestCurveMatchesReference(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			s := mixedStream(t, 7, 2, 2500, seed)
			grid := []int64{1, 13, 99, 800, 2500}
			want, err := CurveReference(s, grid, Options{Directed: directed, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				got, err := Curve(context.Background(), s, grid, Options{Directed: directed, Workers: workers, MaxInFlight: 2})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("got %d points, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("directed=%v seed=%d workers=%d point %d:\n got %+v\nwant %+v",
							directed, seed, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}
