// Package classic computes the classical graph-series properties the
// paper tracks across aggregation scales in Figure 2 — density,
// connectedness and the three distance notions — to demonstrate that
// none of them exhibits a qualitative change at any scale (Section 3),
// which is what motivates the occupancy method.
package classic

import (
	"errors"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/temporal"
)

// Point holds every Figure 2 quantity for one aggregation period.
type Point struct {
	Delta int64

	// Figure 2 top-left.
	MeanDensity float64
	MeanDegree  float64

	// Figure 2 top-right.
	MeanNonIsolated float64
	MeanLargestComp float64

	// Figure 2 bottom: mean distances over all couples and start times
	// with a finite distance. MeanDistTime is in window counts
	// (dtime = arr - dep + 1); MeanDistAbsTime = Delta * MeanDistTime is
	// in raw time units.
	MeanDistTime    float64
	MeanDistHops    float64
	MeanDistAbsTime float64
	FinitePairs     int64
}

// Options configures the sweep.
type Options struct {
	Directed bool
	Workers  int
}

// Curve computes the Figure 2 quantities for every period in grid.
func Curve(s *linkstream.Stream, grid []int64, opt Options) ([]Point, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("classic: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("classic: empty grid")
	}
	points := make([]Point, 0, len(grid))
	for _, delta := range grid {
		p, err := At(s, delta, opt)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// At computes the Figure 2 quantities for a single period.
func At(s *linkstream.Stream, delta int64, opt Options) (Point, error) {
	g, err := series.Aggregate(s, delta, opt.Directed)
	if err != nil {
		return Point{}, err
	}
	st, err := g.ComputeStats()
	if err != nil {
		return Point{}, err
	}
	cfg := temporal.Config{N: g.N, Directed: opt.Directed, Workers: opt.Workers}
	d := temporal.Distances(cfg, temporal.SeriesLayers(g), 0, 1)
	return Point{
		Delta:           delta,
		MeanDensity:     st.MeanDensity,
		MeanDegree:      st.MeanDegree,
		MeanNonIsolated: st.MeanNonIsolated,
		MeanLargestComp: st.MeanLargestComp,
		MeanDistTime:    d.MeanTime,
		MeanDistHops:    d.MeanHops,
		MeanDistAbsTime: float64(delta) * d.MeanTime,
		FinitePairs:     d.Count,
	}, nil
}
