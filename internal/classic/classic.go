// Package classic computes the classical graph-series properties the
// paper tracks across aggregation scales in Figure 2 — density,
// connectedness and the three distance notions — to demonstrate that
// none of them exhibits a qualitative change at any scale (Section 3),
// which is what motivates the occupancy method.
package classic

import (
	"context"
	"errors"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/sweep"
	"repro/internal/temporal"
)

// Point holds every Figure 2 quantity for one aggregation period.
type Point struct {
	Delta int64 `json:"delta"`

	// Figure 2 top-left.
	MeanDensity float64 `json:"mean_density"`
	MeanDegree  float64 `json:"mean_degree"`

	// Figure 2 top-right.
	MeanNonIsolated float64 `json:"mean_non_isolated"`
	MeanLargestComp float64 `json:"mean_largest_comp"`

	// Figure 2 bottom: mean distances over all couples and start times
	// with a finite distance. MeanDistTime is in window counts
	// (dtime = arr - dep + 1); MeanDistAbsTime = Delta * MeanDistTime is
	// in raw time units.
	MeanDistTime    float64 `json:"mean_dist_time"`
	MeanDistHops    float64 `json:"mean_dist_hops"`
	MeanDistAbsTime float64 `json:"mean_dist_abs_time"`
	FinitePairs     int64   `json:"finite_pairs"`
}

// Options configures the sweep.
type Options struct {
	Directed bool
	Workers  int
	// MaxInFlight bounds the periods the sweep engine keeps resident;
	// <= 0 selects the engine default.
	MaxInFlight int
}

// Observer collects the Figure 2 quantities as a sweep-engine
// observer: window statistics and distance means both fall out of the
// engine's single pass per period, so fusing the classical curve with
// the occupancy or validation metrics costs no extra aggregation.
type Observer struct {
	points []Point
}

// NewObserver returns an empty classical-properties observer.
func NewObserver() *Observer { return &Observer{} }

// Needs implements sweep.Observer.
func (o *Observer) Needs() sweep.Needs {
	return sweep.Needs{WindowStats: true, Distances: true}
}

// Begin implements sweep.Observer.
func (o *Observer) Begin(v *sweep.StreamView) error {
	o.points = make([]Point, len(v.Grid))
	return nil
}

// ObservePeriod implements sweep.Observer.
func (o *Observer) ObservePeriod(p *sweep.Period) error {
	st, d := p.Windows, p.Distances
	o.points[p.Index] = Point{
		Delta:           p.Delta,
		MeanDensity:     st.MeanDensity,
		MeanDegree:      st.MeanDegree,
		MeanNonIsolated: st.MeanNonIsolated,
		MeanLargestComp: st.MeanLargestComp,
		MeanDistTime:    d.MeanTime,
		MeanDistHops:    d.MeanHops,
		MeanDistAbsTime: float64(p.Delta) * d.MeanTime,
		FinitePairs:     d.Count,
	}
	return nil
}

// Points returns the curve in grid order. Valid after sweep.Run
// returns without error.
func (o *Observer) Points() []Point { return o.points }

// Curve computes the Figure 2 quantities for every period in grid, as
// one pass of the unified sweep engine (each period's CSR is built
// once, swept once for the distances and scanned once for the window
// statistics, then freed).
func Curve(ctx context.Context, s *linkstream.Stream, grid []int64, opt Options) ([]Point, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("classic: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("classic: empty grid")
	}
	obs := NewObserver()
	err := sweep.Run(ctx, s, grid, sweep.Options{
		Directed:    opt.Directed,
		Workers:     opt.Workers,
		MaxInFlight: opt.MaxInFlight,
	}, obs)
	if err != nil {
		return nil, err
	}
	return obs.Points(), nil
}

// CurveReference is the seed implementation of Curve: one At call — a
// full Series aggregation plus a dedicated distance pass — per period.
// Retained as the behavioural reference for the equivalence tests and
// the separate-passes benchmarks.
func CurveReference(s *linkstream.Stream, grid []int64, opt Options) ([]Point, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("classic: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("classic: empty grid")
	}
	points := make([]Point, 0, len(grid))
	for _, delta := range grid {
		p, err := At(s, delta, opt)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// At computes the Figure 2 quantities for a single period. It is the
// seed per-∆ implementation — one Series aggregation plus one distance
// pass — retained as the reference Curve is equivalence-tested
// against.
func At(s *linkstream.Stream, delta int64, opt Options) (Point, error) {
	g, err := series.Aggregate(s, delta, opt.Directed)
	if err != nil {
		return Point{}, err
	}
	st, err := g.ComputeStats()
	if err != nil {
		return Point{}, err
	}
	cfg := temporal.Config{N: g.N, Directed: opt.Directed, Workers: opt.Workers}
	d := temporal.Distances(cfg, temporal.SeriesLayers(g), 0, 1)
	return Point{
		Delta:           delta,
		MeanDensity:     st.MeanDensity,
		MeanDegree:      st.MeanDegree,
		MeanNonIsolated: st.MeanNonIsolated,
		MeanLargestComp: st.MeanLargestComp,
		MeanDistTime:    d.MeanTime,
		MeanDistHops:    d.MeanHops,
		MeanDistAbsTime: float64(delta) * d.MeanTime,
		FinitePairs:     d.Count,
	}, nil
}
