package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func mustSample(t *testing.T, values []float64) *Sample {
	t.Helper()
	s, err := NewSample(values)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSampleErrors(t *testing.T) {
	if _, err := NewSample(nil); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := NewSample([]float64{0.5, math.NaN()}); err == nil {
		t.Fatal("NaN should error")
	}
	if _, err := NewSample([]float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf should error")
	}
}

func TestSampleWeightedBasics(t *testing.T) {
	// 4x 0.25, 2x 0.5, 1x 1.0 — stored as 3 distinct values.
	s := mustSample(t, []float64{0.25, 0.5, 0.25, 1, 0.25, 0.5, 0.25})
	if s.N() != 7 {
		t.Fatalf("N = %d, want 7", s.N())
	}
	if got := s.Values(); len(got) != 3 || got[0] != 0.25 || got[1] != 0.5 || got[2] != 1 {
		t.Fatalf("distinct values = %v", got)
	}
	want := (4*0.25 + 2*0.5 + 1) / 7
	if math.Abs(s.Mean()-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", s.Mean(), want)
	}
	if got := s.CDF(0.25); math.Abs(got-4.0/7) > 1e-12 {
		t.Fatalf("CDF(0.25) = %v, want 4/7", got)
	}
	if got := s.CDF(0.2); got != 0 {
		t.Fatalf("CDF(0.2) = %v, want 0", got)
	}
	if got := s.ICD(0.5); math.Abs(got-1.0/7) > 1e-12 {
		t.Fatalf("ICD(0.5) = %v, want 1/7", got)
	}
	if got := s.ICD(1); got != 0 {
		t.Fatalf("ICD(1) = %v, want 0", got)
	}
}

// TestSampleMatchesNaiveStats cross-checks the weighted implementation
// against direct computation on the raw multiset.
func TestSampleMatchesNaiveStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 5000)
	// Mix of repeated rational values (like occupancies) and noise.
	for i := range values {
		if i%3 == 0 {
			values[i] = rng.Float64()
		} else {
			values[i] = float64(1+rng.Intn(9)) / float64(10+rng.Intn(10))
		}
	}
	s := mustSample(t, append([]float64(nil), values...))

	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Fatalf("mean = %v, naive %v", s.Mean(), mean)
	}
	var varAcc float64
	for _, v := range values {
		varAcc += (v - mean) * (v - mean)
	}
	std := math.Sqrt(varAcc / float64(len(values)))
	if math.Abs(s.Std()-std) > 1e-9 {
		t.Fatalf("std = %v, naive %v", s.Std(), std)
	}
	// CDF at a few points vs counting.
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for _, x := range []float64{0.1, 0.33, 0.5, 0.77, 0.999} {
		cnt := 0
		for _, v := range sorted {
			if v <= x {
				cnt++
			}
		}
		if got, want := s.CDF(x), float64(cnt)/float64(len(values)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("CDF(%v) = %v, naive %v", x, got, want)
		}
	}
	// MKDistance vs direct Riemann integration of |F(x)-x|.
	integ := 0.0
	const steps = 200000
	for i := 0; i < steps; i++ {
		x := (float64(i) + 0.5) / steps
		j := sort.SearchFloat64s(sorted, x)
		for j < len(sorted) && sorted[j] == x {
			j++
		}
		integ += math.Abs(float64(j)/float64(len(sorted))-x) / steps
	}
	if math.Abs(s.MKDistance()-integ) > 1e-4 {
		t.Fatalf("MKDistance = %v, numeric %v", s.MKDistance(), integ)
	}
}

func TestMKDistanceLimits(t *testing.T) {
	// Point mass at 0 and at 1: maximal distance 1/2, proximity 0.
	for _, v := range []float64{0, 1} {
		s := mustSample(t, []float64{v, v, v})
		if math.Abs(s.MKDistance()-0.5) > 1e-12 {
			t.Fatalf("point mass at %v: MK = %v, want 0.5", v, s.MKDistance())
		}
		if math.Abs(s.MKProximity()) > 1e-12 {
			t.Fatalf("point mass at %v: proximity = %v, want 0", v, s.MKProximity())
		}
	}
	// A fine uniform grid approaches distance 0 / proximity 1.
	grid := make([]float64, 1000)
	for i := range grid {
		grid[i] = (float64(i) + 0.5) / 1000
	}
	s := mustSample(t, grid)
	if s.MKDistance() > 1e-3 {
		t.Fatalf("uniform grid: MK = %v, want ~0", s.MKDistance())
	}
	if s.MKProximity() < 0.99 {
		t.Fatalf("uniform grid: proximity = %v, want ~1", s.MKProximity())
	}
}

func TestHistogramMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	values := make([]float64, 20000)
	for i := range values {
		values[i] = math.Pow(rng.Float64(), 2) // skewed towards 0
	}
	s := mustSample(t, append([]float64(nil), values...))
	h := NewHistogram(4096)
	h.AddAll(values)
	if h.N() != int64(len(values)) {
		t.Fatalf("histogram N = %d", h.N())
	}
	if d := math.Abs(h.MKProximity() - s.MKProximity()); d > 4.0/4096*2 {
		t.Fatalf("histogram proximity off by %v", d)
	}
}

func TestCREUniformQuarter(t *testing.T) {
	grid := make([]float64, 2000)
	for i := range grid {
		grid[i] = (float64(i) + 0.5) / 2000
	}
	s := mustSample(t, grid)
	if got := (CRESelector{}).Score(s); math.Abs(got-0.25) > 1e-2 {
		t.Fatalf("CRE of uniform = %v, want ~1/4", got)
	}
	point := mustSample(t, []float64{1, 1, 1})
	if got := (CRESelector{}).Score(point); got > 1e-12 {
		t.Fatalf("CRE of point mass at 1 = %v, want 0", got)
	}
}

func TestSelectorsOrderAndNames(t *testing.T) {
	sels := AllSelectors()
	if len(sels) != 5 {
		t.Fatalf("AllSelectors = %d, want 5", len(sels))
	}
	if sels[0].Name() != "mk-proximity" {
		t.Fatalf("primary selector = %q", sels[0].Name())
	}
	if sels[2].Name() != "variation-coefficient" {
		t.Fatalf("selector 2 = %q, the figure harness expects the variation coefficient there", sels[2].Name())
	}
	seen := map[string]bool{}
	s := mustSample(t, []float64{0.2, 0.4, 0.4, 0.9})
	for _, sel := range sels {
		if seen[sel.Name()] {
			t.Fatalf("duplicate selector name %q", sel.Name())
		}
		seen[sel.Name()] = true
		if v := sel.Score(s); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s score = %v", sel.Name(), v)
		}
	}
}

func TestSelectorsPreferUniformOverContracted(t *testing.T) {
	uniform := make([]float64, 500)
	for i := range uniform {
		uniform[i] = (float64(i) + 0.5) / 500
	}
	u := mustSample(t, uniform)
	contracted := mustSample(t, []float64{1, 1, 1, 1, 1})
	for _, sel := range AllSelectors() {
		if sel.Score(u) <= sel.Score(contracted) {
			t.Fatalf("%s: uniform %v <= contracted %v", sel.Name(), sel.Score(u), sel.Score(contracted))
		}
	}
}
