// Package dist implements the distribution machinery of the occupancy
// method: empirical samples of occupancy rates on [0,1], the exact
// Monge-Kantorovich (Wasserstein-1) distance to the uniform density, a
// fixed-bin streaming histogram approximation for very large trip
// populations, and the five uniformity selectors compared in Section 7
// of the paper (M-K proximity, standard deviation, variation
// coefficient, Shannon entropy and cumulative residual entropy).
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmptySample is returned by NewSample for an empty value slice.
var ErrEmptySample = errors.New("dist: empty sample")

// Sample is an empirical distribution of occupancy rates, stored as
// sorted distinct values with multiplicities. Occupancy populations are
// huge but take few distinct values (hops/duration ratios), so counting
// duplicates first and sorting only the distinct values is much faster
// than sorting the raw multiset — the raw sort dominated whole-sweep
// profiles before. All scoring methods assume the support is [0,1],
// which holds for occupancy rates by Definition 7.
type Sample struct {
	values []float64 // sorted distinct values
	cum    []int64   // cum[i] = number of sample points <= values[i]
	n      int64
	sum    float64
}

// NewSample builds the distribution of values. The multiset is counted
// through a hash on the float bits (no full sort); the input slice is
// not retained. An empty or non-finite sample is rejected.
func NewSample(values []float64) (*Sample, error) {
	if len(values) == 0 {
		return nil, ErrEmptySample
	}
	return NewSampleFromChunks(len(values), [][]float64{values})
}

// NewSampleFromChunks builds the distribution of a multiset given as a
// list of value chunks with total values overall, counting each chunk
// in place — the streaming entry point of the sweep pipeline, which
// hands over its workers' occupancy chunks without ever concatenating
// them. The chunks are not retained.
func NewSampleFromChunks(total int, chunks [][]float64) (*Sample, error) {
	if total == 0 {
		return nil, ErrEmptySample
	}
	m := newF64Counter()
	const expMask = 0x7FF0000000000000
	for _, values := range chunks {
		for _, v := range values {
			k := math.Float64bits(v)
			if k&expMask == expMask { // NaN or Inf: exponent all ones
				return nil, errors.New("dist: non-finite sample value")
			}
			m.add(k)
		}
	}
	s := &Sample{values: make([]float64, 0, m.used), n: int64(total)}
	counts := make(map[float64]int64, m.used)
	for i, c := range m.cnts {
		if c != 0 {
			v := math.Float64frombits(m.keys[i])
			s.values = append(s.values, v)
			counts[v] = c
		}
	}
	sort.Float64s(s.values)
	s.cum = make([]int64, len(s.values))
	var cum int64
	for i, v := range s.values {
		c := counts[v]
		cum += c
		s.cum[i] = cum
		s.sum += v * float64(c)
	}
	return s, nil
}

// f64Counter is a linear-probing multiset counter keyed by float bits.
type f64Counter struct {
	keys []uint64
	cnts []int64
	used int
}

// newF64Counter starts deliberately small: occupancy populations have
// few distinct values, and a small table stays cache-resident through
// millions of adds. Diverse inputs pay a few amortised rehashes.
func newF64Counter() *f64Counter {
	const size = 1024
	return &f64Counter{keys: make([]uint64, size), cnts: make([]int64, size)}
}

func (m *f64Counter) add(key uint64) {
	mask := uint64(len(m.keys) - 1)
	i := (key * 0x9E3779B97F4A7C15) & mask
	for {
		if m.cnts[i] == 0 {
			m.keys[i] = key
			m.cnts[i] = 1
			m.used++
			if 4*m.used > 3*len(m.keys) {
				m.grow()
			}
			return
		}
		if m.keys[i] == key {
			m.cnts[i]++
			return
		}
		i = (i + 1) & mask
	}
}

func (m *f64Counter) grow() {
	old := *m
	m.keys = make([]uint64, 2*len(old.keys))
	m.cnts = make([]int64, 2*len(old.cnts))
	mask := uint64(len(m.keys) - 1)
	for i, c := range old.cnts {
		if c == 0 {
			continue
		}
		key := old.keys[i]
		j := (key * 0x9E3779B97F4A7C15) & mask
		for m.cnts[j] != 0 {
			j = (j + 1) & mask
		}
		m.keys[j] = key
		m.cnts[j] = c
	}
}

// N returns the number of values in the sample (multiplicities
// included).
func (s *Sample) N() int { return int(s.n) }

// Values returns the sorted distinct values of the sample. The slice is
// owned by the sample and must not be modified; multiplicities are
// reflected by N, Mean and the scoring methods.
func (s *Sample) Values() []float64 { return s.values }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return s.sum / float64(s.n) }

// Std returns the (population) standard deviation of the sample.
func (s *Sample) Std() float64 {
	m := s.Mean()
	var acc float64
	prev := int64(0)
	for i, v := range s.values {
		d := v - m
		acc += d * d * float64(s.cum[i]-prev)
		prev = s.cum[i]
	}
	return math.Sqrt(acc / float64(s.n))
}

// count returns the multiplicity of the i-th distinct value.
func (s *Sample) count(i int) int64 {
	if i == 0 {
		return s.cum[0]
	}
	return s.cum[i] - s.cum[i-1]
}

// CDF returns the empirical cumulative distribution P(X <= x).
func (s *Sample) CDF(x float64) float64 {
	// First distinct value > x; everything before it is <= x.
	i := sort.Search(len(s.values), func(j int) bool { return s.values[j] > x })
	if i == 0 {
		return 0
	}
	return float64(s.cum[i-1]) / float64(s.n)
}

// ICD returns the inverse cumulative distribution P(X > x), the curve
// plotted in Figures 3 and 4.
func (s *Sample) ICD(x float64) float64 { return 1 - s.CDF(x) }

// MKDistance returns the exact Monge-Kantorovich (Wasserstein-1)
// distance between the empirical distribution and the uniform density
// on [0,1]: the integral over [0,1] of |F(x) - x| with F the empirical
// CDF, integrated piecewise between the distinct values. The result
// lies in [0, 1/2]; 0 is reached only by the uniform distribution
// itself.
func (s *Sample) MKDistance() float64 {
	n := float64(s.n)
	total := 0.0
	prev := 0.0 // left end of the current constant piece of F
	for i := 0; i <= len(s.values); i++ {
		level := 0.0
		if i > 0 {
			level = float64(s.cum[i-1]) / n
		}
		next := 1.0
		if i < len(s.values) {
			next = s.values[i]
			if next > 1 {
				next = 1
			}
		}
		if next > prev {
			total += stepAbsIntegral(level, prev, next)
			prev = next
		}
	}
	return total
}

// stepAbsIntegral integrates |f - x| for x in [a, b].
func stepAbsIntegral(f, a, b float64) float64 {
	switch {
	case f <= a: // |f - x| = x - f throughout
		return (a+b)/2*(b-a) - f*(b-a)
	case f >= b: // |f - x| = f - x throughout
		return f*(b-a) - (a+b)/2*(b-a)
	default: // crosses zero at x = f
		da, db := f-a, b-f
		return (da*da + db*db) / 2
	}
}

// MKProximity maps MKDistance into a proximity score on [0,1]: 1 for
// the uniform distribution, 0 for a point mass at 0 or 1 (the two
// distributions at maximal M-K distance 1/2 from uniform). This is the
// score the occupancy method maximises over candidate periods.
func (s *Sample) MKProximity() float64 { return 1 - 2*s.MKDistance() }

// Histogram is a fixed-bin streaming approximation of a Sample on
// [0,1], intended for trip populations too large to keep exactly. Bin i
// covers [i/bins, (i+1)/bins); values are clamped into [0,1].
type Histogram struct {
	counts []int64
	n      int64
}

// NewHistogram returns an empty histogram with the given number of
// bins (at least 1).
func NewHistogram(bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	return &Histogram{counts: make([]int64, bins)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	b := int(v * float64(len(h.counts)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b]++
	h.n++
}

// AddAll records every value of vs.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// N returns the number of recorded values.
func (h *Histogram) N() int64 { return h.n }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Merge adds every count of o into h. Both histograms must have the
// same number of bins. This is the concurrent-merge path of the sweep
// pipeline: workers bin occupancy chunks into a private histogram
// outside any lock and fold it into the shared per-period histogram
// with one O(bins) merge, so the hot binning loop never contends.
func (h *Histogram) Merge(o *Histogram) {
	if len(o.counts) != len(h.counts) {
		panic(fmt.Sprintf("dist: merging %d-bin histogram into %d bins", len(o.counts), len(h.counts)))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
}

// Reset zeroes the histogram for reuse.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n = 0
}

// MKProximity returns the histogram approximation of Sample.MKProximity,
// treating each bin's mass as concentrated at the bin centre. The error
// versus the exact sample is at most one bin width.
func (h *Histogram) MKProximity() float64 {
	if h.n == 0 {
		return 0
	}
	bins := float64(len(h.counts))
	n := float64(h.n)
	total := 0.0
	prev := 0.0
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		centre := (float64(i) + 0.5) / bins
		total += stepAbsIntegral(float64(cum)/n, prev, centre)
		cum += c
		prev = centre
	}
	total += stepAbsIntegral(1, prev, 1)
	return 1 - 2*total
}

// Selector scores how uniformly a sample spreads over [0,1]; the
// occupancy method picks the period maximising the score. Higher means
// closer to the stretched, information-preserving regime.
type Selector interface {
	Name() string
	Score(s *Sample) float64
}

// MKProximitySelector is the paper's primary selector (Section 4): the
// Monge-Kantorovich proximity with the uniform density.
type MKProximitySelector struct{}

// Name implements Selector.
func (MKProximitySelector) Name() string { return "mk-proximity" }

// Score implements Selector.
func (MKProximitySelector) Score(s *Sample) float64 { return s.MKProximity() }

// StdDevSelector scores with the standard deviation of the sample: a
// point mass (fully contracted distribution) scores 0, a spread-out
// distribution scores high.
type StdDevSelector struct{}

// Name implements Selector.
func (StdDevSelector) Name() string { return "standard-deviation" }

// Score implements Selector.
func (StdDevSelector) Score(s *Sample) float64 { return s.Std() }

// VariationCoefficientSelector scores with std/mean. Section 7 shows it
// is degenerate: occupancies at fine scales have a tiny mean, so the
// coefficient diverges towards the timestamp resolution.
type VariationCoefficientSelector struct{}

// Name implements Selector.
func (VariationCoefficientSelector) Name() string { return "variation-coefficient" }

// Score implements Selector.
func (VariationCoefficientSelector) Score(s *Sample) float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.Std() / m
}

// entropyBins is the binning used by the Shannon-entropy selector; the
// paper's comparison only needs a resolution much finer than the
// distribution features and much coarser than the trip count.
const entropyBins = 64

// EntropySelector scores with the Shannon entropy of a fixed-bin
// discretisation, normalised to [0,1] (1 = uniform over the bins).
type EntropySelector struct{}

// Name implements Selector.
func (EntropySelector) Name() string { return "shannon-entropy" }

// Score implements Selector.
func (EntropySelector) Score(s *Sample) float64 {
	counts := make([]int64, entropyBins)
	for i, v := range s.values {
		b := int(v * entropyBins)
		if b < 0 {
			b = 0
		}
		if b >= entropyBins {
			b = entropyBins - 1
		}
		counts[b] += s.count(i)
	}
	n := float64(s.n)
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log(p)
	}
	return h / math.Log(entropyBins)
}

// CRESelector scores with the cumulative residual entropy
// -∫ G(x) ln G(x) dx with G(x) = P(X > x), integrated exactly over the
// piecewise-constant G between the distinct values. The uniform
// distribution on [0,1] scores 1/4; contracted distributions score
// near 0.
type CRESelector struct{}

// Name implements Selector.
func (CRESelector) Name() string { return "cre" }

// Score implements Selector.
func (CRESelector) Score(s *Sample) float64 {
	n := float64(s.n)
	total := 0.0
	prev := 0.0
	for i := 0; i <= len(s.values); i++ {
		level := 0.0
		if i > 0 {
			level = float64(s.cum[i-1]) / n
		}
		next := 1.0
		if i < len(s.values) {
			next = s.values[i]
			if next > 1 {
				next = 1
			}
		}
		if next > prev {
			g := 1 - level
			if g > 0 {
				total -= g * math.Log(g) * (next - prev)
			}
			prev = next
		}
	}
	return total
}

// AllSelectors returns the five Section 7 uniformity measures, primary
// selector first. Index 2 is the degenerate variation coefficient, the
// position the figure harness expects.
func AllSelectors() []Selector {
	return []Selector{
		MKProximitySelector{},
		StdDevSelector{},
		VariationCoefficientSelector{},
		EntropySelector{},
		CRESelector{},
	}
}
