package validate

import (
	"errors"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/temporal"
)

// TransitionLossCurveReference is the seed implementation of
// TransitionLossCurve: enumerate the stream's shortest transitions with
// a dedicated temporal pass, then scan them per period. Retained as the
// behavioural reference for the equivalence tests and the
// separate-passes benchmarks.
func TransitionLossCurveReference(s *linkstream.Stream, grid []int64, opt Options) ([]LossPoint, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("validate: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("validate: empty grid")
	}
	t0, _, _ := s.Span()
	cfg := temporal.Config{N: s.NumNodes(), Directed: opt.Directed, Workers: opt.Workers}
	trans := temporal.ShortestTransitions(cfg, temporal.StreamLayers(s, opt.Directed))
	points := make([]LossPoint, 0, len(grid))
	for _, delta := range grid {
		lost := 0
		for _, tr := range trans {
			if (tr.Dep-t0)/delta == (tr.Arr-t0)/delta {
				lost++
			}
		}
		p := LossPoint{Delta: delta, Total: len(trans)}
		if len(trans) > 0 {
			p.Lost = float64(lost) / float64(len(trans))
		}
		points = append(points, p)
	}
	return points, nil
}

// ElongationCurveReference is the seed implementation of
// ElongationCurve: one stream-trip enumeration for the pair index, then
// one Series aggregation plus one trip enumeration per period. With
// opt.Workers == 1 the trip order — and therefore the floating-point
// summation order — is identical to the engine observer's, so the
// equivalence tests can require exact equality.
func ElongationCurveReference(s *linkstream.Stream, grid []int64, opt Options) ([]ElongationPoint, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("validate: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("validate: empty grid")
	}
	cfg := temporal.Config{N: s.NumNodes(), Directed: opt.Directed, Workers: opt.Workers}
	idx := buildPairIndex(s.NumNodes(), temporal.CollectTrips(cfg, temporal.StreamLayers(s, opt.Directed)))
	points := make([]ElongationPoint, 0, len(grid))
	for _, delta := range grid {
		g, err := series.Aggregate(s, delta, opt.Directed)
		if err != nil {
			return nil, err
		}
		trips := temporal.CollectTrips(cfg, temporal.SeriesLayers(g))
		p := ElongationPoint{Delta: delta}
		sum := 0.0
		for _, tr := range trips {
			if tr.Dep == tr.Arr {
				continue // Definition 8 requires tu != tv
			}
			// See ElongationObserver.ObservePeriod for the interval
			// bounds rationale.
			a := g.WindowStart(tr.Dep)
			b := g.WindowEnd(tr.Arr) - 1
			durL, ok := idx.minDurationWithin(tr.U, tr.V, a, b)
			if !ok || durL <= 0 {
				p.Unmatched++
				continue
			}
			sum += float64(tr.Arr-tr.Dep+1) * float64(delta) / float64(durL)
			p.Trips++
		}
		if p.Trips > 0 {
			p.MeanElongation = sum / float64(p.Trips)
		}
		points = append(points, p)
	}
	return points, nil
}
