package validate

import (
	"errors"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/sweep"
	"repro/internal/temporal"
)

// This file retains the eager implementations the streaming pipeline
// replaced, as behavioural references: the observer pair
// (TransitionLossObserverReference, ElongationObserverReference)
// consumes the engine's eager products — the flat raw-stream trip slice
// of Needs.StreamTrips and the whole-period TripBlocks of Needs.Trips —
// and the *CurveReference functions are the original seed paths with
// one dedicated temporal pass per metric. All of them are bit-exact
// with the streaming observers (the equivalence tests pin the full
// seeds × orientations × workers × in-flight matrix), because every
// implementation folds the elongation sum as per-destination subtotals
// in destination order.

// TransitionLossObserverReference is the retained eager transition-loss
// observer: the stream's trips are materialised as one flat slice
// before Begin, which then filters the two-hop spans. Results are
// identical to TransitionLossObserver; memory is O(stream trips)
// instead of O(in-flight runs).
type TransitionLossObserverReference struct {
	t0     int64
	spans  []tripSpan
	points []LossPoint
}

// NewTransitionLossObserverReference returns an empty eager
// transition-loss observer.
func NewTransitionLossObserverReference() *TransitionLossObserverReference {
	return &TransitionLossObserverReference{}
}

// Needs implements sweep.Observer.
func (o *TransitionLossObserverReference) Needs() sweep.Needs {
	return sweep.Needs{StreamTrips: true}
}

// Begin implements sweep.Observer.
func (o *TransitionLossObserverReference) Begin(v *sweep.StreamView) error {
	o.t0 = v.T0
	o.spans = o.spans[:0]
	for _, tr := range v.StreamTrips() {
		if tr.Hops == 2 {
			o.spans = append(o.spans, tripSpan{dep: tr.Dep, arr: tr.Arr})
		}
	}
	o.points = make([]LossPoint, len(v.Grid))
	return nil
}

// ObservePeriod implements sweep.Observer.
func (o *TransitionLossObserverReference) ObservePeriod(p *sweep.Period) error {
	o.points[p.Index] = lossPoint(o.spans, o.t0, p.Delta)
	return nil
}

// Points returns the loss curve in grid order.
func (o *TransitionLossObserverReference) Points() []LossPoint { return o.points }

// ElongationObserverReference is the retained eager elongation
// observer: the pair index is built in Begin from the flat raw-stream
// trip slice, and each period sequentially scans the whole TripBlocks
// the engine kept resident. The per-lane subtotal fold makes its
// floating-point sums bit-identical to the sharded streaming
// ElongationObserver.
type ElongationObserverReference struct {
	t0     int64
	idx    *pairIndex
	points []ElongationPoint
}

// NewElongationObserverReference returns an empty eager elongation
// observer.
func NewElongationObserverReference() *ElongationObserverReference {
	return &ElongationObserverReference{}
}

// Needs implements sweep.Observer.
func (o *ElongationObserverReference) Needs() sweep.Needs {
	return sweep.Needs{StreamTrips: true, Trips: true}
}

// Begin implements sweep.Observer.
func (o *ElongationObserverReference) Begin(v *sweep.StreamView) error {
	o.t0 = v.T0
	o.idx = buildPairIndex(v.N, v.StreamTrips())
	o.points = make([]ElongationPoint, len(v.Grid))
	return nil
}

// ObservePeriod implements sweep.Observer. It iterates the engine's
// trip blocks in order — the trip order of consecutive
// single-destination backward sweeps — accumulating one subtotal per
// lane and folding the subtotals in lane order.
func (o *ElongationObserverReference) ObservePeriod(p *sweep.Period) error {
	pt := ElongationPoint{Delta: p.Delta}
	sum := 0.0
	for _, blk := range p.TripBlocks {
		var lsum float64
		var ltrips int
		for _, tr := range blk {
			if tr.Dep == tr.Arr {
				continue
			}
			a := o.t0 + tr.Dep*p.Delta
			b := o.t0 + (tr.Arr+1)*p.Delta - 1
			durL, ok := o.idx.minDurationWithin(tr.U, tr.V, a, b)
			if !ok || durL <= 0 {
				pt.Unmatched++
				continue
			}
			lsum += float64(tr.Arr-tr.Dep+1) * float64(p.Delta) / float64(durL)
			ltrips++
		}
		if ltrips > 0 {
			sum += lsum
			pt.Trips += ltrips
		}
	}
	if pt.Trips > 0 {
		pt.MeanElongation = sum / float64(pt.Trips)
	}
	o.points[p.Index] = pt
	return nil
}

// Points returns the elongation curve in grid order.
func (o *ElongationObserverReference) Points() []ElongationPoint { return o.points }

// TransitionLossCurveReference is the seed implementation of
// TransitionLossCurve: enumerate the stream's shortest transitions with
// a dedicated temporal pass, then scan them per period. Retained as the
// behavioural reference for the equivalence tests and the
// separate-passes benchmarks.
func TransitionLossCurveReference(s *linkstream.Stream, grid []int64, opt Options) ([]LossPoint, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("validate: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("validate: empty grid")
	}
	t0, _, _ := s.Span()
	cfg := temporal.Config{N: s.NumNodes(), Directed: opt.Directed, Workers: opt.Workers}
	trans := temporal.ShortestTransitions(cfg, temporal.StreamLayers(s, opt.Directed))
	points := make([]LossPoint, 0, len(grid))
	for _, delta := range grid {
		lost := 0
		for _, tr := range trans {
			if (tr.Dep-t0)/delta == (tr.Arr-t0)/delta {
				lost++
			}
		}
		p := LossPoint{Delta: delta, Total: len(trans)}
		if len(trans) > 0 {
			p.Lost = float64(lost) / float64(len(trans))
		}
		points = append(points, p)
	}
	return points, nil
}

// ElongationCurveReference is the seed implementation of
// ElongationCurve: one stream-trip enumeration for the pair index, then
// one Series aggregation plus one trip enumeration per period. The trip
// enumeration is destination-major for any worker count, and the sum is
// folded as per-destination subtotals in destination order — the same
// association the engine observers use — so the equivalence tests can
// require exact equality.
func ElongationCurveReference(s *linkstream.Stream, grid []int64, opt Options) ([]ElongationPoint, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("validate: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("validate: empty grid")
	}
	cfg := temporal.Config{N: s.NumNodes(), Directed: opt.Directed, Workers: opt.Workers}
	idx := buildPairIndex(s.NumNodes(), temporal.CollectTrips(cfg, temporal.StreamLayers(s, opt.Directed)))
	points := make([]ElongationPoint, 0, len(grid))
	for _, delta := range grid {
		g, err := series.Aggregate(s, delta, opt.Directed)
		if err != nil {
			return nil, err
		}
		trips := temporal.CollectTrips(cfg, temporal.SeriesLayers(g))
		p := ElongationPoint{Delta: delta}
		sum, dsum := 0.0, 0.0
		dtrips := 0
		curDest := int32(-1)
		flush := func() {
			if dtrips > 0 {
				sum += dsum
				p.Trips += dtrips
			}
			dsum, dtrips = 0, 0
		}
		for _, tr := range trips {
			if tr.V != curDest {
				flush()
				curDest = tr.V
			}
			if tr.Dep == tr.Arr {
				continue // Definition 8 requires tu != tv
			}
			// See elongShard.ObserveTripBlock for the interval bounds
			// rationale.
			a := g.WindowStart(tr.Dep)
			b := g.WindowEnd(tr.Arr) - 1
			durL, ok := idx.minDurationWithin(tr.U, tr.V, a, b)
			if !ok || durL <= 0 {
				p.Unmatched++
				continue
			}
			dsum += float64(tr.Arr-tr.Dep+1) * float64(delta) / float64(durL)
			dtrips++
		}
		flush()
		if p.Trips > 0 {
			p.MeanElongation = sum / float64(p.Trips)
		}
		points = append(points, p)
	}
	return points, nil
}
