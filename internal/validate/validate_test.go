package validate

import (
	"context"

	"math/rand"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/temporal"
)

func chainStream(t *testing.T) *linkstream.Stream {
	t.Helper()
	// A relay chain: a-b at 10, b-c at 20, c-d at 30 — two shortest
	// transitions (a,c,10,20) and (b,d,20,30) plus longer trips.
	s := linkstream.New()
	for _, e := range []struct {
		u, v string
		t    int64
	}{{"a", "b", 10}, {"b", "c", 20}, {"c", "d", 30}} {
		if err := s.Add(e.u, e.v, e.t); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func uniformStream(t testing.TB, n, perPair int, T int64, seed int64) *linkstream.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := linkstream.New()
	s.EnsureNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for k := 0; k < perPair; k++ {
				if err := s.AddID(int32(u), int32(v), rng.Int63n(T)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s
}

func TestTransitionLossChain(t *testing.T) {
	s := chainStream(t)
	points, err := TransitionLossCurve(context.Background(), s, []int64{1, 15, 100}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Total != 2 {
		t.Fatalf("total transitions = %d, want 2", points[0].Total)
	}
	// ∆ = 1: each event in its own window, nothing lost.
	if points[0].Lost != 0 {
		t.Fatalf("∆=1 lost = %v, want 0", points[0].Lost)
	}
	// ∆ = 15 with origin 10: windows [10,25) and [25,40): the
	// transition (a,c,10,20) collapses, (b,d,20,30) survives.
	if points[1].Lost != 0.5 {
		t.Fatalf("∆=15 lost = %v, want 0.5", points[1].Lost)
	}
	// ∆ = 100: everything inside one window.
	if points[2].Lost != 1 {
		t.Fatalf("∆=100 lost = %v, want 1", points[2].Lost)
	}
}

func TestTransitionLossMonotoneOnAlignedGrid(t *testing.T) {
	s := uniformStream(t, 6, 3, 4096, 1)
	grid := []int64{1, 2, 4, 8, 16, 64, 256, 4096}
	points, err := TransitionLossCurve(context.Background(), s, grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Lost < points[i-1].Lost {
			t.Fatalf("loss not monotone on aligned grid: %v then %v",
				points[i-1], points[i])
		}
	}
	if points[len(points)-1].Lost != 1 {
		t.Fatalf("full aggregation should lose all transitions: %+v", points[len(points)-1])
	}
}

func TestElongationChain(t *testing.T) {
	s := chainStream(t)
	// ∆ = 11, origin 10: windows [10,21), [21,32), [32,43). Events land
	// in windows 0 (t=10 and t=20), 0... t=20 -> (20-10)/11 = 0; t=30 ->
	// window 1. Series: W0 has edges {a,b},{b,c}; W1 has {c,d}.
	// Series minimal trips spanning >= 2 windows include b->d (dep 0
	// arr 1, via c) and a->... a->c impossible (same window), a->d?
	// a-b W0 then? b's next link is in W0 only, c-d W1: a cannot hop
	// twice in W0... so a->d unreachable. For b->d: real interval
	// [10, 32], stream trip b->d: b-c at 20, c-d at 30 -> duration 10.
	// Elongation = (1-0+1)*11 / 10 = 2.2.
	points, err := ElongationCurve(context.Background(), s, []int64{11}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Unmatched != 0 {
		t.Fatalf("unmatched trips: %+v", p)
	}
	found := false
	if p.Trips > 0 {
		found = true
	}
	if !found {
		t.Fatalf("no multi-window trips: %+v", p)
	}
	const want = 2.2
	if p.MeanElongation < want-1e-9 || p.MeanElongation > want+1e-9 {
		t.Fatalf("mean elongation = %v, want %v", p.MeanElongation, want)
	}
}

func TestElongationNearOneAtFineScales(t *testing.T) {
	// Sparse stream: trip durations are large, so the +1 window of
	// Definition 8 is negligible and elongation sits essentially at 1
	// when ∆ equals the resolution.
	s := uniformStream(t, 6, 4, 500_000, 2)
	points, err := ElongationCurve(context.Background(), s, []int64{1, 2}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Unmatched != 0 {
			t.Fatalf("unmatched trips at ∆=%d: %+v", p.Delta, p)
		}
		if p.Trips > 0 && (p.MeanElongation < 1 || p.MeanElongation > 1.1) {
			t.Fatalf("∆=%d elongation = %v, want ~1", p.Delta, p.MeanElongation)
		}
	}
}

func TestElongationGrowsWithDelta(t *testing.T) {
	s := uniformStream(t, 8, 3, 10_000, 3)
	points, err := ElongationCurve(context.Background(), s, []int64{2, 1500}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 2 && points[0].Trips > 0 && points[1].Trips > 0 {
		if points[1].MeanElongation <= points[0].MeanElongation {
			t.Fatalf("elongation should grow: %v -> %v",
				points[0].MeanElongation, points[1].MeanElongation)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	empty := linkstream.New()
	if _, err := TransitionLossCurve(context.Background(), empty, []int64{1}, Options{}); err == nil {
		t.Fatal("empty stream should error")
	}
	if _, err := ElongationCurve(context.Background(), empty, []int64{1}, Options{}); err == nil {
		t.Fatal("empty stream should error")
	}
	s := chainStream(t)
	if _, err := TransitionLossCurve(context.Background(), s, nil, Options{}); err == nil {
		t.Fatal("empty grid should error")
	}
	if _, err := ElongationCurve(context.Background(), s, nil, Options{}); err == nil {
		t.Fatal("empty grid should error")
	}
}

func TestPairIndexQueries(t *testing.T) {
	s := chainStream(t)
	cfg := temporal.Config{N: s.NumNodes(), Directed: false, Workers: 1}
	idx := buildPairIndex(s.NumNodes(), temporal.CollectTrips(cfg, temporal.StreamLayers(s, false)))
	a, _ := s.NodeID("a")
	c, _ := s.NodeID("c")
	// a->c minimal trip is (10, 20): duration 10.
	d, ok := idx.minDurationWithin(a, c, 0, 100)
	if !ok || d != 10 {
		t.Fatalf("minDurationWithin(a,c) = %d,%v want 10,true", d, ok)
	}
	// Interval too tight on the right: no trip.
	if _, ok := idx.minDurationWithin(a, c, 0, 15); ok {
		t.Fatal("interval [0,15] should contain no a->c trip")
	}
	// Interval starting after the departure: no trip.
	if _, ok := idx.minDurationWithin(a, c, 15, 100); ok {
		t.Fatal("interval [15,100] should contain no a->c trip")
	}
	// Unknown pair.
	if _, ok := idx.minDurationWithin(99, 98, 0, 100); ok {
		t.Fatal("unknown pair should report no trip")
	}
}
