package validate

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/temporal"
)

// TestMinDurationWithinEdgeCases covers the query corners: pairs with
// no trips at all, windows exactly touching a trip's endpoints, and
// instantaneous single-event trips (dep == arr, duration 0).
func TestMinDurationWithinEdgeCases(t *testing.T) {
	for _, n := range []int{6, maxFlatPairNodes + 1} { // flat mode and map mode
		trips := []temporal.Trip{
			{U: 0, V: 1, Dep: 10, Arr: 30, Hops: 2},
			{U: 0, V: 1, Dep: 40, Arr: 45, Hops: 1},
			{U: 2, V: 3, Dep: 7, Arr: 7, Hops: 1}, // single-event trip
		}
		idx := buildPairIndex(n, trips)

		// Pair with no trips: nodes exist, nothing recorded.
		if _, ok := idx.minDurationWithin(1, 0, 0, 100); ok {
			t.Fatalf("n=%d: reversed pair should have no trips", n)
		}
		if _, ok := idx.minDurationWithin(4, 5, 0, 100); ok {
			t.Fatalf("n=%d: empty pair should have no trips", n)
		}

		// Window exactly touching the endpoints contains the trip.
		if d, ok := idx.minDurationWithin(0, 1, 10, 30); !ok || d != 20 {
			t.Fatalf("n=%d: [10,30] = %d,%v want 20,true", n, d, ok)
		}
		// One unit tighter on either side excludes it (the second trip
		// [40,45] is outside both windows).
		if d, ok := idx.minDurationWithin(0, 1, 11, 39); ok {
			t.Fatalf("n=%d: [11,39] = %d,%v want miss", n, d, ok)
		}
		if d, ok := idx.minDurationWithin(0, 1, 9, 29); ok {
			t.Fatalf("n=%d: [9,29] = %d,%v want miss", n, d, ok)
		}
		// A window holding both trips picks the shorter duration.
		if d, ok := idx.minDurationWithin(0, 1, 0, 100); !ok || d != 5 {
			t.Fatalf("n=%d: [0,100] = %d,%v want 5,true", n, d, ok)
		}
		// Single-event trip: found with duration 0, including by the
		// degenerate window [7,7].
		if d, ok := idx.minDurationWithin(2, 3, 7, 7); !ok || d != 0 {
			t.Fatalf("n=%d: instantaneous trip = %d,%v want 0,true", n, d, ok)
		}
		// The elongation observers divide by the duration only after the
		// durL <= 0 guard, so a zero duration must surface as matched.
		if d, ok := idx.minDurationWithin(2, 3, 0, 100); !ok || d != 0 {
			t.Fatalf("n=%d: instantaneous trip in wide window = %d,%v want 0,true", n, d, ok)
		}
		// Out-of-range ids (flat mode bound checks).
		if _, ok := idx.minDurationWithin(int32(n), 0, 0, 100); ok {
			t.Fatalf("n=%d: out-of-range source should miss", n)
		}
		if _, ok := idx.minDurationWithin(-1, 0, 0, 100); ok {
			t.Fatalf("n=%d: negative source should miss", n)
		}
	}
}

// destRuns groups trips into the per-destination runs the engine's
// streaming pipeline would deliver: destinations increasing, and within
// a run each pair's departures strictly decreasing (sources grouped,
// matching the backward sweep's per-pair emission order).
func destRuns(n int, trips []temporal.Trip) (dests []int32, runs [][]temporal.Trip) {
	byDest := make([][]temporal.Trip, n)
	for _, tr := range trips {
		byDest[tr.V] = append(byDest[tr.V], tr)
	}
	for v := 0; v < n; v++ {
		if len(byDest[v]) == 0 {
			continue
		}
		run := byDest[v]
		// Group by source, departures descending per source — one valid
		// interleaving of the sweep's emission order.
		bySrc := make(map[int32][]temporal.Trip)
		var order []int32
		for _, tr := range run {
			if len(bySrc[tr.U]) == 0 {
				order = append(order, tr.U)
			}
			bySrc[tr.U] = append(bySrc[tr.U], tr)
		}
		out := make([]temporal.Trip, 0, len(run))
		for _, u := range order {
			g := bySrc[u]
			for i := len(g) - 1; i >= 0; i-- {
				out = append(out, g[i])
			}
		}
		dests = append(dests, int32(v))
		runs = append(runs, out)
	}
	return dests, runs
}

// TestPairIndexBuilderMatchesEager feeds random per-destination runs to
// the incremental builder and checks every pair's spans equal the eager
// build's, in flat and map mode, including skipped destinations.
func TestPairIndexBuilderMatchesEager(t *testing.T) {
	for _, n := range []int{1, 5, 12, maxFlatPairNodes + 1} {
		rng := rand.New(rand.NewSource(int64(n)))
		var trips []temporal.Trip
		small := n
		if small > 16 {
			small = 16 // keep map-mode ids small but the table large
		}
		for u := 0; u < small; u++ {
			for v := 0; v < small; v++ {
				if u == v || rng.Intn(3) == 0 {
					continue // leave some pairs (and destinations) empty
				}
				k := 1 + rng.Intn(4)
				dep := int64(1000)
				for i := 0; i < k; i++ {
					dep -= int64(1 + rng.Intn(50))
					trips = append(trips, temporal.Trip{
						U: int32(u), V: int32(v),
						Dep: dep, Arr: dep + int64(rng.Intn(20)),
						Hops: int32(1 + rng.Intn(3)),
					})
				}
			}
		}
		want := buildPairIndex(n, trips)

		b := newPairIndexBuilder(n)
		dests, runs := destRuns(n, trips)
		for i := range dests {
			b.addRun(dests[i], runs[i])
		}
		got := b.finish()

		for u := 0; u < small; u++ {
			for v := 0; v < small; v++ {
				ws := want.pair(int32(u), int32(v))
				gs := got.pair(int32(u), int32(v))
				if len(ws) == 0 && len(gs) == 0 {
					continue
				}
				if !reflect.DeepEqual(ws, gs) {
					t.Fatalf("n=%d pair (%d,%d): builder spans %v != eager %v", n, u, v, gs, ws)
				}
			}
		}
		if want.offsets != nil {
			if !reflect.DeepEqual(want.offsets, got.offsets) {
				t.Fatalf("n=%d: builder offsets diverge from eager build", n)
			}
			if len(want.spans) != len(got.spans) ||
				(len(want.spans) > 0 && !reflect.DeepEqual(want.spans, got.spans)) {
				t.Fatalf("n=%d: builder arena diverges from eager build", n)
			}
		}
	}
}
