package validate

import (
	"context"

	"math/rand"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/sweep"
)

func mixedStream(t testing.TB, n, perPair int, T int64, seed int64) *linkstream.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := linkstream.New()
	s.EnsureNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for k := 0; k < perPair; k++ {
				a, b := int32(u), int32(v)
				if rng.Intn(2) == 0 {
					a, b = b, a
				}
				if err := s.AddID(a, b, rng.Int63n(T)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s
}

// TestTransitionLossMatchesReference asserts the engine-backed curve
// reproduces the seed implementation exactly on seeded workloads,
// directed and undirected.
func TestTransitionLossMatchesReference(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			s := mixedStream(t, 7, 2, 2500, seed)
			grid := []int64{1, 17, 150, 2500}
			want, err := TransitionLossCurveReference(s, grid, Options{Directed: directed, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			got, err := TransitionLossCurve(context.Background(), s, grid, Options{Directed: directed, Workers: 3, MaxInFlight: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("got %d points, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("directed=%v seed=%d point %d: %+v != %+v", directed, seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestElongationMatchesReference asserts the engine-backed curve
// reproduces the seed implementation exactly. The reference runs with
// Workers = 1, which fixes its trip enumeration to destination-major
// order — the order the engine guarantees for any worker count — and
// both implementations fold the elongation sum as per-destination
// subtotals in destination order, so the floating-point results must be
// bit-identical for every worker count and in-flight bound.
func TestElongationMatchesReference(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			s := mixedStream(t, 7, 2, 2500, seed)
			grid := []int64{1, 17, 150, 800, 2500}
			want, err := ElongationCurveReference(s, grid, Options{Directed: directed, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				for _, inFlight := range []int{1, 2, 0} {
					got, err := ElongationCurve(context.Background(), s, grid, Options{Directed: directed, Workers: workers, MaxInFlight: inFlight})
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("got %d points, want %d", len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("directed=%v seed=%d workers=%d inflight=%d point %d: %+v != %+v",
								directed, seed, workers, inFlight, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestStreamingObserversMatchEagerObservers runs the streaming
// observers (incremental pair index off trip runs, sharded period
// scans) and the retained eager reference observers in the same fused
// engine pass, across seeds × orientations × workers × in-flight
// bounds, and requires bit-identical curves — the tentpole guarantee
// that streaming the trip pipeline never changes a result.
func TestStreamingObserversMatchEagerObservers(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			s := mixedStream(t, 8, 2, 3000, seed)
			grid := []int64{1, 12, 90, 700, 3000}
			for _, workers := range []int{1, 3} {
				for _, inFlight := range []int{1, 2, 0} {
					loss := NewTransitionLossObserver()
					lossRef := NewTransitionLossObserverReference()
					elong := NewElongationObserver()
					elongRef := NewElongationObserverReference()
					err := sweep.Run(context.Background(), s, grid,
						sweep.Options{Directed: directed, Workers: workers, MaxInFlight: inFlight},
						loss, lossRef, elong, elongRef)
					if err != nil {
						t.Fatal(err)
					}
					for i := range grid {
						if loss.Points()[i] != lossRef.Points()[i] {
							t.Fatalf("directed=%v seed=%d workers=%d inflight=%d loss point %d: streaming %+v != eager %+v",
								directed, seed, workers, inFlight, i, loss.Points()[i], lossRef.Points()[i])
						}
						if elong.Points()[i] != elongRef.Points()[i] {
							t.Fatalf("directed=%v seed=%d workers=%d inflight=%d elongation point %d: streaming %+v != eager %+v",
								directed, seed, workers, inFlight, i, elong.Points()[i], elongRef.Points()[i])
						}
					}
				}
			}
		}
	}
}
