package validate

// spanArena is the out-of-core successor of the flat pairIndex arena
// for the elongation observer: the raw stream's minimal-trip spans are
// kept delta-encoded in destination-major regions (uvarint source
// deltas, svarint departures, delta-encoded within each pair) instead
// of 16 B tripSpan structs, and an optional size-capped disk-spill
// shelf moves finished regions to an unlinked temp file when the
// resident encoding outgrows the cap — Section 8 validation then runs
// on streams whose span population exceeds RAM, with spilled regions
// re-read sequentially (one ReadAt per destination) during scoring.
//
// Layout: regions are appended in strictly increasing destination
// order as the engine delivers trip runs, so destOff (one int64 per
// destination, n+1 entries) is the only random-access structure —
// 8 B/node regardless of the pair population, where the flat arena's
// offset table needed n² entries. A region holds, per source with at
// least one span, in ascending source order:
//
//	uvarint(source - prevSource)   prevSource starts at -1
//	uvarint(spanCount)
//	svarint(dep)    svarint(arr-dep)      first span
//	uvarint(Δdep)   svarint(arr-dep)      remaining spans, dep ascending
//
// The spill shelf only ever flushes the whole resident buffer, so a
// region never straddles the RAM/file boundary: readRegion is either a
// sub-slice of the resident tail or one contiguous ReadAt.

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"repro/internal/temporal"
)

type spanArena struct {
	n        int32
	destOff  []int64 // global byte offset of each destination's region
	buf      []byte  // resident (not yet spilled) tail of the arena
	bufBase  int64   // global offset of buf[0] == bytes spilled so far
	spillCap int64   // resident-byte cap; <= 0 keeps everything in RAM
	spill    *os.File
	spilled  int64
	nextDest int32

	// build scratch, reused across runs
	cnt     []int32
	pos     []int32
	srcs    []int32
	scratch []tripSpan
}

func newSpanArena(n int, spillCap int64) *spanArena {
	return &spanArena{
		n:        int32(n),
		destOff:  make([]int64, n+1),
		spillCap: spillCap,
		cnt:      make([]int32, n),
		pos:      make([]int32, n),
	}
}

// addRun encodes one destination's minimal trips. Runs must arrive
// with strictly increasing dest; every trip's V equals dest — the
// contract of the engine's streaming trip pipeline.
func (a *spanArena) addRun(dest int32, run []temporal.Trip) error {
	cur := a.bufBase + int64(len(a.buf))
	for d := a.nextDest; d <= dest; d++ {
		a.destOff[d] = cur
	}
	a.nextDest = dest + 1

	if len(run) > 0 {
		// Group the run's spans by source with the same counting
		// back-fill the flat arena uses: per pair, departures arrive
		// strictly decreasing, so filling each source's range back to
		// front lands dep-ascending without a sort (guarded below).
		a.srcs = a.srcs[:0]
		for _, tr := range run {
			if a.cnt[tr.U] == 0 {
				a.srcs = append(a.srcs, tr.U)
			}
			a.cnt[tr.U]++
		}
		sort.Slice(a.srcs, func(i, j int) bool { return a.srcs[i] < a.srcs[j] })
		if cap(a.scratch) < len(run) {
			a.scratch = make([]tripSpan, len(run))
		}
		a.scratch = a.scratch[:len(run)]
		off := int32(0)
		for _, u := range a.srcs {
			a.pos[u] = off
			off += a.cnt[u]
		}
		for _, tr := range run {
			a.cnt[tr.U]--
			a.scratch[a.pos[tr.U]+a.cnt[tr.U]] = tripSpan{dep: tr.Dep, arr: tr.Arr}
		}
		var vbuf [binary.MaxVarintLen64]byte
		prevU := int32(-1)
		for i, u := range a.srcs {
			// The back-fill zeroed cnt; each source's count is implicit
			// in the pos spacing (pos was assigned cumulatively in
			// ascending source order).
			end := int32(len(run))
			if i+1 < len(a.srcs) {
				end = a.pos[a.srcs[i+1]]
			}
			sp := a.scratch[a.pos[u]:end]
			for i := 1; i < len(sp); i++ {
				if sp[i].dep < sp[i-1].dep {
					sort.Slice(sp, func(x, y int) bool { return sp[x].dep < sp[y].dep })
					break
				}
			}
			n := binary.PutUvarint(vbuf[:], uint64(u-prevU))
			a.buf = append(a.buf, vbuf[:n]...)
			prevU = u
			n = binary.PutUvarint(vbuf[:], uint64(len(sp)))
			a.buf = append(a.buf, vbuf[:n]...)
			prevDep := int64(0)
			for i, s := range sp {
				if i == 0 {
					n = binary.PutVarint(vbuf[:], s.dep)
				} else {
					n = binary.PutUvarint(vbuf[:], uint64(s.dep-prevDep))
				}
				a.buf = append(a.buf, vbuf[:n]...)
				prevDep = s.dep
				n = binary.PutVarint(vbuf[:], s.arr-s.dep)
				a.buf = append(a.buf, vbuf[:n]...)
			}
		}
	}
	a.destOff[dest+1] = a.bufBase + int64(len(a.buf))

	if a.spillCap > 0 && int64(len(a.buf)) >= a.spillCap {
		return a.flush()
	}
	return nil
}

// flush moves the whole resident buffer to the spill shelf. Flushing
// everything (never a prefix) keeps regions from straddling the
// RAM/file boundary.
func (a *spanArena) flush() error {
	if len(a.buf) == 0 {
		return nil
	}
	if a.spill == nil {
		f, err := os.CreateTemp("", "repro-pairspans-*")
		if err != nil {
			return fmt.Errorf("validate: pair-span spill: %w", err)
		}
		// Unlink immediately: the file lives until the descriptor
		// closes, and a crash can never leave it behind. Best-effort —
		// platforms that cannot remove an open file keep the name until
		// Close.
		os.Remove(f.Name())
		a.spill = f
	}
	if _, err := a.spill.WriteAt(a.buf, a.bufBase); err != nil {
		return fmt.Errorf("validate: pair-span spill: %w", err)
	}
	a.bufBase += int64(len(a.buf))
	a.spilled = a.bufBase
	a.buf = a.buf[:0]
	return nil
}

// finish seals the arena: destinations that never produced a run get
// empty regions.
func (a *spanArena) finish() {
	total := a.bufBase + int64(len(a.buf))
	for d := a.nextDest; d <= a.n; d++ {
		a.destOff[d] = total
	}
	a.nextDest = a.n + 1
}

// release closes the spill shelf. The arena keeps its resident tail,
// so accounting fields stay readable; decoding spilled regions after
// release fails.
func (a *spanArena) release() {
	if a.spill != nil {
		a.spill.Close()
		a.spill = nil
	}
}

// readRegion returns destination d's encoded region, either as a
// sub-slice of the resident tail or read from the spill shelf into
// (a reuse of) tmp.
func (a *spanArena) readRegion(d int32, tmp []byte) ([]byte, []byte, error) {
	start, end := a.destOff[d], a.destOff[d+1]
	if start >= a.bufBase {
		return a.buf[start-a.bufBase : end-a.bufBase], tmp, nil
	}
	need := int(end - start)
	if cap(tmp) < need {
		tmp = make([]byte, need)
	}
	tmp = tmp[:need]
	if a.spill == nil {
		return nil, tmp, fmt.Errorf("validate: pair-span arena: destination %d is spilled but the shelf is closed", d)
	}
	if _, err := a.spill.ReadAt(tmp, start); err != nil {
		return nil, tmp, fmt.Errorf("validate: pair-span spill read: %w", err)
	}
	return tmp, tmp, nil
}

// destSpans is one destination's decoded region: the sources with at
// least one span (ascending), a prefix-offset table into the decoded
// spans, and the spans themselves (dep-ascending per source — the
// exact integers the flat pairIndex would hold for pair (src, dest)).
type destSpans struct {
	srcs  []int32
	offs  []int32
	spans []tripSpan
	raw   []byte // spill read buffer, reused across decodes
}

// decodeDest decodes destination d's region into ds. Safe to call
// concurrently for different ds (the arena is immutable after finish;
// the spill shelf is read with ReadAt).
func (a *spanArena) decodeDest(d int32, ds *destSpans) error {
	region, raw, err := a.readRegion(d, ds.raw)
	ds.raw = raw
	if err != nil {
		return err
	}
	ds.srcs = ds.srcs[:0]
	ds.offs = ds.offs[:0]
	ds.spans = ds.spans[:0]
	u := int32(-1)
	for len(region) > 0 {
		du, n := binary.Uvarint(region)
		if n <= 0 {
			return fmt.Errorf("validate: pair-span arena: destination %d: corrupt source delta", d)
		}
		region = region[n:]
		u += int32(du)
		c, n := binary.Uvarint(region)
		if n <= 0 {
			return fmt.Errorf("validate: pair-span arena: destination %d: corrupt span count", d)
		}
		region = region[n:]
		ds.srcs = append(ds.srcs, u)
		ds.offs = append(ds.offs, int32(len(ds.spans)))
		prevDep := int64(0)
		for i := uint64(0); i < c; i++ {
			var dep int64
			if i == 0 {
				v, n := binary.Varint(region)
				if n <= 0 {
					return fmt.Errorf("validate: pair-span arena: destination %d: corrupt departure", d)
				}
				region = region[n:]
				dep = v
			} else {
				v, n := binary.Uvarint(region)
				if n <= 0 {
					return fmt.Errorf("validate: pair-span arena: destination %d: corrupt departure delta", d)
				}
				region = region[n:]
				dep = prevDep + int64(v)
			}
			dur, n := binary.Varint(region)
			if n <= 0 {
				return fmt.Errorf("validate: pair-span arena: destination %d: corrupt duration", d)
			}
			region = region[n:]
			ds.spans = append(ds.spans, tripSpan{dep: dep, arr: dep + dur})
			prevDep = dep
		}
	}
	ds.offs = append(ds.offs, int32(len(ds.spans)))
	return nil
}

// minDurationWithin mirrors pairIndex.minDurationWithin over the
// decoded region: smallest duration among source u's spans fully
// inside [a, b], and whether one exists.
func (ds *destSpans) minDurationWithin(u int32, a, b int64) (int64, bool) {
	// Binary search u among the region's sources.
	lo, hi := 0, len(ds.srcs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ds.srcs[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(ds.srcs) || ds.srcs[lo] != u {
		return -1, false
	}
	sp := ds.spans[ds.offs[lo]:ds.offs[lo+1]]
	return minDurationIn(sp, a, b)
}

// minDurationIn is the span-window query shared by the flat pair index
// and the decoded arena regions: identical integer spans in, identical
// result out — this is what pins the spill path bit-exact.
func minDurationIn(sp []tripSpan, a, b int64) (int64, bool) {
	lo, hi := 0, len(sp)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sp[mid].dep < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best := int64(-1)
	for i := lo; i < len(sp) && sp[i].arr <= b; i++ {
		d := sp[i].arr - sp[i].dep
		if best < 0 || d < best {
			best = d
		}
	}
	return best, best >= 0
}
