package validate

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sweep"
	"repro/internal/temporal"
)

// randomTrips builds a random trip population over n node ids (capped
// at 16 sources/destinations so pairs stay dense while the id space —
// and the arena's destOff table — can be large).
func randomTrips(n int, seed int64) []temporal.Trip {
	rng := rand.New(rand.NewSource(seed))
	small := n
	if small > 16 {
		small = 16
	}
	var trips []temporal.Trip
	for u := 0; u < small; u++ {
		for v := 0; v < small; v++ {
			if u == v || rng.Intn(3) == 0 {
				continue
			}
			k := 1 + rng.Intn(4)
			dep := int64(1000)
			for i := 0; i < k; i++ {
				dep -= int64(1 + rng.Intn(50))
				trips = append(trips, temporal.Trip{
					U: int32(u), V: int32(v),
					Dep: dep, Arr: dep + int64(rng.Intn(20)),
					Hops: int32(1 + rng.Intn(3)),
				})
			}
		}
	}
	return trips
}

// TestSpanArenaMatchesPairIndex decodes every destination region of the
// delta-encoded arena and requires exactly the integer spans the eager
// flat/map pair index holds — for small and large node counts, with
// the spill shelf off and forced on after every run (cap 1 byte).
func TestSpanArenaMatchesPairIndex(t *testing.T) {
	for _, n := range []int{1, 5, 12, maxFlatPairNodes + 1} {
		for _, spillCap := range []int64{0, 1, 512} {
			trips := randomTrips(n, int64(n))
			want := buildPairIndex(n, trips)

			a := newSpanArena(n, spillCap)
			dests, runs := destRuns(n, trips)
			for i := range dests {
				if err := a.addRun(dests[i], runs[i]); err != nil {
					t.Fatal(err)
				}
			}
			a.finish()
			if spillCap == 1 && len(trips) > 0 && a.spilled == 0 {
				t.Fatalf("n=%d: cap 1 never spilled", n)
			}

			ds := &destSpans{}
			for v := 0; v < n; v++ {
				if err := a.decodeDest(int32(v), ds); err != nil {
					t.Fatalf("n=%d cap=%d dest %d: %v", n, spillCap, v, err)
				}
				got := map[int32][]tripSpan{}
				for i, u := range ds.srcs {
					got[u] = append([]tripSpan(nil), ds.spans[ds.offs[i]:ds.offs[i+1]]...)
				}
				for u := 0; u < n; u++ {
					ws := want.pair(int32(u), int32(v))
					gs := got[int32(u)]
					if len(ws) == 0 && len(gs) == 0 {
						continue
					}
					if !reflect.DeepEqual(ws, gs) {
						t.Fatalf("n=%d cap=%d pair (%d,%d): arena %v != index %v", n, spillCap, u, v, gs, ws)
					}
				}

				// The window query agrees with the flat index on random
				// windows (the shared minDurationIn makes this structural,
				// but pin it end to end through the decode).
				rng := rand.New(rand.NewSource(int64(v)))
				for q := 0; q < 20; q++ {
					u := int32(rng.Intn(n))
					lo := int64(rng.Intn(1200) - 100)
					hi := lo + int64(rng.Intn(300))
					gd, gok := ds.minDurationWithin(u, lo, hi)
					wd, wok := want.minDurationWithin(u, int32(v), lo, hi)
					if gok != wok || (gok && gd != wd) {
						t.Fatalf("n=%d pair (%d,%d) window [%d,%d]: arena %d,%v != index %d,%v",
							n, u, v, lo, hi, gd, gok, wd, wok)
					}
				}
			}
			a.release()
		}
	}
}

// TestSpanArenaSpilledReadAfterRelease pins the failure mode: decoding
// a spilled destination after the shelf closed reports the shelf, not
// garbage.
func TestSpanArenaSpilledReadAfterRelease(t *testing.T) {
	trips := randomTrips(8, 3)
	a := newSpanArena(8, 1)
	dests, runs := destRuns(8, trips)
	for i := range dests {
		if err := a.addRun(dests[i], runs[i]); err != nil {
			t.Fatal(err)
		}
	}
	a.finish()
	a.release()
	ds := &destSpans{}
	err := a.decodeDest(dests[0], ds)
	if err == nil {
		t.Fatal("decoding a spilled region after release must fail")
	}
}

// TestElongationSpillForcedBitExact is the acceptance gate for the
// spill shelf: an elongation run whose arena is forced to spill after
// every encoded run (SpillBytes 1) produces the identical curve — every
// float bit — as the all-in-RAM observer and the eager reference, and
// really did spill.
func TestElongationSpillForcedBitExact(t *testing.T) {
	for _, directed := range []bool{false, true} {
		s := mixedStream(t, 8, 2, 3000, 4)
		grid := []int64{1, 12, 90, 700, 3000}

		want, err := ElongationCurveReference(s, grid, Options{Directed: directed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		inRAM, err := ElongationCurve(context.Background(), s, grid,
			Options{Directed: directed, Workers: 3, MaxInFlight: 2})
		if err != nil {
			t.Fatal(err)
		}

		spilling := NewElongationObserver()
		spilling.SpillBytes = 1
		if err := sweep.Run(context.Background(), s, grid,
			sweep.Options{Directed: directed, Workers: 3, MaxInFlight: 2}, spilling); err != nil {
			t.Fatal(err)
		}
		if spilling.arena.spilled == 0 {
			t.Fatal("SpillBytes=1 run never touched the spill shelf")
		}

		for i := range grid {
			if spilling.Points()[i] != want[i] {
				t.Fatalf("directed=%v point %d: spilled %+v != reference %+v", directed, i, spilling.Points()[i], want[i])
			}
			if inRAM[i] != want[i] {
				t.Fatalf("directed=%v point %d: resident %+v != reference %+v", directed, i, inRAM[i], want[i])
			}
		}
	}
}
