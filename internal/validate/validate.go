// Package validate implements the paper's Section 8 loss measures, used
// to check that the saturation scale returned by the occupancy method
// indeed marks where aggregation starts altering propagation:
//
//   - the proportion of shortest transitions of the original link stream
//     that collapse inside one aggregation window (Figure 8 left), and
//   - the mean elongation factor of the minimal trips of the aggregated
//     series with respect to the original stream (Figure 8 right).
package validate

import (
	"errors"
	"sort"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/temporal"
)

// Options configures the validation sweeps.
type Options struct {
	Directed bool
	Workers  int
}

// LossPoint is the Figure 8 (left) value at one aggregation period.
type LossPoint struct {
	Delta int64
	// Lost is the proportion of the stream's shortest transitions whose
	// two hops fall in the same aggregation window — exactly the
	// transitions that no longer exist in the aggregated series.
	Lost float64
	// Total is the number of shortest transitions of the stream.
	Total int
}

// TransitionLossCurve computes the proportion of lost shortest
// transitions for every period in grid. The stream's transitions are
// enumerated once; each grid point is then a linear scan.
func TransitionLossCurve(s *linkstream.Stream, grid []int64, opt Options) ([]LossPoint, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("validate: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("validate: empty grid")
	}
	t0, _, _ := s.Span()
	cfg := temporal.Config{N: s.NumNodes(), Directed: opt.Directed, Workers: opt.Workers}
	trans := temporal.ShortestTransitions(cfg, temporal.StreamLayers(s, opt.Directed))
	points := make([]LossPoint, 0, len(grid))
	for _, delta := range grid {
		lost := 0
		for _, tr := range trans {
			if (tr.Dep-t0)/delta == (tr.Arr-t0)/delta {
				lost++
			}
		}
		p := LossPoint{Delta: delta, Total: len(trans)}
		if len(trans) > 0 {
			p.Lost = float64(lost) / float64(len(trans))
		}
		points = append(points, p)
	}
	return points, nil
}

// span is one minimal trip interval of the original stream.
type span struct {
	dep, arr int64
}

// pairIndex maps an ordered pair (u, v) to the minimal trips of the
// stream between u and v, sorted by strictly increasing departure (and,
// by non-nesting, strictly increasing arrival).
type pairIndex map[uint64][]span

func pairKey(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

func buildPairIndex(s *linkstream.Stream, opt Options) pairIndex {
	cfg := temporal.Config{N: s.NumNodes(), Directed: opt.Directed, Workers: opt.Workers}
	trips := temporal.CollectTrips(cfg, temporal.StreamLayers(s, opt.Directed))
	idx := make(pairIndex)
	for _, tr := range trips {
		k := pairKey(tr.U, tr.V)
		idx[k] = append(idx[k], span{dep: tr.Dep, arr: tr.Arr})
	}
	for k := range idx {
		sp := idx[k]
		sort.Slice(sp, func(i, j int) bool { return sp[i].dep < sp[j].dep })
	}
	return idx
}

// minDurationWithin returns the smallest duration (arr - dep) among the
// pair's stream trips fully contained in [a, b], and whether one exists.
// Because any trip contains a minimal trip within its own interval,
// searching minimal trips only is sufficient.
func (idx pairIndex) minDurationWithin(u, v int32, a, b int64) (int64, bool) {
	sp := idx[pairKey(u, v)]
	lo := sort.Search(len(sp), func(i int) bool { return sp[i].dep >= a })
	best := int64(-1)
	for i := lo; i < len(sp) && sp[i].arr <= b; i++ {
		d := sp[i].arr - sp[i].dep
		if best < 0 || d < best {
			best = d
		}
	}
	return best, best >= 0
}

// ElongationPoint is the Figure 8 (right) value at one period.
type ElongationPoint struct {
	Delta int64
	// MeanElongation is the mean, over the minimal trips of G∆ spanning
	// at least two windows, of (tv - tu + 1)·∆ / timeL (Definition 8).
	MeanElongation float64
	// Trips is the number of trips entering the mean.
	Trips int
	// Unmatched counts trips for which no stream trip was found inside
	// the window interval; it is always 0 for consistent inputs and is
	// reported for failure-injection tests.
	Unmatched int
}

// ElongationCurve computes the mean elongation factor of the minimal
// trips of G∆ for every period in grid.
func ElongationCurve(s *linkstream.Stream, grid []int64, opt Options) ([]ElongationPoint, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("validate: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("validate: empty grid")
	}
	idx := buildPairIndex(s, opt)
	points := make([]ElongationPoint, 0, len(grid))
	for _, delta := range grid {
		g, err := series.Aggregate(s, delta, opt.Directed)
		if err != nil {
			return nil, err
		}
		cfg := temporal.Config{N: g.N, Directed: opt.Directed, Workers: opt.Workers}
		trips := temporal.CollectTrips(cfg, temporal.SeriesLayers(g))
		p := ElongationPoint{Delta: delta}
		sum := 0.0
		for _, tr := range trips {
			if tr.Dep == tr.Arr {
				continue // Definition 8 requires tu != tv
			}
			// Definition 8 confines the stream trip to the closed real
			// interval spanned by the trip's windows; in discrete time
			// the last instant of window arr is WindowEnd-1 (an event at
			// WindowEnd itself already belongs to the next window).
			a := g.WindowStart(tr.Dep)
			b := g.WindowEnd(tr.Arr) - 1
			durL, ok := idx.minDurationWithin(tr.U, tr.V, a, b)
			if !ok || durL <= 0 {
				// Cannot happen for windows spanning >= 2 windows (the
				// series trip implies a stream trip in the interval and
				// minimality excludes instantaneous ones), but guard
				// against inconsistent inputs rather than divide by 0.
				p.Unmatched++
				continue
			}
			sum += float64(tr.Arr-tr.Dep+1) * float64(delta) / float64(durL)
			p.Trips++
		}
		if p.Trips > 0 {
			p.MeanElongation = sum / float64(p.Trips)
		}
		points = append(points, p)
	}
	return points, nil
}
