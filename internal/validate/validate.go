// Package validate implements the paper's Section 8 loss measures, used
// to check that the saturation scale returned by the occupancy method
// indeed marks where aggregation starts altering propagation:
//
//   - the proportion of shortest transitions of the original link stream
//     that collapse inside one aggregation window (Figure 8 left), and
//   - the mean elongation factor of the minimal trips of the aggregated
//     series with respect to the original stream (Figure 8 right).
//
// Both measures are sweep-engine observers: the raw stream's minimal
// trips are enumerated once per engine run (and shared between the two
// observers), and the elongation observer consumes the per-period
// minimal trips the engine's backward sweep already produces — so the
// validation curves ride along any other sweep for free.
package validate

import (
	"errors"
	"sort"

	"repro/internal/linkstream"
	"repro/internal/sweep"
	"repro/internal/temporal"
)

// Options configures the validation sweeps.
type Options struct {
	Directed bool
	Workers  int
	// MaxInFlight bounds the periods the sweep engine keeps resident;
	// <= 0 selects the engine default.
	MaxInFlight int
}

func (o Options) engine() sweep.Options {
	return sweep.Options{Directed: o.Directed, Workers: o.Workers, MaxInFlight: o.MaxInFlight}
}

// LossPoint is the Figure 8 (left) value at one aggregation period.
type LossPoint struct {
	Delta int64
	// Lost is the proportion of the stream's shortest transitions whose
	// two hops fall in the same aggregation window — exactly the
	// transitions that no longer exist in the aggregated series.
	Lost float64
	// Total is the number of shortest transitions of the stream.
	Total int
}

// TransitionLossObserver computes the Figure 8 (left) curve from the
// raw stream's shortest transitions, enumerated once in Begin; each
// period is then a linear scan over the transition intervals.
type TransitionLossObserver struct {
	t0     int64
	spans  []tripSpan
	points []LossPoint
}

// NewTransitionLossObserver returns an empty transition-loss observer.
func NewTransitionLossObserver() *TransitionLossObserver { return &TransitionLossObserver{} }

// Needs implements sweep.Observer.
func (o *TransitionLossObserver) Needs() sweep.Needs { return sweep.Needs{StreamTrips: true} }

// Begin implements sweep.Observer.
func (o *TransitionLossObserver) Begin(v *sweep.StreamView) error {
	o.t0 = v.T0
	o.spans = o.spans[:0]
	for _, tr := range v.StreamTrips() {
		// Shortest transitions are the minimal trips with exactly two
		// hops (Definition 6).
		if tr.Hops == 2 {
			o.spans = append(o.spans, tripSpan{dep: tr.Dep, arr: tr.Arr})
		}
	}
	o.points = make([]LossPoint, len(v.Grid))
	return nil
}

// ObservePeriod implements sweep.Observer.
func (o *TransitionLossObserver) ObservePeriod(p *sweep.Period) error {
	lost := 0
	for _, tr := range o.spans {
		if (tr.dep-o.t0)/p.Delta == (tr.arr-o.t0)/p.Delta {
			lost++
		}
	}
	pt := LossPoint{Delta: p.Delta, Total: len(o.spans)}
	if len(o.spans) > 0 {
		pt.Lost = float64(lost) / float64(len(o.spans))
	}
	o.points[p.Index] = pt
	return nil
}

// Points returns the loss curve in grid order. Valid after sweep.Run
// returns without error.
func (o *TransitionLossObserver) Points() []LossPoint { return o.points }

// TransitionLossCurve computes the proportion of lost shortest
// transitions for every period in grid, as one engine run with a
// TransitionLossObserver.
func TransitionLossCurve(s *linkstream.Stream, grid []int64, opt Options) ([]LossPoint, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("validate: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("validate: empty grid")
	}
	obs := NewTransitionLossObserver()
	if err := sweep.Run(s, grid, opt.engine(), obs); err != nil {
		return nil, err
	}
	return obs.Points(), nil
}

// tripSpan is one minimal trip interval of the original stream.
type tripSpan struct {
	dep, arr int64
}

// pairIndex maps an ordered pair (u, v) to the minimal trips of the
// stream between u and v, sorted by strictly increasing departure (and,
// by non-nesting, strictly increasing arrival). For node counts up to
// maxFlatPairNodes the spans live in one flat arena addressed by a
// dense n×n offset table — the elongation scan queries the index once
// per series trip, and an array lookup beats a hash probe by an order
// of magnitude there. Larger graphs fall back to a map.
type pairIndex struct {
	n       int32
	offsets []int32    // len n*n+1 in flat mode; nil in map mode
	spans   []tripSpan // flat arena, grouped by pair, dep-ascending
	byPair  map[uint64][]tripSpan
}

// maxFlatPairNodes bounds the dense offset table to ~16 MiB.
const maxFlatPairNodes = 2048

func pairKey(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

func buildPairIndex(n int, trips []temporal.Trip) *pairIndex {
	idx := &pairIndex{n: int32(n)}
	if n > maxFlatPairNodes {
		idx.byPair = make(map[uint64][]tripSpan)
		for _, tr := range trips {
			k := pairKey(tr.U, tr.V)
			idx.byPair[k] = append(idx.byPair[k], tripSpan{dep: tr.Dep, arr: tr.Arr})
		}
		for k := range idx.byPair {
			sp := idx.byPair[k]
			sort.Slice(sp, func(i, j int) bool { return sp[i].dep < sp[j].dep })
		}
		return idx
	}
	// Flat mode: counting pass, prefix sum, then a backward fill. The
	// trip enumeration emits each pair's trips in strictly decreasing
	// departure order (backward sweep, one destination per worker), so
	// filling each pair's range back to front yields dep-ascending
	// spans without any per-pair sort.
	offsets := make([]int32, n*n+1)
	for _, tr := range trips {
		offsets[int(tr.U)*n+int(tr.V)+1]++
	}
	for i := 1; i <= n*n; i++ {
		offsets[i] += offsets[i-1]
	}
	spans := make([]tripSpan, len(trips))
	cursor := make([]int32, n*n)
	for _, tr := range trips {
		p := int(tr.U)*n + int(tr.V)
		cursor[p]++
		spans[int(offsets[p+1])-int(cursor[p])] = tripSpan{dep: tr.Dep, arr: tr.Arr}
	}
	idx.offsets, idx.spans = offsets, spans
	// The backward fill relies on per-pair decreasing departures; guard
	// the invariant (one linear pass) and restore it if an enumeration
	// ever changes order.
	for p := 0; p < n*n; p++ {
		lo, hi := offsets[p], offsets[p+1]
		for i := lo + 1; i < hi; i++ {
			if spans[i].dep < spans[i-1].dep {
				sp := spans[lo:hi]
				sort.Slice(sp, func(i, j int) bool { return sp[i].dep < sp[j].dep })
				break
			}
		}
	}
	return idx
}

// pair returns the dep-ascending spans of the ordered pair (u, v).
func (idx *pairIndex) pair(u, v int32) []tripSpan {
	if idx.offsets != nil {
		if u < 0 || u >= idx.n || v < 0 || v >= idx.n {
			return nil
		}
		p := int(u)*int(idx.n) + int(v)
		return idx.spans[idx.offsets[p]:idx.offsets[p+1]]
	}
	return idx.byPair[pairKey(u, v)]
}

// minDurationWithin returns the smallest duration (arr - dep) among the
// pair's stream trips fully contained in [a, b], and whether one exists.
// Because any trip contains a minimal trip within its own interval,
// searching minimal trips only is sufficient.
func (idx *pairIndex) minDurationWithin(u, v int32, a, b int64) (int64, bool) {
	sp := idx.pair(u, v)
	// Manual binary search: this runs once per series trip, and the
	// sort.Search closure overhead is measurable at that call rate.
	lo, hi := 0, len(sp)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sp[mid].dep < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best := int64(-1)
	for i := lo; i < len(sp) && sp[i].arr <= b; i++ {
		d := sp[i].arr - sp[i].dep
		if best < 0 || d < best {
			best = d
		}
	}
	return best, best >= 0
}

// ElongationPoint is the Figure 8 (right) value at one period.
type ElongationPoint struct {
	Delta int64
	// MeanElongation is the mean, over the minimal trips of G∆ spanning
	// at least two windows, of (tv - tu + 1)·∆ / timeL (Definition 8).
	MeanElongation float64
	// Trips is the number of trips entering the mean.
	Trips int
	// Unmatched counts trips for which no stream trip was found inside
	// the window interval; it is always 0 for consistent inputs and is
	// reported for failure-injection tests.
	Unmatched int
}

// ElongationObserver computes the Figure 8 (right) curve: the pair
// index over the raw stream's minimal trips is built once in Begin, and
// each period scans the minimal trips of G∆ the engine's backward sweep
// already produced.
type ElongationObserver struct {
	t0     int64
	idx    *pairIndex
	points []ElongationPoint
}

// NewElongationObserver returns an empty elongation observer.
func NewElongationObserver() *ElongationObserver { return &ElongationObserver{} }

// Needs implements sweep.Observer.
func (o *ElongationObserver) Needs() sweep.Needs {
	return sweep.Needs{StreamTrips: true, Trips: true}
}

// Begin implements sweep.Observer.
func (o *ElongationObserver) Begin(v *sweep.StreamView) error {
	o.t0 = v.T0
	o.idx = buildPairIndex(v.N, v.StreamTrips())
	o.points = make([]ElongationPoint, len(v.Grid))
	return nil
}

// ObservePeriod implements sweep.Observer. It iterates the engine's
// trip blocks in order, which is exactly the trip order of consecutive
// single-destination sweeps, so the floating-point sum matches the
// reference implementation bit for bit.
func (o *ElongationObserver) ObservePeriod(p *sweep.Period) error {
	pt := ElongationPoint{Delta: p.Delta}
	sum := 0.0
	for _, blk := range p.TripBlocks {
		for _, tr := range blk {
			if tr.Dep == tr.Arr {
				continue // Definition 8 requires tu != tv
			}
			// Definition 8 confines the stream trip to the closed real
			// interval spanned by the trip's windows; in discrete time
			// the last instant of window arr is the instant before the
			// next window starts (an event at the boundary already
			// belongs to the next window).
			a := o.t0 + tr.Dep*p.Delta
			b := o.t0 + (tr.Arr+1)*p.Delta - 1
			durL, ok := o.idx.minDurationWithin(tr.U, tr.V, a, b)
			if !ok || durL <= 0 {
				// Cannot happen for trips spanning >= 2 windows (the
				// series trip implies a stream trip in the interval and
				// minimality excludes instantaneous ones), but guard
				// against inconsistent inputs rather than divide by 0.
				pt.Unmatched++
				continue
			}
			sum += float64(tr.Arr-tr.Dep+1) * float64(p.Delta) / float64(durL)
			pt.Trips++
		}
	}
	if pt.Trips > 0 {
		pt.MeanElongation = sum / float64(pt.Trips)
	}
	o.points[p.Index] = pt
	return nil
}

// Points returns the elongation curve in grid order. Valid after
// sweep.Run returns without error.
func (o *ElongationObserver) Points() []ElongationPoint { return o.points }

// ElongationCurve computes the mean elongation factor of the minimal
// trips of G∆ for every period in grid, as one engine run with an
// ElongationObserver.
func ElongationCurve(s *linkstream.Stream, grid []int64, opt Options) ([]ElongationPoint, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("validate: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("validate: empty grid")
	}
	obs := NewElongationObserver()
	if err := sweep.Run(s, grid, opt.engine(), obs); err != nil {
		return nil, err
	}
	return obs.Points(), nil
}
