// Package validate implements the paper's Section 8 loss measures, used
// to check that the saturation scale returned by the occupancy method
// indeed marks where aggregation starts altering propagation:
//
//   - the proportion of shortest transitions of the original link stream
//     that collapse inside one aggregation window (Figure 8 left), and
//   - the mean elongation factor of the minimal trips of the aggregated
//     series with respect to the original stream (Figure 8 right).
//
// Both measures are sweep-engine observers built on the engine's
// streaming trip pipeline: the raw stream's minimal trips arrive as
// per-destination runs (shared between the two observers, never
// materialised as one flat slice), the transition-loss observer keeps
// only the two-hop spans, and the elongation observer merges each run
// into an incremental pair index. The elongation observer's per-period
// scan is sharded across the engine's worker pool as per-block partial
// sums combined in block order, so its result is bit-for-bit identical
// for any worker count — and to the retained eager reference
// implementations (TransitionLossObserverReference,
// ElongationObserverReference, *CurveReference).
package validate

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/linkstream"
	"repro/internal/sweep"
	"repro/internal/temporal"
)

// Options configures the validation sweeps.
type Options struct {
	Directed bool
	Workers  int
	// MaxInFlight bounds the periods the sweep engine keeps resident;
	// <= 0 selects the engine default.
	MaxInFlight int
	// SpillBytes caps the resident bytes of the elongation observer's
	// delta-encoded pair-span arena; beyond the cap finished regions
	// spill to an unlinked temp file re-read during scoring. <= 0 keeps
	// the whole arena in RAM. The curve is bit-identical either way.
	SpillBytes int64
}

func (o Options) engine() sweep.Options {
	return sweep.Options{Directed: o.Directed, Workers: o.Workers, MaxInFlight: o.MaxInFlight}
}

// LossPoint is the Figure 8 (left) value at one aggregation period.
type LossPoint struct {
	Delta int64 `json:"delta"`
	// Lost is the proportion of the stream's shortest transitions whose
	// two hops fall in the same aggregation window — exactly the
	// transitions that no longer exist in the aggregated series.
	Lost float64 `json:"lost"`
	// Total is the number of shortest transitions of the stream.
	Total int `json:"total"`
}

// TransitionLossObserver computes the Figure 8 (left) curve from the
// raw stream's shortest transitions. It consumes the engine's streaming
// trip runs, keeping only the two-hop spans, so the full stream trip
// population is never resident; each period is then a linear scan over
// the transition intervals.
type TransitionLossObserver struct {
	t0     int64
	spans  []tripSpan
	points []LossPoint
}

// NewTransitionLossObserver returns an empty transition-loss observer.
func NewTransitionLossObserver() *TransitionLossObserver { return &TransitionLossObserver{} }

// Needs implements sweep.Observer.
func (o *TransitionLossObserver) Needs() sweep.Needs { return sweep.Needs{StreamTripRuns: true} }

// Begin implements sweep.Observer.
func (o *TransitionLossObserver) Begin(v *sweep.StreamView) error {
	o.t0 = v.T0
	o.spans = o.spans[:0]
	o.points = make([]LossPoint, len(v.Grid))
	return nil
}

// ObserveTripRun implements sweep.TripRunObserver: shortest transitions
// are the minimal trips with exactly two hops (Definition 6), collected
// run by run in the same destination-major order an eager scan of the
// flat trip slice would visit.
func (o *TransitionLossObserver) ObserveTripRun(dest int32, run []temporal.Trip) error {
	for _, tr := range run {
		if tr.Hops == 2 {
			o.spans = append(o.spans, tripSpan{dep: tr.Dep, arr: tr.Arr})
		}
	}
	return nil
}

// FinishTripRuns implements sweep.TripRunObserver.
func (o *TransitionLossObserver) FinishTripRuns() error { return nil }

// ObservePeriod implements sweep.Observer.
func (o *TransitionLossObserver) ObservePeriod(p *sweep.Period) error {
	o.points[p.Index] = lossPoint(o.spans, o.t0, p.Delta)
	return nil
}

// lossPoint scores one period's transition loss over the stream's
// shortest-transition spans; shared by the streaming observer and the
// eager reference.
func lossPoint(spans []tripSpan, t0, delta int64) LossPoint {
	lost := 0
	for _, tr := range spans {
		if (tr.dep-t0)/delta == (tr.arr-t0)/delta {
			lost++
		}
	}
	pt := LossPoint{Delta: delta, Total: len(spans)}
	if len(spans) > 0 {
		pt.Lost = float64(lost) / float64(len(spans))
	}
	return pt
}

// Points returns the loss curve in grid order. Valid after sweep.Run
// returns without error.
func (o *TransitionLossObserver) Points() []LossPoint { return o.points }

// TransitionLossCurve computes the proportion of lost shortest
// transitions for every period in grid, as one engine run with a
// TransitionLossObserver.
func TransitionLossCurve(ctx context.Context, s *linkstream.Stream, grid []int64, opt Options) ([]LossPoint, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("validate: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("validate: empty grid")
	}
	obs := NewTransitionLossObserver()
	if err := sweep.Run(ctx, s, grid, opt.engine(), obs); err != nil {
		return nil, err
	}
	return obs.Points(), nil
}

// tripSpan is one minimal trip interval of the original stream.
type tripSpan struct {
	dep, arr int64
}

// pairIndex maps an ordered pair (u, v) to the minimal trips of the
// stream between u and v, sorted by strictly increasing departure (and,
// by non-nesting, strictly increasing arrival). For node counts up to
// maxFlatPairNodes the spans live in one flat arena addressed by a
// dense n×n offset table, laid out destination-major (pair (u, v) at
// slot v·n+u) so an incremental build can append each destination's
// region as its run arrives — the elongation scan queries the index
// once per series trip, and an array lookup beats a hash probe by an
// order of magnitude there. Larger graphs fall back to a map.
type pairIndex struct {
	n       int32
	offsets []int32    // len n*n+1 in flat mode; nil in map mode
	spans   []tripSpan // flat arena, grouped by pair, dep-ascending
	byPair  map[uint64][]tripSpan
}

// maxFlatPairNodes bounds the dense offset table to ~16 MiB.
const maxFlatPairNodes = 2048

func pairKey(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// guardSorted verifies the per-pair dep-ascending invariant of the flat
// arena (one linear pass) and restores it if an enumeration order
// change ever violates it.
func (idx *pairIndex) guardSorted() {
	n := int(idx.n)
	for p := 0; p < n*n; p++ {
		lo, hi := idx.offsets[p], idx.offsets[p+1]
		for i := lo + 1; i < hi; i++ {
			if idx.spans[i].dep < idx.spans[i-1].dep {
				sp := idx.spans[lo:hi]
				sort.Slice(sp, func(i, j int) bool { return sp[i].dep < sp[j].dep })
				break
			}
		}
	}
}

func buildPairIndex(n int, trips []temporal.Trip) *pairIndex {
	idx := &pairIndex{n: int32(n)}
	if n > maxFlatPairNodes {
		idx.byPair = make(map[uint64][]tripSpan)
		for _, tr := range trips {
			k := pairKey(tr.U, tr.V)
			idx.byPair[k] = append(idx.byPair[k], tripSpan{dep: tr.Dep, arr: tr.Arr})
		}
		for k := range idx.byPair {
			sp := idx.byPair[k]
			sort.Slice(sp, func(i, j int) bool { return sp[i].dep < sp[j].dep })
		}
		return idx
	}
	// Flat mode: counting pass, prefix sum, then a backward fill. The
	// trip enumeration emits each pair's trips in strictly decreasing
	// departure order (backward sweep, destination-major), so filling
	// each pair's range back to front yields dep-ascending spans without
	// any per-pair sort.
	offsets := make([]int32, n*n+1)
	for _, tr := range trips {
		offsets[int(tr.V)*n+int(tr.U)+1]++
	}
	for i := 1; i <= n*n; i++ {
		offsets[i] += offsets[i-1]
	}
	spans := make([]tripSpan, len(trips))
	cursor := make([]int32, n*n)
	for _, tr := range trips {
		p := int(tr.V)*n + int(tr.U)
		cursor[p]++
		spans[int(offsets[p+1])-int(cursor[p])] = tripSpan{dep: tr.Dep, arr: tr.Arr}
	}
	idx.offsets, idx.spans = offsets, spans
	idx.guardSorted()
	return idx
}

// pairIndexBuilder assembles a pairIndex incrementally from the
// engine's streaming trip runs: runs arrive in strictly increasing
// destination order and, within a run, in the enumeration's decreasing
// per-pair departure order, so each destination's contiguous region of
// the destination-major arena is finalised — counted, prefix-summed and
// back-filled — the moment its run is delivered. The flat trip slice
// the eager build consumes never exists.
type pairIndexBuilder struct {
	idx      *pairIndex
	nextDest int32
	cnt      []int32 // per-source span counts of the current run
}

func newPairIndexBuilder(n int) *pairIndexBuilder {
	idx := &pairIndex{n: int32(n)}
	b := &pairIndexBuilder{idx: idx}
	if n > maxFlatPairNodes {
		idx.byPair = make(map[uint64][]tripSpan)
	} else {
		idx.offsets = make([]int32, n*n+1)
		b.cnt = make([]int32, n)
	}
	return b
}

// addRun merges one destination's minimal trips. Runs must arrive with
// strictly increasing dest; every trip's V equals dest.
func (b *pairIndexBuilder) addRun(dest int32, run []temporal.Trip) {
	idx := b.idx
	if idx.offsets == nil {
		for _, tr := range run {
			k := pairKey(tr.U, tr.V)
			idx.byPair[k] = append(idx.byPair[k], tripSpan{dep: tr.Dep, arr: tr.Arr})
		}
		b.nextDest = dest + 1
		return
	}
	n := int(idx.n)
	base := int32(len(idx.spans))
	// Destinations skipped since the last run had no trips: their pairs
	// are empty ranges at the current arena end.
	for p := int(b.nextDest) * n; p < int(dest)*n; p++ {
		idx.offsets[p] = base
	}
	for _, tr := range run {
		b.cnt[tr.U]++
	}
	off := base
	row := int(dest) * n
	for u := 0; u < n; u++ {
		idx.offsets[row+u] = off
		off += b.cnt[u]
	}
	need := len(idx.spans) + len(run)
	if cap(idx.spans) < need {
		grown := make([]tripSpan, len(idx.spans), max(need, 2*cap(idx.spans)))
		copy(grown, idx.spans)
		idx.spans = grown
	}
	idx.spans = idx.spans[:need]
	// Back-fill each pair's range: departures arrive strictly
	// decreasing per pair, so the counters walk each range back to
	// front and land on dep-ascending spans — zeroing cnt on the way.
	for _, tr := range run {
		b.cnt[tr.U]--
		idx.spans[int(idx.offsets[row+int(tr.U)])+int(b.cnt[tr.U])] = tripSpan{dep: tr.Dep, arr: tr.Arr}
	}
	b.nextDest = dest + 1
}

// finish seals the index: remaining (trip-less) destinations get empty
// ranges, the invariant guard runs, and the builder must not be reused.
func (b *pairIndexBuilder) finish() *pairIndex {
	idx := b.idx
	if idx.offsets != nil {
		n := int(idx.n)
		total := int32(len(idx.spans))
		for p := int(b.nextDest) * n; p <= n*n; p++ {
			idx.offsets[p] = total
		}
		idx.guardSorted()
		return idx
	}
	for k, sp := range idx.byPair {
		// Each pair's spans came from one run, dep-descending; reverse
		// in place to the dep-ascending query order.
		for i, j := 0, len(sp)-1; i < j; i, j = i+1, j-1 {
			sp[i], sp[j] = sp[j], sp[i]
		}
		sorted := true
		for i := 1; i < len(sp); i++ {
			if sp[i].dep < sp[i-1].dep {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.Slice(sp, func(i, j int) bool { return sp[i].dep < sp[j].dep })
		}
		idx.byPair[k] = sp
	}
	return idx
}

// pair returns the dep-ascending spans of the ordered pair (u, v).
func (idx *pairIndex) pair(u, v int32) []tripSpan {
	if idx.offsets != nil {
		if u < 0 || u >= idx.n || v < 0 || v >= idx.n {
			return nil
		}
		p := int(v)*int(idx.n) + int(u)
		return idx.spans[idx.offsets[p]:idx.offsets[p+1]]
	}
	return idx.byPair[pairKey(u, v)]
}

// minDurationWithin returns the smallest duration (arr - dep) among the
// pair's stream trips fully contained in [a, b], and whether one exists.
// Because any trip contains a minimal trip within its own interval,
// searching minimal trips only is sufficient.
func (idx *pairIndex) minDurationWithin(u, v int32, a, b int64) (int64, bool) {
	return minDurationIn(idx.pair(u, v), a, b)
}

// ElongationPoint is the Figure 8 (right) value at one period.
type ElongationPoint struct {
	Delta int64 `json:"delta"`
	// MeanElongation is the mean, over the minimal trips of G∆ spanning
	// at least two windows, of (tv - tu + 1)·∆ / timeL (Definition 8).
	MeanElongation float64 `json:"mean_elongation"`
	// Trips is the number of trips entering the mean.
	Trips int `json:"trips"`
	// Unmatched counts trips for which no stream trip was found inside
	// the window interval; it is always 0 for consistent inputs and is
	// reported for failure-injection tests.
	Unmatched int `json:"unmatched,omitempty"`
}

// ElongationObserver computes the Figure 8 (right) curve. The pair
// spans of the raw stream's minimal trips are built incrementally from
// the engine's streaming trip runs (never holding the flat trip slice)
// into a delta-encoded destination-major arena — ~3-5 B per span
// instead of the flat index's 16, with only one int64 offset per node
// — that can spill finished regions to disk beyond SpillBytes, so
// Section 8 validation runs on streams whose span population exceeds
// RAM. Each period's scan over the minimal trips of G∆ is sharded
// across the engine's worker pool: every destination block is scored
// on the worker that swept it (its destinations' regions decoded into
// pooled scratch, re-read from the spill shelf if needed), into
// per-lane partial sums that ObservePeriod folds in lane order —
// bit-for-bit deterministic for any worker count, any spill cap, and
// identical to the eager ElongationObserverReference.
type ElongationObserver struct {
	// SpillBytes caps the arena's resident bytes (Options.SpillBytes);
	// set before the run begins. <= 0 keeps everything in RAM.
	SpillBytes int64

	t0        int64
	arena     *spanArena
	points    []ElongationPoint
	remaining atomic.Int64
	scratch   sync.Pool // of *destSpans
}

// NewElongationObserver returns an empty elongation observer.
func NewElongationObserver() *ElongationObserver { return &ElongationObserver{} }

// Needs implements sweep.Observer: streaming stream-trip runs for the
// pair-span arena, sharded per-period trip scoring for the scan.
func (o *ElongationObserver) Needs() sweep.Needs {
	return sweep.Needs{StreamTripRuns: true, TripShards: true}
}

// Begin implements sweep.Observer.
func (o *ElongationObserver) Begin(v *sweep.StreamView) error {
	if o.arena != nil {
		o.arena.release() // a previous aborted run's spill shelf
	}
	o.t0 = v.T0
	o.arena = newSpanArena(v.N, o.SpillBytes)
	o.points = make([]ElongationPoint, len(v.Grid))
	o.remaining.Store(int64(len(v.Grid)))
	return nil
}

// ObserveTripRun implements sweep.TripRunObserver: each destination's
// run is encoded into the arena the moment it arrives, spilling if the
// resident encoding passed the cap.
func (o *ElongationObserver) ObserveTripRun(dest int32, run []temporal.Trip) error {
	return o.arena.addRun(dest, run)
}

// FinishTripRuns implements sweep.TripRunObserver.
func (o *ElongationObserver) FinishTripRuns() error {
	o.arena.finish()
	return nil
}

// elongPartial is one destination lane's share of a period's elongation
// scan.
type elongPartial struct {
	sum       float64
	trips     int
	unmatched int
}

// elongShard is the per-period state of the sharded elongation scan:
// one partial per destination lane, written only by the worker that
// sweeps the lane's block.
type elongShard struct {
	o        *ElongationObserver
	delta    int64
	lanes    int // lanes per block of the run's blocked sweep
	partials []elongPartial
}

// NewTripShard implements sweep.ShardedTripObserver.
func (o *ElongationObserver) NewTripShard(delta int64, blocks, lanesPerBlock int) sweep.TripShard {
	return &elongShard{o: o, delta: delta, lanes: lanesPerBlock, partials: make([]elongPartial, blocks*lanesPerBlock)}
}

// ObserveTripBlock scores one destination block of the period's minimal
// trips against the stream pair-span arena, accumulating per-lane
// partials. Each lane holds one destination's trips, so its arena
// region is decoded once (into pooled scratch, off the spill shelf if
// it was flushed) and queried for every trip of the lane.
func (s *elongShard) ObserveTripBlock(block int, lanes [][]temporal.Trip) error {
	ds, _ := s.o.scratch.Get().(*destSpans)
	if ds == nil {
		ds = &destSpans{}
	}
	defer s.o.scratch.Put(ds)
	for l, lane := range lanes {
		if len(lane) == 0 {
			continue
		}
		if err := s.o.arena.decodeDest(int32(block*s.lanes+l), ds); err != nil {
			return err
		}
		pa := &s.partials[block*s.lanes+l]
		for _, tr := range lane {
			if tr.Dep == tr.Arr {
				continue // Definition 8 requires tu != tv
			}
			// Definition 8 confines the stream trip to the closed real
			// interval spanned by the trip's windows; in discrete time
			// the last instant of window arr is the instant before the
			// next window starts (an event at the boundary already
			// belongs to the next window).
			a := s.o.t0 + tr.Dep*s.delta
			b := s.o.t0 + (tr.Arr+1)*s.delta - 1
			durL, ok := ds.minDurationWithin(tr.U, a, b)
			if !ok || durL <= 0 {
				// Cannot happen for trips spanning >= 2 windows (the
				// series trip implies a stream trip in the interval and
				// minimality excludes instantaneous ones), but guard
				// against inconsistent inputs rather than divide by 0.
				pa.unmatched++
				continue
			}
			pa.sum += float64(tr.Arr-tr.Dep+1) * float64(s.delta) / float64(durL)
			pa.trips++
		}
	}
	return nil
}

// ObservePeriod implements sweep.Observer: it folds the shard's
// per-lane partial sums in lane (= destination) order, which is exactly
// the floating-point summation order of a sequential destination-major
// scan folding per-destination subtotals — so the mean matches the
// eager reference bit for bit regardless of how blocks were scheduled.
func (o *ElongationObserver) ObservePeriod(p *sweep.Period) error {
	sh := p.Shard.(*elongShard)
	pt := ElongationPoint{Delta: p.Delta}
	sum := 0.0
	for i := range sh.partials {
		pa := &sh.partials[i]
		pt.Unmatched += pa.unmatched
		if pa.trips > 0 {
			sum += pa.sum
			pt.Trips += pa.trips
		}
	}
	if pt.Trips > 0 {
		pt.MeanElongation = sum / float64(pt.Trips)
	}
	o.points[p.Index] = pt
	// Every period's blocks are decoded before its ObservePeriod runs,
	// so once the last period is observed no decode can follow: close
	// the spill shelf (if any) right away instead of waiting for GC.
	if o.remaining.Add(-1) == 0 {
		o.arena.release()
	}
	return nil
}

// Points returns the elongation curve in grid order. Valid after
// sweep.Run returns without error.
func (o *ElongationObserver) Points() []ElongationPoint { return o.points }

// ElongationCurve computes the mean elongation factor of the minimal
// trips of G∆ for every period in grid, as one engine run with an
// ElongationObserver.
func ElongationCurve(ctx context.Context, s *linkstream.Stream, grid []int64, opt Options) ([]ElongationPoint, error) {
	if s.NumEvents() == 0 {
		return nil, errors.New("validate: stream has no events")
	}
	if len(grid) == 0 {
		return nil, errors.New("validate: empty grid")
	}
	obs := NewElongationObserver()
	obs.SpillBytes = opt.SpillBytes
	if err := sweep.Run(ctx, s, grid, opt.engine(), obs); err != nil {
		return nil, err
	}
	return obs.Points(), nil
}
