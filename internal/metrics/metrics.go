// Package metrics is the per-∆ snapshot-metric observer library: a set
// of sweep.Observer implementations that score structural properties of
// the aggregated series G∆ — degree distribution, clustering,
// connected-component structure, coreness, and the weighted
// aggregation — one value per candidate period, all fanned off the
// engine's single shared CSR build per period (Needs.Snapshots /
// Needs.EdgeWeights), never a pass of their own.
//
// Every metric follows one convention: a per-window (per-snapshot)
// quantity is computed for each window of the ∆-partition and averaged
// over all NumWindows windows, empty windows included. An empty window
// contributes 0 to every quantity except the giant-component fraction,
// where it contributes 1/N (an empty snapshot's largest component is a
// single isolated node when N > 0 — the same convention as
// series.Stats). Directed streams keep edge orientation for the degree
// and weighted metrics (a reciprocal pair is two edges) and are
// evaluated on the underlying undirected simple graph for clustering,
// components and coreness, where orientation has no standard meaning.
//
// Each observer's curve (value vs ∆) carries a stability score per
// series — the plateau detector time-scale selection reads — built
// from the same Milnor–Kauffman proximity the paper's Section 7
// selectors rank distributions with; see Stability.
//
// Results are deterministic: each period is scored by exactly one
// engine task, windows accumulate in window order, and integer-derived
// quantities are exact — so every curve is bit-identical across worker
// counts, lane widths and in-flight budgets. Against the naive
// per-snapshot references (reference.go) the integer-derived fields
// match bit-exactly and the float-summed ones (entropies, clustering)
// to 1e-12 relative tolerance, since the two sides may sum per-node
// terms in different orders.
package metrics

import (
	"math"
	"slices"

	"repro/internal/dist"
	"repro/internal/sweep"
	"repro/internal/temporal"
)

// DegreePoint is the degree-distribution summary at one period: each
// per-window quantity averaged over all windows of the ∆-partition.
// Degree counts incident edges — out plus in for directed snapshots —
// so MeanDegree is 2M_k/N either way.
type DegreePoint struct {
	Delta int64 `json:"delta"`
	// MeanDegree is the average over windows of the snapshot's mean
	// degree over all N nodes.
	MeanDegree float64 `json:"mean_degree"`
	// MaxDegree is the average over windows of the snapshot's maximum
	// degree.
	MaxDegree float64 `json:"max_degree"`
	// DegreeEntropy is the average over windows of the Shannon entropy
	// (nats) of the snapshot's degree distribution over all N nodes,
	// zero-degree nodes included.
	DegreeEntropy float64 `json:"degree_entropy"`
}

// ClusteringPoint is the clustering summary at one period, computed on
// the underlying undirected simple graph of each snapshot.
type ClusteringPoint struct {
	Delta int64 `json:"delta"`
	// Transitivity is the average over windows of the snapshot's global
	// transitivity 3·triangles/wedges (0 when the snapshot has no
	// wedge).
	Transitivity float64 `json:"transitivity"`
	// MeanClustering is the average over windows of the snapshot's mean
	// local clustering coefficient over all N nodes (nodes of degree
	// < 2 contribute 0).
	MeanClustering float64 `json:"mean_clustering"`
}

// ComponentsPoint is the connected-component summary at one period
// (weak connectivity for directed snapshots).
type ComponentsPoint struct {
	Delta int64 `json:"delta"`
	// MeanComponents is the average over windows of the number of
	// components among the snapshot's non-isolated nodes (an empty
	// snapshot has 0).
	MeanComponents float64 `json:"mean_components"`
	// GiantFraction is the average over windows of |largest
	// component|/N, with an empty snapshot counting 1/N (its largest
	// component is one isolated node), per the series.Stats convention.
	GiantFraction float64 `json:"giant_fraction"`
}

// CorenessPoint is the k-core summary at one period, computed on the
// underlying undirected simple graph of each snapshot.
type CorenessPoint struct {
	Delta int64 `json:"delta"`
	// MaxCoreness is the average over windows of the snapshot's
	// degeneracy (its maximum core number).
	MaxCoreness float64 `json:"max_coreness"`
	// MeanCoreness is the average over windows of the snapshot's mean
	// coreness over all N nodes (untouched nodes have coreness 0).
	MeanCoreness float64 `json:"mean_coreness"`
}

// WeightedPoint is the weighted-aggregation summary at one period: the
// AggregateNet view where each snapshot edge carries the number of
// stream events its window collapsed onto it.
type WeightedPoint struct {
	Delta int64 `json:"delta"`
	// MeanWeight is the average over windows of the snapshot's mean
	// edge weight (total contacts / distinct edges; 0 for an empty
	// snapshot).
	MeanWeight float64 `json:"mean_weight"`
	// MaxWeight is the average over windows of the snapshot's maximum
	// edge weight.
	MaxWeight float64 `json:"max_weight"`
	// WeightEntropy is the average over windows of the snapshot's
	// weight entropy −Σ (w/W)·ln(w/W), normalised by ln(edges) onto
	// [0, 1] (0 when the snapshot has fewer than two edges): 1 means
	// contacts spread evenly over the window's edges, 0 means they
	// concentrate on one.
	WeightEntropy float64 `json:"weight_entropy"`
	// TotalContacts is the sum of all edge weights over all windows —
	// exactly the number of events in the period of study, whatever ∆
	// is (the weighted aggregation loses no contact).
	TotalContacts int64 `json:"total_contacts"`
}

// Series is one named value-vs-∆ series of a metric curve, with its
// stability score.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
	// Stability is the plateau score of the series (see Stability):
	// 1 means flat across the grid, 0 means the values spread evenly
	// over their own range.
	Stability float64 `json:"stability"`
}

// Curve is the generic value-vs-∆ form of a snapshot metric: the
// metric's name (a root-package ParseMetrics name), the candidate
// periods, and one Series per summary quantity, each value aligned
// with Deltas.
type Curve struct {
	Metric string   `json:"metric"`
	Deltas []int64  `json:"deltas"`
	Series []Series `json:"series"`
}

// Get returns the named series of the curve.
func (c Curve) Get(name string) (Series, bool) {
	for _, s := range c.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// Stability scores how strongly a value-vs-∆ series plateaus, on
// [0, 1]. The series is min-max normalised onto [0, 1] and scored with
// the complement of the Milnor–Kauffman proximity the Section 7
// selectors use: a constant series (everything on the plateau) scores
// 1, a series whose values spread uniformly across their own range (no
// scale is special) scores ~0, and a two-level step — half the grid on
// each plateau — sits near 1/2. Like the selectors, it is a ranking
// device for comparing candidate scales, not a significance test.
func Stability(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		lo, hi = min(lo, v), max(hi, v)
	}
	if hi == lo {
		return 1
	}
	norm := make([]float64, len(values))
	for i, v := range values {
		norm[i] = (v - lo) / (hi - lo)
	}
	s, err := dist.NewSample(norm)
	if err != nil {
		return 0
	}
	return 1 - s.MKProximity()
}

func series1(name string, values []float64) Series {
	return Series{Name: name, Values: values, Stability: Stability(values)}
}

// DegreeObserver collects the degree-distribution curve inside an
// engine run, one more lane off the shared per-period CSR build.
type DegreeObserver struct {
	n      int
	points []DegreePoint
}

// NewDegreeObserver returns a degree-distribution observer.
func NewDegreeObserver() *DegreeObserver { return &DegreeObserver{} }

// Needs declares the snapshot lane.
func (o *DegreeObserver) Needs() sweep.Needs { return sweep.Needs{Snapshots: true} }

// Begin sizes the curve to the grid.
func (o *DegreeObserver) Begin(v *sweep.StreamView) error {
	o.n = v.N
	o.points = make([]DegreePoint, len(v.Grid))
	return nil
}

// ObservePeriod scores one period straight off its layer arena.
func (o *DegreeObserver) ObservePeriod(p *sweep.Period) error {
	pt := DegreePoint{Delta: p.Delta}
	n := o.n
	if p.NumWindows > 0 && n > 0 {
		deg := make([]int32, n)
		stamp := newStamps(n)
		touched := make([]int32, 0, 64)
		var sumMean, sumMax, sumEnt float64
		c := p.Graph
		for li := 0; li < c.NumLayers(); li++ {
			lo, hi := c.Off[li], c.Off[li+1]
			touched = touched[:0]
			epoch := int32(li)
			for t := lo; t < hi; t++ {
				for _, x := range [2]int32{c.Ends[2*t], c.Ends[2*t+1]} {
					if stamp[x] != epoch {
						stamp[x] = epoch
						deg[x] = 0
						touched = append(touched, x)
					}
					deg[x]++
				}
			}
			m := hi - lo
			sumMean += 2 * float64(m) / float64(n)
			degs := make([]int32, len(touched))
			for i, x := range touched {
				degs[i] = deg[x]
			}
			slices.Sort(degs)
			if len(degs) > 0 {
				sumMax += float64(degs[len(degs)-1])
			}
			sumEnt += degreeEntropy(n, degs)
		}
		k := float64(p.NumWindows)
		pt.MeanDegree = sumMean / k
		pt.MaxDegree = sumMax / k
		pt.DegreeEntropy = sumEnt / k
	}
	o.points[p.Index] = pt
	return nil
}

// Points returns the curve, one DegreePoint per grid entry.
func (o *DegreeObserver) Points() []DegreePoint { return o.points }

// Curve returns the generic curve form with per-series stability.
func (o *DegreeObserver) Curve() Curve {
	deltas := make([]int64, len(o.points))
	mean := make([]float64, len(o.points))
	maxd := make([]float64, len(o.points))
	ent := make([]float64, len(o.points))
	for i, pt := range o.points {
		deltas[i], mean[i], maxd[i], ent[i] = pt.Delta, pt.MeanDegree, pt.MaxDegree, pt.DegreeEntropy
	}
	return Curve{Metric: "degree", Deltas: deltas, Series: []Series{
		series1("mean_degree", mean),
		series1("max_degree", maxd),
		series1("degree_entropy", ent),
	}}
}

// degreeEntropy is the Shannon entropy (nats) of a snapshot's degree
// distribution over all n nodes: degs holds the sorted degrees of the
// non-isolated nodes, the remaining n−len(degs) nodes have degree 0.
// Classes accumulate in ascending degree order on both the engine and
// the reference side, keeping the two within float tolerance of a
// single rounding.
func degreeEntropy(n int, degs []int32) float64 {
	ent := 0.0
	class := func(count int) {
		if count > 0 {
			p := float64(count) / float64(n)
			ent -= p * math.Log(p)
		}
	}
	class(n - len(degs)) // the degree-0 class
	for i := 0; i < len(degs); {
		j := i
		for j < len(degs) && degs[j] == degs[i] {
			j++
		}
		class(j - i)
		i = j
	}
	return ent
}

// ClusteringObserver collects the clustering/transitivity curve inside
// an engine run.
type ClusteringObserver struct {
	n        int
	directed bool
	points   []ClusteringPoint
}

// NewClusteringObserver returns a clustering observer.
func NewClusteringObserver() *ClusteringObserver { return &ClusteringObserver{} }

// Needs declares the snapshot lane.
func (o *ClusteringObserver) Needs() sweep.Needs { return sweep.Needs{Snapshots: true} }

// Begin sizes the curve to the grid.
func (o *ClusteringObserver) Begin(v *sweep.StreamView) error {
	o.n, o.directed = v.N, v.Directed
	o.points = make([]ClusteringPoint, len(v.Grid))
	return nil
}

// ObservePeriod scores one period on the underlying undirected simple
// graph of each snapshot.
func (o *ClusteringObserver) ObservePeriod(p *sweep.Period) error {
	pt := ClusteringPoint{Delta: p.Delta}
	n := o.n
	if p.NumWindows > 0 && n > 0 {
		var sumTrans, sumLocal float64
		adj := newAdjScratch(n)
		c := p.Graph
		for li := 0; li < c.NumLayers(); li++ {
			adj.build(c, li, o.directed)
			trans, local := adj.clustering()
			sumTrans += trans
			sumLocal += local
		}
		k := float64(p.NumWindows)
		pt.Transitivity = sumTrans / k
		pt.MeanClustering = sumLocal / k
	}
	o.points[p.Index] = pt
	return nil
}

// Points returns the curve, one ClusteringPoint per grid entry.
func (o *ClusteringObserver) Points() []ClusteringPoint { return o.points }

// Curve returns the generic curve form with per-series stability.
func (o *ClusteringObserver) Curve() Curve {
	deltas := make([]int64, len(o.points))
	trans := make([]float64, len(o.points))
	local := make([]float64, len(o.points))
	for i, pt := range o.points {
		deltas[i], trans[i], local[i] = pt.Delta, pt.Transitivity, pt.MeanClustering
	}
	return Curve{Metric: "clustering", Deltas: deltas, Series: []Series{
		series1("transitivity", trans),
		series1("mean_clustering", local),
	}}
}

// ComponentsObserver collects the component-structure curve inside an
// engine run.
type ComponentsObserver struct {
	n      int
	points []ComponentsPoint
}

// NewComponentsObserver returns a component-structure observer.
func NewComponentsObserver() *ComponentsObserver { return &ComponentsObserver{} }

// Needs declares the snapshot lane.
func (o *ComponentsObserver) Needs() sweep.Needs { return sweep.Needs{Snapshots: true} }

// Begin sizes the curve to the grid.
func (o *ComponentsObserver) Begin(v *sweep.StreamView) error {
	o.n = v.N
	o.points = make([]ComponentsPoint, len(v.Grid))
	return nil
}

// ObservePeriod scores one period with a stamped union-find over each
// layer's edges — the windowStats technique, counting components.
func (o *ComponentsObserver) ObservePeriod(p *sweep.Period) error {
	pt := ComponentsPoint{Delta: p.Delta}
	n := o.n
	if p.NumWindows > 0 && n > 0 {
		parent := make([]int32, n)
		size := make([]int32, n)
		stamp := newStamps(n)
		find := func(x int32) int32 {
			for parent[x] != x {
				parent[x] = parent[parent[x]] // path halving
				x = parent[x]
			}
			return x
		}
		var sumComps, sumGiant float64
		c := p.Graph
		for li := 0; li < c.NumLayers(); li++ {
			lo, hi := c.Off[li], c.Off[li+1]
			epoch := int32(li)
			nonIso, unions := 0, 0
			largest := int32(1)
			touch := func(x int32) int32 {
				if stamp[x] != epoch {
					stamp[x] = epoch
					parent[x] = x
					size[x] = 1
					nonIso++
				}
				return find(x)
			}
			for t := lo; t < hi; t++ {
				ru, rv := touch(c.Ends[2*t]), touch(c.Ends[2*t+1])
				if ru == rv {
					continue
				}
				unions++
				if size[ru] < size[rv] {
					ru, rv = rv, ru
				}
				parent[rv] = ru
				size[ru] += size[rv]
				if size[ru] > largest {
					largest = size[ru]
				}
			}
			sumComps += float64(nonIso - unions)
			sumGiant += float64(largest) / float64(n)
		}
		// Empty windows: no component among non-isolated nodes, and a
		// largest component of one isolated node (the series.Stats
		// convention).
		sumGiant += (float64(p.NumWindows) - float64(c.NumLayers())) / float64(n)
		k := float64(p.NumWindows)
		pt.MeanComponents = sumComps / k
		pt.GiantFraction = sumGiant / k
	}
	o.points[p.Index] = pt
	return nil
}

// Points returns the curve, one ComponentsPoint per grid entry.
func (o *ComponentsObserver) Points() []ComponentsPoint { return o.points }

// Curve returns the generic curve form with per-series stability.
func (o *ComponentsObserver) Curve() Curve {
	deltas := make([]int64, len(o.points))
	comps := make([]float64, len(o.points))
	giant := make([]float64, len(o.points))
	for i, pt := range o.points {
		deltas[i], comps[i], giant[i] = pt.Delta, pt.MeanComponents, pt.GiantFraction
	}
	return Curve{Metric: "components", Deltas: deltas, Series: []Series{
		series1("mean_components", comps),
		series1("giant_fraction", giant),
	}}
}

// CorenessObserver collects the k-core curve inside an engine run.
type CorenessObserver struct {
	n        int
	directed bool
	points   []CorenessPoint
}

// NewCorenessObserver returns a coreness observer.
func NewCorenessObserver() *CorenessObserver { return &CorenessObserver{} }

// Needs declares the snapshot lane.
func (o *CorenessObserver) Needs() sweep.Needs { return sweep.Needs{Snapshots: true} }

// Begin sizes the curve to the grid.
func (o *CorenessObserver) Begin(v *sweep.StreamView) error {
	o.n, o.directed = v.N, v.Directed
	o.points = make([]CorenessPoint, len(v.Grid))
	return nil
}

// ObservePeriod scores one period: each snapshot's core decomposition
// by bucketed peeling (Batagelj–Zaversnik) on the underlying
// undirected simple graph. Coreness sums are integer arithmetic, so
// the curve is exact.
func (o *CorenessObserver) ObservePeriod(p *sweep.Period) error {
	pt := CorenessPoint{Delta: p.Delta}
	n := o.n
	if p.NumWindows > 0 && n > 0 {
		var sumMax, sumMean float64
		adj := newAdjScratch(n)
		c := p.Graph
		for li := 0; li < c.NumLayers(); li++ {
			adj.build(c, li, o.directed)
			maxCore, coreSum := adj.coreness()
			sumMax += float64(maxCore)
			sumMean += float64(coreSum) / float64(n)
		}
		k := float64(p.NumWindows)
		pt.MaxCoreness = sumMax / k
		pt.MeanCoreness = sumMean / k
	}
	o.points[p.Index] = pt
	return nil
}

// Points returns the curve, one CorenessPoint per grid entry.
func (o *CorenessObserver) Points() []CorenessPoint { return o.points }

// Curve returns the generic curve form with per-series stability.
func (o *CorenessObserver) Curve() Curve {
	deltas := make([]int64, len(o.points))
	maxc := make([]float64, len(o.points))
	meanc := make([]float64, len(o.points))
	for i, pt := range o.points {
		deltas[i], maxc[i], meanc[i] = pt.Delta, pt.MaxCoreness, pt.MeanCoreness
	}
	return Curve{Metric: "coreness", Deltas: deltas, Series: []Series{
		series1("max_coreness", maxc),
		series1("mean_coreness", meanc),
	}}
}

// WeightedObserver collects the weighted-aggregation curve inside an
// engine run: the Needs.EdgeWeights lane hands it every snapshot
// edge's contact count, aligned with the shared layer arena.
type WeightedObserver struct {
	points []WeightedPoint
}

// NewWeightedObserver returns a weighted-aggregation observer.
func NewWeightedObserver() *WeightedObserver { return &WeightedObserver{} }

// Needs declares the snapshot and edge-weight lanes.
func (o *WeightedObserver) Needs() sweep.Needs {
	return sweep.Needs{Snapshots: true, EdgeWeights: true}
}

// Begin sizes the curve to the grid.
func (o *WeightedObserver) Begin(v *sweep.StreamView) error {
	o.points = make([]WeightedPoint, len(v.Grid))
	return nil
}

// ObservePeriod scores one period off its weight lane.
func (o *WeightedObserver) ObservePeriod(p *sweep.Period) error {
	pt := WeightedPoint{Delta: p.Delta}
	if p.NumWindows > 0 {
		var sumMean, sumMax, sumEnt float64
		c, w := p.Graph, p.EdgeWeights
		for li := 0; li < c.NumLayers(); li++ {
			lw := w[c.Off[li]:c.Off[li+1]]
			var winTotal int64
			maxw := int32(0)
			for _, x := range lw {
				winTotal += int64(x)
				if x > maxw {
					maxw = x
				}
			}
			pt.TotalContacts += winTotal
			sumMean += float64(winTotal) / float64(len(lw))
			sumMax += float64(maxw)
			sumEnt += weightEntropy(lw, winTotal)
		}
		k := float64(p.NumWindows)
		pt.MeanWeight = sumMean / k
		pt.MaxWeight = sumMax / k
		pt.WeightEntropy = sumEnt / k
	}
	o.points[p.Index] = pt
	return nil
}

// Points returns the curve, one WeightedPoint per grid entry.
func (o *WeightedObserver) Points() []WeightedPoint { return o.points }

// Curve returns the generic curve form with per-series stability.
func (o *WeightedObserver) Curve() Curve {
	deltas := make([]int64, len(o.points))
	mean := make([]float64, len(o.points))
	maxw := make([]float64, len(o.points))
	ent := make([]float64, len(o.points))
	for i, pt := range o.points {
		deltas[i], mean[i], maxw[i], ent[i] = pt.Delta, pt.MeanWeight, pt.MaxWeight, pt.WeightEntropy
	}
	return Curve{Metric: "weighted", Deltas: deltas, Series: []Series{
		series1("mean_weight", mean),
		series1("max_weight", maxw),
		series1("weight_entropy", ent),
	}}
}

// weightEntropy is the normalised entropy of one window's edge-weight
// distribution: −Σ (w/W)·ln(w/W) / ln(E), 0 when the window has fewer
// than two edges. Terms accumulate in edge order (ascending packed
// (U, V) key — the arena's layer order), matching the reference's
// sorted-key iteration.
func weightEntropy(w []int32, total int64) float64 {
	if len(w) < 2 {
		return 0
	}
	ent := 0.0
	for _, x := range w {
		p := float64(x) / float64(total)
		ent -= p * math.Log(p)
	}
	return ent / math.Log(float64(len(w)))
}

// newStamps returns an n-slot epoch array at rest (-1 everywhere).
func newStamps(n int) []int32 {
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	return stamp
}

// adjScratch builds, per window, the underlying undirected simple
// graph's adjacency over the window's touched nodes: O(window edges)
// per window after an O(n) allocation per period, the windowStats
// costing model. Directed layers are canonicalised and deduplicated
// (a reciprocal pair is one undirected edge); undirected layers are
// already canonical, deduplicated and sorted by the engine's build.
type adjScratch struct {
	n         int
	deg       []int32 // per-node simple-graph degree (touched nodes)
	start     []int32 // per-node adjacency start (touched nodes)
	end       []int32 // per-node adjacency end — deg may be peeled, end never moves
	fill      []int32 // per-node cursor: build fill, then peel position
	stamp     []int32
	epoch     int32
	touched   []int32
	keys      []uint64 // canonicalised packed edges of the window
	adj       []int32  // concatenated neighbour lists of touched nodes
	tri       []int32  // per-node doubled triangle counts
	mark      []int64  // triangle-counting marks
	markEpoch int64
	order     []int32 // peel order scratch
	bin       []int32 // peel bucket scratch
}

func newAdjScratch(n int) *adjScratch {
	return &adjScratch{
		n:     n,
		deg:   make([]int32, n),
		start: make([]int32, n),
		end:   make([]int32, n),
		fill:  make([]int32, n),
		stamp: newStamps(n),
		tri:   make([]int32, n),
		mark:  make([]int64, n),
		epoch: -1,
	}
}

// build materialises layer li of the arena as adjacency lists. After
// it returns: touched lists the window's non-isolated nodes, deg[x]
// their simple-graph degrees, and neighbors(x) their neighbour lists.
func (a *adjScratch) build(c *temporal.CSR, li int, directed bool) {
	lo, hi := c.Off[li], c.Off[li+1]
	a.epoch++
	a.touched = a.touched[:0]
	keys := a.keys[:0]
	for t := lo; t < hi; t++ {
		u, v := c.Ends[2*t], c.Ends[2*t+1]
		if directed && u > v {
			u, v = v, u
		}
		keys = append(keys, uint64(uint32(u))<<32|uint64(uint32(v)))
	}
	if directed {
		slices.Sort(keys)
		keys = slices.Compact(keys)
	}
	a.keys = keys
	touch := func(x int32) {
		if a.stamp[x] != a.epoch {
			a.stamp[x] = a.epoch
			a.deg[x] = 0
			a.touched = append(a.touched, x)
		}
		a.deg[x]++
	}
	for _, key := range keys {
		touch(int32(key >> 32))
		touch(int32(uint32(key)))
	}
	if cap(a.adj) < 2*len(keys) {
		a.adj = make([]int32, 2*len(keys))
	}
	a.adj = a.adj[:2*len(keys)]
	cursor := int32(0)
	for _, x := range a.touched {
		a.start[x] = cursor
		a.fill[x] = cursor
		cursor += a.deg[x]
		a.end[x] = cursor
	}
	for _, key := range keys {
		u, v := int32(key>>32), int32(uint32(key))
		a.adj[a.fill[u]] = v
		a.fill[u]++
		a.adj[a.fill[v]] = u
		a.fill[v]++
	}
}

// neighbors returns touched node x's neighbour list (bounds fixed at
// build time, unaffected by the peel's degree updates).
func (a *adjScratch) neighbors(x int32) []int32 {
	return a.adj[a.start[x]:a.end[x]]
}

// clustering returns the window's transitivity 3·triangles/wedges and
// its mean local clustering over all n nodes. Triangles are counted
// once per edge by marked neighbour intersection: edge (u, v)'s
// common-neighbour count is the number of triangles through that edge,
// so summed over edges it is 3·triangles, and landing it on both
// endpoints leaves each node's count doubled — its local coefficient
// is then tri/(d(d−1)).
func (a *adjScratch) clustering() (transitivity, meanLocal float64) {
	for _, x := range a.touched {
		a.tri[x] = 0
	}
	var closed, wedges int64
	for _, u := range a.touched {
		a.markEpoch++
		for _, w := range a.neighbors(u) {
			a.mark[w] = a.markEpoch
		}
		du := int64(a.deg[u])
		wedges += du * (du - 1) / 2
		for _, v := range a.neighbors(u) {
			if v < u {
				continue // each undirected edge once, from its smaller end
			}
			c := int32(0)
			for _, w := range a.neighbors(v) {
				if a.mark[w] == a.markEpoch {
					c++
				}
			}
			closed += int64(c)
			a.tri[u] += c
			a.tri[v] += c
		}
	}
	if wedges > 0 {
		transitivity = float64(closed) / float64(wedges) // closed is already 3·triangles
	}
	var sumLocal float64
	for _, u := range a.touched {
		d := int64(a.deg[u])
		if d >= 2 {
			sumLocal += float64(a.tri[u]) / float64(d*(d-1))
		}
	}
	meanLocal = sumLocal / float64(a.n)
	return transitivity, meanLocal
}

// coreness peels the window's touched subgraph in degree buckets
// (Batagelj–Zaversnik) and returns the degeneracy and the sum of all
// core numbers: processing nodes in ascending current-degree order,
// a node's degree at its peel is its core number; only neighbours of
// higher current degree are decremented (and swapped to the front of
// their bucket). Destroys deg and fill — build refreshes both for the
// next window.
func (a *adjScratch) coreness() (maxCore int32, coreSum int64) {
	nt := len(a.touched)
	if nt == 0 {
		return 0, 0
	}
	maxDeg := int32(0)
	for _, x := range a.touched {
		if a.deg[x] > maxDeg {
			maxDeg = a.deg[x]
		}
	}
	if cap(a.bin) < int(maxDeg)+1 {
		a.bin = make([]int32, maxDeg+1)
	}
	bin := a.bin[:maxDeg+1]
	clear(bin)
	for _, x := range a.touched {
		bin[a.deg[x]]++
	}
	pos := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = pos
		pos += cnt
	}
	if cap(a.order) < nt {
		a.order = make([]int32, nt)
	}
	order := a.order[:nt]
	vpos := a.fill // node → index in order (the fill cursors are spent)
	for _, x := range a.touched {
		order[bin[a.deg[x]]] = x
		vpos[x] = bin[a.deg[x]]
		bin[a.deg[x]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	for i := 0; i < nt; i++ {
		v := order[i]
		dv := a.deg[v]
		if dv > maxCore {
			maxCore = dv
		}
		coreSum += int64(dv) // core(v) = its degree at peel time
		for _, u := range a.neighbors(v) {
			if a.deg[u] > dv {
				du, pu := a.deg[u], vpos[u]
				pw := bin[du]
				w := order[pw]
				if u != w {
					order[pu], order[pw] = w, u
					vpos[u], vpos[w] = pw, pu
				}
				bin[du]++
				a.deg[u] = du - 1
			}
		}
	}
	return maxCore, coreSum
}
