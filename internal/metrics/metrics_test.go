package metrics

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/sweep"
	"repro/internal/synth"
)

// engineResult is one engine pass's output across all five observers.
type engineResult struct {
	Deg []DegreePoint
	Clu []ClusteringPoint
	Com []ComponentsPoint
	Cor []CorenessPoint
	Wgt []WeightedPoint
}

// runAll runs all five metric observers in ONE engine pass and asserts
// the pass built exactly one CSR per grid point — the snapshot and
// edge-weight lanes must ride the shared build, never trigger their
// own.
func runAll(t *testing.T, s *linkstream.Stream, grid []int64, opt sweep.Options) engineResult {
	t.Helper()
	deg := NewDegreeObserver()
	clu := NewClusteringObserver()
	com := NewComponentsObserver()
	cor := NewCorenessObserver()
	wgt := NewWeightedObserver()
	sweep.ResetBuildStats()
	if err := sweep.Run(context.Background(), s, grid, opt, deg, clu, com, cor, wgt); err != nil {
		t.Fatalf("sweep.Run: %v", err)
	}
	builds, _ := sweep.BuildStats()
	if builds != int64(len(grid)) {
		t.Fatalf("engine built %d CSRs for %d grid points; metric lanes must not add builds", builds, len(grid))
	}
	return engineResult{Deg: deg.Points(), Clu: clu.Points(), Com: com.Points(), Cor: cor.Points(), Wgt: wgt.Points()}
}

// references computes all five naive per-snapshot curves.
func references(t *testing.T, s *linkstream.Stream, grid []int64, directed bool) engineResult {
	t.Helper()
	deg, err := DegreeReference(s, grid, directed)
	if err != nil {
		t.Fatalf("DegreeReference: %v", err)
	}
	clu, err := ClusteringReference(s, grid, directed)
	if err != nil {
		t.Fatalf("ClusteringReference: %v", err)
	}
	com, err := ComponentsReference(s, grid, directed)
	if err != nil {
		t.Fatalf("ComponentsReference: %v", err)
	}
	cor, err := CorenessReference(s, grid, directed)
	if err != nil {
		t.Fatalf("CorenessReference: %v", err)
	}
	wgt, err := WeightedReference(s, grid, directed)
	if err != nil {
		t.Fatalf("WeightedReference: %v", err)
	}
	return engineResult{Deg: deg, Clu: clu, Com: com, Cor: cor, Wgt: wgt}
}

// closeTo is the documented float tolerance of the engine-vs-reference
// contract: integer-derived fields compare bit-exactly (they take the
// a == b branch), per-node float sums (entropies, clustering
// coefficients) within 1e-12 relative — the two sides add the same
// terms in different per-node orders.
func closeTo(a, b float64) bool {
	if a == b {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-12*m
}

func checkClose(t *testing.T, metric, field string, delta int64, got, want float64) {
	t.Helper()
	if !closeTo(got, want) {
		t.Errorf("%s ∆=%d: %s = %v, reference %v", metric, delta, field, got, want)
	}
}

// compareToReference checks every engine point against its naive
// counterpart.
func compareToReference(t *testing.T, got, want engineResult) {
	t.Helper()
	for i, p := range got.Deg {
		w := want.Deg[i]
		checkClose(t, "degree", "mean_degree", p.Delta, p.MeanDegree, w.MeanDegree)
		checkClose(t, "degree", "max_degree", p.Delta, p.MaxDegree, w.MaxDegree)
		checkClose(t, "degree", "degree_entropy", p.Delta, p.DegreeEntropy, w.DegreeEntropy)
	}
	for i, p := range got.Clu {
		w := want.Clu[i]
		checkClose(t, "clustering", "transitivity", p.Delta, p.Transitivity, w.Transitivity)
		checkClose(t, "clustering", "mean_clustering", p.Delta, p.MeanClustering, w.MeanClustering)
	}
	for i, p := range got.Com {
		w := want.Com[i]
		checkClose(t, "components", "mean_components", p.Delta, p.MeanComponents, w.MeanComponents)
		checkClose(t, "components", "giant_fraction", p.Delta, p.GiantFraction, w.GiantFraction)
	}
	for i, p := range got.Cor {
		w := want.Cor[i]
		checkClose(t, "coreness", "max_coreness", p.Delta, p.MaxCoreness, w.MaxCoreness)
		checkClose(t, "coreness", "mean_coreness", p.Delta, p.MeanCoreness, w.MeanCoreness)
	}
	for i, p := range got.Wgt {
		w := want.Wgt[i]
		checkClose(t, "weighted", "mean_weight", p.Delta, p.MeanWeight, w.MeanWeight)
		checkClose(t, "weighted", "max_weight", p.Delta, p.MaxWeight, w.MaxWeight)
		checkClose(t, "weighted", "weight_entropy", p.Delta, p.WeightEntropy, w.WeightEntropy)
		if p.TotalContacts != w.TotalContacts {
			t.Errorf("weighted ∆=%d: total_contacts = %d, reference %d", p.Delta, p.TotalContacts, w.TotalContacts)
		}
	}
}

// TestObserversMatchReferences is the acceptance matrix: every metric
// vs its naive per-snapshot reference across 3 seeds × directed /
// undirected × worker counts × lane widths, all five computed in one
// engine pass per knob setting, and the engine output bit-identical
// across all knob settings.
func TestObserversMatchReferences(t *testing.T) {
	grid := []int64{250, 700, 1600, 4000, 9000, 20000}
	knobs := []struct{ workers, lane int }{{1, 4}, {1, 8}, {3, 4}, {3, 8}}
	for _, seed := range []int64{101, 202, 303} {
		s, err := synth.TimeUniform(synth.TimeUniformConfig{Nodes: 12, LinksPerPair: 5, T: 20_000, Seed: seed})
		if err != nil {
			t.Fatalf("synth: %v", err)
		}
		for _, directed := range []bool{false, true} {
			ref := references(t, s, grid, directed)
			var base engineResult
			for ki, knob := range knobs {
				opt := sweep.Options{Directed: directed, Workers: knob.workers, LaneWidth: knob.lane}
				got := runAll(t, s, grid, opt)
				if ki == 0 {
					base = got
					compareToReference(t, got, ref)
					// Every event falls in some window, so the
					// weighted total is the event count at every ∆.
					for _, p := range got.Wgt {
						if p.TotalContacts != int64(s.NumEvents()) {
							t.Errorf("seed %d directed=%v ∆=%d: total_contacts = %d, want event count %d",
								seed, directed, p.Delta, p.TotalContacts, s.NumEvents())
						}
					}
				} else if !reflect.DeepEqual(got, base) {
					t.Errorf("seed %d directed=%v: workers=%d lane=%d output differs from workers=%d lane=%d — curves must be bit-identical across engine knobs",
						seed, directed, knob.workers, knob.lane, knobs[0].workers, knobs[0].lane)
				}
			}
		}
	}
}

// TestSnapshotOnlySpec pins the engine's zero-task path: a spec whose
// observers want only Needs.Snapshots has no sweep, stats or weights
// product, so the freshly built CSR is finalized straight from the
// producer. The curve must match the reference all the same.
func TestSnapshotOnlySpec(t *testing.T) {
	s, err := synth.TimeUniform(synth.TimeUniformConfig{Nodes: 10, LinksPerPair: 4, T: 9_000, Seed: 7})
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	grid := []int64{300, 1100, 9000}
	for _, directed := range []bool{false, true} {
		deg := NewDegreeObserver()
		sweep.ResetBuildStats()
		if err := sweep.Run(context.Background(), s, grid, sweep.Options{Directed: directed, Workers: 2}, deg); err != nil {
			t.Fatalf("sweep.Run: %v", err)
		}
		if builds, _ := sweep.BuildStats(); builds != int64(len(grid)) {
			t.Fatalf("snapshot-only run built %d CSRs, want %d", builds, len(grid))
		}
		ref, err := DegreeReference(s, grid, directed)
		if err != nil {
			t.Fatalf("DegreeReference: %v", err)
		}
		for i, p := range deg.Points() {
			checkClose(t, "degree", "mean_degree", p.Delta, p.MeanDegree, ref[i].MeanDegree)
			checkClose(t, "degree", "max_degree", p.Delta, p.MaxDegree, ref[i].MaxDegree)
			checkClose(t, "degree", "degree_entropy", p.Delta, p.DegreeEntropy, ref[i].DegreeEntropy)
		}
	}
}

// TestCurveShape checks the Curve accessors: metric and series names,
// delta axis, stability range.
func TestCurveShape(t *testing.T) {
	s, err := synth.TimeUniform(synth.TimeUniformConfig{Nodes: 8, LinksPerPair: 3, T: 5_000, Seed: 11})
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	grid := []int64{200, 900, 5000}
	for _, tc := range []struct {
		obs interface {
			Curve() Curve
		}
		metric string
		series []string
	}{
		{mustRun(t, s, grid, NewDegreeObserver()), "degree", []string{"mean_degree", "max_degree", "degree_entropy"}},
		{mustRun(t, s, grid, NewClusteringObserver()), "clustering", []string{"transitivity", "mean_clustering"}},
		{mustRun(t, s, grid, NewComponentsObserver()), "components", []string{"mean_components", "giant_fraction"}},
		{mustRun(t, s, grid, NewCorenessObserver()), "coreness", []string{"max_coreness", "mean_coreness"}},
		{mustRun(t, s, grid, NewWeightedObserver()), "weighted", []string{"mean_weight", "max_weight", "weight_entropy"}},
	} {
		c := tc.obs.Curve()
		if c.Metric != tc.metric {
			t.Errorf("Curve.Metric = %q, want %q", c.Metric, tc.metric)
		}
		if len(c.Deltas) != len(grid) {
			t.Errorf("%s: len(Deltas) = %d, want %d", tc.metric, len(c.Deltas), len(grid))
		}
		for i, d := range c.Deltas {
			if d != grid[i] {
				t.Errorf("%s: Deltas[%d] = %d, want %d", tc.metric, i, d, grid[i])
			}
		}
		if len(c.Series) != len(tc.series) {
			t.Errorf("%s: %d series, want %d", tc.metric, len(c.Series), len(tc.series))
		}
		for _, name := range tc.series {
			ser, ok := c.Get(name)
			if !ok {
				t.Errorf("%s: missing series %q", tc.metric, name)
				continue
			}
			if len(ser.Values) != len(grid) {
				t.Errorf("%s/%s: %d values, want %d", tc.metric, name, len(ser.Values), len(grid))
			}
			if ser.Stability < 0 || ser.Stability > 1 {
				t.Errorf("%s/%s: stability %v outside [0, 1]", tc.metric, name, ser.Stability)
			}
		}
		if _, ok := c.Get("no_such_series"); ok {
			t.Errorf("%s: Get of unknown series reported ok", tc.metric)
		}
	}
}

// mustRun runs one observer through the engine and returns it, typed
// for the Curve table above.
func mustRun[T sweep.Observer](t *testing.T, s *linkstream.Stream, grid []int64, obs T) T {
	t.Helper()
	if err := sweep.Run(context.Background(), s, grid, sweep.Options{}, obs); err != nil {
		t.Fatalf("sweep.Run: %v", err)
	}
	return obs
}

// TestStability pins the stability score's anchor cases: empty input
// scores 0, a flat series is perfectly stable, a uniform ramp is near
// the unstable end, and a two-level step sits in between.
func TestStability(t *testing.T) {
	if got := Stability(nil); got != 0 {
		t.Errorf("Stability(nil) = %v, want 0", got)
	}
	flat := Stability([]float64{3, 3, 3, 3, 3, 3, 3, 3})
	if flat != 1 {
		t.Errorf("flat series stability = %v, want 1", flat)
	}
	ramp := Stability([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if ramp > 0.3 {
		t.Errorf("uniform ramp stability = %v, want near 0", ramp)
	}
	step := Stability([]float64{0, 0, 0, 0, 0, 5, 5, 5, 5, 5})
	if step <= ramp || step >= flat {
		t.Errorf("two-level step stability = %v, want between ramp (%v) and flat (%v)", step, ramp, flat)
	}
}
