package metrics

import (
	"math"
	"slices"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/snapshot"
)

// The *Reference functions are the naive per-snapshot implementations
// of every metric, retained per house style as the pin for the engine
// observers: aggregate the stream at each ∆ with series.Aggregate,
// materialise each window the obvious way (adjacency matrices, BFS,
// O(n²) peeling), average over all windows. They are O(grid × windows
// × n²) and exist to be slow, simple and obviously correct; the
// equivalence and brute-force suites compare the observers against
// them across seeds × orientations × workers × lane widths.

// matrixOf builds the underlying undirected simple-graph adjacency
// matrix of one window's edge list (directed edges lose orientation;
// reciprocal pairs collapse).
func matrixOf(n int, edges []snapshot.Edge) [][]bool {
	mat := make([][]bool, n)
	for i := range mat {
		mat[i] = make([]bool, n)
	}
	for _, e := range edges {
		mat[e.U][e.V] = true
		mat[e.V][e.U] = true
	}
	return mat
}

// DegreeReference computes the degree-distribution curve the naive
// way. Degree counts incident edges — a directed snapshot's reciprocal
// pair is two edges, contributing one to each endpoint per edge.
func DegreeReference(s *linkstream.Stream, grid []int64, directed bool) ([]DegreePoint, error) {
	out := make([]DegreePoint, len(grid))
	for gi, delta := range grid {
		g, err := series.Aggregate(s, delta, directed)
		if err != nil {
			return nil, err
		}
		pt := DegreePoint{Delta: delta}
		if g.NumWindows > 0 && g.N > 0 {
			var sumMean, sumMax, sumEnt float64
			for _, w := range g.Windows {
				deg := make([]int, g.N)
				for _, e := range w.Edges {
					deg[e.U]++
					deg[e.V]++
				}
				maxDeg := 0
				for _, d := range deg {
					if d > maxDeg {
						maxDeg = d
					}
				}
				counts := make([]int, maxDeg+1)
				for _, d := range deg {
					counts[d]++
				}
				sumMean += float64(2*len(w.Edges)) / float64(g.N)
				sumMax += float64(maxDeg)
				sumEnt += entropyOfCounts(g.N, counts)
			}
			k := float64(g.NumWindows)
			pt.MeanDegree = sumMean / k
			pt.MaxDegree = sumMax / k
			pt.DegreeEntropy = sumEnt / k
		}
		out[gi] = pt
	}
	return out, nil
}

// entropyOfCounts is Shannon entropy (nats) over the class counts,
// classes in ascending order — the same accumulation order as
// degreeEntropy.
func entropyOfCounts(n int, counts []int) float64 {
	ent := 0.0
	for _, count := range counts {
		if count > 0 {
			p := float64(count) / float64(n)
			ent -= p * math.Log(p)
		}
	}
	return ent
}

// ClusteringReference computes the clustering curve by brute force:
// triangles by triple loop over the adjacency matrix, local
// coefficients by neighbour-pair counting.
func ClusteringReference(s *linkstream.Stream, grid []int64, directed bool) ([]ClusteringPoint, error) {
	out := make([]ClusteringPoint, len(grid))
	for gi, delta := range grid {
		g, err := series.Aggregate(s, delta, directed)
		if err != nil {
			return nil, err
		}
		pt := ClusteringPoint{Delta: delta}
		if g.NumWindows > 0 && g.N > 0 {
			var sumTrans, sumLocal float64
			for _, w := range g.Windows {
				mat := matrixOf(g.N, w.Edges)
				deg := make([]int64, g.N)
				for u := 0; u < g.N; u++ {
					for v := 0; v < g.N; v++ {
						if mat[u][v] {
							deg[u]++
						}
					}
				}
				var triangles, wedges int64
				for u := 0; u < g.N; u++ {
					wedges += deg[u] * (deg[u] - 1) / 2
					for v := u + 1; v < g.N; v++ {
						if !mat[u][v] {
							continue
						}
						for x := v + 1; x < g.N; x++ {
							if mat[u][x] && mat[v][x] {
								triangles++
							}
						}
					}
				}
				if wedges > 0 {
					sumTrans += 3 * float64(triangles) / float64(wedges)
				}
				var local float64
				for u := 0; u < g.N; u++ {
					if deg[u] < 2 {
						continue
					}
					var links int64
					for v := 0; v < g.N; v++ {
						if !mat[u][v] {
							continue
						}
						for x := v + 1; x < g.N; x++ {
							if mat[u][x] && mat[v][x] {
								links++
							}
						}
					}
					local += float64(2*links) / float64(deg[u]*(deg[u]-1))
				}
				sumLocal += local / float64(g.N)
			}
			k := float64(g.NumWindows)
			pt.Transitivity = sumTrans / k
			pt.MeanClustering = sumLocal / k
		}
		out[gi] = pt
	}
	return out, nil
}

// ComponentsReference computes the component curve with snapshot.Graph
// (BFS-checked union-find) per window.
func ComponentsReference(s *linkstream.Stream, grid []int64, directed bool) ([]ComponentsPoint, error) {
	out := make([]ComponentsPoint, len(grid))
	for gi, delta := range grid {
		g, err := series.Aggregate(s, delta, directed)
		if err != nil {
			return nil, err
		}
		pt := ComponentsPoint{Delta: delta}
		if g.NumWindows > 0 && g.N > 0 {
			var sumComps, sumGiant float64
			for i := range g.Windows {
				gr, err := g.Snapshot(i)
				if err != nil {
					return nil, err
				}
				// Components() counts isolated nodes as singletons;
				// subtract them to count only the components among
				// non-isolated nodes.
				_, k := gr.Components()
				iso := g.N - gr.NonIsolated()
				sumComps += float64(k - iso)
				sumGiant += float64(gr.LargestComponent()) / float64(g.N)
			}
			sumGiant += (float64(g.NumWindows) - float64(len(g.Windows))) / float64(g.N)
			k := float64(g.NumWindows)
			pt.MeanComponents = sumComps / k
			pt.GiantFraction = sumGiant / k
		}
		out[gi] = pt
	}
	return out, nil
}

// CorenessReference computes the k-core curve by the naive O(n²) peel:
// repeatedly remove a minimum-degree node (smallest id on ties); its
// degree at removal, maximised over the removals so far, is its core
// number.
func CorenessReference(s *linkstream.Stream, grid []int64, directed bool) ([]CorenessPoint, error) {
	out := make([]CorenessPoint, len(grid))
	for gi, delta := range grid {
		g, err := series.Aggregate(s, delta, directed)
		if err != nil {
			return nil, err
		}
		pt := CorenessPoint{Delta: delta}
		if g.NumWindows > 0 && g.N > 0 {
			var sumMax, sumMean float64
			for _, w := range g.Windows {
				maxCore, coreSum := naiveCoreness(g.N, matrixOf(g.N, w.Edges))
				sumMax += float64(maxCore)
				sumMean += float64(coreSum) / float64(g.N)
			}
			k := float64(g.NumWindows)
			pt.MaxCoreness = sumMax / k
			pt.MeanCoreness = sumMean / k
		}
		out[gi] = pt
	}
	return out, nil
}

// naiveCoreness peels the adjacency matrix: the running maximum of
// removal degrees when a node goes is its core number. Isolated nodes
// peel first at degree 0.
func naiveCoreness(n int, mat [][]bool) (maxCore int64, coreSum int64) {
	deg := make([]int64, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if mat[u][v] {
				deg[u]++
			}
		}
	}
	removed := make([]bool, n)
	running := int64(0)
	for step := 0; step < n; step++ {
		pick := -1
		for u := 0; u < n; u++ {
			if !removed[u] && (pick < 0 || deg[u] < deg[pick]) {
				pick = u
			}
		}
		if deg[pick] > running {
			running = deg[pick]
		}
		coreSum += running
		if running > maxCore {
			maxCore = running
		}
		removed[pick] = true
		for v := 0; v < n; v++ {
			if mat[pick][v] && !removed[v] {
				deg[v]--
			}
		}
	}
	return maxCore, coreSum
}

// WeightedReference computes the weighted-aggregation curve by
// counting contacts per (window, canonical edge) in a map.
func WeightedReference(s *linkstream.Stream, grid []int64, directed bool) ([]WeightedPoint, error) {
	s.Sort()
	t0, _, ok := s.Span()
	out := make([]WeightedPoint, len(grid))
	for gi, delta := range grid {
		g, err := series.Aggregate(s, delta, directed)
		if err != nil {
			return nil, err
		}
		pt := WeightedPoint{Delta: delta}
		if ok && g.NumWindows > 0 {
			counts := make(map[int64]map[uint64]int64)
			for _, e := range s.Events() {
				u, v := e.U, e.V
				if !directed && u > v {
					u, v = v, u
				}
				k := (e.T - t0) / delta
				m := counts[k]
				if m == nil {
					m = make(map[uint64]int64)
					counts[k] = m
				}
				m[snapshot.PackEdge(u, v)]++
			}
			windows := make([]int64, 0, len(counts))
			for k := range counts {
				windows = append(windows, k)
			}
			slices.Sort(windows)
			var sumMean, sumMax, sumEnt float64
			for _, k := range windows {
				m := counts[k]
				keys := make([]uint64, 0, len(m))
				var winTotal, maxw int64
				for key, c := range m {
					keys = append(keys, key)
					winTotal += c
					if c > maxw {
						maxw = c
					}
				}
				pt.TotalContacts += winTotal
				sumMean += float64(winTotal) / float64(len(m))
				sumMax += float64(maxw)
				if len(m) >= 2 {
					slices.Sort(keys)
					ent := 0.0
					for _, key := range keys {
						p := float64(m[key]) / float64(winTotal)
						ent -= p * math.Log(p)
					}
					sumEnt += ent / math.Log(float64(len(m)))
				}
			}
			kk := float64(g.NumWindows)
			pt.MeanWeight = sumMean / kk
			pt.MaxWeight = sumMax / kk
			pt.WeightEntropy = sumEnt / kk
		}
		out[gi] = pt
	}
	return out, nil
}
