package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/sweep"
)

// The brute-force suite cross-checks the observers on tiny (≤ 12 node)
// randomized streams against the adjacency-matrix references, and pins
// a few windows whose metric values are small enough to compute by
// hand.

// randomStream builds an n-node stream of `events` uniform events over
// [0, horizon).
func randomStream(t *testing.T, rng *rand.Rand, n, events int, horizon int64) *linkstream.Stream {
	t.Helper()
	s := linkstream.New()
	s.EnsureNodes(n)
	for i := 0; i < events; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n - 1))
		if v >= u {
			v++
		}
		if err := s.AddID(u, v, rng.Int63n(horizon)); err != nil {
			t.Fatalf("AddID: %v", err)
		}
	}
	return s
}

func TestBruteForceSmallStreams(t *testing.T) {
	grid := []int64{37, 120, 333, 1000}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10) // 3..12 nodes
		events := 1 + rng.Intn(60)
		s := randomStream(t, rng, n, events, 1000)
		for _, directed := range []bool{false, true} {
			ref := references(t, s, grid, directed)
			got := runAll(t, s, grid, sweep.Options{Directed: directed, Workers: 2})
			compareToReference(t, got, ref)
		}
	}
}

// runAllOne aggregates one stream at a single ∆ and returns the
// (single-point) curves.
func runAllOne(t *testing.T, s *linkstream.Stream, delta int64, directed bool) engineResult {
	t.Helper()
	return runAll(t, s, []int64{delta}, sweep.Options{Directed: directed})
}

func expectClose(t *testing.T, name string, got, want float64) {
	t.Helper()
	if !closeTo(got, want) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestTriangleHandComputed pins a 5-node stream whose single window is
// a triangle on nodes {0, 1, 2} plus two isolated nodes.
func TestTriangleHandComputed(t *testing.T) {
	s := linkstream.New()
	s.EnsureNodes(5)
	for _, e := range [][3]int64{{0, 1, 0}, {1, 2, 1}, {0, 2, 2}} {
		if err := s.AddID(int32(e[0]), int32(e[1]), e[2]); err != nil {
			t.Fatalf("AddID: %v", err)
		}
	}
	r := runAllOne(t, s, 10, false)

	expectClose(t, "mean_degree", r.Deg[0].MeanDegree, 6.0/5)
	expectClose(t, "max_degree", r.Deg[0].MaxDegree, 2)
	// Degree classes: two nodes at 0, three at 2.
	expectClose(t, "degree_entropy", r.Deg[0].DegreeEntropy,
		-(0.4*math.Log(0.4) + 0.6*math.Log(0.6)))

	expectClose(t, "transitivity", r.Clu[0].Transitivity, 1)
	expectClose(t, "mean_clustering", r.Clu[0].MeanClustering, 3.0/5)

	expectClose(t, "mean_components", r.Com[0].MeanComponents, 1)
	expectClose(t, "giant_fraction", r.Com[0].GiantFraction, 3.0/5)

	expectClose(t, "max_coreness", r.Cor[0].MaxCoreness, 2)
	expectClose(t, "mean_coreness", r.Cor[0].MeanCoreness, 6.0/5)

	// Three distinct edges, one contact each: uniform weights.
	expectClose(t, "mean_weight", r.Wgt[0].MeanWeight, 1)
	expectClose(t, "max_weight", r.Wgt[0].MaxWeight, 1)
	expectClose(t, "weight_entropy", r.Wgt[0].WeightEntropy, 1)
	if r.Wgt[0].TotalContacts != 3 {
		t.Errorf("total_contacts = %d, want 3", r.Wgt[0].TotalContacts)
	}
}

// TestWeightedHandComputed pins the weighted aggregation on a window
// with a repeated contact: 0–1 three times, 1–2 once.
func TestWeightedHandComputed(t *testing.T) {
	s := linkstream.New()
	s.EnsureNodes(3)
	for _, e := range [][3]int64{{0, 1, 0}, {0, 1, 1}, {0, 1, 2}, {1, 2, 3}} {
		if err := s.AddID(int32(e[0]), int32(e[1]), e[2]); err != nil {
			t.Fatalf("AddID: %v", err)
		}
	}
	r := runAllOne(t, s, 10, false)
	w := r.Wgt[0]
	expectClose(t, "mean_weight", w.MeanWeight, 2) // 4 contacts / 2 edges
	expectClose(t, "max_weight", w.MaxWeight, 3)
	expectClose(t, "weight_entropy", w.WeightEntropy,
		-(0.75*math.Log(0.75)+0.25*math.Log(0.25))/math.Log(2))
	if w.TotalContacts != 4 {
		t.Errorf("total_contacts = %d, want 4", w.TotalContacts)
	}
}

// TestDirectedHandComputed pins orientation semantics on a reciprocal
// pair: events 0→1, 1→0 and 1→2 in one window. Directed, the snapshot
// keeps three edges and degree counts both directions; undirected, the
// reciprocal pair collapses to one edge of weight two.
func TestDirectedHandComputed(t *testing.T) {
	s := linkstream.New()
	s.EnsureNodes(3)
	for _, e := range [][3]int64{{0, 1, 0}, {1, 0, 1}, {1, 2, 2}} {
		if err := s.AddID(int32(e[0]), int32(e[1]), e[2]); err != nil {
			t.Fatalf("AddID: %v", err)
		}
	}

	dir := runAllOne(t, s, 10, true)
	expectClose(t, "directed mean_degree", dir.Deg[0].MeanDegree, 2) // 2·3 edges / 3 nodes
	expectClose(t, "directed max_degree", dir.Deg[0].MaxDegree, 3)   // node 1: out 2, in 1
	// Underlying undirected graph is the path 0–1–2 either way.
	expectClose(t, "directed transitivity", dir.Clu[0].Transitivity, 0)
	expectClose(t, "directed mean_components", dir.Com[0].MeanComponents, 1)
	expectClose(t, "directed giant_fraction", dir.Com[0].GiantFraction, 1)
	expectClose(t, "directed max_coreness", dir.Cor[0].MaxCoreness, 1)
	expectClose(t, "directed mean_coreness", dir.Cor[0].MeanCoreness, 1)
	// Three distinct ordered pairs, one contact each.
	expectClose(t, "directed mean_weight", dir.Wgt[0].MeanWeight, 1)
	expectClose(t, "directed weight_entropy", dir.Wgt[0].WeightEntropy, 1)

	und := runAllOne(t, s, 10, false)
	expectClose(t, "undirected mean_degree", und.Deg[0].MeanDegree, 4.0/3) // 2 edges
	expectClose(t, "undirected max_degree", und.Deg[0].MaxDegree, 2)
	expectClose(t, "undirected mean_weight", und.Wgt[0].MeanWeight, 1.5) // 3 contacts / 2 edges
	expectClose(t, "undirected max_weight", und.Wgt[0].MaxWeight, 2)
	expectClose(t, "undirected weight_entropy", und.Wgt[0].WeightEntropy,
		-(2.0/3*math.Log(2.0/3)+1.0/3*math.Log(1.0/3))/math.Log(2))
	if und.Wgt[0].TotalContacts != 3 {
		t.Errorf("undirected total_contacts = %d, want 3", und.Wgt[0].TotalContacts)
	}
}

// TestEmptyWindows pins the empty-window conventions: with ∆ slicing
// the span so some windows are empty, every per-window mean counts the
// empty windows as zero except the giant fraction, which counts 1/N
// (an empty snapshot's largest "component" is a single node — the
// series.Stats convention).
func TestEmptyWindows(t *testing.T) {
	s := linkstream.New()
	s.EnsureNodes(4)
	// Events at t = 0 and t = 99; ∆ = 10 gives 10 windows, 8 empty.
	for _, e := range [][3]int64{{0, 1, 0}, {2, 3, 99}} {
		if err := s.AddID(int32(e[0]), int32(e[1]), e[2]); err != nil {
			t.Fatalf("AddID: %v", err)
		}
	}
	r := runAllOne(t, s, 10, false)
	expectClose(t, "mean_degree", r.Deg[0].MeanDegree, 2*(2.0/4)/10)
	expectClose(t, "max_degree", r.Deg[0].MaxDegree, 2.0/10)
	expectClose(t, "mean_components", r.Com[0].MeanComponents, 2.0/10)
	expectClose(t, "giant_fraction", r.Com[0].GiantFraction, (2.0/4+2.0/4+8.0/4)/10)
	expectClose(t, "mean_weight", r.Wgt[0].MeanWeight, 2.0/10)
	if r.Wgt[0].TotalContacts != 2 {
		t.Errorf("total_contacts = %d, want 2", r.Wgt[0].TotalContacts)
	}
	// The references agree on the conventions.
	ref := references(t, s, []int64{10}, false)
	compareToReference(t, r, ref)
}
