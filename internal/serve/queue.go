package serve

// The job queue: every submitted PlanSpec becomes a Job backed by a
// run — one engine execution of the spec's plan. Runs dedup two ways,
// mirroring what RunWindowed already does within one engine pass:
// a submit whose result key matches a completed run is served from the
// result cache without touching the engine, and one whose key matches
// an in-flight run coalesces onto it — N coinciding submits cost
// exactly one plan.Run however they interleave (the randomized
// concurrency tests pin this under -race).
//
// Lifecycle and cancellation reuse the plan layer's abort paths: every
// run executes under its own context; detached submits pin the run to
// completion, while attached submits hold leases bound to their
// caller's context — when the last lease of an unpinned run is
// released (every interested client disconnected), the run's context
// is cancelled and the engine unwinds through the PR-5 paths: pooled
// buffers recycled, worker pools joined, arenas balanced.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"path"
	"strings"
	"sync"
	"time"

	"repro"
)

// Queue errors. ErrQueueFull and ErrTenantQueueFull map to 429 at the
// HTTP layer; ErrStreamRef and validation errors to 4xx.
var (
	// ErrQueueFull is returned when admitting one more run would exceed
	// QueueConfig.MaxJobs.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("serve: queue closed")
	// ErrStreamRef is wrapped around stream-reference rejections:
	// escaping paths, missing files, refs against a root-less queue.
	ErrStreamRef = errors.New("serve: bad stream ref")
	// ErrStreamChanged is wrapped around fingerprint mismatches: the
	// ref's hash no longer matches the file (409 at the HTTP layer).
	ErrStreamChanged = errors.New("serve: stream changed")
)

// QueueConfig shapes a queue's budgets and defaults.
type QueueConfig struct {
	// MaxJobs bounds the runs admitted and not yet finished (queued
	// plus executing) across all tenants; <= 0 selects 64. Submits past
	// the bound fail with ErrQueueFull instead of queueing unboundedly.
	MaxJobs int
	// TenantBudget bounds how many runs of one tenant execute
	// concurrently; <= 0 selects 2. Runs past the budget wait their
	// turn in submission order without blocking other tenants.
	TenantBudget int
	// CacheEntries bounds the completed results kept for cache hits;
	// <= 0 selects 128. Eviction is oldest-completion-first.
	CacheEntries int
	// StreamRoot is the directory spec stream refs resolve under; refs
	// are rejected when it is empty. Paths are cleaned and confined —
	// absolute paths and ".." escapes fail with ErrStreamRef.
	StreamRoot string
	// DefaultWorkers, DefaultMaxInFlight and DefaultLaneWidth fill the
	// execution hints of specs that leave them 0 — the server
	// operator's engine budgets. They never affect results, only how
	// fast and how large a run executes.
	DefaultWorkers     int
	DefaultMaxInFlight int
	DefaultLaneWidth   int
}

func (c QueueConfig) maxJobs() int {
	if c.MaxJobs > 0 {
		return c.MaxJobs
	}
	return 64
}

func (c QueueConfig) tenantBudget() int {
	if c.TenantBudget > 0 {
		return c.TenantBudget
	}
	return 2
}

func (c QueueConfig) cacheEntries() int {
	if c.CacheEntries > 0 {
		return c.CacheEntries
	}
	return 128
}

// JobState is the lifecycle position of a job.
type JobState string

const (
	// StateQueued: admitted, waiting for its tenant's budget.
	StateQueued JobState = "queued"
	// StateRunning: the engine is executing the run.
	StateRunning JobState = "running"
	// StateDone: finished successfully; the result is available.
	StateDone JobState = "done"
	// StateFailed: the run returned an error.
	StateFailed JobState = "failed"
	// StateCanceled: the run's context was cancelled before it could
	// finish — explicitly or because every attached client went away.
	StateCanceled JobState = "canceled"
)

// QueueStats counts a queue's lifetime activity. RunCount is the
// number of engine executions actually started — the number every
// dedup assertion keys on: Submitted - CacheHits - Coalesced bounds
// it from above.
type QueueStats struct {
	Submitted int64 `json:"submitted"`
	// CacheHits served a completed result without any run.
	CacheHits int64 `json:"cache_hits"`
	// Coalesced joined an in-flight run of the same result key.
	Coalesced int64 `json:"coalesced"`
	// Rejected counts submits refused at admission (queue full).
	Rejected int64 `json:"rejected"`
	// RunCount counts engine executions started (plan.Run invocations).
	RunCount int64 `json:"run_count"`
	// RunsDone / RunsFailed / RunsCanceled partition finished runs.
	RunsDone     int64 `json:"runs_done"`
	RunsFailed   int64 `json:"runs_failed"`
	RunsCanceled int64 `json:"runs_canceled"`
}

// QueueGauges is the queue's instantaneous state — the health-check
// counters of /v1/healthz and the "gauges" block of /v1/stats, as
// opposed to QueueStats' lifetime counters.
type QueueGauges struct {
	// Admitted counts unfinished runs (queued plus running).
	Admitted int `json:"admitted"`
	// Queued and Running partition the admitted runs by state.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// ActiveLeases sums the leases attached clients currently hold.
	ActiveLeases int `json:"active_leases"`
	// CachedResults counts retained completed results.
	CachedResults int `json:"cached_results"`
}

// Gauges snapshots the queue's instantaneous depth. Per-run state is
// read after the queue lock is dropped, so a run finishing mid-snapshot
// can skew a gauge by one — fine for health checks, which is all this
// is for.
func (q *Queue) Gauges() QueueGauges {
	q.mu.Lock()
	runs := make([]*run, 0, len(q.inflight))
	for _, r := range q.inflight {
		runs = append(runs, r)
	}
	g := QueueGauges{Admitted: q.admitted, CachedResults: len(q.cache)}
	q.mu.Unlock()

	for _, r := range runs {
		r.mu.Lock()
		switch r.state {
		case StateQueued:
			g.Queued++
		case StateRunning:
			g.Running++
		}
		g.ActiveLeases += r.leases
		r.mu.Unlock()
	}
	return g
}

// run is one engine execution: the shared backing of every job that
// coalesced onto the same result key.
type run struct {
	key    string
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    JobState
	leases   int
	pinned   bool // a detached submit rode this run: never auto-cancel
	events   []repro.ProgressEvent
	notify   chan struct{} // closed and replaced on every append
	done     chan struct{} // closed when the run finishes
	report   *repro.Report
	err      error
	runStats repro.EngineStats
}

func newRun(base context.Context, key string) *run {
	ctx, cancel := context.WithCancel(base)
	return &run{
		key:    key,
		ctx:    ctx,
		cancel: cancel,
		state:  StateQueued,
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// broadcastLocked wakes every subscriber; callers hold r.mu.
func (r *run) broadcastLocked() {
	close(r.notify)
	r.notify = make(chan struct{})
}

func (r *run) appendEvent(ev repro.ProgressEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.broadcastLocked()
	r.mu.Unlock()
}

// acquire takes a lease keeping an attached run alive.
func (r *run) acquire() {
	r.mu.Lock()
	r.leases++
	r.mu.Unlock()
}

// release drops one lease; the last release of an unpinned, unfinished
// run cancels it — every interested client is gone.
func (r *run) release() {
	r.mu.Lock()
	r.leases--
	cancel := r.leases == 0 && !r.pinned && r.state != StateDone && r.state != StateFailed && r.state != StateCanceled
	r.mu.Unlock()
	if cancel {
		r.cancel()
	}
}

// pin marks the run as owned by at least one detached submit: it runs
// to completion regardless of leases.
func (r *run) pin() {
	r.mu.Lock()
	r.pinned = true
	r.mu.Unlock()
}

// Job is one submit's view of a run. Multiple jobs may share one run
// (coalescing); a cache-hit job has a completed synthetic run.
type Job struct {
	// ID is the job's handle, unique per queue.
	ID string `json:"id"`
	// Tenant is the submitting tenant.
	Tenant string `json:"tenant"`
	// Key is the result key the job deduped under (hex SHA-256; see
	// SpecKey).
	Key string `json:"key"`
	// CacheHit and Coalesced record how the submit was served.
	CacheHit  bool `json:"cache_hit"`
	Coalesced bool `json:"coalesced"`
	// Created is the submit time.
	Created time.Time `json:"created"`

	run *run
}

// State returns the job's lifecycle position.
func (j *Job) State() JobState {
	j.run.mu.Lock()
	defer j.run.mu.Unlock()
	return j.run.state
}

// Done returns a channel closed when the job's run finishes (any
// terminal state).
func (j *Job) Done() <-chan struct{} { return j.run.done }

// Err returns the run's terminal error (nil while unfinished or on
// success).
func (j *Job) Err() error {
	j.run.mu.Lock()
	defer j.run.mu.Unlock()
	return j.run.err
}

// Report returns the run's result and whether it is available yet.
func (j *Job) Report() (*repro.Report, bool) {
	j.run.mu.Lock()
	defer j.run.mu.Unlock()
	return j.run.report, j.run.report != nil
}

// EngineStats returns the run's engine instrumentation (the zero
// stats until the run finishes; cached results report the stats of
// the run that produced them).
func (j *Job) EngineStats() repro.EngineStats {
	j.run.mu.Lock()
	defer j.run.mu.Unlock()
	return j.run.runStats
}

// Progress returns the run's buffered progress events from index from
// on, the channel to wait on for more, and whether the run is
// finished. The returned slice is never written again — subscribers
// may keep it.
func (j *Job) Progress(from int) (evs []repro.ProgressEvent, more <-chan struct{}, finished bool) {
	r := j.run
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < len(r.events) {
		evs = r.events[from:len(r.events):len(r.events)]
	}
	terminal := r.state == StateDone || r.state == StateFailed || r.state == StateCanceled
	return evs, r.notify, terminal
}

// Acquire takes a lease on the job's run, keeping an attached run
// alive while a client watches it; the returned release must be called
// exactly once. Leases are no-ops on pinned (detached) runs.
func (j *Job) Acquire() (release func()) {
	j.run.acquire()
	var once sync.Once
	return func() { once.Do(j.run.release) }
}

// Cancel aborts the job's run explicitly, leases notwithstanding.
func (j *Job) Cancel() { j.run.cancel() }

// Wait blocks until the run finishes or ctx is done, and returns the
// result. Waiting holds a lease, so an attached run does not get
// cancelled out from under its waiter.
func (j *Job) Wait(ctx context.Context) (*repro.Report, error) {
	release := j.Acquire()
	defer release()
	select {
	case <-j.run.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.run.mu.Lock()
	defer j.run.mu.Unlock()
	if j.run.err != nil {
		return nil, j.run.err
	}
	return j.run.report, nil
}

// cachedResult is one completed run retained for cache hits.
type cachedResult struct {
	key    string
	report *repro.Report
	stats  repro.EngineStats
}

// SubmitOptions shapes one submit.
type SubmitOptions struct {
	// Tenant attributes the job to a concurrency budget; empty means
	// "default".
	Tenant string
	// Attached ties the run's lifetime to interest: the submit holds a
	// lease bound to ctx, and when the last lease goes (client
	// disconnected, no coalesced watcher left) the run is cancelled.
	// Detached (the default) pins the run to completion and caches its
	// result whether or not anyone is still watching.
	Attached bool
}

// Queue admits, dedups, schedules and caches analysis runs.
type Queue struct {
	cfg QueueConfig

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	inflight map[string]*run          // result key → admitted, unfinished run
	cache    map[string]*cachedResult // result key → completed result
	cacheAge []string                 // completion order, for eviction
	tenants  map[string]chan struct{} // tenant → budget semaphore
	admitted int                      // unfinished runs, all tenants
	stats    QueueStats
	seq      uint64
}

// NewQueue builds an empty queue.
func NewQueue(cfg QueueConfig) *Queue {
	ctx, cancel := context.WithCancel(context.Background())
	return &Queue{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*run),
		cache:      make(map[string]*cachedResult),
		tenants:    make(map[string]chan struct{}),
	}
}

// Close cancels every unfinished run and waits for their goroutines to
// unwind through the engine's abort paths.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.baseCancel()
	q.wg.Wait()
}

// Stats returns a snapshot of the queue's lifetime counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Job looks a job up by ID.
func (q *Queue) Job(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// resolveStream resolves the spec's stream identity for the result
// key, rewriting a stream ref's path to its confined location under
// StreamRoot. It returns the spec to execute (a copy when rewritten)
// and the stream identity string.
func (q *Queue) resolveStream(spec *repro.PlanSpec) (*repro.PlanSpec, string, error) {
	switch {
	case spec.Stream != nil && len(spec.Inline) > 0:
		return nil, "", fmt.Errorf("%w: stream ref and inline events are mutually exclusive", ErrStreamRef)
	case spec.Stream == nil && len(spec.Inline) == 0:
		return nil, "", fmt.Errorf("%w: no stream: set stream or inline", ErrStreamRef)
	case spec.Stream == nil:
		return spec, InlineHash(spec.Inline), nil
	}
	if q.cfg.StreamRoot == "" {
		return nil, "", fmt.Errorf("%w: this queue serves no stream root; submit inline events", ErrStreamRef)
	}
	p := spec.Stream.Path
	if p == "" {
		return nil, "", fmt.Errorf("%w: empty path", ErrStreamRef)
	}
	clean := path.Clean("/" + p) // forces the ref inside the root
	if clean == "/" {
		return nil, "", fmt.Errorf("%w: path %q resolves to the stream root itself", ErrStreamRef, p)
	}
	resolved := q.cfg.StreamRoot + clean
	out := *spec
	ref := *spec.Stream
	ref.Path = resolved
	out.Stream = &ref
	return &out, "", nil // identity filled after the plan opens the file
}

// buildPlan constructs the run's plan from the resolved spec, applying
// the queue's default execution hints and verifying the stream ref's
// fingerprint against the opened file. It returns the plan and the
// stream identity for the result key.
func (q *Queue) buildPlan(spec *repro.PlanSpec, streamID string, progress func(repro.ProgressEvent)) (*repro.Plan, string, error) {
	exec := *spec
	if exec.Workers == 0 {
		exec.Workers = q.cfg.DefaultWorkers
	}
	if exec.MaxInFlight == 0 {
		exec.MaxInFlight = q.cfg.DefaultMaxInFlight
	}
	if exec.LaneWidth == 0 {
		exec.LaneWidth = q.cfg.DefaultLaneWidth
	}
	var extra []repro.Option
	if progress != nil {
		extra = append(extra, repro.WithProgress(progress))
	}
	plan, err := exec.NewPlan(extra...)
	if err != nil {
		return nil, "", err
	}
	if spec.Stream == nil {
		return plan, streamID, nil
	}
	if ref, ok := plan.StreamRef(); ok {
		if spec.Stream.Hash != "" && spec.Stream.Hash != ref.Hash {
			plan.Close()
			return nil, "", fmt.Errorf("%w: fingerprint mismatch for %q: ref has %.12s…, file has %.12s… (stream changed since the spec was built)",
				ErrStreamChanged, spec.Stream.Path, spec.Stream.Hash, ref.Hash)
		}
		return plan, "columnar:" + ref.Hash, nil
	}
	// Text/LSB files have no cheap fingerprint; their identity is the
	// resolved path. A ref hash against such a file cannot be honoured.
	if spec.Stream.Hash != "" {
		plan.Close()
		return nil, "", fmt.Errorf("%w: %q is not a columnar file; fingerprinted refs need one (run tsconvert)", ErrStreamRef, spec.Stream.Path)
	}
	return plan, "path:" + spec.Stream.Path, nil
}

// Submit admits one spec: served from cache, coalesced onto a
// coinciding in-flight run, or scheduled as a new run under the
// tenant's budget. The spec is validated synchronously — a job is
// returned only for specs that build a valid plan against an existing,
// fingerprint-matching stream.
func (q *Queue) Submit(ctx context.Context, spec *repro.PlanSpec, opts SubmitOptions) (*Job, error) {
	tenant := opts.Tenant
	if tenant == "" {
		tenant = "default"
	}
	resolved, streamID, err := q.resolveStream(spec)
	if err != nil {
		return nil, err
	}

	// Build the plan before admission: submit-time validation, and for
	// file-backed specs the open is what yields the authoritative
	// stream fingerprint. The progress hook routes into whichever run
	// the job ends up with, so it binds after dedup resolution.
	var runRef struct {
		mu sync.Mutex
		r  *run
	}
	plan, streamID, err := q.buildPlan(resolved, streamID, func(ev repro.ProgressEvent) {
		runRef.mu.Lock()
		r := runRef.r
		runRef.mu.Unlock()
		if r != nil {
			r.appendEvent(ev)
		}
	})
	if err != nil {
		return nil, err
	}
	key, err := SpecKey(spec, streamID)
	if err != nil {
		plan.Close()
		return nil, err
	}

	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		plan.Close()
		return nil, ErrClosed
	}
	q.stats.Submitted++

	job := &Job{
		ID:      q.newIDLocked(),
		Tenant:  tenant,
		Key:     key,
		Created: time.Now(),
	}

	// Cache hit: a synthetic, already-done run carries the result.
	if res, ok := q.cache[key]; ok {
		q.stats.CacheHits++
		r := newRun(q.baseCtx, key)
		r.state = StateDone
		r.report = res.report
		r.runStats = res.stats
		close(r.done)
		r.cancel()
		job.CacheHit = true
		job.run = r
		q.jobs[job.ID] = job
		q.mu.Unlock()
		plan.Close()
		return job, nil
	}

	// Coalesce onto a coinciding in-flight run.
	if r, ok := q.inflight[key]; ok {
		q.stats.Coalesced++
		job.Coalesced = true
		job.run = r
		q.jobs[job.ID] = job
		if opts.Attached {
			r.acquire()
			q.watchLease(ctx, r)
		} else {
			r.pin()
		}
		q.mu.Unlock()
		plan.Close()
		return job, nil
	}

	// New run: admission control, then schedule.
	if q.admitted >= q.cfg.maxJobs() {
		q.stats.Rejected++
		q.mu.Unlock()
		plan.Close()
		return nil, fmt.Errorf("%w: %d runs admitted (max %d)", ErrQueueFull, q.admitted, q.cfg.maxJobs())
	}
	r := newRun(q.baseCtx, key)
	runRef.mu.Lock()
	runRef.r = r
	runRef.mu.Unlock()
	if opts.Attached {
		r.acquire()
		q.watchLease(ctx, r)
	} else {
		r.pin()
	}
	job.run = r
	q.jobs[job.ID] = job
	q.inflight[key] = r
	q.admitted++
	sem := q.tenants[tenant]
	if sem == nil {
		sem = make(chan struct{}, q.cfg.tenantBudget())
		q.tenants[tenant] = sem
	}
	q.mu.Unlock()

	q.wg.Add(1)
	go q.execute(r, plan, sem)
	return job, nil
}

// watchLease releases one lease of r when ctx ends, unless the run
// finishes first. Callers hold the lease being watched.
func (q *Queue) watchLease(ctx context.Context, r *run) {
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		select {
		case <-ctx.Done():
			r.release()
		case <-r.done:
			// Run finished; the lease no longer matters. Still release
			// so lease accounting stays balanced.
			r.release()
		}
	}()
}

// execute runs one admitted plan under its tenant's budget and
// publishes the outcome.
func (q *Queue) execute(r *run, plan *repro.Plan, sem chan struct{}) {
	defer q.wg.Done()
	defer plan.Close()

	select {
	case sem <- struct{}{}:
		defer func() { <-sem }()
	case <-r.ctx.Done():
		q.finish(r, nil, r.ctx.Err())
		return
	}

	r.mu.Lock()
	r.state = StateRunning
	r.broadcastLocked()
	r.mu.Unlock()
	q.mu.Lock()
	q.stats.RunCount++
	q.mu.Unlock()

	rep, err := plan.Run(r.ctx)
	q.finish(r, rep, err)
}

// finish publishes a run's terminal state, retires it from the
// in-flight index and caches successful results.
func (q *Queue) finish(r *run, rep *repro.Report, err error) {
	r.mu.Lock()
	switch {
	case err == nil:
		r.state = StateDone
		r.report = rep
		r.runStats = rep.EngineStats()
	case errors.Is(err, context.Canceled):
		r.state = StateCanceled
		r.err = err
	default:
		r.state = StateFailed
		r.err = err
	}
	r.broadcastLocked()
	close(r.done)
	r.mu.Unlock()
	r.cancel()

	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.inflight, r.key)
	q.admitted--
	switch r.state {
	case StateDone:
		q.stats.RunsDone++
		if _, dup := q.cache[r.key]; !dup {
			q.cache[r.key] = &cachedResult{key: r.key, report: r.report, stats: r.runStats}
			q.cacheAge = append(q.cacheAge, r.key)
			for len(q.cache) > q.cfg.cacheEntries() {
				oldest := q.cacheAge[0]
				q.cacheAge = q.cacheAge[1:]
				delete(q.cache, oldest)
			}
		}
	case StateCanceled:
		q.stats.RunsCanceled++
	default:
		q.stats.RunsFailed++
	}
}

// newIDLocked mints a job ID: random hex with a sequence fallback so
// IDs stay unique even without entropy.
func (q *Queue) newIDLocked() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		id := hex.EncodeToString(b[:])
		if _, taken := q.jobs[id]; !taken {
			return id
		}
	}
	q.seq++
	return fmt.Sprintf("job-%d", q.seq)
}

// TenantOf normalises a tenant header value.
func TenantOf(raw string) string {
	t := strings.TrimSpace(raw)
	if t == "" {
		return "default"
	}
	return t
}
