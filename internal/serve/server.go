package serve

// The HTTP surface over the queue. Five endpoints under /v1:
//
//	POST   /v1/jobs             submit a versioned plan-spec envelope
//	GET    /v1/jobs/{id}        job status (state, dedup flags, stats)
//	GET    /v1/jobs/{id}/result the run's report, versioned envelope
//	GET    /v1/jobs/{id}/events SSE progress stream (replay, then live)
//	DELETE /v1/jobs/{id}        cancel the job's run
//	GET    /v1/stats            queue lifetime counters
//	GET    /v1/healthz          liveness
//
// Submits are detached by default: a 202 with the job's status, the
// run pinned to completion, result fetched later. ?wait=1 submits
// attached: the request holds the run's lease and blocks until the
// report (200) or failure — and if every attached client disconnects
// before the run finishes, its context is cancelled and the engine
// unwinds. Tenancy rides the X-Tenant header; each tenant gets the
// queue's per-tenant concurrency budget.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// MaxSpecBytes bounds a submit body; larger requests fail with 413.
// Inline streams meant to exceed this belong in columnar files.
const MaxSpecBytes = 16 << 20

// JobStatus is the status document of GET /v1/jobs/{id} and the body
// of a 202 submit response.
type JobStatus struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	Key       string   `json:"key"`
	State     JobState `json:"state"`
	CacheHit  bool     `json:"cache_hit"`
	Coalesced bool     `json:"coalesced"`
	Error     string   `json:"error,omitempty"`
	// Stats is the run's engine instrumentation, present once done.
	Stats *statusStats `json:"stats,omitempty"`
}

// statusStats is the instrumentation slice of a job status — the
// per-run numbers that deliberately do not travel inside the report.
type statusStats struct {
	Passes       int64 `json:"passes"`
	Builds       int64 `json:"builds"`
	Dedups       int64 `json:"dedups"`
	StreamBuilds int64 `json:"stream_builds"`
	Periods      int64 `json:"periods"`
	MaxResident  int64 `json:"max_resident"`
}

// errorBody is every non-2xx JSON body: {"error": "..."}.
type errorBody struct {
	Error string `json:"error"`
}

// Server is the HTTP handler over a queue.
type Server struct {
	queue *Queue
	mux   *http.ServeMux
	// MaxBody bounds request bodies; 0 selects MaxSpecBytes. Tests use
	// a small bound to pin the 413 path without multi-megabyte bodies.
	MaxBody int64
}

// NewServer builds the handler; the queue's lifetime stays the
// caller's (Close the queue after the HTTP server shuts down).
func NewServer(q *Queue) *Server {
	s := &Server{queue: q, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/shards", s.handleShard)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s
}

func (s *Server) maxBody() int64 {
	if s.MaxBody > 0 {
		return s.MaxBody
	}
	return MaxSpecBytes
}

// readBody reads a bounded request body, mapping oversize to 413.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	limit := s.maxBody()
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	if int64(len(body)) > limit {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", limit))
		return nil, false
	}
	return body, true
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	spec, err := DecodePlan(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	attached := false
	if v := r.URL.Query().Get("wait"); v != "" {
		attached, err = strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("wait: %w", err))
			return
		}
	}
	job, err := s.queue.Submit(r.Context(), spec, SubmitOptions{
		Tenant:   TenantOf(r.Header.Get("X-Tenant")),
		Attached: attached,
	})
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}

	if !attached {
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, statusOf(job))
		return
	}

	// Attached: hold the request (and so the run's lease) open until
	// the report. A disconnect cancels the lease via r.Context().
	rep, err := job.Wait(r.Context())
	if err != nil {
		writeError(w, waitStatus(err), fmt.Errorf("job %s: %w", job.ID, err))
		return
	}
	data, err := EncodeReport(rep)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Job-ID", job.ID)
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleShard is the worker half of distributed execution: one shard
// envelope in, its partial-report envelope out, synchronously. Shards
// ride the ordinary queue — admission control, tenant budgets, result
// cache and coalescing all apply — as attached submits, so a
// coordinator disconnecting (timeout, retry elsewhere) cancels the
// shard's run instead of leaving it burning. A stream ref whose pinned
// hash no longer matches the worker's file fails with 409, keeping a
// stale worker out of the fold.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	sh, err := DecodeShard(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.queue.Submit(r.Context(), sh.Spec, SubmitOptions{
		Tenant:   TenantOf(r.Header.Get("X-Tenant")),
		Attached: true,
	})
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	rep, err := job.Wait(r.Context())
	if err != nil {
		writeError(w, waitStatus(err), fmt.Errorf("shard lane %d (job %s): %w", sh.Lane, job.ID, err))
		return
	}
	data, err := EncodePartial(&Partial{Lane: sh.Lane, Report: rep})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Job-ID", job.ID)
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, statusOf(job))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	rep, done := job.Report()
	if !done {
		st := job.State()
		if st == StateFailed || st == StateCanceled {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s %s: %w", job.ID, st, job.Err()))
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("job %s still %s", job.ID, st))
		return
	}
	data, err := EncodeReport(rep)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleEvents streams the job's progress as SSE: every buffered event
// replays first, then live events as the engine emits them, then one
// terminal "done" event carrying the job's final status. Watching
// holds a lease, so an attached run stays alive while anyone streams
// its progress.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return
	}
	release := job.Acquire()
	defer release()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	next := 0
	for {
		evs, more, finished := job.Progress(next)
		for _, ev := range evs {
			data, err := EncodeProgress(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
		}
		next += len(evs)
		if len(evs) > 0 {
			fl.Flush()
		}
		if finished {
			final, _ := json.Marshal(statusOf(job))
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", final)
			fl.Flush()
			return
		}
		select {
		case <-more:
		case <-job.Done():
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, statusOf(job))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		QueueStats
		Gauges QueueGauges `json:"gauges"`
	}{s.queue.Stats(), s.queue.Gauges()})
}

// handleHealthz is the liveness probe: always 200 while the process
// serves, with the queue's instantaneous depth for monitors that want
// more than a pulse.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string      `json:"status"`
		Gauges QueueGauges `json:"gauges"`
	}{"ok", s.queue.Gauges()})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.queue.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return nil, false
	}
	return job, true
}

func statusOf(job *Job) JobStatus {
	st := JobStatus{
		ID:        job.ID,
		Tenant:    job.Tenant,
		Key:       job.Key,
		State:     job.State(),
		CacheHit:  job.CacheHit,
		Coalesced: job.Coalesced,
	}
	if err := job.Err(); err != nil {
		st.Error = err.Error()
	}
	if st.State == StateDone {
		es := job.EngineStats()
		st.Stats = &statusStats{
			Passes:       es.Passes,
			Builds:       es.Builds,
			Dedups:       es.Dedups,
			StreamBuilds: es.StreamBuilds,
			Periods:      es.Periods,
			MaxResident:  es.MaxResident,
		}
	}
	return st
}

// submitStatus maps Submit errors onto response codes.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStreamChanged):
		return http.StatusConflict
	default:
		// Bad refs, unknown metrics/selectors, invalid windows — every
		// other submit failure is the client's spec.
		return http.StatusBadRequest
	}
}

// waitStatus maps attached-wait failures onto response codes. 499 is
// nginx's client-closed-request: the client went away mid-run — the
// response is moot (nobody is listening) but keeps logs honest.
func waitStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
