package serve

import (
	"reflect"
	"strings"
	"testing"

	"repro"
)

// fullSpec exercises every PlanSpec field at once.
func fullSpec() *repro.PlanSpec {
	return &repro.PlanSpec{
		Stream: &repro.StreamRef{
			Path:    "campus/rollernet.lsc",
			Hash:    "deadbeef",
			TimeMin: 5,
			TimeMax: 50_000,
			Events:  1234,
		},
		Metrics:         []string{"occupancy", "classic", "loss"},
		Selectors:       []string{"mk-proximity", "shannon-entropy"},
		Directed:        true,
		Grid:            []int64{60, 600, 3600},
		GridPoints:      24,
		MinDelta:        30,
		Refine:          4,
		HistogramBins:   50,
		Windows:         []repro.Window{{Start: 0, End: 20_000}, {Start: 20_000, End: 50_000, Grid: []int64{60}}},
		Adaptive:        &repro.AdaptiveSpec{Bins: 96, MinRunBins: 3, SeparationFactor: 2},
		Workers:         3,
		MaxInFlight:     2,
		LaneWidth:       8,
		Speculate:       true,
		ElongationSpill: 1 << 20,
	}
}

func TestPlanCodecRoundTrip(t *testing.T) {
	for name, spec := range map[string]*repro.PlanSpec{
		"full":   fullSpec(),
		"zero":   {},
		"inline": {Inline: []repro.InlineEvent{{U: "a", V: "b", T: 1}, {U: "b", V: "c", T: 2}}},
	} {
		t.Run(name, func(t *testing.T) {
			data, err := EncodePlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodePlan(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, spec) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, spec)
			}
			// Encoding is deterministic.
			again, err := EncodePlan(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(again) != string(data) {
				t.Fatalf("re-encode differs:\n got %s\nwant %s", again, data)
			}
		})
	}
}

func TestPlanCodecRejectsVersions(t *testing.T) {
	for _, msg := range []string{
		`{"v":2,"plan":{}}`,
		`{"v":0,"plan":{}}`,
		`{"plan":{}}`,
		`{"v":-1,"plan":{}}`,
	} {
		_, err := DecodePlan([]byte(msg))
		if err == nil {
			t.Fatalf("decoded %s without error", msg)
		}
		if !strings.Contains(err.Error(), "v: unsupported codec version") {
			t.Fatalf("version error does not name the field: %v", err)
		}
		if !strings.Contains(err.Error(), "this build speaks 1") {
			t.Fatalf("version error does not say what this build speaks: %v", err)
		}
	}
}

func TestPlanCodecStrictness(t *testing.T) {
	cases := map[string]string{
		"unknown envelope field": `{"v":1,"plan":{},"extra":1}`,
		"unknown spec field":     `{"v":1,"plan":{"gamma_please":9000}}`,
		"missing payload":        `{"v":1}`,
		"wrong payload kind":     `{"v":1,"report":{}}`,
		"trailing garbage":       `{"v":1,"plan":{}}{"v":1}`,
		"truncated":              `{"v":1,"plan":{"metrics":["occ`,
		"not json":               `gamma`,
		"empty":                  ``,
	}
	for name, msg := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodePlan([]byte(msg)); err == nil {
				t.Fatalf("decoded %q without error", msg)
			}
		})
	}
}

func TestProgressCodecRoundTrip(t *testing.T) {
	ev := repro.ProgressEvent{
		Pass:         2,
		Stage:        repro.ProgressPeriod,
		Delta:        3600,
		PeriodsDone:  5,
		PeriodsTotal: 24,
		Builds:       7,
		Dedups:       1,
		StreamBuilds: 2,
	}
	data, err := EncodeProgress(ev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProgress(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != ev {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, ev)
	}
	// Stage travels by name, not ordinal.
	if !strings.Contains(string(data), `"stage":"period"`) {
		t.Fatalf("stage not encoded by name: %s", data)
	}
	if _, err := DecodeProgress([]byte(`{"v":1,"progress":{"stage":"warp-drive"}}`)); err == nil {
		t.Fatal("unknown stage name decoded without error")
	}
}

func TestSpecKeyIgnoresExecutionKnobs(t *testing.T) {
	base := fullSpec()
	key, err := SpecKey(base, "columnar:abc")
	if err != nil {
		t.Fatal(err)
	}
	variant := fullSpec()
	variant.Workers = 11
	variant.MaxInFlight = 7
	variant.LaneWidth = 4
	variant.Speculate = false
	variant.ElongationSpill = 0
	got, err := SpecKey(variant, "columnar:abc")
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Fatal("execution knobs changed the result key; they must not — results are pinned bit-identical across them")
	}
}

func TestSpecKeySensitivity(t *testing.T) {
	base := fullSpec()
	baseKey, err := SpecKey(base, "columnar:abc")
	if err != nil {
		t.Fatal(err)
	}
	mutate := map[string]func(*repro.PlanSpec) string{
		"stream":   func(s *repro.PlanSpec) string { return "columnar:other" },
		"directed": func(s *repro.PlanSpec) string { s.Directed = false; return "columnar:abc" },
		"metrics":  func(s *repro.PlanSpec) string { s.Metrics = []string{"occupancy"}; return "columnar:abc" },
		"selectors": func(s *repro.PlanSpec) string {
			s.Selectors = []string{"shannon-entropy", "mk-proximity"}
			return "columnar:abc"
		},
		"grid":      func(s *repro.PlanSpec) string { s.Grid = []int64{60}; return "columnar:abc" },
		"min delta": func(s *repro.PlanSpec) string { s.MinDelta = 31; return "columnar:abc" },
		"refine":    func(s *repro.PlanSpec) string { s.Refine = 5; return "columnar:abc" },
		"windows":   func(s *repro.PlanSpec) string { s.Windows = s.Windows[:1]; return "columnar:abc" },
		"adaptive":  func(s *repro.PlanSpec) string { s.Adaptive = nil; return "columnar:abc" },
	}
	for name, mut := range mutate {
		s := fullSpec()
		id := mut(s)
		got, err := SpecKey(s, id)
		if err != nil {
			t.Fatal(err)
		}
		if got == baseKey {
			t.Fatalf("mutating %s did not change the result key", name)
		}
	}
}

func TestSpecKeyMetricsCanonical(t *testing.T) {
	a := &repro.PlanSpec{Metrics: []string{"loss", "occupancy", "classic"}}
	b := &repro.PlanSpec{Metrics: []string{"classic", "loss", "occupancy"}}
	ka, err := SpecKey(a, "s")
	if err != nil {
		t.Fatal(err)
	}
	kb, err := SpecKey(b, "s")
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("metric order changed the key; metrics are a set")
	}
	// nil metrics and explicit occupancy coincide (the default set).
	kNil, err := SpecKey(&repro.PlanSpec{}, "s")
	if err != nil {
		t.Fatal(err)
	}
	kOcc, err := SpecKey(&repro.PlanSpec{Metrics: []string{"occupancy"}}, "s")
	if err != nil {
		t.Fatal(err)
	}
	if kNil != kOcc {
		t.Fatal("nil metrics and explicit occupancy produced different keys")
	}
}

func TestInlineHash(t *testing.T) {
	evs := []repro.InlineEvent{{U: "a", V: "b", T: 1}, {U: "b", V: "c", T: 2}}
	h1 := InlineHash(evs)
	h2 := InlineHash([]repro.InlineEvent{{U: "a", V: "b", T: 1}, {U: "b", V: "c", T: 2}})
	if h1 != h2 {
		t.Fatal("identical events hashed differently")
	}
	if h1 == InlineHash(evs[:1]) {
		t.Fatal("prefix hashed the same as the full stream")
	}
	// Names are quoted: ("a b","c") and ("a","b c") must not collide.
	x := InlineHash([]repro.InlineEvent{{U: "a b", V: "c", T: 1}})
	y := InlineHash([]repro.InlineEvent{{U: "a", V: "b c", T: 1}})
	if x == y {
		t.Fatal("ambiguous event encodings collided")
	}
	if !strings.HasPrefix(h1, "inline:") {
		t.Fatalf("inline hash %q lacks its namespace prefix", h1)
	}
}
