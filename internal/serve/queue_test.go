package serve

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/linkstream"
	"repro/internal/sweep"
	"repro/internal/synth"
	"repro/internal/temporal"
)

// inlineWorkload returns a deterministic synthetic stream as inline
// events — the spec payload of most queue tests.
func inlineWorkload(t testing.TB, seed int64) []repro.InlineEvent {
	t.Helper()
	s, err := synth.TimeUniform(synth.TimeUniformConfig{
		Nodes: 12, LinksPerPair: 6, T: 20_000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := make([]repro.InlineEvent, 0, s.NumEvents())
	for _, e := range s.Events() {
		evs = append(evs, repro.InlineEvent{U: s.NodeName(e.U), V: s.NodeName(e.V), T: e.T})
	}
	return evs
}

func smallSpec(t testing.TB, seed int64) *repro.PlanSpec {
	return &repro.PlanSpec{
		Inline:     inlineWorkload(t, seed),
		GridPoints: 6,
	}
}

// waitGoroutines polls the goroutine count back down to the baseline
// captured before the queue ran; a stuck count is a leaked worker,
// lease watcher or SSE pump.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine count stuck above baseline %d:\n%s", baseline, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// assertArenaBalance asserts every pooled buffer handed out since the
// last resets went back: trip lanes and CSR arenas both — the queue's
// cancellation paths must unwind through the engine's recycling.
func assertArenaBalance(t *testing.T, stage string) {
	t.Helper()
	handed, recycled := temporal.TripLaneStats()
	if handed != recycled {
		t.Fatalf("%s: %d trip lanes handed out but %d recycled — pool leak", stage, handed, recycled)
	}
	aHanded, aRecycled, _ := temporal.ArenaStats()
	if aHanded != aRecycled {
		t.Fatalf("%s: %d CSR arenas handed out but %d recycled — arena leak", stage, aHanded, aRecycled)
	}
}

// TestQueueCoincidingSubmits is the dedup pin: N concurrent submits of
// the same result identity — with randomly differing execution knobs,
// which must not split the key — cost exactly one engine run; every
// other submit coalesces or hits the cache, and all N report the same
// result.
func TestQueueCoincidingSubmits(t *testing.T) {
	sweep.ResetBuildStats()
	q := NewQueue(QueueConfig{})
	defer q.Close()

	const n = 8
	rng := rand.New(rand.NewSource(7))
	specs := make([]*repro.PlanSpec, n)
	for i := range specs {
		s := smallSpec(t, 3)
		// Execution knobs must not split the cache key.
		s.Workers = 1 + rng.Intn(3)
		s.LaneWidth = []int{0, 4, 8}[rng.Intn(3)]
		s.MaxInFlight = rng.Intn(3)
		specs[i] = s
	}

	runsBefore := sweep.RunCount()
	var wg sync.WaitGroup
	reports := make([]*repro.Report, n)
	errs := make([]error, n)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := q.Submit(context.Background(), specs[i], SubmitOptions{})
			if err != nil {
				errs[i] = err
				return
			}
			reports[i], errs[i] = job.Wait(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	if got := sweep.RunCount() - runsBefore; got != 1 {
		t.Fatalf("engine ran %d times for %d coinciding submits, want exactly 1", got, n)
	}
	st := q.Stats()
	if st.Submitted != n {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, n)
	}
	if st.RunCount != 1 {
		t.Fatalf("queue RunCount = %d, want 1", st.RunCount)
	}
	if st.CacheHits+st.Coalesced != n-1 {
		t.Fatalf("CacheHits(%d) + Coalesced(%d) = %d, want %d deduped submits",
			st.CacheHits, st.Coalesced, st.CacheHits+st.Coalesced, n-1)
	}

	want, err := serveReportBytes(reports[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		got, err := serveReportBytes(reports[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("submit %d saw a different report than submit 0", i)
		}
	}
}

func serveReportBytes(rep *repro.Report) ([]byte, error) {
	if rep == nil {
		return nil, errors.New("nil report")
	}
	return EncodeReport(rep)
}

// TestQueueCacheHitAfterCompletion pins the second half of the
// acceptance criterion: once a run completed, a coinciding submit is
// served from cache with zero additional engine runs.
func TestQueueCacheHitAfterCompletion(t *testing.T) {
	sweep.ResetBuildStats()
	q := NewQueue(QueueConfig{})
	defer q.Close()

	job1, err := q.Submit(context.Background(), smallSpec(t, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := job1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	runsAfterFirst := sweep.RunCount()

	job2, err := q.Submit(context.Background(), smallSpec(t, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !job2.CacheHit {
		t.Fatal("second coinciding submit was not a cache hit")
	}
	if job2.State() != StateDone {
		t.Fatalf("cache-hit job state = %s, want done", job2.State())
	}
	rep2, err := job2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sweep.RunCount() != runsAfterFirst {
		t.Fatal("cache hit triggered an engine run")
	}
	b1, _ := EncodeReport(rep1)
	b2, _ := EncodeReport(rep2)
	if string(b1) != string(b2) {
		t.Fatal("cached report differs from the original")
	}
	if st := q.Stats(); st.CacheHits != 1 || st.RunCount != 1 {
		t.Fatalf("stats = %+v, want CacheHits 1, RunCount 1", st)
	}
}

// TestQueueAttachedDisconnectCancels pins the disconnect path: an
// attached submit whose client goes away mid-run gets its run
// cancelled, leaks no goroutines and recycles every pooled buffer.
func TestQueueAttachedDisconnectCancels(t *testing.T) {
	temporal.ResetTripLaneStats()
	temporal.ResetArenaStats()
	baseline := runtime.NumGoroutine()

	q := NewQueue(QueueConfig{})
	spec := smallSpec(t, 9)
	spec.Refine = 6
	spec.MaxInFlight = 1
	spec.Workers = 2

	ctx, disconnect := context.WithCancel(context.Background())
	job, err := q.Submit(ctx, spec, SubmitOptions{Attached: true})
	if err != nil {
		t.Fatal(err)
	}
	// Let the run make some progress, then drop the only client.
	deadline := time.Now().Add(5 * time.Second)
	for {
		evs, _, finished := job.Progress(0)
		if len(evs) > 0 {
			break
		}
		if finished || time.Now().After(deadline) {
			t.Fatalf("run finished or timed out before emitting progress (state %s)", job.State())
		}
		time.Sleep(time.Millisecond)
	}
	disconnect()

	select {
	case <-job.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("run did not stop after its only client disconnected (state %s)", job.State())
	}
	if got := job.State(); got != StateCanceled {
		t.Fatalf("state = %s after disconnect, want canceled", got)
	}
	if err := job.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("job error = %v, want context.Canceled", err)
	}

	q.Close()
	waitGoroutines(t, baseline)
	assertArenaBalance(t, "after disconnect")
	if st := q.Stats(); st.RunsCanceled != 1 {
		t.Fatalf("RunsCanceled = %d, want 1", st.RunsCanceled)
	}
}

// TestQueueDetachedSurvivesDisconnect: a detached submit pins its run —
// the submitter's context ending must not cancel it.
func TestQueueDetachedSurvivesDisconnect(t *testing.T) {
	q := NewQueue(QueueConfig{})
	defer q.Close()

	ctx, cancel := context.WithCancel(context.Background())
	job, err := q.Submit(ctx, smallSpec(t, 13), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cancel() // detached: must not matter
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("detached run did not finish")
	}
	if got := job.State(); got != StateDone {
		t.Fatalf("state = %s, want done (err %v)", got, job.Err())
	}
}

// TestQueueRandomizedChurn is the randomized concurrency pin, meant
// for -race: a few result identities, many concurrent submitters, a
// random mix of attached/detached and early disconnects. Whatever the
// interleaving: no goroutine leaks, all pooled buffers recycled, and
// every detached job reaches a terminal state with a report.
func TestQueueRandomizedChurn(t *testing.T) {
	temporal.ResetTripLaneStats()
	temporal.ResetArenaStats()
	baseline := runtime.NumGoroutine()

	q := NewQueue(QueueConfig{TenantBudget: 2})
	seeds := []int64{21, 22, 23}
	const submitters = 24
	rng := rand.New(rand.NewSource(99))
	type plan struct {
		seed       int64
		attached   bool
		disconnect bool
		tenant     string
	}
	plans := make([]plan, submitters)
	for i := range plans {
		plans[i] = plan{
			seed:       seeds[rng.Intn(len(seeds))],
			attached:   rng.Intn(2) == 0,
			disconnect: rng.Intn(3) == 0,
			tenant:     []string{"", "acme", "umbrella"}[rng.Intn(3)],
		}
	}

	var wg sync.WaitGroup
	for i, p := range plans {
		wg.Add(1)
		go func(i int, p plan) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			spec := smallSpec(t, p.seed)
			job, err := q.Submit(ctx, spec, SubmitOptions{Tenant: p.tenant, Attached: p.attached})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if p.disconnect {
				cancel()
				return
			}
			if _, err := job.Wait(ctx); err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("submit %d wait: %v", i, err)
			}
		}(i, p)
	}
	wg.Wait()
	q.Close()

	waitGoroutines(t, baseline)
	assertArenaBalance(t, "after churn")
	st := q.Stats()
	if st.Submitted != submitters {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, submitters)
	}
	if st.RunCount > st.Submitted-st.CacheHits-st.Coalesced {
		t.Fatalf("RunCount %d exceeds deduped submissions (%d - %d - %d)",
			st.RunCount, st.Submitted, st.CacheHits, st.Coalesced)
	}
	if st.RunsDone+st.RunsFailed+st.RunsCanceled != st.RunCount {
		t.Fatalf("terminal states (%d+%d+%d) do not partition RunCount %d",
			st.RunsDone, st.RunsFailed, st.RunsCanceled, st.RunCount)
	}
}

// TestQueueTenantBudget: one tenant's runs execute at most
// TenantBudget at a time, while another tenant still gets slots.
func TestQueueTenantBudget(t *testing.T) {
	q := NewQueue(QueueConfig{TenantBudget: 1})
	defer q.Close()

	// Distinct specs (different grids) so nothing dedups.
	var jobs []*Job
	for i := 0; i < 3; i++ {
		spec := smallSpec(t, 31)
		spec.GridPoints = 5 + i
		job, err := q.Submit(context.Background(), spec, SubmitOptions{Tenant: "acme"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	otherSpec := smallSpec(t, 33)
	other, err := q.Submit(context.Background(), otherSpec, SubmitOptions{Tenant: "umbrella"})
	if err != nil {
		t.Fatal(err)
	}
	for i, job := range append(jobs, other) {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if st := q.Stats(); st.RunCount != 4 {
		t.Fatalf("RunCount = %d, want 4 distinct runs", st.RunCount)
	}
}

// TestQueueAdmissionBound: submits past MaxJobs fail with ErrQueueFull.
func TestQueueAdmissionBound(t *testing.T) {
	q := NewQueue(QueueConfig{MaxJobs: 1, TenantBudget: 1})
	defer q.Close()

	spec := smallSpec(t, 41)
	spec.Refine = 6
	job, err := q.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	over := smallSpec(t, 43)
	if _, err := q.Submit(context.Background(), over, SubmitOptions{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-admission error = %v, want ErrQueueFull", err)
	}
	if st := q.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	// The bound is on unfinished runs: once the first completes, the
	// slot frees.
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(context.Background(), over, SubmitOptions{}); err != nil {
		t.Fatalf("submit after slot freed: %v", err)
	}
}

// TestQueueStreamRootConfinement: refs resolve under StreamRoot only —
// escapes and refs against a root-less queue are rejected, and a ref
// whose fingerprint no longer matches the file is refused with
// ErrStreamChanged.
func TestQueueStreamRootConfinement(t *testing.T) {
	root := t.TempDir()

	// Build a columnar file under the root.
	s, err := synth.TimeUniform(synth.TimeUniformConfig{Nodes: 10, LinksPerPair: 5, T: 10_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lsc := filepath.Join(root, "streams", "a.lsc")
	if err := os.MkdirAll(filepath.Dir(lsc), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(lsc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteColumnar(f, linkstream.ColumnarOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	q := NewQueue(QueueConfig{StreamRoot: root})
	defer q.Close()

	job, err := q.Submit(context.Background(), &repro.PlanSpec{
		Stream:     &repro.StreamRef{Path: "streams/a.lsc"},
		GridPoints: 5,
	}, SubmitOptions{})
	if err != nil {
		t.Fatalf("in-root ref: %v", err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Escapes and absolutes are confined by path cleaning: they either
	// resolve inside the root (and miss) or error — never outside it.
	for _, p := range []string{"../" + filepath.Base(root) + "/streams/a.lsc", "/etc/passwd", "streams/../../escape"} {
		if _, err := q.Submit(context.Background(), &repro.PlanSpec{
			Stream: &repro.StreamRef{Path: p},
		}, SubmitOptions{}); err == nil {
			t.Fatalf("ref %q was accepted", p)
		}
	}

	// A root-less queue serves inline specs only.
	q2 := NewQueue(QueueConfig{})
	defer q2.Close()
	if _, err := q2.Submit(context.Background(), &repro.PlanSpec{
		Stream: &repro.StreamRef{Path: "streams/a.lsc"},
	}, SubmitOptions{}); !errors.Is(err, ErrStreamRef) {
		t.Fatalf("root-less ref error = %v, want ErrStreamRef", err)
	}

	// Fingerprint mismatch: a ref built against different content.
	if _, err := q.Submit(context.Background(), &repro.PlanSpec{
		Stream: &repro.StreamRef{Path: "streams/a.lsc", Hash: "0000000000000000"},
	}, SubmitOptions{}); !errors.Is(err, ErrStreamChanged) {
		t.Fatalf("mismatched fingerprint error = %v, want ErrStreamChanged", err)
	}
}

// TestQueueSubmitAfterClose: Close drains and further submits fail.
func TestQueueSubmitAfterClose(t *testing.T) {
	q := NewQueue(QueueConfig{})
	q.Close()
	if _, err := q.Submit(context.Background(), smallSpec(t, 51), SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestQueueInvalidSpecs: validation happens at submit time, before any
// job exists.
func TestQueueInvalidSpecs(t *testing.T) {
	q := NewQueue(QueueConfig{})
	defer q.Close()
	cases := map[string]*repro.PlanSpec{
		"no stream":        {},
		"both streams":     {Stream: &repro.StreamRef{Path: "x"}, Inline: []repro.InlineEvent{{U: "a", V: "b", T: 1}}},
		"unknown metric":   {Inline: inlineWorkload(t, 3), Metrics: []string{"vibes"}},
		"unknown selector": {Inline: inlineWorkload(t, 3), Selectors: []string{"coin-flip"}},
		"bad lane width":   {Inline: inlineWorkload(t, 3), LaneWidth: 5},
		"self loop":        {Inline: []repro.InlineEvent{{U: "a", V: "a", T: 1}}},
	}
	for name, spec := range cases {
		if _, err := q.Submit(context.Background(), spec, SubmitOptions{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if st := q.Stats(); st.RunCount != 0 || st.Submitted != 0 {
		t.Fatalf("invalid specs reached admission: %+v", st)
	}
}

// TestQueueSnapshotMetrics: the snapshot-metric curves flow through
// the serving path untouched — a served report with snapshot metrics
// is byte-identical to the same plan run in-process, and the curves
// are present in the wire form.
func TestQueueSnapshotMetrics(t *testing.T) {
	q := NewQueue(QueueConfig{})
	defer q.Close()

	spec := &repro.PlanSpec{
		Inline:     inlineWorkload(t, 29),
		Metrics:    []string{"occupancy", "degree", "clustering", "components", "coreness", "weighted"},
		GridPoints: 6,
	}
	job, err := q.Submit(context.Background(), spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	served, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(served.Snapshots()); got != 5 {
		t.Fatalf("served report has %d snapshot curves, want 5", got)
	}

	plan, err := spec.NewPlan()
	if err != nil {
		t.Fatal(err)
	}
	local, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, err := EncodeReport(served)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeReport(local)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("served snapshot-metric report differs from the in-process run")
	}
}
