package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/sweep"
)

// testServer wires a queue into an httptest server and tears both down
// in order (HTTP first, then the queue, mirroring tsserve).
func testServer(t *testing.T, cfg QueueConfig) (*httptest.Server, *Queue) {
	t.Helper()
	q := NewQueue(cfg)
	ts := httptest.NewServer(NewServer(q))
	t.Cleanup(func() {
		ts.Close()
		q.Close()
	})
	return ts, q
}

func submitBody(t *testing.T, spec *repro.PlanSpec) *bytes.Reader {
	t.Helper()
	data, err := EncodePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

func decodeStatus(t *testing.T, r io.Reader) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServerEndToEnd is the acceptance pin: an HTTP-fetched report is
// byte-identical to the same plan run in-process, and a second
// coinciding submit is served from cache with zero additional engine
// runs, asserted via the engine's RunCount.
func TestServerEndToEnd(t *testing.T) {
	sweep.ResetBuildStats()
	ts, q := testServer(t, QueueConfig{})

	spec := smallSpec(t, 61)

	// Submit detached; poll to completion; fetch the result.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	loc := resp.Header.Get("Location")
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location %q does not match job %q", loc, st.ID)
	}

	deadline := time.Now().Add(10 * time.Second)
	for st.State == StateQueued || st.State == StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(ts.URL + loc)
		if err != nil {
			t.Fatal(err)
		}
		st = decodeStatus(t, r.Body)
		r.Body.Close()
	}
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Stats == nil || st.Stats.Builds == 0 {
		t.Fatalf("done status carries no engine stats: %+v", st)
	}

	r, err := http.Get(ts.URL + loc + "/result")
	if err != nil {
		t.Fatal(err)
	}
	httpReport, err := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result: %d: %s", r.StatusCode, httpReport)
	}

	// The same spec run in-process must produce the same bytes.
	plan, err := spec.NewPlan()
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	local, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(httpReport, local) {
		t.Fatalf("HTTP report differs from in-process run:\n http %s\nlocal %s", httpReport, local)
	}

	// Second coinciding submit: cache hit, zero extra engine runs
	// beyond the local comparison run above.
	runsAfter := sweep.RunCount()
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	st2 := decodeStatus(t, resp2.Body)
	resp2.Body.Close()
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("second submit not served from cache: %+v", st2)
	}
	r2, err := http.Get(ts.URL + "/v1/jobs/" + st2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if !bytes.Equal(cached, httpReport) {
		t.Fatal("cached result differs from the original")
	}
	if got := sweep.RunCount(); got != runsAfter {
		t.Fatalf("cache hit ran the engine (RunCount %d → %d)", runsAfter, got)
	}
	if qs := q.Stats(); qs.RunCount != 1 || qs.CacheHits != 1 {
		t.Fatalf("queue stats = %+v, want RunCount 1, CacheHits 1", qs)
	}
}

// TestServerAttachedSubmit: ?wait=1 holds the request and returns the
// report envelope directly.
func TestServerAttachedSubmit(t *testing.T) {
	ts, _ := testServer(t, QueueConfig{})
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", submitBody(t, smallSpec(t, 63)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attached submit: %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Job-ID") == "" {
		t.Fatal("attached response carries no job ID")
	}
	if _, err := DecodeReport(body); err != nil {
		t.Fatalf("attached response is not a report envelope: %v", err)
	}
}

// TestServerSSE: the events endpoint replays buffered progress, then
// streams live events, then closes with a done event carrying the
// final status.
func TestServerSSE(t *testing.T) {
	ts, _ := testServer(t, QueueConfig{})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, smallSpec(t, 65)))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()

	es, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var progress int
	var done *JobStatus
	sc := bufio.NewScanner(es.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				ev, err := DecodeProgress([]byte(data))
				if err != nil {
					t.Fatalf("progress frame: %v", err)
				}
				if ev.Stage.String() == "" {
					t.Fatal("progress frame with no stage")
				}
				progress++
			case "done":
				var final JobStatus
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("done frame: %v", err)
				}
				done = &final
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Fatal("no progress events streamed")
	}
	if done == nil || done.State != StateDone {
		t.Fatalf("stream did not end with a done status: %+v", done)
	}
}

// TestServerCancel: DELETE aborts a running job; its result endpoint
// then reports the conflict.
func TestServerCancel(t *testing.T) {
	ts, _ := testServer(t, QueueConfig{})
	spec := smallSpec(t, 67)
	spec.Refine = 6
	spec.MaxInFlight = 1
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		st = decodeStatus(t, r.Body)
		r.Body.Close()
		if st.State == StateCanceled || st.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A fast run may legitimately win the race and finish; when it was
	// cancelled, the result endpoint must 409.
	if st.State == StateCanceled {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusConflict {
			t.Fatalf("result of cancelled job: %d, want 409", r.StatusCode)
		}
	}
}

// TestServerErrorMapping covers the 4xx surface: malformed envelopes,
// wrong versions, unknown fields, bad specs, unknown jobs, fingerprint
// conflicts and oversized bodies.
func TestServerErrorMapping(t *testing.T) {
	ts, _ := testServer(t, QueueConfig{})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	check := func(resp *http.Response, want int, wantSub string) {
		t.Helper()
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("status %d, want %d (%s)", resp.StatusCode, want, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Fatalf("error body is not {\"error\": ...}: %s", body)
		}
		if wantSub != "" && !strings.Contains(eb.Error, wantSub) {
			t.Fatalf("error %q does not mention %q", eb.Error, wantSub)
		}
	}

	check(post(`not json`), http.StatusBadRequest, "envelope")
	check(post(`{"v":9,"plan":{}}`), http.StatusBadRequest, "unsupported codec version")
	check(post(`{"v":1,"plan":{"surprise":1}}`), http.StatusBadRequest, "surprise")
	check(post(`{"v":1,"plan":{}}`), http.StatusBadRequest, "stream")
	check(post(`{"v":1,"plan":{"inline":[{"u":"a","v":"b","t":1}],"metrics":["vibes"]}}`), http.StatusBadRequest, "vibes")
	check(post(`{"v":1,"plan":{"stream":{"path":"x.lsc"}}}`), http.StatusBadRequest, "stream root")

	r, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	check(r, http.StatusNotFound, "nope")

	// Oversized body.
	big := fmt.Sprintf(`{"v":1,"plan":{"metrics":["%s"]}}`, strings.Repeat("x", MaxSpecBytes))
	check(post(big), http.StatusRequestEntityTooLarge, "")
}

// TestServerTenantHeader: X-Tenant lands on the job and its budget.
func TestServerTenantHeader(t *testing.T) {
	ts, _ := testServer(t, QueueConfig{})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, smallSpec(t, 71)))
	req.Header.Set("X-Tenant", "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if st.Tenant != "acme" {
		t.Fatalf("tenant = %q, want acme", st.Tenant)
	}
}

// TestServerStatsEndpoint: queue counters are served as JSON.
func TestServerStatsEndpoint(t *testing.T) {
	ts, _ := testServer(t, QueueConfig{})
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", submitBody(t, smallSpec(t, 73)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st QueueStats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.RunCount != 1 {
		t.Fatalf("stats = %+v, want one submitted run", st)
	}
}
