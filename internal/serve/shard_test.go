package serve

// Worker-side distributed execution: the shard/partial codec, the
// /v1/shards endpoint, the health endpoint's gauges, and the decode
// edge cases of the envelope codec (truncation, future versions,
// oversize bodies).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func TestShardCodecRoundTrip(t *testing.T) {
	sh := &Shard{Lane: 7, Spec: fullSpec()}
	data, err := EncodeShard(sh)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShard(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sh) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, sh)
	}
	if _, err := DecodeShard([]byte(`{"v":1,"shard":{"lane":1}}`)); err == nil {
		t.Fatal("spec-less shard accepted")
	}
	if _, err := DecodeShard([]byte(`{"v":1,"shard":{"lane":1,"spec":{},"extra":true}}`)); err == nil {
		t.Fatal("unknown shard field accepted")
	}
}

func TestPartialCodecRoundTrip(t *testing.T) {
	spec := smallSpec(t, 77)
	plan, err := spec.NewPlan()
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePartial(&Partial{Lane: 3, Report: rep})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePartial(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lane != 3 {
		t.Fatalf("lane = %d, want 3", got.Lane)
	}
	wantJSON, _ := json.Marshal(rep)
	gotJSON, _ := json.Marshal(got.Report)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("report did not survive the partial envelope:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if _, err := DecodePartial([]byte(`{"v":1,"partial":{"lane":3}}`)); err == nil {
		t.Fatal("report-less partial accepted")
	}
}

// TestCodecDecodeEdgeCases: truncated envelopes, future versions and
// mismatched payloads fail with named errors on every decoder.
func TestCodecDecodeEdgeCases(t *testing.T) {
	whole, err := EncodeShard(&Shard{Lane: 1, Spec: smallSpec(t, 3)})
	if err != nil {
		t.Fatal(err)
	}
	decoders := map[string]func([]byte) error{
		"plan":    func(b []byte) error { _, err := DecodePlan(b); return err },
		"report":  func(b []byte) error { _, err := DecodeReport(b); return err },
		"shard":   func(b []byte) error { _, err := DecodeShard(b); return err },
		"partial": func(b []byte) error { _, err := DecodePartial(b); return err },
	}
	cases := map[string][]byte{
		"empty":              nil,
		"truncated":          whole[:len(whole)/2],
		"trailing garbage":   append(append([]byte{}, whole...), "{}"...),
		"future version":     []byte(`{"v":2,"plan":{},"report":{},"shard":{"lane":0,"spec":{}},"partial":{"lane":0,"report":{}}}`),
		"zero version":       []byte(`{"v":0}`),
		"unknown field":      []byte(`{"v":1,"warp":{}}`),
		"missing payload":    []byte(`{"v":1}`),
		"non-object":         []byte(`42`),
		"wrong payload kind": []byte(`{"v":1,"progress":{}}`),
	}
	for kind, dec := range decoders {
		for name, data := range cases {
			if err := dec(data); err == nil {
				t.Errorf("%s decoder accepted %s input", kind, name)
			}
		}
		// A version error must name the version, not a generic failure.
		if err := dec([]byte(fmt.Sprintf(`{"v":9,"%s":{}}`, kind))); err == nil || !strings.Contains(err.Error(), "version 9") {
			t.Errorf("%s decoder version error = %v, want one naming version 9", kind, err)
		}
	}
}

// TestServerShardEndpoint: a shard submitted over HTTP comes back as a
// partial whose report is byte-identical to running the shard spec
// locally, and rides the ordinary queue (RunCount, cache).
func TestServerShardEndpoint(t *testing.T) {
	ts, q := testServer(t, QueueConfig{})
	spec := smallSpec(t, 91)
	spec.Refine = 0

	plan, err := spec.NewPlan()
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodePartial(&Partial{Lane: 5, Report: rep})
	if err != nil {
		t.Fatal(err)
	}

	body, err := EncodeShard(&Shard{Lane: 5, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		resp, err := http.Post(ts.URL+"/v1/shards", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: partial diverges from local run:\n got %s\nwant %s", round, got, want)
		}
	}
	st := q.Stats()
	if st.RunCount != 1 || st.CacheHits != 1 {
		t.Fatalf("runs = %d, cache hits = %d; the second shard should be a cache hit", st.RunCount, st.CacheHits)
	}

	// Malformed shard bodies are the client's fault.
	resp, err := http.Post(ts.URL+"/v1/shards", "application/json", strings.NewReader(`{"v":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("payload-less shard: status %d: %s", resp.StatusCode, b)
	}
}

// TestServerBodyBound: bodies past the server's bound fail with 413 on
// both submit and shard ingestion (satellite: oversize payload
// rejection).
func TestServerBodyBound(t *testing.T) {
	q := NewQueue(QueueConfig{})
	t.Cleanup(q.Close)
	srv := NewServer(q)
	srv.MaxBody = 256
	ts := newHTTPServer(t, srv)

	big := `{"v":1,"plan":{"inline":[` + strings.Repeat(`{"u":"a","v":"b","t":1},`, 64) + `{"u":"a","v":"b","t":1}]}}`
	if len(big) <= 256 {
		t.Fatal("test body not oversize")
	}
	for _, path := range []string{"/v1/jobs", "/v1/shards"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		if b, _ := readAll(t, resp); resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413: %s", path, resp.StatusCode, b)
		}
	}
}

// TestServerHealthzGauges: the liveness endpoint carries the queue's
// instantaneous depth, and /v1/stats grew a matching gauges block
// without disturbing its lifetime counters.
func TestServerHealthzGauges(t *testing.T) {
	ts, q := testServer(t, QueueConfig{})

	var health struct {
		Status string      `json:"status"`
		Gauges QueueGauges `json:"gauges"`
	}
	getJSON(t, ts.URL+"/v1/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("status = %q", health.Status)
	}
	if g := health.Gauges; g.Admitted != 0 || g.Running != 0 || g.ActiveLeases != 0 || g.CachedResults != 0 {
		t.Fatalf("idle gauges = %+v", g)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, smallSpec(t, 13)))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	job, ok := q.Job(st.ID)
	if !ok {
		t.Fatal("submitted job not found")
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	getJSON(t, ts.URL+"/v1/healthz", &health)
	if health.Gauges.Admitted != 0 || health.Gauges.CachedResults != 1 {
		t.Fatalf("post-run gauges = %+v", health.Gauges)
	}

	var stats struct {
		QueueStats
		Gauges QueueGauges `json:"gauges"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.RunCount != 1 || stats.Gauges.CachedResults != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func newHTTPServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

func readAll(t *testing.T, resp *http.Response) ([]byte, error) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
