package serve

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzPlanCodec throws arbitrary bytes at the plan decoder and pins
// three properties: decoding never panics, whatever decodes re-encodes
// and decodes again to the same spec (round-trip equality), and
// messages carrying any version other than CodecVersion are rejected
// with an error naming the version field. The seed corpus covers the
// valid shapes plus the rejection edges (truncations, mutated
// versions, unknown fields).
func FuzzPlanCodec(f *testing.F) {
	seed := [][]byte{
		[]byte(`{"v":1,"plan":{}}`),
		[]byte(`{"v":1,"plan":{"metrics":["occupancy","loss"],"directed":true}}`),
		[]byte(`{"v":1,"plan":{"stream":{"path":"a.lsc","hash":"ff"},"grid":[60,3600]}}`),
		[]byte(`{"v":1,"plan":{"inline":[{"u":"a","v":"b","t":1}],"workers":3}}`),
		[]byte(`{"v":1,"plan":{"windows":[{"start":0,"end":9}],"adaptive":{"bins":96}}}`),
		[]byte(`{"v":2,"plan":{}}`),
		[]byte(`{"v":1}`),
		[]byte(`{"v":1,"plan":{"nope":1}}`),
		[]byte(`{"v":1,"plan":{}`),
		[]byte(`{"v":1,"plan":{}}garbage`),
		[]byte(``),
		[]byte(`[]`),
		[]byte(`"v"`),
	}
	if spec, err := EncodePlan(fullSpec()); err == nil {
		seed = append(seed, spec)
	}
	for _, s := range seed {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodePlan(data) // must not panic, whatever data is
		if err != nil {
			// Version errors must name the field and the version spoken.
			if strings.Contains(err.Error(), "unsupported codec version") &&
				!strings.Contains(err.Error(), "v: unsupported codec version") {
				t.Fatalf("version rejection does not name the v field: %v", err)
			}
			return
		}
		// Anything accepted must round-trip exactly.
		out, err := EncodePlan(spec)
		if err != nil {
			t.Fatalf("decoded spec failed to encode: %v", err)
		}
		again, err := DecodePlan(out)
		if err != nil {
			t.Fatalf("re-encoded spec failed to decode: %v\nwire: %s", err, out)
		}
		if !reflect.DeepEqual(again, spec) {
			t.Fatalf("round trip mismatch:\nfirst  %+v\nsecond %+v", spec, again)
		}
		// And its cache key must be derivable and stable.
		k1, err := SpecKey(spec, "fuzz")
		if err != nil {
			t.Fatalf("spec key: %v", err)
		}
		k2, err := SpecKey(again, "fuzz")
		if err != nil {
			t.Fatalf("spec key (second): %v", err)
		}
		if k1 != k2 {
			t.Fatal("round-tripped spec derived a different cache key")
		}
	})
}

// FuzzReportCodec pins the same never-panic and round-trip properties
// for report envelopes.
func FuzzReportCodec(f *testing.F) {
	f.Add([]byte(`{"v":1,"report":{"global":{}}}`))
	f.Add([]byte(`{"v":1,"report":{"scale":{"gamma":3600,"score":0.9},"global":{}}}`))
	f.Add([]byte(`{"v":2,"report":{"global":{}}}`))
	f.Add([]byte(`{"v":1,"report":`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return
		}
		out, err := EncodeReport(rep)
		if err != nil {
			t.Fatalf("decoded report failed to encode: %v", err)
		}
		if _, err := DecodeReport(out); err != nil {
			t.Fatalf("re-encoded report failed to decode: %v\nwire: %s", err, out)
		}
	})
}
