// Package serve turns the plan/run lifecycle into
// analysis-as-a-service: a versioned JSON wire codec for plan specs,
// reports and progress events; a bounded job queue with per-tenant
// concurrency budgets and a result cache keyed by the spec's result
// identity (stream hash, windows, candidate grid and the policy knobs
// that change results — never the execution knobs, which the engine
// pins bit-identical); and an HTTP server (cmd/tsserve) exposing
// submit, status, result and SSE progress endpoints over it.
//
// The wire contract: every message is a one-version envelope
// {"v": 1, "<kind>": {...}} whose payload is the root package's wire
// shape (repro.PlanSpec, repro.Report, repro.ProgressEvent). Decoders
// reject unknown versions by name, reject unknown envelope and spec
// fields, and never panic on truncated or mutated input — pinned by
// FuzzPlanCodec.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro"
)

// CodecVersion is the wire version this build speaks. Every encoded
// message carries it; decoding any other version fails.
const CodecVersion = 1

// envelope is the one wire frame of the codec: the version plus
// exactly one payload field.
type envelope struct {
	V        int             `json:"v"`
	Plan     json.RawMessage `json:"plan,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
	Progress json.RawMessage `json:"progress,omitempty"`
	Shard    json.RawMessage `json:"shard,omitempty"`
	Partial  json.RawMessage `json:"partial,omitempty"`
}

// Shard is the wire form of one distributed-execution shard: the lane
// it folds into and the self-contained spec the worker executes. The
// coordinator POSTs it to a worker's /v1/shards; the spec's stream ref
// carries the coordinator-observed header hash, so a worker whose file
// diverged rejects the shard (409) instead of corrupting the fold.
type Shard struct {
	Lane int             `json:"lane"`
	Spec *repro.PlanSpec `json:"spec"`
}

// Partial is a worker's answer to a Shard: the lane echoed back and
// the shard's partial report, ready for lane-order folding.
type Partial struct {
	Lane   int           `json:"lane"`
	Report *repro.Report `json:"report"`
}

// EncodeShard wraps a shard in the versioned envelope.
func EncodeShard(sh *Shard) ([]byte, error) {
	raw, err := json.Marshal(sh)
	if err != nil {
		return nil, fmt.Errorf("serve: shard: %w", err)
	}
	return json.Marshal(envelope{V: CodecVersion, Shard: raw})
}

// DecodeShard decodes a versioned shard message, as strictly as
// DecodePlan decodes specs.
func DecodeShard(data []byte) (*Shard, error) {
	raw, err := decodeEnvelope("shard", data, func(e *envelope) json.RawMessage { return e.Shard })
	if err != nil {
		return nil, err
	}
	sh := &Shard{}
	if err := strictUnmarshal(raw, sh); err != nil {
		return nil, fmt.Errorf("serve: shard: %w", err)
	}
	if sh.Spec == nil {
		return nil, errors.New("serve: shard: missing spec")
	}
	return sh, nil
}

// EncodePartial wraps a partial result in the versioned envelope.
func EncodePartial(p *Partial) ([]byte, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("serve: partial: %w", err)
	}
	return json.Marshal(envelope{V: CodecVersion, Partial: raw})
}

// DecodePartial decodes a versioned partial-result message.
func DecodePartial(data []byte) (*Partial, error) {
	raw, err := decodeEnvelope("partial", data, func(e *envelope) json.RawMessage { return e.Partial })
	if err != nil {
		return nil, err
	}
	p := &Partial{}
	if err := json.Unmarshal(raw, p); err != nil {
		return nil, fmt.Errorf("serve: partial: %w", err)
	}
	if p.Report == nil {
		return nil, errors.New("serve: partial: missing report")
	}
	return p, nil
}

// EncodePlan wraps a plan spec in the versioned envelope.
func EncodePlan(spec *repro.PlanSpec) ([]byte, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("serve: plan: %w", err)
	}
	return json.Marshal(envelope{V: CodecVersion, Plan: raw})
}

// DecodePlan decodes a versioned plan-spec message. Decoding is
// strict: unknown envelope or spec fields, a missing payload and any
// version other than CodecVersion are errors naming the offending
// field.
func DecodePlan(data []byte) (*repro.PlanSpec, error) {
	raw, err := decodeEnvelope("plan", data, func(e *envelope) json.RawMessage { return e.Plan })
	if err != nil {
		return nil, err
	}
	spec := &repro.PlanSpec{}
	if err := strictUnmarshal(raw, spec); err != nil {
		return nil, fmt.Errorf("serve: plan: %w", err)
	}
	return spec, nil
}

// EncodeReport wraps a report in the versioned envelope. The encoding
// is deterministic: byte-identical whenever the report's results are
// identical (engine instrumentation does not travel with results).
func EncodeReport(rep *repro.Report) ([]byte, error) {
	raw, err := json.Marshal(rep)
	if err != nil {
		return nil, fmt.Errorf("serve: report: %w", err)
	}
	return json.Marshal(envelope{V: CodecVersion, Report: raw})
}

// DecodeReport decodes a versioned report message.
func DecodeReport(data []byte) (*repro.Report, error) {
	raw, err := decodeEnvelope("report", data, func(e *envelope) json.RawMessage { return e.Report })
	if err != nil {
		return nil, err
	}
	rep := &repro.Report{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("serve: report: %w", err)
	}
	return rep, nil
}

// EncodeProgress wraps one engine progress event in the versioned
// envelope — the payload of each SSE progress frame.
func EncodeProgress(ev repro.ProgressEvent) ([]byte, error) {
	raw, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("serve: progress: %w", err)
	}
	return json.Marshal(envelope{V: CodecVersion, Progress: raw})
}

// DecodeProgress decodes a versioned progress-event message.
func DecodeProgress(data []byte) (repro.ProgressEvent, error) {
	var ev repro.ProgressEvent
	raw, err := decodeEnvelope("progress", data, func(e *envelope) json.RawMessage { return e.Progress })
	if err != nil {
		return ev, err
	}
	if err := strictUnmarshal(raw, &ev); err != nil {
		return ev, fmt.Errorf("serve: progress: %w", err)
	}
	return ev, nil
}

// decodeEnvelope parses the outer frame, rejects wrong versions and
// returns the payload the pick function selects, erroring when it is
// absent.
func decodeEnvelope(kind string, data []byte, pick func(*envelope) json.RawMessage) (json.RawMessage, error) {
	var env envelope
	if err := strictUnmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("serve: %s: envelope: %w", kind, err)
	}
	if env.V != CodecVersion {
		return nil, fmt.Errorf("serve: %s: v: unsupported codec version %d (this build speaks %d)", kind, env.V, CodecVersion)
	}
	raw := pick(&env)
	if len(raw) == 0 {
		return nil, fmt.Errorf("serve: %s: missing %q payload field", kind, kind)
	}
	return raw, nil
}

// strictUnmarshal is json.Unmarshal with unknown fields rejected and
// trailing garbage refused.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after value")
	}
	return nil
}

// resultKey is the canonical identity of a spec's results: everything
// that changes what the engine computes. Execution knobs — Workers,
// MaxInFlight, LaneWidth, Speculate, ElongationSpill — are absent by
// design: the engine pins results bit-identical across all of them
// (the lane-width, speculation and spill equivalence suites), so two
// submits differing only there share one cache entry. Metrics are
// sorted and defaulted (nil means occupancy); Selectors keep their
// order, because the first selector decides the saturation scale.
type resultKey struct {
	Stream        string              `json:"stream"`
	Directed      bool                `json:"directed"`
	Metrics       []string            `json:"metrics"`
	Selectors     []string            `json:"selectors,omitempty"`
	Grid          []int64             `json:"grid,omitempty"`
	GridPoints    int                 `json:"grid_points,omitempty"`
	MinDelta      int64               `json:"min_delta,omitempty"`
	Refine        int                 `json:"refine,omitempty"`
	HistogramBins int                 `json:"histogram_bins,omitempty"`
	Windows       []repro.Window      `json:"windows,omitempty"`
	WindowsOnly   bool                `json:"windows_only,omitempty"`
	Adaptive      *repro.AdaptiveSpec `json:"adaptive,omitempty"`
}

// SpecKey derives the cache key of a spec given the authoritative
// stream identity (a columnar header hash, an inline-events hash from
// InlineHash, or a resolved path for formats without a cheap
// fingerprint). The key is a hex SHA-256 over the canonical encoding
// of the spec's result identity; see resultKey for what is — and
// deliberately is not — part of it.
func SpecKey(spec *repro.PlanSpec, streamID string) (string, error) {
	metrics := append([]string(nil), spec.Metrics...)
	if len(metrics) == 0 {
		metrics = []string{repro.MetricOccupancy.String()}
	}
	sort.Strings(metrics)
	key := resultKey{
		Stream:        streamID,
		Directed:      spec.Directed,
		Metrics:       metrics,
		Selectors:     spec.Selectors,
		Grid:          spec.Grid,
		GridPoints:    spec.GridPoints,
		MinDelta:      spec.MinDelta,
		Refine:        spec.Refine,
		HistogramBins: spec.HistogramBins,
		Windows:       spec.Windows,
		WindowsOnly:   spec.WindowsOnly,
		Adaptive:      spec.Adaptive,
	}
	raw, err := json.Marshal(key)
	if err != nil {
		return "", fmt.Errorf("serve: spec key: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// InlineHash fingerprints a spec's inline events: the stream identity
// SpecKey uses when the spec carries its stream in-line rather than by
// columnar reference.
func InlineHash(events []repro.InlineEvent) string {
	h := sha256.New()
	for _, e := range events {
		fmt.Fprintf(h, "%q %q %d\n", e.U, e.V, e.T)
	}
	return "inline:" + hex.EncodeToString(h.Sum(nil))
}
