// Package synth generates the synthetic dynamic networks of the paper's
// Section 6 — time-uniform networks and two-mode (high/low activity)
// networks — plus a calibrated message-network generator with circadian
// and weekly rhythms and heavy-tailed node activity, used to build
// offline stand-ins for the paper's four real-world datasets.
//
// All generators are deterministic given their Seed.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/linkstream"
)

// TimeUniformConfig parameterises the paper's time-uniform networks:
// every pair of the Nodes nodes receives LinksPerPair links whose
// timestamps are chosen uniformly at random in [0, T). The paper uses
// Nodes = 100, T = 100 000 s, LinksPerPair in 10..100 (Figure 6 left).
type TimeUniformConfig struct {
	Nodes        int
	LinksPerPair int
	T            int64
	Seed         int64
}

// MeanInterContact returns the theoretical mean inter-contact time of a
// node, T/(N(n-1)) — the x-axis of Figure 6 (left).
func (c TimeUniformConfig) MeanInterContact() float64 {
	if c.LinksPerPair <= 0 || c.Nodes <= 1 {
		return 0
	}
	return float64(c.T) / (float64(c.LinksPerPair) * float64(c.Nodes-1))
}

// TimeUniform generates a time-uniform network.
func TimeUniform(cfg TimeUniformConfig) (*linkstream.Stream, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("synth: time-uniform needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.T < 1 {
		return nil, fmt.Errorf("synth: non-positive period T = %d", cfg.T)
	}
	if cfg.LinksPerPair < 0 {
		return nil, fmt.Errorf("synth: negative links per pair %d", cfg.LinksPerPair)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := linkstream.New()
	s.EnsureNodes(cfg.Nodes)
	for u := 0; u < cfg.Nodes; u++ {
		for v := u + 1; v < cfg.Nodes; v++ {
			for k := 0; k < cfg.LinksPerPair; k++ {
				if err := s.AddID(int32(u), int32(v), rng.Int63n(cfg.T)); err != nil {
					return nil, err
				}
			}
		}
	}
	s.Sort()
	return s, nil
}

// TwoModeConfig parameterises the paper's two-mode networks: Alternations
// repetitions of one high-activity period (length T1, N1 links per pair,
// uniform inside the period) followed by one low-activity period (length
// T2, N2 links per pair). Figure 6 (right) fixes N1, N2 and the whole
// length T = Alternations*(T1+T2) and varies the ratio T2/(T1+T2).
type TwoModeConfig struct {
	Nodes        int
	N1, N2       int   // links per pair per high / low period
	T1, T2       int64 // lengths of one high / low period
	Alternations int
	Seed         int64
}

// LowActivityFraction returns ρ = T2/(T1+T2), the x-axis of Figure 6
// (right).
func (c TwoModeConfig) LowActivityFraction() float64 {
	total := c.T1 + c.T2
	if total == 0 {
		return 0
	}
	return float64(c.T2) / float64(total)
}

// TwoMode generates a two-mode network.
func TwoMode(cfg TwoModeConfig) (*linkstream.Stream, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("synth: two-mode needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Alternations < 1 {
		return nil, fmt.Errorf("synth: need >= 1 alternation, got %d", cfg.Alternations)
	}
	if cfg.T1 < 0 || cfg.T2 < 0 || cfg.T1+cfg.T2 == 0 {
		return nil, fmt.Errorf("synth: bad period lengths T1=%d T2=%d", cfg.T1, cfg.T2)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := linkstream.New()
	s.EnsureNodes(cfg.Nodes)
	fill := func(start, length int64, perPair int) error {
		if length == 0 || perPair == 0 {
			return nil
		}
		for u := 0; u < cfg.Nodes; u++ {
			for v := u + 1; v < cfg.Nodes; v++ {
				for k := 0; k < perPair; k++ {
					if err := s.AddID(int32(u), int32(v), start+rng.Int63n(length)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	offset := int64(0)
	for a := 0; a < cfg.Alternations; a++ {
		if err := fill(offset, cfg.T1, cfg.N1); err != nil {
			return nil, err
		}
		offset += cfg.T1
		if err := fill(offset, cfg.T2, cfg.N2); err != nil {
			return nil, err
		}
		offset += cfg.T2
	}
	s.Sort()
	return s, nil
}
