package synth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linkstream"
)

func TestTimeUniformBasics(t *testing.T) {
	cfg := TimeUniformConfig{Nodes: 10, LinksPerPair: 4, T: 1000, Seed: 1}
	s, err := TimeUniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := 45 * 4 // C(10,2) pairs * 4
	if s.NumEvents() != wantEvents {
		t.Fatalf("events = %d, want %d", s.NumEvents(), wantEvents)
	}
	if s.NumNodes() != 10 {
		t.Fatalf("nodes = %d, want 10", s.NumNodes())
	}
	t0, t1, _ := s.Span()
	if t0 < 0 || t1 >= 1000 {
		t.Fatalf("span [%d,%d] outside [0,1000)", t0, t1)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeUniformDeterministic(t *testing.T) {
	cfg := TimeUniformConfig{Nodes: 6, LinksPerPair: 3, T: 500, Seed: 42}
	a, err := TimeUniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TimeUniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Events(), b.Events()
	if len(ea) != len(eb) {
		t.Fatal("different event counts for same seed")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	cfg.Seed = 43
	c, err := TimeUniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ea {
		if ea[i] != c.Events()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestTimeUniformErrors(t *testing.T) {
	if _, err := TimeUniform(TimeUniformConfig{Nodes: 1, LinksPerPair: 1, T: 10}); err == nil {
		t.Fatal("1 node should be rejected")
	}
	if _, err := TimeUniform(TimeUniformConfig{Nodes: 3, LinksPerPair: 1, T: 0}); err == nil {
		t.Fatal("T = 0 should be rejected")
	}
	if _, err := TimeUniform(TimeUniformConfig{Nodes: 3, LinksPerPair: -1, T: 10}); err == nil {
		t.Fatal("negative links should be rejected")
	}
}

func TestMeanInterContact(t *testing.T) {
	cfg := TimeUniformConfig{Nodes: 100, LinksPerPair: 10, T: 100_000}
	// T/(N(n-1)) = 100000/(10*99) ~ 101.
	want := 100000.0 / (10 * 99)
	if got := cfg.MeanInterContact(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MeanInterContact = %v, want %v", got, want)
	}
	if (TimeUniformConfig{Nodes: 1}).MeanInterContact() != 0 {
		t.Fatal("degenerate config should report 0")
	}
}

func TestTwoModeStructure(t *testing.T) {
	cfg := TwoModeConfig{Nodes: 6, N1: 4, N2: 1, T1: 100, T2: 100, Alternations: 3, Seed: 7}
	s, err := TwoMode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := 15
	want := 3 * pairs * (4 + 1)
	if s.NumEvents() != want {
		t.Fatalf("events = %d, want %d", s.NumEvents(), want)
	}
	// High periods ([0,100), [200,300), [400,500)) must hold 4/5 of the
	// events exactly by construction.
	high := 0
	for _, e := range s.Events() {
		phase := (e.T / 100) % 2
		if e.T >= 600 {
			t.Fatalf("event beyond total length: %+v", e)
		}
		if phase == 0 {
			high++
		}
	}
	if high != 3*pairs*4 {
		t.Fatalf("high-period events = %d, want %d", high, 3*pairs*4)
	}
}

func TestTwoModeEdgeFractions(t *testing.T) {
	if f := (TwoModeConfig{T1: 100, T2: 0}).LowActivityFraction(); f != 0 {
		t.Fatalf("rho = %v, want 0", f)
	}
	if f := (TwoModeConfig{T1: 0, T2: 100}).LowActivityFraction(); f != 1 {
		t.Fatalf("rho = %v, want 1", f)
	}
	if f := (TwoModeConfig{T1: 50, T2: 150}).LowActivityFraction(); f != 0.75 {
		t.Fatalf("rho = %v, want 0.75", f)
	}
	if f := (TwoModeConfig{}).LowActivityFraction(); f != 0 {
		t.Fatalf("zero config rho = %v", f)
	}
}

func TestTwoModePureModes(t *testing.T) {
	// T2 = 0 degenerates to a time-uniform network of the high mode.
	s, err := TwoMode(TwoModeConfig{Nodes: 4, N1: 2, N2: 5, T1: 100, T2: 0, Alternations: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumEvents() != 2*6*2 {
		t.Fatalf("events = %d, want 24", s.NumEvents())
	}
	if _, err := TwoMode(TwoModeConfig{Nodes: 4, N1: 1, N2: 1, T1: 0, T2: 0, Alternations: 1}); err == nil {
		t.Fatal("T1 = T2 = 0 should be rejected")
	}
	if _, err := TwoMode(TwoModeConfig{Nodes: 4, N1: 1, N2: 1, T1: 10, T2: 10, Alternations: 0}); err == nil {
		t.Fatal("0 alternations should be rejected")
	}
}

func TestMessageNetworkBasics(t *testing.T) {
	cfg := MessageConfig{
		Nodes: 30, Days: 14, MsgsPerPersonDay: 1.5, Seed: 11,
		ActivityExponent: 0.8, Reciprocity: 0.3, PartnerAffinity: 0.7,
	}
	s, err := MessageNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int(1.5 * 30 * 14)
	if s.NumEvents() != want {
		t.Fatalf("events = %d, want %d", s.NumEvents(), want)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	t0, t1, _ := s.Span()
	if t0 < 0 || t1 >= int64(14)*linkstream.Day {
		t.Fatalf("span [%d,%d] outside the 14-day window", t0, t1)
	}
	st := s.ComputeStats()
	if st.EventsPerNodePerDay < 1.0 || st.EventsPerNodePerDay > 2.2 {
		t.Fatalf("activity = %v, want about 1.5", st.EventsPerNodePerDay)
	}
}

func TestMessageNetworkCircadianShape(t *testing.T) {
	cfg := MessageConfig{Nodes: 40, Days: 30, MsgsPerPersonDay: 4, Seed: 5}
	s, err := MessageNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	night, work := 0, 0
	for _, e := range s.Events() {
		h := (e.T % linkstream.Day) / 3600
		switch {
		case h >= 0 && h < 6:
			night++
		case h >= 8 && h < 18:
			work++
		}
	}
	if night*4 > work {
		t.Fatalf("circadian profile too flat: night=%d work=%d", night, work)
	}
}

func TestMessageNetworkErrors(t *testing.T) {
	base := MessageConfig{Nodes: 10, Days: 5, MsgsPerPersonDay: 1}
	bad := base
	bad.Nodes = 1
	if _, err := MessageNetwork(bad); err == nil {
		t.Fatal("1 node should be rejected")
	}
	bad = base
	bad.Days = 0
	if _, err := MessageNetwork(bad); err == nil {
		t.Fatal("0 days should be rejected")
	}
	bad = base
	bad.MsgsPerPersonDay = 0
	if _, err := MessageNetwork(bad); err == nil {
		t.Fatal("0 activity should be rejected")
	}
	bad = base
	bad.Circadian = []float64{1, 2, 3}
	if _, err := MessageNetwork(bad); err == nil {
		t.Fatal("short circadian profile should be rejected")
	}
	bad = base
	bad.Weekly = make([]float64, 7) // all zero
	if _, err := MessageNetwork(bad); err == nil {
		t.Fatal("all-zero weekly profile should be rejected")
	}
	bad = base
	bad.Circadian = append(make([]float64, 23), -1)
	if _, err := MessageNetwork(bad); err == nil {
		t.Fatal("negative weight should be rejected")
	}
}

func TestCumSampler(t *testing.T) {
	cs, err := newCumSampler([]float64{0, 1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	rng := newTestRNG(9)
	for i := 0; i < 4000; i++ {
		counts[cs.sample(rng)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight indices sampled: %v", counts)
	}
	// index 3 should get about 3x index 1.
	if counts[3] < 2*counts[1] {
		t.Fatalf("weights not respected: %v", counts)
	}
	if _, err := newCumSampler([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights should be rejected")
	}
	if _, err := newCumSampler([]float64{-1, 2}); err == nil {
		t.Fatal("negative weight should be rejected")
	}
}

// Property: generated streams always validate, are sorted, and respect
// their configured bounds.
func TestQuickGeneratorsValid(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		n := int(nRaw%8) + 2
		l := int(lRaw % 5)
		s, err := TimeUniform(TimeUniformConfig{Nodes: n, LinksPerPair: l, T: 200, Seed: seed})
		if err != nil {
			return false
		}
		if s.Validate() != nil || !s.Sorted() {
			return false
		}
		pairs := n * (n - 1) / 2
		return s.NumEvents() == pairs*l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// newTestRNG returns a deterministic rand.Rand for sampler tests.
func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
