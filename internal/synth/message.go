package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/linkstream"
)

// MessageConfig parameterises the message-network generator that builds
// stand-ins for the paper's email and social-message datasets. The
// generator preserves the features the paper identifies as driving the
// saturation scale: the per-person daily activity level (Section 5) and
// the temporal heterogeneity of that activity (Section 6) — circadian
// and weekly rhythms — plus the heavy-tailed node activity typical of
// human communication networks.
type MessageConfig struct {
	Nodes            int
	Days             int
	MsgsPerPersonDay float64 // the paper's "messages sent per person per day"
	Seed             int64

	// Circadian holds 24 relative hourly weights; nil means a default
	// office-hours profile, and a slice of equal values means none.
	Circadian []float64
	// Weekly holds 7 relative day-of-week weights (index 0 = Monday);
	// nil means a default working-week profile.
	Weekly []float64
	// ActivityExponent shapes per-node sending rates ~ rank^-exponent
	// (Zipf-like). 0 means uniform activity.
	ActivityExponent float64
	// Reciprocity is the probability that a message is addressed to the
	// last person who wrote to the sender, producing conversations.
	Reciprocity float64
	// PartnerAffinity is the probability that a non-reply message goes
	// to an already-contacted partner (chosen proportionally to past
	// traffic) rather than to a uniformly random new node.
	PartnerAffinity float64
}

// DefaultCircadian is a coarse office-hours profile: quiet nights, a
// morning and an afternoon bump.
func DefaultCircadian() []float64 {
	return []float64{
		0.2, 0.1, 0.1, 0.1, 0.1, 0.2, // 00-05
		0.5, 1.0, 2.0, 3.0, 3.5, 3.0, // 06-11
		2.0, 2.5, 3.0, 3.0, 2.5, 2.0, // 12-17
		1.5, 1.0, 0.8, 0.6, 0.4, 0.3, // 18-23
	}
}

// DefaultWeekly is a working-week profile, Monday through Sunday.
func DefaultWeekly() []float64 {
	return []float64{1.0, 1.1, 1.1, 1.0, 0.9, 0.25, 0.2}
}

// cumSampler draws indices proportionally to fixed weights using a
// cumulative table and binary search.
type cumSampler struct {
	cum []float64
}

func newCumSampler(weights []float64) (*cumSampler, error) {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("synth: negative or NaN weight %v at %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("synth: all %d weights are zero", len(weights))
	}
	return &cumSampler{cum: cum}, nil
}

func (c *cumSampler) sample(rng *rand.Rand) int {
	x := rng.Float64() * c.cum[len(c.cum)-1]
	return sort.SearchFloat64s(c.cum, x)
}

// MessageNetwork generates a directed message stream (sender, recipient,
// second-resolution timestamp) according to cfg.
func MessageNetwork(cfg MessageConfig) (*linkstream.Stream, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("synth: message network needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Days < 1 {
		return nil, fmt.Errorf("synth: message network needs >= 1 day, got %d", cfg.Days)
	}
	if cfg.MsgsPerPersonDay <= 0 {
		return nil, fmt.Errorf("synth: non-positive activity %v", cfg.MsgsPerPersonDay)
	}
	circadian := cfg.Circadian
	if circadian == nil {
		circadian = DefaultCircadian()
	}
	if len(circadian) != 24 {
		return nil, fmt.Errorf("synth: circadian profile has %d entries, want 24", len(circadian))
	}
	weekly := cfg.Weekly
	if weekly == nil {
		weekly = DefaultWeekly()
	}
	if len(weekly) != 7 {
		return nil, fmt.Errorf("synth: weekly profile has %d entries, want 7", len(weekly))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	hourS, err := newCumSampler(circadian)
	if err != nil {
		return nil, err
	}
	// Day weights combine the day-of-week profile over the whole span.
	dayW := make([]float64, cfg.Days)
	for d := range dayW {
		dayW[d] = weekly[d%7]
	}
	dayS, err := newCumSampler(dayW)
	if err != nil {
		return nil, err
	}
	nodeW := make([]float64, cfg.Nodes)
	for i := range nodeW {
		if cfg.ActivityExponent <= 0 {
			nodeW[i] = 1
		} else {
			nodeW[i] = math.Pow(float64(i+1), -cfg.ActivityExponent)
		}
	}
	// Shuffle the rank-to-node assignment so that node ids carry no
	// structure.
	rng.Shuffle(cfg.Nodes, func(i, j int) { nodeW[i], nodeW[j] = nodeW[j], nodeW[i] })
	nodeS, err := newCumSampler(nodeW)
	if err != nil {
		return nil, err
	}

	total := int(math.Round(cfg.MsgsPerPersonDay * float64(cfg.Nodes) * float64(cfg.Days)))
	s := linkstream.New()
	s.EnsureNodes(cfg.Nodes)

	type partner struct {
		id     int32
		weight float64
	}
	partners := make([][]partner, cfg.Nodes) // outgoing contact pools
	lastFrom := make([]int32, cfg.Nodes)     // last sender writing to each node
	for i := range lastFrom {
		lastFrom[i] = -1
	}

	pickPartner := func(u int32) int32 {
		pool := partners[u]
		if len(pool) > 0 && rng.Float64() < cfg.PartnerAffinity {
			tot := 0.0
			for _, p := range pool {
				tot += p.weight
			}
			x := rng.Float64() * tot
			for _, p := range pool {
				x -= p.weight
				if x <= 0 {
					return p.id
				}
			}
			return pool[len(pool)-1].id
		}
		for {
			v := int32(rng.Intn(cfg.Nodes))
			if v != u {
				return v
			}
		}
	}

	for m := 0; m < total; m++ {
		u := int32(nodeS.sample(rng))
		var v int32
		if lastFrom[u] >= 0 && rng.Float64() < cfg.Reciprocity {
			v = lastFrom[u]
		} else {
			v = pickPartner(u)
		}
		day := int64(dayS.sample(rng))
		hour := int64(hourS.sample(rng))
		t := day*linkstream.Day + hour*3600 + rng.Int63n(3600)
		if err := s.AddID(u, v, t); err != nil {
			return nil, err
		}
		lastFrom[v] = u
		found := false
		for i := range partners[u] {
			if partners[u][i].id == v {
				partners[u][i].weight++
				found = true
				break
			}
		}
		if !found {
			partners[u] = append(partners[u], partner{id: v, weight: 1})
		}
	}
	s.Sort()
	return s, nil
}
