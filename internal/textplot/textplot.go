// Package textplot renders simple ASCII line plots and aligned tables so
// that every figure of the reproduction can be inspected in a terminal
// and archived as plain text in EXPERIMENTS.md.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// XY is one data point.
type XY struct {
	X, Y float64
}

// Series is a named sequence of points drawn with a single marker rune.
type Series struct {
	Name   string
	Marker rune
	Points []XY
}

// PlotConfig controls the canvas.
type PlotConfig struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // canvas columns (default 72)
	Height int  // canvas rows (default 20)
	LogX   bool // logarithmic x axis (requires x > 0)
	LogY   bool // logarithmic y axis (requires y > 0)
}

func (c PlotConfig) dims() (int, int) {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	return w, h
}

// Plot renders the series onto one canvas. Points with non-finite (or,
// on log axes, non-positive) coordinates are skipped.
func Plot(cfg PlotConfig, series ...Series) string {
	w, h := cfg.dims()
	tx := func(x float64) float64 { return x }
	ty := func(y float64) float64 { return y }
	if cfg.LogX {
		tx = math.Log10
	}
	if cfg.LogY {
		ty = math.Log10
	}
	usable := func(p XY) bool {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			return false
		}
		if cfg.LogX && p.X <= 0 {
			return false
		}
		if cfg.LogY && p.Y <= 0 {
			return false
		}
		return true
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			if !usable(p) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, tx(p.X)), math.Max(maxX, tx(p.X))
			minY, maxY = math.Min(minY, ty(p.Y)), math.Max(maxY, ty(p.Y))
		}
	}
	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	canvas := make([][]rune, h)
	for i := range canvas {
		canvas[i] = make([]rune, w)
		for j := range canvas[i] {
			canvas[i][j] = ' '
		}
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for _, p := range s.Points {
			if !usable(p) {
				continue
			}
			cx := int(math.Round((tx(p.X) - minX) / (maxX - minX) * float64(w-1)))
			cy := int(math.Round((ty(p.Y) - minY) / (maxY - minY) * float64(h-1)))
			row := h - 1 - cy
			if row >= 0 && row < h && cx >= 0 && cx < w {
				canvas[row][cx] = marker
			}
		}
	}

	yTop, yBot := invAxis(maxY, cfg.LogY), invAxis(minY, cfg.LogY)
	for i, row := range canvas {
		label := "          "
		if i == 0 {
			label = fmt.Sprintf("%10.3g", yTop)
		} else if i == h-1 {
			label = fmt.Sprintf("%10.3g", yBot)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	xLeft, xRight := invAxis(minX, cfg.LogX), invAxis(maxX, cfg.LogX)
	fmt.Fprintf(&b, "%10s  %-12.6g%s%12.6g\n", "",
		xLeft, strings.Repeat(" ", maxInt(0, w-24)), xRight)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s\n", "", cfg.XLabel, cfg.YLabel)
	}
	legend := make([]string, 0, len(series))
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "    "))
	}
	return b.String()
}

func invAxis(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table renders rows with left-aligned, width-padded columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[minInt(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
