package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	s := Series{Name: "line", Marker: 'o', Points: []XY{{0, 0}, {1, 1}, {2, 4}}}
	out := Plot(PlotConfig{Title: "demo", XLabel: "x", YLabel: "y"}, s)
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "o line") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "o") {
		t.Fatal("missing markers")
	}
	if !strings.Contains(out, "x: x") {
		t.Fatal("missing axis labels")
	}
}

func TestPlotEmpty(t *testing.T) {
	out := Plot(PlotConfig{Title: "empty"})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot output: %q", out)
	}
}

func TestPlotSkipsBadPoints(t *testing.T) {
	s := Series{Points: []XY{{1, 1}, {math.NaN(), 2}, {2, math.Inf(1)}, {3, 3}}}
	out := Plot(PlotConfig{}, s)
	if strings.Contains(out, "(no data)") {
		t.Fatal("valid points should render")
	}
}

func TestPlotLogAxes(t *testing.T) {
	s := Series{Name: "pow", Points: []XY{{1, 10}, {10, 100}, {100, 1000}, {-5, 2}, {0, 7}}}
	out := Plot(PlotConfig{LogX: true, LogY: true}, s)
	if strings.Contains(out, "(no data)") {
		t.Fatal("log plot should render positive points")
	}
	// Log-log of a power law is a straight line: the three markers
	// should appear on distinct rows (monotone).
	lines := strings.Split(out, "\n")
	var cols []int
	for _, l := range lines {
		if !strings.Contains(l, "|") {
			continue // skip legend and axis lines
		}
		if i := strings.IndexRune(l, '*'); i >= 0 {
			cols = append(cols, i)
		}
	}
	if len(cols) < 3 {
		t.Fatalf("expected 3 marker rows, got %d in:\n%s", len(cols), out)
	}
	for i := 1; i < len(cols); i++ {
		if cols[i] >= cols[i-1] {
			t.Fatalf("markers not monotone (cols %v) in:\n%s", cols, out)
		}
	}
}

func TestPlotSingularRanges(t *testing.T) {
	// All points identical: ranges are degenerate but must not panic.
	s := Series{Points: []XY{{5, 5}, {5, 5}}}
	out := Plot(PlotConfig{Width: 10, Height: 4}, s)
	if strings.Contains(out, "(no data)") {
		t.Fatal("degenerate plot should still render")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"betagamma", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header row: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator row: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "betagamma") {
		t.Fatalf("data row: %q", lines[3])
	}
	// Columns aligned: "value" column starts at the same offset in all rows.
	off := strings.Index(lines[0], "value")
	if got := strings.Index(lines[3], "22"); got != off {
		t.Fatalf("column misaligned: %d vs %d\n%s", got, off, out)
	}
}
