package cli

import (
	"flag"
	"io"
	"strings"
	"testing"

	"repro"
)

func bindFor(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Bind(fs, Defaults{Points: 48, Metrics: "occupancy", MetricsHelp: "metrics"})
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBindDefaultsAndOverrides(t *testing.T) {
	f := bindFor(t)
	if f.Points != 48 || f.Metrics != "occupancy" || f.Directed || f.MaxInFlight != 0 {
		t.Fatalf("defaults: %+v", f)
	}
	if f.LaneWidth != 0 || f.Speculate {
		t.Fatalf("defaults: %+v", f)
	}
	f = bindFor(t, "-directed", "-points", "12", "-min", "60", "-workers", "3",
		"-max-inflight", "2", "-lane-width", "4", "-speculate", "-metrics", "loss", "-engine-stats")
	if !f.Directed || f.Points != 12 || f.MinDelta != 60 || f.Workers != 3 ||
		f.MaxInFlight != 2 || f.LaneWidth != 4 || !f.Speculate || f.Metrics != "loss" || !f.EngineStats {
		t.Fatalf("overrides: %+v", f)
	}
}

func TestParseMetricsBaseAndAllowed(t *testing.T) {
	f := bindFor(t, "-metrics", "loss,occupancy")
	ms, err := f.ParseMetrics(
		[]repro.Metric{repro.MetricOccupancy},
		[]repro.Metric{repro.MetricOccupancy, repro.MetricTransitionLoss})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] != repro.MetricOccupancy || ms[1] != repro.MetricTransitionLoss {
		t.Fatalf("metrics = %v", ms)
	}
	// Base metrics never duplicate.
	f = bindFor(t, "-metrics", "occupancy")
	ms, err = f.ParseMetrics([]repro.Metric{repro.MetricOccupancy}, nil)
	if err != nil || len(ms) != 1 {
		t.Fatalf("metrics = %v, err = %v", ms, err)
	}
	// Disallowed metric rejected.
	f = bindFor(t, "-metrics", "classic")
	if _, err := f.ParseMetrics(
		[]repro.Metric{repro.MetricOccupancy},
		[]repro.Metric{repro.MetricTransitionLoss}); err == nil {
		t.Fatal("disallowed metric should error")
	}
	// Unknown metric rejected.
	f = bindFor(t, "-metrics", "bogus")
	if _, err := f.ParseMetrics(nil, nil); err == nil {
		t.Fatal("unknown metric should error")
	}
}

// TestPlanOptionsMatchFlags pins the flag→option mapping: a plan built
// from CLI flags must behave exactly like one built with the
// corresponding options by hand.
func TestPlanOptionsMatchFlags(t *testing.T) {
	f := bindFor(t, "-points", "7", "-min", "3", "-workers", "2", "-max-inflight", "1")
	s := repro.NewStream()
	for i := int64(0); i < 40; i++ {
		u, v := "a", "b"
		if i%3 == 0 {
			v = "c"
		}
		if i%2 == 0 {
			u = "d"
		}
		if err := s.Add(u, v, (i*37)%500); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := repro.NewAnalysis(s, f.PlanOptions(repro.MetricOccupancy)...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := repro.LogGrid(3, s.Duration(), 7)
	occ := rep.Occupancy()
	if len(occ) != len(want) {
		t.Fatalf("curve has %d points, want %d", len(occ), len(want))
	}
	for i, p := range occ {
		if p.Delta != want[i] {
			t.Fatalf("grid mismatch at %d: %d vs %d", i, p.Delta, want[i])
		}
	}
}

func TestReadStream(t *testing.T) {
	f := bindFor(t)
	s, err := f.ReadStream(strings.NewReader("a b 1\nb c 2\n"))
	if err != nil || s.NumEvents() != 2 {
		t.Fatalf("s = %v, err = %v", s, err)
	}
	if _, err := f.ReadStream(strings.NewReader("# empty\n")); err == nil {
		t.Fatal("empty stream should error")
	}
	f = bindFor(t, "-in", "/nonexistent/stream.txt")
	if _, err := f.ReadStream(nil); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestEngineStatsLine(t *testing.T) {
	line := EngineStatsLine(repro.EngineStats{Builds: 5, Dedups: 2, StreamBuilds: 1, MaxResident: 3, Passes: 2,
		ArenaHanded: 5, ArenaReused: 3, ArenaRecycled: 5})
	for _, want := range []string{"5 period CSR builds", "+2 deduplicated", "1 stream trip enumerations",
		"peak 3 periods resident", "2 passes", "5 handed (3 reused)", "5 recycled"} {
		if !strings.Contains(line, want) {
			t.Fatalf("missing %q in %q", want, line)
		}
	}
}

// TestErrorPaths is the table-driven flag→option error surface: every
// misuse of the shared flags must fail at the layer that owns it —
// parse time for malformed values, Input for conflicting sources, plan
// construction for values the engine rejects — with an error naming
// the problem.
func TestErrorPaths(t *testing.T) {
	stream := func(t *testing.T) *repro.Stream {
		t.Helper()
		s := repro.NewStream()
		for i := int64(0); i < 20; i++ {
			if err := s.Add("a", "b", i*13%200+1); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	cases := []struct {
		name    string
		args    []string
		stage   string // "parse" | "input" | "metrics" | "plan"
		wantSub string
	}{
		{
			name:    "conflicting -in and -stream",
			args:    []string{"-in", "a.txt", "-stream", "b.lsc"},
			stage:   "input",
			wantSub: "mutually exclusive",
		},
		{
			name:    "unknown metric name",
			args:    []string{"-metrics", "vibes"},
			stage:   "metrics",
			wantSub: "vibes",
		},
		{
			name:    "invalid lane width",
			args:    []string{"-lane-width", "5"},
			stage:   "plan",
			wantSub: "lane width 5",
		},
		{
			name:    "negative lane width",
			args:    []string{"-lane-width", "-4"},
			stage:   "plan",
			wantSub: "lane width",
		},
		{
			name:    "non-numeric points",
			args:    []string{"-points", "many"},
			stage:   "parse",
			wantSub: "invalid value",
		},
		{
			name:    "non-numeric min delta",
			args:    []string{"-min", "1h"},
			stage:   "parse",
			wantSub: "invalid value",
		},
		{
			name:    "unknown flag",
			args:    []string{"-gamma-please"},
			stage:   "parse",
			wantSub: "flag provided but not defined",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			f := Bind(fs, Defaults{Points: 48, Metrics: "occupancy", MetricsHelp: "metrics"})
			err := fs.Parse(tc.args)
			if tc.stage == "parse" {
				if err == nil {
					t.Fatal("parse accepted the arguments")
				}
				if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
					t.Fatalf("parse error %q does not mention %q", err, tc.wantSub)
				}
				return
			}
			if err != nil {
				t.Fatalf("parse: %v", err)
			}

			switch tc.stage {
			case "input":
				_, _, err = f.Input(strings.NewReader(""))
			case "metrics":
				_, err = f.ParseMetrics([]repro.Metric{repro.MetricOccupancy}, nil)
			case "plan":
				_, err = repro.NewAnalysis(stream(t), f.PlanOptions(repro.MetricOccupancy)...)
			default:
				t.Fatalf("unknown stage %q", tc.stage)
			}
			if err == nil {
				t.Fatalf("%s stage accepted the flags", tc.stage)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("%s error %q does not mention %q", tc.stage, err, tc.wantSub)
			}
		})
	}
}

// TestBindServeDefaults pins the serving flag surface and its
// defaults.
func TestBindServeDefaults(t *testing.T) {
	fs := flag.NewFlagSet("tsserve", flag.ContinueOnError)
	f := BindServe(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Addr != "localhost:7487" || f.StreamRoot != "" || f.MaxJobs != 0 || f.TenantBudget != 0 {
		t.Fatalf("defaults: %+v", f)
	}
	fs = flag.NewFlagSet("tsserve", flag.ContinueOnError)
	f = BindServe(fs)
	err := fs.Parse([]string{"-addr", ":0", "-stream-root", "/srv/streams",
		"-max-jobs", "9", "-tenant-budget", "3", "-cache-entries", "7",
		"-workers", "2", "-max-inflight", "1", "-lane-width", "8"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Addr != ":0" || f.StreamRoot != "/srv/streams" || f.MaxJobs != 9 ||
		f.TenantBudget != 3 || f.CacheEntries != 7 || f.Workers != 2 ||
		f.MaxInFlight != 1 || f.LaneWidth != 8 {
		t.Fatalf("overrides: %+v", f)
	}
}
