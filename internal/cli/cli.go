// Package cli holds the flag surface shared by the analysis commands
// (tsscale, tsvalidate, tsaggregate, tsfigures): one binding registers the common
// flags — input, orientation, grid shape, engine budgets, metric
// selection, instrumentation — and one mapping turns them into
// repro.Option values, so the command flags and the library's plan
// options cannot drift apart.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/textplot"
)

// Flags is the shared analysis-command flag set; every field maps onto
// exactly one plan option (see PlanOptions).
type Flags struct {
	In          string
	Stream      string
	ElongSpill  int64
	Directed    bool
	Points      int
	MinDelta    int64
	Workers     int
	MaxInFlight int
	LaneWidth   int
	Speculate   bool
	Metrics     string
	EngineStats bool
}

// Defaults parameterises Bind for the small per-command differences.
type Defaults struct {
	// Points is the default -points value.
	Points int
	// Metrics is the default -metrics value.
	Metrics string
	// MetricsHelp is the -metrics usage string.
	MetricsHelp string
}

// Bind registers the shared analysis flags on fs and returns the
// struct they populate.
func Bind(fs *flag.FlagSet, d Defaults) *Flags {
	f := &Flags{}
	fs.StringVar(&f.In, "in", "", "input stream file, any format — text, LSB binary, LSC columnar — parsed into memory (default: stdin)")
	fs.StringVar(&f.Stream, "stream", "",
		"input stream file handed to the plan by path (repro.WithStreamPath): columnar files (cmd/tsconvert) open memory-mapped, skip the engine's sort pass and let windowed passes read only their span; mutually exclusive with -in")
	fs.Int64Var(&f.ElongSpill, "elong-spill", 0,
		"cap resident bytes of the elongation pair-span arena; beyond it finished regions spill to an unlinked temp file re-read during scoring (0 = all in RAM; result is bit-identical)")
	fs.BoolVar(&f.Directed, "directed", false, "respect link orientation")
	fs.IntVar(&f.Points, "points", d.Points, "number of candidate periods to sweep")
	fs.Int64Var(&f.MinDelta, "min", 0, "smallest candidate period (default: stream resolution)")
	fs.StringVar(&f.Metrics, "metrics", d.Metrics, d.MetricsHelp)
	BindEngine(fs, &f.Workers, &f.MaxInFlight)
	BindLaneWidth(fs, &f.LaneWidth)
	fs.BoolVar(&f.Speculate, "speculate", false,
		"speculative bracket bisection: sweep both refinement half-midpoints per engine pass (same result, fewer passes)")
	fs.BoolVar(&f.EngineStats, "engine-stats", false,
		"print the engine's instrumentation after the run (period CSR builds, dedup hits, stream enumerations, peak resident periods, arena reuse)")
	return f
}

// BindEngine registers just the engine-budget flags (-workers,
// -max-inflight), for commands that share those without the full
// analysis surface.
func BindEngine(fs *flag.FlagSet, workers, maxInFlight *int) {
	fs.IntVar(workers, "workers", 0, "engine parallelism (0 = all CPUs)")
	fs.IntVar(maxInFlight, "max-inflight", 0,
		"max aggregation periods resident in the sweep engine (0 = engine default)")
}

// BindLaneWidth registers the -lane-width flag with the shared usage
// text, so every command that exposes the knob describes it
// identically.
func BindLaneWidth(fs *flag.FlagSet, laneWidth *int) {
	fs.IntVar(laneWidth, "lane-width", 0,
		"destinations relaxed per sweep pass: 4 or 8 (0 = architecture default); every width is bit-identical")
}

// ServeFlags is the flag surface of the serving commands (tsserve):
// where to listen, where stream refs resolve, the queue's budgets, and
// the engine defaults filled into specs that leave theirs zero. The
// engine flags reuse the exact analysis-command bindings (BindEngine,
// -lane-width), so operator budgets cannot drift from the CLI surface.
type ServeFlags struct {
	Addr         string
	StreamRoot   string
	MaxJobs      int
	TenantBudget int
	CacheEntries int
	Workers      int
	MaxInFlight  int
	LaneWidth    int

	// Distributed-execution surface. Coordinator switches the process
	// into coordinator mode; Join/Advertise/Name make it a worker that
	// registers with a coordinator; Shards, ShardTimeout and
	// ShardRetries shape the coordinator's dispatch.
	Coordinator  bool
	Join         string
	Advertise    string
	Name         string
	Shards       int
	ShardTimeout time.Duration
	ShardRetries int
}

// BindServe registers the serving flags on fs.
func BindServe(fs *flag.FlagSet) *ServeFlags {
	f := &ServeFlags{}
	fs.StringVar(&f.Addr, "addr", "localhost:7487", "address to listen on")
	fs.StringVar(&f.StreamRoot, "stream-root", "",
		"directory plan-spec stream refs resolve under; refs are confined to it and rejected when unset (inline-event specs always work)")
	fs.IntVar(&f.MaxJobs, "max-jobs", 0, "max admitted unfinished runs across all tenants (0 = 64)")
	fs.IntVar(&f.TenantBudget, "tenant-budget", 0, "max concurrently executing runs per tenant (0 = 2)")
	fs.IntVar(&f.CacheEntries, "cache-entries", 0, "completed results retained for cache hits (0 = 128)")
	BindEngine(fs, &f.Workers, &f.MaxInFlight)
	fs.IntVar(&f.LaneWidth, "lane-width", 0,
		"default destinations relaxed per sweep pass for specs that leave lane_width unset: 4 or 8 (0 = architecture default)")
	fs.BoolVar(&f.Coordinator, "coordinator", false,
		"serve as a shard coordinator: partition jobs across registered workers and fold their partials (byte-identical to a local run)")
	fs.StringVar(&f.Join, "join", "",
		"coordinator URL to register with as a worker (e.g. http://host:7487); keeps a heartbeat and re-registers after coordinator restarts")
	fs.StringVar(&f.Advertise, "advertise", "",
		"base URL the coordinator should dispatch shards to (default http://<addr>)")
	fs.StringVar(&f.Name, "name", "",
		"worker name for registration (default the advertise URL)")
	fs.IntVar(&f.Shards, "shards", 0,
		"chunks each scope's candidate grid splits into (0 = one per live worker)")
	fs.DurationVar(&f.ShardTimeout, "shard-timeout", 0,
		"per-attempt bound on one shard dispatch (0 = 60s)")
	fs.IntVar(&f.ShardRetries, "shard-retries", 0,
		"extra dispatch attempts per shard before the coordinator runs it locally (0 = 3)")
	return f
}

// ParseMetrics parses the -metrics flag, always including base and
// rejecting anything outside allowed (nil allows every metric).
func (f *Flags) ParseMetrics(base []repro.Metric, allowed []repro.Metric) ([]repro.Metric, error) {
	parsed, err := repro.ParseMetrics(f.Metrics)
	if err != nil {
		return nil, err
	}
	if allowed != nil {
		for _, m := range parsed {
			ok := false
			for _, a := range allowed {
				if m == a {
					ok = true
					break
				}
			}
			if !ok && !contains(base, m) {
				return nil, fmt.Errorf("metric %q is not supported by this command", m)
			}
		}
	}
	out := append([]repro.Metric(nil), base...)
	for _, m := range parsed {
		if !contains(out, m) {
			out = append(out, m)
		}
	}
	return out, nil
}

func contains(ms []repro.Metric, m repro.Metric) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

// PlanOptions maps the bound flags onto plan options. Commands append
// their own extras (refinement, selectors, adaptive mode) after these.
func (f *Flags) PlanOptions(metrics ...repro.Metric) []repro.Option {
	return []repro.Option{
		repro.WithDirected(f.Directed),
		repro.WithWorkers(f.Workers),
		repro.WithMaxInFlight(f.MaxInFlight),
		repro.WithLaneWidth(f.LaneWidth),
		repro.WithSpeculate(f.Speculate),
		repro.WithGridPoints(f.Points),
		repro.WithMinDelta(f.MinDelta),
		repro.WithElongationSpill(f.ElongSpill),
		repro.WithMetrics(metrics...),
	}
}

// Input resolves the stream inputs of a command: with -stream the path
// is handed to the plan (repro.WithStreamPath — columnar files are
// mapped, never parsed) and the returned stream is nil; otherwise -in
// (or stdin) is parsed into memory as before. Append the returned
// options after PlanOptions when building the plan.
func (f *Flags) Input(stdin io.Reader) (*repro.Stream, []repro.Option, error) {
	if f.Stream != "" {
		if f.In != "" {
			return nil, nil, fmt.Errorf("-in and -stream are mutually exclusive")
		}
		return nil, []repro.Option{repro.WithStreamPath(f.Stream)}, nil
	}
	s, err := f.ReadStream(stdin)
	if err != nil {
		return nil, nil, err
	}
	return s, nil, nil
}

// ReadStream reads the link stream from -in, or from stdin when -in is
// unset, and rejects empty streams.
func (f *Flags) ReadStream(stdin io.Reader) (*repro.Stream, error) {
	var r io.Reader = stdin
	if f.In != "" {
		file, err := os.Open(f.In)
		if err != nil {
			return nil, err
		}
		defer file.Close()
		r = file
	}
	s := repro.NewStream()
	if err := s.ReadAny(r); err != nil {
		return nil, err
	}
	if s.NumEvents() == 0 {
		return nil, fmt.Errorf("no events read")
	}
	return s, nil
}

// SnapshotTables renders the snapshot-metric curves (repro.MetricDegree
// and friends) in the shared output format of tsscale and tsaggregate:
// one table per metric — one row per candidate period, one column per
// series — followed by the per-series stability scores.
func SnapshotTables(w io.Writer, curves []repro.MetricCurve) {
	for _, c := range curves {
		header := []string{"period (s)"}
		for _, ser := range c.Series {
			header = append(header, ser.Name)
		}
		rows := make([][]string, 0, len(c.Deltas))
		for i, d := range c.Deltas {
			row := []string{fmt.Sprintf("%d", d)}
			for _, ser := range c.Series {
				row = append(row, fmt.Sprintf("%.4g", ser.Values[i]))
			}
			rows = append(rows, row)
		}
		fmt.Fprintf(w, "\nsnapshot metric %s:\n", c.Metric)
		fmt.Fprint(w, textplot.Table(header, rows))
		stab := make([]string, 0, len(c.Series))
		for _, ser := range c.Series {
			stab = append(stab, fmt.Sprintf("%s %.3f", ser.Name, ser.Stability))
		}
		fmt.Fprintf(w, "stability (1 = plateau): %s\n", strings.Join(stab, ", "))
	}
}

// EngineStatsLine renders a run's engine instrumentation in the shared
// -engine-stats output format.
func EngineStatsLine(st repro.EngineStats) string {
	return fmt.Sprintf("engine: %d period CSR builds (+%d deduplicated), %d stream trip enumerations, peak %d periods resident, %d passes (%d sort-skipped); arenas: %d handed (%d reused), %d recycled",
		st.Builds, st.Dedups, st.StreamBuilds, st.MaxResident, st.Passes, st.SortSkips,
		st.ArenaHanded, st.ArenaReused, st.ArenaRecycled)
}
