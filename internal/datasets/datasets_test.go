package datasets

import (
	"testing"

	"repro/internal/linkstream"
)

func TestAllDatasetsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	for _, d := range All() {
		d := d
		t.Run(d.Meta.Name, func(t *testing.T) {
			s, err := d.Stream()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			if s.NumNodes() != d.Meta.Nodes {
				t.Fatalf("nodes = %d, want %d", s.NumNodes(), d.Meta.Nodes)
			}
			st := s.ComputeStats()
			// The stand-in must land near the paper's activity level —
			// that is the calibration contract.
			lo, hi := d.Meta.PaperActivity*0.7, d.Meta.PaperActivity*1.4
			if st.EventsPerNodePerDay < lo || st.EventsPerNodePerDay > hi {
				t.Fatalf("activity = %v, want in [%v, %v]", st.EventsPerNodePerDay, lo, hi)
			}
			wantSpan := int64(d.Meta.Days) * linkstream.Day
			if st.Span > wantSpan {
				t.Fatalf("span = %d, want <= %d", st.Span, wantSpan)
			}
			if st.Span < wantSpan*8/10 {
				t.Fatalf("span = %d suspiciously short vs %d", st.Span, wantSpan)
			}
		})
	}
}

func TestStreamCached(t *testing.T) {
	d := Irvine()
	a, err := d.Stream()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Stream should return the cached instance")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"irvine", "facebook", "enron", "manufacturing"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Meta.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, d.Meta.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestMetaMatchesPaperTable(t *testing.T) {
	cases := map[string]float64{
		"irvine": 18, "facebook": 46, "enron": 78, "manufacturing": 12,
	}
	for name, gamma := range cases {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Meta.PaperGammaHours != gamma {
			t.Fatalf("%s paper gamma = %v, want %v", name, d.Meta.PaperGammaHours, gamma)
		}
	}
	// Paper's activity ordering: facebook < enron < irvine < manufacturing.
	fb, en, ir, mf := Facebook().Meta, Enron().Meta, Irvine().Meta, Manufacturing().Meta
	if !(fb.PaperActivity < en.PaperActivity && en.PaperActivity < ir.PaperActivity && ir.PaperActivity < mf.PaperActivity) {
		t.Fatal("paper activity ordering violated in Meta")
	}
}
