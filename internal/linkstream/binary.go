package linkstream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary stream format, for traces too large for the text edge-list:
//
//	magic "LSB" + one version byte ('1' for the current format, kept
//	printable so version-1 files carry the historical "LSB1" prefix
//	byte for byte)
//	uvarint nodeCount, then nodeCount length-prefixed UTF-8 names
//	uvarint eventCount, then per event:
//	    uvarint u, uvarint v, svarint delta(t)  (t delta-encoded
//	    against the previous event's timestamp; events are written in
//	    the stream's current order)
//
// Varint timestamps make sorted second-resolution traces a few bytes
// per event. A reader encountering a version byte it does not know
// refuses to decode rather than misreading a future layout as varint
// soup.

var binaryMagic = [3]byte{'L', 'S', 'B'}

const binaryVersion = '1'

// ErrBadMagic is returned when decoding a stream without the LSB
// header.
var ErrBadMagic = errors.New("linkstream: not a binary link stream (bad magic)")

// WriteBinary encodes the stream in the compact binary format.
func (s *Stream) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(x int64) error {
		n := binary.PutVarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(s.names))); err != nil {
		return err
	}
	for _, name := range s.names {
		if err := putUvarint(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(s.events))); err != nil {
		return err
	}
	prevT := int64(0)
	for _, e := range s.events {
		if err := putUvarint(uint64(e.U)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.V)); err != nil {
			return err
		}
		if err := putVarint(e.T - prevT); err != nil {
			return err
		}
		prevT = e.T
	}
	return bw.Flush()
}

// ReadBinary decodes a stream previously written by WriteBinary,
// replacing the receiver's contents.
func (s *Stream) ReadBinary(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("linkstream: reading magic: %w", err)
	}
	if [3]byte{magic[0], magic[1], magic[2]} != binaryMagic {
		return ErrBadMagic
	}
	if magic[3] != binaryVersion {
		return fmt.Errorf("linkstream: binary stream version %q not supported (this build reads version %q)", magic[3], byte(binaryVersion))
	}
	nodeCount, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("linkstream: node count: %w", err)
	}
	if nodeCount > math.MaxInt32 {
		return fmt.Errorf("linkstream: implausible node count %d", nodeCount)
	}
	*s = Stream{}
	nameBuf := make([]byte, 0, 64)
	for i := uint64(0); i < nodeCount; i++ {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("linkstream: name length: %w", err)
		}
		if l > 1<<20 {
			return fmt.Errorf("linkstream: implausible name length %d", l)
		}
		if uint64(cap(nameBuf)) < l {
			nameBuf = make([]byte, l)
		}
		nameBuf = nameBuf[:l]
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return fmt.Errorf("linkstream: name bytes: %w", err)
		}
		s.AddNode(string(nameBuf))
	}
	eventCount, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("linkstream: event count: %w", err)
	}
	if eventCount > 1<<40 {
		return fmt.Errorf("linkstream: implausible event count %d", eventCount)
	}
	s.events = make([]Event, 0, eventCount)
	prevT := int64(0)
	for i := uint64(0); i < eventCount; i++ {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("linkstream: event %d u: %w", i, err)
		}
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("linkstream: event %d v: %w", i, err)
		}
		dt, err := binary.ReadVarint(br)
		if err != nil {
			return fmt.Errorf("linkstream: event %d t: %w", i, err)
		}
		t := prevT + dt
		prevT = t
		if err := s.AddID(int32(u), int32(v), t); err != nil {
			return fmt.Errorf("linkstream: event %d: %w", i, err)
		}
	}
	return nil
}
