//go:build unix

package linkstream

import (
	"fmt"
	"os"
	"syscall"
)

// openMappedBytes maps the file at path read-only and returns the
// mapping plus its unmap closer. Platforms without mmap get the
// full-read fallback in columnar_mmap_fallback.go instead.
func openMappedBytes(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, nil, nil
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("linkstream: columnar: %s: %d bytes exceeds the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("linkstream: columnar: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
