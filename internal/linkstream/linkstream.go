// Package linkstream implements the link-stream substrate of the
// reproduction: a dynamic network given as a finite collection of triplets
// (u, v, t) meaning that nodes u and v have a link between them at time t.
//
// Timestamps are integers (the paper's sample datasets use a 1-second
// resolution; any integer resolution works). Node identities are interned:
// the public API accepts string names while the analysis layers work on
// dense int32 identifiers, which keeps the temporal-path engine compact.
//
// The zero value of Stream is an empty, ready-to-use stream.
package linkstream

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Event is a single link occurrence (u, v, t). For directed streams the
// link is from U to V; for undirected analyses the orientation is ignored
// (see Normalize).
type Event struct {
	U, V int32
	T    int64
}

// Stream is a finite collection of events over an interned node set.
// Events are kept in insertion order until Sort is called.
type Stream struct {
	events []Event
	names  []string
	index  map[string]int32
	sorted bool
}

// Common errors returned by Stream operations.
var (
	ErrSelfLoop  = errors.New("linkstream: self loop (u == v)")
	ErrBadNodeID = errors.New("linkstream: node id out of range")
	ErrEmpty     = errors.New("linkstream: empty stream")
)

// New returns an empty stream. Equivalent to new(Stream); provided for
// symmetry with the rest of the API.
func New() *Stream { return &Stream{} }

// NumNodes returns the number of interned nodes.
func (s *Stream) NumNodes() int { return len(s.names) }

// NumEvents returns the number of events in the stream.
func (s *Stream) NumEvents() int { return len(s.events) }

// Events returns the underlying event slice. The slice is owned by the
// stream and must not be modified by the caller.
func (s *Stream) Events() []Event { return s.events }

// NodeName returns the interned name of node id. It panics if id is out of
// range, mirroring slice indexing semantics.
func (s *Stream) NodeName(id int32) string { return s.names[id] }

// NodeID returns the id of the named node and whether it exists.
func (s *Stream) NodeID(name string) (int32, bool) {
	id, ok := s.index[name]
	return id, ok
}

// AddNode interns name and returns its id. Adding an existing name returns
// the existing id. Nodes may exist without any event (isolated nodes).
func (s *Stream) AddNode(name string) int32 {
	if id, ok := s.index[name]; ok {
		return id
	}
	if s.index == nil {
		s.index = make(map[string]int32)
	}
	id := int32(len(s.names))
	s.names = append(s.names, name)
	s.index[name] = id
	return id
}

// Add interns both node names and appends the event (u, v, t).
// Self loops are rejected: a link needs two distinct endpoints.
func (s *Stream) Add(u, v string, t int64) error {
	if u == v {
		return fmt.Errorf("%w: %q at t=%d", ErrSelfLoop, u, t)
	}
	return s.AddID(s.AddNode(u), s.AddNode(v), t)
}

// AddID appends an event between two already-interned node ids.
func (s *Stream) AddID(u, v int32, t int64) error {
	if u == v {
		return fmt.Errorf("%w: id %d at t=%d", ErrSelfLoop, u, t)
	}
	if u < 0 || int(u) >= len(s.names) || v < 0 || int(v) >= len(s.names) {
		return fmt.Errorf("%w: (%d,%d) with %d nodes", ErrBadNodeID, u, v, len(s.names))
	}
	s.events = append(s.events, Event{U: u, V: v, T: t})
	s.sorted = false
	return nil
}

// EnsureNodes interns n anonymous nodes named "0".."n-1" if the stream has
// fewer than n nodes. It is the standard way generators size a stream.
func (s *Stream) EnsureNodes(n int) {
	for len(s.names) < n {
		s.AddNode(fmt.Sprintf("%d", len(s.names)))
	}
}

// Sort orders events by time, breaking ties by (U, V) so that sorting is
// deterministic. It is idempotent and marks the stream as sorted.
func (s *Stream) Sort() {
	if s.sorted {
		return
	}
	SortEvents(s.events)
	s.sorted = true
}

// SortEvents sorts events in the engine's canonical order — stably by
// (T, U, V) — the exact order Stream.Sort produces and the columnar
// format's sorted flag promises.
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
}

// EngineEvents returns the events of [start, end) (start >= end
// selects the whole stream) in the engine's order — sorted by
// (T, U, V) and, when canonical is requested, with every pair oriented
// U < V. It is the in-memory implementation of the engine's stream
// source: the stream is sorted in place as a side effect, and the
// returned slice aliases the stream's storage unless canonical forced
// an oriented copy. preSorted is always false — the sort pass (even if
// an idempotent no-op) belongs to this call.
func (s *Stream) EngineEvents(start, end int64, canonical bool) ([]Event, bool, error) {
	s.Sort()
	ev := s.events
	if start < end {
		ev = WindowEvents(ev, start, end)
	}
	if canonical {
		ev = Canonical(ev)
	}
	return ev, false, nil
}

// Sorted reports whether the events are known to be in time order.
func (s *Stream) Sorted() bool { return s.sorted }

// Normalize rewrites every event so that U < V, making the stream
// canonical for undirected analyses. Directed information is lost.
func (s *Stream) Normalize() {
	for i := range s.events {
		if s.events[i].U > s.events[i].V {
			s.events[i].U, s.events[i].V = s.events[i].V, s.events[i].U
		}
	}
	s.sorted = false
}

// Canonical returns a copy of events with every pair oriented U < V,
// the form undirected analyses need. The input order is preserved; the
// input slice is not modified. Building the canonical buffer once and
// sharing it across aggregation periods is what lets the sweep pipeline
// canonicalise a stream a single time.
func Canonical(events []Event) []Event {
	out := make([]Event, len(events))
	for i, e := range events {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		out[i] = e
	}
	return out
}

// WindowEvents returns the sub-slice of the time-sorted events with
// start <= T < end — the same selection SliceTime makes, without
// copying. Events must already be sorted by time.
func WindowEvents(events []Event, start, end int64) []Event {
	lo := sort.Search(len(events), func(i int) bool { return events[i].T >= start })
	hi := sort.Search(len(events), func(i int) bool { return events[i].T >= end })
	return events[lo:hi]
}

// EventsResolution is Stream.Resolution on a time-sorted event slice:
// the smallest positive gap between consecutive timestamps, 1 when
// there are fewer than two distinct ones.
func EventsResolution(events []Event) int64 {
	res := int64(math.MaxInt64)
	for i := 1; i < len(events); i++ {
		if d := events[i].T - events[i-1].T; d > 0 && d < res {
			res = d
		}
	}
	if res == math.MaxInt64 {
		return 1
	}
	return res
}

// EventsDuration is Stream.Duration on a time-sorted event slice:
// t1 - t0 + 1, or 0 for an empty slice.
func EventsDuration(events []Event) int64 {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)-1].T - events[0].T + 1
}

// Dedup removes exactly repeated events (same U, V and T). The stream is
// sorted as a side effect. Events (u,v,t) and (v,u,t) are distinct unless
// Normalize was called first.
func (s *Stream) Dedup() {
	s.Sort()
	out := s.events[:0]
	var prev Event
	for i, e := range s.events {
		if i > 0 && e == prev {
			continue
		}
		out = append(out, e)
		prev = e
	}
	s.events = out
}

// Span returns the first and last timestamps. ok is false for an empty
// stream. The stream is sorted as a side effect.
func (s *Stream) Span() (t0, t1 int64, ok bool) {
	if len(s.events) == 0 {
		return 0, 0, false
	}
	s.Sort()
	return s.events[0].T, s.events[len(s.events)-1].T, true
}

// Duration returns t1 - t0 + 1, the number of time units covered by the
// stream (0 for an empty stream).
func (s *Stream) Duration() int64 {
	s.Sort()
	return EventsDuration(s.events)
}

// Resolution returns the smallest positive gap between two consecutive
// distinct timestamps, which is the natural minimal aggregation period of
// the stream. It returns 1 for streams with fewer than two distinct
// timestamps. The stream is sorted as a side effect.
func (s *Stream) Resolution() int64 {
	s.Sort()
	return EventsResolution(s.events)
}

// Clone returns a deep copy of the stream.
func (s *Stream) Clone() *Stream {
	c := &Stream{
		events: append([]Event(nil), s.events...),
		names:  append([]string(nil), s.names...),
		sorted: s.sorted,
	}
	if s.index != nil {
		c.index = make(map[string]int32, len(s.index))
		for k, v := range s.index {
			c.index[k] = v
		}
	}
	return c
}

// SliceTime returns a new stream containing the events with t0 <= T < t1.
// The node set (interning) is shared structure-wise: the clone keeps all
// node names so ids remain stable.
func (s *Stream) SliceTime(t0, t1 int64) *Stream {
	s.Sort()
	c := &Stream{names: append([]string(nil), s.names...), sorted: true}
	if s.index != nil {
		c.index = make(map[string]int32, len(s.index))
		for k, v := range s.index {
			c.index[k] = v
		}
	}
	c.events = append([]Event(nil), WindowEvents(s.events, t0, t1)...)
	return c
}

// Filter returns a new stream (sharing a copy of the node table, so ids
// stay stable) containing the events for which keep returns true.
func (s *Stream) Filter(keep func(i int, e Event) bool) *Stream {
	c := &Stream{names: append([]string(nil), s.names...), sorted: s.sorted}
	if s.index != nil {
		c.index = make(map[string]int32, len(s.index))
		for k, v := range s.index {
			c.index[k] = v
		}
	}
	for i, e := range s.events {
		if keep(i, e) {
			c.events = append(c.events, e)
		}
	}
	return c
}

// ShiftTime adds offset to every timestamp.
func (s *Stream) ShiftTime(offset int64) {
	for i := range s.events {
		s.events[i].T += offset
	}
}

// Validate checks internal invariants: node ids in range and no self
// loops. It returns the first violation found, or nil.
func (s *Stream) Validate() error {
	n := int32(len(s.names))
	for i, e := range s.events {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("%w: event %d = (%d,%d,%d)", ErrBadNodeID, i, e.U, e.V, e.T)
		}
		if e.U == e.V {
			return fmt.Errorf("%w: event %d at t=%d", ErrSelfLoop, i, e.T)
		}
	}
	return nil
}
