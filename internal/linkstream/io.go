package linkstream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is the one used by the public repositories the paper
// draws its datasets from (KONECT-style edge lists): one event per line,
//
//	<u> <v> <t>
//
// with whitespace-separated fields, '#' or '%' comment lines, and blank
// lines ignored. Node fields are arbitrary tokens and are interned in
// order of first appearance.

// DefaultMaxLineBytes is the line-length cap ReadEvents applies when
// ReadOptions.MaxLineBytes is unset.
const DefaultMaxLineBytes = 1 << 20

// ReadOptions configures ReadEventsWith.
type ReadOptions struct {
	// MaxLineBytes caps the length of one input line; <= 0 selects
	// DefaultMaxLineBytes. Inputs produced by some exporters carry very
	// long trailing comment or metadata lines, which a larger cap
	// admits without growing per-line allocations for ordinary files.
	MaxLineBytes int
}

// ReadEvents parses events from r into the stream, returning the number of
// events added. Malformed lines abort with a positioned error. Lines are
// capped at DefaultMaxLineBytes; use ReadEventsWith to change the cap.
func (s *Stream) ReadEvents(r io.Reader) (int, error) {
	return s.ReadEventsWith(r, ReadOptions{})
}

// ReadEventsWith is ReadEvents with an explicit configuration. A line
// exceeding the cap aborts with an error naming the offending line
// number (wrapping bufio.ErrTooLong) instead of a bare scanner error.
func (s *Stream) ReadEventsWith(r io.Reader, opt ReadOptions) (int, error) {
	maxLine := opt.MaxLineBytes
	if maxLine <= 0 {
		maxLine = DefaultMaxLineBytes
	}
	sc := bufio.NewScanner(r)
	initial := 64 * 1024
	if initial > maxLine {
		initial = maxLine
	}
	sc.Buffer(make([]byte, 0, initial), maxLine)
	added, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return added, fmt.Errorf("linkstream: line %d: want at least 3 fields, got %d", lineNo, len(fields))
		}
		t, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return added, fmt.Errorf("linkstream: line %d: bad timestamp %q: %v", lineNo, fields[2], err)
		}
		if err := s.Add(fields[0], fields[1], t); err != nil {
			return added, fmt.Errorf("linkstream: line %d: %v", lineNo, err)
		}
		added++
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The overflow happened on the line after the last one
			// successfully scanned.
			return added, fmt.Errorf("linkstream: line %d: longer than %d bytes: %w", lineNo+1, maxLine, err)
		}
		return added, fmt.Errorf("linkstream: read: %v", err)
	}
	return added, nil
}

// WriteTo writes the stream in the edge-list format accepted by ReadEvents,
// preceded by a comment header. It returns the number of bytes written.
func (s *Stream) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	c, err := fmt.Fprintf(bw, "# link stream: %d nodes, %d events\n", s.NumNodes(), s.NumEvents())
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, e := range s.events {
		c, err = fmt.Fprintf(bw, "%s %s %d\n", s.names[e.U], s.names[e.V], e.T)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}
