package linkstream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is the one used by the public repositories the paper
// draws its datasets from (KONECT-style edge lists): one event per line,
//
//	<u> <v> <t>
//
// with whitespace-separated fields, '#' or '%' comment lines, and blank
// lines ignored. Node fields are arbitrary tokens and are interned in
// order of first appearance.

// ReadEvents parses events from r into the stream, returning the number of
// events added. Malformed lines abort with a positioned error.
func (s *Stream) ReadEvents(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	added, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return added, fmt.Errorf("linkstream: line %d: want at least 3 fields, got %d", lineNo, len(fields))
		}
		t, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return added, fmt.Errorf("linkstream: line %d: bad timestamp %q: %v", lineNo, fields[2], err)
		}
		if err := s.Add(fields[0], fields[1], t); err != nil {
			return added, fmt.Errorf("linkstream: line %d: %v", lineNo, err)
		}
		added++
	}
	if err := sc.Err(); err != nil {
		return added, fmt.Errorf("linkstream: read: %v", err)
	}
	return added, nil
}

// WriteTo writes the stream in the edge-list format accepted by ReadEvents,
// preceded by a comment header. It returns the number of bytes written.
func (s *Stream) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	c, err := fmt.Fprintf(bw, "# link stream: %d nodes, %d events\n", s.NumNodes(), s.NumEvents())
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, e := range s.events {
		c, err = fmt.Fprintf(bw, "%s %s %d\n", s.names[e.U], s.names[e.V], e.T)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}
