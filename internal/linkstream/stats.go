package linkstream

// Day is the number of time units in one day at the paper's 1-second
// timestamp resolution. Activity levels in the paper (messages per person
// per day) are expressed against this unit.
const Day int64 = 86400

// Stats summarises the activity of a link stream with the quantities used
// throughout the paper's evaluation (Section 5 and 6).
type Stats struct {
	Nodes    int   // interned nodes
	Active   int   // nodes appearing in at least one event
	Events   int   // number of events
	Span     int64 // t1 - t0 + 1 (time units)
	Distinct int   // distinct timestamps

	// EventsPerNodePerDay is the paper's "activity": number of links per
	// active node per day (each event counts once, for its source node in
	// the directed reading; the paper counts "messages sent ... per person
	// per day" which is events / persons / days).
	EventsPerNodePerDay float64

	// MeanInterContact is the mean, over active nodes, of the node's span
	// divided by its number of events: the average time a node waits
	// between two consecutive links. For time-uniform networks this is the
	// T/(N(n-1)) quantity of Figure 6 (left).
	MeanInterContact float64
}

// ComputeStats scans the stream once and returns its Stats.
// An empty stream yields the zero Stats.
func (s *Stream) ComputeStats() Stats {
	st := Stats{Nodes: s.NumNodes(), Events: s.NumEvents()}
	if len(s.events) == 0 {
		return st
	}
	s.Sort()
	st.Span = s.Duration()

	prevT := s.events[0].T - 1
	for _, e := range s.events {
		if e.T != prevT {
			st.Distinct++
			prevT = e.T
		}
	}

	type nodeAcc struct {
		count    int
		min, max int64
	}
	acc := make([]nodeAcc, s.NumNodes())
	touch := func(id int32, t int64) {
		a := &acc[id]
		if a.count == 0 {
			a.min, a.max = t, t
		} else {
			if t < a.min {
				a.min = t
			}
			if t > a.max {
				a.max = t
			}
		}
		a.count++
	}
	for _, e := range s.events {
		touch(e.U, e.T)
		touch(e.V, e.T)
	}

	var sumIC float64
	for i := range acc {
		a := &acc[i]
		if a.count == 0 {
			continue
		}
		st.Active++
		// A node with c events over span w waits on average w/c between
		// links (w measured over the whole period of study so that rarely
		// active nodes report long waits).
		sumIC += float64(st.Span) / float64(a.count)
	}
	if st.Active > 0 {
		days := float64(st.Span) / float64(Day)
		if days > 0 {
			st.EventsPerNodePerDay = float64(st.Events) / float64(st.Active) / days
		}
		st.MeanInterContact = sumIC / float64(st.Active)
	}
	return st
}

// DegreeCounts returns, for every node id, the number of events the node
// participates in (as either endpoint).
func (s *Stream) DegreeCounts() []int {
	deg := make([]int, s.NumNodes())
	for _, e := range s.events {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// DistinctTimes returns the sorted distinct timestamps of the stream.
// The stream is sorted as a side effect.
func (s *Stream) DistinctTimes() []int64 {
	s.Sort()
	var ts []int64
	for i, e := range s.events {
		if i == 0 || e.T != ts[len(ts)-1] {
			ts = append(ts, e.T)
		}
		_ = i
	}
	return ts
}
