package linkstream

// Columnar binary stream format (LSC): the out-of-core ingest
// substrate. Unlike the row-oriented LSB codec (binary.go), which must
// be decoded front to back, LSC stores the stream as three parallel
// column arrays — times (int64), sources and destinations (int32) —
// behind a fixed-size index header, so a reader can address any event
// span directly in the file bytes without parsing anything it does not
// need. The header carries the node table, event count, time min/max,
// the stream resolution, a sorted/canonical flag pair, and a sparse
// time→offset skip index sampling every SkipEvery-th event, so a
// windowed [start, end) slice binary-searches the skip index and then
// touches only the pages of its own span.
//
// Layout (all fixed-width fields little-endian):
//
//	magic "LSC" + version byte (1)
//	u32 flags                     bit0 sorted, bit1 canonical (U < V)
//	u64 nodeCount, u64 eventCount
//	i64 timeMin, i64 timeMax, i64 resolution (0 = unknown)
//	u64 namesOff, u64 namesLen    node table: uvarint len + bytes each
//	u64 timesOff                  int64 column, 8-byte aligned
//	u64 usOff, u64 vsOff          int32 columns
//	u64 skipOff, u64 skipCount    (i64 time, u64 index) pairs, 8-aligned
//	u64 skipEvery                 sampling stride the writer used
//
// Readers never reinterpret the byte slice as typed slices: all column
// access goes through binary.LittleEndian, which is alignment-safe for
// arbitrary input (mmap regions, io.ReadAll buffers, fuzzer corpora)
// and compiles to single loads on the platforms we care about.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Columnar format constants.
const (
	columnarVersion    = 1
	columnarHeaderSize = 112

	columnarFlagSorted    = 1 << 0 // events stored in Sort order (T, U, V)
	columnarFlagCanonical = 1 << 1 // every event already has U < V

	// DefaultSkipEvery is the skip-index stride WriteColumnar uses when
	// ColumnarOptions.SkipEvery is unset: one (time, offset) entry per
	// 4096 events ≈ 16 B of index per 64 KiB of time column.
	DefaultSkipEvery = 4096
)

var columnarMagic = [3]byte{'L', 'S', 'C'}

// ErrBadColumnarMagic is returned when the input does not start with
// the columnar magic bytes.
var ErrBadColumnarMagic = errors.New("linkstream: columnar: bad magic (not an LSC stream)")

// IsColumnarMagic reports whether b begins with the columnar (LSC)
// stream magic. It needs at least 4 bytes to answer.
func IsColumnarMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == 'L' && b[1] == 'S' && b[2] == 'C'
}

// IsBinaryMagic reports whether b begins with the row-binary (LSB)
// stream magic. It needs at least 4 bytes to answer.
func IsBinaryMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == 'L' && b[1] == 'S' && b[2] == 'B'
}

// ColumnarOptions configures WriteColumnar.
type ColumnarOptions struct {
	// SkipEvery is the skip-index sampling stride in events; one entry
	// is written for every SkipEvery-th event. <= 0 selects
	// DefaultSkipEvery.
	SkipEvery int
}

// WriteColumnar encodes the stream in the columnar (LSC) format.
// The events are written in their current order; call Sort first to
// produce a file the engine can consume without re-sorting (tsconvert
// always does). The sorted header flag is set only when the stream is
// known sorted, and the canonical flag only when every event already
// has U < V.
func (s *Stream) WriteColumnar(w io.Writer, opt ColumnarOptions) error {
	every := opt.SkipEvery
	if every <= 0 {
		every = DefaultSkipEvery
	}

	// Node table blob: uvarint(len) + bytes per name, in id order.
	var names bytes.Buffer
	var vbuf [binary.MaxVarintLen64]byte
	for _, name := range s.names {
		n := binary.PutUvarint(vbuf[:], uint64(len(name)))
		names.Write(vbuf[:n])
		names.WriteString(name)
	}

	flags := uint32(0)
	if s.sorted {
		flags |= columnarFlagSorted
	}
	canonical := true
	var tMin, tMax int64
	for i, e := range s.events {
		if e.U > e.V {
			canonical = false
		}
		if i == 0 || e.T < tMin {
			tMin = e.T
		}
		if i == 0 || e.T > tMax {
			tMax = e.T
		}
	}
	if canonical {
		flags |= columnarFlagCanonical
	}
	var res int64
	if s.sorted {
		res = EventsResolution(s.events)
	}

	ec := int64(len(s.events))
	namesOff := int64(columnarHeaderSize)
	timesOff := align8(namesOff + int64(names.Len()))
	usOff := timesOff + 8*ec
	vsOff := usOff + 4*ec
	skipOff := align8(vsOff + 4*ec)
	skipCount := int64(0)
	if ec > 0 && s.sorted {
		// Only sorted files carry a skip index: windowed slicing needs
		// monotone times to binary-search against.
		skipCount = (ec + int64(every) - 1) / int64(every)
	}

	hdr := make([]byte, columnarHeaderSize)
	copy(hdr, columnarMagic[:])
	hdr[3] = columnarVersion
	le := binary.LittleEndian
	le.PutUint32(hdr[4:], flags)
	le.PutUint64(hdr[8:], uint64(len(s.names)))
	le.PutUint64(hdr[16:], uint64(ec))
	le.PutUint64(hdr[24:], uint64(tMin))
	le.PutUint64(hdr[32:], uint64(tMax))
	le.PutUint64(hdr[40:], uint64(res))
	le.PutUint64(hdr[48:], uint64(namesOff))
	le.PutUint64(hdr[56:], uint64(names.Len()))
	le.PutUint64(hdr[64:], uint64(timesOff))
	le.PutUint64(hdr[72:], uint64(usOff))
	le.PutUint64(hdr[80:], uint64(vsOff))
	le.PutUint64(hdr[88:], uint64(skipOff))
	le.PutUint64(hdr[96:], uint64(skipCount))
	le.PutUint64(hdr[104:], uint64(every))

	// bufio sticks the first write error, so a single Flush check at
	// the end observes any failure along the way.
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.Write(hdr)
	bw.Write(names.Bytes())
	writePad(bw, timesOff-(namesOff+int64(names.Len())))
	var cell [8]byte
	for _, e := range s.events {
		le.PutUint64(cell[:], uint64(e.T))
		bw.Write(cell[:8])
	}
	for _, e := range s.events {
		le.PutUint32(cell[:], uint32(e.U))
		bw.Write(cell[:4])
	}
	for _, e := range s.events {
		le.PutUint32(cell[:], uint32(e.V))
		bw.Write(cell[:4])
	}
	writePad(bw, skipOff-(vsOff+4*ec))
	for k := int64(0); k < skipCount; k++ {
		i := k * int64(every)
		le.PutUint64(cell[:], uint64(s.events[i].T))
		bw.Write(cell[:8])
		le.PutUint64(cell[:], uint64(i))
		bw.Write(cell[:8])
	}
	return bw.Flush()
}

func align8(off int64) int64 { return (off + 7) &^ 7 }

func writePad(w *bufio.Writer, n int64) {
	for ; n > 0; n-- {
		w.WriteByte(0)
	}
}

// Columnar is a read-only view over the bytes of a columnar (LSC)
// stream — typically an mmap region from OpenMapped, so column reads
// fault in only the pages they touch and the file bytes themselves are
// the storage: opening materialises nothing beyond the node table.
// Methods are safe for concurrent use.
type Columnar struct {
	data  []byte
	names []string

	flags     uint32
	events    int
	tMin      int64
	tMax      int64
	res       int64
	timesOff  int
	usOff     int
	vsOff     int
	skipOff   int
	skipCount int

	closer    func() error
	sliceHits atomic.Int64
}

// OpenColumnar opens a columnar stream over data, which the caller
// keeps alive (and unmodified) for the lifetime of the view. The
// header, section bounds, node table and skip index are validated up
// front; event columns are validated lazily as they are materialised.
func OpenColumnar(data []byte) (*Columnar, error) {
	return openColumnar(data, nil)
}

func openColumnar(data []byte, closer func() error) (*Columnar, error) {
	if len(data) >= 4 && !IsColumnarMagic(data) {
		return nil, ErrBadColumnarMagic
	}
	if len(data) < columnarHeaderSize {
		return nil, fmt.Errorf("linkstream: columnar: header: file is %d bytes, want at least %d", len(data), columnarHeaderSize)
	}
	if data[3] != columnarVersion {
		return nil, fmt.Errorf("linkstream: columnar: version %d not supported (this build reads version %d)", data[3], columnarVersion)
	}
	le := binary.LittleEndian
	flags := le.Uint32(data[4:])
	nodeCount := le.Uint64(data[8:])
	eventCount := le.Uint64(data[16:])
	tMin := int64(le.Uint64(data[24:]))
	tMax := int64(le.Uint64(data[32:]))
	res := int64(le.Uint64(data[40:]))
	namesOff := le.Uint64(data[48:])
	namesLen := le.Uint64(data[56:])
	timesOff := le.Uint64(data[64:])
	usOff := le.Uint64(data[72:])
	vsOff := le.Uint64(data[80:])
	skipOff := le.Uint64(data[88:])
	skipCount := le.Uint64(data[96:])

	size := uint64(len(data))
	section := func(name string, off, length uint64) error {
		if off < columnarHeaderSize || off > size || length > size-off {
			return fmt.Errorf("linkstream: columnar: %s section: offset %d length %d outside file of %d bytes", name, off, length, size)
		}
		return nil
	}
	if eventCount > size/8 {
		return nil, fmt.Errorf("linkstream: columnar: header: event count %d implausible for a %d-byte file", eventCount, size)
	}
	if nodeCount > namesLen || nodeCount > math.MaxInt32 {
		return nil, fmt.Errorf("linkstream: columnar: header: node count %d implausible for a %d-byte node table", nodeCount, namesLen)
	}
	if err := section("names", namesOff, namesLen); err != nil {
		return nil, err
	}
	if err := section("times", timesOff, 8*eventCount); err != nil {
		return nil, err
	}
	if err := section("sources", usOff, 4*eventCount); err != nil {
		return nil, err
	}
	if err := section("destinations", vsOff, 4*eventCount); err != nil {
		return nil, err
	}
	if skipCount > size/16 {
		return nil, fmt.Errorf("linkstream: columnar: skip section: entry count %d implausible for a %d-byte file", skipCount, size)
	}
	if err := section("skip", skipOff, 16*skipCount); err != nil {
		return nil, err
	}

	names := make([]string, 0, nodeCount)
	off, end := namesOff, namesOff+namesLen
	for i := uint64(0); i < nodeCount; i++ {
		l, n := binary.Uvarint(data[off:end])
		if n <= 0 {
			return nil, fmt.Errorf("linkstream: columnar: names section: node %d at offset %d: bad length varint", i, off)
		}
		off += uint64(n)
		if l > end-off {
			return nil, fmt.Errorf("linkstream: columnar: names section: node %d at offset %d: name of %d bytes overruns the section", i, off, l)
		}
		names = append(names, string(data[off:off+l]))
		off += l
	}

	c := &Columnar{
		data:      data,
		names:     names,
		flags:     flags,
		events:    int(eventCount),
		tMin:      tMin,
		tMax:      tMax,
		res:       res,
		timesOff:  int(timesOff),
		usOff:     int(usOff),
		vsOff:     int(vsOff),
		skipOff:   int(skipOff),
		skipCount: int(skipCount),
		closer:    closer,
	}
	prev := -1
	for k := 0; k < c.skipCount; k++ {
		idx := c.skipIdx(k)
		if idx < 0 || idx >= c.events || idx <= prev {
			return nil, fmt.Errorf("linkstream: columnar: skip section: entry %d at offset %d: event index %d out of order or out of range (%d events)", k, c.skipOff+16*k, idx, c.events)
		}
		prev = idx
	}
	return c, nil
}

// OpenMapped opens the columnar stream file at path with the file
// bytes memory-mapped read-only where the platform supports it
// (build-tagged; other platforms fall back to reading the whole file).
// Close releases the mapping.
func OpenMapped(path string) (*Columnar, error) {
	data, closer, err := openMappedBytes(path)
	if err != nil {
		return nil, err
	}
	c, err := openColumnar(data, closer)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, err
	}
	return c, nil
}

// Close releases the underlying mapping (or read buffer). The view
// must not be used afterwards. Close is a no-op for views opened over
// caller-owned bytes.
func (c *Columnar) Close() error {
	if c.closer == nil {
		return nil
	}
	closer := c.closer
	c.closer = nil
	c.data = nil
	return closer()
}

// NumNodes returns the node-table size.
func (c *Columnar) NumNodes() int { return len(c.names) }

// NumEvents returns the event count.
func (c *Columnar) NumEvents() int { return c.events }

// NodeName returns the interned name of node id, panicking if id is
// out of range (slice indexing semantics, like Stream.NodeName).
func (c *Columnar) NodeName(id int32) string { return c.names[id] }

// Sorted reports whether the file stores events in the engine's sort
// order (T, then U, then V).
func (c *Columnar) Sorted() bool { return c.flags&columnarFlagSorted != 0 }

// Canonical reports whether every stored event already has U < V.
func (c *Columnar) Canonical() bool { return c.flags&columnarFlagCanonical != 0 }

// TimeMin and TimeMax return the header's time bounds (both zero for
// an empty stream).
func (c *Columnar) TimeMin() int64 { return c.tMin }

// TimeMax returns the header's maximum timestamp.
func (c *Columnar) TimeMax() int64 { return c.tMax }

// Duration returns the stream span in time units, tMax - tMin + 1,
// mirroring Stream.Duration. Zero for an empty stream.
func (c *Columnar) Duration() int64 {
	if c.events == 0 {
		return 0
	}
	return c.tMax - c.tMin + 1
}

// Resolution returns the header's stream resolution: the smallest
// positive gap between consecutive timestamps, 1 if unknown (the file
// was written unsorted) — mirroring Stream.Resolution's fallback.
func (c *Columnar) Resolution() int64 {
	if c.res > 0 {
		return c.res
	}
	return 1
}

// SliceHits returns how many windowed EngineEvents calls resolved
// their span through the skip index rather than scanning the stream —
// the out-of-core promise that a window touches only its own pages.
func (c *Columnar) SliceHits() int64 { return c.sliceHits.Load() }

// SkipEntries returns the number of entries in the sparse time→offset
// skip index (0 for unsorted files, which carry none).
func (c *Columnar) SkipEntries() int { return c.skipCount }

// Size returns the byte length of the underlying columnar file.
func (c *Columnar) Size() int64 { return int64(len(c.data)) }

// HeaderHash returns a hex SHA-256 fingerprint of the stream's
// identity sections: the fixed header (version, flags, node and event
// counts, time span, resolution, section offsets), the node table and
// the sparse skip index. Because the skip index samples an event time
// every stride, the fingerprint pins the stream's content shape
// without reading the event columns — it is the stream reference the
// serving layer embeds in job specs: a file that was re-converted,
// re-sorted, renamed in place or regenerated with different events
// hashes differently, while bit-identical copies at different paths
// hash the same.
func (c *Columnar) HeaderHash() string {
	h := sha256.New()
	h.Write(c.data[:columnarHeaderSize])
	le := binary.LittleEndian
	namesOff := le.Uint64(c.data[48:])
	namesLen := le.Uint64(c.data[56:])
	h.Write(c.data[namesOff : namesOff+namesLen])
	h.Write(c.data[c.skipOff : c.skipOff+16*c.skipCount])
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Columnar) timeAt(i int) int64 {
	return int64(binary.LittleEndian.Uint64(c.data[c.timesOff+8*i:]))
}

func (c *Columnar) uAt(i int) int32 {
	return int32(binary.LittleEndian.Uint32(c.data[c.usOff+4*i:]))
}

func (c *Columnar) vAt(i int) int32 {
	return int32(binary.LittleEndian.Uint32(c.data[c.vsOff+4*i:]))
}

func (c *Columnar) skipTime(k int) int64 {
	return int64(binary.LittleEndian.Uint64(c.data[c.skipOff+16*k:]))
}

func (c *Columnar) skipIdx(k int) int {
	return int(binary.LittleEndian.Uint64(c.data[c.skipOff+16*k+8:]))
}

// firstAtOrAfter returns the index of the first event with T >= t,
// narrowing through the sparse skip index first so the inner binary
// search touches at most one skip bucket of the time column.
func (c *Columnar) firstAtOrAfter(t int64) int {
	lo, hi := 0, c.events
	if c.skipCount > 0 {
		k := sort.Search(c.skipCount, func(i int) bool { return c.skipTime(i) >= t })
		if k > 0 {
			lo = c.skipIdx(k - 1)
		}
		if k < c.skipCount {
			if h := c.skipIdx(k) + 1; h < hi {
				hi = h
			}
		}
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return c.timeAt(lo+i) >= t })
}

// windowRange resolves [start, end) to an event index range on a
// sorted file. start >= end selects the whole stream.
func (c *Columnar) windowRange(start, end int64) (int, int) {
	if start >= end {
		return 0, c.events
	}
	c.sliceHits.Add(1)
	lo := c.firstAtOrAfter(start)
	hi := c.firstAtOrAfter(end)
	if hi < lo { // corrupt sorted flag; never on writer output
		hi = lo
	}
	return lo, hi
}

// materialize decodes events [lo, hi) into a fresh slice, validating
// node ids as it goes and optionally orienting each pair U < V.
func (c *Columnar) materialize(lo, hi int, orient bool) ([]Event, error) {
	n := int32(len(c.names))
	out := make([]Event, 0, hi-lo)
	for i := lo; i < hi; i++ {
		u, v := c.uAt(i), c.vAt(i)
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			return nil, fmt.Errorf("linkstream: columnar: events section: event %d at offset %d: bad node pair (%d,%d) with %d nodes", i, c.usOff+4*i, u, v, n)
		}
		if orient && u > v {
			u, v = v, u
		}
		out = append(out, Event{U: u, V: v, T: c.timeAt(i)})
	}
	return out, nil
}

// EngineEvents returns the events of [start, end) (start >= end
// selects the whole stream) in the engine's order — sorted by
// (T, U, V) and, when canonical is requested, with every pair oriented
// U < V. On a sorted file the span is located through the skip index
// and only its own column bytes are read; preSorted then reports true:
// no sort work was performed because the storage order already is the
// engine's order. Unsorted files are materialised in full and sorted
// here (preSorted false).
func (c *Columnar) EngineEvents(start, end int64, canonical bool) ([]Event, bool, error) {
	if c.Sorted() {
		lo, hi := c.windowRange(start, end)
		ev, err := c.materialize(lo, hi, canonical && !c.Canonical())
		if err != nil {
			return nil, false, err
		}
		return ev, true, nil
	}
	ev, err := c.materialize(0, c.events, false)
	if err != nil {
		return nil, false, err
	}
	SortEvents(ev)
	if start < end {
		ev = WindowEvents(ev, start, end)
	}
	if canonical && !c.Canonical() {
		for i, e := range ev {
			if e.U > e.V {
				ev[i].U, ev[i].V = e.V, e.U
			}
		}
	}
	return ev, false, nil
}

// Stream materialises the whole file into an in-memory Stream with
// the same node table, event order and sortedness.
func (c *Columnar) Stream() (*Stream, error) {
	ev, err := c.materialize(0, c.events, false)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		events: ev,
		names:  append([]string(nil), c.names...),
		sorted: c.Sorted(),
	}
	if len(c.names) > 0 {
		s.index = make(map[string]int32, len(c.names))
		for id, name := range c.names {
			s.index[name] = int32(id)
		}
	}
	return s, nil
}

// ReadColumnar decodes a columnar (LSC) stream from r, replacing the
// stream's contents. This is the streamed entry point — it reads r in
// full; to analyse a large file without holding a parsed copy, open it
// with OpenMapped instead and hand the view to the engine directly.
func (s *Stream) ReadColumnar(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("linkstream: columnar: read: %w", err)
	}
	c, err := OpenColumnar(data)
	if err != nil {
		return err
	}
	st, err := c.Stream()
	if err != nil {
		return err
	}
	*s = *st
	return nil
}

// ReadAny decodes a stream from r in whichever supported format its
// leading magic selects — columnar (LSC), row-binary (LSB), or the
// text edge list — replacing the stream's contents. Text streams whose
// first bytes happen to spell a magic prefix are not supported; write
// such corpora through the binary codecs.
func (s *Stream) ReadAny(r io.Reader) error {
	br := bufio.NewReader(r)
	head, _ := br.Peek(4)
	switch {
	case IsColumnarMagic(head):
		return s.ReadColumnar(br)
	case IsBinaryMagic(head):
		return s.ReadBinary(br)
	default:
		_, err := s.ReadEvents(br)
		return err
	}
}
