package linkstream

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// FuzzColumnarDecode throws arbitrary byte soup at the columnar (LSC)
// opener and the lazy column materialisation behind it. The
// invariants: no input panics; every rejection is a positioned error
// naming the section it refused (header, names, times, sources,
// destinations, skip, events); and a file that opens cleanly
// materialises only structurally valid streams — node ids in range, no
// self loops — or reports an events-section error.
func FuzzColumnarDecode(f *testing.F) {
	// Seed with real writer output at several shapes, then mutations of
	// it; the fuzzer takes it from there.
	seed := func(sorted bool, skipEvery, events int) []byte {
		rng := rand.New(rand.NewSource(int64(skipEvery*1000 + events)))
		s := New()
		names := []string{"a", "b", "c", "d"}
		for i := 0; i < events; i++ {
			u := names[rng.Intn(len(names))]
			v := names[rng.Intn(len(names))]
			if u == v {
				continue
			}
			s.Add(u, v, int64(rng.Intn(500)))
		}
		if sorted {
			s.Sort()
		}
		var buf bytes.Buffer
		s.WriteColumnar(&buf, ColumnarOptions{SkipEvery: skipEvery})
		return buf.Bytes()
	}
	f.Add(seed(true, 4, 100))
	f.Add(seed(true, 0, 1))
	f.Add(seed(false, 8, 50))
	f.Add(seed(true, 2, 0))
	valid := seed(true, 4, 100)
	for _, cut := range []int{3, 4, columnarHeaderSize - 1, columnarHeaderSize, len(valid) / 2} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	for _, off := range []int{3, 8, 16, 48, 64, 88, 96, columnarHeaderSize + 1} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xA5
		f.Add(mut)
	}
	f.Add([]byte("LSC\x01 short"))
	f.Add([]byte("not a columnar stream at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := OpenColumnar(data)
		if err != nil {
			if err != ErrBadColumnarMagic && !strings.Contains(err.Error(), "columnar") {
				t.Fatalf("open error not positioned: %v", err)
			}
			return
		}
		checkEvents := func(ev []Event, err error) {
			if err != nil {
				if !strings.Contains(err.Error(), "columnar") {
					t.Fatalf("decode error not positioned: %v", err)
				}
				return
			}
			n := int32(c.NumNodes())
			for i, e := range ev {
				if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V {
					t.Fatalf("event %d structurally invalid: %+v with %d nodes", i, e, n)
				}
			}
		}
		ev, _, err := c.EngineEvents(0, 0, true)
		checkEvents(ev, err)
		ev, _, err = c.EngineEvents(10, 200, false)
		checkEvents(ev, err)
		st, err := c.Stream()
		if err != nil {
			if !strings.Contains(err.Error(), "columnar") {
				t.Fatalf("Stream error not positioned: %v", err)
			}
			return
		}
		if verr := st.Validate(); verr != nil {
			t.Fatalf("materialised stream invalid: %v", verr)
		}
	})
}
