package linkstream

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// columnarFixture builds a random multi-edge stream, sorts it and
// returns both the stream and its columnar encoding.
func columnarFixture(t *testing.T, seed int64, skipEvery int) (*Stream, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := New()
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i := 0; i < 400; i++ {
		u := names[rng.Intn(len(names))]
		v := names[rng.Intn(len(names))]
		if u == v {
			continue
		}
		if err := s.Add(u, v, int64(rng.Intn(10_000)-500)); err != nil {
			t.Fatal(err)
		}
	}
	s.Sort()
	var buf bytes.Buffer
	if err := s.WriteColumnar(&buf, ColumnarOptions{SkipEvery: skipEvery}); err != nil {
		t.Fatal(err)
	}
	return s, buf.Bytes()
}

func TestColumnarRoundTrip(t *testing.T) {
	s, data := columnarFixture(t, 1, 16)
	c, err := OpenColumnar(data)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != s.NumNodes() || c.NumEvents() != s.NumEvents() {
		t.Fatalf("got %d nodes %d events, want %d nodes %d events",
			c.NumNodes(), c.NumEvents(), s.NumNodes(), s.NumEvents())
	}
	for i := 0; i < s.NumNodes(); i++ {
		if c.NodeName(int32(i)) != s.NodeName(int32(i)) {
			t.Fatalf("node %d: %q vs %q", i, c.NodeName(int32(i)), s.NodeName(int32(i)))
		}
	}
	if !c.Sorted() {
		t.Fatal("sorted flag lost")
	}
	t0, t1, _ := s.Span()
	if c.TimeMin() != t0 || c.TimeMax() != t1 {
		t.Fatalf("span [%d,%d], want [%d,%d]", c.TimeMin(), c.TimeMax(), t0, t1)
	}
	if c.Duration() != s.Duration() || c.Resolution() != s.Resolution() {
		t.Fatalf("duration/resolution %d/%d, want %d/%d",
			c.Duration(), c.Resolution(), s.Duration(), s.Resolution())
	}
	if c.SkipEntries() == 0 {
		t.Fatal("sorted file should carry a skip index")
	}

	// Full materialisation equals the stream, event for event.
	back, err := c.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEvents() != s.NumEvents() || !back.Sorted() {
		t.Fatalf("materialised %d events (sorted=%v)", back.NumEvents(), back.Sorted())
	}
	for i, e := range s.Events() {
		if back.Events()[i] != e {
			t.Fatalf("event %d: %+v vs %+v", i, back.Events()[i], e)
		}
	}
}

func TestColumnarEngineEventsWindows(t *testing.T) {
	s, data := columnarFixture(t, 2, 4)
	c, err := OpenColumnar(data)
	if err != nil {
		t.Fatal(err)
	}
	windows := [][2]int64{
		{0, 0},        // whole stream
		{-600, 11000}, // superset
		{100, 2000},
		{2000, 2001},
		{9999, 10500}, // tail
		{-500, -499},
		{4000, 4000}, // start >= end -> whole stream
	}
	for _, canonical := range []bool{false, true} {
		for _, w := range windows {
			want, _, err := s.Clone().EngineEvents(w[0], w[1], canonical)
			if err != nil {
				t.Fatal(err)
			}
			got, pre, err := c.EngineEvents(w[0], w[1], canonical)
			if err != nil {
				t.Fatal(err)
			}
			if !pre {
				t.Fatalf("window %v: sorted file must report preSorted", w)
			}
			if len(got) != len(want) {
				t.Fatalf("window %v canonical=%v: %d events, want %d", w, canonical, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("window %v canonical=%v event %d: %+v vs %+v", w, canonical, i, got[i], want[i])
				}
			}
		}
	}
	// Every windowed call (start < end) went through the skip index.
	if hits := c.SliceHits(); hits != 2*5 {
		t.Fatalf("SliceHits = %d, want 10", hits)
	}
}

func TestColumnarUnsortedFile(t *testing.T) {
	s := New()
	for _, e := range []struct {
		u, v string
		t    int64
	}{{"x", "y", 30}, {"y", "z", 10}, {"z", "x", 20}} {
		if err := s.Add(e.u, e.v, e.t); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteColumnar(&buf, ColumnarOptions{}); err != nil {
		t.Fatal(err)
	}
	c, err := OpenColumnar(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c.Sorted() {
		t.Fatal("unsorted stream must not set the sorted flag")
	}
	if c.SkipEntries() != 0 {
		t.Fatal("unsorted file must not carry a skip index")
	}
	got, pre, err := c.EngineEvents(15, 25, true)
	if err != nil {
		t.Fatal(err)
	}
	if pre {
		t.Fatal("unsorted file cannot be pre-sorted")
	}
	if len(got) != 1 || got[0].T != 20 || got[0].U > got[0].V {
		t.Fatalf("got %+v", got)
	}
	if c.SliceHits() != 0 {
		t.Fatal("unsorted path must not count slice hits")
	}
}

func TestColumnarVersionRejected(t *testing.T) {
	_, data := columnarFixture(t, 3, 0)
	bad := append([]byte(nil), data...)
	bad[3] = columnarVersion + 1
	if _, err := OpenColumnar(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want a version error", err)
	}
}

func TestColumnarBadMagic(t *testing.T) {
	if _, err := OpenColumnar([]byte("NOPE this is not a columnar stream, not even close, padding padding padding padding padding")); !errors.Is(err, ErrBadColumnarMagic) {
		t.Fatalf("err = %v, want ErrBadColumnarMagic", err)
	}
}

func TestColumnarTruncated(t *testing.T) {
	_, data := columnarFixture(t, 4, 8)
	for _, cut := range []int{0, 3, 4, columnarHeaderSize - 1, columnarHeaderSize, len(data) / 2, len(data) - 1} {
		if _, err := OpenColumnar(data[:cut]); err == nil {
			t.Fatalf("truncation at %d should error", cut)
		}
	}
}

func TestColumnarCorruptNodeID(t *testing.T) {
	s := New()
	if err := s.Add("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	s.Sort()
	var buf bytes.Buffer
	if err := s.WriteColumnar(&buf, ColumnarOptions{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	c, err := OpenColumnar(data)
	if err != nil {
		t.Fatal(err)
	}
	// Stomp the single source id with an out-of-range value.
	data[c.usOff] = 0xFF
	data[c.usOff+1] = 0xFF
	if _, _, err := c.EngineEvents(0, 0, false); err == nil || !strings.Contains(err.Error(), "events section") {
		t.Fatalf("err = %v, want an events-section error", err)
	}
}

func TestColumnarEmptyStream(t *testing.T) {
	s := New()
	s.AddNode("lonely")
	var buf bytes.Buffer
	if err := s.WriteColumnar(&buf, ColumnarOptions{}); err != nil {
		t.Fatal(err)
	}
	c, err := OpenColumnar(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEvents() != 0 || c.NumNodes() != 1 || c.Duration() != 0 {
		t.Fatalf("events=%d nodes=%d duration=%d", c.NumEvents(), c.NumNodes(), c.Duration())
	}
	ev, _, err := c.EngineEvents(0, 0, true)
	if err != nil || len(ev) != 0 {
		t.Fatalf("ev=%v err=%v", ev, err)
	}
}

func TestOpenMappedMatchesOpenColumnar(t *testing.T) {
	s, data := columnarFixture(t, 5, 8)
	path := filepath.Join(t.TempDir(), "stream.lsc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	got, pre, err := m.EngineEvents(0, 0, false)
	if err != nil || !pre {
		t.Fatalf("pre=%v err=%v", pre, err)
	}
	for i, e := range s.Events() {
		if got[i] != e {
			t.Fatalf("event %d: %+v vs %+v", i, got[i], e)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // double Close is a no-op
		t.Fatal(err)
	}
	if _, err := OpenMapped(filepath.Join(t.TempDir(), "missing.lsc")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestReadColumnarAndReadAny(t *testing.T) {
	s, data := columnarFixture(t, 6, 0)

	back := New()
	if err := back.ReadColumnar(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if back.NumEvents() != s.NumEvents() {
		t.Fatalf("ReadColumnar: %d events, want %d", back.NumEvents(), s.NumEvents())
	}

	// ReadAny dispatches on the leading magic: LSC, LSB, then text.
	var lsb bytes.Buffer
	if err := s.WriteBinary(&lsb); err != nil {
		t.Fatal(err)
	}
	for name, input := range map[string][]byte{
		"columnar": data,
		"binary":   lsb.Bytes(),
		"text":     []byte("a b 1\nb c 2\n"),
	} {
		any := New()
		if err := any.ReadAny(bytes.NewReader(input)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if any.NumEvents() == 0 {
			t.Fatalf("%s: no events", name)
		}
	}
}

// TestColumnarHeaderHash pins the HeaderHash contract: identical bytes
// hash identically (the hash is a content fingerprint, not a path
// identity), while a different stream, a different skip stride, or a
// single flipped header byte all change it.
func TestColumnarHeaderHash(t *testing.T) {
	_, data := columnarFixture(t, 1, 16)
	a, err := OpenColumnar(data)
	if err != nil {
		t.Fatal(err)
	}
	h := a.HeaderHash()
	if len(h) != 64 {
		t.Fatalf("hash %q is not hex sha256", h)
	}
	b, err := OpenColumnar(append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	if b.HeaderHash() != h {
		t.Fatal("bit-identical copies must hash the same")
	}

	_, other := columnarFixture(t, 2, 16)
	oc, err := OpenColumnar(other)
	if err != nil {
		t.Fatal(err)
	}
	if oc.HeaderHash() == h {
		t.Fatal("different streams must hash differently")
	}

	_, restride := columnarFixture(t, 1, 8)
	rc, err := OpenColumnar(restride)
	if err != nil {
		t.Fatal(err)
	}
	if rc.HeaderHash() == h {
		t.Fatal("a re-converted file (different skip stride) must hash differently")
	}

	mut := append([]byte(nil), data...)
	mut[24] ^= 0x01 // timeMin low byte
	mc, err := OpenColumnar(mut)
	if err != nil {
		t.Fatal(err)
	}
	if mc.HeaderHash() == h {
		t.Fatal("a mutated header must hash differently")
	}

	// The mapped open path must agree with the in-memory one.
	dir := t.TempDir()
	path := filepath.Join(dir, "s.lsc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.HeaderHash() != h {
		t.Fatal("OpenMapped must hash like OpenColumnar")
	}
}
