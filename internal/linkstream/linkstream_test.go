package linkstream

import (
	"bufio"
	"errors"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// figure1 builds the link stream of the paper's Figure 1: nodes a..e,
// a handful of events over three aggregation windows.
func figure1(t *testing.T) *Stream {
	t.Helper()
	s := New()
	adds := []struct {
		u, v string
		t    int64
	}{
		{"e", "d", 1}, {"a", "b", 2}, {"d", "c", 4},
		{"c", "b", 5}, {"e", "a", 6}, {"a", "b", 8},
		{"d", "e", 9}, {"c", "b", 10}, {"b", "a", 11},
	}
	for _, a := range adds {
		if err := s.Add(a.u, a.v, a.t); err != nil {
			t.Fatalf("Add(%v): %v", a, err)
		}
	}
	return s
}

func TestAddInterning(t *testing.T) {
	s := New()
	if err := s.Add("x", "y", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("y", "x", 20); err != nil {
		t.Fatal(err)
	}
	if got := s.NumNodes(); got != 2 {
		t.Fatalf("NumNodes = %d, want 2", got)
	}
	id, ok := s.NodeID("x")
	if !ok || id != 0 {
		t.Fatalf("NodeID(x) = %d,%v want 0,true", id, ok)
	}
	if name := s.NodeName(1); name != "y" {
		t.Fatalf("NodeName(1) = %q, want y", name)
	}
	if s.NumEvents() != 2 {
		t.Fatalf("NumEvents = %d, want 2", s.NumEvents())
	}
}

func TestSelfLoopRejected(t *testing.T) {
	s := New()
	if err := s.Add("a", "a", 1); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("Add self loop: err = %v, want ErrSelfLoop", err)
	}
	s.AddNode("a")
	s.AddNode("b")
	if err := s.AddID(1, 1, 5); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("AddID self loop: err = %v, want ErrSelfLoop", err)
	}
}

func TestAddIDRange(t *testing.T) {
	s := New()
	s.AddNode("a")
	if err := s.AddID(0, 3, 1); !errors.Is(err, ErrBadNodeID) {
		t.Fatalf("AddID out of range: err = %v, want ErrBadNodeID", err)
	}
	if err := s.AddID(-1, 0, 1); !errors.Is(err, ErrBadNodeID) {
		t.Fatalf("AddID negative: err = %v, want ErrBadNodeID", err)
	}
}

func TestSortAndSpan(t *testing.T) {
	s := figure1(t)
	t0, t1, ok := s.Span()
	if !ok || t0 != 1 || t1 != 11 {
		t.Fatalf("Span = %d,%d,%v want 1,11,true", t0, t1, ok)
	}
	if !s.Sorted() {
		t.Fatal("stream should be sorted after Span")
	}
	ev := s.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].T < ev[i-1].T {
			t.Fatalf("events not sorted at %d: %v before %v", i, ev[i-1], ev[i])
		}
	}
	if got := s.Duration(); got != 11 {
		t.Fatalf("Duration = %d, want 11", got)
	}
}

func TestEmptySpan(t *testing.T) {
	s := New()
	if _, _, ok := s.Span(); ok {
		t.Fatal("Span of empty stream should report ok=false")
	}
	if d := s.Duration(); d != 0 {
		t.Fatalf("Duration of empty stream = %d, want 0", d)
	}
	if r := s.Resolution(); r != 1 {
		t.Fatalf("Resolution of empty stream = %d, want 1", r)
	}
}

func TestResolution(t *testing.T) {
	s := New()
	for _, tt := range []int64{0, 100, 130, 1000} {
		if err := s.Add("a", "b", tt); err != nil {
			t.Fatal(err)
		}
	}
	if r := s.Resolution(); r != 30 {
		t.Fatalf("Resolution = %d, want 30", r)
	}
}

func TestNormalizeDedup(t *testing.T) {
	s := New()
	check := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	check(s.Add("a", "b", 5))
	check(s.Add("b", "a", 5)) // same undirected link, reversed
	check(s.Add("a", "b", 5)) // exact duplicate
	check(s.Add("a", "b", 6))
	s.Normalize()
	s.Dedup()
	if s.NumEvents() != 2 {
		t.Fatalf("after Normalize+Dedup: %d events, want 2", s.NumEvents())
	}
	for _, e := range s.Events() {
		if e.U >= e.V {
			t.Fatalf("event not normalized: %+v", e)
		}
	}
}

func TestDedupKeepsDirectedDistinct(t *testing.T) {
	s := New()
	if err := s.Add("a", "b", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("b", "a", 5); err != nil {
		t.Fatal(err)
	}
	s.Dedup()
	if s.NumEvents() != 2 {
		t.Fatalf("directed dedup removed reversed event: %d events, want 2", s.NumEvents())
	}
}

func TestSliceTime(t *testing.T) {
	s := figure1(t)
	sub := s.SliceTime(4, 9)
	if sub.NumEvents() != 4 { // t = 4, 5, 6, 8
		t.Fatalf("SliceTime(4,9): %d events, want 4", sub.NumEvents())
	}
	if sub.NumNodes() != s.NumNodes() {
		t.Fatalf("SliceTime should keep node table: %d vs %d", sub.NumNodes(), s.NumNodes())
	}
	for _, e := range sub.Events() {
		if e.T < 4 || e.T >= 9 {
			t.Fatalf("event outside slice: %+v", e)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := figure1(t)
	c := s.Clone()
	if err := c.Add("z", "a", 100); err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() == c.NumNodes() {
		t.Fatal("clone shares node table with original")
	}
	if s.NumEvents() == c.NumEvents() {
		t.Fatal("clone shares event slice with original")
	}
}

func TestShiftTime(t *testing.T) {
	s := figure1(t)
	s.ShiftTime(-1)
	t0, _, _ := s.Span()
	if t0 != 0 {
		t.Fatalf("after ShiftTime(-1): t0 = %d, want 0", t0)
	}
}

func TestValidate(t *testing.T) {
	s := figure1(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate on good stream: %v", err)
	}
	s.events = append(s.events, Event{U: 0, V: 99, T: 1})
	if err := s.Validate(); !errors.Is(err, ErrBadNodeID) {
		t.Fatalf("Validate with bad id: %v, want ErrBadNodeID", err)
	}
	s.events[len(s.events)-1] = Event{U: 2, V: 2, T: 1}
	if err := s.Validate(); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("Validate with self loop: %v, want ErrSelfLoop", err)
	}
}

func TestStats(t *testing.T) {
	s := New()
	// Two nodes exchanging one message a day for 10 days.
	for d := int64(0); d < 10; d++ {
		if err := s.Add("a", "b", d*Day); err != nil {
			t.Fatal(err)
		}
	}
	st := s.ComputeStats()
	if st.Events != 10 || st.Nodes != 2 || st.Active != 2 {
		t.Fatalf("stats = %+v", st)
	}
	wantSpan := 9*Day + 1
	if st.Span != wantSpan {
		t.Fatalf("Span = %d, want %d", st.Span, wantSpan)
	}
	if st.Distinct != 10 {
		t.Fatalf("Distinct = %d, want 10", st.Distinct)
	}
	// 10 events / 2 persons / ~9 days ~= 0.55 events/person/day.
	if st.EventsPerNodePerDay < 0.5 || st.EventsPerNodePerDay > 0.62 {
		t.Fatalf("EventsPerNodePerDay = %v", st.EventsPerNodePerDay)
	}
	// Each node has 10 events over the span: inter-contact ~ span/10.
	wantIC := float64(wantSpan) / 10
	if st.MeanInterContact != wantIC {
		t.Fatalf("MeanInterContact = %v, want %v", st.MeanInterContact, wantIC)
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Stream
	st := s.ComputeStats()
	if st != (Stats{}) {
		t.Fatalf("empty stats = %+v, want zero", st)
	}
}

func TestDegreeCounts(t *testing.T) {
	s := figure1(t)
	deg := s.DegreeCounts()
	total := 0
	for _, d := range deg {
		total += d
	}
	if total != 2*s.NumEvents() {
		t.Fatalf("degree sum = %d, want %d", total, 2*s.NumEvents())
	}
}

func TestDistinctTimes(t *testing.T) {
	s := New()
	for _, tt := range []int64{5, 5, 2, 9, 2} {
		if err := s.Add("a", "b", tt); err != nil {
			t.Fatal(err)
		}
	}
	got := s.DistinctTimes()
	want := []int64{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("DistinctTimes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DistinctTimes = %v, want %v", got, want)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := figure1(t)
	var buf strings.Builder
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back := New()
	n, err := back.ReadEvents(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != s.NumEvents() {
		t.Fatalf("round trip read %d events, want %d", n, s.NumEvents())
	}
	if back.NumNodes() != s.NumNodes() {
		t.Fatalf("round trip nodes = %d, want %d", back.NumNodes(), s.NumNodes())
	}
	a, b := s.Events(), back.Events()
	for i := range a {
		au, av := s.NodeName(a[i].U), s.NodeName(a[i].V)
		bu, bv := back.NodeName(b[i].U), back.NodeName(b[i].V)
		if au != bu || av != bv || a[i].T != b[i].T {
			t.Fatalf("event %d differs: (%s,%s,%d) vs (%s,%s,%d)", i, au, av, a[i].T, bu, bv, b[i].T)
		}
	}
}

func TestReadEventsComments(t *testing.T) {
	in := "# comment\n% konect comment\n\n a b 3 \nb c 4 extra-column\n"
	s := New()
	n, err := s.ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("read %d events, want 2", n)
	}
}

func TestReadEventsErrors(t *testing.T) {
	cases := []string{
		"a b\n",                          // too few fields
		"a b xyz\n",                      // bad timestamp
		"a a 4\n",                        // self loop
		"a b 999999999999999999999999\n", // overflow
	}
	for _, in := range cases {
		s := New()
		if _, err := s.ReadEvents(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadEvents(%q): expected error", in)
		}
	}
}

func TestReadEventsLineTooLong(t *testing.T) {
	// Line 3 blows the cap; the error must carry that line number and
	// wrap bufio.ErrTooLong.
	in := "a b 1\nb c 2\nc d 3 " + strings.Repeat("x", 256) + "\nd e 4\n"
	s := New()
	n, err := s.ReadEventsWith(strings.NewReader(in), ReadOptions{MaxLineBytes: 64})
	if err == nil {
		t.Fatal("expected an overflow error")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("error %v should wrap bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v should name line 3", err)
	}
	if n != 2 {
		t.Fatalf("read %d events before the overflow, want 2", n)
	}
}

func TestReadEventsWithLargerCap(t *testing.T) {
	// The same long line parses fine once the cap admits it, trailing
	// columns ignored.
	in := "a b 1\nc d 3 " + strings.Repeat("x", 4096) + "\n"
	s := New()
	if _, err := s.ReadEvents(strings.NewReader(in)); err != nil {
		t.Fatalf("default 1 MiB cap should admit a 4 KiB line: %v", err)
	}
	s = New()
	n, err := s.ReadEventsWith(strings.NewReader(in), ReadOptions{MaxLineBytes: 16 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("read %d events, want 2", n)
	}
}

// Property: sorting is a permutation (event multiset preserved) and
// WriteTo/ReadFrom round-trips arbitrary small streams.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		s.EnsureNodes(5)
		for _, r := range raw {
			u := int32(r % 5)
			v := int32((r / 5) % 5)
			if u == v {
				continue
			}
			if err := s.AddID(u, v, int64(rng.Intn(1000))); err != nil {
				return false
			}
		}
		var buf strings.Builder
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		back := New()
		if _, err := back.ReadEvents(strings.NewReader(buf.String())); err != nil {
			return false
		}
		if back.NumEvents() != s.NumEvents() {
			return false
		}
		// Compare as multisets of (name, name, t) tuples: interning order
		// differs between the two streams, so ids are not comparable.
		key := func(st *Stream, e Event) string {
			return st.NodeName(e.U) + " " + st.NodeName(e.V) + " " + strconv.FormatInt(e.T, 10)
		}
		var ka, kb []string
		for _, e := range s.Events() {
			ka = append(ka, key(s, e))
		}
		for _, e := range back.Events() {
			kb = append(kb, key(back, e))
		}
		sort.Strings(ka)
		sort.Strings(kb)
		for i := range ka {
			if ka[i] != kb[i] {
				return false
			}
		}
		return back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
