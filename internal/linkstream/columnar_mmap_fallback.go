//go:build !unix

package linkstream

import "os"

// openMappedBytes on platforms without a usable mmap falls back to
// reading the whole file; OpenMapped keeps working, just without the
// touch-only-your-span page economy.
func openMappedBytes(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
