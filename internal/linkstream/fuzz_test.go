package linkstream

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

var lineNumbered = regexp.MustCompile(`line \d+`)

// FuzzReadEventsWith throws arbitrary byte soup and line caps at the
// stream reader. The invariants: it never panics, a successful parse
// yields a structurally valid stream whose event count matches the
// return value, and every parse error is positioned (it names the
// offending line) — including the line-cap overflow path, which must
// wrap the scanner's ErrTooLong with the line number instead of
// surfacing a bare scanner error.
func FuzzReadEventsWith(f *testing.F) {
	f.Add([]byte("a b 1\nb c 2\n"), 0)
	f.Add([]byte("# comment\n% comment\n\n u\tv\t3 extra\n"), 64)
	f.Add([]byte("a b 99999999999999999999\n"), 0)                          // timestamp overflow
	f.Add([]byte("a b 9223372036854775807\nb a -9223372036854775808\n"), 0) // extreme but valid timestamps
	f.Add([]byte("a a 5\n"), 0)                                             // self loop
	f.Add([]byte("a b\n"), 0)                                               // too few fields
	f.Add([]byte("x y 1\n"+strings.Repeat("z", 256)+" w 2\n"), 32)          // line-cap overflow
	f.Add([]byte("\xff\xfe garbage \x00\n1 2 3\n"), 0)
	f.Fuzz(func(t *testing.T, data []byte, maxLine int) {
		// Keep the cap in a sane range: huge caps only size an internal
		// limit, tiny and negative ones select the interesting paths.
		if maxLine > 1<<20 {
			maxLine = 1 << 20
		}
		s := New()
		n, err := s.ReadEventsWith(bytes.NewReader(data), ReadOptions{MaxLineBytes: maxLine})
		if n != s.NumEvents() {
			t.Fatalf("returned %d events, stream holds %d", n, s.NumEvents())
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("parsed stream invalid after err=%v: %v", err, verr)
		}
		if err != nil {
			if !lineNumbered.MatchString(err.Error()) {
				t.Fatalf("error not positioned at a line: %v", err)
			}
			return
		}
		// A clean parse must round-trip: write the stream out and read
		// it back to the same events.
		var buf bytes.Buffer
		if _, werr := s.WriteTo(&buf); werr != nil {
			t.Fatalf("write back: %v", werr)
		}
		back := New()
		if _, rerr := back.ReadEvents(&buf); rerr != nil {
			t.Fatalf("reparse of written stream: %v", rerr)
		}
		if back.NumEvents() != s.NumEvents() {
			t.Fatalf("round trip lost events: %d != %d", back.NumEvents(), s.NumEvents())
		}
	})
}

// TestReadEventsWithOverflowLineNumber pins the exact overflow
// positioning: the error names the first line that exceeded the cap.
func TestReadEventsWithOverflowLineNumber(t *testing.T) {
	in := "a b 1\nc d 2\n" + strings.Repeat("x", 100) + " y 3\n"
	s := New()
	n, err := s.ReadEventsWith(strings.NewReader(in), ReadOptions{MaxLineBytes: 16})
	if n != 2 {
		t.Fatalf("parsed %d events before the overflow, want 2", n)
	}
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want a line 3 overflow", err)
	}
}
