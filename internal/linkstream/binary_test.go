package linkstream

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	s := New()
	if err := s.Add("alice", "bob", -50); err != nil { // negative times allowed
		t.Fatal(err)
	}
	if err := s.Add("bob", "carol", 1_700_000_000); err != nil {
		t.Fatal(err)
	}
	s.AddNode("isolated") // node without events must survive
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := back.ReadBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 4 || back.NumEvents() != 2 {
		t.Fatalf("round trip: %d nodes, %d events", back.NumNodes(), back.NumEvents())
	}
	if _, ok := back.NodeID("isolated"); !ok {
		t.Fatal("isolated node lost")
	}
	for i, e := range s.Events() {
		b := back.Events()[i]
		if e != b {
			t.Fatalf("event %d: %+v vs %+v", i, e, b)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	s := New()
	err := s.ReadBinary(strings.NewReader("NOPE additional garbage"))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

// TestBinaryVersionRejected pins the forward-compatibility contract: a
// file carrying the LSB magic with an unknown version byte is refused
// with a version error, never misread as the current layout.
func TestBinaryVersionRejected(t *testing.T) {
	s := New()
	if err := s.Add("a", "b", 5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if data[3] != '1' {
		t.Fatalf("version byte = %q, want '1' (v1 files keep the historical LSB1 prefix)", data[3])
	}
	data[3] = '2'
	back := New()
	err := back.ReadBinary(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want a version error", err)
	}
	if errors.Is(err, ErrBadMagic) {
		t.Fatal("an unknown version is not a bad magic")
	}
}

func TestBinaryTruncated(t *testing.T) {
	s := New()
	if err := s.Add("a", "b", 5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 2, 4, len(full) / 2, len(full) - 1} {
		back := New()
		if err := back.ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d should error", cut)
		}
	}
}

func TestBinaryCorruptEvent(t *testing.T) {
	// Hand-craft a header claiming a self loop event (u == v).
	var buf bytes.Buffer
	buf.WriteString("LSB1")
	buf.WriteByte(1)   // 1 node
	buf.WriteByte(1)   // name length 1
	buf.WriteByte('x') // name
	buf.WriteByte(1)   // 1 event
	buf.WriteByte(0)   // u = 0
	buf.WriteByte(0)   // v = 0 -> self loop
	buf.WriteByte(2)   // t delta = +1 (zigzag)
	s := New()
	if err := s.ReadBinary(&buf); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
}

func TestBinarySizeCompact(t *testing.T) {
	// A sorted second-resolution trace should cost only a few bytes per
	// event in binary form and far more as text.
	s := New()
	s.EnsureNodes(50)
	rng := rand.New(rand.NewSource(1))
	tcur := int64(1_600_000_000)
	for i := 0; i < 5000; i++ {
		tcur += rng.Int63n(60)
		u := int32(rng.Intn(50))
		v := int32(rng.Intn(50))
		if u == v {
			continue
		}
		if err := s.AddID(u, v, tcur); err != nil {
			t.Fatal(err)
		}
	}
	var bin, txt bytes.Buffer
	if err := s.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteTo(&txt); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(bin.Len()) / float64(s.NumEvents())
	if perEvent > 6 {
		t.Fatalf("binary costs %.1f bytes/event, want <= 6", perEvent)
	}
	if bin.Len()*2 > txt.Len() {
		t.Fatalf("binary (%d) not much smaller than text (%d)", bin.Len(), txt.Len())
	}
}

// Property: binary round trip preserves arbitrary streams exactly,
// including unsorted events and weird node names.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		names := []string{"a", "βeta", "node with spaces", "", "x/y#z"}
		for _, n := range names {
			s.AddNode(n)
		}
		for _, r := range raw {
			u := int32(r % 5)
			v := int32((r / 5) % 5)
			if u == v {
				continue
			}
			if err := s.AddID(u, v, rng.Int63n(1<<40)-(1<<39)); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := s.WriteBinary(&buf); err != nil {
			return false
		}
		back := New()
		if err := back.ReadBinary(&buf); err != nil {
			return false
		}
		if back.NumNodes() != s.NumNodes() || back.NumEvents() != s.NumEvents() {
			return false
		}
		for i := range s.names {
			if s.names[i] != back.names[i] {
				return false
			}
		}
		for i, e := range s.events {
			if back.events[i] != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
