// Package distrib is the fault-handling half of distributed period
// execution: a coordinator that partitions one analysis into shard
// specs (repro.PartitionSpec), dispatches them to registered tsserve
// workers over the versioned wire codec, and folds the partials back
// into a report byte-identical to a local run (repro.DistributedRun)
// — plus the worker registry, heartbeats, per-shard timeouts with
// exponential-backoff retry, re-dispatch from dead workers to
// survivors, and a graceful single-process fallback when no workers
// are registered or a shard runs out of retries.
//
// The layering is deliberate: everything that decides *what* a shard
// computes and *how* partials fold lives in the root package, where
// the bit-exactness argument is pinned by in-process parity tests;
// this package only decides *where* each shard runs. Scheduling —
// which worker, how many retries, local fallback — can therefore
// never change results, only latency.
package distrib

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// maxFails is how many consecutive shard failures mark a worker dead.
// A dead worker stops receiving shards until it heartbeats or
// re-registers (workers re-register on a 404 heartbeat, so a restarted
// worker revives itself).
const maxFails = 3

// Worker is one registered tsserve worker as the registry reports it.
type Worker struct {
	// Name identifies the worker across re-registrations.
	Name string `json:"name"`
	// URL is the worker's advertised base URL; shards POST to
	// URL + "/v1/shards".
	URL string `json:"url"`
	// LastSeen is the last registration or heartbeat time.
	LastSeen time.Time `json:"last_seen"`
	// Fails counts consecutive shard failures since the last success,
	// heartbeat or registration.
	Fails int `json:"fails,omitempty"`
	// Dead reports whether the registry currently excludes the worker
	// from dispatch (too many failures or an expired heartbeat).
	Dead bool `json:"dead,omitempty"`
}

// Registry tracks workers and their liveness. All methods are safe for
// concurrent use.
type Registry struct {
	ttl time.Duration

	mu      sync.Mutex
	workers map[string]*Worker
}

// NewRegistry builds a registry whose workers expire ttl after their
// last heartbeat; ttl <= 0 selects 15 seconds.
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	return &Registry{ttl: ttl, workers: make(map[string]*Worker)}
}

// Register adds or revives a worker. Re-registering an existing name
// updates its URL and clears its failure count — a restarted worker
// comes back clean.
func (r *Registry) Register(name, url string) error {
	if name == "" {
		return errors.New("distrib: register: empty worker name")
	}
	if url == "" {
		return fmt.Errorf("distrib: register %q: empty worker url", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers[name] = &Worker{Name: name, URL: url, LastSeen: time.Now()}
	return nil
}

// Heartbeat refreshes a worker's liveness and forgives its failures.
// It reports false for unknown names, which tells the worker to
// re-register (the coordinator may have restarted).
func (r *Registry) Heartbeat(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[name]
	if !ok {
		return false
	}
	w.LastSeen = time.Now()
	w.Fails = 0
	return true
}

// MarkFail records one shard failure against a worker; maxFails
// consecutive failures take it out of dispatch until it heartbeats.
func (r *Registry) MarkFail(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[name]; ok {
		w.Fails++
	}
}

// markOK clears a worker's failure streak after a successful shard.
func (r *Registry) markOK(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[name]; ok {
		w.Fails = 0
	}
}

func (r *Registry) deadLocked(w *Worker, now time.Time) bool {
	return w.Fails >= maxFails || now.Sub(w.LastSeen) > r.ttl
}

// Live returns the dispatchable workers — registered, heartbeat fresh,
// under the failure threshold — sorted by name so round-robin rotation
// is stable.
func (r *Registry) Live() []Worker {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Worker
	for _, w := range r.workers {
		if !r.deadLocked(w, now) {
			out = append(out, *w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot returns every registered worker, dead or alive, sorted by
// name — the body of GET /v1/workers.
func (r *Registry) Snapshot() []Worker {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Worker, 0, len(r.workers))
	for _, w := range r.workers {
		cp := *w
		cp.Dead = r.deadLocked(w, now)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
