package distrib

// The coordinator's HTTP surface:
//
//	POST /v1/workers                  register {"name": ..., "url": ...}
//	POST /v1/workers/{name}/heartbeat refresh liveness (404 → re-register)
//	GET  /v1/workers                  registry snapshot
//	POST /v1/jobs                     plan envelope in, report envelope out
//	GET  /v1/stats                    lifetime counters + live worker count
//	GET  /v1/healthz                  liveness
//
// Jobs are synchronous: the coordinator holds the request open while
// shards run, mirroring tsserve's attached submits — a disconnected
// client cancels the whole fan-out through the request context.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/serve"
)

// maxJobBytes bounds a job submit body, like a worker's spec bound.
const maxJobBytes = serve.MaxSpecBytes

// registration is the body of POST /v1/workers.
type registration struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Handler builds the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", c.handleRegister)
	mux.HandleFunc("POST /v1/workers/{name}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.reg.Snapshot())
	})
	mux.HandleFunc("POST /v1/jobs", c.handleJob)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Stats
			LiveWorkers int `json:"live_workers"`
		}{c.Stats(), len(c.reg.Live())})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Status      string `json:"status"`
			LiveWorkers int    `json:"live_workers"`
		}{"ok", len(c.reg.Live())})
	})
	return mux
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var reg registration
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&reg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("distrib: register: %w", err))
		return
	}
	if err := c.reg.Register(reg.Name, reg.URL); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "registered"})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !c.reg.Heartbeat(name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("distrib: no worker %q (re-register)", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxJobBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxJobBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("job exceeds %d bytes", maxJobBytes))
		return
	}
	spec, err := serve.DecodePlan(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rep, err := c.Run(r.Context(), spec)
	if err != nil {
		writeError(w, jobStatus(r, err), err)
		return
	}
	data, err := serve.EncodeReport(rep)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// jobStatus maps Run failures onto response codes: a vanished client is
// 499 (nobody is listening), stream-ref problems and bad specs are the
// client's fault, anything else is ours.
func jobStatus(r *http.Request, err error) int {
	if r.Context().Err() != nil {
		return 499
	}
	msg := err.Error()
	if strings.Contains(msg, "stream ref") || strings.Contains(msg, "stream root") ||
		strings.Contains(msg, "repro:") || strings.Contains(msg, "plan spec") {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
