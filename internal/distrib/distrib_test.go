package distrib

// The acceptance pins of the distributed subsystem: a coordinator
// fanning shards over real HTTP workers produces a report
// byte-identical to a local run (golden-pinned), and stays
// byte-identical under every injected fault — workers killed
// mid-shard, slow workers timing out, corrupted partials, diverged
// stream files, an empty registry.

import (
	"bytes"
	"context"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/linkstream"
	"repro/internal/serve"
	"repro/internal/synth"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden distributed-report fixtures")

// traceStream is the deterministic workload every e2e test shards.
func traceStream(t testing.TB, seed int64) *repro.Stream {
	t.Helper()
	s, err := synth.TimeUniform(synth.TimeUniformConfig{
		Nodes: 9, LinksPerPair: 3, T: 20_000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// writeTrace writes the stream's columnar encoding as trace.lsc under
// dir and returns the worker-relative path.
func writeTrace(t testing.TB, dir string, s *repro.Stream) string {
	t.Helper()
	sc := s.Clone()
	sc.Sort()
	f, err := os.Create(filepath.Join(dir, "trace.lsc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.WriteColumnar(f, linkstream.ColumnarOptions{SkipEvery: 64}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return "trace.lsc"
}

// newWorker starts one tsserve-shaped worker over root, optionally
// wrapped by a fault middleware.
func newWorker(t testing.TB, root string, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	q := serve.NewQueue(serve.QueueConfig{StreamRoot: root})
	var h http.Handler = serve.NewServer(q)
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		q.Close()
	})
	return ts
}

func register(t testing.TB, c *Coordinator, workers ...*httptest.Server) {
	t.Helper()
	for i, w := range workers {
		if err := c.Registry().Register(string(rune('a'+i)), w.URL); err != nil {
			t.Fatal(err)
		}
	}
}

// jobSpec is the e2e job: multiple metrics, a window, refinement —
// every fold path at once.
func jobSpec(s *repro.Stream, path string) *repro.PlanSpec {
	t0, t1, _ := s.Span()
	return &repro.PlanSpec{
		Stream:     &repro.StreamRef{Path: path},
		Metrics:    []string{"occupancy", "classic", "loss"},
		GridPoints: 8,
		Refine:     2,
		Windows:    []repro.Window{{Start: t0, End: (t0 + t1) / 2}},
	}
}

// localReport runs the job in one process against the resolved path
// and returns its encoded report — the parity reference.
func localReport(t testing.TB, spec *repro.PlanSpec, root string) []byte {
	t.Helper()
	local := *spec
	if local.Stream != nil {
		ref := *local.Stream
		ref.Path = filepath.Join(root, ref.Path)
		local.Stream = &ref
	}
	plan, err := local.NewPlan()
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	rep, err := plan.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := serve.EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func coordinatorReport(t testing.TB, c *Coordinator, spec *repro.PlanSpec) []byte {
	t.Helper()
	rep, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := serve.EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(50 * time.Millisecond)
	if err := r.Register("", "http://x"); err == nil {
		t.Fatal("nameless worker registered")
	}
	if err := r.Register("w1", ""); err == nil {
		t.Fatal("url-less worker registered")
	}
	if err := r.Register("w1", "http://w1"); err != nil {
		t.Fatal(err)
	}
	if r.Heartbeat("ghost") {
		t.Fatal("heartbeat for unknown worker accepted")
	}
	if live := r.Live(); len(live) != 1 || live[0].Name != "w1" {
		t.Fatalf("live = %+v", live)
	}
	for i := 0; i < maxFails; i++ {
		r.MarkFail("w1")
	}
	if live := r.Live(); len(live) != 0 {
		t.Fatalf("failed worker still live: %+v", live)
	}
	if snap := r.Snapshot(); len(snap) != 1 || !snap[0].Dead {
		t.Fatalf("snapshot = %+v, want one dead worker", snap)
	}
	if !r.Heartbeat("w1") {
		t.Fatal("heartbeat for known worker refused")
	}
	if live := r.Live(); len(live) != 1 {
		t.Fatal("heartbeat did not revive the worker")
	}
	time.Sleep(80 * time.Millisecond)
	if live := r.Live(); len(live) != 0 {
		t.Fatalf("expired worker still live: %+v", live)
	}
	if err := r.Register("w1", "http://w1b"); err != nil {
		t.Fatal(err)
	}
	if live := r.Live(); len(live) != 1 || live[0].URL != "http://w1b" {
		t.Fatalf("re-registration did not revive: %+v", live)
	}
}

// TestCoordinatorParity is the tentpole acceptance pin: a distributed
// run over three real HTTP workers is byte-identical to the local run
// and to the golden fixture.
func TestCoordinatorParity(t *testing.T) {
	root := t.TempDir()
	s := traceStream(t, 21)
	path := writeTrace(t, root, s)
	spec := jobSpec(s, path)
	want := localReport(t, spec, root)

	w1 := newWorker(t, root, nil)
	w2 := newWorker(t, root, nil)
	w3 := newWorker(t, root, nil)
	c := NewCoordinator(Config{StreamRoot: root})
	register(t, c, w1, w2, w3)

	got := coordinatorReport(t, c, spec)
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed report diverges from local:\nlocal: %s\ndist:  %s", want, got)
	}
	st := c.Stats()
	if st.ShardsDispatched == 0 {
		t.Fatal("no shards were dispatched")
	}
	if st.LocalRuns != 0 || st.LocalShardRuns != 0 {
		t.Fatalf("healthy fan-out fell back locally: %+v", st)
	}

	golden := filepath.Join("testdata", "distrib_report.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pinned, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, pinned) {
		t.Fatalf("distributed report diverges from golden %s:\ngolden: %s\ngot:    %s", golden, pinned, got)
	}
}

// TestCoordinatorNoWorkersFallback: an empty registry degrades to one
// local run with an identical report.
func TestCoordinatorNoWorkersFallback(t *testing.T) {
	root := t.TempDir()
	s := traceStream(t, 22)
	path := writeTrace(t, root, s)
	spec := jobSpec(s, path)
	want := localReport(t, spec, root)

	c := NewCoordinator(Config{StreamRoot: root})
	got := coordinatorReport(t, c, spec)
	if !bytes.Equal(got, want) {
		t.Fatal("fallback report diverges from local")
	}
	st := c.Stats()
	if st.LocalRuns != 1 || st.ShardsDispatched != 0 {
		t.Fatalf("stats = %+v, want one whole-plan local run", st)
	}
}

// shardFault wraps a worker so its /v1/shards endpoint misbehaves;
// every other endpoint passes through.
func shardFault(fail func(w http.ResponseWriter, r *http.Request)) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shards" {
				fail(w, r)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// TestCoordinatorFaults: every injected fault — a worker dying
// mid-shard, a worker slower than the shard timeout, corrupted
// partials, a wrong lane echo — still converges to the byte-identical
// report via retry, re-dispatch and local fallback.
func TestCoordinatorFaults(t *testing.T) {
	root := t.TempDir()
	s := traceStream(t, 23)
	path := writeTrace(t, root, s)
	spec := jobSpec(s, path)
	want := localReport(t, spec, root)

	cases := []struct {
		name  string
		fault func(w http.ResponseWriter, r *http.Request)
		check func(t *testing.T, st Stats)
	}{
		{
			// The connection drops after the shard is accepted — a worker
			// killed mid-shard.
			name: "killed mid-shard",
			fault: func(w http.ResponseWriter, r *http.Request) {
				panic(http.ErrAbortHandler)
			},
			check: func(t *testing.T, st Stats) {
				if st.ShardRetries == 0 {
					t.Fatalf("no retries recorded: %+v", st)
				}
			},
		},
		{
			name: "slower than the shard timeout",
			fault: func(w http.ResponseWriter, r *http.Request) {
				select {
				case <-time.After(2 * time.Second):
				case <-r.Context().Done():
				}
			},
			check: func(t *testing.T, st Stats) {
				if st.ShardTimeouts == 0 {
					t.Fatalf("no timeouts recorded: %+v", st)
				}
			},
		},
		{
			name: "corrupt partial",
			fault: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.Write([]byte(`{"v":1,"partial":`))
			},
			check: func(t *testing.T, st Stats) {
				if st.CorruptPartials == 0 {
					t.Fatalf("no corrupt partials recorded: %+v", st)
				}
			},
		},
		{
			name: "wrong lane echo",
			fault: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.Write([]byte(`{"v":1,"partial":{"lane":9999,"report":{}}}`))
			},
			check: func(t *testing.T, st Stats) {
				if st.CorruptPartials == 0 {
					t.Fatalf("no corrupt partials recorded: %+v", st)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := newWorker(t, root, shardFault(tc.fault))
			good := newWorker(t, root, nil)
			c := NewCoordinator(Config{
				StreamRoot:   root,
				ShardTimeout: 150 * time.Millisecond,
				Backoff:      time.Millisecond,
			})
			register(t, c, bad, good)
			got := coordinatorReport(t, c, spec)
			if !bytes.Equal(got, want) {
				t.Fatal("faulted run diverges from local report")
			}
			tc.check(t, c.Stats())
		})
	}
}

// TestCoordinatorHashMismatch: a worker whose stream file diverged
// answers 409; the coordinator counts the rejection and the shard
// still converges (here via local fallback — the stale worker is the
// only one).
func TestCoordinatorHashMismatch(t *testing.T) {
	root := t.TempDir()
	s := traceStream(t, 24)
	path := writeTrace(t, root, s)
	spec := jobSpec(s, path)
	want := localReport(t, spec, root)

	staleRoot := t.TempDir()
	writeTrace(t, staleRoot, traceStream(t, 99)) // same name, different content
	stale := newWorker(t, staleRoot, nil)

	c := NewCoordinator(Config{StreamRoot: root, Retries: 1, Backoff: time.Millisecond})
	register(t, c, stale)
	got := coordinatorReport(t, c, spec)
	if !bytes.Equal(got, want) {
		t.Fatal("hash-mismatch run diverges from local report")
	}
	st := c.Stats()
	if st.HashRejects == 0 {
		t.Fatalf("no hash rejections recorded: %+v", st)
	}
	if st.LocalShardRuns == 0 {
		t.Fatalf("no local shard fallbacks recorded: %+v", st)
	}
}

// TestJoinLoop: a worker joins, stays live through heartbeats, and
// rejoins by itself after the coordinator loses its registry.
func TestJoinLoop(t *testing.T) {
	c1 := NewCoordinator(Config{HeartbeatTTL: time.Second})
	var current atomic.Value
	current.Store(c1.Handler())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done := make(chan struct{})
	go func() {
		defer close(done)
		JoinLoop(ctx, nil, ts.URL, "w1", "http://worker-1", 10*time.Millisecond)
	}()
	waitFor(t, func() bool { return len(c1.Registry().Live()) == 1 })

	// Coordinator restart: fresh registry behind the same URL. The
	// worker's heartbeat 404s, it re-registers, and reappears.
	c2 := NewCoordinator(Config{HeartbeatTTL: time.Second})
	current.Store(c2.Handler())
	waitFor(t, func() bool { return len(c2.Registry().Live()) == 1 })

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("JoinLoop did not stop with its context")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoordinatorConcurrentJobs is the -race churn: concurrent jobs
// over shared workers, every report byte-exact.
func TestCoordinatorConcurrentJobs(t *testing.T) {
	root := t.TempDir()
	s := traceStream(t, 25)
	path := writeTrace(t, root, s)

	w1 := newWorker(t, root, nil)
	w2 := newWorker(t, root, nil)
	c := NewCoordinator(Config{StreamRoot: root})
	register(t, c, w1, w2)

	specs := []*repro.PlanSpec{
		jobSpec(s, path),
		{Stream: &repro.StreamRef{Path: path}, GridPoints: 6},
		{Inline: repro.InlineEventsOf(s), Metrics: []string{"occupancy", "elongation"}, GridPoints: 6, Refine: 1},
	}
	wants := make([][]byte, len(specs))
	for i, spec := range specs {
		wants[i] = localReport(t, spec, root)
	}
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for i, spec := range specs {
			wg.Add(1)
			go func(i int, spec *repro.PlanSpec) {
				defer wg.Done()
				rep, err := c.Run(context.Background(), spec)
				if err != nil {
					t.Errorf("job %d: %v", i, err)
					return
				}
				got, err := serve.EncodeReport(rep)
				if err != nil {
					t.Errorf("job %d: %v", i, err)
					return
				}
				if !bytes.Equal(got, wants[i]) {
					t.Errorf("job %d: concurrent report diverges", i)
				}
			}(i, spec)
		}
	}
	wg.Wait()
}
