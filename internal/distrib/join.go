package distrib

// The worker side of membership: a tsserve worker started with -join
// runs JoinLoop next to its HTTP server, registering with the
// coordinator and heartbeating until shutdown.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// JoinLoop registers a worker with a coordinator and keeps its
// heartbeat fresh until ctx ends. A 404 heartbeat (the coordinator
// restarted and lost the registry) triggers re-registration; transient
// errors are retried on the next tick, so a worker that outlives a
// coordinator restart rejoins by itself. interval <= 0 selects a third
// of the default heartbeat TTL (5s); client nil selects
// http.DefaultClient.
func JoinLoop(ctx context.Context, client *http.Client, coordinatorURL, name, advertiseURL string, interval time.Duration) error {
	if client == nil {
		client = http.DefaultClient
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	register := func() error {
		body, err := json.Marshal(registration{Name: name, URL: advertiseURL})
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinatorURL+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("distrib: register %q: status %d", name, resp.StatusCode)
		}
		return nil
	}
	heartbeat := func() (int, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordinatorURL+"/v1/workers/"+name+"/heartbeat", nil)
		if err != nil {
			return 0, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// First registration: keep trying until it lands or ctx ends, so a
	// worker started before its coordinator still joins.
	for {
		if err := register(); err == nil {
			break
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if code, err := heartbeat(); err == nil && code == http.StatusNotFound {
				register() // coordinator forgot us; transient failures retry next tick
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
