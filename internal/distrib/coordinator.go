package distrib

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/serve"
)

// Config shapes a coordinator.
type Config struct {
	// StreamRoot is the directory job stream refs resolve under,
	// confined exactly like a tsserve queue's root (cleaned paths,
	// no ".." escapes). Empty means inline-only jobs.
	StreamRoot string
	// Shards bounds how many chunks each scope's grid splits into;
	// <= 0 tracks the live worker count (at least 2, so even a single
	// worker exercises the fold).
	Shards int
	// ShardTimeout bounds one dispatch attempt; <= 0 selects 60s.
	ShardTimeout time.Duration
	// Retries is how many additional dispatch attempts a shard gets
	// across workers before falling back to a local in-process run;
	// < 0 disables retries, 0 selects 3.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt;
	// <= 0 selects 200ms.
	Backoff time.Duration
	// HeartbeatTTL is how long a worker stays live without a
	// heartbeat; <= 0 selects 15s.
	HeartbeatTTL time.Duration
	// Client is the HTTP client shards ride; nil selects
	// http.DefaultClient. Per-attempt timeouts come from ShardTimeout,
	// not the client.
	Client *http.Client
	// Workers, MaxInFlight and LaneWidth fill the execution hints of
	// jobs that leave them 0, exactly like a queue's defaults. They
	// never affect results.
	Workers     int
	MaxInFlight int
	LaneWidth   int
}

// Stats counts a coordinator's lifetime activity — the distributed
// mirror of serve.QueueStats, exposed at GET /v1/stats.
type Stats struct {
	// Jobs counts Run invocations.
	Jobs int64 `json:"jobs"`
	// LocalRuns counts jobs executed whole in-process (no live
	// workers, or an adaptive plan that cannot shard).
	LocalRuns int64 `json:"local_runs"`
	// ShardsDispatched counts shard POSTs attempted against workers.
	ShardsDispatched int64 `json:"shards_dispatched"`
	// ShardRetries counts dispatch attempts after a failure.
	ShardRetries int64 `json:"shard_retries"`
	// ShardTimeouts counts attempts that hit ShardTimeout.
	ShardTimeouts int64 `json:"shard_timeouts"`
	// CorruptPartials counts partials rejected by validation
	// (undecodable, wrong lane, wrong shape).
	CorruptPartials int64 `json:"corrupt_partials"`
	// HashRejects counts shards a worker refused with 409 — its
	// stream file diverged from the coordinator's.
	HashRejects int64 `json:"hash_rejects"`
	// LocalShardRuns counts shards that fell back to an in-process
	// run after exhausting retries or workers.
	LocalShardRuns int64 `json:"local_shard_runs"`
}

// Coordinator partitions jobs into shards, dispatches them to live
// workers and folds the partials. The zero retry/timeout/fallback
// machinery guarantees Run converges to the local-run report even when
// every worker misbehaves — fault handling degrades latency, never
// results.
type Coordinator struct {
	cfg Config
	reg *Registry
	rr  atomic.Uint64 // round-robin dispatch cursor

	jobs             atomic.Int64
	localRuns        atomic.Int64
	shardsDispatched atomic.Int64
	shardRetries     atomic.Int64
	shardTimeouts    atomic.Int64
	corruptPartials  atomic.Int64
	hashRejects      atomic.Int64
	localShardRuns   atomic.Int64
}

// NewCoordinator builds a coordinator with an empty registry.
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{cfg: cfg, reg: NewRegistry(cfg.HeartbeatTTL)}
}

// Registry exposes the worker registry (the HTTP handler and tests
// drive it directly).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Stats snapshots the coordinator's lifetime counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Jobs:             c.jobs.Load(),
		LocalRuns:        c.localRuns.Load(),
		ShardsDispatched: c.shardsDispatched.Load(),
		ShardRetries:     c.shardRetries.Load(),
		ShardTimeouts:    c.shardTimeouts.Load(),
		CorruptPartials:  c.corruptPartials.Load(),
		HashRejects:      c.hashRejects.Load(),
		LocalShardRuns:   c.localShardRuns.Load(),
	}
}

func (c *Coordinator) client() *http.Client {
	if c.cfg.Client != nil {
		return c.cfg.Client
	}
	return http.DefaultClient
}

func (c *Coordinator) shardTimeout() time.Duration {
	if c.cfg.ShardTimeout > 0 {
		return c.cfg.ShardTimeout
	}
	return 60 * time.Second
}

func (c *Coordinator) retries() int {
	switch {
	case c.cfg.Retries < 0:
		return 0
	case c.cfg.Retries == 0:
		return 3
	}
	return c.cfg.Retries
}

func (c *Coordinator) backoff() time.Duration {
	if c.cfg.Backoff > 0 {
		return c.cfg.Backoff
	}
	return 200 * time.Millisecond
}

func (c *Coordinator) shardCount(liveWorkers int) int {
	if c.cfg.Shards > 0 {
		return c.cfg.Shards
	}
	if liveWorkers < 2 {
		return 2
	}
	return liveWorkers
}

// resolveSpec confines a job's stream ref under the coordinator's
// stream root (mirroring serve.Queue) and applies the execution-hint
// defaults. It returns the spec the coordinator executes — resolved
// path, openable locally — and the submitter's original path, which
// shard dispatches restore so each worker resolves it under its own
// root.
func (c *Coordinator) resolveSpec(spec *repro.PlanSpec) (resolved *repro.PlanSpec, workerPath string, err error) {
	out := *spec
	if out.Workers == 0 {
		out.Workers = c.cfg.Workers
	}
	if out.MaxInFlight == 0 {
		out.MaxInFlight = c.cfg.MaxInFlight
	}
	if out.LaneWidth == 0 {
		out.LaneWidth = c.cfg.LaneWidth
	}
	if spec.Stream == nil {
		return &out, "", nil
	}
	if c.cfg.StreamRoot == "" {
		return nil, "", errors.New("distrib: this coordinator serves no stream root; submit inline events")
	}
	p := spec.Stream.Path
	if p == "" {
		return nil, "", errors.New("distrib: stream ref: empty path")
	}
	clean := path.Clean("/" + p) // forces the ref inside the root
	if clean == "/" {
		return nil, "", fmt.Errorf("distrib: stream ref: path %q resolves to the stream root itself", p)
	}
	ref := *spec.Stream
	ref.Path = c.cfg.StreamRoot + clean
	out.Stream = &ref
	return &out, clean[1:], nil
}

// Run executes one job: partitioned and dispatched across live workers
// when possible, whole in-process otherwise (adaptive plans cannot
// shard; an empty registry has nobody to shard to). The report is
// byte-identical either way.
func (c *Coordinator) Run(ctx context.Context, spec *repro.PlanSpec) (*repro.Report, error) {
	c.jobs.Add(1)
	resolved, workerPath, err := c.resolveSpec(spec)
	if err != nil {
		return nil, err
	}
	live := c.reg.Live()
	if resolved.Adaptive != nil || len(live) == 0 {
		c.localRuns.Add(1)
		plan, err := resolved.NewPlan()
		if err != nil {
			return nil, err
		}
		defer plan.Close()
		return plan.Run(ctx)
	}
	runner := func(ctx context.Context, shard repro.ShardPlan) (*repro.Report, error) {
		return c.runShard(ctx, shard, workerPath)
	}
	return repro.DistributedRun(ctx, resolved, c.shardCount(len(live)), runner)
}

// runShard places one shard: round-robin over live workers, exponential
// backoff between attempts, and — once retries or workers run out — a
// local in-process run, so a shard always converges to its exact
// partial no matter how workers fail.
func (c *Coordinator) runShard(ctx context.Context, shard repro.ShardPlan, workerPath string) (*repro.Report, error) {
	backoff := c.backoff()
	for attempt := 0; attempt <= c.retries(); attempt++ {
		if attempt > 0 {
			c.shardRetries.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			backoff *= 2
		}
		live := c.reg.Live()
		if len(live) == 0 {
			break
		}
		w := live[c.rr.Add(1)%uint64(len(live))]
		rep, err := c.postShard(ctx, w, shard, workerPath)
		if err == nil {
			c.reg.markOK(w.Name)
			return rep, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c.reg.MarkFail(w.Name)
	}
	c.localShardRuns.Add(1)
	return repro.RunShardLocal(ctx, shard)
}

// postShard is one dispatch attempt: the shard envelope POSTed under
// the attempt timeout, the partial decoded, its lane echo and shape
// verified. Every failure mode maps to a counter so fault tests can
// pin which path fired.
func (c *Coordinator) postShard(ctx context.Context, w Worker, shard repro.ShardPlan, workerPath string) (*repro.Report, error) {
	spec := *shard.Spec
	if spec.Stream != nil && workerPath != "" {
		ref := *spec.Stream
		ref.Path = workerPath // workers resolve under their own root
		spec.Stream = &ref
	}
	body, err := serve.EncodeShard(&serve.Shard{Lane: shard.Lane, Spec: &spec})
	if err != nil {
		return nil, err
	}
	c.shardsDispatched.Add(1)

	attemptCtx, cancel := context.WithTimeout(ctx, c.shardTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, w.URL+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		if attemptCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			c.shardTimeouts.Add(1)
		}
		return nil, fmt.Errorf("distrib: worker %s: %w", w.Name, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if attemptCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			c.shardTimeouts.Add(1)
		}
		return nil, fmt.Errorf("distrib: worker %s: reading partial: %w", w.Name, err)
	}
	if resp.StatusCode == http.StatusConflict {
		c.hashRejects.Add(1)
		return nil, fmt.Errorf("distrib: worker %s rejected shard lane %d: stream diverged: %s", w.Name, shard.Lane, data)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("distrib: worker %s: shard lane %d: status %d: %s", w.Name, shard.Lane, resp.StatusCode, data)
	}
	partial, err := serve.DecodePartial(data)
	if err != nil {
		c.corruptPartials.Add(1)
		return nil, fmt.Errorf("distrib: worker %s: %w", w.Name, err)
	}
	if partial.Lane != shard.Lane {
		c.corruptPartials.Add(1)
		return nil, fmt.Errorf("distrib: worker %s echoed lane %d for shard lane %d", w.Name, partial.Lane, shard.Lane)
	}
	if err := repro.ValidatePartial(shard, partial.Report); err != nil {
		c.corruptPartials.Add(1)
		return nil, fmt.Errorf("distrib: worker %s: %w", w.Name, err)
	}
	return partial.Report, nil
}
