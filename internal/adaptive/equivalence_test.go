package adaptive

import (
	"context"

	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstream"
	"repro/internal/sweep"
	"repro/internal/synth"
)

// heteroStream builds a seeded two-mode workload with random link
// orientation so directed analyses exercise both edge directions —
// mirroring internal/core/equivalence_test.go's mixedStream, with the
// burst structure the adaptive method exists for.
func heteroStream(t testing.TB, seed int64) *linkstream.Stream {
	t.Helper()
	cfgs := map[int64]synth.TwoModeConfig{
		1: {Nodes: 10, N1: 14, N2: 1, T1: 4000, T2: 6000, Alternations: 3, Seed: 1},
		2: {Nodes: 8, N1: 20, N2: 2, T1: 2500, T2: 2500, Alternations: 4, Seed: 2},
		3: {Nodes: 12, N1: 10, N2: 1, T1: 8000, T2: 4000, Alternations: 2, Seed: 3},
	}
	cfg, ok := cfgs[seed]
	if !ok {
		t.Fatalf("no stream config for seed %d", seed)
	}
	s, err := synth.TwoMode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Randomise orientation in place (TwoMode always emits U < V).
	rng := rand.New(rand.NewSource(seed))
	flipped := linkstream.New()
	flipped.EnsureNodes(s.NumNodes())
	for _, e := range s.Events() {
		u, v := e.U, e.V
		if rng.Intn(2) == 0 {
			u, v = v, u
		}
		if err := flipped.AddID(u, v, e.T); err != nil {
			t.Fatal(err)
		}
	}
	return flipped
}

// TestAnalyzeMatchesReference asserts the fused windowed-engine
// Analyze reproduces the retained per-segment AnalyzeReference exactly
// — same segments, same per-segment and global gammas, bit-equal score
// curves — across synth seeds, directed and undirected analyses,
// worker counts and in-flight bounds.
func TestAnalyzeMatchesReference(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			s := heteroStream(t, seed)
			cfg := Config{Bins: 60, GridPoints: 8, Directed: directed}
			want, err := AnalyzeReference(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				for _, inFlight := range []int{1, 2, 0} {
					cfg := cfg
					cfg.Workers = workers
					cfg.MaxInFlight = inFlight
					got, err := Analyze(context.Background(), s, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("directed=%v seed=%d workers=%d inflight=%d:\n got %+v\nwant %+v",
							directed, seed, workers, inFlight, got, want)
					}
				}
			}
		}
	}
}

// TestAnalyzeMatchesReferenceRefine covers the multi-round protocol:
// with Refine > 0 each search stages a second, refined grid, so the
// fused path batches two (or more) RunWindowed passes — still
// bit-equal to the reference's refined per-segment passes.
func TestAnalyzeMatchesReferenceRefine(t *testing.T) {
	s := heteroStream(t, 2)
	cfg := Config{Bins: 60, GridPoints: 8, Refine: 4, Workers: 2}
	want, err := AnalyzeReference(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Analyze(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("refined analysis diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestAnalyzeOneEnginePass pins the tentpole guarantee with the
// engine's instrumentation: the whole adaptive analysis — global sweep
// plus every segment sweep — is one engine pass, and each (segment, ∆)
// CSR is built exactly once.
func TestAnalyzeOneEnginePass(t *testing.T) {
	s := heteroStream(t, 1)
	cfg := Config{Bins: 60, GridPoints: 8}.withDefaults()

	// Expected build count: one CSR per (scope, grid entry).
	segs, _, err := Segments(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Sort()
	events := s.Events()
	wantBuilds := int64(len(core.LogGrid(s.Resolution(), s.Duration(), cfg.GridPoints)))
	analysed := 0
	for _, seg := range segs {
		sub := linkstream.WindowEvents(events, seg.Start, seg.End)
		if len(sub) < minSegmentEvents {
			continue
		}
		analysed++
		wantBuilds += int64(len(core.LogGrid(linkstream.EventsResolution(sub), linkstream.EventsDuration(sub), cfg.GridPoints)))
	}
	if analysed < 2 {
		t.Fatalf("workload too small: only %d analysed segments", analysed)
	}

	sweep.ResetBuildStats()
	if _, err := Analyze(context.Background(), s, cfg); err != nil {
		t.Fatal(err)
	}
	if runs := sweep.RunCount(); runs != 1 {
		t.Fatalf("Analyze performed %d engine passes, want exactly 1", runs)
	}
	if builds, _ := sweep.BuildStats(); builds != wantBuilds {
		t.Fatalf("Analyze built %d period CSRs, want %d (one per (segment, delta))", builds, wantBuilds)
	}

	// The reference pays one engine pass per analysed segment plus one
	// for the global sweep.
	sweep.ResetBuildStats()
	if _, err := AnalyzeReference(s, cfg); err != nil {
		t.Fatal(err)
	}
	if runs := sweep.RunCount(); runs != int64(1+analysed) {
		t.Fatalf("reference performed %d engine passes, want %d", runs, 1+analysed)
	}
}

// TestAnalyzeHomogeneousDedup pins the (window, ∆) dedup on the case
// the engine optimises for: a homogeneous stream's single activity
// segment covers exactly the global scope with the same grid, so the
// fused pass builds each period's CSR once and fans it to both scopes —
// half the builds of the pre-dedup engine — while the per-segment gamma
// stays bit-identical to the global one.
func TestAnalyzeHomogeneousDedup(t *testing.T) {
	s, err := synth.TimeUniform(synth.TimeUniformConfig{
		Nodes: 10, LinksPerPair: 8, T: 10_000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{GridPoints: 12}
	want, err := AnalyzeReference(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid := core.LogGrid(s.Resolution(), s.Duration(), cfg.withDefaults().GridPoints)
	sweep.ResetBuildStats()
	got, err := Analyze(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.TwoMode || len(got.Segments) != 1 {
		t.Fatalf("uniform stream misclassified: %+v", got.Segments)
	}
	if runs := sweep.RunCount(); runs != 1 {
		t.Fatalf("Analyze performed %d engine passes, want 1", runs)
	}
	if builds, _ := sweep.BuildStats(); builds != int64(len(grid)) {
		t.Fatalf("homogeneous Analyze built %d period CSRs, want %d (global and segment scopes coincide)",
			builds, len(grid))
	}
	if d := sweep.DedupCount(); d != int64(len(grid)) {
		t.Fatalf("DedupCount = %d, want %d", d, len(grid))
	}
	if got.Segments[0].Gamma != got.GlobalGamma {
		t.Fatalf("deduplicated scopes diverged: segment gamma %d, global %d",
			got.Segments[0].Gamma, got.GlobalGamma)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dedup changed the analysis:\n got %+v\nwant %+v", got, want)
	}
}

// TestAnalyzeWithGlobalObservers checks the extra observers of
// AnalyzeWith see the whole stream and exactly the global grid.
func TestAnalyzeWithGlobalObservers(t *testing.T) {
	s := heteroStream(t, 3)
	cfg := Config{Bins: 60, GridPoints: 8}
	obs := sweep.NewDistanceObserver()
	a, err := AnalyzeWith(context.Background(), s, cfg, obs)
	if err != nil {
		t.Fatal(err)
	}
	pts := obs.Points()
	if len(pts) != len(a.Global.Points) {
		t.Fatalf("observer saw %d periods, global grid has %d", len(pts), len(a.Global.Points))
	}
	for i, p := range pts {
		if p.Delta != a.Global.Points[i].Delta {
			t.Fatalf("period %d: observer delta %d, global delta %d", i, p.Delta, a.Global.Points[i].Delta)
		}
		if p.FinitePairs == 0 {
			t.Fatalf("period %d: no finite distances recorded", i)
		}
	}
}

// TestAnalyzeSpeculativeMatchesSerial pins the fused speculative path:
// batching both half-midpoints of every active search into one
// RunWindowed pass per round returns exactly the serial bisection's
// analysis (the reference drives the same speculative searches one
// stream at a time), for every lane width.
func TestAnalyzeSpeculativeMatchesSerial(t *testing.T) {
	s := heteroStream(t, 2)
	cfg := Config{Bins: 60, GridPoints: 8, Refine: 3, Workers: 2, Speculate: true}
	want, err := AnalyzeReference(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{0, 4, 8} {
		cfg := cfg
		cfg.LaneWidth = width
		got, err := Analyze(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("width=%d: speculative fused analysis diverged:\n got %+v\nwant %+v", width, got, want)
		}
	}
}
