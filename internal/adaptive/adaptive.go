// Package adaptive implements the extension sketched in the paper's
// conclusion: for link streams with strong temporal heterogeneity, the
// single saturation scale returned by the occupancy method favours the
// high-activity parts of the dynamics (Section 6), so very short active
// periods risk being smoothed out. The proposed enhancement is to
// separate the high-activity periods from the low-activity periods and
// determine an appropriate aggregation scale for each part
// independently — then either aggregate the whole stream at the
// shortest detected scale, or partition the period of study and
// aggregate each part with its own window length.
//
// The segmentation uses a 1-D 2-means clustering of binned event rates
// followed by a minimum-run merge, which recovers the two modes of the
// paper's two-mode benchmark exactly and degrades gracefully on
// homogeneous streams (a single segment).
package adaptive

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/linkstream"
)

// Config parameterises the adaptive analysis. The zero value picks
// sensible defaults.
type Config struct {
	// Bins is the number of equal time bins used to estimate the
	// activity profile (default 100).
	Bins int
	// MinRunBins is the minimum number of consecutive same-mode bins
	// for a segment; shorter runs are absorbed by their neighbours
	// (default 2).
	MinRunBins int
	// SeparationFactor is the minimum ratio between the two mode
	// centres for the stream to count as two-mode at all; below it the
	// stream is treated as homogeneous (default 3).
	SeparationFactor float64
	// GridPoints is the ∆-sweep resolution per segment (default 24).
	GridPoints int
	// Directed and Workers are passed through to the occupancy method.
	Directed bool
	Workers  int
}

func (c Config) withDefaults() Config {
	if c.Bins <= 0 {
		c.Bins = 100
	}
	if c.MinRunBins <= 0 {
		c.MinRunBins = 2
	}
	if c.SeparationFactor <= 0 {
		c.SeparationFactor = 3
	}
	if c.GridPoints <= 0 {
		c.GridPoints = 24
	}
	return c
}

// Segment is one maximal run of bins sharing an activity mode.
type Segment struct {
	Start, End   int64 // raw time, [Start, End)
	HighActivity bool
	Events       int
	// Gamma is the per-segment saturation scale (filled by Analyze;
	// 0 if the segment had too few events to analyse).
	Gamma int64
}

// Analysis is the outcome of the adaptive method.
type Analysis struct {
	// Segments partition the period of study.
	Segments []Segment
	// TwoMode reports whether two activity modes were detected; if
	// false, Segments has a single entry covering the whole stream.
	TwoMode bool
	// GlobalGamma is the plain occupancy-method scale on the whole
	// stream, for comparison.
	GlobalGamma int64
	// MinGamma is the smallest per-segment scale — the conservative
	// choice if the whole stream must use one window length.
	MinGamma int64
}

// ErrNoEvents mirrors core.ErrNoEvents.
var ErrNoEvents = errors.New("adaptive: stream has no events")

// binCounts histograms the stream's events into cfg.Bins equal bins.
func binCounts(s *linkstream.Stream, bins int) (counts []int, t0 int64, binLen int64) {
	start, end, _ := s.Span()
	span := end - start + 1
	binLen = (span + int64(bins) - 1) / int64(bins)
	if binLen < 1 {
		binLen = 1
	}
	counts = make([]int, bins)
	for _, e := range s.Events() {
		i := int((e.T - start) / binLen)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts, start, binLen
}

// twoMeans clusters 1-D values into two centres with Lloyd iterations
// seeded at the min and max. It returns the centres (lo <= hi) and the
// assignment (true = hi cluster).
func twoMeans(values []float64) (lo, hi float64, assign []bool) {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	lo, hi = mn, mx
	assign = make([]bool, len(values))
	for iter := 0; iter < 50; iter++ {
		var sumLo, sumHi float64
		var nLo, nHi int
		changed := false
		for i, v := range values {
			high := math.Abs(v-hi) < math.Abs(v-lo)
			if assign[i] != high {
				assign[i] = high
				changed = true
			}
			if high {
				sumHi += v
				nHi++
			} else {
				sumLo += v
				nLo++
			}
		}
		if nLo > 0 {
			lo = sumLo / float64(nLo)
		}
		if nHi > 0 {
			hi = sumHi / float64(nHi)
		}
		if !changed && iter > 0 {
			break
		}
	}
	return lo, hi, assign
}

// Segments performs the activity segmentation without computing any
// saturation scale.
func Segments(s *linkstream.Stream, cfg Config) ([]Segment, bool, error) {
	if s.NumEvents() == 0 {
		return nil, false, ErrNoEvents
	}
	cfg = cfg.withDefaults()
	counts, t0, binLen := binCounts(s, cfg.Bins)
	values := make([]float64, len(counts))
	for i, c := range counts {
		values[i] = float64(c)
	}
	lo, hi, assign := twoMeans(values)

	wholeStream := func() []Segment {
		start, end, _ := s.Span()
		return []Segment{{Start: start, End: end + 1, Events: s.NumEvents(), HighActivity: true}}
	}
	if lo <= 0 && hi <= 0 {
		return wholeStream(), false, nil
	}
	if lo > 0 && hi/lo < cfg.SeparationFactor {
		// Modes too close: homogeneous stream.
		return wholeStream(), false, nil
	}

	// Absorb runs shorter than MinRunBins into the surrounding mode.
	smoothed := append([]bool(nil), assign...)
	i := 0
	for i < len(smoothed) {
		j := i
		for j < len(smoothed) && smoothed[j] == smoothed[i] {
			j++
		}
		if j-i < cfg.MinRunBins && (i > 0 || j < len(smoothed)) {
			flip := !smoothed[i]
			for k := i; k < j; k++ {
				smoothed[k] = flip
			}
			// Re-scan from the beginning of the merged run.
			if i > 0 {
				i--
				for i > 0 && smoothed[i-1] == smoothed[i] {
					i--
				}
			}
			continue
		}
		i = j
	}

	var segs []Segment
	i = 0
	for i < len(smoothed) {
		j := i
		ev := 0
		for j < len(smoothed) && smoothed[j] == smoothed[i] {
			ev += counts[j]
			j++
		}
		segs = append(segs, Segment{
			Start:        t0 + int64(i)*binLen,
			End:          t0 + int64(j)*binLen,
			HighActivity: smoothed[i],
			Events:       ev,
		})
		i = j
	}
	return segs, len(segs) > 1, nil
}

// minSegmentEvents is the smallest number of events for which a
// per-segment sweep is meaningful.
const minSegmentEvents = 50

// Analyze segments the stream and runs the occupancy method on the
// whole stream and on every sufficiently populated segment.
func Analyze(s *linkstream.Stream, cfg Config) (*Analysis, error) {
	cfg = cfg.withDefaults()
	segs, twoMode, err := Segments(s, cfg)
	if err != nil {
		return nil, err
	}
	opt := core.Options{Directed: cfg.Directed, Workers: cfg.Workers}
	opt.Grid = core.LogGrid(s.Resolution(), s.Duration(), cfg.GridPoints)
	global, err := core.SaturationScale(s, opt)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Segments: segs, TwoMode: twoMode, GlobalGamma: global.Gamma}
	a.MinGamma = global.Gamma
	for i := range a.Segments {
		seg := &a.Segments[i]
		sub := s.SliceTime(seg.Start, seg.End)
		if sub.NumEvents() < minSegmentEvents {
			continue
		}
		segOpt := core.Options{Directed: cfg.Directed, Workers: cfg.Workers}
		segOpt.Grid = core.LogGrid(sub.Resolution(), sub.Duration(), cfg.GridPoints)
		res, err := core.SaturationScale(sub, segOpt)
		if err != nil {
			return nil, fmt.Errorf("adaptive: segment [%d,%d): %w", seg.Start, seg.End, err)
		}
		seg.Gamma = res.Gamma
		if res.Gamma < a.MinGamma {
			a.MinGamma = res.Gamma
		}
	}
	return a, nil
}
