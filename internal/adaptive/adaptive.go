// Package adaptive implements the extension sketched in the paper's
// conclusion: for link streams with strong temporal heterogeneity, the
// single saturation scale returned by the occupancy method favours the
// high-activity parts of the dynamics (Section 6), so very short active
// periods risk being smoothed out. The proposed enhancement is to
// separate the high-activity periods from the low-activity periods and
// determine an appropriate aggregation scale for each part
// independently — then either aggregate the whole stream at the
// shortest detected scale, or partition the period of study and
// aggregate each part with its own window length.
//
// The segmentation uses a 1-D 2-means clustering of binned event rates
// followed by a minimum-run merge, which recovers the two modes of the
// paper's two-mode benchmark exactly and degrades gracefully on
// homogeneous streams (a single segment).
//
// # The fused engine path
//
// Analyze determines every scale — the global one and one per
// sufficiently populated segment — through the unified sweep engine's
// windowed observer registration (sweep.RunWindowed): each analysis is
// a resumable core.ScaleSearch, and each round batches the pending
// sweep requests of all still-active searches into a single engine
// pass. Per round, the stream is sorted and canonicalised once and all
// segments' periods share one worker pool and one Config.MaxInFlight
// in-flight bound; across the whole analysis each (segment, ∆) CSR
// arena is built and swept exactly once, refinement included. The
// default Refine == 0 configuration is exactly one engine pass —
// instead of the one core.SaturationScale pass per segment the
// reference implementation performs (retained as AnalyzeReference,
// equivalence-tested bit for bit against Analyze).
//
// Coinciding scopes deduplicate inside the engine: on a homogeneous
// stream the single activity segment covers exactly the global scope
// with an identical candidate grid, so every (window, ∆) period is
// built and swept once and its products fan to both searches
// (sweep.DedupCount instruments it; the result is bit-identical to two
// separate sweeps).
package adaptive

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/linkstream"
	"repro/internal/sweep"
)

// Config parameterises the adaptive analysis. The zero value picks
// sensible defaults.
type Config struct {
	// Bins is the number of equal time bins used to estimate the
	// activity profile (default 100, capped at the stream's time span so
	// no bin is ever empty by construction).
	Bins int
	// MinRunBins is the minimum number of consecutive same-mode bins
	// for a segment; shorter runs are absorbed by their neighbours
	// (default 2).
	MinRunBins int
	// SeparationFactor is the minimum ratio between the two mode
	// centres for the stream to count as two-mode at all; below it the
	// stream is treated as homogeneous (default 3).
	SeparationFactor float64
	// GridPoints is the ∆-sweep resolution per segment (default 24).
	GridPoints int
	// MinDelta, when positive, is the smallest candidate period of the
	// global sweep (default: the stream's resolution). Segment sweeps
	// always start at their own resolution.
	MinDelta int64
	// Refine, when positive, adds that many refinement points around
	// each search's best ∆ and re-sweeps once (see core.Options.Refine);
	// refinement rounds batch across segments like initial rounds do.
	Refine int
	// Selectors are the uniformity measures scoring each ∆ (default:
	// M-K proximity only). The first selector decides every γ.
	Selectors []dist.Selector
	// Directed and Workers are passed through to the occupancy method.
	Directed bool
	Workers  int
	// MaxInFlight bounds how many aggregation periods the fused engine
	// pass keeps resident at once, across all segments (<= 0 selects the
	// engine default).
	MaxInFlight int
	// LaneWidth pins the engine's destination-lane width for every
	// fused pass (0 auto, 4 or 8); see sweep.Options.LaneWidth.
	LaneWidth int
	// Speculate switches every scale search to speculative bracket
	// bisection (see core.Options.Speculate): each refinement round of
	// each search stages both candidate half-midpoints at once, and the
	// fused round batches the speculative grids of all still-active
	// searches into the same engine pass. Results are bit-identical to
	// Refine-round serial bisection.
	Speculate bool
	// Progress, when non-nil, receives the engine's progress events for
	// every fused pass of the analysis, with ProgressEvent.Pass set to
	// the bisection round the pass serves.
	Progress func(sweep.ProgressEvent)
	// Stats, when non-nil, accumulates the engine counters of every
	// pass of the analysis (see sweep.Options.Stats).
	Stats *sweep.RunStats
}

func (c Config) withDefaults() Config {
	if c.Bins <= 0 {
		c.Bins = 100
	}
	if c.MinRunBins <= 0 {
		c.MinRunBins = 2
	}
	if c.SeparationFactor <= 0 {
		c.SeparationFactor = 3
	}
	if c.GridPoints <= 0 {
		c.GridPoints = 24
	}
	return c
}

// coreOptions builds the occupancy-method options of one scale search.
func (c Config) coreOptions(grid []int64) core.Options {
	return core.Options{
		Directed:    c.Directed,
		Workers:     c.Workers,
		Selectors:   c.Selectors,
		Refine:      c.Refine,
		MaxInFlight: c.MaxInFlight,
		LaneWidth:   c.LaneWidth,
		Speculate:   c.Speculate,
		Grid:        grid,
	}
}

// Segment is one maximal run of bins sharing an activity mode.
type Segment struct {
	// Start, End bound the segment in raw time, [Start, End).
	Start        int64 `json:"start"`
	End          int64 `json:"end"`
	HighActivity bool  `json:"high_activity"`
	Events       int   `json:"events"`
	// Bins is the number of activity-profile bins the segment spans.
	Bins int `json:"bins"`
	// Gamma is the per-segment saturation scale (filled by Analyze;
	// 0 if the segment had too few events to analyse).
	Gamma int64 `json:"gamma"`
}

// Analysis is the outcome of the adaptive method.
type Analysis struct {
	// Segments partition the period of study [t0, t1+1).
	Segments []Segment `json:"segments"`
	// TwoMode reports whether two activity modes were detected; if
	// false, Segments has a single entry covering the whole stream.
	TwoMode bool `json:"two_mode"`
	// Global is the plain occupancy-method result on the whole stream,
	// for comparison.
	Global core.Result `json:"global"`
	// GlobalGamma is Global.Gamma, kept for convenience.
	GlobalGamma int64 `json:"global_gamma"`
	// MinGamma is the smallest per-segment scale — the conservative
	// choice if the whole stream must use one window length.
	MinGamma int64 `json:"min_gamma"`
}

// ErrNoEvents mirrors core.ErrNoEvents.
var ErrNoEvents = errors.New("adaptive: stream has no events")

// binCounts histograms the stream's events into up to bins equal time
// bins. The bin count is capped at the stream's span and trailing bins
// past the span are dropped, so every bin intersects the period of
// study and the last bin's start lies strictly before its end.
func binCounts(s *linkstream.Stream, bins int) (counts []int, t0 int64, binLen int64) {
	start, end, _ := s.Span()
	span := end - start + 1
	if int64(bins) > span {
		bins = int(span)
	}
	binLen = (span + int64(bins) - 1) / int64(bins)
	if binLen < 1 {
		binLen = 1
	}
	bins = int((span + binLen - 1) / binLen)
	counts = make([]int, bins)
	for _, e := range s.Events() {
		i := int((e.T - start) / binLen)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts, start, binLen
}

// twoMeans clusters 1-D values into two centres with Lloyd iterations
// seeded at the min and max. It returns the centres (lo <= hi) and the
// assignment (true = hi cluster).
func twoMeans(values []float64) (lo, hi float64, assign []bool) {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	lo, hi = mn, mx
	assign = make([]bool, len(values))
	for iter := 0; iter < 50; iter++ {
		var sumLo, sumHi float64
		var nLo, nHi int
		changed := false
		for i, v := range values {
			high := math.Abs(v-hi) < math.Abs(v-lo)
			if assign[i] != high {
				assign[i] = high
				changed = true
			}
			if high {
				sumHi += v
				nHi++
			} else {
				sumLo += v
				nLo++
			}
		}
		if nLo > 0 {
			lo = sumLo / float64(nLo)
		}
		if nHi > 0 {
			hi = sumHi / float64(nHi)
		}
		if !changed && iter > 0 {
			break
		}
	}
	return lo, hi, assign
}

// Segments performs the activity segmentation without computing any
// saturation scale. The returned segments partition [t0, t1+1) exactly:
// they are contiguous, the first starts at the first event time and the
// last ends one past the last event time.
func Segments(s *linkstream.Stream, cfg Config) ([]Segment, bool, error) {
	if s.NumEvents() == 0 {
		return nil, false, ErrNoEvents
	}
	cfg = cfg.withDefaults()
	counts, t0, binLen := binCounts(s, cfg.Bins)
	tEnd := t0 + s.Duration()
	values := make([]float64, len(counts))
	for i, c := range counts {
		values[i] = float64(c)
	}
	lo, hi, assign := twoMeans(values)

	wholeStream := func() []Segment {
		return []Segment{{Start: t0, End: tEnd, Events: s.NumEvents(), HighActivity: true, Bins: len(counts)}}
	}
	if lo <= 0 && hi <= 0 {
		return wholeStream(), false, nil
	}
	if lo > 0 && hi/lo < cfg.SeparationFactor {
		// Modes too close: homogeneous stream.
		return wholeStream(), false, nil
	}

	// Absorb runs shorter than MinRunBins into the surrounding mode.
	smoothed := append([]bool(nil), assign...)
	i := 0
	for i < len(smoothed) {
		j := i
		for j < len(smoothed) && smoothed[j] == smoothed[i] {
			j++
		}
		if j-i < cfg.MinRunBins && (i > 0 || j < len(smoothed)) {
			flip := !smoothed[i]
			for k := i; k < j; k++ {
				smoothed[k] = flip
			}
			// Re-scan from the beginning of the merged run.
			if i > 0 {
				i--
				for i > 0 && smoothed[i-1] == smoothed[i] {
					i--
				}
			}
			continue
		}
		i = j
	}

	var segs []Segment
	i = 0
	for i < len(smoothed) {
		j := i
		ev := 0
		for j < len(smoothed) && smoothed[j] == smoothed[i] {
			ev += counts[j]
			j++
		}
		end := t0 + int64(j)*binLen
		if end > tEnd {
			// The last bin may overrun the period of study by the
			// ceil-rounding slack; clamp so segments partition it.
			end = tEnd
		}
		segs = append(segs, Segment{
			Start:        t0 + int64(i)*binLen,
			End:          end,
			HighActivity: smoothed[i],
			Events:       ev,
			Bins:         j - i,
		})
		i = j
	}
	return segs, len(segs) > 1, nil
}

// minSegmentEvents is the smallest number of events for which a
// per-segment sweep is meaningful.
const minSegmentEvents = 50

// Analyze segments the stream and determines the occupancy-method
// scale of the whole stream and of every sufficiently populated
// segment, all through fused engine passes: one sweep.RunWindowed call
// serves every still-active search per round (a single call in the
// default Refine == 0 configuration). See the package documentation
// for the sharing guarantees and AnalyzeReference for the retained
// per-segment implementation.
func Analyze(ctx context.Context, s *linkstream.Stream, cfg Config) (*Analysis, error) {
	return AnalyzeWith(ctx, s, cfg)
}

// participant is one scale search of the fused analysis: the global one
// (seg == nil) or a segment's.
type participant struct {
	search *core.ScaleSearch
	seg    *Segment
	start  int64
	end    int64
	res    core.Result
	done   bool
}

// AnalyzeWith is Analyze with extra observers attached to the global
// scope's initial engine pass: they see the whole stream's view and
// every period of the global candidate grid for free — the fused
// analogue of registering them with sweep.Run — so callers (cmd/tsscale
// -adaptive -metrics=...) collect classical, distance or validation
// curves from the very pass that prices the global scale.
func AnalyzeWith(ctx context.Context, s *linkstream.Stream, cfg Config, global ...sweep.Observer) (*Analysis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	segs, twoMode, err := Segments(s, cfg)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Segments: segs, TwoMode: twoMode}
	s.Sort()
	events := s.Events()

	lo := cfg.MinDelta
	if lo <= 0 {
		lo = s.Resolution()
	}
	gsearch, err := core.NewScaleSearch(cfg.coreOptions(core.LogGrid(lo, s.Duration(), cfg.GridPoints)))
	if err != nil {
		return nil, err
	}
	parts := make([]*participant, 0, len(a.Segments)+1)
	parts = append(parts, &participant{search: gsearch})
	for i := range a.Segments {
		seg := &a.Segments[i]
		sub := linkstream.WindowEvents(events, seg.Start, seg.End)
		if len(sub) < minSegmentEvents {
			continue
		}
		grid := core.LogGrid(linkstream.EventsResolution(sub), linkstream.EventsDuration(sub), cfg.GridPoints)
		search, err := core.NewScaleSearch(cfg.coreOptions(grid))
		if err != nil {
			return nil, fmt.Errorf("adaptive: segment [%d,%d): %w", seg.Start, seg.End, err)
		}
		parts = append(parts, &participant{search: search, seg: seg, start: seg.Start, end: seg.End})
	}

	engOpt := sweep.Options{Directed: cfg.Directed, Workers: cfg.Workers, MaxInFlight: cfg.MaxInFlight, LaneWidth: cfg.LaneWidth, Stats: cfg.Stats}
	for round := 0; ; round++ {
		if cfg.Progress != nil {
			pass := round
			engOpt.Progress = func(ev sweep.ProgressEvent) {
				ev.Pass = pass
				cfg.Progress(ev)
			}
		}
		batch := make([]sweep.SegmentObserver, 0, len(parts))
		waiting := make([]*participant, 0, len(parts))
		for _, p := range parts {
			if p.done {
				continue
			}
			grid, obs, ok := p.search.Next()
			if !ok {
				res, err := p.search.Result()
				if err != nil {
					return nil, err
				}
				p.res, p.done = res, true
				continue
			}
			observers := []sweep.Observer{obs}
			if p.seg == nil && round == 0 {
				observers = append(observers, global...)
			}
			batch = append(batch, sweep.SegmentObserver{Start: p.start, End: p.end, Grid: grid, Observers: observers})
			waiting = append(waiting, p)
		}
		if len(batch) == 0 {
			break
		}
		if err := sweep.RunWindowed(ctx, s, engOpt, batch...); err != nil {
			return nil, err
		}
		for _, p := range waiting {
			if err := p.search.Absorb(); err != nil {
				return nil, err
			}
		}
	}

	for _, p := range parts {
		if p.seg == nil {
			a.Global = p.res
			a.GlobalGamma = p.res.Gamma
		} else {
			p.seg.Gamma = p.res.Gamma
		}
	}
	a.MinGamma = a.GlobalGamma
	for _, seg := range a.Segments {
		if seg.Gamma > 0 && seg.Gamma < a.MinGamma {
			a.MinGamma = seg.Gamma
		}
	}
	return a, nil
}
