package adaptive

import (
	"math/rand"
	"testing"

	"repro/internal/linkstream"
)

// randomStream draws a workload whose shape is itself randomised —
// node count, event count, time span, and a mixture of uniform and
// bursty activity — so the segmentation invariants are exercised far
// from the happy path (spans smaller than the bin count, single
// timestamps, heavy bursts, quiet tails).
func randomStream(t testing.TB, rng *rand.Rand) *linkstream.Stream {
	t.Helper()
	n := 2 + rng.Intn(10)
	span := int64(1 + rng.Intn(20000))
	events := 1 + rng.Intn(400)
	bursty := rng.Intn(2) == 0
	s := linkstream.New()
	s.EnsureNodes(n)
	for k := 0; k < events; k++ {
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		var tm int64
		if bursty && rng.Intn(3) > 0 {
			// Concentrate in the first tenth of the span.
			tm = rng.Int63n(span/10 + 1)
		} else {
			tm = rng.Int63n(span)
		}
		if err := s.AddID(int32(u), int32(v), tm); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestSegmentsProperties checks the segmentation invariants on
// randomised inputs with fixed seeds:
//
//  1. segments partition [t0, tEnd) — contiguous, first Start == t0,
//     last End == tEnd, every Start < End;
//  2. per-segment event counts are exact (each equals a brute-force
//     count of the events in [Start, End)) and sum to the stream total;
//  3. when more than one segment exists, every segment spans at least
//     MinRunBins profile bins.
func TestSegmentsProperties(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomStream(t, rng)
		cfg := Config{
			Bins:       10 + rng.Intn(200),
			MinRunBins: 1 + rng.Intn(5),
		}
		segs, twoMode, err := Segments(s, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		t0, t1, _ := s.Span()
		tEnd := t1 + 1

		if segs[0].Start != t0 {
			t.Fatalf("seed %d: first segment starts at %d, want %d", seed, segs[0].Start, t0)
		}
		if last := segs[len(segs)-1]; last.End != tEnd {
			t.Fatalf("seed %d: last segment ends at %d, want %d", seed, last.End, tEnd)
		}
		totalEvents := 0
		for i, seg := range segs {
			if seg.Start >= seg.End {
				t.Fatalf("seed %d: segment %d is empty in time: %+v", seed, i, seg)
			}
			if i > 0 && seg.Start != segs[i-1].End {
				t.Fatalf("seed %d: segments %d and %d not contiguous: %+v", seed, i-1, i, segs)
			}
			want := 0
			for _, e := range s.Events() {
				if e.T >= seg.Start && e.T < seg.End {
					want++
				}
			}
			if seg.Events != want {
				t.Fatalf("seed %d: segment %d claims %d events, brute force counts %d", seed, i, seg.Events, want)
			}
			totalEvents += seg.Events
			if len(segs) > 1 && seg.Bins < cfg.MinRunBins {
				t.Fatalf("seed %d: segment %d spans %d bins, want >= %d: %+v", seed, i, seg.Bins, cfg.MinRunBins, segs)
			}
		}
		if totalEvents != s.NumEvents() {
			t.Fatalf("seed %d: segment events sum to %d, stream has %d", seed, totalEvents, s.NumEvents())
		}
		if twoMode != (len(segs) > 1) {
			t.Fatalf("seed %d: twoMode=%v with %d segments", seed, twoMode, len(segs))
		}
	}
}

// TestSegmentsHomogeneousProperty: a stream with identical activity in
// every bin is never split — exactly one segment covering the whole
// period of study.
func TestSegmentsHomogeneousProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		bins := 20 + rng.Intn(80)
		perBin := 1 + rng.Intn(4)
		binLen := int64(1 + rng.Intn(50))
		s := linkstream.New()
		s.EnsureNodes(n)
		// Exactly perBin events in every length-binLen stretch.
		for b := 0; b < bins; b++ {
			for k := 0; k < perBin; k++ {
				u := rng.Intn(n)
				v := rng.Intn(n - 1)
				if v >= u {
					v++
				}
				if err := s.AddID(int32(u), int32(v), int64(b)*binLen+rng.Int63n(binLen)); err != nil {
					t.Fatal(err)
				}
			}
		}
		segs, twoMode, err := Segments(s, Config{Bins: bins})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if twoMode || len(segs) != 1 {
			t.Fatalf("seed %d: homogeneous stream split into %d segments (twoMode=%v): %+v", seed, len(segs), twoMode, segs)
		}
		if segs[0].Events != s.NumEvents() {
			t.Fatalf("seed %d: single segment holds %d events, want %d", seed, segs[0].Events, s.NumEvents())
		}
	}
}

// TestSegmentsTinySpan: spans smaller than the configured bin count
// must still partition cleanly (the bin grid is capped at the span).
func TestSegmentsTinySpan(t *testing.T) {
	s := linkstream.New()
	s.EnsureNodes(3)
	for _, tm := range []int64{0, 1, 2, 3, 9} {
		if err := s.AddID(0, 1, tm); err != nil {
			t.Fatal(err)
		}
	}
	segs, _, err := Segments(s, Config{Bins: 100})
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].Start != 0 || segs[len(segs)-1].End != 10 {
		t.Fatalf("segments do not cover [0, 10): %+v", segs)
	}
	total := 0
	for i, seg := range segs {
		if i > 0 && seg.Start != segs[i-1].End {
			t.Fatalf("not contiguous: %+v", segs)
		}
		total += seg.Events
	}
	if total != 5 {
		t.Fatalf("events sum to %d, want 5", total)
	}
}

// TestSegmentsSingleTimestamp: a one-instant stream degenerates to a
// single unit-length segment.
func TestSegmentsSingleTimestamp(t *testing.T) {
	s := linkstream.New()
	s.EnsureNodes(4)
	for i := 0; i < 60; i++ {
		if err := s.AddID(int32(i%3), int32(3), 42); err != nil {
			t.Fatal(err)
		}
	}
	segs, twoMode, err := Segments(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if twoMode || len(segs) != 1 || segs[0].Start != 42 || segs[0].End != 43 || segs[0].Events != 60 {
		t.Fatalf("segments = %+v (twoMode=%v)", segs, twoMode)
	}
}
