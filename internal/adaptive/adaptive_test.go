package adaptive

import (
	"context"

	"errors"
	"testing"

	"repro/internal/linkstream"
	"repro/internal/synth"
)

// twoModeStream alternates dense and sparse halves with a sharp rate
// contrast, so the segmentation ground truth is known.
func twoModeStream(t *testing.T) *linkstream.Stream {
	t.Helper()
	s, err := synth.TwoMode(synth.TwoModeConfig{
		Nodes: 12, N1: 20, N2: 1, T1: 5000, T2: 5000, Alternations: 4, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSegmentsTwoMode(t *testing.T) {
	s := twoModeStream(t)
	segs, twoMode, err := Segments(s, Config{Bins: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !twoMode {
		t.Fatalf("two-mode stream not detected: %+v", segs)
	}
	// 4 alternations of high+low = 8 segments (boundary bins may merge
	// the trailing low period, allow 6..9).
	if len(segs) < 6 || len(segs) > 9 {
		t.Fatalf("segments = %d: %+v", len(segs), segs)
	}
	// Segments must alternate and partition the span.
	for i := 1; i < len(segs); i++ {
		if segs[i].HighActivity == segs[i-1].HighActivity {
			t.Fatalf("segments %d and %d share a mode: %+v", i-1, i, segs)
		}
		if segs[i].Start != segs[i-1].End {
			t.Fatalf("segments not contiguous at %d: %+v", i, segs)
		}
	}
	// High segments must be denser than low ones.
	var hiRate, loRate float64
	for _, seg := range segs {
		rate := float64(seg.Events) / float64(seg.End-seg.Start)
		if seg.HighActivity {
			hiRate += rate
		} else {
			loRate += rate
		}
	}
	if hiRate <= loRate {
		t.Fatalf("high-activity segments not denser: hi=%v lo=%v", hiRate, loRate)
	}
}

func TestSegmentsHomogeneous(t *testing.T) {
	s, err := synth.TimeUniform(synth.TimeUniformConfig{
		Nodes: 10, LinksPerPair: 10, T: 10_000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	segs, twoMode, err := Segments(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if twoMode {
		t.Fatalf("uniform stream misclassified as two-mode: %+v", segs)
	}
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(segs))
	}
	if segs[0].Events != s.NumEvents() {
		t.Fatalf("single segment events = %d, want %d", segs[0].Events, s.NumEvents())
	}
}

func TestSegmentsEmpty(t *testing.T) {
	if _, _, err := Segments(linkstream.New(), Config{}); !errors.Is(err, ErrNoEvents) {
		t.Fatalf("err = %v, want ErrNoEvents", err)
	}
}

func TestAnalyzeTwoMode(t *testing.T) {
	s := twoModeStream(t)
	a, err := Analyze(context.Background(), s, Config{Bins: 80, GridPoints: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !a.TwoMode {
		t.Fatal("two-mode not detected")
	}
	if a.GlobalGamma <= 0 {
		t.Fatalf("global gamma = %d", a.GlobalGamma)
	}
	if a.MinGamma > a.GlobalGamma {
		t.Fatalf("min gamma %d exceeds global %d", a.MinGamma, a.GlobalGamma)
	}
	// Paper's motivation: the high-activity mode needs a smaller scale
	// than the low-activity mode.
	var hiGamma, loGamma int64
	for _, seg := range a.Segments {
		if seg.Gamma == 0 {
			continue
		}
		if seg.HighActivity && (hiGamma == 0 || seg.Gamma < hiGamma) {
			hiGamma = seg.Gamma
		}
		if !seg.HighActivity && seg.Gamma > loGamma {
			loGamma = seg.Gamma
		}
	}
	if hiGamma == 0 {
		t.Fatalf("no analysed high-activity segment: %+v", a.Segments)
	}
	if loGamma > 0 && hiGamma >= loGamma {
		t.Fatalf("high-activity gamma %d should be below low-activity gamma %d", hiGamma, loGamma)
	}
}

func TestAnalyzeHomogeneousMatchesGlobal(t *testing.T) {
	s, err := synth.TimeUniform(synth.TimeUniformConfig{
		Nodes: 10, LinksPerPair: 8, T: 10_000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(context.Background(), s, Config{GridPoints: 12})
	if err != nil {
		t.Fatal(err)
	}
	if a.TwoMode {
		t.Fatal("uniform stream misclassified")
	}
	if len(a.Segments) != 1 {
		t.Fatalf("segments = %d", len(a.Segments))
	}
	// The single segment covers the whole stream, so its gamma should
	// be close to the global one (grids differ slightly at endpoints).
	seg := a.Segments[0].Gamma
	if seg == 0 {
		t.Fatal("segment not analysed")
	}
	ratio := float64(seg) / float64(a.GlobalGamma)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("segment gamma %d too far from global %d", seg, a.GlobalGamma)
	}
}

func TestTwoMeans(t *testing.T) {
	lo, hi, assign := twoMeans([]float64{1, 1, 1, 10, 10, 11})
	if lo > 2 || hi < 9 {
		t.Fatalf("centres = %v, %v", lo, hi)
	}
	want := []bool{false, false, false, true, true, true}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Bins != 100 || c.MinRunBins != 2 || c.GridPoints != 24 || c.SeparationFactor != 3 {
		t.Fatalf("defaults = %+v", c)
	}
	c2 := Config{Bins: 5, MinRunBins: 1, GridPoints: 8, SeparationFactor: 2}.withDefaults()
	if c2.Bins != 5 || c2.MinRunBins != 1 || c2.GridPoints != 8 || c2.SeparationFactor != 2 {
		t.Fatalf("overrides lost: %+v", c2)
	}
}
