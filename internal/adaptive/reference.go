package adaptive

import (
	"context"

	"fmt"

	"repro/internal/core"
	"repro/internal/linkstream"
)

// AnalyzeReference is the retained per-segment implementation of
// Analyze: one full core.SaturationScale pass over the whole stream
// plus one pass per sufficiently populated segment, each slicing and
// re-canonicalising its own copy of the events and spinning its own
// engine. It computes exactly what Analyze computes — the equivalence
// tests pin the two bit for bit — at the cost of one engine pass per
// segment instead of one per analysis round.
func AnalyzeReference(s *linkstream.Stream, cfg Config) (*Analysis, error) {
	cfg = cfg.withDefaults()
	segs, twoMode, err := Segments(s, cfg)
	if err != nil {
		return nil, err
	}
	lo := cfg.MinDelta
	if lo <= 0 {
		lo = s.Resolution()
	}
	opt := cfg.coreOptions(core.LogGrid(lo, s.Duration(), cfg.GridPoints))
	global, err := core.SaturationScale(context.Background(), s, opt)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Segments: segs, TwoMode: twoMode, Global: global, GlobalGamma: global.Gamma}
	a.MinGamma = global.Gamma
	for i := range a.Segments {
		seg := &a.Segments[i]
		sub := s.SliceTime(seg.Start, seg.End)
		if sub.NumEvents() < minSegmentEvents {
			continue
		}
		segOpt := cfg.coreOptions(core.LogGrid(sub.Resolution(), sub.Duration(), cfg.GridPoints))
		res, err := core.SaturationScale(context.Background(), sub, segOpt)
		if err != nil {
			return nil, fmt.Errorf("adaptive: segment [%d,%d): %w", seg.Start, seg.End, err)
		}
		seg.Gamma = res.Gamma
		if res.Gamma < a.MinGamma {
			a.MinGamma = res.Gamma
		}
	}
	return a, nil
}
