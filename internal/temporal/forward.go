package temporal

// This file adds the forward, single-source counterpart of the backward
// sweep: answering "departing from src at or after a given time, when
// does each node receive the information?" — the query shape used by
// spreading analyses once the aggregation scale has been chosen — plus
// whole-graph reachability counting.

// EarliestArrivals computes, for temporal paths departing from src at a
// layer with key >= startKey, the earliest arrival key at every node
// (Unreachable if none) together with the minimum number of hops among
// paths arriving exactly at that key. arr[src] is Unreachable by
// convention (a node does not travel to itself).
func EarliestArrivals(cfg Config, layers []Layer, src int32, startKey int64) (arr []int64, hops []int32) {
	arr = make([]int64, cfg.N)
	hops = make([]int32, cfg.N)
	for i := range arr {
		arr[i] = Unreachable
	}
	if int(src) >= cfg.N || src < 0 {
		return arr, hops
	}
	const infHops = int32(1 << 30)
	// minHops[w] = fewest hops needed to reach w at any time so far;
	// needed because a relay may be reachable later with fewer hops,
	// and downstream hop counts must use "fewest hops by a deadline",
	// not "fewest hops at the relay's own earliest arrival".
	minHops := make([]int32, cfg.N)
	for i := range minHops {
		minHops[i] = infHops
	}
	// Per-layer candidate scratch with the same epoch trick as the
	// backward engine, so paths cannot chain two hops inside one layer.
	candHop := make([]int32, cfg.N)
	mark := make([]int64, cfg.N)
	touched := make([]int32, 0, 64)
	epoch := int64(0)

	for _, layer := range layers {
		if layer.Key < startKey {
			continue
		}
		key := layer.Key
		epoch++
		touched = touched[:0]
		relax := func(from, to int32) {
			if to == src {
				return
			}
			var h int32
			switch {
			case from == src:
				h = 1
			case minHops[from] != infHops: // reached strictly before this layer
				h = minHops[from] + 1
			default:
				return
			}
			if mark[to] != epoch {
				mark[to] = epoch
				candHop[to] = h
				touched = append(touched, to)
				return
			}
			if h < candHop[to] {
				candHop[to] = h
			}
		}
		for _, e := range layer.Edges {
			relax(e.U, e.V)
			if !cfg.Directed {
				relax(e.V, e.U)
			}
		}
		for _, x := range touched {
			if arr[x] == Unreachable {
				arr[x] = key
				hops[x] = candHop[x]
			}
			if candHop[x] < minHops[x] {
				minHops[x] = candHop[x]
			}
		}
	}
	return arr, hops
}

// CountReachablePairs returns the number of ordered pairs (u, v) with
// u != v such that a temporal path from u to v exists anywhere in the
// layered graph. It runs the backward sweep once per destination,
// parallel over destinations.
func CountReachablePairs(cfg Config, layers []Layer) int64 {
	counts := make([]int64, cfg.N)
	forEachDest(cfg, func(dest int32, st *destState) {
		st.run(dest, layers, cfg.Directed, nil, nil, 0)
		var c int64
		for u := 0; u < cfg.N; u++ {
			if int32(u) != dest && st.arr[u] != Unreachable {
				c++
			}
		}
		counts[dest] = c
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}
