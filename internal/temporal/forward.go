package temporal

// This file adds the forward, single-source counterpart of the backward
// sweep: answering "departing from src at or after a given time, when
// does each node receive the information?" — the query shape used by
// spreading analyses once the aggregation scale has been chosen — plus
// whole-graph reachability counting.

// EarliestArrivals computes, for temporal paths departing from src at a
// layer with key >= startKey, the earliest arrival key at every node
// (Unreachable if none) together with the minimum number of hops among
// paths arriving exactly at that key. arr[src] is Unreachable by
// convention (a node does not travel to itself).
func EarliestArrivals(cfg Config, layers []Layer, src int32, startKey int64) (arr []int64, hops []int32) {
	return EarliestArrivalsCSR(cfg, FromLayers(layers), src, startKey)
}

// EarliestArrivalsCSR is EarliestArrivals on the flat CSR arena.
func EarliestArrivalsCSR(cfg Config, c *CSR, src int32, startKey int64) (arr []int64, hops []int32) {
	arr = make([]int64, cfg.N)
	hops = make([]int32, cfg.N)
	for i := range arr {
		arr[i] = Unreachable
	}
	if int(src) >= cfg.N || src < 0 {
		return arr, hops
	}
	const infHops = int32(1 << 30)
	// minHops[w] = fewest hops needed to reach w at any time so far;
	// needed because a relay may be reachable later with fewer hops,
	// and downstream hop counts must use "fewest hops by a deadline",
	// not "fewest hops at the relay's own earliest arrival".
	minHops := make([]int32, cfg.N)
	for i := range minHops {
		minHops[i] = infHops
	}
	// Per-layer candidate scratch with the same epoch trick as the
	// backward engine, so paths cannot chain two hops inside one layer.
	candHop := make([]int32, cfg.N)
	mark := make([]int32, cfg.N)
	touched := make([]int32, 0, 64)
	epoch := int32(0)

	relax := func(to int32, h int32) {
		if mark[to] != epoch {
			mark[to] = epoch
			candHop[to] = h
			touched = append(touched, to)
		} else if h < candHop[to] {
			candHop[to] = h
		}
	}
	keys, off, ends := c.Keys, c.Off, c.Ends
	// First layer with key >= startKey: keys are strictly increasing.
	li0 := 0
	for li0 < len(keys) && keys[li0] < startKey {
		li0++
	}
	for li := li0; li < len(keys); li++ {
		key := keys[li]
		epoch++
		touched = touched[:0]
		for e2, hi2 := 2*off[li], 2*off[li+1]; e2 < hi2; e2 += 2 {
			u, v := ends[e2], ends[e2+1]
			// A link (u, v) carries information forward from u to v.
			if v != src {
				if u == src {
					relax(v, 1)
				} else if mh := minHops[u]; mh != infHops { // reached strictly before this layer
					relax(v, mh+1)
				}
			}
			if cfg.Directed || u == src {
				continue
			}
			if v == src {
				relax(u, 1)
			} else if mh := minHops[v]; mh != infHops {
				relax(u, mh+1)
			}
		}
		for _, x := range touched {
			if arr[x] == Unreachable {
				arr[x] = key
				hops[x] = candHop[x]
			}
			if candHop[x] < minHops[x] {
				minHops[x] = candHop[x]
			}
		}
	}
	return arr, hops
}

// CountReachablePairs returns the number of ordered pairs (u, v) with
// u != v such that a temporal path from u to v exists anywhere in the
// layered graph. It runs the backward sweep once per destination,
// parallel over destinations.
func CountReachablePairs(cfg Config, layers []Layer) int64 {
	return CountReachablePairsCSR(cfg, FromLayers(layers))
}
