package temporal

import (
	"math"
	"sort"
)

// This file contains an exhaustive reference implementation of the
// temporal-path definitions, used to validate the backward DP engine on
// small instances. It is deliberately simple and slow: O(L * n * M) per
// (source, start) pair.

// bruteReach computes, for source u departing at layer index si or
// later, the earliest arrival key ea[v] (Unreachable if none) and the
// minimum number of hops among temporal paths arriving exactly at ea[v].
func bruteReach(n int, layers []Layer, directed bool, u int32, si int) (ea []int64, hopsAtEA []int32) {
	const inf = math.MaxInt32
	hopBy := make([]int32, n) // min hops to reach node using layers si..j
	ea = make([]int64, n)
	hopsAtEA = make([]int32, n)
	for i := range hopBy {
		hopBy[i] = inf
		ea[i] = Unreachable
	}
	hopBy[u] = 0
	old := make([]int32, n)
	for j := si; j < len(layers); j++ {
		copy(old, hopBy)
		relax := func(a, b int32) {
			if old[a] == inf {
				return
			}
			if c := old[a] + 1; c < hopBy[b] {
				hopBy[b] = c
			}
		}
		for _, e := range layers[j].Edges {
			relax(e.U, e.V)
			if !directed {
				relax(e.V, e.U)
			}
		}
		for v := 0; v < n; v++ {
			if ea[v] == Unreachable && hopBy[v] != inf && int32(v) != u {
				ea[v] = layers[j].Key
				hopsAtEA[v] = hopBy[v]
			}
		}
	}
	return ea, hopsAtEA
}

// bruteTrips enumerates all minimal trips by comparing earliest arrivals
// across consecutive start layers: a trip departs at layer si iff the
// earliest arrival strictly degrades when departing at layer si+1.
func bruteTrips(n int, layers []Layer, directed bool) []Trip {
	var out []Trip
	L := len(layers)
	for u := int32(0); int(u) < n; u++ {
		// eaBy[si][v] for all start indices.
		eaBy := make([][]int64, L+1)
		hopBy := make([][]int32, L+1)
		for si := 0; si <= L; si++ {
			if si == L {
				eaBy[si] = make([]int64, n)
				for v := range eaBy[si] {
					eaBy[si][v] = Unreachable
				}
				hopBy[si] = make([]int32, n)
				continue
			}
			eaBy[si], hopBy[si] = bruteReach(n, layers, directed, u, si)
		}
		for v := int32(0); int(v) < n; v++ {
			if v == u {
				continue
			}
			for si := 0; si < L; si++ {
				if eaBy[si][v] != Unreachable && eaBy[si][v] < eaBy[si+1][v] {
					out = append(out, Trip{U: u, V: v, Dep: layers[si].Key, Arr: eaBy[si][v], Hops: hopBy[si][v]})
				}
			}
		}
	}
	return out
}

// bruteDistances reproduces Distances by direct summation over every
// integer start time in [kMin, maxKey].
func bruteDistances(n int, layers []Layer, directed bool, kMin, durPlus int64) DistanceStats {
	if len(layers) == 0 {
		return DistanceStats{}
	}
	maxKey := layers[len(layers)-1].Key
	var sumT, sumH float64
	var count int64
	for u := int32(0); int(u) < n; u++ {
		for k := kMin; k <= maxKey; k++ {
			// start index: first layer with key >= k
			si := sort.Search(len(layers), func(i int) bool { return layers[i].Key >= k })
			if si == len(layers) {
				continue
			}
			ea, hops := bruteReach(n, layers, directed, u, si)
			for v := 0; v < n; v++ {
				if int32(v) == u || ea[v] == Unreachable {
					continue
				}
				sumT += float64(ea[v] - k + durPlus)
				sumH += float64(hops[v])
				count++
			}
		}
	}
	if count == 0 {
		return DistanceStats{}
	}
	return DistanceStats{MeanTime: sumT / float64(count), MeanHops: sumH / float64(count), Count: count}
}

// sortTrips orders trips canonically for comparison.
func sortTrips(ts []Trip) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		if a.Dep != b.Dep {
			return a.Dep < b.Dep
		}
		return a.Arr < b.Arr
	})
}
