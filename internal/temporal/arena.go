package temporal

// This file implements the size-classed CSR arena pool of the sweep
// engine. Every aggregation period of a run builds one CSR — a keys
// array, an offsets array and a flat endpoints array whose sizes are
// all bounded by the period's event count — and drops it as soon as the
// period's products are delivered. Recycling those arrays through a
// generic sync.Pool regrows them whenever periods of different sizes
// interleave (a pooled buffer of the wrong size helps nobody); the
// arena pool instead shelves complete backing-array sets by a
// (nodes, events) size class, so consecutive periods of similar
// magnitude reuse one contiguous arena — including the reciprocal
// table, the single largest allocation of stream-keyed periods. The
// pool is deliberately not a sync.Pool: shelves are evicted
// deterministically once their class goes idle, so one huge period
// followed by thousands of tiny ones cannot pin the huge class's
// memory for the rest of the process (the GC of sync.Pool offers no
// such bound within a run).

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/linkstream"
)

// arenaClass is the size class of a CSR arena: the ceil-pow2 exponents
// of the run's node count and the period's event count. Two periods of
// the same class produce backing arrays within 2x of each other, so
// reuse never grows a buffer by more than one doubling step.
type arenaClass struct{ nodes, events uint8 }

func classExp(n int) uint8 {
	if n <= 1 {
		return 0
	}
	return uint8(bits.Len(uint(n - 1)))
}

func arenaClassFor(nodes, events int) arenaClass {
	return arenaClass{nodes: classExp(nodes), events: classExp(events)}
}

// csrArena is one recyclable set of CSR backing arrays. The arrays keep
// their capacity across uses; lengths are re-derived by each build.
type csrArena struct {
	keys  []int64
	off   []int
	ends  []int32
	recip []float64
}

const (
	// arenaShelfCap bounds how many idle arenas one size class keeps:
	// enough for every in-flight period of a small engine run, small
	// enough that a wide class mix stays cheap.
	arenaShelfCap = 4
	// arenaEvictAfter is the idle bound of a shelf, measured in pool
	// operations (gets + puts): a class untouched for this many
	// operations while other classes cycle is dead weight — typically a
	// lone huge period followed by a long run of small ones — and its
	// arenas are released to the GC.
	arenaEvictAfter = 64
)

type arenaShelf struct {
	arenas []*csrArena
	last   uint64 // arenaGen value of the shelf's most recent get/put
}

var (
	arenaMu      sync.Mutex
	arenaShelves map[arenaClass]*arenaShelf
	arenaGen     uint64
)

// Arena accounting, mirroring the trip-lane counters: arenasHanded
// counts the arena-backed CSRs BuildCSRArena handed out, arenasRecycled
// the arenas returned through RecycleCSR, arenasReused the hands that
// were served from a shelf instead of a fresh allocation. After any
// complete engine run — finished, failed or cancelled — handed and
// recycled must balance: a surplus of handed arenas is a leak of the
// largest buffers the engine owns. The cancellation regression tests
// assert exactly that.
var arenasHanded, arenasRecycled, arenasReused atomic.Int64

// ResetArenaStats zeroes the arena accounting counters.
func ResetArenaStats() {
	arenasHanded.Store(0)
	arenasRecycled.Store(0)
	arenasReused.Store(0)
}

// ArenaStats returns how many arena-backed CSRs were handed out, how
// many arenas were recycled, and how many hands reused a shelved arena
// since the last ResetArenaStats.
func ArenaStats() (handed, recycled, reused int64) {
	return arenasHanded.Load(), arenasRecycled.Load(), arenasReused.Load()
}

// getArena pops an arena of the class from its shelf, or returns nil on
// a miss. Either way the class is marked live.
func getArena(class arenaClass) *csrArena {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	arenaGen++
	sh := arenaShelves[class]
	if sh == nil {
		return nil
	}
	sh.last = arenaGen
	if n := len(sh.arenas); n > 0 {
		a := sh.arenas[n-1]
		sh.arenas[n-1] = nil
		sh.arenas = sh.arenas[:n-1]
		return a
	}
	return nil
}

// putArena shelves an arena for its class (dropping it when the shelf
// is full) and evicts every class left idle for arenaEvictAfter pool
// operations.
func putArena(class arenaClass, a *csrArena) {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	arenaGen++
	if arenaShelves == nil {
		arenaShelves = make(map[arenaClass]*arenaShelf)
	}
	sh := arenaShelves[class]
	if sh == nil {
		sh = &arenaShelf{}
		arenaShelves[class] = sh
	}
	sh.last = arenaGen
	if len(sh.arenas) < arenaShelfCap {
		sh.arenas = append(sh.arenas, a)
	}
	for c, s := range arenaShelves {
		if arenaGen-s.last > arenaEvictAfter {
			delete(arenaShelves, c)
		}
	}
}

// BuildCSRArena is BuildCSR backed by the size-classed arena pool: the
// returned CSR's Keys/Off/Ends arrays (and its lazily built reciprocal
// table) live in an arena of the (nodes, events) class, reused from a
// previous period of similar size when one is shelved. The caller owns
// the CSR until it hands it back with RecycleCSR — which it must do on
// every exit path, including cancellation, or the arena accounting
// (ArenaStats) reports the leak. nodes is the run's node count; events,
// t0, delta and scratch are exactly BuildCSR's.
func BuildCSRArena(events []linkstream.Event, t0, delta int64, nodes int, scratch *CSRScratch) *CSR {
	if len(events) == 0 {
		// Nothing to arena: the empty CSR allocates nothing worth
		// recycling, and RecycleCSR on it is a no-op.
		return BuildCSR(events, t0, delta, scratch)
	}
	class := arenaClassFor(nodes, len(events))
	a := getArena(class)
	reused := a != nil
	if reused {
		arenasReused.Add(1)
	} else {
		a = &csrArena{ends: make([]int32, 0, 2*len(events))}
	}
	c := &CSR{
		Keys:   a.keys[:0],
		Off:    a.off[:0],
		Ends:   a.ends[:0],
		arena:  a,
		class:  class,
		reused: reused,
	}
	if cap(c.Ends) < 2*len(events) {
		c.Ends = make([]int32, 0, 2*len(events))
	}
	buildCSRInto(c, events, t0, delta, scratch)
	arenasHanded.Add(1)
	return c
}

// RecycleCSR returns an arena-backed CSR's backing arrays to the pool.
// The CSR must not be used afterwards; its slices are detached to make
// use-after-recycle fail fast rather than corrupt a reused arena.
// Calling it on a plain-built CSR (BuildCSR, FromLayers, ...) or nil is
// a harmless no-op, so engine teardown paths can recycle
// unconditionally.
func RecycleCSR(c *CSR) {
	if c == nil || c.arena == nil {
		return
	}
	a := c.arena
	a.keys = c.Keys[:0]
	a.off = c.Off[:0]
	a.ends = c.Ends[:0]
	if c.recip != nil {
		a.recip = c.recip
	}
	c.arena = nil
	c.Keys, c.Off, c.Ends, c.recip = nil, nil, nil, nil
	putArena(c.class, a)
	arenasRecycled.Add(1)
}
