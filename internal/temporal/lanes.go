package temporal

// This file holds the lane-width machinery of the blocked backward
// sweep: the width heuristic, the validation helpers shared by every
// configuration surface, and the hand-unrolled relax kernels. The
// blocked sweep processes `width` destinations per pass over the
// layers; blocking amortises the edge stream (loads, loop control)
// across lanes, so widening the block halves the number of layer
// passes per destination set. The Go compiler does not unroll the
// short per-edge lane loop, so each supported width gets its own
// straight-line kernel — relaxLanes4 and relaxLanes8 are the
// "compile-time instantiated" variants the engine picks between once,
// at sweep-state construction. Lanes are fully independent: a slot
// only ever compares and assigns its own lane's state, so for every
// width the per-destination sequence of relaxations and commits is
// identical to the single-destination sweep's, and every product
// (trips, occupancies, distance segments) is bit-exact across widths.

import (
	"math/bits"
	"runtime"
)

// MaxLaneWidth is the widest compiled sweep kernel; sweepState's
// per-lane sink array is sized to it.
const MaxLaneWidth = 8

// DefaultLaneWidth returns the lane width the blocked sweep uses when
// no explicit width is configured: 8 on the 64-byte-cache-line
// architectures (a node's 8 packed int64 lanes span exactly one cache
// line, and the wider block halves the layer passes per destination
// set), 4 elsewhere. The heuristic is keyed on the build architecture
// alone, so it is deterministic for a given binary.
func DefaultLaneWidth() int {
	switch runtime.GOARCH {
	case "amd64", "arm64":
		return 8
	default:
		return 4
	}
}

// ValidLaneWidth reports whether w is an accepted lane-width setting:
// 0 (auto — DefaultLaneWidth) or one of the compiled kernel widths.
func ValidLaneWidth(w int) bool { return w == 0 || w == 4 || w == 8 }

// ResolveLaneWidth maps a configured lane width to a kernel width:
// 0 selects DefaultLaneWidth, 4 and 8 select their hand-unrolled
// kernels. Callers validate with ValidLaneWidth first; anything else
// panics.
func ResolveLaneWidth(w int) int {
	switch w {
	case 0:
		return DefaultLaneWidth()
	case 4, 8:
		return w
	}
	panic("temporal: unsupported lane width")
}

// laneShift returns log2(width), the shift that maps a blocked state
// slot to its node (slot >> shift) with lane = slot & (width-1).
func laneShift(width int) uint { return uint(bits.TrailingZeros(uint(width))) }

// relaxLanes4 relaxes one layer's edge list over the 4-lane blocked
// state: for every link (u, v), v's standing state (arrival departing
// at the next layer) relaxes u — and u's relaxes v when the analysis
// is undirected — independently per lane. Slots whose candidate became
// active are appended to touched, which is returned. The body is
// manually unrolled over the lanes: the compiler does not unroll the
// short inner loop, and the whole point of blocking is straight-line
// work per edge.
func relaxLanes4(nodeB, candB []int64, edges []int32, directed bool, touched []int32) []int32 {
	for j := 0; j+1 < len(edges); j += 2 {
		bu := 4 * int(edges[j])
		bv := 4 * int(edges[j+1])
		nu := nodeB[bu : bu+4 : bu+4]
		nv := nodeB[bv : bv+4 : bv+4]
		pu0, pu1, pu2, pu3 := nu[0], nu[1], nu[2], nu[3]
		pv0, pv1, pv2, pv3 := nv[0], nv[1], nv[2], nv[3]
		if p := pv0 + 1; p < pu0 {
			if cnd := candB[bu]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu))
				}
				candB[bu] = p
			}
		}
		if p := pv1 + 1; p < pu1 {
			if cnd := candB[bu+1]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu+1))
				}
				candB[bu+1] = p
			}
		}
		if p := pv2 + 1; p < pu2 {
			if cnd := candB[bu+2]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu+2))
				}
				candB[bu+2] = p
			}
		}
		if p := pv3 + 1; p < pu3 {
			if cnd := candB[bu+3]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu+3))
				}
				candB[bu+3] = p
			}
		}
		if directed {
			continue
		}
		if p := pu0 + 1; p < pv0 {
			if cnd := candB[bv]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv))
				}
				candB[bv] = p
			}
		}
		if p := pu1 + 1; p < pv1 {
			if cnd := candB[bv+1]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv+1))
				}
				candB[bv+1] = p
			}
		}
		if p := pu2 + 1; p < pv2 {
			if cnd := candB[bv+2]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv+2))
				}
				candB[bv+2] = p
			}
		}
		if p := pu3 + 1; p < pv3 {
			if cnd := candB[bv+3]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv+3))
				}
				candB[bv+3] = p
			}
		}
	}
	return touched
}

// relaxLanes8 is relaxLanes4 widened to the 8-lane kernel: one (u, v)
// edge read feeds eight independent relaxations, so a destination set
// costs half the layer passes of the 4-lane sweep.
func relaxLanes8(nodeB, candB []int64, edges []int32, directed bool, touched []int32) []int32 {
	for j := 0; j+1 < len(edges); j += 2 {
		bu := 8 * int(edges[j])
		bv := 8 * int(edges[j+1])
		nu := nodeB[bu : bu+8 : bu+8]
		nv := nodeB[bv : bv+8 : bv+8]
		pu0, pu1, pu2, pu3 := nu[0], nu[1], nu[2], nu[3]
		pu4, pu5, pu6, pu7 := nu[4], nu[5], nu[6], nu[7]
		pv0, pv1, pv2, pv3 := nv[0], nv[1], nv[2], nv[3]
		pv4, pv5, pv6, pv7 := nv[4], nv[5], nv[6], nv[7]
		if p := pv0 + 1; p < pu0 {
			if cnd := candB[bu]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu))
				}
				candB[bu] = p
			}
		}
		if p := pv1 + 1; p < pu1 {
			if cnd := candB[bu+1]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu+1))
				}
				candB[bu+1] = p
			}
		}
		if p := pv2 + 1; p < pu2 {
			if cnd := candB[bu+2]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu+2))
				}
				candB[bu+2] = p
			}
		}
		if p := pv3 + 1; p < pu3 {
			if cnd := candB[bu+3]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu+3))
				}
				candB[bu+3] = p
			}
		}
		if p := pv4 + 1; p < pu4 {
			if cnd := candB[bu+4]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu+4))
				}
				candB[bu+4] = p
			}
		}
		if p := pv5 + 1; p < pu5 {
			if cnd := candB[bu+5]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu+5))
				}
				candB[bu+5] = p
			}
		}
		if p := pv6 + 1; p < pu6 {
			if cnd := candB[bu+6]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu+6))
				}
				candB[bu+6] = p
			}
		}
		if p := pv7 + 1; p < pu7 {
			if cnd := candB[bu+7]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bu+7))
				}
				candB[bu+7] = p
			}
		}
		if directed {
			continue
		}
		if p := pu0 + 1; p < pv0 {
			if cnd := candB[bv]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv))
				}
				candB[bv] = p
			}
		}
		if p := pu1 + 1; p < pv1 {
			if cnd := candB[bv+1]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv+1))
				}
				candB[bv+1] = p
			}
		}
		if p := pu2 + 1; p < pv2 {
			if cnd := candB[bv+2]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv+2))
				}
				candB[bv+2] = p
			}
		}
		if p := pu3 + 1; p < pv3 {
			if cnd := candB[bv+3]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv+3))
				}
				candB[bv+3] = p
			}
		}
		if p := pu4 + 1; p < pv4 {
			if cnd := candB[bv+4]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv+4))
				}
				candB[bv+4] = p
			}
		}
		if p := pu5 + 1; p < pv5 {
			if cnd := candB[bv+5]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv+5))
				}
				candB[bv+5] = p
			}
		}
		if p := pu6 + 1; p < pv6 {
			if cnd := candB[bv+6]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv+6))
				}
				candB[bv+6] = p
			}
		}
		if p := pu7 + 1; p < pv7 {
			if cnd := candB[bv+7]; p < cnd {
				if cnd == noCand {
					touched = append(touched, int32(bv+7))
				}
				candB[bv+7] = p
			}
		}
	}
	return touched
}

// relaxLanes dispatches one layer's relax pass to the kernel compiled
// for the state's width. The dispatch happens once per layer, not per
// edge, so the kernel bodies stay straight-line.
func (st *sweepState) relaxLanes(edges []int32, directed bool, touched []int32) []int32 {
	if st.width == 8 {
		return relaxLanes8(st.nodeB, st.candB, edges, directed, touched)
	}
	return relaxLanes4(st.nodeB, st.candB, edges, directed, touched)
}
