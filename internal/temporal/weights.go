package temporal

import (
	"slices"

	"repro/internal/linkstream"
	"repro/internal/snapshot"
)

// EdgeWeightsCSR computes the weighted aggregation of a period: the
// contact count of every edge of the CSR that BuildCSR produced from
// the same (events, t0, delta) — edge weight = number of stream events
// the window collapses onto that edge, the AggregateNet semantics of
// pyTempNet / GraphTempo.
//
// The result is aligned index-for-index with c's edge list: entry e is
// the weight of the edge at c.Ends[2e], c.Ends[2e+1], and layer li's
// weights are the slice [c.Off[li], c.Off[li+1]). The alignment holds
// because buildCSRInto deduplicates each window by sorting its packed
// (U, V) keys ascending and compacting: re-sorting the same window's
// keys here visits the distinct keys in exactly that order, so a
// run-length count over the sorted keys fills the window's weight
// slots in CSR edge order. Per layer, the weights sum to the window's
// event count.
//
// events must be the same pre-sorted (and, for undirected analyses,
// canonicalised) buffer the CSR was built from. scratch is reused
// across calls like in BuildCSR; use one per goroutine.
func EdgeWeightsCSR(events []linkstream.Event, t0, delta int64, c *CSR, scratch *CSRScratch) []int32 {
	out := make([]int32, c.Off[len(c.Off)-1])
	i, li := 0, 0
	for i < len(events) {
		k := (events[i].T - t0) / delta
		end := i
		for end < len(events) && (events[end].T-t0)/delta == k {
			end++
		}
		buf := scratch.keys[:0]
		for _, e := range events[i:end] {
			buf = append(buf, snapshot.PackEdge(e.U, e.V))
		}
		scratch.keys = buf
		slices.Sort(buf)
		accumulateRuns(buf, out[c.Off[li]:c.Off[li+1]])
		li++
		i = end
	}
	return out
}

// accumulateRuns run-length counts the sorted keys into w: w[j] ends up
// holding the multiplicity of the j-th distinct key. len(w) must equal
// the number of distinct keys — the weighted-aggregation accumulator
// contract, pinned by the fuzz target in weights_test.go.
func accumulateRuns(sorted []uint64, w []int32) {
	ei := -1
	var prev uint64
	for _, key := range sorted {
		if ei < 0 || key != prev {
			ei++
			prev = key
		}
		w[ei]++
	}
}
