package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linkstream"
)

func TestEarliestArrivalsChain(t *testing.T) {
	s := linkstream.New()
	for _, e := range []struct {
		u, v string
		t    int64
	}{{"a", "b", 1}, {"b", "c", 3}, {"c", "d", 7}, {"a", "d", 9}} {
		if err := s.Add(e.u, e.v, e.t); err != nil {
			t.Fatal(err)
		}
	}
	layers := StreamLayers(s, false)
	cfg := Config{N: s.NumNodes()}
	a, _ := s.NodeID("a")
	d, _ := s.NodeID("d")
	c, _ := s.NodeID("c")

	arr, hops := EarliestArrivals(cfg, layers, a, 0)
	if arr[d] != 7 || hops[d] != 3 { // a-b-c-d beats the direct link at 9
		t.Fatalf("arr[d]=%d hops=%d, want 7,3", arr[d], hops[d])
	}
	if arr[c] != 3 || hops[c] != 2 {
		t.Fatalf("arr[c]=%d hops=%d, want 3,2", arr[c], hops[c])
	}
	if arr[a] != Unreachable {
		t.Fatal("source should be marked unreachable from itself")
	}

	// Departing after t=1 the chain is broken; only the direct link at
	// 9 remains.
	arr2, hops2 := EarliestArrivals(cfg, layers, a, 2)
	if arr2[d] != 9 || hops2[d] != 1 {
		t.Fatalf("late departure: arr[d]=%d hops=%d, want 9,1", arr2[d], hops2[d])
	}
	if arr2[c] != Unreachable {
		t.Fatalf("c should be unreachable departing at 2: %d", arr2[c])
	}
}

func TestEarliestArrivalsHopsByDeadline(t *testing.T) {
	// Relay m is reachable at t=1 via 2 hops and at t=3 via 1 hop; the
	// edge (m, z) fires at t=5, so the min-hop path to z is 2, not 3.
	s := linkstream.New()
	for _, e := range []struct {
		u, v string
		t    int64
	}{{"s", "x", 1}, {"x", "m", 2}, {"s", "m", 3}, {"m", "z", 5}} {
		if err := s.Add(e.u, e.v, e.t); err != nil {
			t.Fatal(err)
		}
	}
	layers := StreamLayers(s, false)
	cfg := Config{N: s.NumNodes()}
	src, _ := s.NodeID("s")
	z, _ := s.NodeID("z")
	m, _ := s.NodeID("m")
	arr, hops := EarliestArrivals(cfg, layers, src, 0)
	if arr[m] != 2 || hops[m] != 2 {
		t.Fatalf("arr[m]=%d hops=%d, want 2,2", arr[m], hops[m])
	}
	if arr[z] != 5 || hops[z] != 2 { // s-m at 3, m-z at 5
		t.Fatalf("arr[z]=%d hops=%d, want 5,2", arr[z], hops[z])
	}
}

func TestEarliestArrivalsBadSource(t *testing.T) {
	arr, _ := EarliestArrivals(Config{N: 3}, nil, 99, 0)
	for _, a := range arr {
		if a != Unreachable {
			t.Fatal("out-of-range source should reach nothing")
		}
	}
}

// Property: the forward sweep agrees with the exhaustive reference for
// every start layer, directed and undirected.
func TestQuickForwardMatchesBruteForce(t *testing.T) {
	f := func(seed int64, dir bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		layers := randomLayers(rng, n, 6, 5)
		cfg := Config{N: n, Directed: dir}
		for src := int32(0); int(src) < n; src++ {
			for si := 0; si <= len(layers); si++ {
				var startKey int64
				if si < len(layers) {
					startKey = layers[si].Key
				} else if len(layers) > 0 {
					startKey = layers[len(layers)-1].Key + 1
				}
				arr, hops := EarliestArrivals(cfg, layers, src, startKey)
				wantArr, wantHops := bruteReach(n, layers, dir, src, si)
				for v := 0; v < n; v++ {
					if int32(v) == src {
						continue
					}
					if arr[v] != wantArr[v] {
						return false
					}
					if arr[v] != Unreachable && hops[v] != wantHops[v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: forward and backward sweeps agree on reachability, and
// CountReachablePairs matches a forward enumeration.
func TestQuickReachabilityConsistent(t *testing.T) {
	f := func(seed int64, dir bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		layers := randomLayers(rng, n, 8, 6)
		cfg := Config{N: n, Directed: dir, Workers: 2}
		got := CountReachablePairs(cfg, layers)
		var want int64
		for src := int32(0); int(src) < n; src++ {
			arr, _ := EarliestArrivals(cfg, layers, src, -1<<62)
			for v := 0; v < n; v++ {
				if int32(v) != src && arr[v] != Unreachable {
					want++
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
