// Package temporal implements the temporal-path machinery of the paper
// (Definitions 2-7): temporal paths, minimal trips, shortest transitions,
// occupancy rates and the three distance notions dtime, dhops, dabstime.
//
// The central algorithm is the backward dynamic-programming sweep the
// paper describes in Section 5: for a fixed destination v, snapshots are
// scanned from the last to the first while maintaining, for every node u,
// the earliest arrival at v over temporal paths departing at or after the
// current time, together with the minimum number of hops among the paths
// realising that arrival. Every strict improvement of the earliest
// arrival at time k is exactly one minimal trip (u, v, k, arr). The
// sweep touches only non-empty snapshots, giving the paper's O(nM) time
// with O(n) working memory per destination, where M is the total number
// of edges over all snapshots.
//
// The same engine runs on a graph series (layer keys are window indices,
// durations count windows, dur = arr-dep+1) and on a raw link stream
// (layer keys are timestamps, dur = arr-dep).
package temporal

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/linkstream"
	"repro/internal/series"
	"repro/internal/snapshot"
)

// Unreachable is the earliest-arrival value of nodes that cannot reach
// the destination.
const Unreachable = math.MaxInt64

// Layer is one time layer of a layered dynamic graph: a deduplicated
// edge set at time key Key. Layers must be sorted by strictly
// increasing Key.
type Layer struct {
	Key   int64
	Edges []snapshot.Edge
}

// Trip is a minimal trip (Definition 5): there is a temporal path from U
// to V departing at Dep and arriving at Arr, and no trip between U and V
// fits in a strictly smaller interval. Hops is the minimum number of
// hops among temporal paths departing exactly at Dep and arriving
// exactly at Arr (which is the paper's occupancy numerator).
type Trip struct {
	U, V     int32
	Dep, Arr int64
	Hops     int32
}

// Occupancy returns hops(P)/time(P) for the trip in graph-series
// semantics, where time(P) = Arr - Dep + 1 windows (Definition 7).
func (t Trip) Occupancy() float64 {
	return float64(t.Hops) / float64(t.Arr-t.Dep+1)
}

// Config carries the engine parameters shared by all entry points.
type Config struct {
	N         int  // number of nodes
	Directed  bool // follow edge orientation if true
	Workers   int  // parallel destinations; <= 0 means GOMAXPROCS
	LaneWidth int  // blocked-sweep lane width: 0 (auto), 4 or 8
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SeriesLayers converts an aggregated series into engine layers (window
// indices as keys). The series' Directed flag must match the Config used
// with the layers.
func SeriesLayers(g *series.Series) []Layer {
	layers := make([]Layer, len(g.Windows))
	for i, w := range g.Windows {
		layers[i] = Layer{Key: w.K, Edges: w.Edges}
	}
	return layers
}

// StreamLayers groups the events of a (sorted) link stream by timestamp
// into engine layers with raw timestamps as keys. If directed is false,
// edges are canonicalised; duplicated events inside a timestamp are
// collapsed (by sort-and-compact, via the CSR builder).
func StreamLayers(s *linkstream.Stream, directed bool) []Layer {
	return StreamCSR(s, directed).Layers()
}

// destState is the per-worker scratch memory of the slice-based
// backward sweep. This implementation predates the CSR engine (csr.go)
// and is retained as the reference the CSR sweep is equivalence-tested
// against; production entry points all route through the CSR arena.
type destState struct {
	arr     []int64 // earliest arrival at dest for departures >= current key
	hop     []int32 // min hops among paths realising arr
	segKey  []int64 // key at which (arr, hop) became active
	candArr []int64 // per-layer candidate arrival
	candHop []int32
	mark    []int64 // epoch stamps for candArr/candHop
	touched []int32
	epoch   int64
}

func newDestState(n int) *destState {
	return &destState{
		arr:     make([]int64, n),
		hop:     make([]int32, n),
		segKey:  make([]int64, n),
		candArr: make([]int64, n),
		candHop: make([]int32, n),
		mark:    make([]int64, n),
		touched: make([]int32, 0, 64),
	}
}

// distAcc accumulates the distance sums of Figure 2 over the segments of
// the piecewise-constant function k -> (arr(u,v,k), dhops(u,v,k)).
type distAcc struct {
	sumTime float64
	sumHops float64
	count   int64
	durPlus int64 // 1 for graph series, 0 for link streams
	kMin    int64 // smallest start time considered (usually 0)
}

// addSegment accounts start times k in [kFrom, kTo] all having earliest
// arrival a and min hops h.
func (d *distAcc) addSegment(a, kFrom, kTo int64, h int32) {
	if kFrom < d.kMin {
		kFrom = d.kMin
	}
	if kFrom > kTo {
		return
	}
	cnt := kTo - kFrom + 1
	d.count += cnt
	// sum over k of (a - k + durPlus)
	d.sumTime += float64(cnt)*float64(a+d.durPlus) - float64(kFrom+kTo)*float64(cnt)/2
	d.sumHops += float64(cnt) * float64(h)
}

// run performs one backward sweep for destination dest. visit, if non
// nil, receives every minimal trip (u, dest, dep, arr, hops) in order of
// strictly decreasing dep per source. acc, if non nil, accumulates the
// distance sums for all start times in [acc.kMin, kMax].
func (st *destState) run(dest int32, layers []Layer, directed bool, visit func(u int32, dep, arr int64, hops int32), acc *distAcc, kMax int64) {
	n := len(st.arr)
	for i := 0; i < n; i++ {
		st.arr[i] = Unreachable
		st.hop[i] = 0
		st.segKey[i] = 0
		st.mark[i] = 0
	}
	st.epoch = 0

	relax := func(x, via int32, key int64) {
		if x == dest {
			return
		}
		var ca int64
		var ch int32
		if via == dest {
			ca, ch = key, 1
		} else if a := st.arr[via]; a != Unreachable {
			ca, ch = a, st.hop[via]+1
		} else {
			return
		}
		// Discard candidates that cannot improve on the standing value.
		if ca > st.arr[x] || (ca == st.arr[x] && ch >= st.hop[x]) {
			return
		}
		if st.mark[x] != st.epoch {
			st.mark[x] = st.epoch
			st.candArr[x] = ca
			st.candHop[x] = ch
			st.touched = append(st.touched, x)
			return
		}
		if ca < st.candArr[x] || (ca == st.candArr[x] && ch < st.candHop[x]) {
			st.candArr[x] = ca
			st.candHop[x] = ch
		}
	}

	for li := len(layers) - 1; li >= 0; li-- {
		layer := layers[li]
		key := layer.Key
		st.epoch++
		st.touched = st.touched[:0]
		for _, e := range layer.Edges {
			// A directed link (u, v) lets u move to v; the backward state
			// of v (arrival departing >= key+1) therefore relaxes u.
			relax(e.U, e.V, key)
			if !directed {
				relax(e.V, e.U, key)
			}
		}
		for _, x := range st.touched {
			ca, ch := st.candArr[x], st.candHop[x]
			switch {
			case ca < st.arr[x]:
				if acc != nil && st.arr[x] != Unreachable {
					acc.addSegment(st.arr[x], key+1, st.segKey[x], st.hop[x])
				}
				st.arr[x] = ca
				st.hop[x] = ch
				st.segKey[x] = key
				if visit != nil {
					visit(x, key, ca, ch)
				}
			case ca == st.arr[x] && ch < st.hop[x]:
				// Same earliest arrival reachable with fewer hops when
				// departing earlier: not a minimal trip (the interval
				// strictly contains an existing one) but the hop count
				// must be refreshed for upstream relaxations and for
				// dhops segment tracking.
				if acc != nil {
					acc.addSegment(st.arr[x], key+1, st.segKey[x], st.hop[x])
				}
				st.hop[x] = ch
				st.segKey[x] = key
			}
		}
	}

	if acc != nil {
		for u := int32(0); int(u) < n; u++ {
			if u == dest || st.arr[u] == Unreachable {
				continue
			}
			acc.addSegment(st.arr[u], acc.kMin, st.segKey[u], st.hop[u])
		}
		_ = kMax
	}
}

// forEachDest runs fn for every destination using cfg.Workers parallel
// workers, each with its own scratch state.
func forEachDest(cfg Config, fn func(dest int32, st *destState)) {
	w := cfg.workers()
	if w > cfg.N {
		w = cfg.N
	}
	if w <= 1 {
		st := newDestState(cfg.N)
		for d := int32(0); int(d) < cfg.N; d++ {
			fn(d, st)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newDestState(cfg.N)
			for {
				d := next.Add(1) - 1
				if d >= int64(cfg.N) {
					return
				}
				fn(int32(d), st)
			}
		}()
	}
	wg.Wait()
}

// ForEachTrip enumerates all minimal trips sequentially in deterministic
// order: destinations in increasing id, then strictly decreasing
// departure per destination sweep.
func ForEachTrip(cfg Config, layers []Layer, visit func(Trip)) {
	c := FromLayers(layers)
	st := getSweepState(cfg.N, ResolveLaneWidth(cfg.LaneWidth))
	for d := int32(0); int(d) < cfg.N; d++ {
		st.run(c, d, cfg.Directed, func(u int32, dep, arr int64, hops int32) {
			visit(Trip{U: u, V: d, Dep: dep, Arr: arr, Hops: hops})
		}, nil)
	}
	putSweepState(st)
}

// CollectTrips returns every minimal trip of the layered graph. The
// sweep is parallel over destinations; the order of the result is
// unspecified.
func CollectTrips(cfg Config, layers []Layer) []Trip {
	return CollectTripsCSR(cfg, FromLayers(layers))
}

// Occupancies returns the occupancy rates (Definition 7) of all minimal
// trips of an aggregated graph series given as layers. The sweep is
// parallel over destinations; the order of the result is unspecified.
func Occupancies(cfg Config, layers []Layer) []float64 {
	return OccupanciesCSR(cfg, FromLayers(layers))
}

// DistanceStats aggregates the distance properties of Figure 2 over all
// ordered couples (u, v) and all start times with a finite distance.
type DistanceStats struct {
	MeanTime float64 // mean dtime (window counts for series; raw time for streams)
	MeanHops float64 // mean dhops
	Count    int64   // number of finite (u, v, t) triples
}

// Distances computes the mean distance in time and in hops of the
// layered graph, for start times ranging over [kMin, +inf) (start times
// after the last layer are unreachable and therefore not counted).
// durPlus is 1 for graph series (dtime = arr-dep+1, Definition 4) and 0
// for raw link streams. The caller obtains the mean distance in absolute
// time as Delta * MeanTime.
func Distances(cfg Config, layers []Layer, kMin int64, durPlus int64) DistanceStats {
	return DistancesCSR(cfg, FromLayers(layers), kMin, durPlus)
}

// ShortestTransitions returns the minimal trips with exactly two hops
// (Definition 6) of the layered graph. These are the paper's key units
// of propagation used by the Section 8 validation.
func ShortestTransitions(cfg Config, layers []Layer) []Trip {
	all := CollectTrips(cfg, layers)
	out := all[:0]
	for _, t := range all {
		if t.Hops == 2 {
			out = append(out, t)
		}
	}
	return out
}
